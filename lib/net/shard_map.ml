(* FNV-1a over the session id, folded to 31 bits so the value is a
   non-negative [int] on every platform. The hash is fixed — it is part
   of the on-disk contract: recovery routes each replayed session to the
   shard that will serve it, so the mapping must be stable across runs
   (and it keeps cram transcripts stable too). *)
let hash id =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x7fffffff)
    id;
  !h

let owner ~shards id = if shards <= 1 then 0 else hash id mod shards
