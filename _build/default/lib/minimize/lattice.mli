(** The accurate-subvaluation digraph of Figure 1: nodes are the
    (partial) valuations proving at least one benefit; an edge links a
    (partial) valuation to an immediate extension proving the same
    benefit set, i.e. "is an accurate subvaluation of".

    Exponential in the universe size (3^|Xp| partial valuations are
    scanned), so reserved for pedagogical problems. *)

type kind =
  | Valuation  (** a total valuation — italic in Figure 1 *)
  | Mas  (** a minimal accurate subvaluation — bold in Figure 1 *)
  | Accurate  (** an accurate but non-minimal subvaluation — gray *)

type node = {
  w : Pet_valuation.Partial.t;
  benefits : string list;
  kind : kind;
}

type t = { nodes : node list; edges : (Pet_valuation.Partial.t * Pet_valuation.Partial.t) list }

val build : Atlas.t -> t
(** @raise Invalid_argument when the form universe exceeds 10 predicates. *)

val node_of : t -> Pet_valuation.Partial.t -> node option
val pp : t Fmt.t
