(** Findings: one record per violated obligation, tagged with the stage
    ("diff/atlas", "oracle/minimal", …) that detected it. The stage tags
    double as the shrinker's failure fingerprint: a candidate reproducer
    must re-trigger one of the original stages, so shrinking cannot drift
    onto an unrelated bug. *)

type t = { stage : string; detail : string }

type report = { checks : int; findings : t list }
(** [checks] counts every elementary obligation verified, passed or not —
    the number the CLI prints so a silent run is distinguishable from a
    vacuous one. *)

val empty : report
val merge : report -> report -> report
val merge_all : report list -> report
val ok : report -> bool

val stages : report -> string list
(** Distinct stages of the failed obligations, sorted. *)

(** Mutable accumulator used while a check module runs. *)

type tally

val tally : unit -> tally
val report : tally -> report

val check : tally -> stage:string -> bool -> (unit -> string) -> unit
(** [check t ~stage cond detail] counts one obligation and records a
    finding (lazily rendering [detail]) when [cond] is false. *)

val fail : tally -> stage:string -> string -> unit
(** Count one obligation and record it as failed. *)

val pp : t Fmt.t
