module Persist = Pet_server.Persist
module Store = Pet_store.Store
module Flight_log = Pet_store.Flight_log
module Obs = Pet_obs.Metrics

type outcome = Pending | Done | Failed of string

type job = {
  events : Persist.event list;
  jm : Mutex.t;
  jc : Condition.t;
  mutable outcome : outcome;
}

type stats = { batches : int; events : int; max_batch : int }

type t = {
  store : Store.t;
  m : Mutex.t;
  c : Condition.t;
  queue : job Queue.t;
  batch_target : int;
  gather_s : float;
  (* self-pipe: submitters write a byte when the queue reaches
     [batch_target], waking a writer that is mid-gather in [select] *)
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  (* flight-recorder side channel: already-rendered telemetry records
     ride the same writer domain, appended (flush, no fsync) after the
     WAL batch they followed — submitters never block on telemetry *)
  flight : Flight_log.t option;
  fq : string Queue.t;
  mutable stopping : bool;
  mutable batches : int;
  mutable events_total : int;
  mutable max_batch : int;
  mutable writer : unit Domain.t option;
}

let obs_batches = Obs.counter "pet_net_commit_batches_total"
let obs_events = Obs.counter "pet_net_commit_events_total"
let obs_queue_depth = Obs.gauge "pet_net_commit_queue_depth"
let obs_max_batch = Obs.gauge "pet_net_commit_batch_max"

let drain_pipe t =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read t.pipe_r buf 0 64 with
    | 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (EINTR, _, _) -> go ()
  in
  go ()

(* The writer drains whatever accumulated while the previous fsync was
   in flight — that is the core mechanism: the deeper the backlog, the
   more events share one fsync. On a single core the scheduler tends to
   wake the writer the instant the first shard submits, before the
   other shards have had their turn, so a bare drain degenerates to
   one-event batches. The gather wait counters that: having found the
   queue non-empty but below [batch_target], the writer parks in
   [select] on the self-pipe — yielding the core to the shards — until
   the submitter that completes the batch writes its wakeup byte or
   [gather_s] elapses. The wait is bounded well under one fsync, so
   the worst case adds a fraction of the latency it saves. *)
let gather t =
  drain_pipe t;
  let deadline = Unix.gettimeofday () +. t.gather_s in
  let rec wait () =
    if Queue.length t.queue >= t.batch_target || t.stopping then ()
    else begin
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining > 0. then begin
        Mutex.unlock t.m;
        (try ignore (Unix.select [ t.pipe_r ] [] [] remaining)
         with Unix.Unix_error (EINTR, _, _) -> ());
        drain_pipe t;
        Mutex.lock t.m;
        wait ()
      end
    end
  in
  wait ()

let rec writer_loop t =
  Mutex.lock t.m;
  while Queue.is_empty t.queue && Queue.is_empty t.fq && not t.stopping do
    Condition.wait t.c t.m
  done;
  if Queue.is_empty t.queue && Queue.is_empty t.fq then
    Mutex.unlock t.m (* stopping, drained *)
  else begin
    (* WAL jobs first — durability ahead of telemetry. *)
    let jobs =
      if Queue.is_empty t.queue then []
      else begin
        if t.batch_target > 1 then gather t;
        let jobs = List.of_seq (Queue.to_seq t.queue) in
        Queue.clear t.queue;
        Obs.set_gauge obs_queue_depth 0.;
        jobs
      end
    in
    let records = List.of_seq (Queue.to_seq t.fq) in
    Queue.clear t.fq;
    Mutex.unlock t.m;
    (match jobs with
    | [] -> ()
    | jobs ->
      let events = List.concat_map (fun (job : job) -> job.events) jobs in
      let outcome =
        match Store.append_batch t.store events with
        | () -> Done
        | exception Sys_error m -> Failed m
      in
      let n = List.length events in
      t.batches <- t.batches + 1;
      t.events_total <- t.events_total + n;
      if n > t.max_batch then t.max_batch <- n;
      Obs.incr obs_batches;
      Obs.add obs_events n;
      Obs.set_gauge obs_max_batch (float_of_int t.max_batch);
      List.iter
        (fun job ->
          Mutex.lock job.jm;
          job.outcome <- outcome;
          Condition.signal job.jc;
          Mutex.unlock job.jm)
        jobs);
    (match (t.flight, records) with
    | Some fl, _ :: _ -> (
      (* A failing telemetry disk must not take the WAL writer down. *)
      try Flight_log.append_batch fl records with Sys_error _ -> ())
    | _ -> ());
    writer_loop t
  end

let start ?(batch_target = 1) ?(gather_s = 2e-4) ?flight store =
  let pipe_r, pipe_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock pipe_r;
  let t =
    {
      store;
      m = Mutex.create ();
      c = Condition.create ();
      queue = Queue.create ();
      batch_target = max 1 batch_target;
      gather_s;
      pipe_r;
      pipe_w;
      flight;
      fq = Queue.create ();
      stopping = false;
      batches = 0;
      events_total = 0;
      max_batch = 0;
      writer = None;
    }
  in
  t.writer <- Some (Domain.spawn (fun () -> writer_loop t));
  t

let submit t events =
  match events with
  | [] -> ()
  | events ->
    let job =
      { events; jm = Mutex.create (); jc = Condition.create (); outcome = Pending }
    in
    Mutex.lock t.m;
    if t.stopping then begin
      Mutex.unlock t.m;
      raise (Sys_error "group-commit writer is stopped")
    end;
    Queue.add job t.queue;
    let depth = Queue.length t.queue in
    Obs.set_gauge obs_queue_depth (float_of_int depth);
    if depth = 1 then Condition.signal t.c;
    if depth = t.batch_target && t.batch_target > 1 then
      (* completes the batch a gathering writer is waiting for *)
      (try ignore (Unix.write_substring t.pipe_w "x" 0 1)
       with Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EPIPE | EBADF), _, _) ->
         ());
    Mutex.unlock t.m;
    Mutex.lock job.jm;
    while job.outcome = Pending do
      Condition.wait job.jc job.jm
    done;
    let outcome = job.outcome in
    Mutex.unlock job.jm;
    (match outcome with
    | Done | Pending -> ()
    | Failed m -> raise (Sys_error m))

let submit_flight t record =
  Mutex.lock t.m;
  if (not t.stopping) && t.flight <> None then begin
    Queue.add record t.fq;
    if Queue.length t.fq = 1 then Condition.signal t.c
  end;
  Mutex.unlock t.m

let stop t =
  Mutex.lock t.m;
  t.stopping <- true;
  Condition.broadcast t.c;
  (try ignore (Unix.write_substring t.pipe_w "x" 0 1)
   with Unix.Unix_error (_, _, _) -> ());
  Mutex.unlock t.m;
  Option.iter Domain.join t.writer;
  t.writer <- None;
  Unix.close t.pipe_r;
  Unix.close t.pipe_w

let stats t =
  { batches = t.batches; events = t.events_total; max_batch = t.max_batch }
