lib/rules/exposure.mli: Fmt Pet_logic Pet_valuation Rule
