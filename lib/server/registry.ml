type 'a slot = { value : 'a; mutable last_use : int }

type 'a t = {
  capacity : int;
  table : (string, 'a slot) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = {
  size : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
}

let digest text = Digest.to_hex (Digest.string text)

let create ?(capacity = 16) () =
  if capacity < 1 then invalid_arg "Registry.create: capacity must be >= 1";
  {
    capacity;
    table = Hashtbl.create 16;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let touch t slot =
  t.tick <- t.tick + 1;
  slot.last_use <- t.tick

(* O(size) eviction scan; the cache holds at most [capacity] compiled
   engines, each worth seconds of atlas construction, so the scan is
   noise. *)
let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key slot acc ->
        match acc with
        | Some (_, best) when best <= slot.last_use -> acc
        | _ -> Some (key, slot.last_use))
      t.table None
  in
  match victim with
  | Some (key, _) ->
    Hashtbl.remove t.table key;
    t.evictions <- t.evictions + 1
  | None -> ()

let peek t key =
  match Hashtbl.find_opt t.table key with
  | Some slot ->
    touch t slot;
    Some slot.value
  | None -> None

let find t key =
  match peek t key with
  | Some v ->
    t.hits <- t.hits + 1;
    Some v
  | None ->
    t.misses <- t.misses + 1;
    None

let add t key value =
  (match Hashtbl.find_opt t.table key with
  | Some _ -> Hashtbl.remove t.table key
  | None -> if Hashtbl.length t.table >= t.capacity then evict_lru t);
  let slot = { value; last_use = 0 } in
  touch t slot;
  Hashtbl.add t.table key slot

let find_or_add t key build =
  match find t key with
  | Some v -> (v, true)
  | None ->
    let v = build () in
    add t key v;
    (v, false)

let stats t =
  {
    size = Hashtbl.length t.table;
    capacity = t.capacity;
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
  }
