(* The flight recorder's record encoder: turns metric snapshots, log
   lines, slow traces and lifecycle events into single-line JSON
   records, delta-encoding snapshots against the previous one so the
   steady-state journal stays small. The encoder is pure state — where
   the records go (a [Pet_store.Flight_log] segment, a watch frame on
   the wire) is the caller's business.

   Identifier-only by construction: the inputs are metric names and
   numbers, already-rendered log lines (themselves identifier-only, see
   Log) and trace annotations (tagged scalars, see Trace.value) — no
   path here ever sees a valuation, a rule text or respondent data.

   Like Trace.chrome, records are hand-rolled JSON: this library has no
   JSON dependency and needs none. *)

type hist_prev = {
  mutable pn : int;
  mutable psum : float;
  pbuckets : (float, int) Hashtbl.t;
}

type t = {
  m : Mutex.t;
  counters : (string, int) Hashtbl.t;
  gauges : (string, float) Hashtbl.t;
  hists : (string, hist_prev) Hashtbl.t;
  seen_traces : (string, unit) Hashtbl.t;
  mutable seq : int;
}

let create () =
  {
    m = Mutex.create ();
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 64;
    hists = Hashtbl.create 32;
    seen_traces = Hashtbl.create 32;
    seq = 0;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let esc = Trace.json_escape

(* JSON number rendering: integral values without exponent, otherwise
   %.9g; non-finite values (which no instrument should produce) clamp
   to 0 rather than emitting invalid JSON. *)
let num v =
  if Float.is_nan v || v = infinity || v = neg_infinity then "0"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let le_key bound = if bound = infinity then "+Inf" else num bound

(* Every record shares the head: version, sequence number (per encoder,
   so replay can detect gaps), kind and timestamp. *)
let head t ~kind ~now =
  t.seq <- t.seq + 1;
  Printf.sprintf "{\"flight\":1,\"seq\":%d,\"kind\":\"%s\",\"t\":%s" t.seq
    kind (num now)

let snap t ?wal ~now (s : Metrics.snapshot) =
  locked t @@ fun () ->
  let buf = Buffer.create 512 in
  Buffer.add_string buf (head t ~kind:"snap" ~now);
  (match wal with
  | Some (file, off) ->
    Buffer.add_string buf
      (Printf.sprintf ",\"wal\":{\"file\":\"%s\",\"off\":%d}" (esc file) off)
  | None -> ());
  (* Counters: emit the increment since the previous snapshot; new
     counters emit their full value. Unchanged counters are omitted. *)
  let first = ref true in
  let field_open name =
    if !first then begin
      first := false;
      Buffer.add_string buf name
    end
    else Buffer.add_char buf ','
  in
  first := true;
  List.iter
    (fun (name, v) ->
      let prev = Option.value ~default:0 (Hashtbl.find_opt t.counters name) in
      if v <> prev then begin
        field_open ",\"counters\":{";
        Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (esc name) (v - prev));
        Hashtbl.replace t.counters name v
      end)
    s.counters;
  if not !first then Buffer.add_char buf '}';
  (* Gauges: absolute values, only when changed (first sight counts as
     changed, including an initial 0 so replay knows the gauge exists). *)
  first := true;
  List.iter
    (fun (name, v) ->
      let changed =
        match Hashtbl.find_opt t.gauges name with
        | Some prev -> prev <> v
        | None -> true
      in
      if changed then begin
        field_open ",\"gauges\":{";
        Buffer.add_string buf (Printf.sprintf "\"%s\":%s" (esc name) (num v));
        Hashtbl.replace t.gauges name v
      end)
    s.gauges;
  if not !first then Buffer.add_char buf '}';
  (* Histograms: per-bucket count increments plus n/sum deltas; max is
     cumulative (the all-time max, not the window max — documented). *)
  first := true;
  List.iter
    (fun (name, (h : Metrics.hist_stats)) ->
      let prev =
        match Hashtbl.find_opt t.hists name with
        | Some p -> p
        | None ->
          let p = { pn = 0; psum = 0.; pbuckets = Hashtbl.create 8 } in
          Hashtbl.add t.hists name p;
          p
      in
      if h.count <> prev.pn then begin
        field_open ",\"hist\":{";
        Buffer.add_string buf
          (Printf.sprintf "\"%s\":{\"n\":%d,\"sum\":%s,\"max\":%s,\"buckets\":{"
             (esc name) (h.count - prev.pn)
             (num (h.sum -. prev.psum))
             (num h.max));
        let bfirst = ref true in
        List.iter
          (fun (bound, n) ->
            let pb =
              Option.value ~default:0 (Hashtbl.find_opt prev.pbuckets bound)
            in
            if n <> pb then begin
              if !bfirst then bfirst := false else Buffer.add_char buf ',';
              Buffer.add_string buf
                (Printf.sprintf "\"%s\":%d" (le_key bound) (n - pb));
              Hashtbl.replace prev.pbuckets bound n
            end)
          h.buckets;
        Buffer.add_string buf "}}";
        prev.pn <- h.count;
        prev.psum <- h.sum
      end)
    s.histograms;
  if not !first then Buffer.add_char buf '}';
  Buffer.add_char buf '}';
  Buffer.contents buf

let log_event t ~now line =
  locked t @@ fun () ->
  Printf.sprintf "%s,\"line\":\"%s\"}" (head t ~kind:"log" ~now) (esc line)

let value_json = function
  | Trace.String s -> Printf.sprintf "\"%s\"" (esc s)
  | Trace.Int i -> string_of_int i
  | Trace.Bool b -> string_of_bool b
  | Trace.Float f -> num f

(* Dump slow traces not yet journaled (headers only: id, duration,
   annotations — span trees live in the trace method; the journal wants
   the correlation handle, not the tree). *)
let slow_traces t ~now traces =
  locked t @@ fun () ->
  List.filter_map
    (fun (tr : Trace.t) ->
      if Hashtbl.mem t.seen_traces tr.id then None
      else begin
        Hashtbl.add t.seen_traces tr.id ();
        let ann =
          String.concat ","
            (List.map
               (fun (k, v) ->
                 Printf.sprintf "\"%s\":%s" (esc k) (value_json v))
               tr.annotations)
        in
        Some
          (Printf.sprintf
             "%s,\"id\":\"%s\",\"duration_s\":%s,\"annotations\":{%s}}"
             (head t ~kind:"trace" ~now)
             (esc tr.id) (num tr.duration) ann)
      end)
    traces

let meta t ~now ~event fields =
  locked t @@ fun () ->
  let fs =
    String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (esc k) (esc v))
         fields)
  in
  Printf.sprintf "%s,\"event\":\"%s\",\"fields\":{%s}}"
    (head t ~kind:"meta" ~now) (esc event) fs
