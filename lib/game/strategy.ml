module Atlas = Pet_minimize.Atlas
module Algorithm1 = Pet_minimize.Algorithm1
module Universe = Pet_valuation.Universe
module Total = Pet_valuation.Total
module Partial = Pet_valuation.Partial

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
  go x 0

(* Incremental per-move crowd aggregates, so that scoring a prospective
   commitment is O(1): [ones]/[zeros] are the bitwise ORs of the committed
   members' (negated) valuations, [count] their number. *)
type agg = { mutable ones : int; mutable zeros : int; mutable count : int }

type state = {
  atlas : Atlas.t;
  payoff : Payoff.kind;
  full : int; (* mask of the whole form universe *)
  universe : Universe.t;
  blank_mask : int array; (* per MAS *)
  player_bits : int array;
  aggs : agg array;
  committed : int array; (* player -> MAS, -1 while pending *)
}

let make_state atlas payoff =
  let nm = Atlas.mas_count atlas in
  let np = Atlas.player_count atlas in
  let universe =
    Pet_rules.Exposure.xp (Pet_rules.Engine.exposure (Atlas.engine atlas))
  in
  let full = (1 lsl Universe.size universe) - 1 in
  {
    atlas;
    payoff;
    full;
    universe;
    blank_mask =
      Array.init nm (fun m ->
          lnot (Partial.domain_mask (Atlas.mas atlas m).Algorithm1.mas)
          land full);
    player_bits =
      Array.init np (fun i -> Total.bits (Atlas.player atlas i));
    aggs = Array.init nm (fun _ -> { ones = 0; zeros = 0; count = 0 });
    committed = Array.make np (-1);
  }

let commit st i m =
  st.committed.(i) <- m;
  let a = st.aggs.(m) in
  let bits = st.player_bits.(i) in
  a.ones <- a.ones lor bits;
  a.zeros <- a.zeros lor (lnot bits land st.full);
  a.count <- a.count + 1

(* Payoff of player [i] if they joined move [m]'s committed crowd. *)
let score st i m =
  let a = st.aggs.(m) in
  let bits = st.player_bits.(i) in
  let disagreement =
    (a.ones lor bits)
    land (a.zeros lor (lnot bits land st.full))
    land st.blank_mask.(m)
  in
  match st.payoff with
  | Payoff.Sm -> float_of_int a.count
  | Payoff.Blank -> float_of_int (popcount disagreement)
  | Payoff.Weighted weight ->
    let total = ref 0. in
    List.iteri
      (fun k name ->
        if (disagreement lsr k) land 1 = 1 then total := !total +. weight name)
      (Universe.names st.universe);
    !total

(* Best move of a player: highest score; ties broken by the lexicographic
   order on moves (MAS indices are in lexicographic order). [dominant]
   tells whether the best strictly beats every other move. *)
let best_move st i choices =
  let rec go best dominant = function
    | [] -> (best, dominant)
    | m :: rest ->
      let s = score st i m in
      let bm, bs = best in
      if s > bs then go (m, s) true rest
      else if s = bs && m <> bm then go best false rest
      else go best dominant rest
  in
  match choices with
  | [] -> assert false (* every player has at least one choice *)
  | m :: rest -> go (m, score st i m) true rest

let compute ?(payoff = Payoff.Blank) atlas =
  Pet_obs.Span.enter "algorithm2" @@ fun () ->
  let st = make_state atlas payoff in
  let n = Atlas.player_count atlas in
  (* Players with a single possible move play it outright (lines 1-3 of
     Algorithm 2). *)
  let pending = ref [] in
  for i = n - 1 downto 0 do
    match Atlas.choices_of_player atlas i with
    | [ m ] -> commit st i m
    | choices -> pending := (i, choices) :: !pending
  done;
  (* Main loop. A player commits as soon as one of their moves strictly
     dominates their alternatives under the current crowds ("wait until
     the payoff of best move dominates all other to play it"); committing
     changes the crowds, so the scan restarts. When nobody has a
     dominating move, the deadlock is broken as in lines 11-16: the
     player/move pair with the globally best payoff — ties resolved by
     the lexicographic order on moves, then on players — commits. *)
  while !pending <> [] do
    let dominant =
      List.find_opt
        (fun (i, choices) -> snd (best_move st i choices))
        !pending
    in
    let i, m =
      match dominant with
      | Some (i, choices) -> (i, fst (fst (best_move st i choices)))
      | None ->
        let take acc (i, choices) =
          let (m, s), _ = best_move st i choices in
          match acc with
          | Some (_, m', s') when s' > s || (s' = s && m' <= m) -> acc
          | _ -> Some (i, m, s)
        in
        let i, m, _ = Option.get (List.fold_left take None !pending) in
        (i, m)
    in
    commit st i m;
    pending := List.filter (fun (j, _) -> j <> i) !pending
  done;
  Profile.make atlas (fun i -> st.committed.(i))

let best_move_of_player ?(payoff = Payoff.Blank) profile i =
  let atlas = Profile.atlas profile in
  let current = Profile.move_of profile i in
  let consider best m =
    let crowd = Profile.crowd profile m in
    let crowd = if m = current then crowd else i :: crowd in
    let s = Payoff.value atlas payoff ~mas:m ~crowd in
    match best with
    | Some (_, s') when s' >= s -> best
    | _ -> Some (m, s)
  in
  match List.fold_left consider None (Atlas.choices_of_player atlas i) with
  | Some best -> best
  | None -> assert false
