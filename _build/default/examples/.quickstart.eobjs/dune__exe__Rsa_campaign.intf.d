examples/rsa_campaign.mli:
