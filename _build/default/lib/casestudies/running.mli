(** The paper's running example (Section 2.2): district council benefits.

    Form predicates: [p1] "age <= 25", [p2] "unemployed", [p3] "suburbs".
    Benefits: [b1] subsidized public transportation card, [b2] local tax
    reduction, [b3] free parking card. Rules (Section 3.1):

    {v
    (p1 | (p2 & p3)) <-> b1
    (p1 & !p2)       <-> b2
    (p1 & !p3)       <-> b3
    v} *)

val exposure : unit -> Pet_rules.Exposure.t

val v1 : unit -> Pet_valuation.Total.t
(** The paper's first example applicant: age 28, unemployed, suburbs —
    valuation [011]. *)

val v2 : unit -> Pet_valuation.Total.t
(** The second example applicant: age 20, unemployed, suburbs — [111]. *)

val form : unit -> Pet_pet.Form.t
(** The typed questionnaire behind the predicates: an age, an employment
    status and a location, compiled to [p1..p3]. *)
