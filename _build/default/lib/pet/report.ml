module Atlas = Pet_minimize.Atlas
module Algorithm1 = Pet_minimize.Algorithm1
module Partial = Pet_valuation.Partial
module Total = Pet_valuation.Total
module Universe = Pet_valuation.Universe
module Profile = Pet_game.Profile
module Payoff = Pet_game.Payoff
module Deduction = Pet_game.Deduction

type option_report = {
  mas : Partial.t;
  benefits : string list;
  po_blank : float;
  po_sm : float;
  po_weighted : float option;
  disclosure : Deduction.disclosure;
  recommended : bool;
}

type t = {
  valuation : Total.t;
  granted : string list;
  options : option_report list;
  minimization_ratio : float;
}

let build ?weights atlas profile v =
  let player =
    match Atlas.find_player atlas v with
    | Some i -> i
    | None -> invalid_arg "Report.build: valuation is not a player"
  in
  let played = Profile.move_of profile player in
  let option_of m =
    let choice = Atlas.mas atlas m in
    (* Evaluate the option as if the applicant picked it: they join the
       move's crowd (they are already in it when it is their equilibrium
       move). *)
    let crowd = Profile.crowd profile m in
    let crowd = if m = played then crowd else player :: crowd in
    let disclosure =
      {
        (Deduction.of_move profile ~mas:m) with
        deduced = Payoff.deduced_blanks atlas ~mas:m ~crowd;
        protected = Payoff.undeducible_blanks atlas ~mas:m ~crowd;
        crowd_size = List.length crowd;
      }
    in
    {
      mas = choice.Algorithm1.mas;
      benefits = choice.Algorithm1.benefits;
      po_blank = Payoff.value atlas Payoff.Blank ~mas:m ~crowd;
      po_sm = Payoff.value atlas Payoff.Sm ~mas:m ~crowd;
      po_weighted =
        Option.map
          (fun weight ->
            Payoff.value atlas (Payoff.Weighted weight) ~mas:m ~crowd)
          weights;
      disclosure;
      recommended = m = played;
    }
  in
  let options = List.map option_of (Atlas.choices_of_player atlas player) in
  let recommended = List.find (fun o -> o.recommended) options in
  let n = Universe.size (Partial.universe recommended.mas) in
  {
    valuation = v;
    granted = recommended.benefits;
    options;
    minimization_ratio =
      float_of_int (Partial.blank_count recommended.mas) /. float_of_int n;
  }

let recommended t = List.find (fun o -> o.recommended) t.options

let pp ppf t =
  Fmt.pf ppf "@[<v>Your full form:    %a@," Total.pp t.valuation;
  Fmt.pf ppf "Benefits due:      %a@,"
    Fmt.(list ~sep:(any ", ") string)
    t.granted;
  Fmt.pf ppf "You have %d way(s) to prove eligibility:@,"
    (List.length t.options);
  List.iter
    (fun o ->
      Fmt.pf ppf "  %a%s@," Partial.pp o.mas
        (if o.recommended then "   <- recommended" else "");
      Fmt.pf ppf "    hides %.0f predicate(s) from any attacker; %.0f other applicant(s) look identical@,"
        o.po_blank o.po_sm;
      (match o.po_weighted with
      | Some w -> Fmt.pf ppf "    weighted privacy score: %.1f@," w
      | None -> ());
      match o.disclosure.Deduction.deduced with
      | [] -> ()
      | deduced ->
        Fmt.pf ppf "    note: not sending %a still reveals %a@,"
          Fmt.(
            list ~sep:(any ", ") (fun ppf (name, _) -> Fmt.string ppf name))
          deduced
          Fmt.(
            list ~sep:(any ", ") (fun ppf (name, b) ->
                Fmt.pf ppf "%s=%d" name (if b then 1 else 0)))
          deduced)
    t.options;
  Fmt.pf ppf "Minimization: %.0f%% of the form stays blank@]"
    (100. *. t.minimization_ratio)

let to_json t =
  let lit (name, b) = Json.Obj [ (name, Json.Bool b) ] in
  Json.Obj
    [
      ("valuation", Json.String (Total.to_string t.valuation));
      ("granted", Json.List (List.map (fun b -> Json.String b) t.granted));
      ( "options",
        Json.List
          (List.map
             (fun o ->
               Json.Obj
                 [
                   ("mas", Json.String (Partial.to_string o.mas));
                   ( "benefits",
                     Json.List (List.map (fun b -> Json.String b) o.benefits)
                   );
                   ("po_blank", Json.Float o.po_blank);
                   ("po_sm", Json.Float o.po_sm);
                   ( "po_weighted",
                     match o.po_weighted with
                     | Some w -> Json.Float w
                     | None -> Json.Null );
                   ( "published",
                     Json.List
                       (List.map lit o.disclosure.Deduction.published) );
                   ( "deduced",
                     Json.List (List.map lit o.disclosure.Deduction.deduced)
                   );
                   ( "protected",
                     Json.List
                       (List.map
                          (fun p -> Json.String p)
                          o.disclosure.Deduction.protected) );
                   ("crowd", Json.Int o.disclosure.Deduction.crowd_size);
                   ("recommended", Json.Bool o.recommended);
                 ])
             t.options) );
      ("minimization_ratio", Json.Float t.minimization_ratio);
    ]
