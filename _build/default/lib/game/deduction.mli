(** What an honest-but-curious attacker learns from a published move,
    knowing the exposure problem, the payoff function and everyone's
    strategy (the attack model of Section 4.1) — and therefore exactly
    what the PET must show a user before asking for consent (requirement
    R3). This is the machinery behind the paper's Bob example: his forced
    move [0_0_1110____] silently discloses [p12 = 0]. *)

type disclosure = {
  published : (string * bool) list;
      (** the literals of the MAS itself, in universe order *)
  deduced : (string * bool) list;
      (** blanks whose value the attacker deduces because every player of
          this move shares it *)
  protected : string list;
      (** blanks on which the move's crowd genuinely disagrees — the
          predicates with plausible deniability *)
  crowd_size : int;
}

val of_move : Profile.t -> mas:int -> disclosure
(** Disclosure of a move under a profile (crowd = players actually
    committed to it). For a move nobody plays the deduced list is empty
    and every blank counts as protected. *)

val for_player : Profile.t -> player:int -> disclosure
val pp : disclosure Fmt.t
