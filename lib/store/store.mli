(** The durable, crash-safe persistence layer: an append-only, segmented
    write-ahead log of {!Pet_server.Persist} events, plus snapshots.

    Layout of a data directory:
    - [wal-NNNNNN.log] — log segments, appended in order; a fresh
      segment is started on every open and whenever the active one
      passes the size threshold.
    - [snap-NNNNNN.log] — at most one snapshot (same record framing):
      the live state as events, equivalent to replaying every segment
      numbered [<= N]. Compaction writes the snapshot and retires those
      segments.

    Records are length-prefixed and CRC-32 checksummed ({!Record}), and
    every append is flushed (and by default fsynced) before the emitting
    request is answered — killing the process at any byte loses at most
    the record being appended. Recovery replays the snapshot and the
    segments after it, truncates a torn tail after the last whole record
    (never raises), and surfaces any mid-log corruption as data, with
    the recovered state being the longest clean prefix. *)

module Persist = Pet_server.Persist

type t

type damage = { file : string; offset : int; reason : string }

type recovery = {
  events : Persist.event list;  (** the clean prefix, oldest first *)
  files : int;  (** snapshot + segments read *)
  records : int;
  truncated : damage option;
      (** a torn tail was found (and, via {!open_dir}, cut off) *)
  damage : damage list;
      (** mid-log corruption; replay stopped at the first instance *)
}

val open_dir :
  ?segment_bytes:int ->
  ?auto_compact_segments:int ->
  ?fsync:bool ->
  string ->
  (t * recovery, string) result
(** Open (creating if needed) a data directory and recover its contents.
    A torn tail on the last segment is truncated in place. Appending
    always starts a fresh segment, so recovery never writes into bytes
    it just validated. [segment_bytes] (default 1 MiB) bounds a segment;
    after [auto_compact_segments] (default 8, [0] disables) sealed
    segments accumulate, {!wants_compaction} turns true. [fsync]
    (default true) syncs every append — turn it off for benchmarks
    only. *)

val read : string -> (recovery, string) result
(** Recover read-only: same replay as {!open_dir} but nothing on disk is
    touched (a torn tail is reported in [truncated], not cut). *)

val append : t -> Persist.event -> unit
(** Frame, write, flush and (unless disabled) fsync one event. Rotates
    to a new segment past the size threshold. I/O failure raises
    [Sys_error]: a durable service must not acknowledge what the disk
    refused. *)

val append_batch : t -> Persist.event list -> unit
(** Group commit: frame and write every event, then flush and (unless
    disabled) fsync {e once} for the whole batch — the amortization the
    single writer domain of {!Pet_net} relies on. Durability is
    all-or-prefix: a crash mid-batch leaves a prefix of the batch's
    records (a torn tail is cut on recovery), never a record with a gap
    before it. Rotation is checked once, after the batch. *)

val sink : t -> Persist.sink
(** The store as a service sink ({!Pet_server.Service.set_sink}). *)

val position : t -> string * int
(** The WAL frontier: current segment file name and the byte offset at
    which the next record's frame header will land — the coordinate
    system of [pet audit] and [pet store inspect] reports. Read without
    synchronization (two single-word loads): callers off the writer
    domain get a monitoring-grade, possibly momentarily stale answer,
    which is exactly what flight-recorder correlation needs. *)

val wants_compaction : t -> bool
(** Enough sealed segments have accumulated that the driver should call
    {!compact} with the live state
    ({!Pet_server.Service.state_events}). *)

val compact : t -> events:Persist.event list -> (int, string) result
(** Write [events] as the new snapshot (atomically: temp file, fsync,
    rename), then retire every segment it covers and any older snapshot.
    Returns the number of files removed. *)

val close : t -> unit

(** {1 Offline inspection} *)

type file_report = {
  file : string;
  bytes : int;
  records : int;  (** whole, checksummed records *)
  kinds : (string * int) list;  (** decoded event kinds, sorted *)
  damage : damage list;
      (** framing damage (offset + reason); scanning a file stops at the
          first framing fault since record boundaries are lost, but
          undecodable payloads inside intact framing are localized and
          skipped *)
  r2 : damage list;
      (** R2-on-disk violations: records whose decoded JSON carries a
          ["valuation"] field — the raw form must never be persisted *)
}

val scan : string -> (file_report list, string) result
(** Scan every snapshot and segment in the directory, in replay order —
    the engine of [pet store verify] and [pet store inspect]. *)

val replay_chain : string -> (string list, string) result
(** The file names recovery would replay, in order: the newest snapshot
    (if any) followed by every later segment. Stale files skipped by
    recovery are omitted. The compliance auditor ({!Pet_audit}) walks
    these with {!Record.read} to anchor findings at byte offsets. *)

(** {1 Offline compaction}

    Squashes an event stream without compiling any rule engine: rule
    sets are deduplicated, grants accumulated, and each session reduced
    to its surviving transitions. [pet store compact] uses this; the
    online path snapshots the service state directly. *)

module Compactor : sig
  type state

  val create : unit -> state
  val add : state -> Persist.event -> unit

  val events : ?ttl:float -> state -> Persist.event list
  (** The squashed stream, deterministically ordered (rule sets, then
      grants, then sessions). Sessions idle for more than [ttl] seconds
      (default 3600) before the newest event timestamp are dropped —
      they would only expire again on recovery; their grants are kept
      regardless. [ttl <= 0.] keeps every session. *)
end
