test/test_game.mli:
