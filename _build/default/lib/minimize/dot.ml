module Total = Pet_valuation.Total
module Partial = Pet_valuation.Partial

let escape s = s (* valuation strings only contain [01_] *)

let lattice (l : Lattice.t) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "digraph exposure {\n  rankdir=BT;\n  node [shape=box];\n";
  List.iter
    (fun (n : Lattice.node) ->
      let label = escape (Partial.to_string n.w) in
      let attrs =
        match n.kind with
        | Lattice.Mas -> "style=bold"
        | Lattice.Valuation -> "fontname=\"Times-Italic\""
        | Lattice.Accurate -> "color=gray, fontcolor=gray"
      in
      add "  \"%s\" [label=\"%s\\n{%s}\", %s];\n" label label
        (String.concat "," n.benefits)
        attrs)
    l.nodes;
  List.iter
    (fun (a, b) ->
      add "  \"%s\" -> \"%s\";\n" (Partial.to_string a) (Partial.to_string b))
    l.edges;
  add "}\n";
  Buffer.contents buf

(* Connected component of the bipartite graph containing the player. *)
let component atlas v =
  let start =
    match Atlas.find_player atlas v with
    | Some i -> i
    | None -> invalid_arg "Dot.component: valuation is not a player"
  in
  let seen_players = Hashtbl.create 16 and seen_mas = Hashtbl.create 16 in
  let rec visit_player p =
    if not (Hashtbl.mem seen_players p) then begin
      Hashtbl.add seen_players p ();
      List.iter visit_mas (Atlas.choices_of_player atlas p)
    end
  and visit_mas m =
    if not (Hashtbl.mem seen_mas m) then begin
      Hashtbl.add seen_mas m ();
      List.iter visit_player (Atlas.players_of_mas atlas m)
    end
  in
  visit_player start;
  let sorted tbl = List.sort Int.compare (Hashtbl.fold (fun k () l -> k :: l) tbl []) in
  (sorted seen_players, sorted seen_mas)

let choices atlas v =
  let players, mas = component atlas v in
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "digraph choices {\n  rankdir=BT;\n  node [shape=box];\n";
  List.iter
    (fun m ->
      let c = Atlas.mas atlas m in
      add "  \"%s\" [style=bold];\n" (Partial.to_string c.Algorithm1.mas))
    mas;
  List.iter
    (fun p ->
      let w = Atlas.player atlas p in
      add "  \"%s\" [fontname=\"Times-Italic\"];\n" (Total.to_string w))
    players;
  List.iter
    (fun p ->
      let w = Atlas.player atlas p in
      List.iter
        (fun m ->
          let c = Atlas.mas atlas m in
          add "  \"%s\" -> \"%s\";\n"
            (Partial.to_string c.Algorithm1.mas)
            (Total.to_string w))
        (Atlas.choices_of_player atlas p))
    players;
  add "}\n";
  Buffer.contents buf
