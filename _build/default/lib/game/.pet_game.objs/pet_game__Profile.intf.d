lib/game/profile.mli: Pet_minimize Pet_valuation
