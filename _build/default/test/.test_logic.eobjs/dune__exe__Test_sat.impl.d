test/test_sat.ml: Alcotest Array Bool Fmt Fun List Pet_sat Printf QCheck2 QCheck_alcotest Stdlib String
