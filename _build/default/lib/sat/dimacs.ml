type problem = { nvars : int; clauses : Lit.t list list }

let parse input =
  let lines = String.split_on_char '\n' input in
  let header = ref None in
  let clauses = ref [] in
  let current = ref [] in
  let error fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let exception Fail of string in
  let fail fmt = Printf.ksprintf (fun m -> raise (Fail m)) fmt in
  try
    List.iteri
      (fun lineno line ->
        let line = String.trim line in
        if line = "" || line.[0] = 'c' then ()
        else if line.[0] = 'p' then begin
          match String.split_on_char ' ' line |> List.filter (( <> ) "") with
          | [ "p"; "cnf"; nv; nc ] -> (
            match int_of_string_opt nv, int_of_string_opt nc with
            | Some nv, Some nc when nv >= 0 && nc >= 0 ->
              if !header <> None then fail "line %d: duplicate header" (lineno + 1);
              header := Some (nv, nc)
            | _ -> fail "line %d: malformed header" (lineno + 1))
          | _ -> fail "line %d: malformed header" (lineno + 1)
        end
        else begin
          let nvars =
            match !header with
            | Some (nv, _) -> nv
            | None -> fail "line %d: clause before header" (lineno + 1)
          in
          let tokens =
            String.split_on_char ' ' line
            |> List.concat_map (String.split_on_char '\t')
            |> List.filter (( <> ) "")
          in
          List.iter
            (fun tok ->
              match int_of_string_opt tok with
              | None -> fail "line %d: bad literal %S" (lineno + 1) tok
              | Some 0 ->
                clauses := List.rev !current :: !clauses;
                current := []
              | Some k ->
                if abs k > nvars then
                  fail "line %d: literal %d out of range" (lineno + 1) k;
                current := Lit.of_dimacs k :: !current)
            tokens
        end)
      lines;
    if !current <> [] then raise (Fail "unterminated final clause");
    match !header with
    | None -> Error "missing 'p cnf' header"
    | Some (nvars, nclauses) ->
      let clauses = List.rev !clauses in
      if List.length clauses <> nclauses then
        error "header declares %d clauses but %d found" nclauses
          (List.length clauses)
      else Ok { nvars; clauses }
  with Fail m -> Error m

let print ppf { nvars; clauses } =
  Fmt.pf ppf "p cnf %d %d@." nvars (List.length clauses);
  List.iter
    (fun c ->
      List.iter (fun l -> Fmt.pf ppf "%d " (Lit.to_dimacs l)) c;
      Fmt.pf ppf "0@.")
    clauses

let load_into solver { nvars; clauses } =
  Solver.ensure_nvars solver nvars;
  List.iter (Solver.add_clause solver) clauses
