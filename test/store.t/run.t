Durable collection service: with `--data-dir` every committed state
change — rule-set registrations, session transitions, grants — is
appended to a checksummed write-ahead log before the response is sent.
A first serving process publishes the H-cov study and takes one
respondent (Alice, s0) through report, choice and submission, then
exits:

  $ ../../bin/pet.exe serve --deterministic --data-dir data 2>server.log <<'REQUESTS'
  > {"pet":1,"id":1,"method":"publish_rules","params":{"source":"hcov"}}
  > {"pet":1,"id":2,"method":"new_session","params":{"source":"hcov"}}
  > {"pet":1,"id":3,"method":"get_report","params":{"session":"s0","valuation":"000011100111"}}
  > {"pet":1,"id":4,"method":"choose_option","params":{"session":"s0","option":0}}
  > {"pet":1,"id":5,"method":"submit_form","params":{"session":"s0"}}
  > REQUESTS
  {"pet":1,"id":1,"trace":"t0","ok":{"digest":"3c35afd5c479736f19224c053ec534bb","cached":false,"predicates":12,"benefits":1,"mas":6,"eligible":1560}}
  {"pet":1,"id":2,"trace":"t1","ok":{"session":"s0","digest":"3c35afd5c479736f19224c053ec534bb","cached":true}}
  {"pet":1,"id":3,"trace":"t2","ok":{"valuation":"000011100111","granted":["b1"],"options":[{"mas":"0__________1","benefits":["b1"],"po_blank":10,"po_sm":1023,"po_weighted":null,"published":[{"p1":false},{"p12":true}],"deduced":[],"protected":["p2","p3","p4","p5","p6","p7","p8","p9","p10","p11"],"crowd":1024,"recommended":true},{"mas":"0_0__1___11_","benefits":["b1"],"po_blank":7,"po_sm":64,"po_weighted":null,"published":[{"p1":false},{"p3":false},{"p6":true},{"p10":true},{"p11":true}],"deduced":[],"protected":["p2","p4","p5","p7","p8","p9","p12"],"crowd":65,"recommended":false},{"mas":"0_0_1110____","benefits":["b1"],"po_blank":6,"po_sm":24,"po_weighted":null,"published":[{"p1":false},{"p3":false},{"p5":true},{"p6":true},{"p7":true},{"p8":false}],"deduced":[],"protected":["p2","p4","p9","p10","p11","p12"],"crowd":25,"recommended":false}],"minimization_ratio":0.83333333333333337}}
  {"pet":1,"id":4,"trace":"t3","ok":{"mas":"0__________1","benefits":["b1"]}}
  {"pet":1,"id":5,"trace":"t4","ok":{"grant":0,"form":"0__________1","benefits":["b1"]}}

  $ cat server.log
  [info] store.recovered events=0 files=0

A new process over the same directory recovers everything the old one
acknowledged: the stats and the audit reflect Alice's pre-restart
grant, and session ids continue where the log left off (Bob gets s1,
his grant gets id 1):

  $ ../../bin/pet.exe serve --deterministic --data-dir data 2>server.log <<'REQUESTS'
  > {"pet":1,"id":1,"method":"stats"}
  > {"pet":1,"id":2,"method":"audit","params":{"source":"hcov"}}
  > {"pet":1,"id":3,"method":"new_session","params":{"source":"hcov"}}
  > {"pet":1,"id":4,"method":"get_report","params":{"session":"s1","valuation":"000011100000"}}
  > {"pet":1,"id":5,"method":"choose_option","params":{"session":"s1","option":0}}
  > {"pet":1,"id":6,"method":"submit_form","params":{"session":"s1"}}
  > REQUESTS
  {"pet":1,"id":1,"trace":"t0","ok":{"requests":{"total":1,"by_method":{}},"registry":{"size":1,"capacity":16,"hits":0,"misses":1,"evictions":0},"sessions":{"active":1,"created":1,"expired":0,"submitted":1},"ledger":{"rule_sets":1,"records":1,"stored_values":2}}}
  {"pet":1,"id":2,"trace":"t1","ok":{"digest":"3c35afd5c479736f19224c053ec534bb","records":1,"stored_values":2,"failures":[]}}
  {"pet":1,"id":3,"trace":"t2","ok":{"session":"s1","digest":"3c35afd5c479736f19224c053ec534bb","cached":true}}
  {"pet":1,"id":4,"trace":"t3","ok":{"valuation":"000011100000","granted":["b1"],"options":[{"mas":"0_0_1110____","benefits":["b1"],"po_blank":5,"po_sm":23,"po_weighted":null,"published":[{"p1":false},{"p3":false},{"p5":true},{"p6":true},{"p7":true},{"p8":false}],"deduced":[{"p12":false}],"protected":["p2","p4","p9","p10","p11"],"crowd":24,"recommended":true}],"minimization_ratio":0.5}}
  {"pet":1,"id":5,"trace":"t4","ok":{"mas":"0_0_1110____","benefits":["b1"]}}
  {"pet":1,"id":6,"trace":"t5","ok":{"grant":1,"form":"0_0_1110____","benefits":["b1"]}}

  $ cat server.log
  [info] store.recovered events=5 files=1

`pet store` works the log over offline. Inspect lists the segments
(each serving process starts a fresh one) with decoded event counts;
verify checks every checksum and that no record carries a raw
valuation (requirement R2 holds on disk, not just in memory):

  $ ../../bin/pet.exe store inspect data
  wal-000000.log        732 bytes      5 record(s)
  wal-000001.log        373 bytes      4 record(s)
  total: 2 file(s), 1105 bytes, 9 record(s)
    grant                   2
    rules                   1
    session_chosen          2
    session_created         2
    session_submitted       2

  $ ../../bin/pet.exe store verify data
  ok: 9 record(s) in 2 file(s); every checksum holds and no decoded event carries a raw valuation (R2 on disk)

Replay prints the recovered events — note the minimized forms with
blanks ("_") where Alice's and Bob's raw answers were never persisted:

  $ ../../bin/pet.exe store replay data | grep -v '"ev":"rules"'
  {"ev":"session_created","id":"s0","digest":"3c35afd5c479736f19224c053ec534bb","at":3}
  {"ev":"session_chosen","id":"s0","mas":"0__________1","benefits":["b1"],"at":7}
  {"ev":"grant","digest":"3c35afd5c479736f19224c053ec534bb","grant":0,"form":"0__________1","benefits":["b1"],"session":"s0"}
  {"ev":"session_submitted","id":"s0","grant":0,"at":9}
  {"ev":"session_created","id":"s1","digest":"3c35afd5c479736f19224c053ec534bb","at":5}
  {"ev":"session_chosen","id":"s1","mas":"0_0_1110____","benefits":["b1"],"at":9}
  {"ev":"grant","digest":"3c35afd5c479736f19224c053ec534bb","grant":1,"form":"0_0_1110____","benefits":["b1"],"session":"s1"}
  {"ev":"session_submitted","id":"s1","grant":1,"at":11}

A crash mid-append leaves a torn tail: a prefix of the record being
written (here simulated by appending 3 bytes of a record that never
completed). The next start truncates the tail after the last whole
record and carries on; nothing acknowledged is lost:

  $ printf 'cut' >> data/wal-000001.log
  $ ../../bin/pet.exe serve --deterministic --data-dir data 2>server.log <<'REQUESTS'
  > {"pet":1,"id":1,"method":"stats"}
  > REQUESTS
  {"pet":1,"id":1,"trace":"t0","ok":{"requests":{"total":1,"by_method":{}},"registry":{"size":1,"capacity":16,"hits":0,"misses":1,"evictions":0},"sessions":{"active":2,"created":2,"expired":0,"submitted":2},"ledger":{"rule_sets":1,"records":2,"stored_values":8}}}

  $ cat server.log
  [warn] store.torn_tail file="wal-000001.log" offset=373 reason="truncated header (3 of 8 bytes)"
  [info] store.recovered events=9 files=2

Compaction squashes the log into one snapshot holding the rule set,
the grants and the surviving sessions, and retires the segments:

  $ ../../bin/pet.exe store compact data --ttl 0
  compacted 9 event(s) into a snapshot of 9; 2 file(s) retired

  $ ../../bin/pet.exe store verify data
  ok: 9 record(s) in 1 file(s); every checksum holds and no decoded event carries a raw valuation (R2 on disk)

Bit rot, unlike a torn tail, is never silently skipped: flipping one
byte in the snapshot is detected, localized to its record's byte
offset, and fails verification:

  $ python3 - <<'EOF'
  > import pathlib
  > path = next(pathlib.Path('data').iterdir())
  > b = bytearray(path.read_bytes())
  > b[100] ^= 0xff
  > path.write_bytes(bytes(b))
  > EOF

  $ ../../bin/pet.exe store verify data
  damage: snap-000002.log at byte 0: checksum mismatch (stored 8d46ea82, computed aafb7a65)
  pet: 1 fault(s) in 1 file(s)
  [124]
