lib/game/deduction.ml: Fmt List Payoff Pet_minimize Pet_valuation Profile
