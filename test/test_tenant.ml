(* Tests for the multi-tenant layer: the generated form corpus, the
   versioned tenant registry, and the service-level hot-swap guarantee
   that a version swap never evicts an open session's engine. *)

module Json = Pet_pet.Json
module Spec = Pet_rules.Spec
module Registry = Pet_server.Registry
module Service = Pet_server.Service
module Tenant = Pet_tenant.Tenant
module Corpus = Pet_corpus.Corpus

(* --- Corpus --------------------------------------------------------------------- *)

let test_corpus_forms_parse () =
  (* Every corpus form is valid rule-DSL across seeds, sizes and
     revisions, and the triple (seed, index, revision) is
     deterministic. *)
  List.iter
    (fun seed ->
      List.iter
        (fun index ->
          let f = Corpus.form ~seed index in
          Alcotest.(check bool)
            (Printf.sprintf "size in band (seed %d, index %d)" seed index)
            true
            (f.Corpus.size >= Corpus.min_size && f.Corpus.size <= Corpus.max_size);
          (match Spec.parse f.Corpus.text with
          | Ok exposure ->
            Alcotest.(check int)
              (Printf.sprintf "predicate count (seed %d, index %d)" seed index)
              f.Corpus.size
              (Pet_valuation.Universe.size (Pet_rules.Exposure.xp exposure))
          | Error m ->
            Alcotest.failf "seed %d index %d does not parse: %s\n%s" seed index
              m f.Corpus.text);
          let again = Corpus.form ~seed index in
          Alcotest.(check string) "deterministic" f.Corpus.text again.Corpus.text)
        [ 0; 3; 7; 19 ])
    [ 0; 1; 42 ]

let test_corpus_update_changes_digest () =
  (* A revision keeps the collected predicates (the form the respondent
     sees) but re-rolls the rules, so the canonical digest changes —
     the property hot migration relies on. *)
  let f = Corpus.form ~seed:5 ~size:10 2 in
  let g = Corpus.update ~seed:5 f in
  Alcotest.(check (list string))
    "same predicates" f.Corpus.predicates g.Corpus.predicates;
  Alcotest.(check (list string)) "same benefits" f.Corpus.benefits g.Corpus.benefits;
  Alcotest.(check int) "revision bumped" (f.Corpus.revision + 1) g.Corpus.revision;
  let digest (x : Corpus.form) =
    match Spec.parse x.Corpus.text with
    | Ok e -> Registry.digest (Spec.to_string e)
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check bool) "digest changed" false (digest f = digest g)

let test_corpus_valuations () =
  (* Respondent valuations have one bit per predicate and never set two
     predicates of the same exclusion bracket. *)
  let f = Corpus.form ~seed:9 ~size:20 1 in
  let index_of p =
    let rec go i = function
      | [] -> Alcotest.failf "unknown predicate %s" p
      | q :: _ when q = p -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 f.Corpus.predicates
  in
  for respondent = 0 to 49 do
    let v = Corpus.valuation ~seed:9 f respondent in
    Alcotest.(check int) "one bit per predicate" f.Corpus.size (String.length v);
    String.iter
      (fun c ->
        if c <> '0' && c <> '1' then Alcotest.failf "bad bit %c in %s" c v)
      v;
    List.iter
      (fun bracket ->
        let set =
          List.length (List.filter (fun p -> v.[index_of p] = '1') bracket)
        in
        Alcotest.(check bool)
          (Printf.sprintf "bracket respected by %s" v)
          true (set <= 1))
      f.Corpus.brackets
  done

(* --- Tenant registry ------------------------------------------------------------ *)

let test_tenant_versions () =
  let t : int Tenant.t = Tenant.create () in
  (match
     Tenant.publish t ~name:"acme" ~digest:"d1" ~text:"one" ~now:0.
       ~build:(fun () -> Ok 1)
       ()
   with
  | `Created -> ()
  | `Existing _ | `Conflict _ -> Alcotest.fail "expected `Created");
  Tenant.await t "acme";
  (match Tenant.resolve t "acme" with
  | `Ready r ->
    Alcotest.(check int) "version 1" 1 r.Tenant.res_version;
    Alcotest.(check string) "digest" "d1" r.Tenant.res_digest;
    Alcotest.(check (option int)) "artifact handed over" (Some 1)
      r.Tenant.res_artifact;
    (* The artifact is handed over exactly once; later resolvers
       recompile from the retained text. *)
    (match Tenant.resolve t "acme" with
    | `Ready r ->
      Alcotest.(check (option int)) "take-once" None r.Tenant.res_artifact;
      Alcotest.(check string) "text retained" "one" r.Tenant.res_text
    | _ -> Alcotest.fail "second resolve failed")
  | `Failed _ | `Unknown -> Alcotest.fail "expected `Ready");
  (* Idempotent republish vs conflicting republish. *)
  (match
     Tenant.publish t ~name:"acme" ~digest:"d1" ~text:"one" ~now:1.
       ~build:(fun () -> Ok 1)
       ()
   with
  | `Existing (1, Tenant.Ready) -> ()
  | _ -> Alcotest.fail "expected `Existing (1, Ready)");
  (match
     Tenant.publish t ~name:"acme" ~digest:"d9" ~text:"nine" ~now:1.
       ~build:(fun () -> Ok 9)
       ()
   with
  | `Conflict 1 -> ()
  | _ -> Alcotest.fail "expected `Conflict 1");
  (* Updates append versions and swap the active one when built. *)
  (match
     Tenant.update t ~name:"acme" ~digest:"d2" ~text:"two" ~now:2.
       ~build:(fun () -> Ok 2)
       ()
   with
  | `Queued 2 -> ()
  | _ -> Alcotest.fail "expected `Queued 2");
  Tenant.await t "acme";
  (match Tenant.resolve t "acme" with
  | `Ready r -> Alcotest.(check int) "active swapped" 2 r.Tenant.res_version
  | _ -> Alcotest.fail "expected version 2");
  (match
     Tenant.update t ~name:"acme" ~digest:"d2" ~text:"two" ~now:3.
       ~build:(fun () -> Ok 2)
       ()
   with
  | `Unchanged (2, Tenant.Ready) -> ()
  | _ -> Alcotest.fail "expected `Unchanged");
  (match
     Tenant.update t ~name:"ghost" ~digest:"d" ~text:"x" ~now:3.
       ~build:(fun () -> Ok 0)
       ()
   with
  | `Unknown -> ()
  | _ -> Alcotest.fail "expected `Unknown");
  (* Old versions stay recompilable by digest. *)
  Alcotest.(check (option string)) "old text by digest" (Some "one")
    (Tenant.text_of_digest t "d1");
  (* A failing build surfaces as `Failed, and is counted. *)
  (match
     Tenant.publish t ~name:"bad" ~digest:"db" ~text:"b" ~now:4.
       ~build:(fun () -> Error "boom")
       ()
   with
  | `Created -> ()
  | _ -> Alcotest.fail "expected `Created");
  Tenant.await t "bad";
  (match Tenant.resolve t "bad" with
  | `Failed (1, m) -> Alcotest.(check string) "failure message" "boom" m
  | _ -> Alcotest.fail "expected `Failed");
  let totals = Tenant.totals t in
  Alcotest.(check int) "tenants" 2 totals.Tenant.tenants;
  Alcotest.(check int) "builds" 2 totals.Tenant.builds;
  Alcotest.(check int) "build failures" 1 totals.Tenant.build_failures;
  Alcotest.(check int) "none in flight" 0 totals.Tenant.building;
  Tenant.stop t

let test_tenant_quota () =
  let t : unit Tenant.t = Tenant.create () in
  ignore
    (Tenant.publish t ~name:"q" ~digest:"d" ~text:"x" ~quota:2 ~now:0.
       ~build:(fun () -> Ok ())
       ());
  Tenant.await t "q";
  (match Tenant.try_admit t "q" with
  | `Ok -> ()
  | `Over _ -> Alcotest.fail "first admit");
  (match Tenant.try_admit t "q" with
  | `Ok -> ()
  | `Over _ -> Alcotest.fail "second admit");
  (match Tenant.try_admit t "q" with
  | `Over 2 -> ()
  | _ -> Alcotest.fail "expected `Over 2");
  (* Expiry or submission frees the slot. *)
  Tenant.release t "q";
  (match Tenant.try_admit t "q" with
  | `Ok -> ()
  | `Over _ -> Alcotest.fail "admit after release");
  let info = Option.get (Tenant.info t "q") in
  Alcotest.(check int) "active sessions" 2 info.Tenant.sessions_active;
  Alcotest.(check int) "created sessions" 3 info.Tenant.sessions_created;
  Tenant.stop t

(* --- Service: hot swap never evicts a pinned session's engine ------------------- *)

let request_line ?(id = 1) method_ params =
  Json.to_string
    (Json.Obj
       [
         ("pet", Json.Int Pet_server.Proto.version);
         ("id", Json.Int id);
         ("method", Json.String method_);
         ("params", Json.Obj params);
       ])

let parse_ok response =
  match Json.parse response with
  | Ok o -> (
    match Json.member "ok" o with
    | Some payload -> payload
    | None -> Alcotest.failf "expected ok, got %s" response)
  | Error m -> Alcotest.failf "response is not JSON: %s" m

let str field payload =
  match Option.bind (Json.member field payload) Json.string_opt with
  | Some s -> s
  | None -> Alcotest.failf "missing string field %S" field

let test_swap_keeps_pinned_engine () =
  (* A capacity-1 engine cache and six hot migrations: every new
     version's artifact lands in the cache and evicts the pinned
     session's engine, yet the pinned session keeps answering — the
     tenant registry retains every version's canonical text, so the
     engine recompiles instead of erroring. The responses must be
     byte-identical: in-flight respondents never observe a swap. *)
  let tick = ref 0. in
  let service =
    Service.create ~capacity:1 ~ttl:0.
      ~now:(fun () ->
        tick := !tick +. 1.;
        !tick)
      ()
  in
  Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
  let form = ref (Corpus.form ~seed:3 ~size:8 0) in
  let send line = Service.handle_line service line in
  ignore
    (parse_ok
       (send
          (request_line "publish_rules"
             [
               ("rules", Json.String !form.Corpus.text);
               ("tenant", Json.String !form.Corpus.name);
             ])));
  ignore
    (parse_ok
       (send
          (request_line "tenant"
             [ ("name", Json.String !form.Corpus.name); ("wait", Json.Bool true) ])));
  let opened =
    parse_ok
      (send
         (request_line "new_session" [ ("tenant", Json.String !form.Corpus.name) ]))
  in
  let sid = str "session" opened in
  let pinned_digest = str "digest" opened in
  let report_line =
    request_line ~id:99 "get_report"
      [
        ("session", Json.String sid);
        ("valuation", Json.String (Corpus.valuation ~seed:3 !form 0));
      ]
  in
  let baseline = send report_line in
  ignore (parse_ok baseline);
  for swap = 1 to 6 do
    form := Corpus.update ~seed:3 !form;
    ignore
      (parse_ok
         (send
            (request_line "update_rules"
               [
                 ("tenant", Json.String !form.Corpus.name);
                 ("rules", Json.String !form.Corpus.text);
               ])));
    ignore
      (parse_ok
         (send
            (request_line "tenant"
               [
                 ("name", Json.String !form.Corpus.name); ("wait", Json.Bool true);
               ])));
    (* A fresh session resolves the new version and installs its
       artifact — evicting the pinned engine from the capacity-1
       cache. *)
    let fresh =
      parse_ok
        (send
           (request_line "new_session"
              [ ("tenant", Json.String !form.Corpus.name) ]))
    in
    Alcotest.(check bool)
      (Printf.sprintf "swap %d serves a new digest" swap)
      false
      (str "digest" fresh = pinned_digest);
    Alcotest.(check string)
      (Printf.sprintf "pinned response unchanged after swap %d" swap)
      baseline (send report_line)
  done

let () =
  Alcotest.run "pet_tenant"
    [
      ( "corpus",
        [
          Alcotest.test_case "forms parse" `Quick test_corpus_forms_parse;
          Alcotest.test_case "update changes digest" `Quick
            test_corpus_update_changes_digest;
          Alcotest.test_case "valuations respect brackets" `Quick
            test_corpus_valuations;
        ] );
      ( "registry",
        [
          Alcotest.test_case "versions" `Quick test_tenant_versions;
          Alcotest.test_case "quota" `Quick test_tenant_quota;
        ] );
      ( "service",
        [
          Alcotest.test_case "hot swap keeps pinned engines" `Quick
            test_swap_keeps_pinned_engine;
        ] );
    ]
