module Atlas = Pet_minimize.Atlas

type deviation = {
  player : int;
  from_mas : int;
  to_mas : int;
  current : float;
  deviated : float;
}

let find_improvement profile payoff =
  let atlas = Profile.atlas profile in
  let n = Atlas.player_count atlas in
  let rec check_player i =
    if i >= n then None
    else
      let from_mas = Profile.move_of profile i in
      let current =
        Payoff.value atlas payoff ~mas:from_mas
          ~crowd:(Profile.crowd profile from_mas)
      in
      let rec check_moves = function
        | [] -> check_player (i + 1)
        | m :: rest when m = from_mas -> check_moves rest
        | m :: rest ->
          let deviated =
            Payoff.value atlas payoff ~mas:m
              ~crowd:(i :: Profile.crowd profile m)
          in
          if deviated > current then
            Some { player = i; from_mas; to_mas = m; current; deviated }
          else check_moves rest
      in
      check_moves (Atlas.choices_of_player atlas i)
  in
  check_player 0

let is_nash profile payoff = find_improvement profile payoff = None

let deviations profile payoff =
  let atlas = Profile.atlas profile in
  let n = Atlas.player_count atlas in
  List.concat_map
    (fun i ->
      let from_mas = Profile.move_of profile i in
      let current =
        Payoff.value atlas payoff ~mas:from_mas
          ~crowd:(Profile.crowd profile from_mas)
      in
      List.filter_map
        (fun m ->
          if m = from_mas then None
          else
            let deviated =
              Payoff.value atlas payoff ~mas:m
                ~crowd:(i :: Profile.crowd profile m)
            in
            if deviated > current then
              Some { player = i; from_mas; to_mas = m; current; deviated }
            else None)
        (Atlas.choices_of_player atlas i))
    (List.init n Fun.id)

let refine ?max_steps profile payoff =
  let atlas = Profile.atlas profile in
  let max_steps =
    match max_steps with
    | Some s -> s
    | None -> 20 * max 1 (Atlas.player_count atlas)
  in
  let rec go profile steps =
    if steps >= max_steps then (profile, false)
    else
      match find_improvement profile payoff with
      | None -> (profile, true)
      | Some d ->
        let profile' =
          Profile.make atlas (fun i ->
              if i = d.player then d.to_mas else Profile.move_of profile i)
        in
        go profile' (steps + 1)
  in
  go profile 0

let pp_deviation ppf d =
  Fmt.pf ppf "player %d: MAS %d (%.1f) -> MAS %d (%.1f)" d.player d.from_mas
    d.current d.to_mas d.deviated
