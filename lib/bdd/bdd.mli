(** Reduced ordered binary decision diagrams with hash-consing.

    Variables are 0-based integers ordered by their index (variable 0 is
    closest to the root). All operations are implemented on top of a
    memoized [ite] and run in time polynomial in the BDD sizes. Used by
    the rules engine as a bulk backend: compile the rule set [R] once,
    then answer many entailment and counting queries cheaply. *)

type man
(** A manager owns the node arena and the operation caches. Nodes from
    different managers must not be mixed (unchecked). *)

type node = int
(** BDD node handle. The terminals {!zero} and {!one} are shared by all
    managers. *)

val man : unit -> man
val zero : node
val one : node

val var : man -> int -> node
(** The BDD of the positive literal of variable [i]; [i >= 0]. *)

val nvar : man -> int -> node
val neg : man -> node -> node
val conj : man -> node -> node -> node
val disj : man -> node -> node -> node
val xor : man -> node -> node -> node
val imp : man -> node -> node -> node
val iff : man -> node -> node -> node
val ite : man -> node -> node -> node -> node

val conj_list : man -> node list -> node
val disj_list : man -> node list -> node

val restrict : man -> node -> int -> bool -> node
(** Cofactor: fix one variable to a constant. *)

val exists : man -> int list -> node -> node
(** Existential quantification over a set of variables. *)

val support : man -> node -> int list
(** Variables the function actually depends on, ascending. *)

val eval : man -> node -> (int -> bool) -> bool

val is_tautology : node -> bool
val is_unsat : node -> bool

val count_models : man -> nvars:int -> node -> int
(** Number of models over variables [0 .. nvars-1]. All variables in the
    node's support must be below [nvars].
    @raise Invalid_argument otherwise, or when the count overflows. *)

val iter_models : man -> nvars:int -> node -> (bool array -> unit) -> unit
(** Enumerate all models over variables [0 .. nvars-1]. The array passed
    to the callback is reused between calls. *)

val any_model : man -> nvars:int -> node -> bool array option

val size : man -> node -> int
(** Number of distinct internal nodes reachable from the root. *)

val node_count : man -> int
(** Total number of nodes allocated in the manager (arena usage). *)

type stats = {
  nodes : int;  (** same as {!node_count} *)
  ite_calls : int;
      (** memoized [ite] entries since manager creation; the constant-time
          short-circuit cases ([f] terminal, [g = h], ...) are not
          counted *)
  ite_cache_hits : int;  (** of which were answered from the cache *)
}

val stats : man -> stats
(** Per-manager operation counters, maintained unconditionally (an
    integer increment each — too cheap to gate). The observability layer
    surfaces them as gauges; see [Pet_rules.Engine.sync_obs]. *)
