(** Symbolic (BDD-based) computation of the atlas statistics.

    {!Atlas.build} enumerates every eligible valuation, which caps the
    form size around 20 predicates. This module derives the same global
    quantities without enumerating valuations:

    - the global MAS set is generated directly from the rules: for every
      benefit set [F], the closed Cartesian products of conjunctions
      (exactly Algorithm 1's candidates), kept when some realistic
      valuation uses them — a BDD emptiness check;
    - potential and forced crowd sizes are BDD model counts;
    - the "number of valuations" of Table 2 is the model count of the
      union of the per-MAS player sets;
    - [PO_blank] of the forced and potential crowds (the bracketed
      values of Tables 3 and 4) comes from per-variable satisfiability
      probes on those sets.

    Equilibrium crowds (the unbracketed Table 3 values) depend on the
    strategy dynamics and still require the explicit atlas; everything
    else scales to forms of 30+ predicates. Agreement with the explicit
    atlas is checked exhaustively in the test suite. *)

type t

type mas_stats = {
  mas : Pet_valuation.Partial.t;
  benefits : string list;
  potential : int;  (** Table 3 "players": all extensions with [F]'s pattern *)
  forced : int;  (** players with no other MAS *)
  po_blank_forced : int;
  po_blank_potential : int;
}

val build : ?mode:Algorithm1.mode -> Pet_rules.Exposure.t -> t
(** [mode] must be [Chain] (default) or [Entail].
    @raise Invalid_argument on [Exact], or when a benefit set's
    conjunction product exceeds an internal safety cap. *)

val mas_count : t -> int
val stats : t -> mas_stats list
(** In the paper's lexicographic MAS order. *)

val valuation_count : t -> int
(** Table 2 "number of valuations". *)

val choice_distribution : t -> (int * int) list
(** Table 2 rows 4+: [(k, n)] — [n] valuations choose among exactly [k]
    MAS; ascending [k]. Computed by splitting the valuation space into
    the (few) regions with identical choice sets, so it stays feasible
    when the counts themselves are astronomical. *)

val domain_size_range : t -> int * int

type equilibrium = {
  crowds : int list;  (** per MAS, same order as {!stats} *)
  nash : bool;
      (** whether no individual player can profit from a unilateral
          deviation under [PO_SM] *)
}

val equilibrium : t -> equilibrium
(** The bloc variant of Algorithm 2 under [PO_SM]: players with identical
    choice sets are payoff-symmetric, so each such region commits as a
    bloc — forced regions first, then regions with a strictly dominant
    move (re-evaluated after every commitment), ties broken towards the
    lexicographically smallest move. This computes the unbracketed
    "plays" column of Tables 3 and 4 without enumerating players, at the
    cost of a (verified) bloc-symmetry assumption; on the paper's case
    studies it reproduces the explicit Algorithm 2 crowds exactly. *)

val pp_summary : t Fmt.t
