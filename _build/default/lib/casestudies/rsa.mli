(** The RSA ("revenu de solidarité active", active solidarity income)
    case study of Section 5.

    The paper reports this scenario's statistics (17 predicates,
    incrementally granted benefits, 24 MAS, 1296 eligible valuations with
    up to 12 choices) but does not print its rule set, and the MAS
    strings of Table 4 are not fully legible in the available source.
    This module therefore provides a {e synthetic} encoding built from
    the published RSA eligibility criteria, with 17 predicates and 3
    incrementally granted benefits, calibrated to reproduce the shape of
    Tables 2 and 4. The per-number comparison lives in EXPERIMENTS.md. *)

val exposure : unit -> Pet_rules.Exposure.t

val predicates : (string * string) list
(** Predicate name, human-readable description. *)

val benefits : (string * string) list

val sample_applicant : unit -> Pet_valuation.Total.t
(** A lone working parent entitled to all three benefits. *)

val form : unit -> Pet_pet.Form.t
(** The RSA questionnaire: an age, a residency duration, income figures
    and household facts compiled to the 17 predicates. *)
