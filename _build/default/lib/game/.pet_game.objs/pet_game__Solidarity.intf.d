lib/game/solidarity.mli: Fmt Profile
