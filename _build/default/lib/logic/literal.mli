(** Literals: a propositional variable or its negation (Definition 3.2). *)

type t = { var : string; sign : bool }
(** [sign = true] is the positive literal. *)

val pos : string -> t
val neg : string -> t
val negate : t -> t
val equal : t -> t -> bool
val compare : t -> t -> int

val to_formula : t -> Formula.t
val of_formula : Formula.t -> t option
(** [of_formula f] is [Some l] when [f] is a variable or a negated
    variable, [None] otherwise. *)

val holds : (string -> bool) -> t -> bool
val pp : t Fmt.t
