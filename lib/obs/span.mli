(** Lightweight hierarchical spans for profiling.

    A span measures one named region of execution; spans opened while
    another span is running become its children, so a run of the
    workflow produces a tree like:

    {v
    profile                       total 12.4ms
    ├── engine.compile             9.1ms
    │   └── engine.compile.bdd     8.0ms
    └── atlas.build                2.9ms
        └── algorithm1             2.6ms
    v}

    Aggregation is by path: entering the same name twice under the same
    parent accumulates into one node ([count] grows). Recursion is
    supported — a span may appear on the stack more than once; each
    nested entry nests one level deeper in the tree.

    Like {!Metrics}, spans share the global enabled switch and clock.
    The span tree, stack and recorder are domain-local state: each
    domain profiles its own work and {!roots}/{!reset} act on the
    calling domain's tree. When disabled, {!enter} runs the thunk
    without reading the clock. *)

val enter : string -> (unit -> 'a) -> 'a
(** [enter name f] runs [f], timing it as a child of the innermost
    running span (or as a root). Exceptions propagate after the span is
    closed. *)

type node = {
  name : string;
  count : int;  (** entries aggregated into this node *)
  total : float;  (** inclusive seconds, children included *)
  self : float;  (** [total] minus children's totals, clamped at 0 *)
  children : node list;  (** in first-entered order *)
}

val roots : unit -> node list
(** Completed top-level spans, in first-entered order. A span still on
    the stack is not reported until it closes. *)

val total : unit -> float
(** Sum of the root totals — the instrumented wall-clock. *)

val reset : unit -> unit
(** Drop all recorded spans. Must not be called while a span is open:
    doing so raises [Invalid_argument] naming the innermost open span
    (silently resetting under an open span would corrupt the stack and
    double-count its eventual exit). *)

(** {1 Recorders}

    A recorder is a secondary listener on the span stream — {!Trace}
    installs one while a request-scoped capture is active, so per-request
    trees can be cut out of the same instrumentation without touching the
    global aggregate. Timestamps are the ones {!enter} already read;
    recording adds no clock reads. *)

type recorder = {
  r_enter : string -> float -> unit;  (** span name and start time *)
  r_exit : float -> unit;  (** end time of the innermost open span *)
}

val set_recorder : recorder option -> unit
(** Install (or with [None] remove) the recorder. At most one is active;
    installing while spans are open is allowed — the recorder simply
    sees exits it never saw enter, and must tolerate them. *)

val render : ?out_total:float -> unit -> string
(** ASCII tree of {!roots} with per-node totals, self-time and percent
    of [out_total] (default {!total}). Durations are printed with
    [%.6f] seconds, so a deterministic clock yields byte-stable
    output. *)
