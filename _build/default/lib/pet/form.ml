module Universe = Pet_valuation.Universe
module Total = Pet_valuation.Total

type answer = Abool of bool | Aint of int | Achoice of string

type kind = Kbool | Kint | Kchoice of string list

type question = { key : string; text : string; kind : kind }

type predicate = {
  name : string;
  description : string;
  compute : (string -> answer) -> bool;
}

type t = {
  exposure : Pet_rules.Exposure.t;
  questions : question list;
  predicates : predicate list;
}

let create ~exposure ~questions ~predicates =
  let keys = List.map (fun q -> q.key) questions in
  if List.length (List.sort_uniq String.compare keys) <> List.length keys then
    invalid_arg "Form.create: duplicate question keys";
  let xp = Pet_rules.Exposure.xp exposure in
  List.iter
    (fun p ->
      if not (Universe.mem xp p.name) then
        invalid_arg ("Form.create: predicate " ^ p.name ^ " not in the form"))
    predicates;
  List.iter
    (fun name ->
      if not (List.exists (fun p -> p.name = name) predicates) then
        invalid_arg ("Form.create: predicate " ^ name ^ " has no definition"))
    (Universe.names xp);
  { exposure; questions; predicates }

let exposure t = t.exposure
let questions t = t.questions

exception Bad of string

let valuation t answers =
  let lookup key =
    let question =
      match List.find_opt (fun q -> q.key = key) t.questions with
      | Some q -> q
      | None -> raise (Bad ("predicate refers to unknown question " ^ key))
    in
    let answer =
      match List.assoc_opt key answers with
      | Some a -> a
      | None -> raise (Bad ("missing answer for question " ^ key))
    in
    match question.kind, answer with
    | Kbool, Abool _ | Kint, Aint _ -> answer
    | Kchoice options, Achoice c ->
      if List.mem c options then answer
      else raise (Bad ("answer to " ^ key ^ " is not one of its options"))
    | (Kbool | Kint | Kchoice _), _ ->
      raise (Bad ("ill-typed answer for question " ^ key))
  in
  match
    List.iter
      (fun (key, _) ->
        if not (List.exists (fun q -> q.key = key) t.questions) then
          raise (Bad ("answer for unknown question " ^ key)))
      answers;
    Total.make
      (Pet_rules.Exposure.xp t.exposure)
      (fun name ->
        let p = List.find (fun p -> p.name = name) t.predicates in
        p.compute lookup)
  with
  | v -> Ok v
  | exception Bad m -> Error m
