(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven, pure
    OCaml — the record checksum of the write-ahead log. Values fit the
    native [int] (always non-negative, below [2^32]). *)

val string : string -> int
(** [string s] is the CRC-32 of all of [s]. *)

val sub : string -> int -> int -> int
(** [sub s pos len] is the CRC-32 of the slice [s.[pos .. pos+len-1]].
    @raise Invalid_argument on an out-of-bounds slice. *)
