lib/rules/exposure.ml: Fmt List Pet_logic Pet_valuation Printf Rule
