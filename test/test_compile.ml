(* Tests for the compiled fast path (lib/compile): bitmask rule
   compilation checked against Pet_logic evaluation, the tabulated MAS
   answer table checked against Algorithm 1, the Compiled engine
   backend checked against brute force on both sides of the tabulation
   threshold, and the zero-allocation JSON cursor checked against the
   full parser. *)

module F = Pet_logic.Formula
module Dnf = Pet_logic.Dnf
module Universe = Pet_valuation.Universe
module Total = Pet_valuation.Total
module Partial = Pet_valuation.Partial
module Rule = Pet_rules.Rule
module Exposure = Pet_rules.Exposure
module Engine = Pet_rules.Engine
module Generate = Pet_rules.Generate
module A1 = Pet_minimize.Algorithm1
module Code = Pet_compile.Code
module Answers = Pet_compile.Answers
module Json = Pet_pet.Json
module Proto = Pet_server.Proto
module Running = Pet_casestudies.Running

let code_of e =
  Code.create ~xp:(Exposure.xp e)
    ~benefits:(Universe.names (Exposure.xb e))
    ~rule:(fun b -> (Exposure.rule_for e b).Rule.dnf)
    ~constraints:(Exposure.constraints e)

let answers_of e = Answers.build (code_of e) ~implications:(Exposure.implications e)

(* Evaluate a formula on a valuation word without going through the
   engines — the independent reference for the compiled tables. *)
let eval_word xp f v =
  F.eval (fun name -> (v lsr Universe.index xp name) land 1 = 1) f

let generated n seed =
  Generate.exposure
    ~config:
      {
        Generate.predicates = n;
        benefits = 3;
        conjunctions = 3;
        width = 3;
        implications = 2;
      }
    ~seed ()

let small_exposures () =
  Running.exposure () :: List.map (fun s -> generated (3 + (s mod 4)) s) [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* --- Code: compiled words vs Pet_logic ---------------------------------- *)

let test_tables_vs_formula () =
  List.iter
    (fun e ->
      let code = code_of e in
      let xp = Exposure.xp e in
      let n = Code.predicates code in
      Alcotest.(check int) "size" (Universe.size xp) n;
      let constraints = F.conj (Exposure.constraints e) in
      for v = 0 to (1 lsl n) - 1 do
        Alcotest.(check bool) "consistent_bits" (eval_word xp constraints v)
          (Code.consistent_bits code v);
        for i = 0 to Code.benefit_count code - 1 do
          let rule = Exposure.rule_for e (Code.benefit_name code i) in
          Alcotest.(check bool)
            (Printf.sprintf "benefit_bits %d of %d" i v)
            (eval_word xp (Dnf.to_formula rule.Rule.dnf) v)
            ((Code.benefit_bits code v lsr i) land 1 = 1)
        done
      done)
    (small_exposures ())

let test_conj_holds_vs_literals () =
  List.iter
    (fun e ->
      let code = code_of e in
      let xp = Exposure.xp e in
      let n = Code.predicates code in
      for i = 0 to Code.benefit_count code - 1 do
        let conjs = Rule.conjunctions (Exposure.rule_for e (Code.benefit_name code i)) in
        let compiled = Code.conjunctions code i in
        Alcotest.(check int) "conjunction count" (List.length conjs)
          (Array.length compiled);
        List.iteri
          (fun j lits ->
            for v = 0 to (1 lsl n) - 1 do
              let expected =
                List.for_all
                  (fun (l : Pet_logic.Literal.t) ->
                    ((v lsr Universe.index xp l.var) land 1 = 1) = l.sign)
                  lits
              in
              Alcotest.(check bool) "conj_holds" expected
                (Code.conj_holds compiled.(j) v)
            done)
          conjs
      done)
    (small_exposures ())

let test_scan_vs_enumeration () =
  List.iter
    (fun e ->
      let code = code_of e in
      let n = Code.predicates code in
      let full = (1 lsl n) - 1 in
      for dom = 0 to full do
        (* Every bits pattern inside dom, via submask descent. *)
        let bits = ref dom in
        let continue = ref true in
        while !continue do
          let completions = ref [] in
          for v = 0 to full do
            if v land dom = !bits && Code.consistent_bits code v then
              completions := v :: !completions
          done;
          let scan = Code.scan code ~dom ~bits:!bits in
          let expect_any = !completions <> [] in
          Alcotest.(check bool) "any" expect_any scan.Code.any;
          Alcotest.(check bool) "consistent" expect_any
            (Code.consistent code ~dom ~bits:!bits);
          let expected_and =
            List.fold_left ( land ) full !completions
          and expected_or = List.fold_left ( lor ) 0 !completions
          and expected_benefit_and =
            List.fold_left
              (fun acc v -> acc land Code.benefit_bits code v)
              (Code.full_benefit_mask code)
              !completions
          in
          Alcotest.(check int) "and_bits" expected_and scan.Code.and_bits;
          Alcotest.(check int) "or_bits" expected_or scan.Code.or_bits;
          Alcotest.(check int) "benefit_and" expected_benefit_and
            scan.Code.benefit_and;
          for i = 0 to Code.benefit_count code - 1 do
            Alcotest.(check bool) "entails_benefit"
              ((expected_benefit_and lsr i) land 1 = 1)
              (Code.entails_benefit code ~dom ~bits:!bits i)
          done;
          for i = 0 to n - 1 do
            Alcotest.(check bool) "entails_literal true"
              ((expected_and lsr i) land 1 = 1)
              (Code.entails_literal code ~dom ~bits:!bits i true);
            Alcotest.(check bool) "entails_literal false"
              ((expected_or lsr i) land 1 = 0)
              (Code.entails_literal code ~dom ~bits:!bits i false)
          done;
          if !bits = 0 then continue := false else bits := (!bits - 1) land dom
        done
      done)
    [ Running.exposure (); generated 4 11; generated 5 12 ]

let test_create_refuses () =
  let xp = Universe.of_names (List.init 17 (fun i -> Printf.sprintf "p%d" i)) in
  Alcotest.check_raises "too many predicates"
    (Invalid_argument
       "Pet_compile.Code.create: 17 predicates exceed the tabulation \
        threshold (16)")
    (fun () ->
      ignore
        (Code.create ~xp ~benefits:[ "b1" ]
           ~rule:(fun _ -> Dnf.of_formula (F.var "p0"))
           ~constraints:[]));
  let xp = Universe.of_names [ "p1" ] in
  Alcotest.(check bool) "unknown variable refused" true
    (match
       Code.create ~xp ~benefits:[ "b1" ]
         ~rule:(fun _ -> Dnf.of_formula (F.var "q9"))
         ~constraints:[]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Answers: the tabulated MAS table vs Algorithm 1 --------------------- *)

let test_answers_vs_algorithm1 () =
  List.iter
    (fun e ->
      let answers = answers_of e in
      let code = Answers.code answers in
      let n = Code.predicates code in
      let brute = Engine.create ~backend:Engine.Brute e in
      for v = 0 to (1 lsl n) - 1 do
        if not (Code.consistent_bits code v) then
          Alcotest.(check int)
            (Printf.sprintf "inconsistent %d has no entry" v)
            0
            (Array.length (Answers.mas_domains answers v))
        else begin
          let total = Total.of_bits (Exposure.xp e) v in
          let expected = A1.mas_of brute total in
          Alcotest.(check (list string))
            (Printf.sprintf "MAS of %s" (Total.to_string total))
            (List.map (fun (c : A1.choice) -> Partial.to_string c.A1.mas) expected)
            (List.map Partial.to_string (Answers.mas_list answers v));
          Alcotest.(check (list string))
            (Printf.sprintf "benefits of %s" (Total.to_string total))
            (match expected with c :: _ -> c.A1.benefits | [] -> [])
            (Answers.granted answers v)
        end
      done)
    (small_exposures ())

let test_answers_are_minimal () =
  List.iter
    (fun e ->
      let answers = answers_of e in
      let code = Answers.code answers in
      let engine = Engine.create ~backend:Engine.Bdd e in
      for v = 0 to (1 lsl Code.predicates code) - 1 do
        if Code.consistent_bits code v then
          let benefits = Answers.granted answers v in
          List.iter
            (fun mas ->
              Alcotest.(check bool)
                (Printf.sprintf "MAS %s of %d minimal" (Partial.to_string mas) v)
                true
                (A1.is_minimal engine mas ~benefits))
            (Answers.mas_list answers v)
      done)
    (small_exposures ())

let test_answers_running_example () =
  let answers = answers_of (Running.exposure ()) in
  let xp = Exposure.xp (Running.exposure ()) in
  let mas s =
    List.map Partial.to_string
      (Answers.mas_list answers (Total.bits (Total.of_string xp s)))
  in
  (* Figure 1 of the paper, as in test_minimize. *)
  Alcotest.(check (list string)) "111" [ "_11"; "1__" ] (mas "111");
  Alcotest.(check (list string)) "011" [ "_11" ] (mas "011");
  Alcotest.(check (list string)) "110" [ "1_0" ] (mas "110");
  Alcotest.(check (list string)) "100" [ "100" ] (mas "100");
  Alcotest.(check (list string)) "000" [ "___" ] (mas "000")

(* --- The Compiled engine backend ----------------------------------------- *)

let all_partials n =
  List.concat
    (List.init (1 lsl n) (fun dom ->
         let rec submasks s acc =
           let acc = s :: acc in
           if s = 0 then acc else submasks ((s - 1) land dom) acc
         in
         List.map (fun bits -> (dom, bits)) (submasks dom [])))

let test_compiled_engine_small () =
  List.iter
    (fun e ->
      let xp = Exposure.xp e in
      let n = Universe.size xp in
      let compiled = Engine.create ~backend:Engine.Compiled e in
      let brute = Engine.create ~backend:Engine.Brute e in
      Alcotest.(check string) "backend name" "compiled"
        (Engine.backend_name (Engine.backend compiled));
      List.iter
        (fun (dom, bits) ->
          let w = Partial.of_masks xp ~dom ~bits in
          Alcotest.(check bool) "consistent" (Engine.consistent brute w)
            (Engine.consistent compiled w);
          Alcotest.(check (list string)) "benefits" (Engine.benefits brute w)
            (Engine.benefits compiled w);
          Alcotest.(check (list (pair string bool))) "deduced"
            (Engine.deduced_literals brute w)
            (Engine.deduced_literals compiled w))
        (all_partials n))
    (small_exposures ())

(* Above the tabulation threshold the Compiled backend silently falls
   back to its symbolic implementation; it must keep its name and keep
   agreeing with an independent backend. *)
let test_compiled_engine_fallback () =
  let e = generated 21 42 in
  let xp = Exposure.xp e in
  let compiled = Engine.create ~backend:Engine.Compiled e in
  let sat = Engine.create ~backend:Engine.Sat e in
  Alcotest.(check string) "fallback keeps the name" "compiled"
    (Engine.backend_name (Engine.backend compiled));
  let rng = Random.State.make [| 2024 |] in
  for _ = 0 to 63 do
    let dom = Random.State.int rng (1 lsl 21) in
    let bits = Random.State.int rng (1 lsl 21) land dom in
    let w = Partial.of_masks xp ~dom ~bits in
    Alcotest.(check bool) "consistent" (Engine.consistent sat w)
      (Engine.consistent compiled w);
    Alcotest.(check (list string)) "benefits" (Engine.benefits sat w)
      (Engine.benefits compiled w);
    Alcotest.(check (list (pair string bool))) "deduced"
      (Engine.deduced_literals sat w)
      (Engine.deduced_literals compiled w)
  done

(* --- The JSON cursor vs the full parser ---------------------------------- *)

let test_cursor_primitives () =
  let open Json.Cursor in
  let c = of_string "  \t\r\n \"abc\" 12" in
  skip_ws c;
  Alcotest.(check (option string)) "simple string" (Some "abc") (simple_string c);
  skip_ws c;
  Alcotest.(check (option int)) "int" (Some 12) (int c);
  Alcotest.(check bool) "at end" true (at_end c);
  Alcotest.(check char) "peek past end" '\000' (peek c);
  let c = of_string "-42," in
  Alcotest.(check (option int)) "negative" (Some (-42)) (int c);
  Alcotest.(check bool) "accept" true (accept c ',');
  List.iter
    (fun input ->
      Alcotest.(check (option int)) ("reject " ^ input) None
        (int (of_string input)))
    [ "1.5"; "2e3"; "1234567890123456789"; "-"; "x" ];
  List.iter
    (fun input ->
      Alcotest.(check (option string)) ("reject " ^ input) None
        (simple_string (of_string input)))
    [ {|"a\nb"|}; "\"a\tb\""; {|"unterminated|}; "plain" ]

let canonical_lines =
  [
    {|{"pet":1,"id":7,"method":"new_session","params":{"digest":"abc"}}|};
    {|{"pet":1,"id":7,"method":"new_session","params":{"rules":"form p1"}}|};
    {|{"pet":1,"id":"x","method":"new_session","params":{"source":"running"}}|};
    {|{"pet":1,"id":1,"method":"get_report","params":{"session":"s1","valuation":"101"}}|};
    {|{"pet":1,"id":2,"method":"choose_option","params":{"session":"s1","option":0}}|};
    {|{"pet":1,"id":2,"method":"choose_option","params":{"session":"s1","mas":"1_0"}}|};
    {|{"pet":1,"id":3,"method":"submit_form","params":{"session":"s1"}}|};
    {|{"pet":1,"id":3,"trace":"t1","method":"submit_form","params":{"session":"s1"}}|};
    {| { "pet" : 1 , "id" : 9 , "method" : "submit_form" , "params" : { "session" : "s" } } |};
  ]

let test_decode_fast_accepts_canonical () =
  List.iter
    (fun line ->
      match (Proto.decode_fast line, Proto.decode line) with
      | Some fast, Ok full ->
        Alcotest.(check bool) ("identical decode of " ^ line) true (fast = full)
      | Some _, Error _ ->
        Alcotest.fail ("fast decode accepted a rejected line: " ^ line)
      | None, _ -> Alcotest.fail ("fast decode bailed on: " ^ line))
    canonical_lines

(* Lines the scanner must hand to the full decoder (None), because the
   one-pass grammar cannot represent them faithfully. *)
let test_decode_fast_bails () =
  List.iter
    (fun line ->
      Alcotest.(check bool) ("bails on " ^ line) true
        (Proto.decode_fast line = None))
    [
      (* escapes, floats, duplicates, nesting, cold methods *)
      {|{"pet":1,"id":1,"method":"get_report","params":{"session":"s\n1","valuation":"1"}}|};
      {|{"pet":1,"id":1.5,"method":"submit_form","params":{"session":"s"}}|};
      {|{"pet":1,"id":1,"id":2,"method":"submit_form","params":{"session":"s"}}|};
      {|{"pet":1,"id":1,"method":"stats","params":{}}|};
      {|{"pet":1,"id":1,"method":"submit_form","params":{"session":["s"]}}|};
      {|{"pet":1,"id":1,"method":"submit_form","params":{"session":"s","extra":1}}|};
      {|{"pet":2,"id":1,"method":"submit_form","params":{"session":"s"}}|};
      "not json at all";
      "";
    ]

(* Soundness on every prefix of every canonical line, and on oversized
   input: whenever the scanner accepts, the full decoder agrees. *)
let test_decode_fast_truncations () =
  List.iter
    (fun line ->
      for len = 0 to String.length line - 1 do
        let prefix = String.sub line 0 len in
        match Proto.decode_fast prefix with
        | None -> ()
        | Some fast -> (
          match Proto.decode prefix with
          | Ok full ->
            Alcotest.(check bool) "sound on prefix" true (fast = full)
          | Error _ ->
            Alcotest.fail ("fast decode accepted a broken prefix: " ^ prefix))
      done)
    canonical_lines

let test_decode_fast_oversized () =
  let padding = String.make (Proto.max_line_bytes + 8) ' ' in
  let line =
    {|{"pet":1,"id":3,"method":"submit_form","params":{"session":"s"}}|}
    ^ padding
  in
  Alcotest.(check bool) "oversized handed to the slow path" true
    (Proto.decode_fast line = None);
  Alcotest.(check bool) "full decoder rejects it" true
    (match Proto.decode line with Error _ -> true | Ok _ -> false)

let () =
  Alcotest.run "pet_compile"
    [
      ( "code",
        [
          Alcotest.test_case "tables vs formula" `Quick test_tables_vs_formula;
          Alcotest.test_case "conj_holds vs literals" `Quick
            test_conj_holds_vs_literals;
          Alcotest.test_case "scan vs enumeration" `Quick
            test_scan_vs_enumeration;
          Alcotest.test_case "create refuses" `Quick test_create_refuses;
        ] );
      ( "answers",
        [
          Alcotest.test_case "vs Algorithm 1" `Quick test_answers_vs_algorithm1;
          Alcotest.test_case "is_minimal recheck" `Quick
            test_answers_are_minimal;
          Alcotest.test_case "running example" `Quick
            test_answers_running_example;
        ] );
      ( "engine",
        [
          Alcotest.test_case "compiled vs brute (small)" `Quick
            test_compiled_engine_small;
          Alcotest.test_case "fallback above threshold" `Quick
            test_compiled_engine_fallback;
        ] );
      ( "cursor",
        [
          Alcotest.test_case "primitives" `Quick test_cursor_primitives;
          Alcotest.test_case "accepts canonical" `Quick
            test_decode_fast_accepts_canonical;
          Alcotest.test_case "bails to slow path" `Quick test_decode_fast_bails;
          Alcotest.test_case "sound on truncations" `Quick
            test_decode_fast_truncations;
          Alcotest.test_case "oversized" `Quick test_decode_fast_oversized;
        ] );
    ]
