lib/rules/engine.mli: Exposure Fmt Pet_valuation
