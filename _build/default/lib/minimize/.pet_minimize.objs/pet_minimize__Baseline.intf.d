lib/minimize/baseline.mli: Pet_rules Pet_valuation
