(* Tests for rules, exposure problems, the proof relation (all three
   backends) and the rule-file parser. *)

module F = Pet_logic.Formula
module Parse = Pet_logic.Parse
module Dnf = Pet_logic.Dnf
module Universe = Pet_valuation.Universe
module Total = Pet_valuation.Total
module Partial = Pet_valuation.Partial
module Rule = Pet_rules.Rule
module Exposure = Pet_rules.Exposure
module Engine = Pet_rules.Engine
module Spec = Pet_rules.Spec
module Running = Pet_casestudies.Running
module Hcov = Pet_casestudies.Hcov

let xp3 () = Universe.of_names [ "p1"; "p2"; "p3" ]

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

(* --- Rule --------------------------------------------------------------- *)

let test_rule_of_formula () =
  let r = Rule.of_formula ~benefit:"b" (Parse.formula "!(!p1 & !(p2 & p3))") in
  Alcotest.(check bool) "dnf equivalent" true
    (F.equivalent (Dnf.to_formula r.dnf) (Parse.formula "p1 | (p2 & p3)"));
  Alcotest.(check bool) "triggered" true
    (Rule.triggered_by (fun v -> v = "p1") r);
  Alcotest.(check bool) "not triggered" false
    (Rule.triggered_by (fun v -> v = "p2") r)

(* --- Exposure validation -------------------------------------------------- *)

let test_exposure_validation () =
  let xp = xp3 () and xb = Universe.of_names [ "b1"; "b2" ] in
  let rule b f = Rule.of_formula ~benefit:b (Parse.formula f) in
  let fails mk =
    match mk () with exception Invalid_argument _ -> true | _ -> false
  in
  Alcotest.(check bool) "missing rule" true
    (fails (fun () -> Exposure.create ~xp ~xb ~rules:[ rule "b1" "p1" ] ()));
  Alcotest.(check bool) "duplicate rule" true
    (fails (fun () ->
         Exposure.create ~xp ~xb
           ~rules:[ rule "b1" "p1"; rule "b1" "p2"; rule "b2" "p3" ]
           ()));
  Alcotest.(check bool) "unknown benefit" true
    (fails (fun () ->
         Exposure.create ~xp ~xb
           ~rules:[ rule "b1" "p1"; rule "b2" "p2"; rule "zz" "p3" ]
           ()));
  Alcotest.(check bool) "rule uses unknown var" true
    (fails (fun () ->
         Exposure.create ~xp ~xb ~rules:[ rule "b1" "q9"; rule "b2" "p2" ] ()));
  Alcotest.(check bool) "constraint uses benefit" true
    (fails (fun () ->
         Exposure.create ~xp ~xb
           ~rules:[ rule "b1" "p1"; rule "b2" "p2" ]
           ~constraints:[ Parse.formula "b1 -> p2" ]
           ()));
  Alcotest.(check bool) "name collision" true
    (fails (fun () ->
         Exposure.create ~xp
           ~xb:(Universe.of_names [ "p1"; "b2" ])
           ~rules:[ rule "p1" "p2"; rule "b2" "p3" ]
           ()))

let test_exposure_accessors () =
  let e = Running.exposure () in
  Alcotest.(check int) "3 rules" 3 (List.length (Exposure.rules e));
  Alcotest.(check string) "rule_for b2" "b2" (Exposure.rule_for e "b2").benefit;
  Alcotest.(check bool) "rule_for unknown" true
    (match Exposure.rule_for e "zz" with
    | exception Not_found -> true
    | _ -> false);
  (* The full formula has the right models: count processed valuations. *)
  let f = Exposure.to_formula e in
  let models =
    List.filter
      (fun rho -> F.eval rho f)
      (F.all_assignments (F.vars f))
  in
  (* One model per p-valuation: benefits are functions of predicates. *)
  Alcotest.(check int) "8 models" 8 (List.length models)

let test_benefits_of_assignment () =
  let e = Running.exposure () in
  let benefits s =
    let v = Total.of_string (Exposure.xp e) s in
    Exposure.benefits_of_assignment e (Total.rho v)
  in
  Alcotest.(check (list string)) "011" [ "b1" ] (benefits "011");
  Alcotest.(check (list string)) "111" [ "b1" ] (benefits "111");
  Alcotest.(check (list string)) "110" [ "b1"; "b3" ] (benefits "110");
  Alcotest.(check (list string)) "101" [ "b1"; "b2" ] (benefits "101");
  Alcotest.(check (list string)) "100" [ "b1"; "b2"; "b3" ] (benefits "100");
  Alcotest.(check (list string)) "000" [] (benefits "000")

let test_realistic_eligible () =
  let e = Running.exposure () in
  Alcotest.(check int) "no constraints: all realistic" 8
    (List.length (Exposure.realistic e));
  Alcotest.(check int) "5 eligible" 5 (List.length (Exposure.eligible e));
  let h = Hcov.exposure () in
  Alcotest.(check bool) "hcov constraints filter" true
    (List.length (Exposure.realistic h) < 4096)

let test_implications () =
  let h = Hcov.exposure () in
  let imps = Exposure.implications h in
  Alcotest.(check int) "5 implications" 5 (List.length imps);
  let p12_imp =
    List.find
      (fun (premises, _) ->
        match premises with
        | [ (l : Pet_logic.Literal.t) ] -> l.var = "p12" && l.sign
        | _ -> false)
      imps
  in
  Alcotest.(check bool) "p12 -> !p1" true
    (snd p12_imp = [ Pet_logic.Literal.neg "p1" ])

(* --- Engine: the proof relation ------------------------------------------- *)

let backends = [ Engine.Brute; Engine.Sat; Engine.Bdd ]

(* Section 3.1 of the paper: w1 = _11 proves b1; w2 = _1_ does not. *)
let test_proof_relation_paper_facts () =
  let e = Running.exposure () in
  List.iter
    (fun backend ->
      let t = Engine.create ~backend e in
      let name = Fmt.str "%a" Engine.pp_backend backend in
      let w s = Partial.of_string (Exposure.xp e) s in
      Alcotest.(check bool) (name ^ ": w1 proves b1") true
        (Engine.entails_benefit t (w "_11") "b1");
      Alcotest.(check bool) (name ^ ": w1 does not prove b2") false
        (Engine.entails_benefit t (w "_11") "b2");
      Alcotest.(check bool) (name ^ ": w2 does not prove b1") false
        (Engine.entails_benefit t (w "_1_") "b1");
      Alcotest.(check (list string)) (name ^ ": benefits of _11") [ "b1" ]
        (Engine.benefits t (w "_11"));
      Alcotest.(check (list string))
        (name ^ ": benefits of 1_0")
        [ "b1"; "b3" ]
        (Engine.benefits t (w "1_0"));
      Alcotest.(check bool) (name ^ ": consistent") true
        (Engine.consistent t (w "___")))
    backends

(* All three backends agree on every partial valuation of the running
   example (3^3 = 27 of them) for every query type. *)
let test_backends_agree_exhaustively () =
  let e = Running.exposure () in
  let brute = Engine.create ~backend:Engine.Brute e in
  let sat = Engine.create ~backend:Engine.Sat e in
  let bdd = Engine.create ~backend:Engine.Bdd e in
  let xp = Exposure.xp e in
  let chars = [ '0'; '1'; '_' ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          List.iter
            (fun c ->
              let w =
                Partial.of_string xp (Printf.sprintf "%c%c%c" a b c)
              in
              let reference = Engine.benefits brute w in
              Alcotest.(check (list string))
                (Fmt.str "sat benefits %a" Partial.pp w)
                reference (Engine.benefits sat w);
              Alcotest.(check (list string))
                (Fmt.str "bdd benefits %a" Partial.pp w)
                reference (Engine.benefits bdd w);
              let ded = Engine.deduced_literals brute w in
              Alcotest.(check bool)
                (Fmt.str "sat deduced %a" Partial.pp w)
                true
                (Engine.deduced_literals sat w = ded);
              Alcotest.(check bool)
                (Fmt.str "bdd deduced %a" Partial.pp w)
                true
                (Engine.deduced_literals bdd w = ded))
            chars)
        chars)
    chars

(* Deduction through the consistency rules (H-cov): publishing p12 = 1
   forces p1 = 0. *)
let test_deduced_literals_hcov () =
  let e = Hcov.exposure () in
  List.iter
    (fun backend ->
      let t = Engine.create ~backend e in
      let w = Partial.of_assoc (Exposure.xp e) [ ("p12", true) ] in
      let name = Fmt.str "%a" Engine.pp_backend backend in
      Alcotest.(check bool) (name ^ ": p1 deduced false") true
        (List.mem ("p1", false) (Engine.deduced_literals t w));
      Alcotest.(check bool) (name ^ ": p1 forced") true
        (Engine.entails_literal t w "p1" false))
    [ Engine.Sat; Engine.Bdd ]

let test_inconsistent_is_vacuous () =
  let e = Hcov.exposure () in
  let t = Engine.create ~backend:Engine.Sat e in
  (* p1 and p5 cannot both hold. *)
  let w = Partial.of_assoc (Exposure.xp e) [ ("p1", true); ("p5", true) ] in
  Alcotest.(check bool) "inconsistent" false (Engine.consistent t w);
  Alcotest.(check bool) "vacuously proves" true
    (Engine.entails_benefit t w "b1")

let test_engine_universe_mismatch () =
  let t = Engine.create (Running.exposure ()) in
  let other = Universe.of_names [ "q1" ] in
  Alcotest.(check bool) "universe checked" true
    (match Engine.consistent t (Partial.empty other) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* Property: SAT and BDD backends agree with brute force on random rule
   sets. *)
let gen_exposure_and_partial =
  QCheck2.Gen.(
    let gen_lit =
      let* v = int_range 1 4 in
      let* sign = bool in
      return
        (if sign then F.var (Printf.sprintf "p%d" v)
         else F.neg (F.var (Printf.sprintf "p%d" v)))
    in
    let gen_conj =
      let* lits = list_size (int_range 1 3) gen_lit in
      return (F.conj lits)
    in
    let gen_dnf =
      let* conjs = list_size (int_range 1 3) gen_conj in
      return (F.disj conjs)
    in
    let* f1 = gen_dnf in
    let* f2 = gen_dnf in
    let* constraint_opt = option gen_conj in
    let* dom = int_range 0 15 in
    let* bits = int_range 0 15 in
    return ((f1, f2, constraint_opt), (dom, bits land dom)))

let prop_backends_agree_random =
  QCheck2.Test.make ~count:200 ~name:"backends agree on random rule sets"
    ~print:(fun ((f1, f2, c), (dom, bits)) ->
      Fmt.str "b1:=%a b2:=%a c:%a dom=%d bits=%d" F.pp f1 F.pp f2
        (Fmt.option F.pp) c dom bits)
    gen_exposure_and_partial
    (fun ((f1, f2, constraint_opt), (dom, bits)) ->
      let xp = Universe.of_names [ "p1"; "p2"; "p3"; "p4" ] in
      let xb = Universe.of_names [ "b1"; "b2" ] in
      let constraints = Option.to_list constraint_opt in
      let e =
        Exposure.create ~xp ~xb
          ~rules:
            [
              Rule.of_formula ~benefit:"b1" f1;
              Rule.of_formula ~benefit:"b2" f2;
            ]
          ~constraints ()
      in
      let w = Partial.of_masks xp ~dom ~bits in
      let brute = Engine.create ~backend:Engine.Brute e in
      let sat = Engine.create ~backend:Engine.Sat e in
      let bdd = Engine.create ~backend:Engine.Bdd e in
      let reference = Engine.benefits brute w in
      Engine.benefits sat w = reference
      && Engine.benefits bdd w = reference
      && Engine.consistent sat w = Engine.consistent brute w
      && Engine.consistent bdd w = Engine.consistent brute w
      && Engine.deduced_literals sat w = Engine.deduced_literals brute w
      && Engine.deduced_literals bdd w = Engine.deduced_literals brute w)

(* --- Spec parser -------------------------------------------------------------- *)

let test_spec_roundtrip () =
  List.iter
    (fun e ->
      let printed = Spec.to_string e in
      let e' = Spec.parse_exn printed in
      Alcotest.(check bool) "same universes" true
        (Universe.equal (Exposure.xp e) (Exposure.xp e')
        && Universe.equal (Exposure.xb e) (Exposure.xb e'));
      Alcotest.(check bool) "equivalent formulas" true
        (F.equivalent (Exposure.to_formula e) (Exposure.to_formula e')))
    [ Running.exposure (); Hcov.exposure (); Pet_casestudies.Rsa.exposure () ]

let test_spec_errors () =
  let err s = match Spec.parse s with Error m -> Some m | Ok _ -> None in
  let check_err name input =
    Alcotest.(check bool) name true (err input <> None)
  in
  check_err "missing form" "benefits b1\nrule b1 := p1\n";
  check_err "missing benefits" "form p1\nrule b1 := p1\n";
  check_err "missing rule" "form p1\nbenefits b1\n";
  check_err "unknown declaration" "form p1\nbenefits b1\nbogus x\n";
  check_err "bad rule syntax" "form p1\nbenefits b1\nrule b1 = p1\n";
  check_err "empty rule body" "form p1\nbenefits b1\nrule b1 := \n";
  check_err "bad formula" "form p1\nbenefits b1\nrule b1 := p1 &\n";
  check_err "duplicate form" "form p1\nform p2\nbenefits b1\nrule b1 := p1\n";
  check_err "rule for unknown benefit"
    "form p1\nbenefits b1\nrule b1 := p1\nrule b9 := p1\n";
  check_err "constraint on benefit"
    "form p1\nbenefits b1\nrule b1 := p1\nconstraint b1 -> p1\n";
  check_err "duplicate predicate" "form p1 p1\nbenefits b1\nrule b1 := p1\n";
  (* Line numbers are reported. *)
  match err "form p1\nbenefits b1\nrule b1 := p1 &\n" with
  | Some m ->
    Alcotest.(check bool) "mentions line 3" true (contains m "line 3")
  | None -> Alcotest.fail "expected error"

and test_spec_comments () =
  let e =
    Spec.parse_exn
      "# header\nform p1 # trailing\nbenefits b1\nrule b1 := p1 # why not\n"
  in
  Alcotest.(check int) "one predicate" 1 (Universe.size (Exposure.xp e))

let () =
  let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests) in
  Alcotest.run "pet_rules"
    [
      ("rule", [ Alcotest.test_case "of_formula" `Quick test_rule_of_formula ]);
      ( "exposure",
        [
          Alcotest.test_case "validation" `Quick test_exposure_validation;
          Alcotest.test_case "accessors" `Quick test_exposure_accessors;
          Alcotest.test_case "benefits of assignment" `Quick
            test_benefits_of_assignment;
          Alcotest.test_case "realistic/eligible" `Quick
            test_realistic_eligible;
          Alcotest.test_case "implications" `Quick test_implications;
        ] );
      ( "engine",
        [
          Alcotest.test_case "paper proof facts" `Quick
            test_proof_relation_paper_facts;
          Alcotest.test_case "backends agree exhaustively" `Slow
            test_backends_agree_exhaustively;
          Alcotest.test_case "hcov deduction" `Quick test_deduced_literals_hcov;
          Alcotest.test_case "vacuous entailment" `Quick
            test_inconsistent_is_vacuous;
          Alcotest.test_case "universe mismatch" `Quick
            test_engine_universe_mismatch;
        ] );
      ( "spec",
        [
          Alcotest.test_case "roundtrip" `Quick test_spec_roundtrip;
          Alcotest.test_case "errors" `Quick test_spec_errors;
          Alcotest.test_case "comments" `Quick test_spec_comments;
        ] );
      qsuite "engine-properties" [ prop_backends_agree_random ];
    ]
