module Atlas = Pet_minimize.Atlas

type recruit = {
  player : int;
  previous_mas : int;
  previous_payoff : float;
  new_payoff : float;
}

type result = {
  mas : int;
  crowd_before : int;
  payoff_before : float;
  payoff_after : float;
  recruits : recruit list;
  beneficiaries : int;
}

let improve ?(max_recruits = 3) profile ~mas =
  let atlas = Profile.atlas profile in
  let base_crowd = Profile.crowd profile mas in
  let payoff crowd = Payoff.value atlas Payoff.Blank ~mas ~crowd in
  let payoff_before = payoff base_crowd in
  let candidates =
    List.filter
      (fun i -> Profile.move_of profile i <> mas)
      (Atlas.players_of_mas atlas mas)
  in
  (* Greedy: at each step recruit the candidate that maximizes the move's
     payoff; stop when no candidate strictly improves it. *)
  let rec grow crowd chosen candidates k =
    if k = 0 then (crowd, List.rev chosen)
    else
      let best =
        List.fold_left
          (fun best i ->
            let gain = payoff (i :: crowd) in
            match best with
            | Some (_, g) when g >= gain -> best
            | _ when gain > payoff crowd -> Some (i, gain)
            | _ -> best)
          None candidates
      in
      match best with
      | None -> (crowd, List.rev chosen)
      | Some (i, _) ->
        grow (i :: crowd) (i :: chosen)
          (List.filter (( <> ) i) candidates)
          (k - 1)
  in
  let crowd_after, chosen = grow base_crowd [] candidates max_recruits in
  if chosen = [] then None
  else
    let payoff_after = payoff crowd_after in
    let recruits =
      List.map
        (fun i ->
          let previous_mas = Profile.move_of profile i in
          let previous_payoff =
            Payoff.value atlas Payoff.Blank ~mas:previous_mas
              ~crowd:(Profile.crowd profile previous_mas)
          in
          { player = i; previous_mas; previous_payoff; new_payoff = payoff_after })
        chosen
    in
    Some
      {
        mas;
        crowd_before = List.length base_crowd;
        payoff_before;
        payoff_after;
        recruits;
        beneficiaries = List.length base_crowd;
      }

type plan = {
  steps : result list;
  final : Profile.t;
  recruited : int;
  floor_before : float;
  floor_after : float;
}

let floor_of profile =
  let atlas = Profile.atlas profile in
  let lowest = ref infinity in
  for m = 0 to Atlas.mas_count atlas - 1 do
    match Profile.crowd profile m with
    | [] -> ()
    | crowd ->
      lowest := min !lowest (Payoff.value atlas Payoff.Blank ~mas:m ~crowd)
  done;
  if !lowest = infinity then 0. else !lowest

let apply_step profile (r : result) =
  let atlas = Profile.atlas profile in
  let moved = List.map (fun rec_ -> rec_.player) r.recruits in
  Profile.make atlas (fun i ->
      if List.mem i moved then r.mas else Profile.move_of profile i)

let plan ?(budget = 5) profile =
  let atlas = Profile.atlas profile in
  let floor_before = floor_of profile in
  (* Played moves in ascending payoff order; try to lift the worst one
     first, re-evaluating after each applied step. *)
  let rec go profile steps recruited =
    if recruited >= budget then (profile, steps, recruited)
    else
      let candidates =
        List.init (Atlas.mas_count atlas) Fun.id
        |> List.filter (fun m -> Profile.crowd profile m <> [])
        |> List.map (fun m ->
               ( Payoff.value atlas Payoff.Blank ~mas:m
                   ~crowd:(Profile.crowd profile m),
                 m ))
        |> List.sort compare
      in
      let rec try_moves = function
        | [] -> None
        | (_, m) :: rest -> (
          match improve ~max_recruits:(budget - recruited) profile ~mas:m with
          | Some r -> Some r
          | None -> try_moves rest)
      in
      match try_moves candidates with
      | None -> (profile, steps, recruited)
      | Some r ->
        go (apply_step profile r) (r :: steps)
          (recruited + List.length r.recruits)
  in
  let final, steps, recruited = go profile [] 0 in
  {
    steps = List.rev steps;
    final;
    recruited;
    floor_before;
    floor_after = floor_of final;
  }

let pp ppf r =
  Fmt.pf ppf
    "MAS %d: PO_blank %.0f -> %.0f for %d players, recruiting %d volunteer(s)"
    r.mas r.payoff_before r.payoff_after r.beneficiaries
    (List.length r.recruits)
