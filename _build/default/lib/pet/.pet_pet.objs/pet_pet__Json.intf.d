lib/pet/json.mli: Fmt
