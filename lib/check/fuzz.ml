module Json = Pet_pet.Json
module Spec = Pet_rules.Spec
module Exposure = Pet_rules.Exposure
module Engine = Pet_rules.Engine
module Total = Pet_valuation.Total
module Partial = Pet_valuation.Partial
module Generate = Pet_rules.Generate
module Service = Pet_server.Service
module Registry = Pet_server.Registry
module Proto = Pet_server.Proto
module Code = Pet_compile.Code

type stats = {
  requests : int;
  ok : int;
  errors : int;
  invalid_responses : int;
  crashes : (string * string) list;
  by_code : (string * int) list;
  cursor_checked : int;
  cursor_fast : int;
  cursor_mismatches : (string * string) list;
  boundary_checks : int;
  boundary_failures : (string * string) list;
}

(* Small generated rule sets so compiled providers are cheap and the
   registry sees several distinct digests (exercising LRU eviction). *)
let spec_config =
  {
    Generate.predicates = 5;
    benefits = 2;
    conjunctions = 2;
    width = 2;
    implications = 1;
  }

let truncate_for_display line =
  if String.length line <= 120 then line else String.sub line 0 120 ^ "…"

let printable = "abcdefghijklmnopqrstuvwxyz0123456789_:{}[]\",\\ &|!()=->\n"

let run ?(seed = 0) ~count () =
  let rng = Random.State.make [| 0xf022; seed; count |] in
  let tick = ref 0. in
  let service =
    Service.create ~capacity:4 ~ttl:500.
      ~resolve:(fun _ -> None)
      ~now:(fun () -> tick := !tick +. 1.; !tick)
      ()
  in
  let corpora =
    List.map
      (fun i ->
        let e = Generate.exposure ~config:spec_config ~seed:(seed + i) () in
        let text = Spec.to_string e in
        (text, Registry.digest text, Array.of_list (Exposure.eligible e)))
      [ 0; 1; 2; 3; 4; 5 ]
  in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let pick_corpus () = pick corpora in
  let junk n =
    String.init
      (Random.State.int rng (max 1 n))
      (fun _ ->
        if Random.State.bool rng then
          printable.[Random.State.int rng (String.length printable)]
        else Char.chr (Random.State.int rng 256))
  in
  let session () = Printf.sprintf "s%d" (Random.State.int rng 24) in
  let valuation () =
    match Random.State.int rng 3 with
    | 0 ->
      (* The right length for the generated universes. *)
      String.init spec_config.Generate.predicates (fun _ ->
          if Random.State.bool rng then '1' else '0')
    | 1 -> junk 8
    | _ ->
      let _, _, eligible = pick_corpus () in
      if Array.length eligible = 0 then junk 5
      else Total.to_string eligible.(Random.State.int rng (Array.length eligible))
  in
  let envelope method_ params =
    Json.to_string
      (Json.Obj
         [
           ("pet", Json.Int Proto.version);
           ("id", Json.Int (Random.State.int rng 1000));
           ("method", Json.String method_);
           ("params", Json.Obj params);
         ])
  in
  let rules_params () =
    match Random.State.int rng 4 with
    | 0 ->
      let text, _, _ = pick_corpus () in
      [ ("rules", Json.String text) ]
    | 1 ->
      let _, digest, _ = pick_corpus () in
      [ ("digest", Json.String digest) ]
    | 2 -> [ ("source", Json.String (junk 6)) ]
    | _ -> [ ("rules", Json.String (junk 60)) ]
  in
  let base_line () =
    match Random.State.int rng 10 with
    | 0 -> envelope "publish_rules" (rules_params ())
    | 1 -> envelope "new_session" (rules_params ())
    | 2 ->
      envelope "get_report"
        [
          ("session", Json.String (session ()));
          ("valuation", Json.String (valuation ()));
        ]
    | 3 ->
      envelope "choose_option"
        (("session", Json.String (session ()))
        ::
        (if Random.State.bool rng then
           [ ("option", Json.Int (Random.State.int rng 12 - 3)) ]
         else [ ("mas", Json.String (junk 6)) ]))
    | 4 -> envelope "submit_form" [ ("session", Json.String (session ())) ]
    | 5 -> envelope "audit" (rules_params ())
    | 6 -> envelope "stats" []
    | 7 -> envelope (junk 10) [ (junk 4, Json.String (junk 4)) ]
    | 8 ->
      (* Wrong or missing envelope versions and shapes. *)
      (match Random.State.int rng 4 with
      | 0 -> {|{"pet":99,"method":"stats"}|}
      | 1 -> {|{"method":"stats"}|}
      | 2 -> {|[1,2,3]|}
      | _ -> {|{"pet":"one","method":"stats","params":7}|})
    | _ -> junk 80
  in
  (* Expensive lines built once and replayed. *)
  let oversized = String.make (Proto.max_line_bytes + 1) 'x' in
  let deep = String.concat "" (List.init 600 (fun _ -> "[")) in
  let mutate line =
    match Random.State.int rng 12 with
    | 0 when String.length line > 1 ->
      String.sub line 0 (Random.State.int rng (String.length line))
    | 1 ->
      String.mapi
        (fun _ c ->
          if Random.State.int rng 20 = 0 then Char.chr (Random.State.int rng 256)
          else c)
        line
    | 2 ->
      let i = Random.State.int rng (String.length line + 1) in
      String.sub line 0 i ^ junk 12
      ^ String.sub line i (String.length line - i)
    | 3 -> line ^ line
    | 4 -> deep
    | 5 when Random.State.int rng 50 = 0 -> oversized
    | _ -> line
  in
  let requests = ref 0
  and ok = ref 0
  and errors = ref 0
  and invalid = ref 0
  and crashes = ref []
  and codes = Hashtbl.create 16 in
  let cursor_checked = ref 0
  and cursor_fast = ref 0
  and cursor_mismatches = ref [] in
  (* Every fuzzed line also checks the zero-allocation cursor decoder's
     soundness contract: [decode_fast line = Some env] must imply
     [decode line = Ok env], structurally. [None] is always fine — the
     service falls back to the full decoder. *)
  let check_cursor line =
    incr cursor_checked;
    match Proto.decode_fast line with
    | None -> ()
    | exception exn ->
      cursor_mismatches :=
        ( truncate_for_display line,
          "decode_fast raised " ^ Printexc.to_string exn )
        :: !cursor_mismatches
    | Some fast -> (
      incr cursor_fast;
      match Proto.decode line with
      | Ok full when full = fast -> ()
      | Ok _ ->
        cursor_mismatches :=
          (truncate_for_display line, "fast and full decodes disagree")
          :: !cursor_mismatches
      | Error (_, _, err) ->
        cursor_mismatches :=
          ( truncate_for_display line,
            Printf.sprintf "fast decode accepts what the full decoder \
                            rejects (%s: %s)"
              (Proto.code_name err.Proto.code) err.Proto.message )
          :: !cursor_mismatches)
  in
  let feed line =
    incr requests;
    check_cursor line;
    match Service.handle_line service line with
    | exception exn ->
      crashes := (truncate_for_display line, Printexc.to_string exn) :: !crashes
    | response -> (
      match Json.parse response with
      | Ok (Json.Obj _ as o) -> (
        match (Json.member "ok" o, Json.member "error" o) with
        | Some _, None -> incr ok
        | None, Some e ->
          incr errors;
          let code =
            match Option.bind (Json.member "code" e) Json.string_opt with
            | Some c -> c
            | None -> "<uncoded>"
          in
          Hashtbl.replace codes code
            (1 + Option.value ~default:0 (Hashtbl.find_opt codes code))
        | _ -> incr invalid)
      | Ok _ | Error _ -> incr invalid)
  in
  (* Seed real state so mutated requests land on live sessions too. *)
  let text, digest, eligible = pick_corpus () in
  feed (envelope "publish_rules" [ ("rules", Json.String text) ]);
  feed (envelope "new_session" [ ("digest", Json.String digest) ]);
  if Array.length eligible > 0 then
    feed
      (envelope "get_report"
         [
           ("session", Json.String "s0");
           ("valuation", Json.String (Total.to_string eligible.(0)));
         ]);
  while !requests < count do
    feed (mutate (base_line ()))
  done;
  (* The compiled backend tabulates forms up to
     [Code.max_tabulated_predicates] and silently switches to its BDD
     fallback above, so fuzz exposures on both sides of that line —
     including >20 predicates, far beyond anything the enumeration-based
     helpers can touch. Each generated form is checked compiled-vs-SAT
     (an independent implementation that scales) on random partial
     valuations; [Exposure.realistic] is useless here because it
     enumerates all 2^n totals. *)
  let boundary_checks = ref 0
  and boundary_failures = ref [] in
  let tab = Code.max_tabulated_predicates in
  let boundary_sizes = [ tab - 1; tab; tab + 1; tab + 5 ] in
  let rounds = max 1 (count / 1000) in
  List.iter
    (fun n ->
      let config =
        {
          Generate.predicates = n;
          benefits = 3;
          conjunctions = 3;
          width = 3;
          implications = 2;
        }
      in
      for round = 0 to rounds - 1 do
        let form_seed = seed + (n * 1000) + round in
        let e = Generate.exposure ~config ~seed:form_seed () in
        let compiled = Engine.create ~backend:Engine.Compiled e in
        let sat = Engine.create ~backend:Engine.Sat e in
        let xp = Exposure.xp e in
        for _ = 0 to 15 do
          let dom = Random.State.int rng (1 lsl n) in
          let bits = Random.State.int rng (1 lsl n) land dom in
          let w = Partial.of_masks xp ~dom ~bits in
          incr boundary_checks;
          let fail what =
            boundary_failures :=
              ( Printf.sprintf "%d predicates, form seed %d" n form_seed,
                Printf.sprintf "compiled vs sat diverge on %s of %s" what
                  (Partial.to_string w) )
              :: !boundary_failures
          in
          if Engine.consistent compiled w <> Engine.consistent sat w then
            fail "consistent";
          if
            not
              (List.equal String.equal
                 (Engine.benefits compiled w)
                 (Engine.benefits sat w))
          then fail "benefits";
          if Engine.deduced_literals compiled w <> Engine.deduced_literals sat w
          then fail "deduced_literals"
        done
      done)
    boundary_sizes;
  {
    requests = !requests;
    ok = !ok;
    errors = !errors;
    invalid_responses = !invalid;
    crashes = List.rev !crashes;
    by_code =
      Hashtbl.fold (fun c n acc -> (c, n) :: acc) codes []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
    cursor_checked = !cursor_checked;
    cursor_fast = !cursor_fast;
    cursor_mismatches = List.rev !cursor_mismatches;
    boundary_checks = !boundary_checks;
    boundary_failures = List.rev !boundary_failures;
  }

let pp ppf s =
  Fmt.pf ppf
    "fuzz: %d requests, %d ok, %d structured errors, %d invalid responses, \
     %d crashes"
    s.requests s.ok s.errors s.invalid_responses (List.length s.crashes);
  Fmt.pf ppf
    "@.fuzz: %d/%d lines fast-decoded, %d cursor mismatches; %d boundary \
     checks, %d failures"
    s.cursor_fast s.cursor_checked
    (List.length s.cursor_mismatches)
    s.boundary_checks
    (List.length s.boundary_failures);
  List.iter
    (fun (line, exn) -> Fmt.pf ppf "@.crash: %s@.  on: %s" exn line)
    s.crashes;
  List.iter
    (fun (line, why) -> Fmt.pf ppf "@.cursor mismatch: %s@.  on: %s" why line)
    s.cursor_mismatches;
  List.iter
    (fun (where, why) -> Fmt.pf ppf "@.boundary failure: %s@.  %s" why where)
    s.boundary_failures

(* --- Store fuzzing -------------------------------------------------------------- *)

module Persist = Pet_server.Persist
module Store = Pet_store.Store

type store_stats = {
  logs : int;
  mutations : (string * int) list;
  recovered_events : int;
  damage_reports : int;
  torn_tails : int;
  replay_errors : int;
  store_violations : (string * string) list;
}

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path contents =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc contents)

let rec remove_tree path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter
        (fun entry -> remove_tree (Filename.concat path entry))
        (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(* A deterministic event stream over generated rule sets: rule
   registrations, session lifecycles and sequential grants — the same
   shapes a durable service writes, without compiling any engine. *)
let generate_events rng ~seed =
  let exposure = Generate.exposure ~config:spec_config ~seed () in
  let text = Spec.to_string exposure in
  let digest = Pet_server.Registry.digest text in
  let predicates =
    Pet_valuation.Universe.size (Pet_rules.Exposure.xp exposure)
  in
  let events = ref [ Persist.Rules { digest; text } ] in
  let grants = ref 0 in
  let sessions = 3 + Random.State.int rng 6 in
  for i = 0 to sessions - 1 do
    let id = Printf.sprintf "s%d" i in
    let at = float_of_int (i * 10) in
    events :=
      Persist.Session_created { id; digest; tenant = None; at } :: !events;
    if Random.State.int rng 4 > 0 then begin
      let mas =
        String.init predicates (fun _ ->
            match Random.State.int rng 3 with
            | 0 -> '0'
            | 1 -> '1'
            | _ -> '_')
      in
      let benefits = [ Printf.sprintf "b%d" (1 + Random.State.int rng 2) ] in
      events :=
        Persist.Session_chosen { id; mas; benefits; at = at +. 1. } :: !events;
      if Random.State.bool rng then begin
        let grant_id = !grants in
        incr grants;
        events :=
          Persist.Session_submitted { id; grant_id; at = at +. 2. }
          :: Persist.Grant
               {
                 digest;
                 grant_id;
                 form = mas;
                 benefits;
                 session = Some id;
                 tenant = None;
                 revoked = false;
               }
          :: !events
      end
    end
  done;
  List.rev !events

let run_store ?(seed = 0) ~count () =
  let rng = Random.State.make [| 0x570e; seed; count |] in
  let root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pet_fuzz_store_%d" (Unix.getpid ()))
  in
  remove_tree root;
  Unix.mkdir root 0o755;
  let mutation_counts = Hashtbl.create 8 in
  let tally kind =
    Hashtbl.replace mutation_counts kind
      (1 + Option.value ~default:0 (Hashtbl.find_opt mutation_counts kind))
  in
  let recovered = ref 0 and damage = ref 0 and torn = ref 0 in
  let replay_errors = ref 0 in
  let violations = ref [] in
  let violate label detail = violations := (label, detail) :: !violations in
  for i = 0 to count - 1 do
    let dir = Filename.concat root (Printf.sprintf "log%d" i) in
    (* Small segments so mutations regularly land on later segments and
       on segment boundaries. *)
    (match
       Store.open_dir ~segment_bytes:(256 + Random.State.int rng 512)
         ~fsync:false dir
     with
    | Error m -> violate "open_dir on a fresh directory failed" m
    | Ok (store, _) ->
      let events = generate_events rng ~seed:(seed + i) in
      List.iter (Store.append store) events;
      Store.close store;
      let pristine = List.map Persist.to_json events in
      let files =
        Sys.readdir dir |> Array.to_list |> List.sort String.compare
      in
      let mutation = Random.State.int rng 4 in
      (* Truncation models a crash, and crashes only ever tear the
         *active* (last) segment — sealed segments are fsynced before a
         record in a later one is acknowledged. Bit rot (flips, zeroed
         ranges, splices) can land anywhere. *)
      let target =
        if mutation = 1 then List.nth files (List.length files - 1)
        else List.nth files (Random.State.int rng (List.length files))
      in
      let path = Filename.concat dir target in
      let bytes = read_file path in
      let size = String.length bytes in
      let boundaries =
        let t = Hashtbl.create 16 in
        let rec collect offset =
          Hashtbl.replace t offset ();
          match Pet_store.Record.read bytes offset with
          | Pet_store.Record.Record { next; _ } -> collect next
          | _ -> ()
        in
        collect 0;
        t
      in
      (* One mutation per log. [prefix_expected]: the recovered stream
         must be a prefix of what was written (false for splices, which
         can shift valid records into new positions). [detectable]: the
         mutation destroys at least one whole record in a way the
         framing can see, so any event loss must be reported — false
         for no-ops and for truncation exactly on a record boundary,
         which is indistinguishable from a log that simply ends
         there. *)
      let prefix_expected, detectable =
        if size = 0 then begin
          tally "noop";
          (true, false)
        end
        else
          match mutation with
          | 0 ->
            tally "bitflip";
            let b = Bytes.of_string bytes in
            for _ = 0 to Random.State.int rng 4 do
              let at = Random.State.int rng size in
              Bytes.set b at
                (Char.chr
                   (Char.code (Bytes.get b at) lxor (1 lsl Random.State.int rng 8)))
            done;
            write_file path (Bytes.to_string b);
            (true, Bytes.to_string b <> bytes)
          | 1 ->
            tally "truncate";
            let cut = Random.State.int rng size in
            write_file path (String.sub bytes 0 cut);
            (true, not (Hashtbl.mem boundaries cut))
          | 2 ->
            tally "zero";
            let b = Bytes.of_string bytes in
            let at = Random.State.int rng size in
            let len = min (size - at) (1 + Random.State.int rng 16) in
            Bytes.fill b at len '\000';
            write_file path (Bytes.to_string b);
            (true, Bytes.to_string b <> bytes)
          | _ ->
            tally "splice";
            let at = Random.State.int rng (size + 1) in
            let injected =
              String.init
                (1 + Random.State.int rng 24)
                (fun _ -> Char.chr (Random.State.int rng 256))
            in
            write_file path
              (String.sub bytes 0 at ^ injected
              ^ String.sub bytes at (size - at));
            (false, false)
      in
      (* Invariant 1: recovery never raises, whatever the bytes. *)
      (match Store.read dir with
      | exception e ->
        violate "recovery raised"
          (Printf.sprintf "%s on %s" (Printexc.to_string e) target)
      | Error m -> violate "recovery failed outright" m
      | Ok r ->
        recovered := !recovered + List.length r.Store.events;
        damage := !damage + List.length r.Store.damage;
        if r.Store.truncated <> None then incr torn;
        (* Invariant 2: for in-place mutations the clean prefix is a
           prefix of what was written (splices can legitimately decode
           shifted-but-valid records, so they only get invariant 1/3). *)
        if prefix_expected then
          List.iteri
            (fun j event ->
              match List.nth_opt pristine j with
              | Some expected
                when Json.to_string expected
                     = Json.to_string (Persist.to_json event) ->
                ()
              | _ ->
                violate "recovered stream is not a prefix"
                  (Printf.sprintf "log %d, event %d differs" i j))
            r.Store.events;
        (* Invariant 3: losses are localized — fewer events than written
           means verify names damage or a torn tail, with an offset
           inside the file. *)
        if List.length r.Store.events < List.length pristine then begin
          match Store.scan dir with
          | exception e -> violate "scan raised" (Printexc.to_string e)
          | Error m -> violate "scan failed" m
          | Ok reports ->
            let faults =
              List.concat_map
                (fun (f : Store.file_report) ->
                  List.map (fun d -> (f, d)) f.Store.damage)
                reports
            in
            if detectable && faults = [] && r.Store.truncated = None then
              violate "silent loss"
                (Printf.sprintf
                   "log %d: recovered %d of %d events, no damage reported" i
                   (List.length r.Store.events)
                   (List.length pristine))
            else
              List.iter
                (fun ((f : Store.file_report), (d : Store.damage)) ->
                  if d.Store.offset < 0 || d.Store.offset > f.Store.bytes then
                    violate "damage offset out of bounds"
                      (Printf.sprintf "%s: %d (file is %d bytes)" d.Store.file
                         d.Store.offset f.Store.bytes))
                faults
        end;
        (* Invariant 4: the surviving stream replays into a service
           without raising (structured replay errors are possible for
           spliced logs, e.g. a duplicated grant record, and counted). *)
        let service =
          Pet_server.Service.create ~durable:true
            ~resolve:(fun _ -> None)
            ~now:(fun () -> 0.)
            ()
        in
        List.iter
          (fun event ->
            match Pet_server.Service.apply_event service event with
            | Ok () -> ()
            | Error _ -> incr replay_errors
            | exception e ->
              violate "apply_event raised" (Printexc.to_string e))
          r.Store.events;
        (* Invariant 5: the directory stays writable — open (truncating
           any torn tail), append, and the appended record recovers. *)
        match Store.open_dir ~fsync:false dir with
        | exception e -> violate "re-open raised" (Printexc.to_string e)
        | Error m -> violate "re-open failed" m
        | Ok (store, _) -> (
          let marker =
            Persist.Rules
              { digest = Printf.sprintf "marker%d" i; text = "marker" }
          in
          Store.append store marker;
          Store.close store;
          match Store.read dir with
          | Error m -> violate "read-after-append failed" m
          | Ok r' ->
            (* Mid-chain corruption still stops replay before the fresh
               segment holding the marker; the marker must be there
               whenever replay reaches the end of the chain. *)
            if
              r'.Store.damage = []
              && not
                   (List.exists
                      (fun e ->
                        Json.to_string (Persist.to_json e)
                        = Json.to_string (Persist.to_json marker))
                      r'.Store.events)
            then
              violate "append after recovery lost"
                (Printf.sprintf "log %d: marker not recovered" i))));
    remove_tree dir
  done;
  remove_tree root;
  {
    logs = count;
    mutations =
      Hashtbl.fold (fun k n acc -> (k, n) :: acc) mutation_counts []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
    recovered_events = !recovered;
    damage_reports = !damage;
    torn_tails = !torn;
    replay_errors = !replay_errors;
    store_violations = List.rev !violations;
  }

(* --- Corpus fuzzing ------------------------------------------------------------- *)

module Corpus = Pet_corpus.Corpus

type corpus_stats = {
  corpus_requests : int;
  corpus_ok : int;
  corpus_errors : int;
  corpus_invalid : int;
  corpus_crashes : (string * string) list;
  corpus_tenants : int;
  corpus_build_failures : int;
  corpus_updates : int;
  swap_checks : int;
  swap_mismatches : (string * string) list;
}

let run_corpus ?(seed = 0) ~count () =
  let rng = Random.State.make [| 0xc09a; seed; count |] in
  let tick = ref 0. in
  let service =
    (* A deliberately small engine cache: nine tenants across revisions
       overflow six slots, so pinned sessions regularly lose their
       engine to LRU eviction and must survive the tenant-text
       recompile fallback. *)
    Service.create ~capacity:6 ~ttl:5000.
      ~resolve:(fun _ -> None)
      ~now:(fun () ->
        tick := !tick +. 1.;
        !tick)
      ()
  in
  (* Small servable forms (atlas builds are cheap below 13 predicates)
     plus one deliberately oversized tenant whose build must fail. *)
  let scenario = Corpus.scenario ~seed ~lo:8 ~hi:12 ~count:8 () in
  let oversize = Corpus.form ~seed ~size:30 99 in
  let forms = Array.map ref scenario.Corpus.forms in
  let requests = ref 0
  and ok = ref 0
  and errors = ref 0
  and invalid = ref 0
  and crashes = ref [] in
  let build_failures = ref 0
  and updates = ref 0
  and swap_checks = ref 0
  and swap_mismatches = ref [] in
  let next_id = ref 0 in
  let envelope method_ params =
    incr next_id;
    Json.to_string
      (Json.Obj
         [
           ("pet", Json.Int Proto.version);
           ("id", Json.Int !next_id);
           ("method", Json.String method_);
           ("params", Json.Obj params);
         ])
  in
  let feed line =
    incr requests;
    match Service.handle_line service line with
    | exception exn ->
      crashes := (truncate_for_display line, Printexc.to_string exn) :: !crashes;
      None
    | response ->
      (match Json.parse response with
      | Ok (Json.Obj _ as o) -> (
        match (Json.member "ok" o, Json.member "error" o) with
        | Some _, None -> incr ok
        | None, Some _ -> incr errors
        | _ -> incr invalid)
      | Ok _ | Error _ -> incr invalid);
      Some response
  in
  let result_field response field =
    match Json.parse response with
    | Ok o ->
      Option.bind (Json.member "ok" o) (fun r ->
          Option.bind (Json.member field r) Json.string_opt)
    | Error _ -> None
  in
  let publish (f : Corpus.form) quota =
    let params =
      ("rules", Json.String f.Corpus.text)
      :: ("tenant", Json.String f.Corpus.name)
      :: (match quota with None -> [] | Some q -> [ ("quota", Json.Int q) ])
    in
    ignore (feed (envelope "publish_rules" params))
  in
  let barrier name =
    match
      feed (envelope "tenant" [ ("name", Json.String name); ("wait", Json.Bool true) ])
    with
    | None -> None
    | Some response -> result_field response "state"
  in
  (* Publish the whole corpus up front, then wait each build out.
     Tenants 4.. get a small quota so quota refusals happen live. *)
  Array.iteri
    (fun i f -> publish !f (if i >= 4 then Some 3 else None))
    forms;
  publish oversize None;
  Array.iter
    (fun f ->
      match barrier (!f).Corpus.name with
      | Some "failed" -> incr build_failures
      | _ -> ())
    forms;
  (match barrier oversize.Corpus.name with
  | Some "failed" -> incr build_failures
  | _ -> ());
  (* Sessions that reported successfully, pinned to the tenant version
     they opened under: (tenant index, report line, report response). *)
  let pinned = ref [] in
  let junk n =
    String.init
      (1 + Random.State.int rng n)
      (fun _ -> printable.[Random.State.int rng (String.length printable)])
  in
  let open_and_report i =
    let f = !(forms.(i)) in
    match feed (envelope "new_session" [ ("tenant", Json.String f.Corpus.name) ]) with
    | None -> ()
    | Some response -> (
      match result_field response "session" with
      | None -> ()
      | Some sid ->
        let v = Corpus.valuation ~seed:(Random.State.int rng 10000) f 0 in
        let line =
          envelope "get_report"
            [ ("session", Json.String sid); ("valuation", Json.String v) ]
        in
        (match feed line with
        | Some report -> (
          match Json.parse report with
          | Ok o when Json.member "ok" o <> None ->
            pinned := (i, sid, line, report) :: !pinned;
            if List.length !pinned > 8 then
              pinned := List.filteri (fun j _ -> j < 8) !pinned
          | _ -> ())
        | None -> ()))
  in
  (* The hot-swap invariant: a session opened under version [v] keeps
     answering under [v]'s rules after any number of updates, so
     replaying its exact report line must return byte-identical
     bytes (same request id, same pinned engine). *)
  let swap_check () =
    List.iter
      (fun (i, _sid, line, before) ->
        incr swap_checks;
        match Service.handle_line service line with
        | exception exn ->
          swap_mismatches :=
            (truncate_for_display line, "re-report raised " ^ Printexc.to_string exn)
            :: !swap_mismatches
        | after ->
          incr requests;
          if after <> before then
            swap_mismatches :=
              ( truncate_for_display line,
                Printf.sprintf
                  "pinned session on tenant %s answered differently after a \
                   version swap"
                  (!(forms.(i))).Corpus.name )
              :: !swap_mismatches)
      !pinned
  in
  while !requests < count do
    let i = Corpus.pick rng scenario.Corpus.popularity in
    match Random.State.int rng 10 with
    | 0 | 1 | 2 | 3 -> open_and_report i
    | 4 | 5 -> (
      (* Hot rule migration on a live tenant, then verify every pinned
         session still answers byte-identically. *)
      let f = Corpus.update !(forms.(i)) in
      forms.(i) := f;
      ignore
        (feed
           (envelope "update_rules"
              [
                ("tenant", Json.String f.Corpus.name);
                ("rules", Json.String f.Corpus.text);
              ]));
      incr updates;
      match barrier f.Corpus.name with
      | Some "failed" -> incr build_failures
      | _ -> swap_check ())
    | 6 -> (
      (* Retire a pinned session through choose/submit. *)
      match !pinned with
      | [] -> ()
      | (_, sid, _, _) :: rest ->
        pinned := rest;
        ignore
          (feed
             (envelope "choose_option"
                [ ("session", Json.String sid); ("option", Json.Int 0) ]));
        ignore (feed (envelope "submit_form" [ ("session", Json.String sid) ])))
    | 7 ->
      (* The tenant that can never serve: build_failed on every open. *)
      ignore
        (feed
           (envelope "new_session"
              [ ("tenant", Json.String oversize.Corpus.name) ]))
    | 8 ->
      (* Hostile tenant traffic: unknown names, junk updates, republish
         conflicts. *)
      let f = !(forms.(i)) in
      let neighbour = !(forms.((i + 1) mod Array.length forms)) in
      ignore
        (feed
           (match Random.State.int rng 4 with
           | 0 -> envelope "new_session" [ ("tenant", Json.String (junk 12)) ]
           | 1 ->
             envelope "update_rules"
               [
                 ("tenant", Json.String (junk 12));
                 ("rules", Json.String f.Corpus.text);
               ]
           | 2 ->
             envelope "publish_rules"
               [
                 ("rules", Json.String f.Corpus.text);
                 ("tenant", Json.String neighbour.Corpus.name);
               ]
           | _ ->
             envelope "update_rules"
               [
                 ("tenant", Json.String f.Corpus.name);
                 ("rules", Json.String (junk 60));
               ]))
    | _ ->
      (* Byte-mutated tenant requests must still draw structured
         envelopes. *)
      let line =
        envelope "tenant"
          [ ("name", Json.String (!(forms.(i))).Corpus.name) ]
      in
      let b = Bytes.of_string line in
      for _ = 0 to Random.State.int rng 4 do
        let at = Random.State.int rng (Bytes.length b) in
        Bytes.set b at printable.[Random.State.int rng (String.length printable)]
      done;
      ignore (feed (Bytes.to_string b))
  done;
  ignore (feed (envelope "stats" []));
  Service.shutdown service;
  {
    corpus_requests = !requests;
    corpus_ok = !ok;
    corpus_errors = !errors;
    corpus_invalid = !invalid;
    corpus_crashes = List.rev !crashes;
    corpus_tenants = Array.length forms + 1;
    corpus_build_failures = !build_failures;
    corpus_updates = !updates;
    swap_checks = !swap_checks;
    swap_mismatches = List.rev !swap_mismatches;
  }

let pp_corpus ppf s =
  Fmt.pf ppf
    "fuzz-corpus: %d requests over %d tenants, %d ok, %d structured errors, \
     %d invalid responses, %d crashes"
    s.corpus_requests s.corpus_tenants s.corpus_ok s.corpus_errors
    s.corpus_invalid
    (List.length s.corpus_crashes);
  Fmt.pf ppf
    "@.fuzz-corpus: %d updates, %d build failures, %d swap checks, %d \
     mismatches"
    s.corpus_updates s.corpus_build_failures s.swap_checks
    (List.length s.swap_mismatches);
  List.iter
    (fun (line, exn) -> Fmt.pf ppf "@.crash: %s@.  on: %s" exn line)
    s.corpus_crashes;
  List.iter
    (fun (line, why) -> Fmt.pf ppf "@.swap mismatch: %s@.  on: %s" why line)
    s.swap_mismatches

let pp_store ppf s =
  Fmt.pf ppf
    "fuzz-store: %d mutated logs (%a), %d events recovered, %d damage \
     reports, %d torn tails, %d replay errors, %d violations"
    s.logs
    Fmt.(list ~sep:(any ", ") (pair ~sep:(any " ") string int))
    (List.map (fun (k, n) -> (k, n)) s.mutations)
    s.recovered_events s.damage_reports s.torn_tails s.replay_errors
    (List.length s.store_violations);
  List.iter
    (fun (label, detail) -> Fmt.pf ppf "@.violation: %s@.  %s" label detail)
    s.store_violations

(* --- Consent-lifecycle fuzzing --------------------------------------------------- *)

module Audit = Pet_audit.Audit
module Record = Pet_store.Record

type consent_stats = {
  rounds : int;
  consent_requests : int;
  revokes : int;
  expiries : int;
  crash_recoveries : int;
  audits_passed : int;
  injections_caught : int;
  consent_violations : (string * string) list;
}

let run_consent ?(seed = 0) ~count () =
  let rng = Random.State.make [| 0xc015; seed; count |] in
  let root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pet_fuzz_consent_%d" (Unix.getpid ()))
  in
  remove_tree root;
  Unix.mkdir root 0o755;
  let requests = ref 0
  and revokes = ref 0
  and expiries = ref 0
  and recoveries = ref 0
  and audits = ref 0
  and caught = ref 0 in
  let violations = ref [] in
  let violate label detail = violations := (label, detail) :: !violations in
  let tick = ref 0. in
  let now () =
    tick := !tick +. 1.;
    !tick
  in
  let next_id = ref 0 in
  let envelope method_ params =
    incr next_id;
    Json.to_string
      (Json.Obj
         [
           ("pet", Json.Int Proto.version);
           ("id", Json.Int !next_id);
           ("method", Json.String method_);
           ("params", Json.Obj params);
         ])
  in
  (* Feed one request; [Ok payload] for an ok response, [Error code]
     for a structured error — a crash is a violation outright. *)
  let feed service method_ params =
    incr requests;
    let line = envelope method_ params in
    match Service.handle_line service line with
    | exception exn ->
      violate "handle_line raised"
        (Printf.sprintf "%s on: %s" (Printexc.to_string exn)
           (truncate_for_display line));
      Error "crash"
    | response -> (
      match Json.parse response with
      | Ok (Json.Obj _ as o) -> (
        match (Json.member "ok" o, Json.member "error" o) with
        | Some payload, None -> Ok payload
        | None, Some e ->
          Error
            (Option.value ~default:"?"
               (Option.bind (Json.member "code" e) Json.string_opt))
        | _ ->
          violate "malformed response" (truncate_for_display response);
          Error "malformed")
      | _ ->
        violate "unparsable response" (truncate_for_display response);
        Error "unparsable")
  in
  let str_of payload key =
    Option.bind (Json.member key payload) Json.string_opt
  in
  for i = 0 to count - 1 do
    let dir = Filename.concat root (Printf.sprintf "log%d" i) in
    match
      Store.open_dir ~segment_bytes:(512 + Random.State.int rng 1024)
        ~fsync:false dir
    with
    | Error m -> violate "open_dir failed" m
    | Ok (store, _) ->
      let service =
        Service.create ~durable:true ~resolve:(fun _ -> None) ~now ()
      in
      Service.set_sink service (Store.sink store);
      let exposure =
        Generate.exposure ~config:spec_config ~seed:(seed + i) ()
      in
      let text = Spec.to_string exposure in
      let predicates =
        Pet_valuation.Universe.size (Exposure.xp exposure)
      in
      ignore (feed service "publish_rules" [ ("rules", Json.String text) ]);
      (* Run a handful of full lifecycles, then revoke or expire some of
         the submitted sessions. *)
      let submitted = ref [] in
      let sessions = 3 + Random.State.int rng 5 in
      for _ = 1 to sessions do
        match feed service "new_session" [ ("rules", Json.String text) ] with
        | Error _ -> ()
        | Ok payload -> (
          match str_of payload "session" with
          | None -> violate "new_session without id" "no session field"
          | Some sid -> (
            let v =
              String.init predicates (fun _ ->
                  if Random.State.bool rng then '1' else '0')
            in
            match
              feed service "get_report"
                [ ("session", Json.String sid); ("valuation", Json.String v) ]
            with
            | Error _ -> () (* ineligible valuations are expected *)
            | Ok _ -> (
              match
                feed service "choose_option"
                  [ ("session", Json.String sid); ("option", Json.Int 0) ]
              with
              | Error _ -> ()
              | Ok _ -> (
                match
                  feed service "submit_form" [ ("session", Json.String sid) ]
                with
                | Error _ -> ()
                | Ok _ -> submitted := sid :: !submitted))))
      done;
      List.iter
        (fun sid ->
          match Random.State.int rng 10 with
          | 0 | 1 | 2 | 3 ->
            if feed service "revoke" [ ("session", Json.String sid) ] = Error "crash"
            then ()
            else incr revokes
          | 4 | 5 | 6 ->
            let after = float_of_int (1 + Random.State.int rng 20) in
            if
              feed service "expire"
                [ ("session", Json.String sid); ("after", Json.Float after) ]
              = Error "crash"
            then ()
            else incr expiries
          | _ -> ())
        !submitted;
      (* Let the clock run past the armed horizons: every request ticks
         it and runs a sweep step. *)
      for _ = 1 to 30 do
        ignore (feed service "stats" [])
      done;
      (* kill -9: no graceful shutdown, then tear the active segment at
         a random byte — sometimes mid-record, sometimes a no-op. *)
      Store.close store;
      (match Audit.run dir with
      | Error m -> violate "audit on healthy log failed" m
      | Ok report ->
        if Audit.pass report then incr audits
        else
          violate "healthy log failed its audit"
            (Json.to_string (Audit.to_json report)));
      let segs =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> String.length f > 4 && String.sub f 0 4 = "wal-")
        |> List.sort String.compare
      in
      let last_seg = List.nth segs (List.length segs - 1) in
      let path = Filename.concat dir last_seg in
      let bytes = read_file path in
      let size = String.length bytes in
      if size > 0 then begin
        let cut = size - Random.State.int rng (min size 64) in
        write_file path (String.sub bytes 0 cut)
      end;
      (* The audit tolerates the torn tail exactly like recovery does:
         a note, never a violation. *)
      (match Audit.run dir with
      | Error m -> violate "audit on torn log failed" m
      | Ok report ->
        if Audit.pass report then incr audits
        else
          violate "torn log failed its audit"
            (Json.to_string (Audit.to_json report)));
      (* Recover into a fresh service: replay must not raise, passed
         horizons apply, and whatever revocations and expiries survived
         the tear must still refuse a second lifecycle request. *)
      incr recoveries;
      (match Store.open_dir ~fsync:false dir with
      | Error m -> violate "recovery failed" m
      | Ok (store, recovery) ->
        let fresh =
          Service.create ~durable:true ~resolve:(fun _ -> None) ~now ()
        in
        List.iter
          (fun event ->
            match Service.apply_event fresh event with
            | Ok () -> ()
            | Error m -> violate "replay error" m
            | exception e -> violate "replay raised" (Printexc.to_string e))
          recovery.Store.events;
        ignore (Service.apply_horizons fresh);
        Service.set_sink fresh (Store.sink store);
        let revoked_ids =
          List.filter_map
            (function
              | Persist.Session_revoked { id; _ } -> Some id
              | _ -> None)
            recovery.Store.events
        in
        let expired_ids =
          List.filter_map
            (function
              | Persist.Session_expiry { id; horizon; _ }
                when horizon <= !tick ->
                Some id
              | _ -> None)
            recovery.Store.events
        in
        List.iter
          (fun sid ->
            match feed fresh "revoke" [ ("session", Json.String sid) ] with
            | Error "bad_state" -> ()
            | Error other ->
              violate "tombstone resurrected"
                (Printf.sprintf
                   "revoked session %S answered %s after recovery" sid other)
            | Ok _ ->
              violate "tombstone resurrected"
                (Printf.sprintf "session %S revoked twice across a crash" sid))
          revoked_ids;
        List.iter
          (fun sid ->
            if not (List.mem sid revoked_ids) then
              match feed fresh "revoke" [ ("session", Json.String sid) ] with
              | Error "bad_state" -> ()
              | Error other ->
                violate "horizon not applied"
                  (Printf.sprintf
                     "expired session %S answered %s after recovery" sid other)
              | Ok _ ->
                violate "horizon not applied"
                  (Printf.sprintf
                     "session %S revocable after its horizon passed" sid))
          expired_ids;
        Store.close store;
        (* Injection: forge a grant re-establishing a revoked session in
           a fresh segment. The offline audit must catch it — this is
           the attack it exists for. *)
        match revoked_ids with
        | [] -> ()
        | rid :: _ -> (
          let original =
            List.find_map
              (function
                | Persist.Grant { session = Some sid; form; benefits; digest; _ }
                  when sid = rid ->
                  Some (digest, form, benefits)
                | _ -> None)
              recovery.Store.events
          in
          match original with
          | None -> ()
          | Some (digest, form, benefits) ->
            let grant_id =
              List.fold_left
                (fun acc -> function
                  | Persist.Grant { grant_id; _ } -> max acc (grant_id + 1)
                  | _ -> acc)
                0 recovery.Store.events
            in
            let forged =
              Persist.Grant
                {
                  digest;
                  grant_id;
                  form;
                  benefits;
                  session = Some rid;
                  tenant = None;
                  revoked = false;
                }
            in
            let seg_no =
              List.fold_left
                (fun acc f ->
                  match
                    int_of_string_opt (String.sub f 4 (String.length f - 8))
                  with
                  | Some n -> max acc (n + 1)
                  | None -> acc)
                0
                (Sys.readdir dir |> Array.to_list
                |> List.filter (fun f ->
                       String.length f > 8 && String.sub f 0 4 = "wal-"))
            in
            write_file
              (Filename.concat dir (Printf.sprintf "wal-%06d.log" seg_no))
              (Record.frame (Json.to_string (Persist.to_json forged)));
            match Audit.run dir with
            | Error m -> violate "audit on forged log failed" m
            | Ok report ->
              let revocation_flagged =
                List.exists
                  (fun (p : Audit.property) ->
                    p.Audit.name = "revocation" && p.Audit.violations <> [])
                  report.Audit.properties
              in
              if revocation_flagged then incr caught
              else
                violate "forged grant not caught"
                  (Printf.sprintf "log %d: audit passed a post-revocation grant"
                     i)));
      remove_tree dir
  done;
  remove_tree root;
  {
    rounds = count;
    consent_requests = !requests;
    revokes = !revokes;
    expiries = !expiries;
    crash_recoveries = !recoveries;
    audits_passed = !audits;
    injections_caught = !caught;
    consent_violations = List.rev !violations;
  }

let pp_consent ppf s =
  Fmt.pf ppf
    "fuzz-consent: %d rounds, %d requests, %d revokes, %d expiries, %d \
     crash recoveries, %d audits passed, %d injections caught, %d violations"
    s.rounds s.consent_requests s.revokes s.expiries s.crash_recoveries
    s.audits_passed s.injections_caught
    (List.length s.consent_violations);
  List.iter
    (fun (label, detail) -> Fmt.pf ppf "@.violation: %s@.  %s" label detail)
    s.consent_violations
