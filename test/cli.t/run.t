The minimize subcommand prints the MAS of a fully filled form
(Algorithm 1 on the paper's running example):

  $ ../../bin/pet.exe minimize running -v 111
  _11  proves {b1}
  1__  proves {b1}

  $ ../../bin/pet.exe minimize running -v 100
  100  proves {b1, b2, b3}

The consent report (Algorithm 2 recommendation, payoffs, disclosures):

  $ ../../bin/pet.exe inform running -v 111
  Your full form:    111
  Benefits due:      b1
  You have 2 way(s) to prove eligibility:
    _11   <- recommended
      hides 1 predicate(s) from any attacker; 1 other applicant(s) look identical
    1__
      hides 0 predicate(s) from any attacker; 0 other applicant(s) look identical
      note: not sending p2, p3 still reveals p2=1, p3=1
  Minimization: 33% of the form stays blank

JSON output for machine consumption:

  $ ../../bin/pet.exe inform running -v 011 --json
  {"valuation":"011","granted":["b1"],"options":[{"mas":"_11","benefits":["b1"],"po_blank":1,"po_sm":1,"po_weighted":null,"published":[{"p2":true},{"p3":true}],"deduced":[],"protected":["p1"],"crowd":2,"recommended":true}],"minimization_ratio":0.33333333333333331}

The atlas subcommand reproduces Tables 2 and 3 for H-cov:

  $ ../../bin/pet.exe atlas hcov
  Number of MAS: 6
  Number of valuations: 1560
  Number of predicates per MAS: 2 to 6
  Number of valuations with 1 MAS: 1272
  Number of valuations with 2 MAS: 280
  Number of valuations with 3 MAS: 8
  
  
  MAS                  potential   forced    plays    payoff
  0__________1              1024      744     1024        10
  0_0__1___11_               128       56       64         6
  0_0_10__1___               128       64       64         6
  0_0_1110____                64       24       24         5
  0_110_______               256      128      128         7
  110_0_______               256      256      256         8

Figure 1 as DOT:

  $ ../../bin/pet.exe graph running --figure lattice | head -5
  digraph exposure {
    rankdir=BT;
    node [shape=box];
    "_11" [label="_11\n{b1}", style=bold];
    "011" [label="011\n{b1}", fontname="Times-Italic"];

Errors are reported cleanly:

  $ ../../bin/pet.exe minimize running -v 11
  pet: Total.of_string: length mismatch
  [124]

  $ ../../bin/pet.exe check /nonexistent/file.rules
  pet: /nonexistent/file.rules: No such file or directory
  [124]

Weighting a sensitive predicate (Section 4.2's extension) can flip the
recommendation — Alice keeps "separated" deniable at the cost of
publishing her student path:

  $ ../../bin/pet.exe inform hcov -v 000011100111 --weight p12=5 | grep recommended
    0_0__1___11_   <- recommended

  $ ../../bin/pet.exe inform hcov -v 000011100111 --weight nosuch=2
  pet: --weight: unknown predicate nosuch
  [124]

Population simulation:

  $ ../../bin/pet.exe simulate running
  population: 5 eligible valuations
  equilibrium: Algorithm 2, Nash: true
  average minimization: 26.7% of the form left blank

Checking a user-authored rule file reports statistics and warns about
collected-but-unused predicates:

  $ cat > parking.rules <<'RULES'
  > form resident senior disabled electric unused_marital_status
  > benefits free_parking charging_discount
  > rule free_parking := resident & (senior | disabled)
  > rule charging_discount := resident & electric
  > RULES

  $ ../../bin/pet.exe check parking.rules
  form resident senior disabled electric unused_marital_status
  benefits free_parking charging_discount
  rule free_parking := disabled & resident | resident & senior
  rule charging_discount := electric & resident
  
  # 5 predicates, 2 benefits, 2 rules, 0 constraints
  # warning: predicate unused_marital_status is collected but never used
  # 32 realistic valuations, 14 eligible

  $ ../../bin/pet.exe inform parking.rules -v 11010
  Your full form:    11010
  Benefits due:      free_parking, charging_discount
  You have 1 way(s) to prove eligibility:
    11_1_   <- recommended
      hides 1 predicate(s) from any attacker; 1 other applicant(s) look identical
      note: not sending disabled still reveals disabled=0
  Minimization: 40% of the form stays blank

A malformed rule file fails with the line number:

  $ cat > broken.rules <<'RULES'
  > form a b
  > benefits x
  > rule x := a &
  > RULES

  $ ../../bin/pet.exe check broken.rules
  pet: line 3: parse error at offset 4: expected a formula but found end of input
  [124]

The typed questionnaire (the paper's GUI workflow): Alice answers the
real H-cov questions; the raw age is compiled to the age-band
predicates and discarded.

  $ ../../bin/pet.exe fill hcov <<'ANSWERS'
  > age = 24
  > child_welfare = no
  > broken_ties = no
  > same_roof = no
  > separate_tax = yes
  > alimony = no
  > has_child = no
  > student = yes
  > emergency_aid = yes
  > separated = yes
  > ANSWERS
  Your full form:    000011100111
  Benefits due:      b1
  You have 3 way(s) to prove eligibility:
    0__________1   <- recommended
      hides 10 predicate(s) from any attacker; 1023 other applicant(s) look identical
    0_0__1___11_
      hides 7 predicate(s) from any attacker; 64 other applicant(s) look identical
    0_0_1110____
      hides 6 predicate(s) from any attacker; 24 other applicant(s) look identical
  Minimization: 83% of the form stays blank

Ill-typed or missing answers are rejected before anything is computed:

  $ ../../bin/pet.exe fill hcov <<'ANSWERS'
  > age = twenty
  > ANSWERS
  pet: age: expected a number
  [124]

  $ ../../bin/pet.exe fill running <<'ANSWERS'
  > age = 28
  > unemployed = yes
  > ANSWERS
  pet: missing answer for question location
  [124]

The over-collection audit finds predicates that no minimized proof ever
needs — here q is asked for and even mentioned in the rules, but p
alone always suffices:

  $ cat > overcollect.rules <<'RULES'
  > form p q r
  > benefits b
  > rule b := p | (p & q)
  > RULES

  $ ../../bin/pet.exe audit overcollect.rules
  1 MAS over 4 valuations
  
  predicate                  in MAS players needing it
  p                               1                  4
  q                               0                  0
  r                               0                  0
  
  over-collection: 2 of 3 predicates are never required by any minimized proof:
    q, r

  $ ../../bin/pet.exe audit hcov | tail -1
  every predicate is needed by some minimized proof

The quickstart example runs end to end:

  $ ../../examples/quickstart.exe
  --- consent report ---
  Your full form:    011
  Benefits due:      b1
  You have 1 way(s) to prove eligibility:
    _11   <- recommended
      hides 1 predicate(s) from any attacker; 1 other applicant(s) look identical
  Minimization: 33% of the form stays blank
  
  --- submitting _11 ---
  granted: b1
  audit: true

The collection service: `pet serve` reads one JSON request per line and
answers one JSON response per line. Two concurrent H-cov sessions — the
paper's Alice (s0) and Bob (s1) — interleave: the rules compile once on
publish, both sessions hit the compiled-engine cache ("cached":true),
Alice picks her recommended option `0__________1`, Bob takes his forced
move `0_0_1110____`, and only the minimized forms reach the archive.
The logical clock (--deterministic) makes latencies and ids reproducible:

  $ ../../bin/pet.exe serve --deterministic <<'REQUESTS'
  > {"pet":1,"id":1,"method":"publish_rules","params":{"source":"hcov"}}
  > {"pet":1,"id":2,"method":"new_session","params":{"source":"hcov"}}
  > {"pet":1,"id":3,"method":"new_session","params":{"source":"hcov"}}
  > {"pet":1,"id":4,"method":"get_report","params":{"session":"s1","valuation":"000011100000"}}
  > {"pet":1,"id":5,"method":"get_report","params":{"session":"s0","valuation":"000011100111"}}
  > {"pet":1,"id":6,"method":"choose_option","params":{"session":"s0","option":0}}
  > {"pet":1,"id":7,"method":"choose_option","params":{"session":"s1","option":0}}
  > {"pet":1,"id":8,"method":"submit_form","params":{"session":"s1"}}
  > {"pet":1,"id":9,"method":"submit_form","params":{"session":"s0"}}
  > {"pet":1,"id":10,"method":"get_report","params":{"session":"s0","valuation":"000011100111"}}
  > {"pet":1,"id":11,"method":"audit","params":{"source":"hcov"}}
  > {"pet":1,"id":12,"method":"stats"}
  > REQUESTS
  {"pet":1,"id":1,"trace":"t0","ok":{"digest":"3c35afd5c479736f19224c053ec534bb","cached":false,"predicates":12,"benefits":1,"mas":6,"eligible":1560}}
  {"pet":1,"id":2,"trace":"t1","ok":{"session":"s0","digest":"3c35afd5c479736f19224c053ec534bb","cached":true}}
  {"pet":1,"id":3,"trace":"t2","ok":{"session":"s1","digest":"3c35afd5c479736f19224c053ec534bb","cached":true}}
  {"pet":1,"id":4,"trace":"t3","ok":{"valuation":"000011100000","granted":["b1"],"options":[{"mas":"0_0_1110____","benefits":["b1"],"po_blank":5,"po_sm":23,"po_weighted":null,"published":[{"p1":false},{"p3":false},{"p5":true},{"p6":true},{"p7":true},{"p8":false}],"deduced":[{"p12":false}],"protected":["p2","p4","p9","p10","p11"],"crowd":24,"recommended":true}],"minimization_ratio":0.5}}
  {"pet":1,"id":5,"trace":"t4","ok":{"valuation":"000011100111","granted":["b1"],"options":[{"mas":"0__________1","benefits":["b1"],"po_blank":10,"po_sm":1023,"po_weighted":null,"published":[{"p1":false},{"p12":true}],"deduced":[],"protected":["p2","p3","p4","p5","p6","p7","p8","p9","p10","p11"],"crowd":1024,"recommended":true},{"mas":"0_0__1___11_","benefits":["b1"],"po_blank":7,"po_sm":64,"po_weighted":null,"published":[{"p1":false},{"p3":false},{"p6":true},{"p10":true},{"p11":true}],"deduced":[],"protected":["p2","p4","p5","p7","p8","p9","p12"],"crowd":65,"recommended":false},{"mas":"0_0_1110____","benefits":["b1"],"po_blank":6,"po_sm":24,"po_weighted":null,"published":[{"p1":false},{"p3":false},{"p5":true},{"p6":true},{"p7":true},{"p8":false}],"deduced":[],"protected":["p2","p4","p9","p10","p11","p12"],"crowd":25,"recommended":false}],"minimization_ratio":0.83333333333333337}}
  {"pet":1,"id":6,"trace":"t5","ok":{"mas":"0__________1","benefits":["b1"]}}
  {"pet":1,"id":7,"trace":"t6","ok":{"mas":"0_0_1110____","benefits":["b1"]}}
  {"pet":1,"id":8,"trace":"t7","ok":{"grant":0,"form":"0_0_1110____","benefits":["b1"]}}
  {"pet":1,"id":9,"trace":"t8","ok":{"grant":1,"form":"0__________1","benefits":["b1"]}}
  {"pet":1,"id":10,"trace":"t9","error":{"code":"bad_state","message":"cannot get_report a session in state \"submitted\""}}
  {"pet":1,"id":11,"trace":"t10","ok":{"digest":"3c35afd5c479736f19224c053ec534bb","records":2,"stored_values":8,"failures":[]}}
  {"pet":1,"id":12,"trace":"t11","ok":{"requests":{"total":12,"by_method":{"audit":{"count":1,"errors":0,"latency_s":{"total":1,"max":1}},"choose_option":{"count":2,"errors":0,"latency_s":{"total":2,"max":1}},"get_report":{"count":3,"errors":1,"latency_s":{"total":3,"max":1}},"new_session":{"count":2,"errors":0,"latency_s":{"total":2,"max":1}},"publish_rules":{"count":1,"errors":0,"latency_s":{"total":1,"max":1}},"submit_form":{"count":2,"errors":0,"latency_s":{"total":2,"max":1}}}},"registry":{"size":1,"capacity":16,"hits":3,"misses":1,"evictions":0},"sessions":{"active":2,"created":2,"expired":0,"submitted":2},"ledger":{"rule_sets":1,"records":2,"stored_values":8}}}

Note the audit stores 8 predicate values for two applicants instead of
2 x 12 for the legacy full-form process, and `get_report` after the
choice is refused — the raw valuation was erased at `choose_option`.
Protocol-level failures are structured errors, never crashes:

  $ ../../bin/pet.exe serve --deterministic <<'REQUESTS'
  > {"pet":1,"id":13
  > {"pet":1,"id":14,"method":"submit_form","params":{"session":"s9"}}
  > {"pet":99,"id":15,"method":"stats"}
  > REQUESTS
  {"pet":1,"id":null,"trace":"t0","error":{"code":"parse_error","message":"line 1, column 17 (offset 16): expected ',' or '}' in object"}}
  {"pet":1,"id":14,"trace":"t1","error":{"code":"unknown_session","message":"unknown session \"s9\""}}
  {"pet":1,"id":15,"trace":"t2","error":{"code":"invalid_request","message":"unsupported protocol version 99 (this is 1)"}}

An oversized request line (over 1 MiB) is rejected before it is even
parsed, so a misbehaving client cannot make the service buffer garbage:

  $ python3 -c "print('x' * 1100000)" | ../../bin/pet.exe serve --deterministic
  {"pet":1,"id":null,"trace":"t0","error":{"code":"invalid_request","message":"oversized request line (1100000 bytes, max 1048576)"}}

Forms too large to enumerate are refused with a pointer to the symbolic
audit, which handles them fine:

  $ python3 -c "
  > names = ' '.join('a%d' % i for i in range(1, 26))
  > print('form ' + names)
  > print('benefits b')
  > print('rule b := a1 | (a2 & a3) | (a4 & a5 & a6)')
  > " > big.rules

  $ ../../bin/pet.exe atlas big.rules
  pet: Atlas.build: form too large to enumerate; use Symbolic.build for the global statistics
  [124]

  $ ../../bin/pet.exe audit big.rules | head -3
  3 MAS over 22544384 valuations
  
  predicate                  in MAS players needing it

The self-check harness cross-validates the three entailment backends on
generated problems — differential, metamorphic and oracle passes — and
fuzzes the collection service with mutated protocol lines. Both runs are
seeded and deterministic:

  $ ../../bin/pet.exe check --seeds 1-3
  seed 1: ok (885 checks)
  seed 2: ok (754 checks)
  seed 3: ok (736 checks)

  $ ../../bin/pet.exe check --fuzz 2000
  fuzz: 2000 requests, 274 ok, 1726 structured errors, 0 invalid responses, 0 crashes
  fuzz: 373/2000 lines fast-decoded, 0 cursor mismatches; 128 boundary checks, 0 failures

Without a rule file, a seed range or a fuzz budget there is nothing to
check:

  $ ../../bin/pet.exe check
  pet: expected a RULES source, --seeds, --fuzz, --fuzz-store, --fuzz-corpus or --fuzz-consent
  Usage: pet check [OPTION]… [RULES]
  Try 'pet check --help' or 'pet --help' for more information.
  [124]
