type t = { u : Universe.t; dom : int; bits : int }

let universe w = w.u
let domain_mask w = w.dom
let bits w = w.bits

let of_masks u ~dom ~bits =
  let n = Universe.size u in
  if dom < 0 || dom lsr n <> 0 then
    invalid_arg "Partial.of_masks: domain outside the universe";
  if bits land lnot dom <> 0 then
    invalid_arg "Partial.of_masks: value bits outside the domain";
  { u; dom; bits }

let empty u = { u; dom = 0; bits = 0 }

let of_assoc u assoc =
  List.fold_left
    (fun w (name, value) ->
      let i = Universe.index u name in
      let mask = 1 lsl i in
      if w.dom land mask <> 0 then begin
        let existing = w.bits land mask <> 0 in
        if Bool.equal existing value then w
        else invalid_arg ("Partial.of_assoc: contradictory binding for " ^ name)
      end
      else
        {
          w with
          dom = w.dom lor mask;
          bits = (if value then w.bits lor mask else w.bits);
        })
    (empty u) assoc

let of_total v =
  let u = Total.universe v in
  { u; dom = (1 lsl Universe.size u) - 1; bits = Total.bits v }

let of_string u s =
  let n = Universe.size u in
  if String.length s <> n then invalid_arg "Partial.of_string: length mismatch";
  let dom = ref 0 and bits = ref 0 in
  String.iteri
    (fun i c ->
      match c with
      | '1' ->
        dom := !dom lor (1 lsl i);
        bits := !bits lor (1 lsl i)
      | '0' -> dom := !dom lor (1 lsl i)
      | '_' -> ()
      | _ -> invalid_arg "Partial.of_string: expected '0', '1' or '_'")
    s;
  { u; dom = !dom; bits = !bits }

let is_total w = w.dom = (1 lsl Universe.size w.u) - 1

let to_total w =
  if is_total w then Some (Total.of_bits w.u w.bits) else None

let value_at w i =
  if i < 0 || i >= Universe.size w.u then
    invalid_arg "Partial.value_at: out of range";
  if (w.dom lsr i) land 1 = 0 then None else Some ((w.bits lsr i) land 1 = 1)

let value w name = value_at w (Universe.index w.u name)
let defines w name = (w.dom lsr Universe.index w.u name) land 1 = 1

let domain w =
  List.filteri
    (fun i _ -> (w.dom lsr i) land 1 = 1)
    (Universe.names w.u)

let blanks w =
  List.filteri
    (fun i _ -> (w.dom lsr i) land 1 = 0)
    (Universe.names w.u)

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
  go x 0

let domain_size w = popcount w.dom
let blank_count w = Universe.size w.u - domain_size w

let set w name value =
  let i = Universe.index w.u name in
  let mask = 1 lsl i in
  if w.dom land mask <> 0 then
    if Bool.equal (w.bits land mask <> 0) value then w
    else invalid_arg ("Partial.set: " ^ name ^ " already set to the other value")
  else
    {
      w with
      dom = w.dom lor mask;
      bits = (if value then w.bits lor mask else w.bits);
    }

let unset w name =
  let i = Universe.index w.u name in
  let mask = 1 lsl i in
  { w with dom = w.dom land lnot mask; bits = w.bits land lnot mask }

let restrict w names =
  let keep = ref 0 in
  List.iter
    (fun name ->
      match Universe.index_opt w.u name with
      | Some i -> keep := !keep lor (1 lsl i)
      | None -> ())
    names;
  { w with dom = w.dom land !keep; bits = w.bits land !keep }

let bindings w =
  List.filter_map
    (fun name ->
      match value w name with Some b -> Some (name, b) | None -> None)
    (Universe.names w.u)

let merge a b =
  let common = a.dom land b.dom in
  if a.bits land common <> b.bits land common then None
  else Some { a with dom = a.dom lor b.dom; bits = a.bits lor b.bits }

let subvaluation w v =
  w.dom land v.dom = w.dom && v.bits land w.dom = w.bits

let strict_subvaluation w v = subvaluation w v && w.dom <> v.dom

let extends_total w v = Total.bits v land w.dom = w.bits

let extensions w =
  let n = Universe.size w.u in
  let free = lnot w.dom land ((1 lsl n) - 1) in
  (* Enumerate subsets of the free mask and overlay them on the fixed
     bits; the classic subset-enumeration loop. *)
  let rec go sub acc =
    let v = Total.of_bits w.u (w.bits lor sub) in
    let acc = v :: acc in
    if sub = 0 then acc else go ((sub - 1) land free) acc
  in
  List.sort Total.compare (go free [])

let count_extensions w = 1 lsl blank_count w

let to_formula w =
  Pet_logic.Formula.conj
    (List.map
       (fun (name, b) ->
         let v = Pet_logic.Formula.var name in
         if b then v else Pet_logic.Formula.neg v)
       (bindings w))

let equal a b = a.dom = b.dom && a.bits = b.bits

let compare a b =
  let c = Int.compare a.dom b.dom in
  if c <> 0 then c else Int.compare a.bits b.bits

(* Alphabet order: _ < 0 < 1, first variable most significant. *)
let char_rank w i =
  if (w.dom lsr i) land 1 = 0 then 0
  else if (w.bits lsr i) land 1 = 0 then 1
  else 2

let compare_lex a b =
  let n = Universe.size a.u in
  let rec go i =
    if i >= n then 0
    else
      let c = Int.compare (char_rank a i) (char_rank b i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let to_string w =
  String.init (Universe.size w.u) (fun i ->
      match char_rank w i with 0 -> '_' | 1 -> '0' | _ -> '1')

let pp ppf w = Fmt.string ppf (to_string w)
