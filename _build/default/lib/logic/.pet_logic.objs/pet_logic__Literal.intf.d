lib/logic/literal.mli: Fmt Formula
