(** The metrics core of the observability layer: monotonic counters,
    gauges and log-bucketed latency histograms behind a single global
    on/off switch.

    The registry is process-global and disabled by default, so the
    instrumented hot paths (SAT propagation, BDD [ite], the store append
    loop) pay one boolean load per event when observability is off —
    effectively free. {!enable} turns every instrument on at once; the
    CLI does so for [pet serve], [pet profile] and the [obs] bench
    scenario.

    Metrics are identified by a [name] plus optional [labels] (rendered
    Prometheus-style, e.g. [pet_server_request_seconds{method="stats"}]).
    Registration is idempotent: calling {!counter} twice with the same
    identity returns the same instrument, so call sites may register at
    module-initialization time or lazily.

    Instruments are domain-safe: counters are atomic, histograms and
    the registry are mutex-guarded, and gauges are single-word float
    stores (concurrent writers race only to last-writer-wins — shards
    wanting distinct values use per-shard labels). The sharded TCP
    server ({!Pet_net}) increments the same instruments from every
    worker domain. *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val set_clock : (unit -> float) -> unit
(** Replace the time source used by {!time} and {!Span.enter}
    (default [Unix.gettimeofday]). Tests and [pet serve --deterministic]
    install a logical clock here so latency histograms and span trees
    are byte-for-byte reproducible. *)

val now : unit -> float
(** Read the current clock (regardless of {!enabled}). *)

val escape_label : string -> string
(** Prometheus label-value escaping: backslash, double quote and
    newline become backslash-escaped sequences; everything else passes
    through. Values without those characters are returned unchanged
    (same string). *)

val set_help : string -> string -> unit
(** Attach a one-line help string to a metric family (the bare name,
    without labels). First writer wins; the Prometheus exporter emits it
    as the family's [# HELP] line. *)

val help : string -> string option
(** Look up a family's help string. *)

(** {1 Counters} *)

type counter

val counter : ?labels:(string * string) list -> ?help:string -> string -> counter
(** Register (or look up) a monotonic counter. By convention names end
    in [_total]. [?help] records the family's help string (see
    {!set_help}). *)

val incr : counter -> unit
(** Add 1 when enabled; no-op otherwise. *)

val add : counter -> int -> unit
(** Add [n] (>= 0) when enabled; no-op otherwise. *)

val counter_value : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : ?labels:(string * string) list -> ?help:string -> string -> gauge

val set_gauge : gauge -> float -> unit
(** Set the current value when enabled; no-op otherwise. *)

val gauge_value : gauge -> float

(** {1 Histograms} *)

type histogram

val histogram :
  ?labels:(string * string) list -> ?help:string -> string -> histogram
(** Register a log-bucketed histogram intended for latencies in
    seconds. Bucket upper bounds are [1e-6 * 2^i] for [i = 0..38]
    (1 microsecond up to ~4.7 minutes) plus a final overflow bucket;
    see {!bucket_bounds}. *)

val observe : histogram -> float -> unit
(** Record one value when enabled; no-op otherwise. Negative values
    clamp to 0 (and land in the first bucket). *)

val time : histogram -> (unit -> 'a) -> 'a
(** Run the thunk, recording its wall-clock duration when enabled. When
    disabled the clock is not even read. Exceptions propagate after the
    observation. *)

val bucket_bounds : float array
(** The shared upper bounds, ascending; the last element is
    [infinity]. Exposed for tests and exporters. *)

val bucket_of : float -> int
(** Index into {!bucket_bounds} of the bucket a value lands in
    (negative values clamp to 0). Exposed so {!Slo} windows share the
    histogram's bucketing exactly. *)

(** {1 Snapshots} *)

type hist_stats = {
  count : int;
  sum : float;
  max : float;
  buckets : (float * int) list;
      (** (upper bound, count in that bucket), non-empty buckets only,
          ascending by bound *)
}

val quantile : hist_stats -> float -> float
(** [quantile h q] estimates the [q]-quantile ([0 < q <= 1]) as the
    upper bound of the first bucket whose cumulative count reaches
    [ceil (q * count)], capped at the maximum observed value (so the
    estimate never exceeds reality). Returns [0.] for an empty
    histogram. *)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_stats) list;
}
(** All sequences are sorted by rendered metric name, so equal recorded
    histories yield byte-identical exports — snapshot determinism is a
    tested property. *)

val snapshot : unit -> snapshot

val reset : unit -> unit
(** Zero every registered instrument (registrations survive). Does not
    change {!enabled} or the clock. *)
