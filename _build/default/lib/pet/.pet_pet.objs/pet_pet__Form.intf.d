lib/pet/form.mli: Pet_rules Pet_valuation
