lib/minimize/dot.ml: Algorithm1 Atlas Buffer Hashtbl Int Lattice List Pet_valuation Printf String
