module Json = Pet_pet.Json
module Workflow = Pet_pet.Workflow
module Partial = Pet_valuation.Partial
module Spec = Pet_rules.Spec
module Engine = Pet_rules.Engine
module Exposure = Pet_rules.Exposure
module Algorithm1 = Pet_minimize.Algorithm1
module Persist = Pet_server.Persist
module Record = Pet_store.Record
module Store = Pet_store.Store

type violation = { file : string; offset : int; detail : string }

type property = {
  name : string;
  checked : int;
  violations : violation list;
}

type report = {
  dir : string;
  files : int;
  records : int;
  note : string option;
  properties : property list;
}

(* One property under accumulation: violations are consed (newest
   first) and reversed into log order when the report is sealed. *)
type prop = {
  pname : string;
  mutable pchecked : int;
  mutable faults : violation list;
}

let flag prop ~file ~offset detail =
  prop.faults <- { file; offset; detail } :: prop.faults

(* The walk's working state. Engines are compiled lazily, at most once
   per digest, from the rule texts the log itself retains ([Rules] and
   [Tenant_published] events) — the audit trusts the log's rule text,
   not the service's memory. *)
type ctx = {
  mode : Algorithm1.mode;
  backend : Engine.backend;
  texts : (string, string) Hashtbl.t;  (* digest -> canonical text *)
  providers : (string, (Workflow.t, string) result) Hashtbl.t;
  mutable clock : float;  (* largest timestamp replayed so far *)
  sessions : (string, string) Hashtbl.t;  (* live session -> digest *)
  revoked : (string, unit) Hashtbl.t;
  horizons : (string, float) Hashtbl.t;  (* session -> latest horizon *)
  next_id : (string, int) Hashtbl.t;  (* ledger key -> expected grant id *)
  integrity : prop;
  r2 : prop;
  minimality : prop;
  revocation : prop;
  expiry : prop;
  replay : prop;
}

let create_ctx ~mode ~backend =
  let prop pname = { pname; pchecked = 0; faults = [] } in
  {
    mode;
    backend;
    texts = Hashtbl.create 8;
    providers = Hashtbl.create 8;
    clock = neg_infinity;
    sessions = Hashtbl.create 64;
    revoked = Hashtbl.create 16;
    horizons = Hashtbl.create 16;
    next_id = Hashtbl.create 8;
    integrity = prop "integrity";
    r2 = prop "r2";
    minimality = prop "minimality";
    revocation = prop "revocation";
    expiry = prop "expiry";
    replay = prop "replay";
  }

let provider_of ctx digest =
  match Hashtbl.find_opt ctx.providers digest with
  | Some r -> r
  | None ->
    let r =
      match Hashtbl.find_opt ctx.texts digest with
      | None ->
        Error
          (Printf.sprintf
             "no rule set with digest %s appears earlier in the log" digest)
      | Some text -> (
        match Spec.parse text with
        | Error m -> Error ("retained rule text does not compile: " ^ m)
        | Ok exposure -> (
          match Workflow.provider ~backend:ctx.backend exposure with
          | provider -> Ok provider
          | exception Invalid_argument m -> Error m))
    in
    Hashtbl.replace ctx.providers digest r;
    r

(* The grant-side recheck, shared by archived grants and chosen forms:
   the persisted form must still prove exactly the recorded benefits
   and admit no smaller proof. *)
let check_form ctx ~file ~offset ~what ~digest ~form ~benefits =
  ctx.minimality.pchecked <- ctx.minimality.pchecked + 1;
  match provider_of ctx digest with
  | Error m -> flag ctx.minimality ~file ~offset (what ^ ": " ^ m)
  | Ok provider -> (
    let engine = Workflow.engine provider in
    match Partial.of_string (Exposure.xp (Engine.exposure engine)) form with
    | exception Invalid_argument m ->
      flag ctx.minimality ~file ~offset
        (Printf.sprintf "%s: form %S does not parse: %s" what form m)
    | parsed ->
      if not (Workflow.audit provider { Workflow.form = parsed; benefits })
      then
        flag ctx.minimality ~file ~offset
          (Printf.sprintf
             "%s: form %S no longer proves exactly the recorded benefits"
             what form)
      else if
        not (Algorithm1.is_minimal ~mode:ctx.mode engine parsed ~benefits)
      then
        flag ctx.minimality ~file ~offset
          (Printf.sprintf "%s: form %S is not minimal for its benefits" what
             form))

(* A record that (re)establishes data for a session: flagged when the
   session was revoked earlier in the log, or when the log's clock has
   passed its armed horizon. Both checks are establishment-time — the
   pre-revocation bytes an append-only log retains are legitimate. *)
let check_established ctx ~file ~offset ~what sid =
  ctx.revocation.pchecked <- ctx.revocation.pchecked + 1;
  if Hashtbl.mem ctx.revoked sid then
    flag ctx.revocation ~file ~offset
      (Printf.sprintf "%s re-establishes session %S after its revocation"
         what sid);
  ctx.expiry.pchecked <- ctx.expiry.pchecked + 1;
  match Hashtbl.find_opt ctx.horizons sid with
  | Some horizon when ctx.clock >= horizon ->
    flag ctx.expiry ~file ~offset
      (Printf.sprintf
         "%s establishes session %S past its expiry horizon (%.3f >= %.3f)"
         what sid ctx.clock horizon)
  | _ -> ()

(* A session transition must follow a [session_created] that is still
   live — a chosen or submitted record for a session the log never
   created (or already purged) cannot come from a faithful replay. *)
let check_transition ctx ~file ~offset ~what sid =
  ctx.replay.pchecked <- ctx.replay.pchecked + 1;
  if not (Hashtbl.mem ctx.sessions sid) then
    flag ctx.replay ~file ~offset
      (Printf.sprintf "%s for session %S which no earlier record created"
         what sid)

let at_of = function
  | Persist.Rules _ | Persist.Grant _ -> None
  | Persist.Tenant_published { at; _ }
  | Persist.Session_created { at; _ }
  | Persist.Session_chosen { at; _ }
  | Persist.Session_submitted { at; _ }
  | Persist.Session_revoked { at; _ }
  | Persist.Session_expiry { at; _ } -> Some at

let ledger_key ~digest ~tenant =
  match tenant with None -> digest | Some name -> digest ^ "@" ^ name

let check_event ctx ~file ~offset event =
  (* The clock advances from the record's own timestamp {e before} its
     checks run: a record stamped at or past its session's horizon is
     already too late. *)
  (match at_of event with
  | Some at when at > ctx.clock -> ctx.clock <- at
  | _ -> ());
  match event with
  | Persist.Rules { digest; text } -> Hashtbl.replace ctx.texts digest text
  | Persist.Tenant_published { digest; text; _ } ->
    Hashtbl.replace ctx.texts digest text
  | Persist.Session_created { id; digest; _ } ->
    check_established ctx ~file ~offset ~what:"session_created" id;
    ctx.replay.pchecked <- ctx.replay.pchecked + 1;
    if Hashtbl.mem ctx.sessions id then
      flag ctx.replay ~file ~offset
        (Printf.sprintf "session %S created twice" id);
    Hashtbl.replace ctx.sessions id digest
  | Persist.Session_chosen { id; mas; benefits; _ } ->
    check_established ctx ~file ~offset ~what:"session_chosen" id;
    check_transition ctx ~file ~offset ~what:"session_chosen" id;
    (match Hashtbl.find_opt ctx.sessions id with
    | Some digest ->
      check_form ctx ~file ~offset ~what:"chosen form" ~digest ~form:mas
        ~benefits
    | None -> ())
  | Persist.Session_submitted { id; _ } ->
    check_established ctx ~file ~offset ~what:"session_submitted" id;
    check_transition ctx ~file ~offset ~what:"session_submitted" id
  | Persist.Session_revoked { id; _ } ->
    (* Replay purges the session with the revocation; later transitions
       are both replay and revocation violations. An orphan revocation
       is legitimate: consent outlives the session's TTL sweep, and
       snapshots keep lifecycle events after dropping the session. *)
    Hashtbl.replace ctx.revoked id ();
    Hashtbl.remove ctx.sessions id
  | Persist.Session_expiry { id; horizon; _ } ->
    (* The latest horizon wins, as in the service. *)
    Hashtbl.replace ctx.horizons id horizon
  | Persist.Grant { digest; grant_id; form; benefits; session; tenant; revoked }
    ->
    let key = ledger_key ~digest ~tenant in
    ctx.replay.pchecked <- ctx.replay.pchecked + 1;
    let expected =
      match Hashtbl.find_opt ctx.next_id key with Some n -> n | None -> 0
    in
    if grant_id <> expected then
      flag ctx.replay ~file ~offset
        (Printf.sprintf
           "grant %d out of sequence for ledger %s (expected %d)" grant_id
           key expected);
    (* Resync so one gap is one violation, not a cascade. *)
    Hashtbl.replace ctx.next_id key (grant_id + 1);
    if not revoked then begin
      (match session with
      | Some sid ->
        check_established ctx ~file ~offset
          ~what:(Printf.sprintf "grant %d" grant_id)
          sid
      | None -> ());
      check_form ctx ~file ~offset
        ~what:(Printf.sprintf "grant %d" grant_id)
        ~digest ~form ~benefits
    end

let check_record ctx ~file ~offset payload =
  ctx.integrity.pchecked <- ctx.integrity.pchecked + 1;
  match Json.parse payload with
  | Error m ->
    flag ctx.integrity ~file ~offset ("payload is not JSON: " ^ m)
  | Ok json -> (
    ctx.r2.pchecked <- ctx.r2.pchecked + 1;
    if Json.member "valuation" json <> None then
      flag ctx.r2 ~file ~offset
        "record carries a \"valuation\" field — a raw form reached disk";
    match Persist.of_json json with
    | Error m ->
      flag ctx.integrity ~file ~offset ("unrecognized event: " ^ m)
    | Ok event -> check_event ctx ~file ~offset event)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Walk one file record by record. Returns the records read and, for a
   torn tail, its description — the caller decides whether that is
   crash damage (last file) or a violation. A corrupt record loses the
   record boundaries, so scanning stops there either way. *)
let walk_file ctx ~file buf =
  let torn = ref None in
  let records = ref 0 in
  let rec go offset =
    match Record.read buf offset with
    | Record.Record { payload; next } ->
      incr records;
      check_record ctx ~file ~offset payload;
      go next
    | Record.End -> ()
    | Record.Torn { offset; reason } -> torn := Some (offset, reason)
    | Record.Corrupt { offset; reason } ->
      ctx.integrity.pchecked <- ctx.integrity.pchecked + 1;
      flag ctx.integrity ~file ~offset ("corrupt record: " ^ reason)
  in
  go 0;
  (!records, !torn)

let seal prop =
  {
    name = prop.pname;
    checked = prop.pchecked;
    violations = List.rev prop.faults;
  }

let run ?(mode = Algorithm1.Chain) ?(backend = Engine.Bdd) dir =
  match Store.replay_chain dir with
  | Error m -> Error m
  | Ok chain ->
    let ctx = create_ctx ~mode ~backend in
    let records = ref 0 in
    let note = ref None in
    let last = List.length chain - 1 in
    List.iteri
      (fun i file ->
        match read_file (Filename.concat dir file) with
        | exception Sys_error m ->
          flag ctx.integrity ~file ~offset:0 ("unreadable: " ^ m)
        | buf -> (
          let n, torn = walk_file ctx ~file buf in
          records := !records + n;
          match torn with
          | None -> ()
          | Some (offset, reason) ->
            if i = last then
              note :=
                Some
                  (Printf.sprintf
                     "torn tail in %s at byte %d (%s): crash damage; \
                      recovery truncates it"
                     file offset reason)
            else begin
              (* A torn record mid-chain cannot come from a crash —
                 appends always open a fresh segment. *)
              ctx.integrity.pchecked <- ctx.integrity.pchecked + 1;
              flag ctx.integrity ~file ~offset ("torn record: " ^ reason)
            end))
      chain;
    Ok
      {
        dir;
        files = List.length chain;
        records = !records;
        note = !note;
        properties =
          List.map seal
            [
              ctx.integrity;
              ctx.r2;
              ctx.minimality;
              ctx.revocation;
              ctx.expiry;
              ctx.replay;
            ];
      }

let pass report =
  List.for_all (fun p -> p.violations = []) report.properties

let to_json report =
  let violation v =
    Json.Obj
      [
        ("file", Json.String v.file);
        ("offset", Json.Int v.offset);
        ("detail", Json.String v.detail);
      ]
  in
  let property p =
    Json.Obj
      [
        ("name", Json.String p.name);
        ("checked", Json.Int p.checked);
        ("violations", Json.List (List.map violation p.violations));
      ]
  in
  Json.Obj
    ([
       ("dir", Json.String report.dir);
       ("files", Json.Int report.files);
       ("records", Json.Int report.records);
       ("pass", Json.Bool (pass report));
     ]
    @ (match report.note with
      | Some note -> [ ("note", Json.String note) ]
      | None -> [])
    @ [ ("properties", Json.List (List.map property report.properties)) ])

let pp ppf report =
  Format.fprintf ppf "audit %s: %d file%s, %d record%s@." report.dir
    report.files
    (if report.files = 1 then "" else "s")
    report.records
    (if report.records = 1 then "" else "s");
  (match report.note with
  | Some note -> Format.fprintf ppf "note: %s@." note
  | None -> ());
  List.iter
    (fun p ->
      (match p.violations with
      | [] ->
        Format.fprintf ppf "  %-11s PASS (%d checked)@." p.name p.checked
      | vs ->
        Format.fprintf ppf "  %-11s FAIL (%d checked, %d violation%s)@."
          p.name p.checked (List.length vs)
          (if List.length vs = 1 then "" else "s");
        List.iter
          (fun v ->
            Format.fprintf ppf "    %s @@ byte %d: %s@." v.file v.offset
              v.detail)
          vs))
    report.properties;
  Format.fprintf ppf "result: %s@." (if pass report then "PASS" else "FAIL")
