module F = Pet_logic.Formula
module Universe = Pet_valuation.Universe
module Total = Pet_valuation.Total

type t = {
  xp : Universe.t;
  xb : Universe.t;
  rules : Rule.t list; (* in benefit-universe order *)
  constraints : F.t list;
}

let validate_vars ~what ~allowed vars =
  List.iter
    (fun v ->
      if not (Universe.mem allowed v) then
        invalid_arg
          (Printf.sprintf "Exposure.create: %s mentions %s outside the form"
             what v))
    vars

let create ~xp ~xb ~rules ?(constraints = []) () =
  List.iter
    (fun name ->
      if Universe.mem xb name then
        invalid_arg
          ("Exposure.create: name " ^ name ^ " is both a predicate and a benefit"))
    (Universe.names xp);
  let find_rule benefit =
    match List.filter (fun (r : Rule.t) -> r.benefit = benefit) rules with
    | [ r ] -> r
    | [] -> invalid_arg ("Exposure.create: benefit " ^ benefit ^ " has no rule")
    | _ ->
      invalid_arg ("Exposure.create: benefit " ^ benefit ^ " has several rules")
  in
  List.iter
    (fun (r : Rule.t) ->
      if not (Universe.mem xb r.benefit) then
        invalid_arg ("Exposure.create: rule for unknown benefit " ^ r.benefit);
      validate_vars ~what:("the rule for " ^ r.benefit) ~allowed:xp
        (Pet_logic.Dnf.vars r.dnf))
    rules;
  List.iter
    (fun c -> validate_vars ~what:"a constraint" ~allowed:xp (F.vars c))
    constraints;
  let rules = List.map find_rule (Universe.names xb) in
  { xp; xb; rules; constraints }

let xp e = e.xp
let xb e = e.xb
let rules e = e.rules

let rule_for e benefit =
  match List.find_opt (fun (r : Rule.t) -> r.benefit = benefit) e.rules with
  | Some r -> r
  | None -> raise Not_found

let constraints e = e.constraints
let constraints_formula e = F.conj e.constraints

(* Flatten a conjunction of literals; [None] when any conjunct is not a
   literal. *)
let rec literal_conjunction = function
  | F.And (a, b) -> (
    match literal_conjunction a, literal_conjunction b with
    | Some la, Some lb -> Some (la @ lb)
    | _ -> None)
  | f -> (
    match Pet_logic.Literal.of_formula f with
    | Some l -> Some [ l ]
    | None -> None)

let implications e =
  List.filter_map
    (fun c ->
      match c with
      | F.Implies (lhs, rhs) -> (
        match literal_conjunction lhs, literal_conjunction rhs with
        | Some premises, Some consequences -> Some (premises, consequences)
        | _ -> None)
      | _ -> (
        match literal_conjunction c with
        | Some consequences -> Some ([], consequences)
        | None -> None))
    e.constraints

let to_formula e =
  F.conj (List.map Rule.to_formula e.rules @ e.constraints)

let benefits_of_assignment e rho =
  List.filter_map
    (fun (r : Rule.t) ->
      if Rule.triggered_by rho r then Some r.benefit else None)
    e.rules

let satisfies_constraints e v =
  List.for_all (fun c -> F.eval (Total.rho v) c) e.constraints

let realistic e = List.filter (satisfies_constraints e) (Total.all e.xp)

let eligible e =
  List.filter
    (fun v -> benefits_of_assignment e (Total.rho v) <> [])
    (realistic e)

let pp ppf e =
  Fmt.pf ppf "@[<v>form %a@,benefits %a@,@[<v>%a@]@,@[<v>%a@]@]" Universe.pp
    e.xp Universe.pp e.xb
    Fmt.(list ~sep:cut Rule.pp)
    e.rules
    Fmt.(list ~sep:cut (fun ppf c -> Fmt.pf ppf "constraint %a" F.pp c))
    e.constraints
