test/test_valuation.mli:
