lib/logic/dnf.ml: Fmt Formula List Literal Nnf Set Stdlib String
