(** Prototype of the probabilistic extension sketched in the paper's
    future work (Section 7): "a probabilistic minimization strategy would
    potentially allow an increase in the privacy gains with plausible
    deniability-based metrics because the number of potential valuation
    predecessors of each MAS would naturally increase".

    A mixed profile gives every player a probability distribution over
    their MAS. Payoffs of a realized game are the usual crowd payoffs;
    expected payoffs are estimated by seeded Monte-Carlo sampling (exact
    evaluation is exponential in the number of mixing players). The
    H-cov demonstration: when a few players who could play the worst
    forced move occasionally do, the deducibility of [p12] for that
    move's crowd vanishes almost surely — the probabilistic counterpart
    of the solidarity experiment. *)

type t

val of_pure : Profile.t -> t
(** Every player plays their profile move with probability 1. *)

val atlas : t -> Pet_minimize.Atlas.t

val strategy : t -> player:int -> (int * float) list
(** The player's distribution: (MAS index, probability), probabilities
    summing to 1, ascending MAS index. *)

val perturb : t -> player:int -> mas:int -> epsilon:float -> t
(** Shift probability mass [epsilon] from the player's current
    distribution (proportionally) onto [mas].
    @raise Invalid_argument if [mas] is not among the player's choices or
    [epsilon] is outside [0, 1]. *)

val sample : seed:int -> t -> Profile.t
(** Draw one pure profile. Deterministic in the seed. *)

val expected_payoff :
  ?samples:int -> seed:int -> t -> player:int -> Payoff.kind -> float
(** Monte-Carlo estimate (default 200 samples) of the player's expected
    payoff: each sample realizes every player's move and evaluates the
    player's own move against its realized crowd. For a degenerate
    (pure) profile this is exact. *)
