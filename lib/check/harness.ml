module Generate = Pet_rules.Generate
module Exposure = Pet_rules.Exposure
module Payoff = Pet_game.Payoff

type config = {
  gen : Generate.config;
  samples : int;
  payoff : Payoff.kind;
  metamorphic : bool;
  oracle : bool;
}

let default_config =
  {
    gen = Generate.default;
    samples = Diff.default_samples;
    payoff = Payoff.Blank;
    metamorphic = true;
    oracle = true;
  }

let check_exposure ?(config = default_config) ?(seed = 0) e =
  Finding.merge_all
    [
      Diff.check ~payoff:config.payoff ~samples:config.samples ~seed e;
      (if config.metamorphic then Metamorphic.check ~payoff:config.payoff e
       else Finding.empty);
      (if config.oracle then Oracle.check ~payoff:config.payoff e
       else Finding.empty);
    ]

let run_seed ?(config = default_config) seed =
  let e = Generate.exposure ~config:config.gen ~seed () in
  (e, check_exposure ~config ~seed e)

let run ?(config = default_config) seeds =
  List.map (fun seed -> (seed, snd (run_seed ~config seed))) seeds

(* "1-50", "3", "1,4,9-12" — inclusive ranges, comma-separated. *)
let seeds_of_string s =
  let item part =
    match String.index_opt part '-' with
    | None -> (
      match int_of_string_opt (String.trim part) with
      | Some n -> Ok [ n ]
      | None -> Error (Printf.sprintf "bad seed %S" part))
    | Some i -> (
      let lo = String.trim (String.sub part 0 i) in
      let hi =
        String.trim (String.sub part (i + 1) (String.length part - i - 1))
      in
      match (int_of_string_opt lo, int_of_string_opt hi) with
      | Some lo, Some hi when lo <= hi -> Ok (List.init (hi - lo + 1) (( + ) lo))
      | Some _, Some _ -> Error (Printf.sprintf "empty seed range %S" part)
      | _ -> Error (Printf.sprintf "bad seed range %S" part))
  in
  let rec all = function
    | [] -> Ok []
    | p :: ps -> (
      match (item p, all ps) with
      | Ok l, Ok ls -> Ok (l @ ls)
      | (Error _ as e), _ | _, (Error _ as e) -> e)
  in
  match String.split_on_char ',' s with
  | [] | [ "" ] -> Error "empty seed spec"
  | parts -> all parts

let reproduce ?(config = default_config) ?(seed = 0) e =
  let original = check_exposure ~config ~seed e in
  if Finding.ok original then None
  else
    let fingerprint = Finding.stages original in
    let still_fails e' =
      let r = check_exposure ~config ~seed e' in
      List.exists (fun s -> List.mem s fingerprint) (Finding.stages r)
    in
    let shrunk = Shrink.shrink ~still_fails e in
    Some (shrunk, Shrink.to_dsl shrunk)
