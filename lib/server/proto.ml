module Json = Pet_pet.Json

let version = 1

type rules_ref =
  | Text of string
  | Source of string
  | Digest of string
  | Tenant of string
      (* the named tenant's active version — resolution may block while
         the tenant's first build completes *)

type choice_ref = Index of int | Mas of string
type metrics_format = Mjson | Mprometheus
type trace_query = Tlast | Tslow | Tget of string
type trace_format = Ttree | Tchrome

type request =
  | Publish_rules of {
      rules : rules_ref;
      tenant : string option;  (* create this tenant at version 1 *)
      quota : int option;  (* per-tenant active-session cap; 0 = unlimited *)
    }
  | Update_rules of { tenant : string; rules : rules_ref; quota : int option }
  | New_session of rules_ref
  | Get_report of { session : string; valuation : string }
  | Choose_option of { session : string; choice : choice_ref }
  | Submit_form of { session : string }
  | Revoke of { session : string }
      (* withdraw consent: tombstone the archived minimized form *)
  | Expire of { session : string; after : float }
      (* arm (or move) an expiry horizon [after] seconds from now *)
  | Audit of rules_ref
  | Tenant_info of { name : string option; wait : bool }
      (* one tenant's versions/state/counters (blocking until its
         builds settle when [wait]), or the tenant listing *)
  | Stats
  | Metrics of metrics_format
  | Trace_req of { query : trace_query; format : trace_format }
  | Watch of { interval : float; frames : int }
      (* stream metric-snapshot frames: one response per frame, all
         echoing the request id; [frames = 0] means until disconnect *)

type code =
  | Parse_error
  | Invalid_request
  | Unknown_method
  | Invalid_params
  | Unknown_rules
  | Unknown_source
  | Unknown_session
  | Unknown_tenant
  | Session_expired
  | Bad_state
  | Ineligible
  | Rejected
  | Quota_exceeded
  | Build_failed
  | Internal

let code_name = function
  | Parse_error -> "parse_error"
  | Invalid_request -> "invalid_request"
  | Unknown_method -> "unknown_method"
  | Invalid_params -> "invalid_params"
  | Unknown_rules -> "unknown_rules"
  | Unknown_source -> "unknown_source"
  | Unknown_session -> "unknown_session"
  | Unknown_tenant -> "unknown_tenant"
  | Session_expired -> "session_expired"
  | Bad_state -> "bad_state"
  | Ineligible -> "ineligible"
  | Rejected -> "rejected"
  | Quota_exceeded -> "quota_exceeded"
  | Build_failed -> "build_failed"
  | Internal -> "internal"

type error = { code : code; message : string }

let error code message = { code; message }
let errorf code fmt = Printf.ksprintf (error code) fmt

type envelope = { id : Json.t; trace : string option; request : request }

let method_name = function
  | Publish_rules _ -> "publish_rules"
  | Update_rules _ -> "update_rules"
  | New_session _ -> "new_session"
  | Get_report _ -> "get_report"
  | Choose_option _ -> "choose_option"
  | Submit_form _ -> "submit_form"
  | Revoke _ -> "revoke"
  | Expire _ -> "expire"
  | Audit _ -> "audit"
  | Tenant_info _ -> "tenant"
  | Stats -> "stats"
  | Metrics _ -> "metrics"
  | Trace_req _ -> "trace"
  | Watch _ -> "watch"

(* --- Decoding --------------------------------------------------------------- *)

let ( let* ) = Result.bind

let string_field params name =
  match Json.member name params with
  | Some (Json.String s) -> Ok s
  | Some _ -> Error (errorf Invalid_params "%S must be a string" name)
  | None -> Error (errorf Invalid_params "missing %S parameter" name)

let rules_ref ?(allow_tenant = false) params ~allow_digest =
  let keys =
    [ "rules"; "source"; "digest" ] @ if allow_tenant then [ "tenant" ] else []
  in
  let pick =
    List.filter_map
      (fun name ->
        Option.map (fun v -> (name, v)) (Json.member name params))
      keys
  in
  match pick with
  | [ ("rules", Json.String s) ] -> Ok (Text s)
  | [ ("source", Json.String s) ] -> Ok (Source s)
  | [ ("digest", Json.String s) ] when allow_digest -> Ok (Digest s)
  | [ ("tenant", Json.String s) ] -> Ok (Tenant s)
  | [ ("digest", Json.String _) ] ->
    Error (error Invalid_params "this method requires \"rules\" or \"source\"")
  | [ (name, _) ] ->
    Error (errorf Invalid_params "%S must be a string" name)
  | [] ->
    Error
      (errorf Invalid_params "expected one of %s"
         (match (allow_digest, allow_tenant) with
          | true, true -> "\"rules\", \"source\", \"digest\" or \"tenant\""
          | true, false -> "\"rules\", \"source\" or \"digest\""
          | false, true -> "\"rules\", \"source\" or \"tenant\""
          | false, false -> "\"rules\" or \"source\""))
  | _ :: _ :: _ ->
    Error
      (errorf Invalid_params "%s are mutually exclusive"
         (if allow_tenant then
            "\"rules\", \"source\", \"digest\" and \"tenant\""
          else "\"rules\", \"source\" and \"digest\""))

let choice_ref params =
  match (Json.member "option" params, Json.member "mas" params) with
  | Some (Json.Int i), None -> Ok (Index i)
  | None, Some (Json.String s) -> Ok (Mas s)
  | None, None ->
    Error
      (error Invalid_params
         "expected \"option\" (an index into the report's options) or \
          \"mas\" (the minimized form itself)")
  | Some _, Some _ ->
    Error (error Invalid_params "\"option\" and \"mas\" are mutually exclusive")
  | Some _, None -> Error (error Invalid_params "\"option\" must be an integer")
  | None, Some _ -> Error (error Invalid_params "\"mas\" must be a string")

(* Optional scalar parameters shared by the tenant methods. *)
let tenant_field params =
  match Json.member "tenant" params with
  | None -> Ok None
  | Some (Json.String s) -> Ok (Some s)
  | Some _ -> Error (error Invalid_params "\"tenant\" must be a string")

let quota_field params =
  match Json.member "quota" params with
  | None -> Ok None
  | Some (Json.Int q) when q >= 0 -> Ok (Some q)
  | Some (Json.Int _) ->
    Error (error Invalid_params "\"quota\" must be >= 0 (0 means unlimited)")
  | Some _ -> Error (error Invalid_params "\"quota\" must be an integer")

let decode_request name params =
  match name with
  | "publish_rules" ->
    let* rules = rules_ref params ~allow_digest:false in
    let* tenant = tenant_field params in
    let* quota = quota_field params in
    let* () =
      if quota <> None && tenant = None then
        Error
          (error Invalid_params "\"quota\" requires a \"tenant\" parameter")
      else Ok ()
    in
    Ok (Publish_rules { rules; tenant; quota })
  | "update_rules" ->
    let* rules = rules_ref params ~allow_digest:false in
    let* tenant = tenant_field params in
    let* quota = quota_field params in
    let* tenant =
      match tenant with
      | Some t -> Ok t
      | None -> Error (error Invalid_params "missing \"tenant\" parameter")
    in
    Ok (Update_rules { tenant; rules; quota })
  | "new_session" ->
    let* rules = rules_ref params ~allow_digest:true ~allow_tenant:true in
    Ok (New_session rules)
  | "get_report" ->
    let* session = string_field params "session" in
    let* valuation = string_field params "valuation" in
    Ok (Get_report { session; valuation })
  | "choose_option" ->
    let* session = string_field params "session" in
    let* choice = choice_ref params in
    Ok (Choose_option { session; choice })
  | "submit_form" ->
    let* session = string_field params "session" in
    Ok (Submit_form { session })
  | "revoke" ->
    let* session = string_field params "session" in
    Ok (Revoke { session })
  | "expire" ->
    let* session = string_field params "session" in
    let* after =
      match Json.member "after" params with
      | Some (Json.Int i) when i >= 0 -> Ok (float_of_int i)
      | Some (Json.Float f) when f >= 0. -> Ok f
      | Some (Json.Int _ | Json.Float _) ->
        Error (error Invalid_params "\"after\" must be >= 0 (seconds)")
      | Some _ -> Error (error Invalid_params "\"after\" must be a number")
      | None -> Error (error Invalid_params "missing \"after\" parameter")
    in
    Ok (Expire { session; after })
  | "audit" ->
    let* rules = rules_ref params ~allow_digest:true ~allow_tenant:true in
    Ok (Audit rules)
  | "tenant" ->
    let* name =
      match Json.member "name" params with
      | None -> Ok None
      | Some (Json.String s) -> Ok (Some s)
      | Some _ -> Error (error Invalid_params "\"name\" must be a string")
    in
    let* wait =
      match Json.member "wait" params with
      | None -> Ok false
      | Some (Json.Bool b) -> Ok b
      | Some _ -> Error (error Invalid_params "\"wait\" must be a boolean")
    in
    let* () =
      if wait && name = None then
        Error (error Invalid_params "\"wait\" requires a \"name\" parameter")
      else Ok ()
    in
    Ok (Tenant_info { name; wait })
  | "stats" -> Ok Stats
  | "metrics" -> (
    match Json.member "format" params with
    | None | Some (Json.String "json") -> Ok (Metrics Mjson)
    | Some (Json.String "prometheus") -> Ok (Metrics Mprometheus)
    | Some (Json.String other) ->
      Error
        (errorf Invalid_params
           "unknown metrics format %S (expected \"json\" or \"prometheus\")"
           other)
    | Some _ -> Error (error Invalid_params "\"format\" must be a string"))
  | "trace" ->
    let* query =
      match (Json.member "which" params, Json.member "id" params) with
      | (None | Some (Json.String "last")), None -> Ok Tlast
      | Some (Json.String "slow"), None -> Ok Tslow
      | Some (Json.String "get"), Some (Json.String id) -> Ok (Tget id)
      | Some (Json.String "get"), Some _ ->
        Error (error Invalid_params "\"id\" must be a string")
      | Some (Json.String "get"), None ->
        Error (error Invalid_params "\"which\":\"get\" requires an \"id\"")
      | None, Some (Json.String id) -> Ok (Tget id)
      | _, Some _ when Json.member "which" params <> None ->
        Error
          (error Invalid_params
             "\"id\" only applies to \"which\":\"get\"")
      | Some (Json.String other), _ ->
        Error
          (errorf Invalid_params
             "unknown trace query %S (expected \"last\", \"slow\" or \
              \"get\")"
             other)
      | Some _, _ -> Error (error Invalid_params "\"which\" must be a string")
      | None, Some _ -> Error (error Invalid_params "\"id\" must be a string")
    in
    let* format =
      match Json.member "format" params with
      | None | Some (Json.String "tree") -> Ok Ttree
      | Some (Json.String "chrome") -> Ok Tchrome
      | Some (Json.String other) ->
        Error
          (errorf Invalid_params
             "unknown trace format %S (expected \"tree\" or \"chrome\")"
             other)
      | Some _ -> Error (error Invalid_params "\"format\" must be a string")
    in
    Ok (Trace_req { query; format })
  | "watch" ->
    let* interval =
      match Json.member "interval" params with
      | None -> Ok 1.0
      | Some (Json.Int i) when i >= 0 -> Ok (float_of_int i)
      | Some (Json.Float f) when f >= 0. -> Ok f
      | Some _ ->
        Error
          (error Invalid_params "\"interval\" must be a non-negative number")
    in
    let* frames =
      match Json.member "frames" params with
      | None -> Ok 0
      | Some (Json.Int n) when n >= 0 -> Ok n
      | Some _ ->
        Error
          (error Invalid_params "\"frames\" must be a non-negative integer")
    in
    Ok (Watch { interval; frames })
  | other -> Error (errorf Unknown_method "unknown method %S" other)

let max_line_bytes = 1 lsl 20

let decode line =
  if String.length line > max_line_bytes then
    Error
      ( Json.Null,
        None,
        errorf Invalid_request "oversized request line (%d bytes, max %d)"
          (String.length line) max_line_bytes )
  else
  match Json.parse line with
  | Error m -> Error (Json.Null, None, error Parse_error m)
  | Ok (Json.Obj _ as obj) -> (
    let id =
      match Json.member "id" obj with
      | Some ((Json.Int _ | Json.String _ | Json.Null) as id) -> id
      | Some _ | None -> Json.Null
    in
    (* Best-effort like [id]: a malformed request still gets its trace
       id echoed so the client can correlate the error. *)
    let trace =
      match Json.member "trace" obj with
      | Some (Json.String t) -> Some t
      | Some _ | None -> None
    in
    let fail e = Error (id, trace, e) in
    match Json.member "pet" obj with
    | Some (Json.Int v) when v = version -> (
      match Json.member "method" obj with
      | Some (Json.String name) -> (
        let params =
          match Json.member "params" obj with
          | Some (Json.Obj _ as params) -> Ok params
          | None -> Ok (Json.Obj [])
          | Some _ -> Error (error Invalid_request "\"params\" must be an object")
        in
        match params with
        | Error e -> fail e
        | Ok params -> (
          match decode_request name params with
          | Ok request -> Ok { id; trace; request }
          | Error e -> fail e))
      | Some _ -> fail (error Invalid_request "\"method\" must be a string")
      | None -> fail (error Invalid_request "missing \"method\""))
    | Some (Json.Int v) ->
      fail
        (errorf Invalid_request "unsupported protocol version %d (this is %d)"
           v version)
    | Some _ -> fail (error Invalid_request "\"pet\" must be an integer")
    | None ->
      fail (error Invalid_request "missing \"pet\" protocol-version field"))
  | Ok _ ->
    Error (Json.Null, None, error Invalid_request "request must be a JSON object")

(* --- Fast decoding ----------------------------------------------------------- *)

(* A one-pass scan of the fixed envelope shape over {!Json.Cursor},
   with no AST. Soundness contract: [decode_fast line = Some env]
   implies [decode line = Ok env] — every accepted byte sequence is one
   the full decoder accepts with the same meaning, and anything else
   (escaped strings, floats, nesting, duplicate keys, cold methods,
   semantic parameter errors) returns [None] so the caller falls back
   to {!decode}. The fuzzer checks the implication on every generated
   line, so the fast path can never change an answer, only skip
   allocations on the hot methods. *)

module Cursor = Json.Cursor

type fast_value = Fstr of string | Fint of int

(* Scan one scalar parameter value; anything non-scalar bails. *)
let fast_value cur =
  Cursor.skip_ws cur;
  match Cursor.peek cur with
  | '"' -> Option.map (fun s -> Fstr s) (Cursor.simple_string cur)
  | '-' | '0' .. '9' -> Option.map (fun i -> Fint i) (Cursor.int cur)
  | _ -> None

(* Scan a flat object of distinct scalar fields into an assoc list
   (arrival order). Duplicate keys bail: [Json.member] keeps the first
   occurrence, and refusing duplicates outright is the cheapest way to
   stay observationally identical. *)
let fast_flat_obj cur =
  let ( let* ) = Option.bind in
  Cursor.skip_ws cur;
  if not (Cursor.accept cur '{') then None
  else begin
    Cursor.skip_ws cur;
    if Cursor.accept cur '}' then Some []
    else
      let rec fields acc =
        Cursor.skip_ws cur;
        let* key = Cursor.simple_string cur in
        if List.mem_assoc key acc then None
        else begin
          Cursor.skip_ws cur;
          if not (Cursor.accept cur ':') then None
          else
            let* value = fast_value cur in
            let acc = (key, value) :: acc in
            Cursor.skip_ws cur;
            if Cursor.accept cur ',' then fields acc
            else if Cursor.accept cur '}' then Some (List.rev acc)
            else None
        end
      in
      fields []
  end

(* The hot methods: the request loop of Figure 3. Everything else —
   publish_rules (whose rule text needs string escapes anyway), audit,
   stats, metrics, trace — takes the full decoder. *)
let fast_request meth params =
  let str name = match List.assoc_opt name params with
    | Some (Fstr s) -> Some s
    | _ -> None
  in
  let only names = List.for_all (fun (k, _) -> List.mem k names) params in
  match meth with
  | "new_session" -> (
    if not (only [ "rules"; "source"; "digest"; "tenant" ]) then None
    else
      match params with
      | [ ("rules", Fstr s) ] -> Some (New_session (Text s))
      | [ ("source", Fstr s) ] -> Some (New_session (Source s))
      | [ ("digest", Fstr s) ] -> Some (New_session (Digest s))
      | [ ("tenant", Fstr s) ] -> Some (New_session (Tenant s))
      | _ -> None)
  | "get_report" -> (
    if not (only [ "session"; "valuation" ]) then None
    else
      match (str "session", str "valuation") with
      | Some session, Some valuation ->
        Some (Get_report { session; valuation })
      | _ -> None)
  | "choose_option" -> (
    if not (only [ "session"; "option"; "mas" ]) then None
    else
      match (str "session", List.assoc_opt "option" params,
             List.assoc_opt "mas" params)
      with
      | Some session, Some (Fint i), None ->
        Some (Choose_option { session; choice = Index i })
      | Some session, None, Some (Fstr s) ->
        Some (Choose_option { session; choice = Mas s })
      | _ -> None)
  | "submit_form" -> (
    if not (only [ "session" ]) then None
    else
      match str "session" with
      | Some session -> Some (Submit_form { session })
      | _ -> None)
  | _ -> None

let decode_fast line =
  if String.length line > max_line_bytes then None
  else begin
    let ( let* ) = Option.bind in
    let cur = Cursor.of_string line in
    Cursor.skip_ws cur;
    if not (Cursor.accept cur '{') then None
    else begin
      let pet = ref None and id = ref None and trace = ref None in
      let meth = ref None and params = ref None in
      let slot r v = match !r with Some _ -> None | None -> r := Some v; Some () in
      let rec fields first =
        Cursor.skip_ws cur;
        if first && Cursor.accept cur '}' then Some ()
        else
          let* key = Cursor.simple_string cur in
          Cursor.skip_ws cur;
          if not (Cursor.accept cur ':') then None
          else
            let* () =
              match key with
              | "pet" ->
                Cursor.skip_ws cur;
                let* v = Cursor.int cur in
                slot pet v
              | "id" -> (
                Cursor.skip_ws cur;
                match Cursor.peek cur with
                | '"' ->
                  let* s = Cursor.simple_string cur in
                  slot id (Json.String s)
                | '-' | '0' .. '9' ->
                  let* i = Cursor.int cur in
                  slot id (Json.Int i)
                | _ -> None)
              | "trace" ->
                Cursor.skip_ws cur;
                let* s = Cursor.simple_string cur in
                slot trace s
              | "method" ->
                Cursor.skip_ws cur;
                let* s = Cursor.simple_string cur in
                slot meth s
              | "params" ->
                let* fs = fast_flat_obj cur in
                slot params fs
              | _ -> None
            in
            Cursor.skip_ws cur;
            if Cursor.accept cur ',' then fields false
            else if Cursor.accept cur '}' then Some ()
            else None
      in
      let* () = fields true in
      Cursor.skip_ws cur;
      if not (Cursor.at_end cur) then None
      else
        let* pet = !pet in
        if pet <> version then None
        else
          let* meth = !meth in
          let* request = fast_request meth (Option.value ~default:[] !params) in
          Some
            {
              id = Option.value ~default:Json.Null !id;
              trace = !trace;
              request;
            }
    end
  end

(* --- Encoding --------------------------------------------------------------- *)

let trace_field = function
  | None -> []
  | Some t -> [ ("trace", Json.String t) ]

let ok_response ~id ?trace result =
  Json.to_string
    (Json.Obj
       (("pet", Json.Int version) :: ("id", id)
       :: (trace_field trace @ [ ("ok", result) ])))

(* Same bytes as {!ok_response} for a result already rendered by
   [Json.to_string]: the envelope fields are emitted around the cached
   payload instead of re-walking its tree. The compiled fast path keeps
   each tabulated report as its rendered string, so a cache hit reply
   is a few [Buffer] appends. *)
let ok_response_text ~id ?trace payload =
  let buf = Buffer.create (String.length payload + 48) in
  Buffer.add_string buf "{\"pet\":";
  Buffer.add_string buf (string_of_int version);
  Buffer.add_string buf ",\"id\":";
  Buffer.add_string buf (Json.to_string id);
  (match trace with
  | None -> ()
  | Some t ->
    Buffer.add_string buf ",\"trace\":";
    Buffer.add_string buf (Json.to_string (Json.String t)));
  Buffer.add_string buf ",\"ok\":";
  Buffer.add_string buf payload;
  Buffer.add_char buf '}';
  Buffer.contents buf

let error_response ~id ?trace { code; message } =
  Json.to_string
    (Json.Obj
       (("pet", Json.Int version) :: ("id", id)
       :: trace_field trace
       @ [
           ( "error",
             Json.Obj
               [
                 ("code", Json.String (code_name code));
                 ("message", Json.String message);
               ] );
         ]))
