lib/minimize/algorithm1.ml: Hashtbl List Pet_logic Pet_rules Pet_valuation String
