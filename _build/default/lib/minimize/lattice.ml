module Universe = Pet_valuation.Universe
module Partial = Pet_valuation.Partial
module Engine = Pet_rules.Engine
module Exposure = Pet_rules.Exposure

type kind = Valuation | Mas | Accurate

type node = { w : Partial.t; benefits : string list; kind : kind }

type t = { nodes : node list; edges : (Partial.t * Partial.t) list }

(* All partial valuations over the universe, by increasing domain size. *)
let all_partials xp =
  let n = Universe.size xp in
  let doms = List.init (1 lsl n) Fun.id in
  List.concat_map
    (fun dom ->
      let rec subsets bits acc =
        let w = Partial.of_masks xp ~dom ~bits in
        let acc = w :: acc in
        if bits = 0 then acc else subsets ((bits - 1) land dom) acc
      in
      subsets dom [])
    doms

let build atlas =
  let engine = Atlas.engine atlas in
  let exposure = Engine.exposure engine in
  let xp = Exposure.xp exposure in
  if Universe.size xp > 10 then
    invalid_arg "Lattice.build: universe too large for the full digraph";
  let mas_set =
    List.map (fun (c : Algorithm1.choice) -> c.mas) (Atlas.mas_list atlas)
  in
  let nodes =
    List.filter_map
      (fun w ->
        match Engine.benefits engine w with
        | [] -> None
        | benefits ->
          let kind =
            if List.exists (Partial.equal w) mas_set then Mas
            else if Partial.is_total w then Valuation
            else Accurate
          in
          Some { w; benefits; kind })
      (all_partials xp)
  in
  let nodes =
    List.sort (fun a b -> Partial.compare_lex a.w b.w) nodes
  in
  let edges =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            if
              Partial.domain_size b.w = Partial.domain_size a.w + 1
              && Partial.strict_subvaluation a.w b.w
              && List.equal String.equal a.benefits b.benefits
            then Some (a.w, b.w)
            else None)
          nodes)
      nodes
  in
  { nodes; edges }

let node_of t w = List.find_opt (fun n -> Partial.equal n.w w) t.nodes

let pp ppf t =
  let pp_kind ppf = function
    | Valuation -> Fmt.string ppf "valuation"
    | Mas -> Fmt.string ppf "MAS"
    | Accurate -> Fmt.string ppf "accurate"
  in
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun n ->
      Fmt.pf ppf "%a [%a] {%a}@," Partial.pp n.w pp_kind n.kind
        Fmt.(list ~sep:(any ", ") string)
        n.benefits)
    t.nodes;
  List.iter
    (fun (a, b) -> Fmt.pf ppf "%a -> %a@," Partial.pp a Partial.pp b)
    t.edges;
  Fmt.pf ppf "@]"
