type t = int

let make v sign =
  if v < 0 then invalid_arg "Lit.make: negative variable";
  (2 * v) + if sign then 0 else 1

let var l = l lsr 1
let sign l = l land 1 = 0
let negate l = l lxor 1

let of_dimacs k =
  if k = 0 then invalid_arg "Lit.of_dimacs: zero";
  make (abs k - 1) (k > 0)

let to_dimacs l = if sign l then var l + 1 else -(var l + 1)
let pp ppf l = Fmt.int ppf (to_dimacs l)
