type result = Sat | Unsat

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  learnt_literals : int;
}

type clause = {
  mutable lits : int array;
  learnt : bool;
  mutable activity : float;
  mutable removed : bool;
}

let dummy_clause = { lits = [||]; learnt = false; activity = 0.; removed = false }

(* Truth values: 0 = undefined, 1 = true, 2 = false. *)
let v_undef = 0
and v_true = 1
and v_false = 2

type t = {
  mutable ok : bool;
  mutable nvars : int;
  (* Per-variable state, arrays of capacity >= nvars. *)
  mutable assign : int array;
  mutable level : int array;
  mutable reason : clause array; (* dummy_clause = no reason *)
  mutable var_act : float array;
  mutable polarity : bool array; (* saved phase *)
  mutable seen : bool array; (* scratch for conflict analysis *)
  (* Per-literal state, capacity >= 2 * nvars. *)
  mutable watches : clause Vec.t array;
  clauses : clause Vec.t;
  learnts : clause Vec.t;
  trail : int Vec.t;
  trail_lim : int Vec.t;
  mutable qhead : int;
  mutable var_inc : float;
  mutable cla_inc : float;
  max_learnt_factor : int;
  mutable last_result : result option;
  mutable saved_model : bool array;
  mutable core : int list;
  (* statistics *)
  mutable n_conflicts : int;
  mutable n_decisions : int;
  mutable n_propagations : int;
  mutable n_restarts : int;
  mutable n_learnt_literals : int;
}

let create ?(max_learnt_factor = 3) () =
  {
    ok = true;
    nvars = 0;
    assign = Array.make 8 v_undef;
    level = Array.make 8 0;
    reason = Array.make 8 dummy_clause;
    var_act = Array.make 8 0.;
    polarity = Array.make 8 false;
    seen = Array.make 8 false;
    watches = Array.init 16 (fun _ -> Vec.create ~dummy:dummy_clause ());
    clauses = Vec.create ~dummy:dummy_clause ();
    learnts = Vec.create ~dummy:dummy_clause ();
    trail = Vec.create ~dummy:0 ();
    trail_lim = Vec.create ~dummy:0 ();
    qhead = 0;
    var_inc = 1.0;
    cla_inc = 1.0;
    max_learnt_factor;
    last_result = None;
    saved_model = [||];
    core = [];
    n_conflicts = 0;
    n_decisions = 0;
    n_propagations = 0;
    n_restarts = 0;
    n_learnt_literals = 0;
  }

let nvars s = s.nvars
let okay s = s.ok

let grow_array a n dummy =
  let a' = Array.make n dummy in
  Array.blit a 0 a' 0 (Array.length a);
  a'

let new_var s =
  let v = s.nvars in
  let cap = Array.length s.assign in
  if v >= cap then begin
    let cap' = 2 * cap in
    s.assign <- grow_array s.assign cap' v_undef;
    s.level <- grow_array s.level cap' 0;
    s.reason <- grow_array s.reason cap' dummy_clause;
    s.var_act <- grow_array s.var_act cap' 0.;
    s.polarity <- grow_array s.polarity cap' false;
    s.seen <- grow_array s.seen cap' false;
    let watches = Array.init (2 * cap') (fun _ -> Vec.create ~dummy:dummy_clause ()) in
    Array.blit s.watches 0 watches 0 (2 * cap);
    s.watches <- watches
  end;
  s.assign.(v) <- v_undef;
  s.level.(v) <- 0;
  s.reason.(v) <- dummy_clause;
  s.var_act.(v) <- 0.;
  s.polarity.(v) <- false;
  s.seen.(v) <- false;
  Vec.clear s.watches.(2 * v);
  Vec.clear s.watches.((2 * v) + 1);
  s.nvars <- v + 1;
  v

let ensure_nvars s n =
  while s.nvars < n do
    ignore (new_var s)
  done

let check_lit s l =
  if Lit.var l >= s.nvars then
    invalid_arg
      (Printf.sprintf "Solver: literal %d refers to unknown variable"
         (Lit.to_dimacs l))

let lit_value s l =
  let a = s.assign.(Lit.var l) in
  if a = v_undef then v_undef
  else if Lit.sign l then a
  else if a = v_true then v_false
  else v_true

let decision_level s = Vec.size s.trail_lim

(* --- Activities ------------------------------------------------------ *)

let var_decay = 1.0 /. 0.95
let clause_decay = 1.0 /. 0.999

let rescale_var_activity s =
  for v = 0 to s.nvars - 1 do
    s.var_act.(v) <- s.var_act.(v) *. 1e-100
  done;
  s.var_inc <- s.var_inc *. 1e-100

let bump_var s v =
  s.var_act.(v) <- s.var_act.(v) +. s.var_inc;
  if s.var_act.(v) > 1e100 then rescale_var_activity s

let bump_clause s c =
  c.activity <- c.activity +. s.cla_inc;
  if c.activity > 1e100 then begin
    Vec.iter (fun c -> c.activity <- c.activity *. 1e-100) s.learnts;
    s.cla_inc <- s.cla_inc *. 1e-100
  end

let decay_activities s =
  s.var_inc <- s.var_inc *. var_decay;
  s.cla_inc <- s.cla_inc *. clause_decay

(* --- Trail ------------------------------------------------------------ *)

let enqueue s l reason =
  assert (lit_value s l = v_undef);
  let v = Lit.var l in
  s.assign.(v) <- (if Lit.sign l then v_true else v_false);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  Vec.push s.trail l

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = Vec.get s.trail_lim lvl in
    for i = Vec.size s.trail - 1 downto bound do
      let l = Vec.get s.trail i in
      let v = Lit.var l in
      s.assign.(v) <- v_undef;
      s.polarity.(v) <- Lit.sign l;
      s.reason.(v) <- dummy_clause
    done;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim lvl;
    s.qhead <- bound
  end

(* --- Watches ---------------------------------------------------------- *)

let attach s c =
  Vec.push s.watches.(c.lits.(0)) c;
  Vec.push s.watches.(c.lits.(1)) c

let detach s c =
  Vec.filter_in_place (fun c' -> c' != c) s.watches.(c.lits.(0));
  Vec.filter_in_place (fun c' -> c' != c) s.watches.(c.lits.(1))

(* --- Propagation ------------------------------------------------------ *)

let propagate s =
  let confl = ref None in
  while !confl = None && s.qhead < Vec.size s.trail do
    let p = Vec.get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    s.n_propagations <- s.n_propagations + 1;
    let false_lit = Lit.negate p in
    let ws = s.watches.(false_lit) in
    let n = Vec.size ws in
    let i = ref 0 and j = ref 0 in
    while !i < n do
      let c = Vec.get ws !i in
      incr i;
      if !confl <> None || c.removed then begin
        if not c.removed then begin
          Vec.set ws !j c;
          incr j
        end
      end
      else begin
        (* Normalize so the false literal sits at index 1. *)
        if c.lits.(0) = false_lit then begin
          c.lits.(0) <- c.lits.(1);
          c.lits.(1) <- false_lit
        end;
        if lit_value s c.lits.(0) = v_true then begin
          (* Clause already satisfied by the other watch. *)
          Vec.set ws !j c;
          incr j
        end
        else begin
          (* Look for a new literal to watch. *)
          let len = Array.length c.lits in
          let k = ref 2 in
          while !k < len && lit_value s c.lits.(!k) = v_false do
            incr k
          done;
          if !k < len then begin
            c.lits.(1) <- c.lits.(!k);
            c.lits.(!k) <- false_lit;
            Vec.push s.watches.(c.lits.(1)) c
          end
          else begin
            (* Unit under the current assignment, or conflicting. *)
            Vec.set ws !j c;
            incr j;
            if lit_value s c.lits.(0) = v_false then confl := Some c
            else enqueue s c.lits.(0) c
          end
        end
      end
    done;
    (* Copy back any watcher skipped because a conflict interrupted us. *)
    Vec.shrink ws !j
  done;
  !confl

(* --- Clause addition --------------------------------------------------- *)

let add_clause s lits =
  if s.ok then begin
    assert (decision_level s = 0);
    List.iter (check_lit s) lits;
    (* Level-0 simplification: drop satisfied clauses and false literals,
       detect tautologies. *)
    let lits = List.sort_uniq Stdlib.compare lits in
    let tautological =
      List.exists (fun l -> List.mem (Lit.negate l) lits) lits
    in
    let satisfied = List.exists (fun l -> lit_value s l = v_true) lits in
    if not (tautological || satisfied) then begin
      let lits = List.filter (fun l -> lit_value s l <> v_false) lits in
      match lits with
      | [] -> s.ok <- false
      | [ l ] ->
        enqueue s l dummy_clause;
        if propagate s <> None then s.ok <- false
      | _ ->
        let c =
          {
            lits = Array.of_list lits;
            learnt = false;
            activity = 0.;
            removed = false;
          }
        in
        Vec.push s.clauses c;
        attach s c
    end
  end

(* --- Conflict analysis ------------------------------------------------- *)

(* First-UIP learning. Reason clauses always carry their implied literal at
   index 0, which the loop below relies on. Returns the learnt clause
   (asserting literal first) and the backtracking level. *)
let analyze s confl =
  let learnt = ref [] in
  let to_clear = ref [] in
  let path = ref 0 in
  let p = ref (-1) in
  let confl = ref (Some confl) in
  let idx = ref (Vec.size s.trail - 1) in
  let dl = decision_level s in
  let continue = ref true in
  while !continue do
    let c = match !confl with Some c -> c | None -> assert false in
    if c.learnt then bump_clause s c;
    let start = if !p = -1 then 0 else 1 in
    for k = start to Array.length c.lits - 1 do
      let q = c.lits.(k) in
      let v = Lit.var q in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        s.seen.(v) <- true;
        to_clear := v :: !to_clear;
        bump_var s v;
        if s.level.(v) >= dl then incr path else learnt := q :: !learnt
      end
    done;
    (* Walk the trail back to the next marked literal. *)
    while not s.seen.(Lit.var (Vec.get s.trail !idx)) do
      decr idx
    done;
    p := Vec.get s.trail !idx;
    decr idx;
    let v = Lit.var !p in
    s.seen.(v) <- false;
    decr path;
    if !path > 0 then confl := Some s.reason.(v) else continue := false
  done;
  (* Clause minimization by self-subsumption: a literal [q] of the learnt
     clause is redundant when its reason clause only contains literals
     that are already in the clause (marked seen) or assigned at level 0
     — resolving on [q] then cannot add anything. The [seen] marks are
     still set for the kept literals, so this is a single pass. *)
  let is_redundant q =
    let v = Lit.var q in
    let reason = s.reason.(v) in
    reason != dummy_clause
    && Array.for_all
         (fun r ->
           let w = Lit.var r in
           w = v || s.seen.(w) || s.level.(w) = 0)
         reason.lits
  in
  let kept = List.filter (fun q -> not (is_redundant q)) !learnt in
  List.iter (fun v -> s.seen.(v) <- false) !to_clear;
  let learnt = Lit.negate !p :: kept in
  (* Backtrack level: the highest level among the non-asserting literals. *)
  let bt_level =
    List.fold_left
      (fun acc q -> max acc s.level.(Lit.var q))
      0 (List.tl learnt)
  in
  learnt, bt_level

(* Install a freshly learnt clause: backtrack, attach, assert. *)
let record s learnt bt_level =
  cancel_until s bt_level;
  s.n_learnt_literals <- s.n_learnt_literals + List.length learnt;
  match learnt with
  | [] -> assert false
  | [ l ] -> enqueue s l dummy_clause
  | first :: rest ->
    (* Watch the asserting literal and one literal of the backtrack
       level, so the clause stays correctly watched after backtracking. *)
    let rest_arr = Array.of_list rest in
    let wi = ref 0 in
    Array.iteri
      (fun k q -> if s.level.(Lit.var q) = bt_level then wi := k)
      rest_arr;
    let tmp = rest_arr.(0) in
    rest_arr.(0) <- rest_arr.(!wi);
    rest_arr.(!wi) <- tmp;
    let c =
      {
        lits = Array.append [| first |] rest_arr;
        learnt = true;
        activity = 0.;
        removed = false;
      }
    in
    bump_clause s c;
    Vec.push s.learnts c;
    attach s c;
    enqueue s first c

(* --- Learnt database reduction ----------------------------------------- *)

let locked s c =
  Array.length c.lits > 0
  &&
  let v = Lit.var c.lits.(0) in
  s.assign.(v) <> v_undef && s.reason.(v) == c

let reduce_db s =
  let learnts = Vec.to_list s.learnts in
  let sorted =
    List.sort (fun a b -> Float.compare a.activity b.activity) learnts
  in
  let n = List.length sorted in
  let removed = ref 0 in
  let remove c =
    if (2 * !removed) < n && (not (locked s c)) && Array.length c.lits > 2
    then begin
      c.removed <- true;
      detach s c;
      incr removed
    end
  in
  List.iter remove sorted;
  Vec.filter_in_place (fun c -> not c.removed) s.learnts

(* --- Assumption cores --------------------------------------------------- *)

(* The assumption [failing] was found already false on the trail, i.e.
   [~failing] is entailed by the clauses and the earlier assumptions.
   Walk the implication graph backwards from [~failing] and collect the
   trail decisions met on the way — below the assumption levels these are
   exactly assumption literals — yielding an unsatisfiable subset of the
   assumptions. *)
let analyze_final s failing =
  let core = ref [ failing ] in
  if decision_level s > 0 then begin
    let to_clear = ref [] in
    let mark v =
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        s.seen.(v) <- true;
        to_clear := v :: !to_clear
      end
    in
    mark (Lit.var failing);
    for i = Vec.size s.trail - 1 downto Vec.get s.trail_lim 0 do
      let q = Vec.get s.trail i in
      let v = Lit.var q in
      if s.seen.(v) then begin
        if s.reason.(v) == dummy_clause then core := q :: !core
        else Array.iter (fun r -> mark (Lit.var r)) s.reason.(v).lits;
        s.seen.(v) <- false
      end
    done;
    List.iter (fun v -> s.seen.(v) <- false) !to_clear
  end;
  List.sort_uniq Stdlib.compare !core

(* --- Search ------------------------------------------------------------ *)

let luby k =
  (* Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
  let rec go size seq k =
    if size = k + 1 then (1 lsl seq)
    else
      let size' = (size - 1) / 2 in
      if k >= size' then go size' (seq - 1) (k mod size')
      else go size' (seq - 1) k
  in
  let rec bracket size seq =
    if size >= k + 1 then size, seq else bracket ((2 * size) + 1) (seq + 1)
  in
  let size, seq = bracket 1 0 in
  go size seq k

let pick_branch_var s =
  let best = ref (-1) in
  let best_act = ref neg_infinity in
  for v = 0 to s.nvars - 1 do
    if s.assign.(v) = v_undef && s.var_act.(v) > !best_act then begin
      best := v;
      best_act := s.var_act.(v)
    end
  done;
  !best

exception Answered of result

let max_learnts s =
  s.max_learnt_factor * max 16 (Vec.size s.clauses)

(* One restart round with a conflict budget; raises [Answered] on a
   definitive answer, returns () when the budget is exhausted. *)
let search s assumptions budget =
  let conflicts = ref 0 in
  while true do
    match propagate s with
    | Some confl ->
      incr conflicts;
      s.n_conflicts <- s.n_conflicts + 1;
      if decision_level s = 0 then begin
        s.ok <- false;
        s.core <- [];
        raise (Answered Unsat)
      end;
      let learnt, bt_level = analyze s confl in
      record s learnt bt_level;
      decay_activities s
    | None ->
      if !conflicts >= budget then begin
        cancel_until s 0;
        s.n_restarts <- s.n_restarts + 1;
        raise Exit
      end;
      if Vec.size s.learnts >= max_learnts s then reduce_db s;
      let dl = decision_level s in
      if dl < Array.length assumptions then begin
        (* Re-establish the next pending assumption. *)
        let p = assumptions.(dl) in
        match lit_value s p with
        | a when a = v_true ->
          (* Already implied: open a dummy decision level for it. *)
          Vec.push s.trail_lim (Vec.size s.trail)
        | a when a = v_false ->
          s.core <- analyze_final s p;
          raise (Answered Unsat)
        | _ ->
          s.n_decisions <- s.n_decisions + 1;
          Vec.push s.trail_lim (Vec.size s.trail);
          enqueue s p dummy_clause
      end
      else begin
        match pick_branch_var s with
        | -1 ->
          (* All variables assigned: model found. *)
          s.saved_model <- Array.init s.nvars (fun v -> s.assign.(v) = v_true);
          raise (Answered Sat)
        | v ->
          s.n_decisions <- s.n_decisions + 1;
          Vec.push s.trail_lim (Vec.size s.trail);
          enqueue s (Lit.make v s.polarity.(v)) dummy_clause
      end
  done

(* Observability: the search loop keeps its native per-instance
   counters (no obs calls on the hot path); each [solve] pushes the
   deltas it caused into the process-global metrics afterwards. *)
let obs_solves = Pet_obs.Metrics.counter "pet_sat_solves_total"
let obs_conflicts = Pet_obs.Metrics.counter "pet_sat_conflicts_total"
let obs_decisions = Pet_obs.Metrics.counter "pet_sat_decisions_total"
let obs_propagations = Pet_obs.Metrics.counter "pet_sat_propagations_total"
let obs_restarts = Pet_obs.Metrics.counter "pet_sat_restarts_total"

let solve ?(assumptions = []) s =
  List.iter (check_lit s) assumptions;
  cancel_until s 0;
  s.core <- [];
  let c0 = s.n_conflicts
  and d0 = s.n_decisions
  and p0 = s.n_propagations
  and r0 = s.n_restarts in
  let answer =
    if not s.ok then Unsat
    else begin
      let assumptions = Array.of_list assumptions in
      let rec rounds k =
        match search s assumptions (100 * luby k) with
        | () -> assert false
        | exception Exit -> rounds (k + 1)
        | exception Answered r -> r
      in
      rounds 0
    end
  in
  cancel_until s 0;
  s.last_result <- Some answer;
  if Pet_obs.Metrics.enabled () then begin
    Pet_obs.Metrics.incr obs_solves;
    Pet_obs.Metrics.add obs_conflicts (s.n_conflicts - c0);
    Pet_obs.Metrics.add obs_decisions (s.n_decisions - d0);
    Pet_obs.Metrics.add obs_propagations (s.n_propagations - p0);
    Pet_obs.Metrics.add obs_restarts (s.n_restarts - r0)
  end;
  answer

let value s v =
  match s.last_result with
  | Some Sat when v < Array.length s.saved_model -> s.saved_model.(v)
  | Some Sat -> invalid_arg "Solver.value: variable created after solve"
  | _ -> invalid_arg "Solver.value: last solve did not return Sat"

let model s =
  match s.last_result with
  | Some Sat -> Array.copy s.saved_model
  | _ -> invalid_arg "Solver.model: last solve did not return Sat"

let unsat_core s =
  match s.last_result with
  | Some Unsat -> s.core
  | _ -> invalid_arg "Solver.unsat_core: last solve did not return Unsat"

let stats s =
  {
    conflicts = s.n_conflicts;
    decisions = s.n_decisions;
    propagations = s.n_propagations;
    restarts = s.n_restarts;
    learnt_literals = s.n_learnt_literals;
  }

let iter_models ?vars s f =
  let vars =
    match vars with Some vs -> vs | None -> List.init s.nvars (fun v -> v)
  in
  List.iter (fun v -> check_lit s (Lit.make v true)) vars;
  let count = ref 0 in
  let rec go () =
    match solve s with
    | Unsat -> ()
    | Sat ->
      incr count;
      let m = model s in
      f m;
      let blocking =
        List.map (fun v -> Lit.make v (not m.(v))) vars
      in
      if blocking = [] then () (* single projected model *)
      else begin
        add_clause s blocking;
        go ()
      end
  in
  go ();
  !count
