(** JSON emission and parsing (RFC 8259) for the machine-readable consent
    reports and the collection-service protocol. Only what the PET needs;
    strings are escaped on emission, and parse errors report the exact
    line/column/offset of the offending byte. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val pp : t Fmt.t

val parse : string -> (t, string) result
(** Parse a complete JSON document. Integral numbers without a fraction
    or exponent become [Int] (falling back to [Float] past the native
    range); [\u] escapes are decoded to UTF-8, including surrogate
    pairs. The error string carries the 1-based line and column plus the
    0-based byte offset, e.g.
    ["line 1, column 9 (offset 8): expected ',' or '}' in object"].
    Nesting beyond 512 levels is rejected rather than risking a stack
    overflow on hostile input. *)

val parse_exn : string -> t
(** @raise Invalid_argument with the {!parse} error message. *)

val member : string -> t -> t option
(** [member name j] is the field [name] of an [Obj], else [None]. *)

val string_opt : t -> string option
val int_opt : t -> int option
