lib/valuation/total.mli: Fmt Universe
