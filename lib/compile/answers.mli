(** The fully tabulated MAS answer table: Algorithm 1 (Chain mode)
    re-derived at the bitmask level, one entry per consistent total
    valuation, built once at publish time.

    This is an independent reimplementation of
    [Pet_minimize.Algorithm1.mas_of ~mode:Chain] over {!Code}'s
    compiled words: candidates are ORs of satisfied-conjunction masks,
    forward chaining is mask extension, accuracy is one {!Code.scan},
    and minimality is subset testing on domain words. The property
    suite checks it valuation-by-valuation against [Algorithm1] and
    [Algorithm1.is_minimal] — agreement here is what licenses the
    compiled fast path to answer [get_report] from a table
    (DESIGN.md §14). *)

type t

val build :
  Code.t ->
  implications:(Pet_logic.Literal.t list * Pet_logic.Literal.t list) list ->
  t
(** Tabulate every consistent valuation's MAS list. [implications] are
    the chainable constraints, as {!Pet_rules.Exposure.implications}
    reports them.
    @raise Invalid_argument when an implication mentions a variable
    outside the code's universe, or when chaining contradicts a
    valuation (the same condition [Algorithm1.chain_close] rejects). *)

val code : t -> Code.t

val mas_domains : t -> int -> int array
(** [mas_domains t v] for a consistent valuation word [v]: the domain
    masks of its minimal accurate subvaluations, in the paper's
    canonical order ({!Pet_valuation.Partial.compare_lex} of the
    restrictions of [v]). Each MAS is [Partial.of_masks ~dom
    ~bits:(v land dom)]. The empty array marks an inconsistent [v]
    (which has no MAS — [Algorithm1.mas_of] refuses it); a consistent
    valuation granting no benefit has the single empty-domain MAS
    [[|0|]]. *)

val mas_list : t -> int -> Pet_valuation.Partial.t list
(** {!mas_domains} decoded into partial valuations. *)

val granted : t -> int -> string list
(** Benefits granted to valuation word [v], in benefit-universe
    order — the benefit list every one of its MAS proves. *)
