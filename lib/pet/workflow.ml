module Engine = Pet_rules.Engine
module Atlas = Pet_minimize.Atlas
module Strategy = Pet_game.Strategy

type t = {
  engine : Engine.t;
  atlas : Atlas.t;
  profile : Pet_game.Profile.t;
  weights : (string -> float) option;
}

type grant = { form : Pet_valuation.Partial.t; benefits : string list }

let provider ?(backend = Engine.Bdd) ?(payoff = Pet_game.Payoff.Blank) exposure
    =
  Pet_obs.Span.enter "provider.create" @@ fun () ->
  let engine = Engine.create ~backend exposure in
  let atlas = Atlas.build engine in
  let profile = Strategy.compute ~payoff atlas in
  Engine.sync_obs engine;
  (* If a request trace is being captured, record what was built —
     sizes and the backend name, never form contents. *)
  Pet_obs.Trace.annotate "provider.backend"
    (Pet_obs.Trace.String (Engine.backend_name backend));
  Pet_obs.Trace.annotate "provider.players"
    (Pet_obs.Trace.Int (Atlas.player_count atlas));
  let weights =
    match payoff with Pet_game.Payoff.Weighted w -> Some w | _ -> None
  in
  { engine; atlas; profile; weights }

let engine t = t.engine
let atlas t = t.atlas
let profile t = t.profile

let report_for t v =
  match Atlas.find_player t.atlas v with
  | Some _ -> Ok (Report.build ?weights:t.weights t.atlas t.profile v)
  | None ->
    if
      not
        (Pet_rules.Exposure.satisfies_constraints
           (Engine.exposure t.engine) v)
    then Error "the filled form contradicts the form's consistency rules"
    else Error "this form grants no benefit; nothing needs to be sent"

let submit t w =
  if not (Engine.consistent t.engine w) then
    Error "submitted form is inconsistent with the rules"
  else
    match Engine.benefits t.engine w with
    | [] -> Error "submitted form proves no benefit"
    | benefits -> Ok { form = w; benefits }

let audit t { form; benefits } =
  Engine.consistent t.engine form
  && List.equal String.equal (Engine.benefits t.engine form) benefits
