  $ ../../bin/pet.exe minimize running -v 111
  $ ../../bin/pet.exe minimize running -v 100
  $ ../../bin/pet.exe inform running -v 111
  $ ../../bin/pet.exe inform running -v 011 --json
  $ ../../bin/pet.exe atlas hcov
  $ ../../bin/pet.exe graph running --figure lattice | head -5
  $ ../../bin/pet.exe minimize running -v 11
  $ ../../bin/pet.exe check /nonexistent/file.rules
  $ ../../bin/pet.exe inform hcov -v 000011100111 --weight p12=5 | grep recommended
  $ ../../bin/pet.exe inform hcov -v 000011100111 --weight nosuch=2
  $ ../../bin/pet.exe simulate running
  $ cat > parking.rules <<'RULES'
  > form resident senior disabled electric unused_marital_status
  > benefits free_parking charging_discount
  > rule free_parking := resident & (senior | disabled)
  > rule charging_discount := resident & electric
  > RULES
  $ ../../bin/pet.exe check parking.rules
  $ ../../bin/pet.exe inform parking.rules -v 11010
  $ cat > broken.rules <<'RULES'
  > form a b
  > benefits x
  > rule x := a &
  > RULES
  $ ../../bin/pet.exe check broken.rules
  $ ../../bin/pet.exe fill hcov <<'ANSWERS'
  > age = 24
  > child_welfare = no
  > broken_ties = no
  > same_roof = no
  > separate_tax = yes
  > alimony = no
  > has_child = no
  > student = yes
  > emergency_aid = yes
  > separated = yes
  > ANSWERS
  $ ../../bin/pet.exe fill hcov <<'ANSWERS'
  > age = twenty
  > ANSWERS
  $ ../../bin/pet.exe fill running <<'ANSWERS'
  > age = 28
  > unemployed = yes
  > ANSWERS
  $ cat > overcollect.rules <<'RULES'
  > form p q r
  > benefits b
  > rule b := p | (p & q)
  > RULES
  $ ../../bin/pet.exe audit overcollect.rules
  $ ../../bin/pet.exe audit hcov | tail -1
  $ ../../examples/quickstart.exe
  $ python3 -c "
  > names = ' '.join('a%d' % i for i in range(1, 26))
  > print('form ' + names)
  > print('benefits b')
  > print('rule b := a1 | (a2 & a3) | (a4 & a5 & a6)')
  > " > big.rules
  $ ../../bin/pet.exe atlas big.rules
  $ ../../bin/pet.exe audit big.rules | head -3
