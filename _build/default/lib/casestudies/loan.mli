(** A commercial case study: consumer-loan underwriting.

    The paper's introduction motivates the PET with banks and insurers
    that "ask applicants to fill in forms in order to calibrate the
    terms of loans". This scenario is not part of the paper's
    evaluation; it is included to exercise the library on a multi-benefit
    commercial rule set with several alternative proofs per benefit
    (income evidence, collateral evidence), which produces richer choice
    sets than the welfare studies. *)

val exposure : unit -> Pet_rules.Exposure.t

val predicates : (string * string) list
val benefits : (string * string) list

val freelancer : unit -> Pet_valuation.Total.t
(** A self-employed applicant with both payslip-equivalent and tax-return
    income evidence, who can therefore choose what to disclose. *)

val homeowner : unit -> Pet_valuation.Total.t
(** A salaried homeowner eligible for every product. *)

val form : unit -> Pet_pet.Form.t
(** The underwriting questionnaire: employment status, two income
    figures, debt ratio, seniority, age and term — compiled to [p1..p10]
    and then discarded. *)
