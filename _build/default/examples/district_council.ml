(* The district-council scenario with a *typed* form: applicants answer
   concrete questions (an age, a yes/no, a place); the PET compiles them
   to predicate values and immediately forgets the raw answers — "the
   exact value of age can thus be deleted" (Section 3.1).

   Run with: dune exec examples/district_council.exe *)

module Form = Pet_pet.Form
module Report = Pet_pet.Report
module Workflow = Pet_pet.Workflow

let form =
  let open Form in
  create
    ~exposure:(Pet_casestudies.Running.exposure ())
    ~questions:
      [
        { key = "age"; text = "How old are you?"; kind = Kint };
        { key = "unemployed"; text = "Are you unemployed?"; kind = Kbool };
        {
          key = "location";
          text = "Where in the district do you live?";
          kind = Kchoice [ "suburbs"; "town center" ];
        };
      ]
    ~predicates:
      [
        {
          name = "p1";
          description = "younger than 25";
          compute =
            (fun get ->
              match get "age" with Aint n -> n <= 25 | _ -> assert false);
        };
        {
          name = "p2";
          description = "unemployed";
          compute =
            (fun get ->
              match get "unemployed" with Abool b -> b | _ -> assert false);
        };
        {
          name = "p3";
          description = "lives in the suburbs";
          compute =
            (fun get ->
              match get "location" with
              | Achoice c -> c = "suburbs"
              | _ -> assert false);
        };
      ]

let provider = Workflow.provider (Form.exposure form)

let apply name answers =
  Fmt.pr "=== %s ===@." name;
  match Form.valuation form answers with
  | Error m -> Fmt.pr "rejected: %s@.@." m
  | Ok valuation -> (
    (* Only the predicate valuation survives this point. *)
    match Workflow.report_for provider valuation with
    | Error m -> Fmt.pr "%s@.@." m
    | Ok report ->
      Fmt.pr "%a@." Report.pp report;
      let choice = Report.recommended report in
      (match Workflow.submit provider choice.Report.mas with
      | Error m -> Fmt.pr "submission failed: %s@." m
      | Ok grant ->
        Fmt.pr "benefits granted: %a@."
          Fmt.(list ~sep:(any ", ") string)
          grant.Workflow.benefits);
      Fmt.pr "@.")

let () =
  (* The paper's first applicant: 28, unemployed, suburbs. Their minimum
     data set is [unemployed, suburbs] — age stays private. *)
  apply "Resident A (28, unemployed, suburbs)"
    [
      ("age", Form.Aint 28);
      ("unemployed", Form.Abool true);
      ("location", Form.Achoice "suburbs");
    ];
  (* The second applicant: 20, unemployed, suburbs. Sending just the age
     predicate would actually reveal everything (the attacker deduces
     their other answers), so the PET recommends [unemployed, suburbs]
     instead — the subtle point of Section 4.2. *)
  apply "Resident B (20, unemployed, suburbs)"
    [
      ("age", Form.Aint 20);
      ("unemployed", Form.Abool true);
      ("location", Form.Achoice "suburbs");
    ];
  (* A 40-year-old employed resident of the town center is eligible for
     nothing and sends nothing at all. *)
  apply "Resident C (40, employed, town center)"
    [
      ("age", Form.Aint 40);
      ("unemployed", Form.Abool false);
      ("location", Form.Achoice "town center");
    ];
  (* An ill-typed submission is rejected before anything is computed. *)
  apply "Resident D (malformed answers)"
    [ ("age", Form.Abool true); ("unemployed", Form.Abool false) ]
