lib/pet/report.ml: Fmt Json List Option Pet_game Pet_minimize Pet_valuation
