module Universe = Pet_valuation.Universe
module Partial = Pet_valuation.Partial

(* One chainable constraint [premises -> consequences], compiled like a
   rule conjunction: the premise fires on a candidate domain [dom] of
   valuation [v] iff [dom] covers [pmask] and [v] carries the premise
   signs; firing extends the domain by [cmask]. *)
type impl = { pmask : int; pbits : int; cmask : int; cbits : int }

type t = { code : Code.t; table : int array array }

let code t = t.code

let compile_impl xp (premises, consequences) =
  let pack ls =
    List.fold_left
      (fun (mask, bits) (l : Pet_logic.Literal.t) ->
        let i = Universe.index xp l.var in
        (mask lor (1 lsl i), if l.sign then bits lor (1 lsl i) else bits))
      (0, 0) ls
  in
  let pmask, pbits = pack premises in
  let cmask, cbits = pack consequences in
  { pmask; pbits; cmask; cbits }

(* [Algorithm1.chain_close] on domain words: the fixpoint is unique, so
   folding the implications to saturation reproduces it whatever order
   the steps fire in. *)
let chain_close impls v dom0 =
  let dom = ref dom0 in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun { pmask; pbits; cmask; cbits } ->
        if !dom land pmask = pmask && v land pmask = pbits then begin
          if v land cmask <> cbits then
            invalid_arg "Pet_compile.Answers: contradictory chaining";
          let dom' = !dom lor cmask in
          if dom' <> !dom then begin
            dom := dom';
            changed := true
          end
        end)
      impls
  done;
  !dom

(* Algorithm 1 lines 5-13 on words: the Cartesian product, across the
   granted benefits, of the masks of the conjunctions [v] satisfies. *)
let raw_candidates code v granted =
  let acc = ref [ 0 ] in
  let nb = Code.benefit_count code in
  for i = 0 to nb - 1 do
    if granted land (1 lsl i) <> 0 then begin
      let sat =
        Array.to_list (Code.conjunctions code i)
        |> List.filter_map (fun (c : Code.conj) ->
               if Code.conj_holds c v then Some c.Code.mask else None)
      in
      acc :=
        List.concat_map (fun dom -> List.map (fun m -> dom lor m) sat) !acc
    end
  done;
  List.sort_uniq Int.compare !acc

let keep_minimal doms =
  let doms = List.sort_uniq Int.compare doms in
  List.filter
    (fun dom ->
      not (List.exists (fun dom' -> dom' <> dom && dom' land dom = dom') doms))
    doms

let mas_of code impls v =
  let granted = Code.benefit_bits code v in
  if granted = 0 then [| 0 |]
  else
    let xp = Code.universe code in
    let selected =
      raw_candidates code v granted
      |> List.map (chain_close impls v)
      |> List.filter (fun dom ->
             (Code.scan code ~dom ~bits:(v land dom)).Code.benefit_and
             = granted)
      |> keep_minimal
    in
    selected
    |> List.map (fun dom -> (Partial.of_masks xp ~dom ~bits:(v land dom), dom))
    |> List.sort (fun (a, _) (b, _) -> Partial.compare_lex a b)
    |> List.map snd |> Array.of_list

let build code ~implications =
  let xp = Code.universe code in
  let impls = Array.of_list (List.map (compile_impl xp) implications) in
  let size = 1 lsl Code.predicates code in
  let table =
    Array.init size (fun v ->
        if Code.consistent_bits code v then mas_of code impls v else [||])
  in
  { code; table }

let mas_domains t v = t.table.(v)

let mas_list t v =
  let xp = Code.universe t.code in
  Array.to_list t.table.(v)
  |> List.map (fun dom -> Partial.of_masks xp ~dom ~bits:(v land dom))

let granted t v =
  let mask = Code.benefit_bits t.code v in
  let rec go i acc =
    if i < 0 then acc
    else
      go (i - 1)
        (if mask land (1 lsl i) <> 0 then Code.benefit_name t.code i :: acc
         else acc)
  in
  go (Code.benefit_count t.code - 1) []
