module Universe = Pet_valuation.Universe
module Total = Pet_valuation.Total

let rule =
  "rule b1 := (p1 & p2) | (p3 & p4) | (p5 & p6 & p7 & !p8) \
   | (p5 & !p6 & p9) | (p6 & p10 & p11) | p12"

let printed_constraints =
  [
    "constraint p1 -> !p3 & !p5";
    "constraint p3 -> !p1 & !p5";
    "constraint p5 -> !p1 & !p3";
    "constraint p12 -> !p1";
  ]

(* The consistency rule Table 1 omits but Table 3 relies on (see the
   interface documentation and EXPERIMENTS.md). *)
let calibration_constraints = [ "constraint p10 -> !p1 & !p3" ]

let header =
  "form p1 p2 p3 p4 p5 p6 p7 p8 p9 p10 p11 p12\nbenefits b1\n"

let spec_of constraints =
  header ^ rule ^ "\n" ^ String.concat "\n" constraints ^ "\n"

let exposure () =
  Pet_rules.Spec.parse_exn
    (spec_of (printed_constraints @ calibration_constraints))

let exposure_printed () = Pet_rules.Spec.parse_exn (spec_of printed_constraints)

let predicates =
  [
    ("p1", "age below 16");
    ("p2", "child welfare");
    ("p3", "minor over 16");
    ("p4", "broken family tie");
    ("p5", "adult below 25");
    ("p6", "not same roof");
    ("p7", "separate tax return");
    ("p8", "receive alimony");
    ("p9", "with child");
    ("p10", "student");
    ("p11", "emergency aid");
    ("p12", "separated");
  ]

let universe = lazy (Universe.of_names (List.map fst predicates))

let alice () = Total.of_string (Lazy.force universe) "000011100111"
let bob () = Total.of_string (Lazy.force universe) "000011100000"

let table3_mas =
  [
    "0__________1";
    "0_0__1___11_";
    "0_0_10__1___";
    "0_0_1110____";
    "0_110_______";
    "110_0_______";
  ]

module Form = Pet_pet.Form

let form () =
  let bool_answer get key =
    match get key with
    | Form.Abool b -> b
    | Form.Aint _ | Form.Achoice _ -> assert false
  in
  let age get =
    match get "age" with
    | Form.Aint n -> n
    | Form.Abool _ | Form.Achoice _ -> assert false
  in
  let yes_no key text = { Form.key; text; kind = Form.Kbool } in
  let direct name key description =
    { Form.name; description; compute = (fun get -> bool_answer get key) }
  in
  Form.create ~exposure:(exposure ())
    ~questions:
      [
        { Form.key = "age"; text = "How old are you?"; kind = Form.Kint };
        yes_no "child_welfare"
          "Are you under the jurisdiction of the child welfare system?";
        yes_no "broken_ties" "Have you broken off your family ties?";
        yes_no "same_roof" "Do you live under the same roof as your parents?";
        yes_no "separate_tax" "Do you file a separate tax return?";
        yes_no "alimony" "Do you receive alimony?";
        yes_no "has_child" "Do you have a child?";
        yes_no "student" "Are you a student?";
        yes_no "emergency_aid" "Do you receive the annual emergency aid?";
        yes_no "separated" "Are you separated from your spouse?";
      ]
    ~predicates:
      [
        {
          Form.name = "p1";
          description = "age below 16";
          compute = (fun get -> age get < 16);
        };
        direct "p2" "child_welfare" "child welfare";
        {
          Form.name = "p3";
          description = "minor over 16";
          compute = (fun get -> age get >= 16 && age get < 18);
        };
        direct "p4" "broken_ties" "broken family tie";
        {
          Form.name = "p5";
          description = "adult below 25";
          compute = (fun get -> age get >= 18 && age get < 25);
        };
        {
          Form.name = "p6";
          description = "not same roof";
          compute = (fun get -> not (bool_answer get "same_roof"));
        };
        direct "p7" "separate_tax" "separate tax return";
        direct "p8" "alimony" "receive alimony";
        direct "p9" "has_child" "with child";
        direct "p10" "student" "student";
        direct "p11" "emergency_aid" "emergency aid";
        direct "p12" "separated" "separated";
      ]
