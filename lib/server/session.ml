module Total = Pet_valuation.Total
module Partial = Pet_valuation.Partial

type state = Created | Reported | Chosen | Submitted

let state_name = function
  | Created -> "created"
  | Reported -> "reported"
  | Chosen -> "chosen"
  | Submitted -> "submitted"

type t = {
  id : string;
  digest : string;
  tenant : string option;
      (* the tenant this session was opened under, if any; the digest
         pins the tenant *version* it resolved, so a hot rule swap
         never changes this session's answers *)
  created_at : float;
  mutable last_active : float;
  mutable state : state;
  mutable valuation : Total.t option;
  mutable options : (Partial.t * string list) list;
  mutable chosen : (Partial.t * string list) option;
  mutable grant_id : int option;
}

type store = {
  ttl : float;
  owns : string -> bool;
      (* shard ownership predicate over session ids: {!create} only
         hands out ids this store owns, so stores partitioned by a hash
         of the id (the sharded TCP server) never collide *)
  sessions : (string, t) Hashtbl.t;
  mutable next_id : int;
  mutable created : int;
  mutable expired : int;
  mutable cursor : string list;
      (* ids still to visit in the current incremental sweep round;
         refilled from the live table when exhausted *)
  mutable on_expire : t -> unit;
      (* fires as a session is removed by expiry — the service releases
         the session's tenant quota slot here *)
}

type counters = { active : int; created : int; expired : int }

let create_store ?(ttl = 3600.) ?(owns = fun _ -> true) () =
  {
    ttl;
    owns;
    sessions = Hashtbl.create 64;
    next_id = 0;
    created = 0;
    expired = 0;
    cursor = [];
    on_expire = ignore;
  }

let set_on_expire store f = store.on_expire <- f

let fresh store ~id ~digest ?tenant ~now () =
  let session =
    {
      id;
      digest;
      tenant;
      created_at = now;
      last_active = now;
      state = Created;
      valuation = None;
      options = [];
      chosen = None;
      grant_id = None;
    }
  in
  Hashtbl.replace store.sessions id session;
  store.created <- store.created + 1;
  session

let create store ~digest ?tenant ~now () =
  (* Walk the shared "s<n>" sequence, skipping ids another shard owns.
     With the default predicate the first candidate always wins. *)
  let rec pick () =
    let id = Printf.sprintf "s%d" store.next_id in
    store.next_id <- store.next_id + 1;
    if store.owns id then id else pick ()
  in
  fresh store ~id:(pick ()) ~digest ?tenant ~now ()

let restore store ~id ~digest ?tenant ~now () =
  (* Recovered ids keep their original names; the sequence continues
     past the highest numeric id seen so far, so post-restart sessions
     never collide with replayed ones. *)
  (match
     if String.length id > 1 && id.[0] = 's' then
       int_of_string_opt (String.sub id 1 (String.length id - 1))
     else None
   with
  | Some n when n >= store.next_id -> store.next_id <- n + 1
  | _ -> ());
  fresh store ~id ~digest ?tenant ~now ()

let is_expired store session ~now =
  store.ttl > 0. && now -. session.last_active > store.ttl

let expire store session =
  Hashtbl.remove store.sessions session.id;
  store.expired <- store.expired + 1;
  store.on_expire session

(* Removal outside the TTL machinery (consent revocation): fires the
   same [on_expire] hook — the tenant quota slot must be released
   exactly once however the session leaves — but does not count as an
   expiry. A later sweep finds the table slot empty and cannot fire the
   hook a second time. *)
let purge store session =
  if Hashtbl.mem store.sessions session.id then begin
    Hashtbl.remove store.sessions session.id;
    store.on_expire session
  end

let peek store id = Hashtbl.find_opt store.sessions id

let find store id ~now =
  match Hashtbl.find_opt store.sessions id with
  | None -> Error `Unknown
  | Some session ->
    if is_expired store session ~now then begin
      expire store session;
      Error `Expired
    end
    else Ok session

let touch session ~now = session.last_active <- now

let sweep store ~now =
  let stale =
    Hashtbl.fold
      (fun _ session acc ->
        if is_expired store session ~now then session :: acc else acc)
      store.sessions []
  in
  List.iter (expire store) stale;
  List.length stale

(* Incremental expiry: visit at most [budget] sessions per call, resuming
   where the last call stopped. A full pass over [n] live sessions
   completes every [n / budget] calls, so abandoned sessions — ones no
   [find] will ever touch again — are reclaimed in amortized O(budget)
   per request instead of O(n), and [counters.active] stays bounded
   under churn. *)
let sweep_step ?(budget = 32) store ~now =
  if store.ttl <= 0. then 0
  else begin
    if store.cursor = [] then
      store.cursor <-
        Hashtbl.fold (fun id _ acc -> id :: acc) store.sessions [];
    let swept = ref 0 in
    let rec go remaining =
      if remaining > 0 then
        match store.cursor with
        | [] -> ()
        | id :: rest ->
          store.cursor <- rest;
          (match Hashtbl.find_opt store.sessions id with
          | Some session when is_expired store session ~now ->
            expire store session;
            incr swept
          | _ -> ());
          go (remaining - 1)
    in
    go budget;
    !swept
  end

let all store =
  Hashtbl.fold (fun _ session acc -> session :: acc) store.sessions []

let counters store =
  {
    active = Hashtbl.length store.sessions;
    created = store.created;
    expired = store.expired;
  }
