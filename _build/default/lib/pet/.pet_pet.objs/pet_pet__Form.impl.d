lib/pet/form.ml: List Pet_rules Pet_valuation String
