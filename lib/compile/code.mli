(** Publish-time compilation of a form's rule set into branch-free
    bitmask tests over the bit-packed valuations of [lib/valuation].

    A decision rule's DNF conjunction [l1 & ... & lk] over the form
    universe compiles to a pair of machine words: [mask] selects the
    mentioned predicates, [bits] holds their required signs. A total
    valuation [v] (as {!Pet_valuation.Total.bits}) satisfies the
    conjunction iff [(v land mask) = bits] — one AND and one compare,
    no lists, no hashing, no string lookups.

    For forms up to {!max_tabulated_predicates} predicates the
    constructor additionally tabulates, for every one of the [2^n]
    total valuations, whether it satisfies the consistency constraints
    and which benefits it triggers. Every proof-relation question
    ([w, R |= _]) then reduces to a walk over the consistent
    completions of [w] — a submask enumeration reading two flat
    arrays. This is the compiled engine backend; the brute/SAT/BDD
    backends differentially test it (DESIGN.md §14). *)

type conj = { mask : int; bits : int }
(** One compiled conjunction: [v] satisfies it iff
    [(v land mask) = bits]. The empty conjunction is
    [{mask = 0; bits = 0}] and holds everywhere. *)

type t

val max_tabulated_predicates : int
(** [16]: the largest form size whose [2^n] valuation tables are
    tabulated at publish time (64K entries — microseconds to build,
    kilobytes to hold). Callers with bigger forms must fall back to a
    symbolic backend; {!create} refuses them. *)

val create :
  xp:Pet_valuation.Universe.t ->
  benefits:string list ->
  rule:(string -> Pet_logic.Dnf.t) ->
  constraints:Pet_logic.Formula.t list ->
  t
(** Compile the rule set: [benefits] in benefit-universe order, [rule]
    mapping each benefit to its decision rule's DNF (over [xp] only),
    [constraints] the [R_ADD] formulas (over [xp] only).
    @raise Invalid_argument when [xp] exceeds
    {!max_tabulated_predicates} or a formula mentions a variable
    outside [xp]. *)

val universe : t -> Pet_valuation.Universe.t
val predicates : t -> int
(** Form universe size [n]; valuation words use bits [0..n-1]. *)

val benefit_count : t -> int
val benefit_name : t -> int -> string
val full_benefit_mask : t -> int
(** [(1 lsl benefit_count) - 1]. *)

val conjunctions : t -> int -> conj array
(** The compiled DNF of benefit [i]'s rule. *)

val conj_holds : conj -> int -> bool
(** [conj_holds c v] is [(v land c.mask) = c.bits]. *)

val consistent_bits : t -> int -> bool
(** Table lookup: does total valuation [v] satisfy the constraints? *)

val benefit_bits : t -> int -> int
(** Table lookup: the bitset of benefits triggered by total valuation
    [v] (bit [i] = benefit [i] in benefit-universe order). Ignores the
    constraints, like {!Pet_rules.Exposure.benefits_of_assignment}. *)

type scan = {
  any : bool;  (** at least one consistent completion exists *)
  and_bits : int;  (** AND of all consistent completions ([2^n - 1] if none) *)
  or_bits : int;  (** OR of all consistent completions ([0] if none) *)
  benefit_and : int;
      (** AND of their benefit bitsets ({!full_benefit_mask} if none) *)
}

val scan : t -> dom:int -> bits:int -> scan
(** One pass over the consistent completions of the partial valuation
    [(dom, bits)]: enough to answer consistency, every benefit
    entailment and every literal deduction at once. The vacuous
    encodings (no consistent completion) make entailment vacuously
    true, matching the brute-force reference semantics. *)

val consistent : t -> dom:int -> bits:int -> bool
(** Early-exit: stops at the first consistent completion. *)

val entails_benefit : t -> dom:int -> bits:int -> int -> bool
(** [entails_benefit t ~dom ~bits i]: do all consistent completions
    trigger benefit [i]? Early-exits on the first counterexample. *)

val entails_literal : t -> dom:int -> bits:int -> int -> bool -> bool
(** [entails_literal t ~dom ~bits i value]: do all consistent
    completions give predicate [i] the value [value]? *)
