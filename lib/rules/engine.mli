(** The proof relation of Notation 3.10 — [w, R |= F] — with four
    interchangeable backends:

    - [Brute]: reference semantics by enumerating every completion of the
      partial valuation (exponential in the number of blanks; the oracle
      the others are tested against);
    - [Sat]: one incremental CDCL query per question — [w, R |= x] iff
      [R /\ w /\ ~x] is unsatisfiable (the default);
    - [Bdd]: compile [R] once into a BDD and answer each question by
      cofactoring — the right choice for bulk workloads such as building
      the full MAS atlas;
    - [Compiled]: flatten the rules into branch-free bitmask tests and
      tabulate the [2^n] valuation answers at construction time
      ({!Pet_compile.Code}) — the serving fast path. Above
      {!Pet_compile.Code.max_tabulated_predicates} predicates it keeps
      the name but falls back to the BDD representation.

    All four agree on every input; the test suite checks this
    exhaustively on small universes and randomly on larger ones. *)

type backend = Brute | Sat | Bdd | Compiled

val all_backends : backend list
(** [[Brute; Sat; Bdd; Compiled]] — the order the differential harness
    reports them in. *)

val backend_name : backend -> string
(** ["brute"], ["sat"], ["bdd"] or ["compiled"]. *)

type t

val create : ?backend:backend -> Exposure.t -> t
(** Default backend: [Sat]. *)

val backend : t -> backend
val exposure : t -> Exposure.t

val sync_obs : t -> unit
(** Push this engine's backend statistics into the global
    {!Pet_obs.Metrics} registry (currently the BDD manager's node/cache
    gauges; a no-op for the other backends — SAT pushes its own deltas
    from [Solver.solve]). Call after a batch of queries, e.g. when the
    service answers a [metrics] request. *)

val consistent : t -> Pet_valuation.Partial.t -> bool
(** Whether [R /\ w] is satisfiable, i.e. the partially filled form can
    belong to a realistic applicant. *)

val entails_benefit : t -> Pet_valuation.Partial.t -> string -> bool
(** [entails_benefit t w b] is [w, R |= b]: every completed processed form
    compatible with [w] grants [b]. Vacuously true when [w] is
    inconsistent with [R].
    @raise Not_found for unknown benefit names. *)

val benefits : t -> Pet_valuation.Partial.t -> string list
(** Benefits proven by [w] under [R], in benefit-universe order. *)

val benefits_of_total : t -> Pet_valuation.Total.t -> string list
(** Fast path for fully filled forms: evaluate the rule DNFs directly. For
    valuations satisfying [R_ADD] this agrees with {!benefits}. *)

val entails_literal : t -> Pet_valuation.Partial.t -> string -> bool -> bool
(** [entails_literal t w p value]: does [R /\ w] force form predicate [p]
    to [value]?
    @raise Not_found for unknown predicate names. *)

val deduced_literals :
  t -> Pet_valuation.Partial.t -> (string * bool) list
(** Form predicates outside [w]'s domain whose value is nevertheless forced
    by [R /\ w] — what a reasoning attacker learns from the rule set alone
    (before even considering other players' strategies). In universe
    order. *)

val pp_backend : backend Fmt.t
