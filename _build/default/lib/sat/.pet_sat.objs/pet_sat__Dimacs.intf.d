lib/sat/dimacs.mli: Fmt Lit Solver
