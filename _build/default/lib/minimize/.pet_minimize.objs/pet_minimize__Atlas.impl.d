lib/minimize/atlas.ml: Algorithm1 Array Fmt Hashtbl Int List Map Option Pet_rules Pet_valuation
