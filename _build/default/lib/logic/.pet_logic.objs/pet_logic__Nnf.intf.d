lib/logic/nnf.mli: Formula
