(** Rolling-window service-level objectives (SLOs) and burn rates.

    A tracker holds one series per key — by convention bare protocol
    method names plus ["tenant:NAME"] keys — each a ring of
    time-aligned slices over the objective's window (latency counts in
    the same log-spaced buckets as {!Metrics} histograms, plus
    request/error totals). {!record} is hot-path cheap (one mutex, one
    slice update); stale slices age out by alignment, no sweeper.

    Burn rates use the error-budget convention: a [p99_s] target grants
    a 1% budget of requests over target, [max_error_ratio] grants
    itself; burn = consumption / budget, capped at [1e6], and a burn
    rate [>= 1] means the budget is being consumed faster than it
    accrues ([breached]). *)

type objective = {
  p99_s : float;  (** latency target: 99% of requests at or under this *)
  max_error_ratio : float;  (** allowed error fraction over the window *)
  window_s : float;  (** rolling window length, seconds *)
}

val default_objective : objective
(** 50 ms p99, 1% errors, 60 s window. *)

type t

val create : ?objective:objective -> unit -> t
(** A tracker whose unseen keys start with [objective]
    (default {!default_objective}). *)

val set_objective : t -> string -> objective -> unit
val objective : t -> string -> objective

val record : t -> string -> now:float -> latency:float -> error:bool -> unit
(** Record one request outcome for [key] at time [now] (any monotone
    clock — the deterministic logical clock works; slices align to
    [window_s / 12] multiples of it). *)

type report = {
  key : string;
  window_s : float;
  requests : int;  (** requests inside the window *)
  errors : int;
  error_ratio : float;
  p99_s : float;  (** windowed p99 (bucket upper bound, capped at max) *)
  p99_target_s : float;
  over_target : int;  (** observations above the target, bucket-granular *)
  latency_burn : float;
  error_burn : float;
  breached : bool;  (** either burn rate reached 1 *)
}

val report : t -> string -> now:float -> report option
val reports : t -> now:float -> report list
(** All keys, sorted, evaluated at [now]. *)

val keys : t -> string list

val sync : t -> now:float -> unit
(** Mirror every report into gauges labeled [{slo="KEY"}]
    ([pet_slo_window_requests], [pet_slo_error_ratio],
    [pet_slo_p99_seconds], [pet_slo_error_burn], [pet_slo_latency_burn],
    [pet_slo_breached]) so metrics/Prometheus/watch/flight surfaces see
    the SLO state as ordinary instruments. *)

val reset : t -> unit
(** Drop every series (objectives for unseen keys revert to the
    tracker default). *)
