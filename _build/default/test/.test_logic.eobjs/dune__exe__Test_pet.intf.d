test/test_pet.mli:
