module F = Formula

let and_nnf a b =
  match a, b with
  | F.True, f | f, F.True -> f
  | F.False, _ | _, F.False -> F.False
  | _ -> F.And (a, b)

let or_nnf a b =
  match a, b with
  | F.False, f | f, F.False -> f
  | F.True, _ | _, F.True -> F.True
  | _ -> F.Or (a, b)

let rec pos = function
  | F.True -> F.True
  | F.False -> F.False
  | F.Var x -> F.Var x
  | F.Not f -> negf f
  | F.And (a, b) -> and_nnf (pos a) (pos b)
  | F.Or (a, b) -> or_nnf (pos a) (pos b)
  | F.Implies (a, b) -> or_nnf (negf a) (pos b)
  | F.Iff (a, b) -> and_nnf (or_nnf (negf a) (pos b)) (or_nnf (negf b) (pos a))

and negf = function
  | F.True -> F.False
  | F.False -> F.True
  | F.Var x -> F.Not (F.Var x)
  | F.Not f -> pos f
  | F.And (a, b) -> or_nnf (negf a) (negf b)
  | F.Or (a, b) -> and_nnf (negf a) (negf b)
  | F.Implies (a, b) -> and_nnf (pos a) (negf b)
  | F.Iff (a, b) -> or_nnf (and_nnf (pos a) (negf b)) (and_nnf (negf a) (pos b))

let of_formula = pos

let rec is_nnf = function
  | F.True | F.False | F.Var _ | F.Not (F.Var _) -> true
  | F.Not _ | F.Implies _ | F.Iff _ -> false
  | F.And (a, b) | F.Or (a, b) -> is_nnf a && is_nnf b
