lib/minimize/symbolic.mli: Algorithm1 Fmt Pet_rules Pet_valuation
