module Atlas = Pet_minimize.Atlas
module Algorithm1 = Pet_minimize.Algorithm1
module Universe = Pet_valuation.Universe
module Total = Pet_valuation.Total
module Partial = Pet_valuation.Partial

type kind = Blank | Sm | Weighted of (string -> float)

(* Bitmask of the blank positions on which at least two crowd members
   disagree: positions where both a 0 and a 1 occur among the crowd. *)
let disagreement_mask atlas ~mas ~crowd =
  let w = (Atlas.mas atlas mas).Algorithm1.mas in
  let universe = Partial.universe w in
  let full = (1 lsl Universe.size universe) - 1 in
  let blank_mask = lnot (Partial.domain_mask w) land full in
  let ones, zeros =
    List.fold_left
      (fun (ones, zeros) i ->
        let bits = Total.bits (Atlas.player atlas i) in
        (ones lor bits, zeros lor (lnot bits land full)))
      (0, 0) crowd
  in
  ones land zeros land blank_mask

let blanks_of_mask universe mask =
  List.filteri (fun i _ -> (mask lsr i) land 1 = 1) (Universe.names universe)

let undeducible_blanks atlas ~mas ~crowd =
  let w = (Atlas.mas atlas mas).Algorithm1.mas in
  blanks_of_mask (Partial.universe w) (disagreement_mask atlas ~mas ~crowd)

let deduced_blanks atlas ~mas ~crowd =
  match crowd with
  | [] -> []
  | first :: _ ->
    let w = (Atlas.mas atlas mas).Algorithm1.mas in
    let universe = Partial.universe w in
    let full = (1 lsl Universe.size universe) - 1 in
    let blank_mask = lnot (Partial.domain_mask w) land full in
    let agree = blank_mask land lnot (disagreement_mask atlas ~mas ~crowd) in
    let bits = Total.bits (Atlas.player atlas first) in
    List.filteri (fun i _ -> (agree lsr i) land 1 = 1) (Universe.names universe)
    |> List.map (fun name ->
           let i = Universe.index universe name in
           (name, (bits lsr i) land 1 = 1))

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
  go x 0

let value atlas kind ~mas ~crowd =
  match kind with
  | Sm -> float_of_int (max 0 (List.length crowd - 1))
  | Blank -> float_of_int (popcount (disagreement_mask atlas ~mas ~crowd))
  | Weighted weight ->
    List.fold_left
      (fun acc name -> acc +. weight name)
      0.
      (undeducible_blanks atlas ~mas ~crowd)

let of_profile profile kind ~player =
  let atlas = Profile.atlas profile in
  let mas = Profile.move_of profile player in
  value atlas kind ~mas ~crowd:(Profile.crowd profile mas)

let pp_kind ppf = function
  | Blank -> Fmt.string ppf "PO_blank"
  | Sm -> Fmt.string ppf "PO_SM"
  | Weighted _ -> Fmt.string ppf "PO_blank(weighted)"
