module Ledger = Pet_pet.Ledger

type t = {
  m : Mutex.t;
  texts : (string, string) Hashtbl.t;
  ledgers : (string, Ledger.t) Hashtbl.t;
  consents : Consent.t;
      (* consent lifecycle state is process-wide like the ledgers: a
         revocation must reach the grant whichever shard recorded it *)
}

let create () =
  {
    m = Mutex.create ();
    texts = Hashtbl.create 8;
    ledgers = Hashtbl.create 8;
    consents = Consent.create ();
  }

let consents t = t.consents

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let remember_text t ~digest ~text =
  locked t @@ fun () ->
  if Hashtbl.mem t.texts digest then false
  else begin
    Hashtbl.replace t.texts digest text;
    true
  end

let find_text t digest = locked t (fun () -> Hashtbl.find_opt t.texts digest)

let texts t =
  locked t (fun () -> Hashtbl.fold (fun d x acc -> (d, x) :: acc) t.texts [])

let with_ledger t digest f =
  locked t @@ fun () ->
  let ledger =
    match Hashtbl.find_opt t.ledgers digest with
    | Some ledger -> ledger
    | None ->
      let ledger = Ledger.create () in
      Hashtbl.add t.ledgers digest ledger;
      ledger
  in
  f ledger

let ledger_count t = locked t (fun () -> Hashtbl.length t.ledgers)

let fold_ledgers t f init =
  locked t (fun () -> Hashtbl.fold f t.ledgers init)
