lib/rules/generate.ml: Exposure List Pet_logic Pet_valuation Printf Random Rule
