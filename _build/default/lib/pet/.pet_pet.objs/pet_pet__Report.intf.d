lib/pet/report.mli: Fmt Json Pet_game Pet_minimize Pet_valuation
