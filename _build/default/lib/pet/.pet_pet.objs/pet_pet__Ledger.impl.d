lib/pet/ledger.ml: Int Json List Pet_valuation Workflow
