lib/game/strategy.ml: Array List Option Payoff Pet_minimize Pet_rules Pet_valuation Profile
