module Partial = Pet_valuation.Partial

type entry = { id : int; mutable grant : Workflow.grant option }

type t = { mutable entries : entry list (* newest first *); mutable next : int }

let create () = { entries = []; next = 0 }

let record_entry t grant =
  let id = t.next in
  t.next <- id + 1;
  t.entries <- { id; grant } :: t.entries;
  id

let record t grant = record_entry t (Some grant)
let record_tombstone t = record_entry t None

let entries t = List.rev t.entries

let find t id =
  List.find_map
    (fun e -> if e.id = id then e.grant else None)
    t.entries

let revoke t id =
  match List.find_opt (fun e -> e.id = id) t.entries with
  | None -> `Unknown
  | Some { grant = None; _ } -> `Already
  | Some e ->
    (* The tombstone: the minimized form is erased in place — the id
       keeps its slot so the archive ordering (and every later grant's
       id) is untouched, but the subvaluation itself is gone. *)
    e.grant <- None;
    `Revoked

let size t = t.next

let tombstones t =
  List.fold_left
    (fun acc e -> if e.grant = None then acc + 1 else acc)
    0 t.entries

let stored_values t =
  List.fold_left
    (fun acc e ->
      match e.grant with
      | Some grant -> acc + Partial.domain_size grant.Workflow.form
      | None -> acc)
    0 t.entries

let audit t provider =
  List.filter_map
    (fun e ->
      match e.grant with
      | None -> None (* tombstoned: nothing stored, nothing to re-verify *)
      | Some grant -> if Workflow.audit provider grant then None else Some e.id)
    t.entries
  |> List.sort Int.compare

let to_json t =
  Json.List
    (List.map
       (fun e ->
         match e.grant with
         | None ->
           Json.Obj [ ("id", Json.Int e.id); ("revoked", Json.Bool true) ]
         | Some grant ->
           Json.Obj
             [
               ("id", Json.Int e.id);
               ("form", Json.String (Partial.to_string grant.Workflow.form));
               ( "benefits",
                 Json.List
                   (List.map (fun b -> Json.String b) grant.Workflow.benefits)
               );
             ])
       (entries t))
