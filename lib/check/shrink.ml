module Universe = Pet_valuation.Universe
module Exposure = Pet_rules.Exposure
module Rule = Pet_rules.Rule
module Spec = Pet_rules.Spec
module Dnf = Pet_logic.Dnf
module F = Pet_logic.Formula

(* Rebuilding a mutilated problem can violate Exposure's invariants
   (an empty universe, a constraint over a dropped predicate); such
   candidates are simply not offered. *)
let rebuild ~xp ~xb ~rules ~constraints =
  match Exposure.create ~xp ~xb ~rules ~constraints () with
  | e -> Some e
  | exception Invalid_argument _ -> None

let remove_nth n l = List.filteri (fun i _ -> i <> n) l

(* One shrinking step's candidates, most aggressive first: drop a whole
   rule (with its benefit), drop a constraint, drop one conjunction of a
   rule, drop one literal of a conjunction, then drop every predicate no
   rule or constraint mentions any more. *)
let candidates e =
  let xp = Exposure.xp e in
  let xb = Exposure.xb e in
  let rules = Exposure.rules e in
  let constraints = Exposure.constraints e in
  let drop_rule =
    if List.length rules <= 1 then []
    else
      List.mapi
        (fun i (r : Rule.t) ->
          let xb' =
            Universe.of_names
              (List.filter (fun b -> b <> r.benefit) (Universe.names xb))
          in
          rebuild ~xp ~xb:xb' ~rules:(remove_nth i rules) ~constraints)
        rules
  in
  let drop_constraint =
    List.mapi
      (fun i _ -> rebuild ~xp ~xb ~rules ~constraints:(remove_nth i constraints))
      constraints
  in
  let drop_conjunction =
    List.concat
      (List.mapi
         (fun i (r : Rule.t) ->
           let conjs = Rule.conjunctions r in
           if List.length conjs <= 1 then []
           else
             List.mapi
               (fun j _ ->
                 let r' = Rule.make ~benefit:r.benefit (remove_nth j conjs) in
                 rebuild ~xp ~xb
                   ~rules:(List.mapi (fun k r0 -> if k = i then r' else r0) rules)
                   ~constraints)
               conjs)
         rules)
  in
  let drop_literal =
    List.concat
      (List.mapi
         (fun i (r : Rule.t) ->
           let conjs = Rule.conjunctions r in
           List.concat
             (List.mapi
                (fun j c ->
                  if List.length c <= 1 then []
                  else
                    List.mapi
                      (fun k _ ->
                        let conjs' =
                          List.mapi
                            (fun j' c' -> if j' = j then remove_nth k c else c')
                            conjs
                        in
                        let r' = Rule.make ~benefit:r.benefit conjs' in
                        rebuild ~xp ~xb
                          ~rules:
                            (List.mapi
                               (fun k' r0 -> if k' = i then r' else r0)
                               rules)
                          ~constraints)
                      c)
                conjs))
         rules)
  in
  let narrow_universe =
    let used =
      List.concat_map (fun (r : Rule.t) -> Dnf.vars r.dnf) rules
      @ List.concat_map F.vars constraints
    in
    let kept = List.filter (fun p -> List.mem p used) (Universe.names xp) in
    if List.length kept = Universe.size xp || kept = [] then []
    else [ rebuild ~xp:(Universe.of_names kept) ~xb ~rules ~constraints ]
  in
  List.filter_map Fun.id
    (drop_rule @ drop_constraint @ drop_conjunction @ drop_literal
   @ narrow_universe)

let shrink ~still_fails e =
  (* A candidate that crashes the predicate itself is not adopted: the
     caller's predicate owns the definition of "the same failure". *)
  let fails e = match still_fails e with b -> b | exception _ -> false in
  let rec go e =
    match List.find_opt fails (candidates e) with
    | Some smaller -> go smaller
    | None -> e
  in
  go e

let to_dsl = Spec.to_string
