module Total = Pet_valuation.Total
module Partial = Pet_valuation.Partial
module Engine = Pet_rules.Engine
module Exposure = Pet_rules.Exposure

type t = {
  engine : Engine.t;
  mas : Algorithm1.choice array; (* lexicographic order *)
  players : Total.t array; (* increasing bit order *)
  choices_of_player : int list array; (* ascending MAS indices *)
  players_of_mas : int list array; (* ascending player indices *)
}

module Pmap = Map.Make (struct
  type t = Partial.t

  let compare = Partial.compare
end)

module Tmap = Map.Make (Total)

let max_enumerable_predicates = 24

let obs_mas_gauge = Pet_obs.Metrics.gauge "pet_atlas_mas"
let obs_players_gauge = Pet_obs.Metrics.gauge "pet_atlas_players"

let build ?(mode = Algorithm1.Chain) engine =
  Pet_obs.Span.enter "atlas.build" @@ fun () ->
  let exposure = Engine.exposure engine in
  if
    Pet_valuation.Universe.size (Exposure.xp exposure)
    > max_enumerable_predicates
  then
    invalid_arg
      "Atlas.build: form too large to enumerate; use Symbolic.build for \
       the global statistics";
  (* Collect the deduplicated MAS set over all realistic eligible
     valuations. *)
  let mas_set = ref Pmap.empty in
  List.iter
    (fun v ->
      List.iter
        (fun (c : Algorithm1.choice) ->
          mas_set := Pmap.add c.mas c !mas_set)
        (Algorithm1.mas_of ~mode engine v))
    (Exposure.eligible exposure);
  let mas =
    Pmap.bindings !mas_set
    |> List.map snd
    |> List.sort (fun (a : Algorithm1.choice) b ->
           Partial.compare_lex a.mas b.mas)
    |> Array.of_list
  in
  (* Potential players per MAS, then the deduplicated player set. *)
  let crowd = Array.map (fun c -> Algorithm1.potential_players engine c.Algorithm1.mas) mas in
  let player_set = ref Tmap.empty in
  Array.iter
    (List.iter (fun v -> player_set := Tmap.add v () !player_set))
    crowd;
  let players = Array.of_list (List.map fst (Tmap.bindings !player_set)) in
  let player_index = Hashtbl.create (Array.length players) in
  Array.iteri (fun i v -> Hashtbl.add player_index (Total.bits v) i) players;
  let choices_of_player = Array.make (Array.length players) [] in
  let players_of_mas =
    Array.map
      (fun vs ->
        List.map (fun v -> Hashtbl.find player_index (Total.bits v)) vs)
      crowd
  in
  Array.iteri
    (fun mi ps ->
      List.iter
        (fun pi -> choices_of_player.(pi) <- mi :: choices_of_player.(pi))
        ps)
    players_of_mas;
  let choices_of_player = Array.map List.rev choices_of_player in
  Pet_obs.Metrics.set_gauge obs_mas_gauge (float_of_int (Array.length mas));
  Pet_obs.Metrics.set_gauge obs_players_gauge
    (float_of_int (Array.length players));
  { engine; mas; players; choices_of_player; players_of_mas }

let engine t = t.engine
let mas_count t = Array.length t.mas

let mas t i =
  if i < 0 || i >= Array.length t.mas then invalid_arg "Atlas.mas: out of range";
  t.mas.(i)

let mas_list t = Array.to_list t.mas

let find_mas t w =
  let rec go i =
    if i >= Array.length t.mas then None
    else if Partial.equal t.mas.(i).Algorithm1.mas w then Some i
    else go (i + 1)
  in
  go 0

let player_count t = Array.length t.players

let player t i =
  if i < 0 || i >= Array.length t.players then
    invalid_arg "Atlas.player: out of range";
  t.players.(i)

let find_player t v =
  let rec go i =
    if i >= Array.length t.players then None
    else if Total.equal t.players.(i) v then Some i
    else go (i + 1)
  in
  go 0

let choices_of_player t i =
  if i < 0 || i >= Array.length t.choices_of_player then
    invalid_arg "Atlas.choices_of_player: out of range";
  t.choices_of_player.(i)

let players_of_mas t i =
  if i < 0 || i >= Array.length t.players_of_mas then
    invalid_arg "Atlas.players_of_mas: out of range";
  t.players_of_mas.(i)

let forced_players_of_mas t i =
  List.filter
    (fun pi -> match t.choices_of_player.(pi) with [ _ ] -> true | _ -> false)
    (players_of_mas t i)

let choice_distribution t =
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun choices ->
      let k = List.length choices in
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    t.choices_of_player;
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let domain_size_range t =
  Array.fold_left
    (fun (lo, hi) (c : Algorithm1.choice) ->
      let d = Partial.domain_size c.mas in
      (min lo d, max hi d))
    (max_int, 0) t.mas

let pp_summary ppf t =
  let lo, hi = domain_size_range t in
  Fmt.pf ppf "@[<v>Number of MAS: %d@,Number of valuations: %d@,"
    (mas_count t) (player_count t);
  Fmt.pf ppf "Number of predicates per MAS: %d to %d@," lo hi;
  List.iter
    (fun (k, n) ->
      Fmt.pf ppf "Number of valuations with %d MAS: %d@," k n)
    (choice_distribution t);
  Fmt.pf ppf "@]"
