(** Per-respondent session state.

    A session walks the Figure-3 applicant side as a state machine:

    {v Created --get_report--> Reported --choose_option--> Chosen
                                   |                          |
                                   +-----(re-report)          +--submit_form--> Submitted v}

    The full valuation exists only in the [Reported] state; the moment an
    option is chosen the valuation (and the other options) are erased and
    only the minimized form survives — the service-side enforcement of
    requirement R2. Sessions idle longer than the store's TTL are swept,
    which also erases any un-chosen full valuation. *)

type state = Created | Reported | Chosen | Submitted

val state_name : state -> string

type t = {
  id : string;
  digest : string;  (** the rule set this session applies under *)
  tenant : string option;
      (** the tenant this session was opened under, if any; [digest]
          pins the tenant {e version} it resolved, so a hot rule swap
          never changes this session's answers *)
  created_at : float;
  mutable last_active : float;
  mutable state : state;
  mutable valuation : Pet_valuation.Total.t option;
      (** the full form; [Some] only while [Reported] *)
  mutable options : (Pet_valuation.Partial.t * string list) list;
      (** the offered MAS (with their benefits), report order; only while
          [Reported] *)
  mutable chosen : (Pet_valuation.Partial.t * string list) option;
      (** the minimized form; [Some] from [Chosen] on *)
  mutable grant_id : int option;  (** archive id once [Submitted] *)
}

type store
type counters = { active : int; created : int; expired : int }

val create_store : ?ttl:float -> ?owns:(string -> bool) -> unit -> store
(** [ttl] in seconds, default 3600; [ttl <= 0.] disables expiry.
    [owns] (default: everything) restricts which ids {!create} may hand
    out: a sharded deployment gives each shard's store the predicate
    "this id hashes to my shard", partitioning the shared ["s<n>"]
    sequence without coordination. *)

val create : store -> digest:string -> ?tenant:string -> now:float -> unit -> t
(** Fresh session in state [Created], with a sequential id ["s0"],
    ["s1"], … skipping ids the store does not own (deterministic by
    design: ids order the transcript, they are not authentication
    tokens — a fronting transport would wrap them in its own opaque
    handles). *)

val restore :
  store -> id:string -> digest:string -> ?tenant:string -> now:float -> unit -> t
(** Recreate a recovered session under its original id (state [Created];
    the caller replays later transitions). Advances the id sequence past
    any numeric ["s<n>"] id so new sessions continue where the replayed
    log left off. *)

val set_on_expire : store -> (t -> unit) -> unit
(** Called as a session is removed by expiry (from {!find}, {!sweep} or
    {!sweep_step}) — the service releases the session's tenant quota
    slot here. Default: nothing. *)

val find : store -> string -> now:float -> (t, [ `Unknown | `Expired ]) result
(** Expired sessions are removed on lookup and reported as [`Expired]. *)

val peek : store -> string -> t option
(** Lookup without the expiry check — log replay must reach sessions at
    the clock of the event being replayed, not of the replay itself. *)

val purge : store -> t -> unit
(** Remove a session outside the TTL machinery (consent revocation).
    Fires [on_expire] — the tenant quota slot is released exactly once
    however the session leaves — but does not count towards the
    [expired] counter. Idempotent: purging a session already removed
    (or swept) does nothing, so a purge followed by a sweep can never
    double-release. *)

val touch : t -> now:float -> unit
(** Refresh the idle clock (called on every successful request). *)

val sweep : store -> now:float -> int
(** Remove every expired session; returns how many were removed. *)

val sweep_step : ?budget:int -> store -> now:float -> int
(** Incremental {!sweep}: examine at most [budget] (default 32) sessions,
    resuming where the previous call stopped and restarting a pass over
    the live table when one completes. Amortized O(budget) per call;
    called on every request so abandoned sessions are reclaimed even if
    nothing ever looks them up again. *)

val all : store -> t list
(** Every live session, in no particular order (snapshot/compaction). *)

val counters : store -> counters
