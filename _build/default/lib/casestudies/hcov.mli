(** The complementary-health-coverage case study (Section 5, Table 1).

    Twelve form predicates:
    - [p1] "age below 16",  [p2] "child welfare"
    - [p3] "minor over 16", [p4] "broken family tie"
    - [p5] "adult below 25", [p6] "not same roof"
    - [p7] "separate tax return", [p8] "receive alimony"
    - [p9] "with child", [p10] "student", [p11] "emergency aid"
    - [p12] "separated"

    One benefit [b1] (eligibility for coverage) with the six-way
    disjunction of Table 1.

    Two encodings are provided. [exposure_printed] carries exactly the
    four consistency rules printed in Table 1. [exposure] adds the one
    further rule the paper's own results imply but the table omits —
    [p10 -> !p1 & !p3] (a recipient of the annual higher-education
    emergency aid is neither under 16 nor a minor) — which is required to
    reproduce the MAS [0_0__1___11_] of Table 3 with its 128 potential
    players; see EXPERIMENTS.md for the calibration. *)

val exposure : unit -> Pet_rules.Exposure.t
val exposure_printed : unit -> Pet_rules.Exposure.t

val predicates : (string * string) list
(** Predicate name, human-readable description. *)

val alice : unit -> Pet_valuation.Total.t
(** The paper's Alice: 24 years old, separated from spouse and parents,
    separate tax return, student with annual emergency aid —
    [000011100111]. *)

val bob : unit -> Pet_valuation.Total.t
(** The paper's Bob: 20-year-old father living with daughter and her
    mother — [000011100000]. *)

val table3_mas : string list
(** The six MAS of Table 3, as strings in the paper's order. *)

val form : unit -> Pet_pet.Form.t
(** The typed questionnaire: one age question drives the three exclusive
    age-band predicates [p1], [p3], [p5]; the rest are direct yes/no
    questions. The raw age never leaves the compilation step. *)
