(** The harness ties the pieces together: generate a problem from a
    seed, run the differential, metamorphic and oracle checks on it, and
    — on failure — shrink the problem to a minimal rule-DSL reproducer
    whose failure fingerprint (the set of failing stages) matches the
    original. *)

type config = {
  gen : Pet_rules.Generate.config;  (** shape of generated problems *)
  samples : int;  (** differential entailment samples per problem *)
  payoff : Pet_game.Payoff.kind;
  metamorphic : bool;
  oracle : bool;
}

val default_config : config

val check_exposure :
  ?config:config -> ?seed:int -> Pet_rules.Exposure.t -> Finding.report
(** All enabled checks on one (possibly hand-written) exposure problem.
    [seed] only steers {!Diff}'s valuation sampling. *)

val run_seed :
  ?config:config -> int -> Pet_rules.Exposure.t * Finding.report
(** Generate the problem for one seed and check it. *)

val run : ?config:config -> int list -> (int * Finding.report) list

val seeds_of_string : string -> (int list, string) result
(** Parse a seed spec: comma-separated integers and inclusive ranges,
    e.g. ["1-50"] or ["3,7,20-25"]. *)

val reproduce :
  ?config:config ->
  ?seed:int ->
  Pet_rules.Exposure.t ->
  (Pet_rules.Exposure.t * string) option
(** [None] if the problem passes all checks. Otherwise greedily shrink
    it ({!Shrink.shrink}) under the constraint that some originally
    failing stage still fails, and return the 1-minimal problem together
    with its rule-DSL text. *)
