(* Tests for the PET facade: typed forms, consent reports, the Figure-3
   workflow, and the JSON emitter. *)

module Universe = Pet_valuation.Universe
module Total = Pet_valuation.Total
module Partial = Pet_valuation.Partial
module Engine = Pet_rules.Engine
module Atlas = Pet_minimize.Atlas
module Strategy = Pet_game.Strategy
module Form = Pet_pet.Form
module Report = Pet_pet.Report
module Workflow = Pet_pet.Workflow
module Json = Pet_pet.Json
module Running = Pet_casestudies.Running

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

(* --- The district-council typed form (the paper's Section 2.2 data) --------- *)

let district_form () =
  let open Form in
  create ~exposure:(Running.exposure ())
    ~questions:
      [
        { key = "age"; text = "How old are you?"; kind = Kint };
        { key = "unemployed"; text = "Are you unemployed?"; kind = Kbool };
        {
          key = "location";
          text = "Where do you live?";
          kind = Kchoice [ "suburbs"; "town center" ];
        };
      ]
    ~predicates:
      [
        {
          name = "p1";
          description = "age <= 25";
          compute =
            (fun get ->
              match get "age" with Aint n -> n <= 25 | _ -> assert false);
        };
        {
          name = "p2";
          description = "unemployed";
          compute =
            (fun get ->
              match get "unemployed" with Abool b -> b | _ -> assert false);
        };
        {
          name = "p3";
          description = "lives in the suburbs";
          compute =
            (fun get ->
              match get "location" with
              | Achoice c -> c = "suburbs"
              | _ -> assert false);
        };
      ]

let test_form_valuations () =
  let form = district_form () in
  (* The paper's v1: age 28, unemployed, suburbs -> 011. *)
  match
    Form.valuation form
      [
        ("age", Form.Aint 28);
        ("unemployed", Form.Abool true);
        ("location", Form.Achoice "suburbs");
      ]
  with
  | Error m -> Alcotest.fail m
  | Ok v ->
    Alcotest.(check string) "v1" "011" (Total.to_string v);
    (* v2: age 20 -> 111. *)
    (match
       Form.valuation form
         [
           ("age", Form.Aint 20);
           ("unemployed", Form.Abool true);
           ("location", Form.Achoice "suburbs");
         ]
     with
    | Error m -> Alcotest.fail m
    | Ok v2 -> Alcotest.(check string) "v2" "111" (Total.to_string v2))

let test_form_errors () =
  let form = district_form () in
  let fails answers =
    match Form.valuation form answers with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "missing answer" true
    (fails [ ("age", Form.Aint 28) ]);
  Alcotest.(check bool) "ill-typed" true
    (fails
       [
         ("age", Form.Abool true);
         ("unemployed", Form.Abool true);
         ("location", Form.Achoice "suburbs");
       ]);
  Alcotest.(check bool) "bad choice" true
    (fails
       [
         ("age", Form.Aint 28);
         ("unemployed", Form.Abool true);
         ("location", Form.Achoice "the moon");
       ]);
  Alcotest.(check bool) "unknown key" true
    (fails
       [
         ("age", Form.Aint 28);
         ("unemployed", Form.Abool true);
         ("location", Form.Achoice "suburbs");
         ("shoe_size", Form.Aint 43);
       ])

let test_form_validation () =
  let exposure = Running.exposure () in
  let q = { Form.key = "k"; text = "t"; kind = Form.Kbool } in
  let predicate name =
    {
      Form.name;
      description = "";
      compute = (fun get -> get "k" = Form.Abool true);
    }
  in
  let fails mk =
    match mk () with exception Invalid_argument _ -> true | _ -> false
  in
  Alcotest.(check bool) "missing predicate" true
    (fails (fun () ->
         Form.create ~exposure ~questions:[ q ]
           ~predicates:[ predicate "p1"; predicate "p2" ]));
  Alcotest.(check bool) "unknown predicate" true
    (fails (fun () ->
         Form.create ~exposure ~questions:[ q ]
           ~predicates:
             [ predicate "p1"; predicate "p2"; predicate "p3"; predicate "zz" ]));
  Alcotest.(check bool) "duplicate keys" true
    (fails (fun () ->
         Form.create ~exposure ~questions:[ q; q ]
           ~predicates:[ predicate "p1"; predicate "p2"; predicate "p3" ]))

(* --- Reports ------------------------------------------------------------------ *)

let running_context () =
  let atlas = Atlas.build (Engine.create ~backend:Engine.Bdd (Running.exposure ())) in
  (atlas, Strategy.compute atlas)

let test_report_111 () =
  let atlas, profile = running_context () in
  let u3 = Universe.of_names [ "p1"; "p2"; "p3" ] in
  let r = Report.build atlas profile (Total.of_string u3 "111") in
  Alcotest.(check (list string)) "granted" [ "b1" ] r.Report.granted;
  Alcotest.(check int) "two options" 2 (List.length r.Report.options);
  let rec_opt = Report.recommended r in
  Alcotest.(check string) "recommended _11" "_11"
    (Partial.to_string rec_opt.Report.mas);
  Alcotest.(check (float 0.)) "po_blank 1" 1. rec_opt.Report.po_blank;
  Alcotest.(check (float 0.)) "po_sm 1" 1. rec_opt.Report.po_sm;
  (* The rejected option would reveal everything. *)
  let other =
    List.find (fun o -> not o.Report.recommended) r.Report.options
  in
  Alcotest.(check string) "other is 1__" "1__"
    (Partial.to_string other.Report.mas);
  Alcotest.(check (float 0.)) "other po_blank 0" 0. other.Report.po_blank;
  Alcotest.(check (float 1e-9)) "ratio: 1 blank of 3" (1. /. 3.)
    r.Report.minimization_ratio;
  (* Rendering mentions the recommendation. *)
  let text = Fmt.str "%a" Report.pp r in
  Alcotest.(check bool) "text mentions recommended" true
    (contains text "<- recommended")

let test_report_not_player () =
  let atlas, profile = running_context () in
  let u3 = Universe.of_names [ "p1"; "p2"; "p3" ] in
  Alcotest.(check bool) "000 rejected" true
    (match Report.build atlas profile (Total.of_string u3 "000") with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_report_json () =
  let atlas, profile = running_context () in
  let u3 = Universe.of_names [ "p1"; "p2"; "p3" ] in
  let r = Report.build atlas profile (Total.of_string u3 "111") in
  let json = Json.to_string (Report.to_json r) in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) ("json contains " ^ fragment) true
        (contains json fragment))
    [
      "\"valuation\":\"111\"";
      "\"granted\":[\"b1\"]";
      "\"mas\":\"_11\"";
      "\"recommended\":true";
      "\"po_blank\":1";
    ]

(* --- Workflow ------------------------------------------------------------------- *)

let test_workflow_end_to_end () =
  let provider = Workflow.provider (Running.exposure ()) in
  let u3 = Universe.of_names [ "p1"; "p2"; "p3" ] in
  (* Applicant side. *)
  let report =
    match Workflow.report_for provider (Total.of_string u3 "011") with
    | Ok r -> r
    | Error m -> Alcotest.fail m
  in
  let choice = Report.recommended report in
  Alcotest.(check string) "011 sends _11" "_11"
    (Partial.to_string choice.Report.mas);
  (* Provider side: verification, grant, archive, audit. *)
  (match Workflow.submit provider choice.Report.mas with
  | Error m -> Alcotest.fail m
  | Ok grant ->
    Alcotest.(check (list string)) "b1 granted" [ "b1" ]
      grant.Workflow.benefits;
    Alcotest.(check bool) "audit passes" true (Workflow.audit provider grant);
    (* A tampered record fails the audit. *)
    let tampered = { grant with Workflow.benefits = [ "b2" ] } in
    Alcotest.(check bool) "tampered audit fails" false
      (Workflow.audit provider tampered))

let test_workflow_rejections () =
  let provider = Workflow.provider (Running.exposure ()) in
  let u3 = Universe.of_names [ "p1"; "p2"; "p3" ] in
  (* Ineligible applicant. *)
  (match Workflow.report_for provider (Total.of_string u3 "000") with
  | Ok _ -> Alcotest.fail "expected rejection"
  | Error m ->
    Alcotest.(check bool) "no benefit message" true
      (contains m "no benefit"));
  (* Unrealistic applicant (H-cov: p1 and p5 are exclusive). *)
  let hprov = Workflow.provider (Pet_casestudies.Hcov.exposure ()) in
  let hxp = Pet_rules.Exposure.xp (Pet_casestudies.Hcov.exposure ()) in
  (match Workflow.report_for hprov (Total.of_string hxp "100010000000") with
  | Ok _ -> Alcotest.fail "expected rejection"
  | Error m -> Alcotest.(check bool) "contradiction" true (contains m "contradicts"));
  (* Submitting an inconsistent form. *)
  (match
     Workflow.submit hprov
       (Partial.of_assoc hxp [ ("p1", true); ("p5", true) ])
   with
  | Ok _ -> Alcotest.fail "expected rejection"
  | Error m -> Alcotest.(check bool) "inconsistent" true (contains m "inconsistent"));
  (* Submitting a form proving nothing. *)
  match Workflow.submit provider (Partial.of_string u3 "_1_") with
  | Ok _ -> Alcotest.fail "expected rejection"
  | Error m -> Alcotest.(check bool) "proves nothing" true (contains m "proves no")


(* The SAT backend drives the whole workflow just as well as the BDD
   one (integration coverage for the incremental-solver path). *)
let test_workflow_sat_backend () =
  let provider =
    Workflow.provider ~backend:Pet_rules.Engine.Sat (Running.exposure ())
  in
  let u3 = Universe.of_names [ "p1"; "p2"; "p3" ] in
  match Workflow.report_for provider (Total.of_string u3 "111") with
  | Error m -> Alcotest.fail m
  | Ok report -> (
    let choice = Report.recommended report in
    Alcotest.(check string) "recommended" "_11"
      (Partial.to_string choice.Report.mas);
    match Workflow.submit provider choice.Report.mas with
    | Error m -> Alcotest.fail m
    | Ok grant ->
      Alcotest.(check bool) "audit" true (Workflow.audit provider grant))

(* --- Ledger -------------------------------------------------------------------- *)

let test_ledger () =
  let module Ledger = Pet_pet.Ledger in
  let provider = Workflow.provider (Running.exposure ()) in
  let u3 = Universe.of_names [ "p1"; "p2"; "p3" ] in
  let ledger = Ledger.create () in
  Alcotest.(check int) "empty" 0 (Ledger.size ledger);
  let grant w =
    match Workflow.submit provider (Partial.of_string u3 w) with
    | Ok g -> g
    | Error m -> Alcotest.fail m
  in
  let id0 = Ledger.record ledger (grant "_11") in
  let id1 = Ledger.record ledger (grant "1_0") in
  Alcotest.(check int) "ids sequential" 1 id1;
  Alcotest.(check int) "size" 2 (Ledger.size ledger);
  (* Storage footprint: 2 + 2 predicate values instead of 2 x 3. *)
  Alcotest.(check int) "stored values" 4 (Ledger.stored_values ledger);
  (match Ledger.find ledger id0 with
  | Some g ->
    Alcotest.(check (list string)) "find" [ "b1" ] g.Workflow.benefits
  | None -> Alcotest.fail "missing record");
  Alcotest.(check bool) "find missing" true (Ledger.find ledger 99 = None);
  Alcotest.(check (list int)) "audit clean" [] (Ledger.audit ledger provider);
  (* Tamper with a record through re-recording a forged grant. *)
  let forged = { (grant "_11") with Workflow.benefits = [ "b2" ] } in
  let id2 = Ledger.record ledger forged in
  Alcotest.(check (list int)) "audit flags the forgery" [ id2 ]
    (Ledger.audit ledger provider);
  (* JSON rendering mentions both forms. *)
  let json = Json.to_string (Ledger.to_json ledger) in
  Alcotest.(check bool) "json has _11" true (contains json "\"_11\"");
  Alcotest.(check bool) "json has 1_0" true (contains json "\"1_0\"")

(* --- JSON emitter ------------------------------------------------------------------ *)

let test_json_parse () =
  let parses input expected =
    match Json.parse input with
    | Ok j -> Alcotest.(check string) input expected (Json.to_string j)
    | Error m -> Alcotest.failf "%s: %s" input m
  in
  parses "null" "null";
  parses " true " "true";
  parses "-42" "-42";
  parses "0.5" "0.5";
  parses "1e3" "1000";
  parses "[1, [2, {}], {\"a\": null}]" "[1,[2,{}],{\"a\":null}]";
  parses "{\"k\" : \"v\", \"l\": [true,false]}" "{\"k\":\"v\",\"l\":[true,false]}";
  (* Escapes: named, \u BMP, and a surrogate pair (U+1F600, 4 UTF-8 bytes). *)
  parses "\"a\\n\\t\\\"b\\\\\"" "\"a\\n\\t\\\"b\\\\\"";
  (match Json.parse "\"\\u0041\\u00e9\"" with
  | Ok (Json.String s) -> Alcotest.(check string) "utf8 decode" "A\xc3\xa9" s
  | _ -> Alcotest.fail "expected a string");
  (match Json.parse "\"\\ud83d\\ude00\"" with
  | Ok (Json.String s) ->
    Alcotest.(check string) "surrogate pair" "\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "expected a string");
  (* Integral numbers become Int, fractional/exponent Float. *)
  Alcotest.(check bool) "int" true (Json.parse "7" = Ok (Json.Int 7));
  Alcotest.(check bool) "float" true (Json.parse "7.0" = Ok (Json.Float 7.))

let test_json_parse_errors () =
  let fails_at input fragment =
    match Json.parse input with
    | Ok _ -> Alcotest.failf "%s: expected a parse error" input
    | Error m ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %S in %S" input fragment m)
        true (contains m fragment)
  in
  fails_at "" "end of input";
  fails_at "tru" "expected true";
  fails_at "[1,2" "expected ',' or ']'";
  fails_at "{\"a\":1," "expected a string object key";
  fails_at "{\"a\" 1}" "expected ':'";
  fails_at "\"abc" "unterminated string";
  fails_at "\"a\\q\"" "invalid escape";
  fails_at "\"\\ud800x\"" "expected";
  fails_at "1 2" "trailing garbage";
  fails_at "\"a\nb\"" "control character";
  (* Positions are 1-based line/column. *)
  (match Json.parse "[1,\n2,\nxyz]" with
  | Error m ->
    Alcotest.(check bool) "line 3" true (contains m "line 3, column 1")
  | Ok _ -> Alcotest.fail "expected error");
  (* The depth guard rejects hostile nesting instead of overflowing. *)
  let deep = String.concat "" (List.init 600 (fun _ -> "[")) in
  fails_at deep "nested too deeply"

(* Random JSON documents: emission followed by parsing is the identity on
   the emitted text (the canonical-form round trip). *)
let gen_json =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        let scalar =
          oneof
            [
              return Json.Null;
              map (fun b -> Json.Bool b) bool;
              map (fun i -> Json.Int i) int;
              map (fun f -> Json.Float f) (float_bound_inclusive 1000.);
              map (fun s -> Json.String s) (string_size ~gen:printable (int_bound 12));
            ]
        in
        if n = 0 then scalar
        else
          oneof
            [
              scalar;
              map (fun l -> Json.List l) (list_size (int_bound 4) (self (n / 2)));
              map
                (fun kvs -> Json.Obj kvs)
                (list_size (int_bound 4)
                   (pair (string_size ~gen:printable (int_bound 8)) (self (n / 2))));
            ]))

let prop_json_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"to_string |> parse |> to_string is stable"
    ~print:Json.to_string gen_json (fun j ->
      let once = Json.to_string j in
      match Json.parse once with
      | Error m -> QCheck2.Test.fail_reportf "no parse: %s" m
      | Ok j' -> Json.to_string j' = once)

let test_json_escaping () =
  Alcotest.(check string) "escape" "{\"a\\\"b\":\"x\\n\\t\\\\y\"}"
    (Json.to_string (Json.Obj [ ("a\"b", Json.String "x\n\t\\y") ]));
  Alcotest.(check string) "control char" "\"\\u0001\""
    (Json.to_string (Json.String "\001"));
  Alcotest.(check string) "nested" "[null,true,1,[{}]]"
    (Json.to_string
       (Json.List [ Json.Null; Json.Bool true; Json.Int 1; Json.List [ Json.Obj [] ] ]));
  Alcotest.(check string) "float integral" "2" (Json.to_string (Json.Float 2.));
  Alcotest.(check string) "float fractional" "0.5"
    (Json.to_string (Json.Float 0.5))

(* --- Bench diff ----------------------------------------------------------------- *)

let test_benchdiff_directions () =
  let module B = Pet_pet.Benchdiff in
  let check_dir name expected key =
    Alcotest.(check bool) name true (B.direction_of_key key = expected)
  in
  check_dir "throughput wins over _s suffix" B.Higher_better "requests_per_s";
  check_dir "rates are throughput" B.Higher_better "cache_hit_rate";
  check_dir "durations are cost" B.Lower_better "publish_compile_s";
  check_dir "overhead is cost" B.Lower_better "overhead";
  check_dir "errors are cost" B.Lower_better "errors";
  check_dir "counts are info" B.Info "respondents"

let test_benchdiff_regression () =
  let module B = Pet_pet.Benchdiff in
  let doc rps seconds =
    Json.Obj
      [
        ( "cases",
          Json.List
            [
              Json.Obj
                [
                  ("case", Json.String "H-cov");
                  ("respondents", Json.Int 1560);
                  ("requests_per_s", Json.Float rps);
                  ("seconds", Json.Float seconds);
                ];
            ] );
      ]
  in
  (* An injected 2x slowdown trips both the throughput drop and the
     duration growth at a 40% threshold. *)
  let findings = B.diff ~threshold:0.4 (doc 60000. 0.1) (doc 30000. 0.2) in
  Alcotest.(check bool) "2x slowdown detected" true (B.has_regression findings);
  let regressed =
    List.filter_map
      (fun (f : B.finding) -> if f.regression then Some f.path else None)
      findings
  in
  Alcotest.(check (list string)) "both directional keys trip"
    [ ".cases[0].requests_per_s"; ".cases[0].seconds" ]
    regressed;
  (* The same drift under the threshold passes. *)
  let findings = B.diff ~threshold:0.4 (doc 60000. 0.1) (doc 50000. 0.12) in
  Alcotest.(check bool) "small drift passes" false (B.has_regression findings);
  (* Improvements never regress, string/info fields never trip, and the
     rendering names the regression. *)
  let findings = B.diff ~threshold:0.4 (doc 30000. 0.2) (doc 60000. 0.1) in
  Alcotest.(check bool) "improvement passes" false (B.has_regression findings);
  let findings = B.diff ~threshold:0.4 (doc 60000. 0.1) (doc 30000. 0.2) in
  let rendered = B.render findings in
  Alcotest.(check bool) "render flags it" true
    (let contains hay needle =
       let nh = String.length hay and nn = String.length needle in
       let rec go i =
         i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
       in
       go 0
     in
     contains rendered "REGRESSION" && contains rendered "requests_per_s")

let test_benchdiff_zero_baseline () =
  let module B = Pet_pet.Benchdiff in
  let doc errors = Json.Obj [ ("errors", Json.Int errors) ] in
  (* Zero -> zero is no change; zero -> nonzero is an infinite rise. *)
  Alcotest.(check bool) "0 -> 0 passes" false
    (B.has_regression (B.diff (doc 0) (doc 0)));
  Alcotest.(check bool) "0 -> 3 regresses" true
    (B.has_regression (B.diff (doc 0) (doc 3)))

let () =
  Alcotest.run "pet_pet"
    [
      ( "form",
        [
          Alcotest.test_case "valuations" `Quick test_form_valuations;
          Alcotest.test_case "errors" `Quick test_form_errors;
          Alcotest.test_case "validation" `Quick test_form_validation;
        ] );
      ( "report",
        [
          Alcotest.test_case "user 111" `Quick test_report_111;
          Alcotest.test_case "not a player" `Quick test_report_not_player;
          Alcotest.test_case "json" `Quick test_report_json;
        ] );
      ( "workflow",
        [
          Alcotest.test_case "end to end" `Quick test_workflow_end_to_end;
          Alcotest.test_case "rejections" `Quick test_workflow_rejections;
          Alcotest.test_case "sat backend" `Quick test_workflow_sat_backend;
        ] );
      ("ledger", [ Alcotest.test_case "ledger" `Quick test_ledger ]);
      ( "json",
        [
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "parse" `Quick test_json_parse;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          QCheck_alcotest.to_alcotest prop_json_roundtrip;
        ] );
      ( "benchdiff",
        [
          Alcotest.test_case "key directions" `Quick test_benchdiff_directions;
          Alcotest.test_case "2x slowdown detected" `Quick
            test_benchdiff_regression;
          Alcotest.test_case "zero baseline" `Quick test_benchdiff_zero_baseline;
        ] );
    ]
