(** The collection-service core: a pure request router over the PET
    workflow.

    One [Service.t] serves many concurrent respondent sessions over many
    published rule sets. It owns the compiled-engine {!Registry} (one
    {!Pet_pet.Workflow.provider} per distinct rule set, shared by every
    session), the {!Session} store (per-respondent state machines with
    TTL expiry, swept on every request), and one {!Pet_pet.Ledger} per
    rule set (archives survive engine evictions — the cache bounds
    compute, not the legally retained records).

    The core is transport-agnostic and deliberately synchronous:
    {!handle_line} maps one request line to one response line, so any
    driver — the [pet serve] stdin/stdout loop, a socket accept loop, a
    test harness — provides the I/O and, if it wants parallelism, the
    locking around a service instance. The sharded TCP server
    ({!Pet_net}) runs one instance per worker domain, each serving only
    the sessions whose ids hash to it ([owns]) and deferring rule texts
    and grant ledgers to the process-wide {!Shared} state. Determinism
    is preserved by injecting the clock: tests and cram transcripts pass
    a logical clock, production passes wall time. *)

type t

type compiled
(** One fully built rule-set artifact: compiled engine, MAS atlas,
    solved equilibrium, and (when tabulable) the fast-path answer
    table. Abstract — it only appears as the artifact type of the
    tenant registry, [compiled Pet_tenant.Tenant.t]. *)

val create :
  ?backend:Pet_rules.Engine.backend ->
  ?compiled:bool ->
  ?payoff:Pet_game.Payoff.kind ->
  ?capacity:int ->
  ?ttl:float ->
  ?owns:(string -> bool) ->
  ?shared:Shared.t ->
  ?tenants:compiled Pet_tenant.Tenant.t ->
  ?tenant_quota:int ->
  ?resolve:(string -> string option) ->
  ?durable:bool ->
  now:(unit -> float) ->
  unit ->
  t
(** [backend] picks the proof-relation backend for compiled engines
    (default {!Pet_rules.Engine.Compiled} — the bitmask fast path,
    which itself falls back to BDDs above the tabulation threshold).
    [compiled] (default [true]) turns the request-path shortcuts on:
    published forms small enough to tabulate keep a per-valuation table
    of rendered [get_report] answers, and request lines in the common
    envelope shape take the AST-free {!Proto.decode_fast} scanner.
    Responses are byte-identical either way — [~compiled:false] only
    disables the caches (see [test/compiled.t], which diffs the two
    transcripts).

    [capacity] bounds the engine registry (default 16); [ttl] is the
    session idle timeout in seconds (default 3600, [<= 0.] disables);
    [resolve] maps [source] names in requests to rule-spec text (the CLI
    wires the built-in case studies here); [now] is called exactly twice
    per request (entry and exit), so a logical clock advancing 1.0 per
    call yields fully deterministic latencies and expiry.

    [owns] restricts which session ids this instance creates (see
    {!Session.create_store}); [shared] routes rule texts and grant
    ledgers through cross-shard state instead of instance-private
    tables. Both default to the standalone single-instance behavior.

    [durable] (default false) prepares the service for a persistence
    backend: the canonical text of every compiled rule set is retained
    (so an engine evicted from the LRU cache is recompiled transparently
    instead of failing with [unknown_rules]) and each first compilation
    is announced to the {!Persist.sink}. The default keeps today's pure
    in-memory semantics, including eviction errors.

    [tenants] shares a multi-tenant form registry with other service
    instances — the sharded TCP server passes one registry to every
    shard, like [shared] — and leaves its lifecycle (stopping the
    background builder domain) to the caller. Absent, the service
    creates a private registry with [tenant_quota] as the default
    per-tenant active-session cap (default 0 = unlimited) and
    {!shutdown} stops it. *)

val tenant_registry : t -> compiled Pet_tenant.Tenant.t
(** The tenant registry this instance serves from (private or shared —
    drivers use it for out-of-band inspection and to build the shared
    instance's peers). *)

val shutdown : t -> unit
(** Stop the private tenant registry's builder domain, if this instance
    owns one ({!create} without [?tenants]). Idempotent; services
    handed a shared registry do nothing — the driver that created it
    stops it. *)

val set_sink : t -> Persist.sink -> unit
(** Install the persistence sink (initially {!Persist.null}). Attached
    {e after} recovery replay so recovered events are not re-logged. *)

val ledger_key : digest:string -> tenant:string option -> string
(** The archive namespace for a grant: the bare digest for tenant-less
    rule sets, [digest ^ "@" ^ tenant] otherwise — two tenants
    publishing byte-identical rules keep separate ledgers (and separate
    grant-id sequences). The digest is hex, so the ["@"] never
    collides. *)

val apply_horizons : t -> int
(** Apply every expiry horizon that has already passed (unbudgeted):
    tombstone the grant, purge the live session, mark the consent entry
    expired. Drivers call it once after recovery replay — horizons that
    passed while the process was down take effect before the first
    request. Returns how many entries expired. *)

val apply_event : t -> Persist.event -> (unit, string) result
(** Replay one recovered event into the service state, without emitting
    it back to the sink. Replay bypasses request-level guards (the log
    only holds transitions that committed) and never raises; [Error]
    means the event contradicts the accumulated state — a damaged or
    reordered log — and identifies the contradiction. *)

val state_events : t -> Persist.event list
(** The current state as an equivalent event sequence — the content of a
    snapshot. Replaying it through {!apply_event} on a fresh service
    reproduces every rule set, archived grant and live session; sessions
    in the transient [Reported] state revert to [Created] because their
    raw valuation is never persisted (R2). Deterministically ordered. *)

val handle_line : t -> string -> string
(** Process one request line, return the response line (no trailing
    newline). Never raises: every failure becomes a structured protocol
    error. Also sweeps expired sessions and updates the per-endpoint
    counters/latency aggregates reported by the [stats] method.

    When {!Pet_obs.Trace} is enabled the whole dispatch runs under a
    capture labelled with the request's trace id (client-supplied
    ["trace"] field, else generated), annotated with identifiers only
    (method, backend, session id, digest/source, error code), and the id
    is echoed on the response — ok {e and} error — so a client can fetch
    the capture with the [trace] method. With tracing disabled the only
    per-request cost is one branch, and a client-supplied trace id is
    still echoed. *)

val stats_json : t -> Pet_pet.Json.t
(** The [stats] payload: request totals and per-method count/error/latency
    aggregates, registry size/hits/misses/evictions, session
    active/created/expired/submitted counts, and archive totals. Once a
    tenant exists a [tenants] section is appended (registry totals plus
    per-tenant versions/state/quota/session counters), and once a
    revocation or expiry has happened a [consent] section
    (revoked/expired/pending counts); deployments using neither keep
    their earlier payload bytes. *)

val registry_stats : t -> Registry.stats

val session_counters : t -> Session.counters
(** Live session counters for this instance — a sharded deployment sums
    them across shards for the process-wide view. *)

val sweep_tick : ?budget:int -> t -> int
(** Run one incremental expiry step at the service clock, outside any
    request ({!Session.sweep_step} plus a consent-horizon step of the
    same budget; [budget] defaults to theirs). The TCP server's ticker
    enqueues one per shard per interval, so a shard that sees no
    traffic still expires its sessions and a hot shard cannot starve
    the others' sweeps. Returns the number of sessions swept. *)

val sync_gauges : t -> unit
(** Mirror the service-owned aggregates (registry, sessions, ledgers)
    into the global {!Pet_obs.Metrics} gauges. The [metrics] request
    handler does this automatically; drivers that export snapshots out
    of band ([pet serve --metrics-interval], the bench harness) call it
    before {!Pet_obs.Metrics.snapshot} so gauges are never stale. *)

val metrics_payload :
  t -> now:float -> Proto.metrics_format -> Pet_pet.Json.t
(** The [metrics] response payload: the full observability snapshot
    (after {!sync_gauges} and an SLO gauge sync at [now], the service
    clock), either as structured JSON ([counters]/[gauges]/[histograms]
    with p50/p90/p99) or as a Prometheus text exposition wrapped in one
    JSON string. *)

val slo : Pet_obs.Slo.t
(** The process-global SLO tracker. Every {!handle_line} records its
    method's outcome here (plus a ["tenant:NAME"] key when the request
    is tenant-attributable) while observability is enabled; its reports
    surface as [pet_slo_*] gauges in {!metrics_payload}, [watch] frames
    and the flight journal. Shared across shards by design — windows
    describe the process. *)
