test/test_casestudies.ml: Alcotest Fmt Fun Lazy List Option Pet_casestudies Pet_game Pet_minimize Pet_pet Pet_rules Pet_valuation String
