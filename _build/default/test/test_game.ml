(* Tests for the game-theoretic layer: payoffs (Section 4.2), Algorithm 2
   and its equilibrium property (Theorem 4.6), attacker deduction, and
   the solidarity extension. *)

module F = Pet_logic.Formula
module Universe = Pet_valuation.Universe
module Total = Pet_valuation.Total
module Partial = Pet_valuation.Partial
module Rule = Pet_rules.Rule
module Exposure = Pet_rules.Exposure
module Engine = Pet_rules.Engine
module A1 = Pet_minimize.Algorithm1
module Atlas = Pet_minimize.Atlas
module Profile = Pet_game.Profile
module Payoff = Pet_game.Payoff
module Strategy = Pet_game.Strategy
module Equilibrium = Pet_game.Equilibrium
module Deduction = Pet_game.Deduction
module Solidarity = Pet_game.Solidarity
module Running = Pet_casestudies.Running

let u3 = Universe.of_names [ "p1"; "p2"; "p3" ]

let running_atlas () =
  Atlas.build (Engine.create ~backend:Engine.Bdd (Running.exposure ()))

let mas_index atlas s =
  Option.get (Atlas.find_mas atlas (Partial.of_string u3 s))

let player_index atlas s =
  Option.get (Atlas.find_player atlas (Total.of_string u3 s))

(* --- Payoffs: the paper's running-example values (Section 4.2) ------------- *)

let test_po_values_running () =
  let atlas = running_atlas () in
  let profile = Strategy.compute atlas in
  let value kind s =
    let m = mas_index atlas s in
    Payoff.value atlas kind ~mas:m ~crowd:(Profile.crowd profile m)
  in
  (* PO_blank(111,_11) = PO_blank(011,_11) = 1; PO_SM likewise = 1. *)
  Alcotest.(check (float 0.)) "PO_blank(_11)" 1. (value Payoff.Blank "_11");
  Alcotest.(check (float 0.)) "PO_SM(_11)" 1. (value Payoff.Sm "_11");
  (* All forced single-player moves have payoff 0. *)
  List.iter
    (fun s ->
      Alcotest.(check (float 0.)) ("PO_blank " ^ s) 0. (value Payoff.Blank s);
      Alcotest.(check (float 0.)) ("PO_SM " ^ s) 0. (value Payoff.Sm s))
    [ "1_0"; "10_"; "100" ]

let test_po_blank_hypothetical_move () =
  let atlas = running_atlas () in
  (* If 111 played 1__ alone: the attacker deduces p2 = p3 = 1, payoff 0
     (the paper's "Players and choices" example). *)
  let m = mas_index atlas "1__" in
  let crowd = [ player_index atlas "111" ] in
  Alcotest.(check (float 0.)) "PO_blank(111,1__)" 0.
    (Payoff.value atlas Payoff.Blank ~mas:m ~crowd);
  Alcotest.(check (list (pair string bool))) "deduced p2 p3"
    [ ("p2", true); ("p3", true) ]
    (Payoff.deduced_blanks atlas ~mas:m ~crowd);
  Alcotest.(check (list string)) "nothing protected" []
    (Payoff.undeducible_blanks atlas ~mas:m ~crowd)

let test_po_empty_crowd () =
  let atlas = running_atlas () in
  let m = mas_index atlas "_11" in
  Alcotest.(check (float 0.)) "SM empty" 0.
    (Payoff.value atlas Payoff.Sm ~mas:m ~crowd:[]);
  Alcotest.(check (float 0.)) "blank empty" 0.
    (Payoff.value atlas Payoff.Blank ~mas:m ~crowd:[]);
  Alcotest.(check (list (pair string bool))) "no deduction" []
    (Payoff.deduced_blanks atlas ~mas:m ~crowd:[])

let test_weighted_payoff () =
  let atlas = running_atlas () in
  let m = mas_index atlas "_11" in
  let crowd = [ player_index atlas "011"; player_index atlas "111" ] in
  let weight name = if name = "p1" then 2.5 else 1.0 in
  Alcotest.(check (float 0.)) "weighted" 2.5
    (Payoff.value atlas (Payoff.Weighted weight) ~mas:m ~crowd)

(* --- Profiles ---------------------------------------------------------------- *)

let test_profile_validation () =
  let atlas = running_atlas () in
  Alcotest.(check bool) "invalid move rejected" true
    (match
       Profile.make atlas (fun i ->
           (* give everyone the first MAS, which most cannot play *)
           ignore i;
           0)
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_profile_crowds () =
  let atlas = running_atlas () in
  let profile = Strategy.compute atlas in
  let total_crowd =
    List.init (Atlas.mas_count atlas) (fun m ->
        List.length (Profile.crowd profile m))
    |> List.fold_left ( + ) 0
  in
  Alcotest.(check int) "everyone plays exactly once"
    (Atlas.player_count atlas) total_crowd;
  let c = Profile.move_of_valuation profile (Total.of_string u3 "011") in
  Alcotest.(check string) "011 plays _11" "_11" (Partial.to_string c.A1.mas)

(* --- Algorithm 2 on the running example ---------------------------------------- *)

let test_strategy_running () =
  let atlas = running_atlas () in
  List.iter
    (fun payoff ->
      let profile = Strategy.compute ~payoff atlas in
      (* Player 111's best move is _11 regardless of the others
         (Section 4.3, "Applying the strategy"). *)
      let p111 = player_index atlas "111" in
      Alcotest.(check string)
        (Fmt.str "111 plays _11 under %a" Payoff.pp_kind payoff)
        "_11"
        (Partial.to_string (Atlas.mas atlas (Profile.move_of profile p111)).A1.mas))
    [ Payoff.Blank; Payoff.Sm ]

let test_strategy_is_nash_running () =
  let atlas = running_atlas () in
  List.iter
    (fun payoff ->
      let profile = Strategy.compute ~payoff atlas in
      Alcotest.(check bool)
        (Fmt.str "nash under %a" Payoff.pp_kind payoff)
        true
        (Equilibrium.is_nash profile payoff))
    [ Payoff.Blank; Payoff.Sm ]

let test_deviation_found () =
  let atlas = running_atlas () in
  (* Force 111 to play 1__ (payoff 0); deviating to _11 pays 1. *)
  let p111 = player_index atlas "111" in
  let m1 = mas_index atlas "1__" in
  let equilibrium = Strategy.compute atlas in
  let profile =
    Profile.make atlas (fun i ->
        if i = p111 then m1 else Profile.move_of equilibrium i)
  in
  match Equilibrium.find_improvement profile Payoff.Blank with
  | None -> Alcotest.fail "expected a profitable deviation"
  | Some d ->
    Alcotest.(check int) "deviating player" p111 d.Equilibrium.player;
    Alcotest.(check int) "to _11" (mas_index atlas "_11") d.Equilibrium.to_mas;
    Alcotest.(check (float 0.)) "current 0" 0. d.Equilibrium.current;
    Alcotest.(check (float 0.)) "deviated 1" 1. d.Equilibrium.deviated

(* --- Deduction / disclosure ------------------------------------------------------ *)

let test_disclosure_running () =
  let atlas = running_atlas () in
  let profile = Strategy.compute atlas in
  let d = Deduction.for_player profile ~player:(player_index atlas "011") in
  Alcotest.(check (list (pair string bool))) "published"
    [ ("p2", true); ("p3", true) ]
    d.Deduction.published;
  Alcotest.(check (list (pair string bool))) "nothing deduced" []
    d.Deduction.deduced;
  Alcotest.(check (list string)) "p1 protected" [ "p1" ]
    d.Deduction.protected;
  Alcotest.(check int) "crowd 2" 2 d.Deduction.crowd_size;
  (* 110's forced move reveals everything: p2 = 1 deduced. *)
  let d' = Deduction.for_player profile ~player:(player_index atlas "110") in
  Alcotest.(check (list (pair string bool))) "p2 deduced"
    [ ("p2", true) ]
    d'.Deduction.deduced;
  Alcotest.(check (list string)) "none protected" [] d'.Deduction.protected

let test_solidarity_none_on_running () =
  (* Every move's crowd in the running example already contains all its
     potential players, so no recruit can help. *)
  let atlas = running_atlas () in
  let profile = Strategy.compute atlas in
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Fmt.str "no improvement for MAS %d" m)
        true
        (Solidarity.improve profile ~mas:m = None))
    (List.init (Atlas.mas_count atlas) Fun.id);
  (* The coordinated plan is then empty and leaves the floor alone. *)
  let plan = Solidarity.plan profile in
  Alcotest.(check int) "no recruits" 0 plan.Solidarity.recruited;
  Alcotest.(check (float 0.)) "floor unchanged" plan.Solidarity.floor_before
    plan.Solidarity.floor_after

let test_refine_budget () =
  let atlas = running_atlas () in
  (* Start from a non-equilibrium profile; a zero budget cannot repair
     it and must report non-convergence. *)
  let p111 = player_index atlas "111" in
  let m1 = mas_index atlas "1__" in
  let equilibrium = Strategy.compute atlas in
  let profile =
    Profile.make atlas (fun i ->
        if i = p111 then m1 else Profile.move_of equilibrium i)
  in
  let refined, converged = Equilibrium.refine ~max_steps:0 profile Payoff.Blank in
  Alcotest.(check bool) "not converged" false converged;
  Alcotest.(check bool) "profile untouched" true (Profile.equal refined profile);
  (* One step suffices here. *)
  let refined, converged = Equilibrium.refine ~max_steps:2 profile Payoff.Blank in
  Alcotest.(check bool) "converged" true converged;
  Alcotest.(check bool) "now nash" true (Equilibrium.is_nash refined Payoff.Blank)

let test_profile_unknown_valuation () =
  let atlas = running_atlas () in
  let profile = Strategy.compute atlas in
  Alcotest.(check bool) "not a player" true
    (match Profile.move_of_valuation profile (Total.of_string u3 "000") with
    | exception Not_found -> true
    | _ -> false)

(* --- Mixed strategies (future-work prototype) --------------------------------------- *)

let test_mixed_pure_degenerate () =
  let atlas = running_atlas () in
  let profile = Strategy.compute atlas in
  let mixed = Pet_game.Mixed.of_pure profile in
  (* Degenerate distributions give the exact pure payoff. *)
  let p111 = player_index atlas "111" in
  Alcotest.(check (float 0.)) "pure expectation" 1.
    (Pet_game.Mixed.expected_payoff ~seed:1 mixed ~player:p111 Payoff.Blank);
  Alcotest.(check (list (pair int (float 1e-9)))) "strategy"
    [ (Profile.move_of profile p111, 1.0) ]
    (Pet_game.Mixed.strategy mixed ~player:p111)

let test_mixed_perturb_validation () =
  let atlas = running_atlas () in
  let mixed = Pet_game.Mixed.of_pure (Strategy.compute atlas) in
  let p011 = player_index atlas "011" in
  let fails f = match f () with exception Invalid_argument _ -> true | _ -> false in
  Alcotest.(check bool) "foreign mas rejected" true
    (fails (fun () ->
         Pet_game.Mixed.perturb mixed ~player:p011
           ~mas:(mas_index atlas "1__") ~epsilon:0.5));
  Alcotest.(check bool) "bad epsilon" true
    (fails (fun () ->
         Pet_game.Mixed.perturb mixed ~player:p011
           ~mas:(mas_index atlas "_11") ~epsilon:1.5))

let test_mixed_sampling_respects_distribution () =
  let atlas = running_atlas () in
  let mixed = Pet_game.Mixed.of_pure (Strategy.compute atlas) in
  let p111 = player_index atlas "111" in
  let m1 = mas_index atlas "1__" in
  let mixed = Pet_game.Mixed.perturb mixed ~player:p111 ~mas:m1 ~epsilon:0.5 in
  let hits = ref 0 in
  let n = 400 in
  for seed = 0 to n - 1 do
    let profile = Pet_game.Mixed.sample ~seed mixed in
    if Profile.move_of profile p111 = m1 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "frequency near 0.5" true (freq > 0.4 && freq < 0.6);
  (* Other players keep their pure move in every sample. *)
  let p011 = player_index atlas "011" in
  let all_pure =
    List.for_all
      (fun seed ->
        Profile.move_of (Pet_game.Mixed.sample ~seed mixed) p011
        = mas_index atlas "_11")
      [ 0; 1; 2; 3; 4 ]
  in
  Alcotest.(check bool) "others stay pure" true all_pure

(* The paper's future-work claim, on H-cov: when players who *could* play
   the worst forced move occasionally do, its crowd's plausible
   deniability on p12 comes back and the expected payoff of the forced
   players rises above the deterministic 5. *)
let test_mixed_raises_forced_payoff () =
  let atlas =
    Atlas.build
      (Engine.create ~backend:Engine.Bdd (Pet_casestudies.Hcov.exposure ()))
  in
  let profile = Strategy.compute atlas in
  let m4 =
    Option.get
      (Atlas.find_mas atlas
         (Partial.of_string
            (Exposure.xp (Pet_casestudies.Hcov.exposure ()))
            "0_0_1110____"))
  in
  let forced = Atlas.forced_players_of_mas atlas m4 in
  let victim = List.hd forced in
  let base =
    Pet_game.Mixed.expected_payoff ~seed:7
      (Pet_game.Mixed.of_pure profile)
      ~player:victim Payoff.Blank
  in
  Alcotest.(check (float 0.)) "deterministic payoff is 5" 5. base;
  (* Let every potential-but-elsewhere player of m4 play it 30% of the
     time. *)
  let volunteers =
    List.filter
      (fun i -> Profile.move_of profile i <> m4)
      (Atlas.players_of_mas atlas m4)
  in
  let mixed =
    List.fold_left
      (fun acc i -> Pet_game.Mixed.perturb acc ~player:i ~mas:m4 ~epsilon:0.3)
      (Pet_game.Mixed.of_pure profile)
      volunteers
  in
  let lifted =
    Pet_game.Mixed.expected_payoff ~samples:100 ~seed:7 mixed ~player:victim
      Payoff.Blank
  in
  Alcotest.(check bool)
    (Fmt.str "expected payoff rises (%.3f > 5)" lifted)
    true (lifted > 5.5)

(* --- Random-problem equilibrium property ------------------------------------------ *)

let gen_problem =
  QCheck2.Gen.(
    let gen_lit =
      let* v = int_range 1 4 in
      let* sign = bool in
      return
        (if sign then F.var (Printf.sprintf "p%d" v)
         else F.neg (F.var (Printf.sprintf "p%d" v)))
    in
    let gen_conj =
      let* lits = list_size (int_range 1 3) gen_lit in
      return (F.conj lits)
    in
    let gen_dnf =
      let* conjs = list_size (int_range 1 3) gen_conj in
      return (F.disj conjs)
    in
    let* f1 = gen_dnf in
    let* f2 = gen_dnf in
    return (f1, f2))

let atlas_of (f1, f2) =
  let xp = Universe.of_names [ "p1"; "p2"; "p3"; "p4" ] in
  let xb = Universe.of_names [ "b1"; "b2" ] in
  let e =
    Exposure.create ~xp ~xb
      ~rules:
        [ Rule.of_formula ~benefit:"b1" f1; Rule.of_formula ~benefit:"b2" f2 ]
      ()
  in
  Atlas.build (Engine.create ~backend:Engine.Bdd e)

let print_problem (f1, f2) = Fmt.str "b1:=%a b2:=%a" F.pp f1 F.pp f2

(* Theorem 4.6 as stated does not survive adversarial instances: a player
   committed by Algorithm 2 against the crowds-so-far can regret the move
   once later players pile elsewhere (see EXPERIMENTS.md). The refined
   profile — Algorithm 2 followed by best-response dynamics — is the
   testable equilibrium claim. *)
let prop_refined_strategy_is_nash =
  QCheck2.Test.make ~count:120
    ~name:"Algorithm 2 + best-response refinement reaches a Nash equilibrium"
    ~print:print_problem gen_problem (fun fs ->
      let atlas = atlas_of fs in
      Atlas.player_count atlas = 0
      || List.for_all
           (fun payoff ->
             let profile = Strategy.compute ~payoff atlas in
             let refined, converged = Equilibrium.refine profile payoff in
             converged && Equilibrium.is_nash refined payoff)
           [ Payoff.Blank; Payoff.Sm ])

let prop_forced_players_play_their_mas =
  QCheck2.Test.make ~count:120 ~name:"forced players play their single MAS"
    ~print:print_problem gen_problem (fun fs ->
      let atlas = atlas_of fs in
      Atlas.player_count atlas = 0
      ||
      let profile = Strategy.compute atlas in
      List.for_all
        (fun i ->
          match Atlas.choices_of_player atlas i with
          | [ m ] -> Profile.move_of profile i = m
          | _ -> true)
        (List.init (Atlas.player_count atlas) Fun.id))

let prop_payoff_monotone_in_crowd =
  QCheck2.Test.make ~count:120
    ~name:"payoffs are monotone when the crowd grows" ~print:print_problem
    gen_problem (fun fs ->
      let atlas = atlas_of fs in
      List.for_all
        (fun m ->
          let players = Atlas.players_of_mas atlas m in
          let rec prefixes acc = function
            | [] -> [ List.rev acc ]
            | x :: rest -> List.rev acc :: prefixes (x :: acc) rest
          in
          let values kind =
            List.map
              (fun crowd -> Payoff.value atlas kind ~mas:m ~crowd)
              (prefixes [] players)
          in
          let sorted l = List.sort compare l = l in
          sorted (values Payoff.Blank) && sorted (values Payoff.Sm))
        (List.init (Atlas.mas_count atlas) Fun.id))

let () =
  let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests) in
  Alcotest.run "pet_game"
    [
      ( "payoff",
        [
          Alcotest.test_case "running example values" `Quick
            test_po_values_running;
          Alcotest.test_case "hypothetical move" `Quick
            test_po_blank_hypothetical_move;
          Alcotest.test_case "empty crowd" `Quick test_po_empty_crowd;
          Alcotest.test_case "weighted" `Quick test_weighted_payoff;
        ] );
      ( "profile",
        [
          Alcotest.test_case "validation" `Quick test_profile_validation;
          Alcotest.test_case "crowds" `Quick test_profile_crowds;
        ] );
      ( "strategy",
        [
          Alcotest.test_case "running example" `Quick test_strategy_running;
          Alcotest.test_case "nash" `Quick test_strategy_is_nash_running;
          Alcotest.test_case "deviation found" `Quick test_deviation_found;
        ] );
      ( "deduction",
        [ Alcotest.test_case "disclosure" `Quick test_disclosure_running ] );
      ( "solidarity-refine",
        [
          Alcotest.test_case "no improvement possible" `Quick
            test_solidarity_none_on_running;
          Alcotest.test_case "refine budget" `Quick test_refine_budget;
          Alcotest.test_case "unknown valuation" `Quick
            test_profile_unknown_valuation;
        ] );
      ( "mixed",
        [
          Alcotest.test_case "pure is degenerate" `Quick
            test_mixed_pure_degenerate;
          Alcotest.test_case "perturb validation" `Quick
            test_mixed_perturb_validation;
          Alcotest.test_case "sampling distribution" `Quick
            test_mixed_sampling_respects_distribution;
          Alcotest.test_case "raises forced payoff" `Slow
            test_mixed_raises_forced_payoff;
        ] );
      qsuite "properties"
        [
          prop_refined_strategy_is_nash;
          prop_forced_players_play_their_mas;
          prop_payoff_monotone_in_crowd;
        ];
    ]
