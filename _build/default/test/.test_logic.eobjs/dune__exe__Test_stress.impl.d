test/test_stress.ml: Alcotest Fun List Pet_game Pet_logic Pet_minimize Pet_pet Pet_rules Pet_valuation
