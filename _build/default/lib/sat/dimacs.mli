(** DIMACS CNF reading and writing, for interoperability and for feeding
    the solver standard benchmark instances in tests. *)

type problem = { nvars : int; clauses : Lit.t list list }

val parse : string -> (problem, string) result
(** Parse the contents of a DIMACS CNF file. Accepts comment lines ([c]),
    a [p cnf <vars> <clauses>] header, and zero-terminated clauses. The
    declared clause count is checked against the actual one. *)

val print : problem Fmt.t

val load_into : Solver.t -> problem -> unit
(** Allocate the problem's variables in the solver and add its clauses. *)
