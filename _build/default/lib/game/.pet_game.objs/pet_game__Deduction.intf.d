lib/game/deduction.mli: Fmt Profile
