(** Property oracles: definition-level rechecks against the brute-force
    reference backend, independent of how Algorithm 1 and Algorithm 2
    computed their answers.

    - {e accuracy} (Definition 3.13): every published MAS proves exactly
      the benefits it claims under brute-force semantics, and is accurate
      for a deterministic spread of its potential players;
    - {e ≤-minimality}: no single binding of a MAS can be dropped (modulo
      the closure mode's rederivable literals) while proving the same
      benefit set — {!Pet_minimize.Algorithm1.is_minimal};
    - {e best response}: the Algorithm 2 profile refines to a profile
      where no unilateral deviation is profitable
      ({!Pet_game.Equilibrium.is_nash}); failures print the regret list. *)

val default_player_samples : int

val check :
  ?mode:Pet_minimize.Algorithm1.mode ->
  ?payoff:Pet_game.Payoff.kind ->
  ?player_samples:int ->
  Pet_rules.Exposure.t ->
  Finding.report
(** Stages: ["oracle/accurate"], ["oracle/minimal"], ["oracle/nash"]. *)
