lib/casestudies/running.ml: Lazy Pet_logic Pet_pet Pet_rules Pet_valuation
