(** The end-to-end PET workflow of Figure 3.

    The service provider publishes the rule set once ({!provider}); each
    applicant obtains a consent report ({!report_for}), picks an option
    and submits the minimized form ({!submit}); the provider verifies the
    proof, grants the benefits and archives only the minimized record;
    {!audit} later re-checks any archived record against the rules —
    satisfying full accuracy (R1), minimality (R2, only the minimized
    form is processed and stored) and informed consent (R3, the report). *)

type t

type grant = {
  form : Pet_valuation.Partial.t;  (** the minimized record, as archived *)
  benefits : string list;  (** benefits granted, benefit-universe order *)
}

val provider :
  ?backend:Pet_rules.Engine.backend ->
  ?payoff:Pet_game.Payoff.kind ->
  Pet_rules.Exposure.t ->
  t
(** Build the service-provider state: the engine, the MAS atlas and the
    equilibrium profile. Defaults: [Bdd] backend, [Blank] payoff. *)

val engine : t -> Pet_rules.Engine.t
val atlas : t -> Pet_minimize.Atlas.t
val profile : t -> Pet_game.Profile.t

val report_for : t -> Pet_valuation.Total.t -> (Report.t, string) result
(** The applicant-side consent report; [Error] explains ineligibility. *)

val submit : t -> Pet_valuation.Partial.t -> (grant, string) result
(** Provider-side processing of a (partially) filled form: reject forms
    inconsistent with the rules, otherwise grant every benefit the form
    proves. *)

val audit : t -> grant -> bool
(** Re-verify an archived record: the stored minimized form must still
    prove exactly the benefits that were granted. *)
