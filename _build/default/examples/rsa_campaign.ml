(* A benefit-campaign simulation on the RSA scenario: every eligible
   household applies through the PET; we measure what the service
   provider ends up collecting and storing compared to the legacy
   full-form process, and demonstrate the solidarity extension of
   Section 7.

   Run with: dune exec examples/rsa_campaign.exe *)

module Universe = Pet_valuation.Universe
module Total = Pet_valuation.Total
module Partial = Pet_valuation.Partial
module Exposure = Pet_rules.Exposure
module Engine = Pet_rules.Engine
module A1 = Pet_minimize.Algorithm1
module Atlas = Pet_minimize.Atlas
module Profile = Pet_game.Profile
module Payoff = Pet_game.Payoff
module Strategy = Pet_game.Strategy
module Equilibrium = Pet_game.Equilibrium
module Solidarity = Pet_game.Solidarity
module Baseline = Pet_minimize.Baseline

let () =
  let exposure = Pet_casestudies.Rsa.exposure () in
  let xp_size = Universe.size (Exposure.xp exposure) in
  let engine = Engine.create ~backend:Engine.Bdd exposure in
  Fmt.pr "Building the RSA atlas (%d predicates)...@." xp_size;
  let atlas = Atlas.build engine in
  let profile = Strategy.compute atlas in
  let profile, _converged = Equilibrium.refine profile Payoff.Blank in
  let n = Atlas.player_count atlas in
  Fmt.pr "%a@." Atlas.pp_summary atlas;

  (* Run the whole campaign through the provider workflow, archiving the
     minimized records only, then audit the archive. *)
  let provider = Pet_pet.Workflow.provider ~backend:Engine.Bdd exposure in
  let ledger = Pet_pet.Ledger.create () in
  List.iter
    (fun i ->
      let mas = (Atlas.mas atlas (Profile.move_of profile i)).A1.mas in
      match Pet_pet.Workflow.submit provider mas with
      | Ok grant -> ignore (Pet_pet.Ledger.record ledger grant)
      | Error m -> failwith m)
    (List.init n Fun.id);
  let legacy = n * xp_size in
  Fmt.pr "@.legacy process stores %d predicate values for %d households@."
    legacy n;
  Fmt.pr "the PET archive stores %d (%.1f%% less)@."
    (Pet_pet.Ledger.stored_values ledger)
    (100.
    *. float_of_int (legacy - Pet_pet.Ledger.stored_values ledger)
    /. float_of_int legacy);
  Fmt.pr "archive audit: %d record(s) failing@."
    (List.length (Pet_pet.Ledger.audit ledger provider));

  (* The baseline minimizer claims more privacy than it delivers.
     (Baseline runs on realistic applicants; the atlas also counts the
     unrealistic look-alikes the attacker must consider.) *)
  let households =
    List.filteri (fun k _ -> k < 200) (Exposure.eligible exposure)
  in
  let claimed, leaked =
    List.fold_left
      (fun (claimed, leaked) v ->
        let r = Baseline.minimize engine v in
        ( claimed + r.Baseline.claimed_blanks,
          leaked + Baseline.rule_level_leak engine r.Baseline.disclosed ))
      (0, 0) households
  in
  Fmt.pr
    "@.baseline (PST 2012) on the first %d households: claims %d hidden \
     values, %d of them are deducible from the rules alone@."
    (List.length households) claimed leaked;

  (* Solidarity: which moves would gain privacy if a few volunteers
     joined them? *)
  Fmt.pr "@.solidarity opportunities (Section 7):@.";
  let found = ref 0 in
  for m = 0 to Atlas.mas_count atlas - 1 do
    if !found < 5 then
      match Solidarity.improve profile ~mas:m with
      | Some r ->
        incr found;
        Fmt.pr "  %s: %a@."
          (Partial.to_string (Atlas.mas atlas m).A1.mas)
          Solidarity.pp r
      | None -> ()
  done;
  if !found = 0 then Fmt.pr "  none — every move is already at its maximum@."
