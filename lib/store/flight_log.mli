(** The flight recorder's on-disk segment family.

    [flight-NNNNNN.log] files in the store's data directory, CRC-32
    framed with {!Record} like the WAL, but with telemetry durability:
    appends flush and never fsync, the last segment's tail may be torn
    (readers truncate it silently, the kill -9 signature), and
    corruption in an older segment is reported and skipped rather than
    fatal. Sealed segments beyond the [keep] retention knob are deleted
    on rotation, bounding disk usage.

    Appends are mutex-guarded so the {!Pet_net} writer domain, the log
    tee and exit-path dumps can share one handle. *)

type t

val default_segment_bytes : int
(** 1 MiB. *)

val default_keep : int
(** 8 sealed segments. *)

val open_dir : ?segment_bytes:int -> ?keep:int -> string -> (t, string) result
(** Open [dir] for appending; writing starts a fresh segment numbered
    after the highest existing one (sealed history is never appended
    to). The directory must exist — it is the store's data dir. *)

val append : t -> string -> unit
(** Frame, write and flush one record; seals the segment past
    [segment_bytes] and applies retention. No fsync. *)

val append_batch : t -> string list -> unit
(** Like {!append} with a single flush for the batch. *)

val close : t -> unit

val stats : t -> int * int
(** (records, framed bytes) appended over this handle's lifetime. *)

val name : int -> string
(** [name n] is ["flight-%06d.log"]. *)

val parse_name : string -> int option

(** {1 Reading} *)

type record = { file : string; offset : int; payload : string }
(** [offset] is the byte offset of the record's frame header within
    [file] — the same coordinate system as [pet store inspect] and
    [pet audit] damage reports. *)

type damage = { dfile : string; doffset : int; dreason : string }

val fold :
  string ->
  init:'a ->
  ('a -> record -> 'a) ->
  ('a * damage list, string) result
(** Fold over every readable record in segment order. A torn tail on
    the last segment is silently truncated; torn or corrupt frames
    elsewhere are reported in the damage list and scanning resumes at
    the next segment. *)
