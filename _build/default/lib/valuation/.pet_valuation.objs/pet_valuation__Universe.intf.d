lib/valuation/universe.mli: Fmt
