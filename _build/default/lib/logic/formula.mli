(** Classical Propositional Logic formulas over named variables.

    This is the language [L(AtProp)] of Definition 3.1 in the paper:
    [A := 0 | 1 | p | not A | A or A | A and A | A -> A] extended with
    the equivalence connective used by decision rules. *)

type t =
  | True
  | False
  | Var of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Iff of t * t

val equal : t -> t -> bool
val compare : t -> t -> int

(** {1 Smart constructors}

    These perform local simplification with the logical constants so that
    mechanically-built formulas stay readable; they never change the
    semantics. *)

val var : string -> t
val neg : t -> t
val ( && ) : t -> t -> t
val ( || ) : t -> t -> t
val ( => ) : t -> t -> t
val ( <=> ) : t -> t -> t

val conj : t list -> t
(** [conj fs] is the conjunction of [fs]; [True] when empty. *)

val disj : t list -> t
(** [disj fs] is the disjunction of [fs]; [False] when empty. *)

(** {1 Queries} *)

val eval : (string -> bool) -> t -> bool
(** [eval rho f] evaluates [f] under the total assignment [rho].
    @raise Not_found (or whatever [rho] raises) on unknown variables. *)

val vars : t -> string list
(** Free variables, sorted and without duplicates. *)

val size : t -> int
(** Number of connectives and atoms. *)

val map_vars : (string -> t) -> t -> t
(** [map_vars s f] substitutes [s x] for every variable [x] of [f]. *)

(** {1 Semantics by enumeration}

    Reference semantics used by the test oracle. Exponential in the number
    of variables; intended for formulas with at most ~20 variables. *)

val all_assignments : string list -> (string -> bool) list
(** All total assignments over the given variables. The list of variables
    must have no duplicates. *)

val tautology : t -> bool
val satisfiable : t -> bool
val entails : t -> t -> bool
(** [entails f g] holds iff every model of [f] over [vars f @ vars g]
    satisfies [g]. *)

val equivalent : t -> t -> bool

(** {1 Printing} *)

val pp : t Fmt.t
(** Fully parenthesis-minimal printing, with [!], [&], [|], [->], [<->]. *)

val to_string : t -> string
