(* The PET command-line interface: validate rule files, minimize a user's
   form, produce consent reports, export the paper's figures and simulate
   whole populations. *)

module Universe = Pet_valuation.Universe
module Total = Pet_valuation.Total
module Partial = Pet_valuation.Partial
module Exposure = Pet_rules.Exposure
module Engine = Pet_rules.Engine
module Spec = Pet_rules.Spec
module A1 = Pet_minimize.Algorithm1
module Atlas = Pet_minimize.Atlas
module Lattice = Pet_minimize.Lattice
module Dot = Pet_minimize.Dot
module Profile = Pet_game.Profile
module Payoff = Pet_game.Payoff
module Strategy = Pet_game.Strategy
module Equilibrium = Pet_game.Equilibrium
module Solidarity = Pet_game.Solidarity
module Report = Pet_pet.Report
module Json = Pet_pet.Json
module Workflow = Pet_pet.Workflow

open Cmdliner

(* --- Sources: a rule file or a built-in case study ------------------------ *)

let load_exposure source =
  match source with
  | "running" -> Ok (Pet_casestudies.Running.exposure ())
  | "hcov" -> Ok (Pet_casestudies.Hcov.exposure ())
  | "rsa" -> Ok (Pet_casestudies.Rsa.exposure ())
  | "loan" -> Ok (Pet_casestudies.Loan.exposure ())
  | path -> (
    match In_channel.with_open_text path In_channel.input_all with
    | contents -> Spec.parse contents
    | exception Sys_error m -> Error m)

let source_arg =
  let doc =
    "Rule file to load, or one of the built-in case studies: $(b,running) \
     (the paper's district-council example), $(b,hcov) (complementary \
     health coverage, Section 5), $(b,rsa) (active solidarity income, \
     Section 5) or $(b,loan) (consumer-loan underwriting)."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"RULES" ~doc)

let backend_names =
  [
    ("brute", Engine.Brute);
    ("sat", Engine.Sat);
    ("bdd", Engine.Bdd);
    ("compiled", Engine.Compiled);
  ]

let backend_arg =
  let doc =
    "Entailment backend: $(b,brute), $(b,sat), $(b,bdd) or $(b,compiled)."
  in
  Arg.(value & opt (enum backend_names) Engine.Bdd & info [ "backend" ] ~doc)

let payoff_arg =
  let payoffs = [ ("blank", Payoff.Blank); ("sm", Payoff.Sm) ] in
  let doc = "Privacy payoff function: $(b,blank) (PO_blank) or $(b,sm) (PO_SM)." in
  Arg.(value & opt (enum payoffs) Payoff.Blank & info [ "payoff" ] ~doc)

let weights_arg =
  let doc =
    "Per-predicate sensitivity weight, e.g. $(b,--weight p12=5). \
     Repeatable; unlisted predicates weigh 1. Selects the weighted \
     PO_blank of Section 4.2 (overrides $(b,--payoff))."
  in
  let weight_conv =
    let parse s =
      match String.index_opt s '=' with
      | Some i -> (
        let name = String.sub s 0 i in
        let value = String.sub s (i + 1) (String.length s - i - 1) in
        match float_of_string_opt value with
        | Some w when w >= 0. -> Ok (name, w)
        | _ -> Error (`Msg ("invalid weight in " ^ s)))
      | None -> Error (`Msg ("expected PREDICATE=WEIGHT, got " ^ s))
    in
    let print ppf (name, w) = Fmt.pf ppf "%s=%g" name w in
    Arg.conv (parse, print)
  in
  Arg.(value & opt_all weight_conv [] & info [ "weight" ] ~docv:"P=W" ~doc)

(* Combine --payoff and --weight into the effective payoff function. *)
let effective_payoff exposure payoff weights =
  match weights with
  | [] -> Ok payoff
  | _ -> (
    match
      List.find_opt
        (fun (name, _) -> not (Universe.mem (Exposure.xp exposure) name))
        weights
    with
    | Some (name, _) -> Error ("--weight: unknown predicate " ^ name)
    | None ->
      let weight name =
        match List.assoc_opt name weights with Some w -> w | None -> 1.0
      in
      Ok (Payoff.Weighted weight))

let mode_arg =
  let modes =
    [ ("chain", A1.Chain); ("entail", A1.Entail); ("exact", A1.Exact) ]
  in
  let doc =
    "MAS closure mode: $(b,chain) (the paper's forward chaining), \
     $(b,entail) (full logical closure) or $(b,exact) (set-inclusion \
     minimality, exponential)."
  in
  Arg.(value & opt (enum modes) A1.Chain & info [ "mode" ] ~doc)

let valuation_arg =
  let doc = "The fully filled form, e.g. 011 (one character per predicate)." in
  Arg.(
    required
    & opt (some string) None
    & info [ "v"; "valuation" ] ~docv:"BITS" ~doc)

let json_arg =
  let doc = "Emit machine-readable JSON instead of text." in
  Arg.(value & flag & info [ "json" ] ~doc)

let with_exposure source f =
  match load_exposure source with
  | Error m -> `Error (false, m)
  | Ok exposure -> f exposure

let parse_valuation exposure s f =
  match Total.of_string (Exposure.xp exposure) s with
  | v -> f v
  | exception Invalid_argument m -> `Error (false, m)

(* Turn the library's [Invalid_argument] diagnostics (oversized forms,
   malformed valuations) into clean CLI errors. *)
let guarded f = match f () with r -> r | exception Invalid_argument m -> `Error (false, m)

(* --- check ------------------------------------------------------------------ *)

let check_cmd =
  let source_opt_arg =
    let doc =
      "Rule file to load, or one of the built-in case studies ($(b,running), \
       $(b,hcov), $(b,rsa), $(b,loan)). Optional when $(b,--seeds) or \
       $(b,--fuzz) is given."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"RULES" ~doc)
  in
  let seeds_arg =
    let doc =
      "Run the correctness harness — differential testing of the brute, \
       sat and bdd backends, metamorphic transformations and \
       definition-level oracles — on randomly generated problems, one per \
       seed. $(docv) is a comma-separated list of integers and inclusive \
       ranges, e.g. $(b,1-50) or $(b,3,7,20-25). Failures are shrunk to a \
       minimal rule-DSL reproducer."
    in
    Arg.(value & opt (some string) None & info [ "seeds" ] ~docv:"SPEC" ~doc)
  in
  let fuzz_arg =
    let doc =
      "Feed $(docv) mutated, truncated and malformed protocol lines into \
       an in-process collection service and verify every one gets a \
       well-formed response — a result or a structured error, never a \
       crash."
    in
    Arg.(value & opt (some int) None & info [ "fuzz" ] ~docv:"N" ~doc)
  in
  let fuzz_seed_arg =
    let doc = "Seed for the $(b,--fuzz) and $(b,--fuzz-store) mutation streams." in
    Arg.(value & opt int 0 & info [ "fuzz-seed" ] ~docv:"SEED" ~doc)
  in
  let fuzz_store_arg =
    let doc =
      "Generate $(docv) write-ahead logs, corrupt them (bit flips, \
       truncations, zeroed ranges, spliced bytes) and verify the \
       durable store's recovery contract: recovery never crashes, \
       in-place damage yields a clean prefix, losses are localized with \
       byte offsets, and the log stays appendable."
    in
    Arg.(value & opt (some int) None & info [ "fuzz-store" ] ~docv:"N" ~doc)
  in
  let fuzz_corpus_arg =
    let doc =
      "Drive $(docv) tenant-lifecycle requests from the realistic form \
       corpus — publishes, hot rule updates, sessions, reports, \
       submissions and hostile tenant traffic — through an in-process \
       service, and verify the multi-tenant contract: every line gets a \
       structured response, oversized forms fail their background build \
       cleanly, and sessions pinned to a version keep answering \
       byte-identically across hot swaps."
    in
    Arg.(value & opt (some int) None & info [ "fuzz-corpus" ] ~docv:"N" ~doc)
  in
  let fuzz_consent_arg =
    let doc =
      "Run $(docv) consent-lifecycle rounds: drive a durable service \
       through submissions, revocations and expiries, kill it without \
       shutdown (torn active segment), and verify that the offline \
       compliance audit passes the healthy log, recovery resurrects no \
       tombstone, and a forged post-revocation grant appended behind the \
       service's back is caught with a byte offset."
    in
    Arg.(value & opt (some int) None & info [ "fuzz-consent" ] ~docv:"N" ~doc)
  in
  let samples_arg =
    let doc = "Differential entailment samples per problem." in
    Arg.(
      value
      & opt int Pet_check.Diff.default_samples
      & info [ "samples" ] ~docv:"N" ~doc)
  in
  let full_arg =
    let doc =
      "With $(i,RULES): run the full correctness harness on the loaded \
       problem instead of only validating it. The oracles recheck every \
       published MAS against brute force, so this is exponential in the \
       form size — intended for small and medium problems."
    in
    Arg.(value & flag & info [ "full" ] ~doc)
  in
  let validate exposure =
    let xp = Exposure.xp exposure in
    Fmt.pr "%a@." Spec.print exposure;
    Fmt.pr "# %d predicates, %d benefits, %d rules, %d constraints@."
      (Universe.size xp)
      (Universe.size (Exposure.xb exposure))
      (List.length (Exposure.rules exposure))
      (List.length (Exposure.constraints exposure));
    let used =
      List.concat_map
        (fun (r : Pet_rules.Rule.t) -> Pet_logic.Dnf.vars r.dnf)
        (Exposure.rules exposure)
    in
    List.iter
      (fun p ->
        if not (List.mem p used) then
          Fmt.pr "# warning: predicate %s is collected but never used@." p)
      (Universe.names xp);
    Fmt.pr "# %d realistic valuations, %d eligible@."
      (List.length (Exposure.realistic exposure))
      (List.length (Exposure.eligible exposure))
  in
  (* A harness crash (e.g. the atlas refusing a 30-predicate form) is
     itself a reportable finding, not a CLI backtrace. *)
  let guarded_report f =
    match f () with
    | r -> r
    | exception Invalid_argument m ->
      {
        Pet_check.Finding.checks = 1;
        findings = [ { Pet_check.Finding.stage = "harness/crash"; detail = m } ];
      }
  in
  let run source seeds fuzz fuzz_store fuzz_corpus fuzz_consent fuzz_seed
      samples payoff full =
    let config = { Pet_check.Harness.default_config with samples; payoff } in
    let failures = ref 0 in
    let print_report ~label ?exposure (r : Pet_check.Finding.report) =
      if Pet_check.Finding.ok r then Fmt.pr "%s: ok (%d checks)@." label r.checks
      else begin
        incr failures;
        Fmt.pr "%s: FAILED (%d of %d checks)@." label
          (List.length r.findings)
          r.checks;
        List.iter (fun f -> Fmt.pr "  %a@." Pet_check.Finding.pp f) r.findings;
        Option.iter
          (fun e ->
            match Pet_check.Harness.reproduce ~config e with
            | None -> ()
            | Some (_, dsl) ->
              Fmt.pr "  minimal reproducer:@.";
              List.iter
                (fun l -> if String.trim l <> "" then Fmt.pr "    %s@." l)
                (String.split_on_char '\n' dsl))
          exposure
      end
    in
    let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
    let result =
      if
        source = None && seeds = None && fuzz = None && fuzz_store = None
        && fuzz_corpus = None && fuzz_consent = None
      then
        Error
          ( true,
            "expected a RULES source, --seeds, --fuzz, --fuzz-store, \
             --fuzz-corpus or --fuzz-consent" )
      else
        let* () =
          match source with
          | None -> Ok ()
          | Some src -> (
            match load_exposure src with
            | Error m -> Error (false, m)
            | Ok exposure ->
              if full then
                print_report ~label:src ~exposure
                  (guarded_report (fun () ->
                       Pet_check.Harness.check_exposure ~config exposure))
              else validate exposure;
              Ok ())
        in
        let* () =
          match seeds with
          | None -> Ok ()
          | Some spec -> (
            match Pet_check.Harness.seeds_of_string spec with
            | Error m -> Error (false, "--seeds: " ^ m)
            | Ok seeds ->
              List.iter
                (fun seed ->
                  let exposure, report =
                    Pet_check.Harness.run_seed ~config seed
                  in
                  print_report
                    ~label:(Printf.sprintf "seed %d" seed)
                    ~exposure report)
                seeds;
              Ok ())
        in
        let* () =
          match fuzz with
          | None -> Ok ()
          | Some count ->
            let stats = Pet_check.Fuzz.run ~seed:fuzz_seed ~count () in
            Fmt.pr "%a@." Pet_check.Fuzz.pp stats;
            if
              stats.crashes <> []
              || stats.invalid_responses > 0
              || stats.cursor_mismatches <> []
              || stats.boundary_failures <> []
            then incr failures;
            Ok ()
        in
        let* () =
          match fuzz_store with
          | None -> Ok ()
          | Some count ->
            let stats = Pet_check.Fuzz.run_store ~seed:fuzz_seed ~count () in
            Fmt.pr "%a@." Pet_check.Fuzz.pp_store stats;
            if stats.store_violations <> [] then incr failures;
            Ok ()
        in
        let* () =
          match fuzz_corpus with
          | None -> Ok ()
          | Some count ->
            let stats = Pet_check.Fuzz.run_corpus ~seed:fuzz_seed ~count () in
            Fmt.pr "%a@." Pet_check.Fuzz.pp_corpus stats;
            if
              stats.corpus_crashes <> []
              || stats.corpus_invalid > 0
              || stats.swap_mismatches <> []
              || stats.corpus_build_failures = 0
            then incr failures;
            Ok ()
        in
        let* () =
          match fuzz_consent with
          | None -> Ok ()
          | Some count ->
            let stats = Pet_check.Fuzz.run_consent ~seed:fuzz_seed ~count () in
            Fmt.pr "%a@." Pet_check.Fuzz.pp_consent stats;
            if
              stats.consent_violations <> []
              || (count > 0 && stats.audits_passed = 0)
            then incr failures;
            Ok ()
        in
        if !failures = 0 then Ok ()
        else
          Error
            ( false,
              Printf.sprintf "%d check run%s failed" !failures
                (if !failures = 1 then "" else "s") )
    in
    match result with Ok () -> `Ok () | Error e -> `Error e
  in
  let doc =
    "Validate a rule file and report basic statistics; with $(b,--seeds), \
     $(b,--fuzz) or $(b,--full), run the self-check harness: differential \
     testing across the four entailment backends, metamorphic \
     transformations, definition-level oracles for accuracy, minimality \
     and Nash equilibria, with failing problems shrunk to minimal \
     reproducers, and protocol fuzzing of the collection service."
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      ret
        (const run $ source_opt_arg $ seeds_arg $ fuzz_arg $ fuzz_store_arg
       $ fuzz_corpus_arg $ fuzz_consent_arg $ fuzz_seed_arg
       $ samples_arg $ payoff_arg $ full_arg))

(* --- minimize ----------------------------------------------------------------- *)

let minimize_cmd =
  let run source bits backend mode =
    with_exposure source (fun exposure ->
        parse_valuation exposure bits (fun v ->
            let engine = Engine.create ~backend exposure in
            match A1.mas_of ~mode engine v with
            | choices ->
              List.iter
                (fun (c : A1.choice) ->
                  Fmt.pr "%a  proves {%a}@." Partial.pp c.A1.mas
                    Fmt.(list ~sep:(any ", ") string)
                    c.A1.benefits)
                choices;
              `Ok ()
            | exception Invalid_argument m -> `Error (false, m)))
  in
  let doc =
    "Compute the minimal accurate subvaluations (Algorithm 1) of a fully \
     filled form."
  in
  Cmd.v
    (Cmd.info "minimize" ~doc)
    Term.(ret (const run $ source_arg $ valuation_arg $ backend_arg $ mode_arg))

(* --- inform -------------------------------------------------------------------- *)

let inform_cmd =
  let run source bits backend payoff weights json =
    with_exposure source (fun exposure ->
        match effective_payoff exposure payoff weights with
        | Error m -> `Error (false, m)
        | Ok payoff ->
          parse_valuation exposure bits (fun v ->
              guarded @@ fun () ->
              let provider = Workflow.provider ~backend ~payoff exposure in
              match Workflow.report_for provider v with
              | Error m -> `Error (false, m)
              | Ok report ->
                if json then
                  Fmt.pr "%s@." (Json.to_string (Report.to_json report))
                else Fmt.pr "%a@." Report.pp report;
                `Ok ()))
  in
  let doc =
    "Produce the informed-consent report for an applicant: their choices \
     (MAS), the privacy payoff of each, what is revealed and what an \
     attacker deduces anyway, and the recommended choice (Algorithm 2)."
  in
  Cmd.v
    (Cmd.info "inform" ~doc)
    Term.(
      ret
        (const run $ source_arg $ valuation_arg $ backend_arg $ payoff_arg
       $ weights_arg $ json_arg))

(* --- atlas ----------------------------------------------------------------------- *)

let atlas_cmd =
  let run source backend payoff =
    with_exposure source (fun exposure ->
        guarded @@ fun () ->
        let engine = Engine.create ~backend exposure in
        let atlas = Atlas.build engine in
        Fmt.pr "%a@." Atlas.pp_summary atlas;
        let profile = Strategy.compute ~payoff atlas in
        Fmt.pr "@.%-20s %9s %8s %8s %9s@." "MAS" "potential" "forced"
          "plays" "payoff";
        for m = 0 to Atlas.mas_count atlas - 1 do
          let crowd = Profile.crowd profile m in
          Fmt.pr "%-20s %9d %8d %8d %9.0f@."
            (Partial.to_string (Atlas.mas atlas m).A1.mas)
            (List.length (Atlas.players_of_mas atlas m))
            (List.length (Atlas.forced_players_of_mas atlas m))
            (List.length crowd)
            (Payoff.value atlas payoff ~mas:m ~crowd)
        done;
        `Ok ())
  in
  let doc =
    "Build the full valuation/MAS bipartite graph and print the Table-2 \
     and Table-3 style statistics."
  in
  Cmd.v
    (Cmd.info "atlas" ~doc)
    Term.(ret (const run $ source_arg $ backend_arg $ payoff_arg))

(* --- graph ------------------------------------------------------------------------- *)

let graph_cmd =
  let figure_arg =
    let doc =
      "Which figure to export: $(b,lattice) (Figure 1) or $(b,choices) \
       (Figure 2, requires --valuation)."
    in
    Arg.(
      value
      & opt (enum [ ("lattice", `Lattice); ("choices", `Choices) ]) `Lattice
      & info [ "figure" ] ~doc)
  in
  let opt_valuation =
    Arg.(value & opt (some string) None & info [ "v"; "valuation" ] ~docv:"BITS")
  in
  let run source backend figure bits =
    with_exposure source (fun exposure ->
        guarded @@ fun () ->
        let engine = Engine.create ~backend exposure in
        let atlas = Atlas.build engine in
        match figure with
        | `Lattice -> (
          match Lattice.build atlas with
          | lattice ->
            print_string (Dot.lattice lattice);
            `Ok ()
          | exception Invalid_argument m -> `Error (false, m))
        | `Choices -> (
          match bits with
          | None -> `Error (true, "--figure choices requires --valuation")
          | Some bits ->
            parse_valuation exposure bits (fun v ->
                match Dot.choices atlas v with
                | dot ->
                  print_string dot;
                  `Ok ()
                | exception Invalid_argument m -> `Error (false, m))))
  in
  let doc = "Export the paper's figures as Graphviz (DOT) graphs." in
  Cmd.v
    (Cmd.info "graph" ~doc)
    Term.(
      ret (const run $ source_arg $ backend_arg $ figure_arg $ opt_valuation))

(* --- simulate ------------------------------------------------------------------------ *)

let simulate_cmd =
  let solidarity_arg =
    let doc = "Also look for solidarity improvements (Section 7)." in
    Arg.(value & flag & info [ "solidarity" ] ~doc)
  in
  let run source backend payoff solidarity =
    with_exposure source (fun exposure ->
        guarded @@ fun () ->
        let engine = Engine.create ~backend exposure in
        let atlas = Atlas.build engine in
        let profile = Strategy.compute ~payoff atlas in
        let refined, converged = Equilibrium.refine profile payoff in
        let n = Atlas.player_count atlas in
        let xp_size = Universe.size (Exposure.xp exposure) in
        let blanks =
          List.fold_left
            (fun acc i ->
              acc
              + Partial.blank_count
                  (Atlas.mas atlas (Profile.move_of refined i)).A1.mas)
            0 (List.init n Fun.id)
        in
        Fmt.pr "population: %d eligible valuations@." n;
        Fmt.pr "equilibrium: Algorithm 2%s, Nash: %b@."
          (if Profile.equal profile refined then ""
           else " + best-response refinement")
          (converged && Equilibrium.is_nash refined payoff);
        Fmt.pr "average minimization: %.1f%% of the form left blank@."
          (100. *. float_of_int blanks /. float_of_int (n * xp_size));
        if solidarity then
          for m = 0 to Atlas.mas_count atlas - 1 do
            match Solidarity.improve refined ~mas:m with
            | Some r -> Fmt.pr "solidarity: %a@." Solidarity.pp r
            | None -> ()
          done;
        `Ok ())
  in
  let doc =
    "Simulate the whole eligible population playing the game and report \
     aggregate privacy statistics."
  in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(
      ret (const run $ source_arg $ backend_arg $ payoff_arg $ solidarity_arg))

(* --- audit ------------------------------------------------------------------------ *)

let audit_cmd =
  (* [pet audit <data-dir>]: offline WAL compliance replay — prove that
     everything a (possibly crashed) durable service left on disk is
     minimal, accurate and respects every revocation and expiry horizon
     in the log itself. Exit 1 on violations so CI can gate on it. *)
  let run_store ~json dir =
    match Pet_audit.Audit.run dir with
    | Error m -> `Error (false, m)
    | Ok report ->
      if json then
        print_endline (Json.to_string (Pet_audit.Audit.to_json report))
      else Pet_audit.Audit.pp Format.std_formatter report;
      if Pet_audit.Audit.pass report then `Ok ()
      else `Error (false, "compliance audit failed")
  in
  let run source json =
    if Sys.file_exists source && Sys.is_directory source then
      run_store ~json source
    else
    with_exposure source (fun exposure ->
        match Pet_minimize.Symbolic.build exposure with
        | exception Invalid_argument m -> `Error (false, m)
        | sym ->
          let stats = Pet_minimize.Symbolic.stats sym in
          let xp = Exposure.xp exposure in
          Fmt.pr "%d MAS over %d valuations@."
            (Pet_minimize.Symbolic.mas_count sym)
            (Pet_minimize.Symbolic.valuation_count sym);
          Fmt.pr "@.%-24s %8s %18s@." "predicate" "in MAS" "players needing it";
          let never = ref [] in
          List.iter
            (fun name ->
              let needing =
                List.filter
                  (fun (s : Pet_minimize.Symbolic.mas_stats) ->
                    Partial.defines s.mas name)
                  stats
              in
              let players =
                List.fold_left
                  (fun acc (s : Pet_minimize.Symbolic.mas_stats) ->
                    acc + s.potential)
                  0 needing
              in
              if needing = [] then never := name :: !never;
              Fmt.pr "%-24s %8d %18d@." name (List.length needing) players)
            (Universe.names xp);
          (match List.rev !never with
          | [] -> Fmt.pr "@.every predicate is needed by some minimized proof@."
          | never ->
            Fmt.pr
              "@.over-collection: %d of %d predicates are never required by \
               any minimized proof:@.  %s@."
              (List.length never) (Universe.size xp)
              (String.concat ", " never));
          `Ok ())
  in
  let doc =
    "Audit a rule set for over-collection, or — given a data directory — \
     replay its write-ahead log offline and prove compliance: every \
     persisted record is a minimal accurate form, no record outlives its \
     revocation or expiry horizon, nothing resurrects a tombstone, and \
     no raw valuation ever reached disk. Violations are reported with \
     their byte offsets; the exit status is nonzero if any are found."
  in
  Cmd.v (Cmd.info "audit" ~doc) Term.(ret (const run $ source_arg $ json_arg))

(* --- fill ------------------------------------------------------------------------- *)

let form_of_source = function
  | "running" -> Ok (Pet_casestudies.Running.form ())
  | "hcov" -> Ok (Pet_casestudies.Hcov.form ())
  | "rsa" -> Ok (Pet_casestudies.Rsa.form ())
  | "loan" -> Ok (Pet_casestudies.Loan.form ())
  | other ->
    Error
      (other
     ^ ": typed questionnaires exist for the built-in case studies only \
        (running, hcov, rsa, loan)")

let parse_answer (question : Pet_pet.Form.question) raw =
  let raw = String.trim raw in
  match question.Pet_pet.Form.kind with
  | Pet_pet.Form.Kint -> (
    match int_of_string_opt raw with
    | Some n -> Ok (Pet_pet.Form.Aint n)
    | None -> Error (Printf.sprintf "%s: expected a number" question.key))
  | Pet_pet.Form.Kbool -> (
    match String.lowercase_ascii raw with
    | "y" | "yes" | "true" | "1" -> Ok (Pet_pet.Form.Abool true)
    | "n" | "no" | "false" | "0" -> Ok (Pet_pet.Form.Abool false)
    | _ -> Error (Printf.sprintf "%s: expected yes or no" question.key))
  | Pet_pet.Form.Kchoice options ->
    if List.mem raw options then Ok (Pet_pet.Form.Achoice raw)
    else
      Error
        (Printf.sprintf "%s: expected one of: %s" question.key
           (String.concat ", " options))

(* Answers come either from stdin lines "key = value" (piped mode) or
   from interactive prompts when stdin is a terminal. *)
let read_answers form =
  let questions = Pet_pet.Form.questions form in
  let interactive = Unix.isatty Unix.stdin in
  if interactive then
    List.fold_left
      (fun acc (q : Pet_pet.Form.question) ->
        match acc with
        | Error _ as e -> e
        | Ok answers ->
          let rec ask () =
            Fmt.pr "%s @?" q.text;
            match In_channel.input_line stdin with
            | None -> Error "unexpected end of input"
            | Some line -> (
              match parse_answer q line with
              | Ok a -> Ok ((q.key, a) :: answers)
              | Error m ->
                Fmt.pr "%s@." m;
                ask ())
          in
          ask ())
      (Ok []) questions
  else begin
    let rec go acc =
      match In_channel.input_line stdin with
      | None -> Ok acc
      | Some line -> (
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go acc
        else
          match String.index_opt line '=' with
          | None -> Error (Printf.sprintf "expected KEY = VALUE, got %S" line)
          | Some i -> (
            let key = String.trim (String.sub line 0 i) in
            let raw = String.sub line (i + 1) (String.length line - i - 1) in
            match
              List.find_opt
                (fun (q : Pet_pet.Form.question) -> q.key = key)
                questions
            with
            | None -> Error (Printf.sprintf "unknown question %S" key)
            | Some q -> (
              match parse_answer q raw with
              | Ok a -> go ((key, a) :: acc)
              | Error m -> Error m)))
    in
    go []
  end

let fill_cmd =
  let run source payoff weights json =
    match form_of_source source with
    | Error m -> `Error (false, m)
    | Ok form -> (
      let exposure = Pet_pet.Form.exposure form in
      match effective_payoff exposure payoff weights with
      | Error m -> `Error (false, m)
      | Ok payoff -> (
        match read_answers form with
        | Error m -> `Error (false, m)
        | Ok answers -> (
          match Pet_pet.Form.valuation form answers with
          | Error m -> `Error (false, m)
          | Ok v -> (
            guarded @@ fun () ->
            let provider = Workflow.provider ~payoff exposure in
            match Workflow.report_for provider v with
            | Error m -> `Error (false, m)
            | Ok report ->
              if json then
                Fmt.pr "%s@." (Json.to_string (Report.to_json report))
              else Fmt.pr "%a@." Report.pp report;
              `Ok ()))))
  in
  let doc =
    "Fill a built-in case study's typed questionnaire (interactively, or \
     from KEY = VALUE lines on stdin) and get the consent report. The \
     raw answers are compiled to predicates and immediately discarded."
  in
  Cmd.v
    (Cmd.info "fill" ~doc)
    Term.(ret (const run $ source_arg $ payoff_arg $ weights_arg $ json_arg))

(* --- serve ------------------------------------------------------------------------ *)

module Log = Pet_obs.Log

(* Structured-log field builders (the closed Trace.value type keeps
   valuations out of log lines by construction). *)
let fstr k v = (k, Pet_obs.Trace.String v)
let fint k v = (k, Pet_obs.Trace.Int v)

let contains_sub s sub =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

(* Tee structured log lines into a flight journal (alongside the
   default standard-error sink); returns the encoder so the exit path
   can reuse its sequence numbers. *)
let flight_log_tee fl =
  let enc = Pet_obs.Flight.create () in
  Log.set_sink (fun line ->
      prerr_endline line;
      try
        Pet_store.Flight_log.append fl
          (Pet_obs.Flight.log_event enc ~now:(Pet_obs.Metrics.now ()) line)
      with Sys_error _ -> ());
  enc

let serve_cmd =
  let serve_backend_arg =
    let doc =
      "Entailment backend for compiled engines: $(b,brute), $(b,sat), \
       $(b,bdd) or $(b,compiled). Defaults to $(b,compiled), or to \
       $(b,bdd) under $(b,--no-compiled)."
    in
    Arg.(
      value
      & opt (some (enum backend_names)) None
      & info [ "backend" ] ~docv:"BACKEND" ~doc)
  in
  let compiled_arg =
    let on =
      Arg.info [ "compiled" ]
        ~doc:
          "Enable the compiled fast path (the default): published forms \
           small enough to tabulate answer $(b,get_report) from a \
           per-valuation table of rendered responses, and common request \
           shapes take an AST-free decoder. Responses are byte-identical \
           with or without it."
    in
    let off =
      Arg.info [ "no-compiled" ]
        ~doc:
          "Disable the compiled fast path: every request takes the full \
           JSON decoder and report pipeline (and the engine backend \
           defaults to $(b,bdd)). For A/B checks and benchmarks."
    in
    Arg.(value & vflag true [ (true, on); (false, off) ])
  in
  let deterministic_arg =
    let doc =
      "Use a logical clock (advancing 1s per clock read) instead of wall \
       time, making latencies and expiry reproducible for testing."
    in
    Arg.(value & flag & info [ "deterministic" ] ~doc)
  in
  let cache_arg =
    let doc = "Capacity of the compiled-engine LRU cache." in
    Arg.(value & opt int 16 & info [ "cache" ] ~docv:"N" ~doc)
  in
  let ttl_arg =
    let doc = "Session idle timeout in seconds (0 disables expiry)." in
    Arg.(value & opt float 3600. & info [ "ttl" ] ~docv:"SECONDS" ~doc)
  in
  let tenant_quota_arg =
    let doc =
      "Default cap on concurrently active sessions per tenant (0 = \
       unlimited). A tenant's own $(b,quota) parameter on publish_rules \
       or update_rules overrides it."
    in
    Arg.(value & opt int 0 & info [ "tenant-quota" ] ~docv:"N" ~doc)
  in
  let data_dir_arg =
    let doc =
      "Persist every rule set, session transition and grant to a \
       write-ahead log in $(docv), and recover the pre-crash state from \
       it on start. Without it the service is purely in-memory."
    in
    Arg.(value & opt (some string) None & info [ "data-dir" ] ~docv:"DIR" ~doc)
  in
  let no_fsync_arg =
    let doc =
      "Do not fsync each append (benchmarks only: an OS crash may then \
       lose acknowledged records; a process crash still cannot)."
    in
    Arg.(value & flag & info [ "no-fsync" ] ~doc)
  in
  let metrics_interval_arg =
    let doc =
      "Every $(docv) handled requests, print a one-line metrics snapshot \
       (counters, gauges, latency p50/p99) to standard error. 0 disables \
       the heartbeat; the $(b,metrics) protocol method works either way."
    in
    Arg.(value & opt int 0 & info [ "metrics-interval" ] ~docv:"N" ~doc)
  in
  let trace_slow_arg =
    let doc =
      "Also keep any request lasting at least $(docv) milliseconds in \
       the slow-trace ring (0 keeps every request there). Tracing itself \
       is always on under serve — every response carries a trace id and \
       the $(b,trace) protocol method reads the captures back; this flag \
       only sets the slow threshold (default: nothing is classified \
       slow)."
    in
    Arg.(value & opt (some float) None & info [ "trace-slow" ] ~docv:"MS" ~doc)
  in
  let log_level_arg =
    let doc =
      "Minimum level for structured log events on standard error: \
       $(b,debug), $(b,info), $(b,warn) or $(b,error)."
    in
    Arg.(value & opt string "info" & info [ "log-level" ] ~docv:"LEVEL" ~doc)
  in
  let log_json_arg =
    let doc =
      "Emit log events as JSON objects (ts, level, event, trace id, \
       fields) instead of the human-readable shape."
    in
    Arg.(value & flag & info [ "log-json" ] ~doc)
  in
  let stdio_arg =
    let doc =
      "Serve requests over standard input/output, one JSON line each way \
       (the default transport)."
    in
    Arg.(value & flag & info [ "stdio" ] ~doc)
  in
  let tcp_arg =
    let doc =
      "Serve requests over TCP on 127.0.0.1:$(docv) instead of standard \
       input/output ($(docv) 0 picks an ephemeral port; see \
       $(b,--port-file)). Same line protocol; a bare $(b,quit) line \
       closes the connection."
    in
    Arg.(value & opt (some int) None & info [ "tcp" ] ~docv:"PORT" ~doc)
  in
  let domains_arg =
    let doc =
      "Number of worker domains for the TCP server. Sessions are sharded \
       by respondent-id hash, one shard per domain; all write-ahead-log \
       appends go through a single writer domain that group-commits \
       across shards."
    in
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)
  in
  let port_file_arg =
    let doc =
      "Write the bound TCP port (one decimal line) to $(docv) once the \
       server is listening — how scripts find an ephemeral $(b,--tcp 0) \
       port."
    in
    Arg.(value & opt (some string) None & info [ "port-file" ] ~docv:"FILE" ~doc)
  in
  let flight_arg =
    let doc =
      "Attach the flight recorder: append identifier-only telemetry \
       records (delta-encoded metric snapshots, SLO burn rates, slow-trace \
       headers, log events, lifecycle marks) to $(b,flight-NNNNNN.log) \
       segments in the $(b,--data-dir) directory — flushed, never fsynced, \
       torn-tail tolerant. Read them back with $(b,pet flight report)."
    in
    Arg.(value & flag & info [ "flight" ] ~doc)
  in
  let run backend compiled payoff deterministic cache ttl tenant_quota
      data_dir no_fsync metrics_interval trace_slow log_level log_json stdio
      tcp domains port_file flight =
    (* An explicit --backend wins; otherwise the compiled path brings
       its own engine backend, and --no-compiled reverts to the
       pre-compiled default. *)
    let backend =
      match backend with
      | Some backend -> backend
      | None -> if compiled then Engine.Compiled else Engine.Bdd
    in
    (* The deterministic clocks are atomic so the TCP server's shards
       share one logical timeline; under --stdio the single consumer
       makes the sequence identical to the old [ref]-based one. *)
    let now =
      if deterministic then (
        let tick = Atomic.make 0 in
        fun () -> float_of_int (Atomic.fetch_and_add tick 1 + 1))
      else Unix.gettimeofday
    in
    (* Observability is always on under [serve]. It gets its own clock:
       in deterministic mode a separate logical counter, so instrumented
       code reading the obs clock (store appends, spans) cannot perturb
       the service clock that request latencies, session expiry and the
       cram transcripts depend on. *)
    Pet_obs.Metrics.enable ();
    if deterministic then (
      let tick = Atomic.make 0 in
      Pet_obs.Metrics.set_clock (fun () ->
          float_of_int (Atomic.fetch_and_add tick 1 + 1)))
    else Pet_obs.Metrics.set_clock Unix.gettimeofday;
    (* Tracing rides on the obs clock above: always on under serve, one
       capture per request, the slow threshold set from --trace-slow. *)
    Pet_obs.Trace.enable ();
    Option.iter
      (fun ms -> Pet_obs.Trace.set_slow_threshold (ms /. 1000.))
      trace_slow;
    Log.set_json log_json;
    match Log.level_of_string log_level with
    | None ->
      `Error
        ( false,
          Printf.sprintf
            "--log-level %s: expected debug, info, warn or error" log_level )
    | Some level ->
    Log.set_level level;
    let resolve name =
      match load_exposure name with
      | Ok exposure when List.mem name [ "running"; "hcov"; "rsa"; "loan" ] ->
        Some (Spec.to_string exposure)
      | _ -> None
    in
    if stdio && tcp <> None then
      `Error (false, "--stdio and --tcp are mutually exclusive")
    else if tcp = None && domains <> 1 then
      `Error (false, "--domains only applies to the TCP server (--tcp)")
    else if flight && data_dir = None then
      `Error
        ( false,
          "--flight requires --data-dir (the journal lives in the data \
           directory)" )
    else
    match tcp with
    | Some tcp_port -> (
      (* TCP: recovery replay happens inside Server.start so each event
         lands on the shard that will own its session; torn-tail and
         damage reporting stays here, identical to stdio. *)
      let open_store k =
        match data_dir with
        | None -> k None []
        | Some dir -> (
          match Pet_store.Store.open_dir ~fsync:(not no_fsync) dir with
          | Error m -> `Error (false, Printf.sprintf "--data-dir %s: %s" dir m)
          | Ok (store, recovery) ->
            Option.iter
              (fun (d : Pet_store.Store.damage) ->
                Log.warn "store.torn_tail"
                  ~fields:
                    [
                      fstr "file" d.Pet_store.Store.file;
                      fint "offset" d.Pet_store.Store.offset;
                      fstr "reason" d.Pet_store.Store.reason;
                    ])
              recovery.Pet_store.Store.truncated;
            List.iter
              (fun (d : Pet_store.Store.damage) ->
                Log.error "store.damage"
                  ~fields:
                    [
                      fstr "file" d.Pet_store.Store.file;
                      fint "offset" d.Pet_store.Store.offset;
                      fstr "reason" d.Pet_store.Store.reason;
                      fstr "hint"
                        (Printf.sprintf
                           "replay stopped there; run `pet store verify %s`"
                           dir);
                    ])
              recovery.Pet_store.Store.damage;
            Log.info "store.recovered"
              ~fields:
                [
                  fint "events" (List.length recovery.Pet_store.Store.events);
                  fint "files" recovery.Pet_store.Store.files;
                ];
            k (Some store) recovery.Pet_store.Store.events)
      in
      open_store @@ fun store recovery ->
      let open_flight k =
        if not flight then k None
        else
          match Pet_store.Flight_log.open_dir (Option.get data_dir) with
          | Error m ->
            Option.iter Pet_store.Store.close store;
            `Error (false, Printf.sprintf "--flight: %s" m)
          | Ok fl ->
            ignore (flight_log_tee fl);
            k (Some fl)
      in
      open_flight @@ fun fl ->
      let close_flight () =
        match fl with
        | None -> ()
        | Some fl ->
          Log.set_sink prerr_endline;
          Pet_store.Flight_log.close fl
      in
      match
        Pet_net.Server.start ~backend ~compiled ~payoff ~capacity:cache ~ttl
          ~tenant_quota ~resolve ?store ~recovery
          ~sweep_interval:(if deterministic then 0. else 1.)
          ?flight:fl ~domains ~port:tcp_port ~now ()
      with
      | Error m ->
        close_flight ();
        Option.iter Pet_store.Store.close store;
        `Error (false, m)
      | Ok server ->
        Option.iter
          (fun file ->
            Out_channel.with_open_text file (fun oc ->
                Printf.fprintf oc "%d\n" (Pet_net.Server.port server)))
          port_file;
        let result = Pet_net.Server.wait server in
        Pet_net.Server.stop server;
        Pet_net.Server.flight_dump server ~event:"exit";
        close_flight ();
        Option.iter Pet_store.Store.close store;
        match result with
        | Ok () -> `Ok ()
        | Error m -> `Error (false, m))
    | None ->
    let service =
      Pet_server.Service.create ~backend ~compiled ~payoff ~capacity:cache
        ~ttl ~tenant_quota ~resolve ~durable:(data_dir <> None) ~now ()
    in
    let with_store k =
      match data_dir with
      | None -> k None
      | Some dir -> (
        match Pet_store.Store.open_dir ~fsync:(not no_fsync) dir with
        | Error m -> `Error (false, Printf.sprintf "--data-dir %s: %s" dir m)
        | Ok (store, recovery) ->
          let replay_errors =
            List.fold_left
              (fun errors event ->
                match Pet_server.Service.apply_event service event with
                | Ok () -> errors
                | Error m ->
                  Log.error "store.replay_error" ~fields:[ fstr "reason" m ];
                  errors + 1)
              0 recovery.Pet_store.Store.events
          in
          Option.iter
            (fun (d : Pet_store.Store.damage) ->
              Log.warn "store.torn_tail"
                ~fields:
                  [
                    fstr "file" d.Pet_store.Store.file;
                    fint "offset" d.Pet_store.Store.offset;
                    fstr "reason" d.Pet_store.Store.reason;
                  ])
            recovery.Pet_store.Store.truncated;
          List.iter
            (fun (d : Pet_store.Store.damage) ->
              Log.error "store.damage"
                ~fields:
                  [
                    fstr "file" d.Pet_store.Store.file;
                    fint "offset" d.Pet_store.Store.offset;
                    fstr "reason" d.Pet_store.Store.reason;
                    fstr "hint"
                      (Printf.sprintf
                         "replay stopped there; run `pet store verify %s`" dir);
                  ])
            recovery.Pet_store.Store.damage;
          Log.info "store.recovered"
            ~fields:
              ([
                 fint "events" (List.length recovery.Pet_store.Store.events);
                 fint "files" recovery.Pet_store.Store.files;
               ]
              @
              if replay_errors > 0 then [ fint "replay_errors" replay_errors ]
              else []);
          (* Apply expiry horizons that passed while the service was
             down, before the sink is attached (the application is
             derivable, never re-logged). *)
          let expired = Pet_server.Service.apply_horizons service in
          if expired > 0 then
            Log.info "store.horizons_applied" ~fields:[ fint "expired" expired ];
          Pet_server.Service.set_sink service (Pet_store.Store.sink store);
          k (Some store))
    in
    with_store @@ fun store ->
    let with_flight k =
      if not flight then k None
      else
        match Pet_store.Flight_log.open_dir (Option.get data_dir) with
        | Error m ->
          Option.iter Pet_store.Store.close store;
          `Error (false, Printf.sprintf "--flight: %s" m)
        | Ok fl ->
          let enc = flight_log_tee fl in
          Pet_store.Flight_log.append fl
            (Pet_obs.Flight.meta enc ~now:(Pet_obs.Metrics.now ())
               ~event:"start"
               [ ("mode", "stdio") ]);
          k (Some (fl, enc))
    in
    with_flight @@ fun fl ->
    (* One snapshot into the journal: service gauges and SLO reports are
       synced first (the SLO clock is the service clock — the same
       timeline [Slo.record] stamped), the record itself is stamped with
       the obs clock like every other flight record. *)
    let flight_snap () =
      match fl with
      | None -> ()
      | Some (fl, enc) -> (
        try
          let service_now = now () in
          Pet_server.Service.sync_gauges service;
          Pet_obs.Slo.sync Pet_server.Service.slo ~now:service_now;
          Pet_store.Flight_log.append fl
            (Pet_obs.Flight.snap enc
               ?wal:(Option.map Pet_store.Store.position store)
               ~now:(Pet_obs.Metrics.now ())
               (Pet_obs.Metrics.snapshot ()))
        with Sys_error _ -> ())
    in
    (* A watch line takes over the stream: the same request line is
       re-dispatched once per frame (each a full snapshot — clients diff
       consecutive frames), so the response bytes for everything else
       are untouched. [frames = 0] streams until the driver closes
       stdin, exactly like the TCP transport. *)
    let watch_params line =
      if contains_sub line "\"watch\"" then
        match Pet_server.Proto.decode line with
        | Ok { request = Pet_server.Proto.Watch { interval; frames }; _ } ->
          Some (interval, frames)
        | _ -> None
      else None
    in
    let handled = ref 0 in
    let rec loop () =
      match In_channel.input_line stdin with
      | None -> ()
      | Some line ->
        if String.trim line <> "" then begin
          (match watch_params line with
          | Some (interval, frames) ->
            let rec stream i =
              if frames = 0 || i < frames then begin
                print_endline (Pet_server.Service.handle_line service line);
                flush stdout;
                if interval > 0. then Unix.sleepf interval;
                stream (i + 1)
              end
            in
            stream 0
          | None ->
            print_endline (Pet_server.Service.handle_line service line);
            flush stdout);
          incr handled;
          if Option.is_some fl && !handled mod 32 = 0 then flight_snap ();
          if metrics_interval > 0 && !handled mod metrics_interval = 0 then begin
            Pet_server.Service.sync_gauges service;
            Log.info "metrics.snapshot"
              ~fields:
                [
                  fstr "line"
                    (Pet_obs.Export.line (Pet_obs.Metrics.snapshot ()));
                ]
          end;
          Option.iter
            (fun store ->
              if Pet_store.Store.wants_compaction store then
                match
                  Pet_store.Store.compact store
                    ~events:(Pet_server.Service.state_events service)
                with
                | Ok _ -> ()
                | Error m ->
                  Log.error "store.compaction_failed"
                    ~fields:[ fstr "reason" m ])
            store
        end;
        loop ()
    in
    loop ();
    (match fl with
    | None -> ()
    | Some (flj, enc) ->
      flight_snap ();
      (try
         List.iter
           (Pet_store.Flight_log.append flj)
           (Pet_obs.Flight.slow_traces enc ~now:(Pet_obs.Metrics.now ())
              (Pet_obs.Trace.slow ()));
         Pet_store.Flight_log.append flj
           (Pet_obs.Flight.meta enc ~now:(Pet_obs.Metrics.now ()) ~event:"exit"
              [])
       with Sys_error _ -> ());
      Log.set_sink prerr_endline;
      Pet_store.Flight_log.close flj);
    Pet_server.Service.shutdown service;
    Option.iter Pet_store.Store.close store;
    `Ok ()
  in
  let doc =
    "Run the collection service: read one JSON request per line from \
     standard input, write one JSON response per line to standard output \
     (methods: publish_rules, update_rules, new_session, get_report, \
     choose_option, submit_form, audit, tenant, stats, metrics, trace, \
     watch). \
     Compiled rule engines are cached across \
     sessions; sessions expire after $(b,--ttl) idle seconds; raw \
     valuations are erased the moment an option is chosen. Forms published \
     with a $(b,tenant) parameter become versioned tenants: updates \
     rebuild in the background and hot-swap atomically, while open \
     sessions keep the version they started on. With \
     $(b,--data-dir) the service is durable: every state change is \
     appended to a checksummed write-ahead log before it is acknowledged, \
     and a restart recovers the rule sets, sessions and consent archive \
     (ids continuing where they left off). With $(b,--tcp) the same \
     protocol is served over localhost TCP by $(b,--domains) worker \
     domains (sessions sharded by id, log appends group-committed \
     through a single writer domain)."
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      ret
        (const run $ serve_backend_arg $ compiled_arg $ payoff_arg
       $ deterministic_arg $ cache_arg $ ttl_arg $ tenant_quota_arg
       $ data_dir_arg $ no_fsync_arg $ metrics_interval_arg $ trace_slow_arg
       $ log_level_arg $ log_json_arg $ stdio_arg $ tcp_arg $ domains_arg
       $ port_file_arg $ flight_arg))

(* --- ping ------------------------------------------------------------------------- *)

let ping_cmd =
  let addr_arg =
    let doc = "Server address, e.g. 127.0.0.1:7464." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"HOST:PORT" ~doc)
  in
  let run addr =
    let split =
      match String.rindex_opt addr ':' with
      | None -> None
      | Some i ->
        let host = String.sub addr 0 i in
        let host = if host = "" || host = "localhost" then "127.0.0.1" else host in
        Option.map
          (fun port -> (host, port))
          (int_of_string_opt
             (String.sub addr (i + 1) (String.length addr - i - 1)))
    in
    match split with
    | None ->
      `Error (false, Printf.sprintf "%s: expected HOST:PORT" addr)
    | Some (host, port) -> (
      match
        let inet =
          try Unix.inet_addr_of_string host
          with Failure _ -> (Unix.gethostbyname host).h_addr_list.(0)
        in
        let fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
        (try Unix.connect fd (ADDR_INET (inet, port))
         with e -> Unix.close fd; raise e);
        fd
      with
      | exception Unix.Unix_error (e, _, _) ->
        `Error
          (false, Printf.sprintf "cannot connect to %s:%d: %s" host port
               (Unix.error_message e))
      | exception Not_found ->
        `Error (false, Printf.sprintf "cannot resolve host %s" host)
      | fd ->
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        (* One request line in, one response line out — the transport's
           own contract — so interleaving stays lockstep and transcripts
           are deterministic. *)
        let rec pump () =
          match In_channel.input_line stdin with
          | None -> `Ok ()
          | Some line ->
            if String.trim line = "" then pump ()
            else begin
              output_string oc line;
              output_char oc '\n';
              flush oc;
              if String.trim line = "quit" then `Ok ()
              else
                match In_channel.input_line ic with
                | Some response ->
                  print_endline response;
                  flush stdout;
                  pump ()
                | None ->
                  `Error (false, "server closed the connection")
            end
        in
        let result =
          try pump () with
          | Sys_error m -> `Error (false, m)
          | End_of_file -> `Error (false, "server closed the connection")
        in
        close_out_noerr oc;
        result)
  in
  let doc =
    "Line-protocol smoke client for $(b,pet serve --tcp): connect, \
     forward each standard-input line as a request, print each response \
     line; a bare $(b,quit) line closes the connection."
  in
  Cmd.v (Cmd.info "ping" ~doc) Term.(ret (const run $ addr_arg))

(* --- corpus ----------------------------------------------------------------------- *)

module Corpus = Pet_corpus.Corpus

let corpus_cmd =
  let seed_arg =
    let doc = "Corpus seed; every output is a pure function of it." in
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let lo_arg =
    let doc = "Smallest form size (predicates) to generate." in
    Arg.(value & opt int Corpus.min_size & info [ "lo" ] ~docv:"N" ~doc)
  in
  let hi_arg =
    let doc =
      "Largest form size to generate. Above 24 predicates a form \
       publishes but its background build fails (the atlas enumeration \
       bound) — included in the default band on purpose."
    in
    Arg.(value & opt int Corpus.max_size & info [ "hi" ] ~docv:"N" ~doc)
  in
  let count_arg =
    let doc = "Number of tenants in the scenario." in
    Arg.(value & opt int 20 & info [ "count"; "tenants" ] ~docv:"N" ~doc)
  in
  let digest_of text =
    match Spec.parse text with
    | Ok exposure -> Pet_server.Registry.digest (Spec.to_string exposure)
    | Error m -> Printf.sprintf "<parse error: %s>" m
  in
  let form_cmd =
    let index_arg =
      let doc = "Tenant index (0-based)." in
      Arg.(required & pos 0 (some int) None & info [] ~docv:"INDEX" ~doc)
    in
    let size_arg =
      let doc = "Exact form size, overriding the seeded size draw." in
      Arg.(value & opt (some int) None & info [ "size" ] ~docv:"N" ~doc)
    in
    let revision_arg =
      let doc =
        "Rule revision (1-based): same fields, re-rolled rule bodies — \
         what an $(b,update_rules) publishes."
      in
      Arg.(value & opt int 1 & info [ "revision" ] ~docv:"N" ~doc)
    in
    let run seed size revision index =
      guarded @@ fun () ->
      let form = Corpus.form ~seed ?size ~revision index in
      print_string form.Corpus.text;
      `Ok ()
    in
    let doc =
      "Print one corpus form's rule text (the $(b,publish_rules) \
       payload) to standard output."
    in
    Cmd.v (Cmd.info "form" ~doc)
      Term.(ret (const run $ seed_arg $ size_arg $ revision_arg $ index_arg))
  in
  let scenario_cmd =
    let run seed lo hi count =
      guarded @@ fun () ->
      let scenario = Corpus.scenario ~seed ~lo ~hi ~count () in
      Array.iteri
        (fun i (form : Corpus.form) ->
          Fmt.pr "%-28s size=%-2d share=%5.1f%% digest=%s@." form.Corpus.name
            form.Corpus.size
            (100. *. scenario.Corpus.popularity.(i))
            (digest_of form.Corpus.text))
        scenario.Corpus.forms;
      `Ok ()
    in
    let doc =
      "List a scenario's tenants: name, form size, Zipf traffic share \
       and rule digest, one line each."
    in
    Cmd.v (Cmd.info "scenario" ~doc)
      Term.(ret (const run $ seed_arg $ lo_arg $ hi_arg $ count_arg))
  in
  let drive_cmd =
    let addr_arg =
      let doc = "Server address, e.g. 127.0.0.1:7464." in
      Arg.(
        required & pos 0 (some string) None & info [] ~docv:"HOST:PORT" ~doc)
    in
    let sessions_arg =
      let doc = "Number of respondent sessions to run." in
      Arg.(value & opt int 200 & info [ "sessions" ] ~docv:"N" ~doc)
    in
    let update_every_arg =
      let doc =
        "Between sessions, publish a rule update to a Zipf-picked tenant \
         every $(docv) sessions (0 disables updates)."
      in
      Arg.(value & opt int 0 & info [ "update-every" ] ~docv:"K" ~doc)
    in
    let run seed lo hi count sessions update_every addr =
      let split =
        match String.rindex_opt addr ':' with
        | None -> None
        | Some i ->
          let host = String.sub addr 0 i in
          let host =
            if host = "" || host = "localhost" then "127.0.0.1" else host
          in
          Option.map
            (fun port -> (host, port))
            (int_of_string_opt
               (String.sub addr (i + 1) (String.length addr - i - 1)))
      in
      match split with
      | None -> `Error (false, Printf.sprintf "%s: expected HOST:PORT" addr)
      | Some (host, port) -> (
        match
          let inet =
            try Unix.inet_addr_of_string host
            with Failure _ -> (Unix.gethostbyname host).h_addr_list.(0)
          in
          let fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
          (try Unix.connect fd (ADDR_INET (inet, port))
           with e ->
             Unix.close fd;
             raise e);
          fd
        with
        | exception Unix.Unix_error (e, _, _) ->
          `Error
            ( false,
              Printf.sprintf "cannot connect to %s:%d: %s" host port
                (Unix.error_message e) )
        | exception Not_found ->
          `Error (false, Printf.sprintf "cannot resolve host %s" host)
        | fd -> (
          let ic = Unix.in_channel_of_descr fd in
          let oc = Unix.out_channel_of_descr fd in
          (* Lockstep request/response over one connection: the driver
             measures the mix, not concurrency (the bench harness does
             that). *)
          let call request =
            output_string oc (Json.to_string request);
            output_char oc '\n';
            flush oc;
            match In_channel.input_line ic with
            | Some line -> Json.parse_exn line
            | None -> failwith "server closed the connection"
          in
          let req method_ params =
            Json.Obj
              [
                ("pet", Json.Int 1);
                ("method", Json.String method_);
                ("params", Json.Obj params);
              ]
          in
          let error_code response =
            match Json.member "error" response with
            | Some e ->
              Option.bind (Json.member "code" e) Json.string_opt
            | None -> None
          in
          let result_field response name =
            Option.bind (Json.member "ok" response) (Json.member name)
          in
          let scenario = Corpus.scenario ~seed ~lo ~hi ~count () in
          let forms = Array.map (fun f -> ref f) scenario.Corpus.forms in
          let rng = Random.State.make [| seed; 11 |] in
          let published = ref 0
          and build_failures = ref 0
          and updates = ref 0
          and opened = ref 0
          and ineligible = ref 0
          and quota_refused = ref 0
          and submitted = ref 0
          and unexpected = ref [] in
          let expect kind response allowed =
            match error_code response with
            | None -> true
            | Some code ->
              if List.mem code allowed then false
              else begin
                unexpected := Printf.sprintf "%s: %s" kind code :: !unexpected;
                false
              end
          in
          let barrier name =
            (* tenant+wait blocks until the tenant's builds settle; the
               response's state tells whether the build survived. *)
            let response =
              call
                (req "tenant"
                   [ ("name", Json.String name); ("wait", Json.Bool true) ])
            in
            match Option.bind (result_field response "state") Json.string_opt with
            | Some "failed" -> `Failed
            | Some _ -> `Ready
            | None -> `Ready
          in
          (match
             for i = 0 to count - 1 do
               let form = !(forms.(i)) in
               let response =
                 call
                   (req "publish_rules"
                      [
                        ("rules", Json.String form.Corpus.text);
                        ("tenant", Json.String form.Corpus.name);
                      ])
               in
               if expect "publish_rules" response [] then begin
                 incr published;
                 match barrier form.Corpus.name with
                 | `Failed -> incr build_failures
                 | `Ready -> ()
               end
             done;
             for r = 0 to sessions - 1 do
               if update_every > 0 && r mod update_every = update_every - 1
               then begin
                 let i = Corpus.pick rng scenario.Corpus.popularity in
                 let next = Corpus.update ~seed !(forms.(i)) in
                 let response =
                   call
                     (req "update_rules"
                        [
                          ("tenant", Json.String next.Corpus.name);
                          ("rules", Json.String next.Corpus.text);
                        ])
                 in
                 if expect "update_rules" response [] then begin
                   forms.(i) := next;
                   incr updates;
                   ignore (barrier next.Corpus.name)
                 end
               end;
               let i = Corpus.pick rng scenario.Corpus.popularity in
               let form = !(forms.(i)) in
               let response =
                 call
                   (req "new_session"
                      [ ("tenant", Json.String form.Corpus.name) ])
               in
               (match error_code response with
               | Some "quota_exceeded" -> incr quota_refused
               | Some "build_failed" -> ()
                 (* oversized corpus forms fail their build by design *)
               | Some code ->
                 unexpected :=
                   Printf.sprintf "new_session: %s" code :: !unexpected
               | None -> (
                 incr opened;
                 match
                   Option.bind (result_field response "session")
                     Json.string_opt
                 with
                 | None -> unexpected := "new_session: no id" :: !unexpected
                 | Some session ->
                   let response =
                     call
                       (req "get_report"
                          [
                            ("session", Json.String session);
                            ( "valuation",
                              Json.String (Corpus.valuation ~seed form r) );
                          ])
                   in
                   if
                     expect "get_report" response [ "ineligible" ]
                   then begin
                     let response =
                       call
                         (req "choose_option"
                            [
                              ("session", Json.String session);
                              ("option", Json.Int 0);
                            ])
                     in
                     if expect "choose_option" response [] then
                       let response =
                         call
                           (req "submit_form"
                              [ ("session", Json.String session) ])
                       in
                       if expect "submit_form" response [] then incr submitted
                   end
                   else if error_code response = Some "ineligible" then
                     incr ineligible))
             done
           with
          | () ->
            close_out_noerr oc;
            Fmt.pr "tenants    %d published, %d build failures@." !published
              !build_failures;
            Fmt.pr "updates    %d@." !updates;
            Fmt.pr
              "sessions   %d opened, %d ineligible, %d quota refusals, %d \
               submitted@."
              !opened !ineligible !quota_refused !submitted;
            let unexpected = List.sort_uniq compare !unexpected in
            if unexpected = [] then `Ok ()
            else begin
              List.iter (Fmt.epr "unexpected error: %s@.") unexpected;
              `Error (false, "the drive hit unexpected protocol errors")
            end
          | exception Failure m ->
            close_out_noerr oc;
            `Error (false, m)
          | exception Sys_error m ->
            close_out_noerr oc;
            `Error (false, m)
          | exception End_of_file ->
            close_out_noerr oc;
            `Error (false, "server closed the connection"))))
    in
    let doc =
      "Drive a corpus scenario against a running $(b,pet serve --tcp): \
       publish every tenant, then run a Zipf-weighted session mix \
       (new_session, get_report, choose first option, submit_form) with \
       optional interleaved rule updates, and print the outcome counts. \
       Exits non-zero on any protocol error other than the expected \
       $(b,ineligible), $(b,quota_exceeded) and oversized-form \
       $(b,build_failed) answers."
    in
    Cmd.v (Cmd.info "drive" ~doc)
      Term.(
        ret
          (const run $ seed_arg $ lo_arg $ hi_arg $ count_arg $ sessions_arg
         $ update_every_arg $ addr_arg))
  in
  let doc =
    "Work with the seeded realistic form corpus (contact, demographic, \
     financial and health field families; sizes 8-40; Zipf tenant \
     popularity). The same seed reproduces the same forms everywhere: \
     print them, list scenarios, or drive one against a live server."
  in
  Cmd.group
    (Cmd.info "corpus" ~doc)
    [ form_cmd; scenario_cmd; drive_cmd ]

(* --- store ------------------------------------------------------------------------ *)

let store_dir_arg =
  let doc = "The data directory of a durable collection service." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)

let store_inspect_cmd =
  let run dir =
    match Pet_store.Store.scan dir with
    | Error m -> `Error (false, m)
    | Ok reports ->
      let records = ref 0 and bytes = ref 0 and kinds = Hashtbl.create 8 in
      List.iter
        (fun (r : Pet_store.Store.file_report) ->
          records := !records + r.Pet_store.Store.records;
          bytes := !bytes + r.Pet_store.Store.bytes;
          List.iter
            (fun (kind, n) ->
              Hashtbl.replace kinds kind
                (n + Option.value ~default:0 (Hashtbl.find_opt kinds kind)))
            r.Pet_store.Store.kinds;
          Fmt.pr "%-16s %8d bytes %6d record(s)%s@." r.Pet_store.Store.file
            r.Pet_store.Store.bytes r.Pet_store.Store.records
            (match r.Pet_store.Store.damage with
            | [] -> ""
            | damage -> Printf.sprintf "  %d damaged" (List.length damage)))
        reports;
      Fmt.pr "total: %d file(s), %d bytes, %d record(s)@." (List.length reports)
        !bytes !records;
      Hashtbl.fold (fun kind n acc -> (kind, n) :: acc) kinds []
      |> List.sort compare
      |> List.iter (fun (kind, n) -> Fmt.pr "  %-18s %6d@." kind n);
      `Ok ()
  in
  let doc = "List the snapshot and segments with record and event counts." in
  Cmd.v (Cmd.info "inspect" ~doc) Term.(ret (const run $ store_dir_arg))

let store_verify_cmd =
  let run dir =
    match Pet_store.Store.scan dir with
    | Error m -> `Error (false, m)
    | Ok reports ->
      let records =
        List.fold_left
          (fun acc (r : Pet_store.Store.file_report) ->
            acc + r.Pet_store.Store.records)
          0 reports
      in
      let faults =
        List.concat_map
          (fun (r : Pet_store.Store.file_report) ->
            List.map (fun d -> ("damage", d)) r.Pet_store.Store.damage
            @ List.map (fun v -> ("R2 violation", v)) r.Pet_store.Store.r2)
          reports
      in
      List.iter
        (fun (label, (d : Pet_store.Store.damage)) ->
          Fmt.pr "%s: %s at byte %d: %s@." label d.Pet_store.Store.file
            d.Pet_store.Store.offset d.Pet_store.Store.reason)
        faults;
      if faults = [] then begin
        Fmt.pr
          "ok: %d record(s) in %d file(s); every checksum holds and no \
           decoded event carries a raw valuation (R2 on disk)@."
          records (List.length reports);
        `Ok ()
      end
      else
        `Error
          ( false,
            Printf.sprintf "%d fault(s) in %d file(s)" (List.length faults)
              (List.length reports) )
  in
  let doc =
    "Check every record: framing, CRC-32 checksums (damage is reported \
     with its byte offset, torn tails included) and the R2-on-disk \
     invariant that no decoded event contains a full valuation."
  in
  Cmd.v (Cmd.info "verify" ~doc) Term.(ret (const run $ store_dir_arg))

let store_replay_cmd =
  let run dir =
    match Pet_store.Store.read dir with
    | Error m -> `Error (false, m)
    | Ok recovery ->
      List.iter
        (fun event ->
          print_endline (Json.to_string (Pet_server.Persist.to_json event)))
        recovery.Pet_store.Store.events;
      (match recovery.Pet_store.Store.damage with
      | [] -> `Ok ()
      | (d : Pet_store.Store.damage) :: _ ->
        `Error
          ( false,
            Printf.sprintf "replay stopped at byte %d of %s: %s"
              d.Pet_store.Store.offset d.Pet_store.Store.file
              d.Pet_store.Store.reason ))
  in
  let doc =
    "Print the recovered event stream (the longest clean prefix) as one \
     JSON object per line, without modifying the directory."
  in
  Cmd.v (Cmd.info "replay" ~doc) Term.(ret (const run $ store_dir_arg))

let store_compact_cmd =
  let ttl_arg =
    let doc =
      "Drop sessions idle longer than $(docv) seconds (relative to the \
       newest event in the log; 0 keeps every session). Grants and rule \
       sets are always kept."
    in
    Arg.(value & opt float 3600. & info [ "ttl" ] ~docv:"SECONDS" ~doc)
  in
  let run dir ttl =
    match Pet_store.Store.open_dir dir with
    | Error m -> `Error (false, m)
    | Ok (store, recovery) ->
      (match recovery.Pet_store.Store.damage with
      | (d : Pet_store.Store.damage) :: _ ->
        Fmt.epr
          "warning: replay stopped at byte %d of %s (%s); compacting the \
           clean prefix@."
          d.Pet_store.Store.offset d.Pet_store.Store.file
          d.Pet_store.Store.reason
      | [] -> ());
      let compactor = Pet_store.Store.Compactor.create () in
      List.iter
        (Pet_store.Store.Compactor.add compactor)
        recovery.Pet_store.Store.events;
      let events = Pet_store.Store.Compactor.events ~ttl compactor in
      (match Pet_store.Store.compact store ~events with
      | Error m ->
        Pet_store.Store.close store;
        `Error (false, m)
      | Ok removed ->
        Pet_store.Store.close store;
        Fmt.pr "compacted %d event(s) into a snapshot of %d; %d file(s) retired@."
          (List.length recovery.Pet_store.Store.events)
          (List.length events) removed;
        `Ok ())
  in
  let doc =
    "Squash the log into a snapshot (rule sets, grants and surviving \
     sessions) and retire the replaced segments."
  in
  Cmd.v (Cmd.info "compact" ~doc) Term.(ret (const run $ store_dir_arg $ ttl_arg))

let store_cmd =
  let doc =
    "Inspect, verify, replay or compact the write-ahead log behind a \
     durable collection service ($(b,pet serve --data-dir))."
  in
  Cmd.group
    (Cmd.info "store" ~doc)
    [ store_inspect_cmd; store_verify_cmd; store_replay_cmd; store_compact_cmd ]

(* --- profile ----------------------------------------------------------------------- *)

let profile_cmd =
  let samples_arg =
    let doc =
      "Build a consent report for at most $(docv) eligible applicants \
       (0 profiles the construction phases only)."
    in
    Arg.(value & opt int 50 & info [ "samples" ] ~docv:"N" ~doc)
  in
  let run source backend payoff samples =
    match load_exposure source with
    | Error m -> `Error (false, m)
    | Ok exposure ->
      Pet_obs.Metrics.enable ();
      let wall0 = Unix.gettimeofday () in
      (* Everything measurable runs under one root span, so the tree's
         per-phase totals account for the whole profiled wall-clock (the
         residue outside the root is the harness's own bookkeeping). *)
      let provider = ref None in
      Pet_obs.Span.enter "profile" (fun () ->
          let p = Workflow.provider ~backend ~payoff exposure in
          provider := Some p;
          let atlas = Workflow.atlas p in
          let n = min samples (Pet_minimize.Atlas.player_count atlas) in
          Pet_obs.Span.enter "reports" (fun () ->
              for i = 0 to n - 1 do
                ignore
                  (Workflow.report_for p (Pet_minimize.Atlas.player atlas i))
              done));
      let wall = Unix.gettimeofday () -. wall0 in
      Option.iter (fun p -> Engine.sync_obs (Workflow.engine p)) !provider;
      let profiled = Pet_obs.Span.total () in
      Fmt.pr "profile %s (backend %s)@." source (Engine.backend_name backend);
      Fmt.pr "%s" (Pet_obs.Span.render ~out_total:wall ());
      Fmt.pr "profiled %.6fs of %.6fs wall-clock (%.1f%%)@." profiled wall
        (if wall > 0. then 100. *. profiled /. wall else 100.);
      Fmt.pr "counters: %s@."
        (Pet_obs.Export.line (Pet_obs.Metrics.snapshot ()));
      `Ok ()
  in
  let doc =
    "Profile the PET pipeline on a rule set: compile the engine, build \
     the MAS atlas (Algorithm 1 per applicant), compute the equilibrium \
     profile (Algorithm 2) and build consent reports, then print the \
     span-tree cost breakdown with per-phase totals, self-times and \
     shares of wall-clock, plus the solver/engine counters."
  in
  Cmd.v
    (Cmd.info "profile" ~doc)
    Term.(
      ret (const run $ source_arg $ backend_arg $ payoff_arg $ samples_arg))

(* --- trace ------------------------------------------------------------------------- *)

let trace_cmd =
  let chrome_arg =
    let doc =
      "Also write the capture as Chrome trace_event JSON to $(docv) \
       (load it in chrome://tracing or Perfetto)."
    in
    Arg.(value & opt (some string) None & info [ "chrome" ] ~docv:"FILE" ~doc)
  in
  let deterministic_arg =
    let doc =
      "Time the capture with a logical clock (1s per clock read) instead \
       of wall time, making the output byte-stable for tests."
    in
    Arg.(value & flag & info [ "deterministic" ] ~doc)
  in
  let run source backend payoff chrome deterministic =
    match load_exposure source with
    | Error m -> `Error (false, m)
    | Ok exposure -> (
      Pet_obs.Metrics.enable ();
      Pet_obs.Trace.enable ();
      if deterministic then (
        let tick = ref 0 in
        Pet_obs.Metrics.set_clock (fun () ->
            incr tick;
            float_of_int !tick))
      else Pet_obs.Metrics.set_clock Unix.gettimeofday;
      let module Trace = Pet_obs.Trace in
      let id = Trace.generate_id () in
      Trace.run ~id (fun () ->
          Trace.annotate "source" (Trace.String source);
          Trace.annotate "backend"
            (Trace.String (Engine.backend_name backend));
          let p = Workflow.provider ~backend ~payoff exposure in
          let atlas = Workflow.atlas p in
          if Pet_minimize.Atlas.player_count atlas > 0 then
            ignore (Workflow.report_for p (Pet_minimize.Atlas.player atlas 0)));
      match Trace.find id with
      | None -> `Error (false, "the capture was not recorded")
      | Some tr ->
        Fmt.pr "%s" (Trace.render tr);
        (match chrome with
        | None -> ()
        | Some file ->
          Out_channel.with_open_bin file (fun oc ->
              Out_channel.output_string oc (Trace.chrome tr);
              Out_channel.output_char oc '\n');
          Fmt.pr "wrote %s@." file);
        `Ok ())
  in
  let doc =
    "Run the full PET pipeline once on a rule set — compile the engine, \
     build the MAS atlas, produce one consent report — under a \
     request-scoped trace capture, and print the span tree with exact \
     per-entry timings (what happened, in order — where $(b,pet \
     profile) prints aggregates). The capture carries only identifiers \
     (source name, backend), never form data."
  in
  Cmd.v
    (Cmd.info "trace" ~doc)
    Term.(
      ret
        (const run $ source_arg $ backend_arg $ payoff_arg $ chrome_arg
       $ deterministic_arg))

(* --- flight ----------------------------------------------------------------------- *)

(* Shared plumbing for the flight-journal reader and the live watch
   client: both reconstruct rates and quantiles from the same record
   shape (Pet_obs.Flight), one from disk deltas, one from full frames. *)

(* Parse an instrument name back into family and labels — the inverse
   of Metrics.render for the identifier-only label values this
   codebase emits. *)
let metric_labels name =
  match String.index_opt name '{' with
  | None -> (name, [])
  | Some i -> (
    let family = String.sub name 0 i in
    let n = String.length name in
    let labels = ref [] in
    let j = ref (i + 1) in
    try
      while !j < n && name.[!j] <> '}' do
        let eq = String.index_from name !j '=' in
        let key = String.sub name !j (eq - !j) in
        let buf = Buffer.create 8 in
        let p = ref (eq + 2) in
        while name.[!p] <> '"' do
          if name.[!p] = '\\' && !p + 1 < n then begin
            Buffer.add_char buf name.[!p + 1];
            p := !p + 2
          end
          else begin
            Buffer.add_char buf name.[!p];
            incr p
          end
        done;
        labels := (key, Buffer.contents buf) :: !labels;
        j := !p + 1;
        if !j < n && name.[!j] = ',' then incr j
      done;
      (family, List.rev !labels)
    with Not_found | Invalid_argument _ -> (family, List.rev !labels))

let le_value s =
  if s = "+Inf" then infinity
  else match float_of_string_opt s with Some f -> f | None -> infinity

(* Bucket-granular quantile over per-bucket counts (not cumulative):
   the upper bound of the bucket where the quantile falls, clamped to
   the largest finite bound when it lands in +Inf. *)
let quantile_of_buckets buckets total q =
  if total <= 0 then 0.
  else begin
    let sorted = List.sort (fun (a, _) (b, _) -> compare a b) buckets in
    let target = q *. float_of_int total in
    let last_finite =
      List.fold_left
        (fun acc (b, _) -> if b < infinity then b else acc)
        0. sorted
    in
    let rec go cum = function
      | [] -> last_finite
      | (b, n) :: rest ->
        let cum = cum + n in
        if float_of_int cum >= target then
          if b = infinity then last_finite else b
        else go cum rest
    in
    go 0 sorted
  end

let json_num = function
  | Json.Int i -> float_of_int i
  | Json.Float f -> f
  | _ -> 0.

let json_obj = function Json.Obj kvs -> kvs | _ -> []

let flight_report_cmd =
  let dir_arg =
    let doc = "The data directory holding the flight-NNNNNN.log segments." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)
  in
  let json_arg =
    let doc = "Emit the reconstruction as one JSON object." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run dir json =
    (* Accumulators over the whole journal: counter increments sum to
       totals, gauges keep last-seen and maximum (burn-rate peaks),
       histogram bucket deltas sum back to cumulative distributions. *)
    let counters = Hashtbl.create 64 in
    let gauges = Hashtbl.create 64 in
    let hists = Hashtbl.create 32 in
    let kinds = Hashtbl.create 4 in
    let metas = ref [] in
    let wal_last = ref None in
    let tmin = ref infinity and tmax = ref neg_infinity in
    let records = ref 0 in
    let bad = ref 0 in
    let add_record (r : Pet_store.Flight_log.record) =
      match Json.parse r.Pet_store.Flight_log.payload with
      | Error _ -> incr bad
      | Ok payload ->
        incr records;
        let t = Option.fold ~none:0. ~some:json_num (Json.member "t" payload) in
        if t < !tmin then tmin := t;
        if t > !tmax then tmax := t;
        let kind =
          match Json.member "kind" payload with
          | Some (Json.String k) -> k
          | _ -> "?"
        in
        Hashtbl.replace kinds kind
          (1 + Option.value ~default:0 (Hashtbl.find_opt kinds kind));
        (match Json.member "event" payload with
        | Some (Json.String e) when kind = "meta" -> metas := (e, t) :: !metas
        | _ -> ());
        (match Json.member "wal" payload with
        | Some w -> (
          match (Json.member "file" w, Json.member "off" w) with
          | Some (Json.String file), Some off ->
            wal_last := Some (file, int_of_float (json_num off), t)
          | _ -> ())
        | None -> ());
        List.iter
          (fun (name, v) ->
            Hashtbl.replace counters name
              (int_of_float (json_num v)
              + Option.value ~default:0 (Hashtbl.find_opt counters name)))
          (Option.fold ~none:[] ~some:json_obj (Json.member "counters" payload));
        List.iter
          (fun (name, v) ->
            let v = json_num v in
            let _, prev_max =
              Option.value ~default:(0., neg_infinity)
                (Hashtbl.find_opt gauges name)
            in
            Hashtbl.replace gauges name (v, Float.max v prev_max))
          (Option.fold ~none:[] ~some:json_obj (Json.member "gauges" payload));
        List.iter
          (fun (name, h) ->
            let n = Option.fold ~none:0. ~some:json_num (Json.member "n" h) in
            let buckets =
              Option.fold ~none:[] ~some:json_obj (Json.member "buckets" h)
            in
            let hn, hbuckets =
              match Hashtbl.find_opt hists name with
              | Some acc -> acc
              | None ->
                let acc = (ref 0, Hashtbl.create 8) in
                Hashtbl.add hists name acc;
                acc
            in
            hn := !hn + int_of_float n;
            List.iter
              (fun (le, c) ->
                let b = le_value le in
                Hashtbl.replace hbuckets b
                  (int_of_float (json_num c)
                  + Option.value ~default:0 (Hashtbl.find_opt hbuckets b)))
              buckets)
          (Option.fold ~none:[] ~some:json_obj (Json.member "hist" payload))
    in
    match Pet_store.Flight_log.fold dir ~init:() (fun () r -> add_record r) with
    | Error m -> `Error (false, Printf.sprintf "%s: %s" dir m)
    | Ok ((), damage) ->
      (* Per-method and per-tenant latency distributions, reconstructed
         from the summed bucket deltas. *)
      let latency_rows family label =
        Hashtbl.fold
          (fun name (hn, hbuckets) acc ->
            let fam, labels = metric_labels name in
            if fam = family then
              match List.assoc_opt label labels with
              | Some key ->
                let buckets =
                  Hashtbl.fold (fun b c l -> (b, c) :: l) hbuckets []
                in
                (key, !hn, quantile_of_buckets buckets !hn 0.99) :: acc
              | None -> acc
            else acc)
          hists []
        |> List.sort compare
      in
      let method_rows = latency_rows "pet_server_request_seconds" "method" in
      let tenant_rows = latency_rows "pet_tenant_request_seconds" "tenant" in
      (* SLO series: one row per key from the pet_slo_* gauge family,
         last value plus the observed peak for the burn rates. *)
      let slo_keys = Hashtbl.create 8 in
      Hashtbl.iter
        (fun name _ ->
          let fam, labels = metric_labels name in
          if String.length fam >= 8 && String.sub fam 0 8 = "pet_slo_" then
            match List.assoc_opt "slo" labels with
            | Some key -> Hashtbl.replace slo_keys key ()
            | None -> ())
        gauges;
      let slo_gauge key family =
        Option.value ~default:(0., 0.)
          (Hashtbl.find_opt gauges
             (Printf.sprintf "%s{slo=\"%s\"}" family key))
      in
      let slo_rows =
        Hashtbl.fold (fun key () acc -> key :: acc) slo_keys []
        |> List.sort compare
        |> List.map (fun key ->
               let requests, _ = slo_gauge key "pet_slo_window_requests" in
               let p99, _ = slo_gauge key "pet_slo_p99_seconds" in
               let err, _ = slo_gauge key "pet_slo_error_ratio" in
               let eb, eb_max = slo_gauge key "pet_slo_error_burn" in
               let lb, lb_max = slo_gauge key "pet_slo_latency_burn" in
               let _, breached = slo_gauge key "pet_slo_breached" in
               (key, requests, p99, err, eb, eb_max, lb, lb_max, breached > 0.))
      in
      let kind k = Option.value ~default:0 (Hashtbl.find_opt kinds k) in
      if json then begin
        let fnum v = if Float.is_integer v then Json.Int (int_of_float v) else Json.Float v in
        let payload =
          Json.Obj
            [
              ("dir", Json.String dir);
              ("records", Json.Int !records);
              ( "kinds",
                Json.Obj
                  (List.map
                     (fun k -> (k, Json.Int (kind k)))
                     [ "snap"; "log"; "trace"; "meta" ]) );
              ("unparsed", Json.Int !bad);
              ("t_min", fnum (if !records = 0 then 0. else !tmin));
              ("t_max", fnum (if !records = 0 then 0. else !tmax));
              ( "damage",
                Json.List
                  (List.map
                     (fun (d : Pet_store.Flight_log.damage) ->
                       Json.Obj
                         [
                           ("file", Json.String d.Pet_store.Flight_log.dfile);
                           ("offset", Json.Int d.Pet_store.Flight_log.doffset);
                           ("reason", Json.String d.Pet_store.Flight_log.dreason);
                         ])
                     damage) );
              ( "wal",
                match !wal_last with
                | None -> Json.Null
                | Some (file, off, t) ->
                  Json.Obj
                    [
                      ("file", Json.String file);
                      ("off", Json.Int off);
                      ("t", fnum t);
                    ] );
              ( "lifecycle",
                Json.List
                  (List.rev_map
                     (fun (e, t) ->
                       Json.Obj [ ("event", Json.String e); ("t", fnum t) ])
                     !metas) );
              ( "methods",
                Json.List
                  (List.map
                     (fun (m, n, p99) ->
                       Json.Obj
                         [
                           ("method", Json.String m);
                           ("requests", Json.Int n);
                           ("p99_s", Json.Float p99);
                         ])
                     method_rows) );
              ( "tenants",
                Json.List
                  (List.map
                     (fun (tn, n, p99) ->
                       Json.Obj
                         [
                           ("tenant", Json.String tn);
                           ("requests", Json.Int n);
                           ("p99_s", Json.Float p99);
                         ])
                     tenant_rows) );
              ( "slo",
                Json.List
                  (List.map
                     (fun (key, requests, p99, err, eb, eb_max, lb, lb_max, br) ->
                       Json.Obj
                         [
                           ("key", Json.String key);
                           ("window_requests", Json.Int (int_of_float requests));
                           ("p99_s", Json.Float p99);
                           ("error_ratio", Json.Float err);
                           ("error_burn", Json.Float eb);
                           ("error_burn_max", Json.Float eb_max);
                           ("latency_burn", Json.Float lb);
                           ("latency_burn_max", Json.Float lb_max);
                           ("breached", Json.Bool br);
                         ])
                     slo_rows) );
            ]
        in
        print_endline (Json.to_string payload);
        `Ok ()
      end
      else begin
        Fmt.pr "flight journal %s: %d records (%d snap, %d log, %d trace, %d \
                meta)@."
          dir !records (kind "snap") (kind "log") (kind "trace") (kind "meta");
        if !records > 0 then Fmt.pr "  time range t=%g..%g@." !tmin !tmax;
        if !bad > 0 then Fmt.pr "  unparsed records: %d@." !bad;
        (match damage with
        | [] -> ()
        | damage ->
          List.iter
            (fun (d : Pet_store.Flight_log.damage) ->
              Fmt.pr "  damage %s:%d %s@." d.Pet_store.Flight_log.dfile
                d.Pet_store.Flight_log.doffset d.Pet_store.Flight_log.dreason)
            damage);
        List.iter
          (fun (e, t) -> Fmt.pr "  lifecycle %s at t=%g@." e t)
          (List.rev !metas);
        (match !wal_last with
        | None -> ()
        | Some (file, off, t) ->
          Fmt.pr
            "  wal frontier %s:%d at t=%g (byte offsets as in pet audit \
             --json)@."
            file off t);
        if method_rows <> [] then begin
          Fmt.pr "per-method latency (reconstructed):@.";
          List.iter
            (fun (m, n, p99) ->
              Fmt.pr "  %-16s %8d requests  p99 <= %gs@." m n p99)
            method_rows
        end;
        if tenant_rows <> [] then begin
          Fmt.pr "per-tenant latency (reconstructed):@.";
          List.iter
            (fun (tn, n, p99) ->
              Fmt.pr "  %-16s %8d requests  p99 <= %gs@." tn n p99)
            tenant_rows
        end;
        if slo_rows <> [] then begin
          Fmt.pr "slo (last window seen / peak burn):@.";
          List.iter
            (fun (key, requests, p99, err, eb, eb_max, lb, lb_max, br) ->
              Fmt.pr
                "  %-24s %6d req  p99=%gs err=%.4f  burn err=%.2f (peak \
                 %.2f) lat=%.2f (peak %.2f)%s@."
                key (int_of_float requests) p99 err eb eb_max lb lb_max
                (if br then "  BREACHED" else ""))
            slo_rows
        end;
        `Ok ()
      end
  in
  let doc =
    "Reconstruct the story a flight journal tells: record counts and \
     damage, lifecycle marks, per-method and per-tenant latency \
     distributions summed back from the snapshot deltas, SLO burn-rate \
     series, and the last write-ahead-log frontier stamp (the same byte \
     offsets $(b,pet audit --json) and $(b,pet store inspect) use)."
  in
  Cmd.v (Cmd.info "report" ~doc) Term.(ret (const run $ dir_arg $ json_arg))

let flight_replay_cmd =
  let dir_arg =
    let doc = "The data directory holding the flight-NNNNNN.log segments." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)
  in
  let run dir =
    match
      Pet_store.Flight_log.fold dir ~init:() (fun () r ->
          Printf.printf "%s:%d %s\n" r.Pet_store.Flight_log.file
            r.Pet_store.Flight_log.offset r.Pet_store.Flight_log.payload)
    with
    | Error m -> `Error (false, Printf.sprintf "%s: %s" dir m)
    | Ok ((), damage) ->
      List.iter
        (fun (d : Pet_store.Flight_log.damage) ->
          Printf.eprintf "damage %s:%d %s\n" d.Pet_store.Flight_log.dfile
            d.Pet_store.Flight_log.doffset d.Pet_store.Flight_log.dreason)
        damage;
      `Ok ()
  in
  let doc =
    "Print every readable flight record in order, prefixed with its \
     $(b,file:offset) coordinate (torn tails are truncated silently, \
     mid-journal damage goes to standard error and scanning continues)."
  in
  Cmd.v (Cmd.info "replay" ~doc) Term.(ret (const run $ dir_arg))

let flight_cmd =
  let doc =
    "Read the flight-recorder journal written by $(b,pet serve --flight): \
     delta-encoded metric snapshots, SLO burn rates, slow-trace headers, \
     log events and lifecycle marks, identifier-only by construction."
  in
  Cmd.group (Cmd.info "flight" ~doc) [ flight_report_cmd; flight_replay_cmd ]

(* --- top -------------------------------------------------------------------------- *)

let top_cmd =
  let addr_arg =
    let doc = "Server address, e.g. 127.0.0.1:7464." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"HOST:PORT" ~doc)
  in
  let interval_arg =
    let doc = "Seconds between frames." in
    Arg.(value & opt float 1.0 & info [ "interval" ] ~docv:"SECONDS" ~doc)
  in
  let frames_arg =
    let doc = "Stop after $(docv) frames (0 streams until interrupted)." in
    Arg.(value & opt int 0 & info [ "frames" ] ~docv:"N" ~doc)
  in
  let run addr interval frames =
    let split =
      match String.rindex_opt addr ':' with
      | None -> None
      | Some i ->
        let host = String.sub addr 0 i in
        let host =
          if host = "" || host = "localhost" then "127.0.0.1" else host
        in
        Option.map
          (fun port -> (host, port))
          (int_of_string_opt
             (String.sub addr (i + 1) (String.length addr - i - 1)))
    in
    match split with
    | None -> `Error (false, Printf.sprintf "%s: expected HOST:PORT" addr)
    | Some (host, port) -> (
      match
        let inet =
          try Unix.inet_addr_of_string host
          with Failure _ -> (Unix.gethostbyname host).h_addr_list.(0)
        in
        let fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
        (try Unix.connect fd (ADDR_INET (inet, port))
         with e -> Unix.close fd; raise e);
        fd
      with
      | exception Unix.Unix_error (e, _, _) ->
        `Error
          ( false,
            Printf.sprintf "cannot connect to %s:%d: %s" host port
              (Unix.error_message e) )
      | exception Not_found ->
        `Error (false, Printf.sprintf "cannot resolve host %s" host)
      | fd ->
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        output_string oc
          (Printf.sprintf
             "{\"pet\":1,\"id\":1,\"method\":\"watch\",\"params\":{\"interval\":%g,\"frames\":%d}}\n"
             interval frames);
        flush oc;
        (* Each frame is a full snapshot (the server starts a fresh
           delta encoder per frame), so rates are the difference of
           consecutive frames over their timestamps. *)
        let tbl kvs = List.map (fun (k, v) -> (k, v)) kvs in
        let parse_frame line =
          match Json.parse line with
          | Error _ -> None
          | Ok response -> (
            match Option.bind (Json.member "ok" response) (Json.member "watch") with
            | None -> None
            | Some w ->
              let t =
                Option.fold ~none:0. ~some:json_num (Json.member "t" w)
              in
              let counters =
                List.map
                  (fun (k, v) -> (k, json_num v))
                  (Option.fold ~none:[] ~some:json_obj
                     (Json.member "counters" w))
              in
              let gauges =
                List.map
                  (fun (k, v) -> (k, json_num v))
                  (Option.fold ~none:[] ~some:json_obj
                     (Json.member "gauges" w))
              in
              let hists =
                List.map
                  (fun (k, h) ->
                    let n =
                      Option.fold ~none:0. ~some:json_num (Json.member "n" h)
                    in
                    let buckets =
                      List.map
                        (fun (le, c) ->
                          (le_value le, int_of_float (json_num c)))
                        (Option.fold ~none:[] ~some:json_obj
                           (Json.member "buckets" h))
                    in
                    (k, (n, buckets)))
                  (Option.fold ~none:[] ~some:json_obj (Json.member "hist" w))
              in
              Some (t, tbl counters, tbl gauges, hists))
        in
        let lookup table name =
          Option.value ~default:0. (List.assoc_opt name table)
        in
        let render frame_no prev (t, counters, gauges, hists) =
          if Unix.isatty Unix.stdout then print_string "\027[H\027[2J";
          let dt =
            match prev with
            | Some (pt, _, _, _) when t -. pt > 0. -> Some (t -. pt)
            | _ -> None
          in
          let rate cur_v prev_v =
            match (dt, prev) with
            | Some dt, Some _ -> Printf.sprintf "%8.1f/s" ((cur_v -. prev_v) /. dt)
            | _ -> "       --"
          in
          let prev_counters =
            match prev with Some (_, c, _, _) -> c | None -> []
          in
          let prev_hists =
            match prev with Some (_, _, _, h) -> h | None -> []
          in
          let total = lookup counters "pet_server_requests_total" in
          let errors = lookup counters "pet_server_errors_total" in
          Fmt.pr "pet top %s — frame %d, t=%g@." addr frame_no t;
          Fmt.pr "requests %8.0f %s   errors %8.0f %s@." total
            (rate total (lookup prev_counters "pet_server_requests_total"))
            errors
            (rate errors (lookup prev_counters "pet_server_errors_total"));
          Fmt.pr
            "sessions active %g   commit queue %g   tenants %g   uptime %gs@."
            (lookup gauges "pet_sessions_active")
            (lookup gauges "pet_net_commit_queue_depth")
            (lookup gauges "pet_tenants")
            (lookup gauges "pet_process_uptime_seconds");
          (* Per-method rows from the request-latency histograms: the
             frame-to-frame n delta is the rate, the bucket deltas give
             the interval p99 (full-frame p99 on the first frame). *)
          let methods =
            List.filter_map
              (fun (name, (n, buckets)) ->
                let fam, labels = metric_labels name in
                if fam = "pet_server_request_seconds" then
                  Option.map
                    (fun m -> (m, name, n, buckets))
                    (List.assoc_opt "method" labels)
                else None)
              hists
            |> List.sort compare
          in
          if methods <> [] then begin
            Fmt.pr "per-method:@.";
            List.iter
              (fun (m, name, n, buckets) ->
                let pn, pbuckets =
                  match List.assoc_opt name prev_hists with
                  | Some (pn, pb) -> (pn, pb)
                  | None -> (0., [])
                in
                let delta_buckets =
                  List.map
                    (fun (b, c) ->
                      ( b,
                        c
                        - Option.value ~default:0 (List.assoc_opt b pbuckets)
                      ))
                    buckets
                in
                let dn = int_of_float (n -. pn) in
                let p99 =
                  if dt <> None && dn > 0 then
                    quantile_of_buckets delta_buckets dn 0.99
                  else
                    quantile_of_buckets buckets (int_of_float n) 0.99
                in
                Fmt.pr "  %-16s %8.0f req %s  p99 <= %gs@." m n
                  (rate n pn) p99)
              methods
          end;
          (* Per-tenant and SLO rows ride the same gauge/counter
             families the Prometheus export serves. *)
          let tenants =
            List.filter_map
              (fun (name, v) ->
                let fam, labels = metric_labels name in
                if fam = "pet_tenant_requests_total" then
                  Option.map
                    (fun tn -> (tn, name, v))
                    (List.assoc_opt "tenant" labels)
                else None)
              counters
            |> List.sort compare
          in
          if tenants <> [] then begin
            Fmt.pr "per-tenant:@.";
            List.iter
              (fun (tn, name, v) ->
                Fmt.pr "  %-16s %8.0f req %s@." tn v
                  (rate v (lookup prev_counters name)))
              tenants
          end;
          let slos =
            List.filter_map
              (fun (name, _) ->
                let fam, labels = metric_labels name in
                if fam = "pet_slo_window_requests" then
                  List.assoc_opt "slo" labels
                else None)
              gauges
            |> List.sort_uniq compare
          in
          if slos <> [] then begin
            Fmt.pr "slo:@.";
            List.iter
              (fun key ->
                let g family =
                  lookup gauges (Printf.sprintf "%s{slo=\"%s\"}" family key)
                in
                Fmt.pr
                  "  %-24s %6.0f req  p99=%gs err=%.4f  burn lat=%.2f \
                   err=%.2f%s@."
                  key
                  (g "pet_slo_window_requests")
                  (g "pet_slo_p99_seconds")
                  (g "pet_slo_error_ratio")
                  (g "pet_slo_latency_burn")
                  (g "pet_slo_error_burn")
                  (if g "pet_slo_breached" > 0. then "  BREACHED" else ""))
              slos
          end
        in
        let rec pump frame_no prev =
          if frames > 0 && frame_no > frames then `Ok ()
          else
            match In_channel.input_line ic with
            | None -> if frames = 0 then `Ok () else `Error (false, "server closed the connection")
            | Some line -> (
              match parse_frame line with
              | None ->
                `Error
                  (false, Printf.sprintf "unexpected response: %s" line)
              | Some frame ->
                render frame_no prev frame;
                pump (frame_no + 1) (Some frame))
        in
        let result =
          try pump 1 None with
          | Sys_error m -> `Error (false, m)
          | End_of_file -> `Error (false, "server closed the connection")
        in
        close_out_noerr oc;
        result)
  in
  let doc =
    "Live operations view over a running $(b,pet serve --tcp) server: \
     subscribe to the $(b,watch) protocol method and render request and \
     error rates, per-method latency quantiles, per-tenant rates, queue \
     depths and SLO burn rates, refreshed every $(b,--interval) seconds."
  in
  Cmd.v
    (Cmd.info "top" ~doc)
    Term.(ret (const run $ addr_arg $ interval_arg $ frames_arg))

(* --- bench diff -------------------------------------------------------------------- *)

let bench_cmd =
  let diff_cmd =
    let file_arg index docv which =
      let doc = Printf.sprintf "The %s BENCH_*.json file." which in
      Arg.(required & pos index (some string) None & info [] ~docv ~doc)
    in
    let threshold_arg =
      let doc =
        "Fractional change (in percent) past which a directional value \
         counts as a regression."
      in
      Arg.(value & opt float 25. & info [ "threshold" ] ~docv:"PCT" ~doc)
    in
    let run old_file new_file threshold =
      let load file =
        match In_channel.with_open_text file In_channel.input_all with
        | exception Sys_error m -> Error m
        | contents -> (
          match Json.parse contents with
          | Ok json -> Ok json
          | Error m -> Error (Printf.sprintf "%s: %s" file m))
      in
      match (load old_file, load new_file) with
      | Error m, _ | _, Error m -> `Error (false, m)
      | Ok old_json, Ok new_json ->
        let findings =
          Pet_pet.Benchdiff.diff ~threshold:(threshold /. 100.) old_json
            new_json
        in
        Fmt.pr "%s" (Pet_pet.Benchdiff.render findings);
        if Pet_pet.Benchdiff.has_regression findings then
          `Error (false, "performance regression past the threshold")
        else `Ok ()
    in
    let doc =
      "Compare two bench summaries (BENCH_*.json) and exit non-zero if \
       any throughput dropped or any cost grew by more than \
       $(b,--threshold) percent. Keys are classified by name: \
       $(i,…per_s…)/$(i,…rate…) must not drop; $(i,…_s), $(i,…_ms), \
       $(i,…seconds…), $(i,…overhead…), $(i,…latency…), $(i,…errors…) \
       must not grow; everything else is informational."
    in
    Cmd.v
      (Cmd.info "diff" ~doc)
      Term.(
        ret
          (const run
          $ file_arg 0 "OLD" "baseline"
          $ file_arg 1 "NEW" "candidate"
          $ threshold_arg))
  in
  let doc =
    "Work with the bench harness's machine-readable output (the \
     BENCH_*.json files written by $(b,dune exec bench/main.exe))."
  in
  Cmd.group (Cmd.info "bench" ~doc) [ diff_cmd ]

(* --- main -------------------------------------------------------------------------- *)

let () =
  let doc =
    "A privacy-enhancing technology for data collection via forms with \
     data minimization, full accuracy and informed consent (EDBT 2024)."
  in
  let info = Cmd.info "pet" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            check_cmd; minimize_cmd; inform_cmd; fill_cmd; audit_cmd;
            atlas_cmd;
            graph_cmd;
            simulate_cmd;
            serve_cmd;
            ping_cmd;
            corpus_cmd;
            store_cmd;
            profile_cmd;
            trace_cmd;
            flight_cmd;
            top_cmd;
            bench_cmd;
          ]))
