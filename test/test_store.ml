(* Tests for the durable store: CRC-32 and record framing, crash
   injection (truncation at every byte offset), recovery determinism,
   grant-id continuity across restarts, the R2-on-disk invariant,
   corruption localization, segment rotation and compaction
   equivalence. *)

module Json = Pet_pet.Json
module Spec = Pet_rules.Spec
module Persist = Pet_server.Persist
module Service = Pet_server.Service
module Crc32 = Pet_store.Crc32
module Record = Pet_store.Record
module Store = Pet_store.Store
module Running = Pet_casestudies.Running

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "pet_store_test_%d_%d" (Unix.getpid ()) !counter)
    in
    let rec remove path =
      if Sys.is_directory path then begin
        Array.iter
          (fun entry -> remove (Filename.concat path entry))
          (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
    in
    if Sys.file_exists dir then remove dir;
    dir

let read_file path =
  In_channel.with_open_bin path In_channel.input_all

let write_file path contents =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc contents)

(* --- CRC-32 and framing ------------------------------------------------------- *)

let test_crc32_vector () =
  (* The standard check value for reflected CRC-32/ISO-HDLC. *)
  Alcotest.(check int) "123456789" 0xCBF43926 (Crc32.string "123456789");
  Alcotest.(check int) "empty" 0 (Crc32.string "");
  Alcotest.(check int)
    "sub agrees with string" (Crc32.string "456")
    (Crc32.sub "123456789" 3 3)

let test_record_roundtrip () =
  List.iter
    (fun payload ->
      let framed = Record.frame payload in
      Alcotest.(check int) "framed size"
        (Record.header_bytes + String.length payload)
        (String.length framed);
      match Record.read framed 0 with
      | Record.Record { payload = back; next } ->
        Alcotest.(check string) "payload" payload back;
        Alcotest.(check int) "next" (String.length framed) next
      | _ -> Alcotest.fail "frame did not read back")
    [ ""; "x"; {|{"ev":"rules","digest":"d","text":"t"}|}; String.make 4096 'z' ]

let test_record_bitflip () =
  let payload = {|{"ev":"session_submitted","id":"s0","grant":3,"at":9}|} in
  let framed = Record.frame payload in
  for i = 0 to String.length framed - 1 do
    let corrupted = Bytes.of_string framed in
    Bytes.set corrupted i (Char.chr (Char.code framed.[i] lxor 0x40));
    match Record.read (Bytes.to_string corrupted) 0 with
    | Record.Record { payload = back; _ } ->
      Alcotest.failf "flip at byte %d went undetected (payload %S)" i back
    | Record.End -> Alcotest.failf "flip at byte %d read as End" i
    | Record.Torn _ | Record.Corrupt _ -> ()
  done

(* --- A service wired to a store ----------------------------------------------- *)

let resolve = function
  | "running" -> Some (Spec.to_string (Running.exposure ()))
  | _ -> None

let make_service () =
  let tick = ref 0 in
  let now () =
    incr tick;
    float_of_int !tick
  in
  Service.create ~durable:true ~resolve ~now ()

let request service ?(id = 1) method_ params =
  let line =
    Json.to_string
      (Json.Obj
         [
           ("pet", Json.Int 1);
           ("id", Json.Int id);
           ("method", Json.String method_);
           ("params", Json.Obj params);
         ])
  in
  match Json.parse (Service.handle_line service line) with
  | Ok response -> response
  | Error m -> Alcotest.failf "response is not JSON: %s" m

let expect_ok response =
  match Json.member "ok" response with
  | Some payload -> payload
  | None -> Alcotest.failf "expected ok, got %s" (Json.to_string response)

(* Run the paper's running example through a durable service: publish,
   two sessions, reports, choices, submissions — leaves grants 0 and 1
   in the ledger. The running form is a&b|c over 3 predicates. *)
let drive service =
  ignore
    (expect_ok
       (request service "publish_rules" [ ("source", Json.String "running") ]));
  let session params = Json.string_opt (Option.get (Json.member "session" (expect_ok params))) |> Option.get in
  let s0 = session (request service "new_session" [ ("source", Json.String "running") ]) in
  let s1 = session (request service "new_session" [ ("source", Json.String "running") ]) in
  List.iter
    (fun (s, v) ->
      ignore
        (expect_ok
           (request service "get_report"
              [ ("session", Json.String s); ("valuation", Json.String v) ]));
      ignore
        (expect_ok
           (request service "choose_option"
              [ ("session", Json.String s); ("option", Json.Int 0) ]));
      ignore
        (expect_ok (request service "submit_form" [ ("session", Json.String s) ])))
    [ (s0, "110"); (s1, "011") ]

let open_ok ?segment_bytes ?auto_compact_segments dir =
  match Store.open_dir ?segment_bytes ?auto_compact_segments ~fsync:false dir with
  | Ok pair -> pair
  | Error m -> Alcotest.failf "open_dir %s: %s" dir m

let populated_dir ?segment_bytes () =
  let dir = temp_dir () in
  let store, _ = open_ok ?segment_bytes dir in
  let service = make_service () in
  Service.set_sink service (Store.sink store);
  drive service;
  Store.close store;
  (dir, service)

let recover_service dir =
  let recovery =
    match Store.read dir with
    | Ok r -> r
    | Error m -> Alcotest.failf "read %s: %s" dir m
  in
  let service = make_service () in
  List.iter
    (fun event ->
      match Service.apply_event service event with
      | Ok () -> ()
      | Error m -> Alcotest.failf "apply_event: %s" m)
    recovery.Store.events;
  (service, recovery)

let state_json service =
  Json.to_string
    (Json.List (List.map Persist.to_json (Service.state_events service)))

(* --- Crash injection ----------------------------------------------------------- *)

(* Truncating the only segment at every byte offset simulates a crash
   at any point mid-append: recovery must never raise, must recover a
   prefix of the event stream, and must lose at most the record that
   was being written. *)
let test_truncate_everywhere () =
  let dir, _ = populated_dir () in
  let wal =
    match Sys.readdir dir with
    | [| file |] -> Filename.concat dir file
    | files -> Alcotest.failf "expected one segment, found %d" (Array.length files)
  in
  let whole = read_file wal in
  let full_events =
    match Store.read dir with
    | Ok r -> List.map Persist.to_json r.Store.events
    | Error m -> Alcotest.failf "baseline read: %s" m
  in
  let total = List.length full_events in
  Alcotest.(check bool) "baseline has events" true (total > 0);
  (* Record boundaries of the intact file: a cut exactly on one leaves
     a clean, shorter log; a cut anywhere else leaves a torn tail. *)
  let boundaries = Hashtbl.create 16 in
  let rec collect offset =
    Hashtbl.replace boundaries offset ();
    match Record.read whole offset with
    | Record.Record { next; _ } -> collect next
    | _ -> ()
  in
  collect 0;
  let crash_dir = temp_dir () in
  Unix.mkdir crash_dir 0o755;
  let crash_wal = Filename.concat crash_dir (Filename.basename wal) in
  let last_seen = ref (-1) in
  for cut = 0 to String.length whole - 1 do
    write_file crash_wal (String.sub whole 0 cut);
    match Store.read crash_dir with
    | Error m -> Alcotest.failf "cut at %d: recovery failed: %s" cut m
    | Ok r ->
      let got = List.map Persist.to_json r.Store.events in
      let n = List.length got in
      (* A strict prefix of the full stream... *)
      List.iteri
        (fun i event ->
          Alcotest.(check string)
            (Printf.sprintf "cut %d event %d" cut i)
            (Json.to_string (List.nth full_events i))
            (Json.to_string event))
        got;
      (* ...that never loses an already-complete record (monotone in the
         cut point) and reports the torn tail when one exists. *)
      Alcotest.(check bool) "monotone" true (n >= !last_seen);
      last_seen := max !last_seen n;
      Alcotest.(check bool)
        (Printf.sprintf "cut %d torn-tail report" cut)
        (not (Hashtbl.mem boundaries cut))
        (r.Store.truncated <> None)
  done;
  Alcotest.(check int) "last cut recovers all but the final record"
    (total - 1) !last_seen

(* open_dir must truncate the torn tail in place and keep working:
   append after recovery, reopen, and the new event is there. *)
let test_torn_tail_truncated_and_appendable () =
  let dir, _ = populated_dir () in
  let wal =
    Filename.concat dir
      (match Sys.readdir dir with
      | [| f |] -> f
      | _ -> Alcotest.fail "expected one segment")
  in
  let whole = read_file wal in
  write_file wal (String.sub whole 0 (String.length whole - 3));
  let store, recovery = open_ok dir in
  Alcotest.(check bool) "torn tail reported" true (recovery.Store.truncated <> None);
  Alcotest.(check (list string)) "no hard damage" []
    (List.map (fun d -> d.Store.reason) recovery.Store.damage);
  Store.append store
    (Persist.Rules { digest = "after-crash"; text = "form a\nbenefits b\nrule b := a" });
  Store.close store;
  match Store.read dir with
  | Error m -> Alcotest.fail m
  | Ok r ->
    let kinds = List.map Persist.kind r.Store.events in
    Alcotest.(check bool) "appended event recovered" true
      (List.exists
         (function
           | Persist.Rules { digest = "after-crash"; _ } -> true | _ -> false)
         r.Store.events);
    Alcotest.(check bool) "still no damage" true (r.Store.damage = []);
    ignore kinds

(* --- Recovery semantics --------------------------------------------------------- *)

let test_recovery_deterministic () =
  let dir, original = populated_dir () in
  let a, _ = recover_service dir in
  let b, _ = recover_service dir in
  Alcotest.(check string) "replay twice, identical state" (state_json a)
    (state_json b);
  (* The recovered state and the original agree on everything durable:
     same rules, grants and session skeletons. *)
  Alcotest.(check string) "recovered state matches original"
    (state_json original) (state_json a)

let test_grant_ids_continue () =
  let dir, _ = populated_dir () in
  let service, _ = recover_service dir in
  (* Sessions s0 and s1 were submitted before the restart; a new
     session must be s2 and its grant must be 2. *)
  let created = expect_ok (request service "new_session" [ ("source", Json.String "running") ]) in
  Alcotest.(check string) "session ids continue" "s2"
    (Option.get (Json.string_opt (Option.get (Json.member "session" created))));
  ignore
    (expect_ok
       (request service "get_report"
          [ ("session", Json.String "s2"); ("valuation", Json.String "110") ]));
  ignore
    (expect_ok
       (request service "choose_option"
          [ ("session", Json.String "s2"); ("option", Json.Int 0) ]));
  let submitted =
    expect_ok (request service "submit_form" [ ("session", Json.String "s2") ])
  in
  Alcotest.(check int) "grant ids continue" 2
    (match Json.member "grant" submitted with
    | Some (Json.Int n) -> n
    | _ -> -1)

let test_r2_on_disk () =
  let dir, _ = populated_dir () in
  match Store.scan dir with
  | Error m -> Alcotest.fail m
  | Ok reports ->
    List.iter
      (fun (r : Store.file_report) ->
        Alcotest.(check (list string))
          (r.Store.file ^ " framing intact")
          []
          (List.map (fun d -> d.Store.reason) r.Store.damage);
        Alcotest.(check (list string))
          (r.Store.file ^ " holds no valuation")
          []
          (List.map (fun d -> d.Store.reason) r.Store.r2))
      reports;
    (* Raw bytes on disk never contain the valuation strings the
       respondents sent ("110" appears inside minimized forms only with
       blanks, but the JSON key "valuation" must be absent). *)
    List.iter
      (fun (r : Store.file_report) ->
        let bytes = read_file (Filename.concat dir r.Store.file) in
        let contains s =
          let n = String.length bytes and m = String.length s in
          let rec go i =
            i + m <= n && (String.sub bytes i m = s || go (i + 1))
          in
          go 0
        in
        Alcotest.(check bool) "no \"valuation\" key on disk" false
          (contains "\"valuation\""))
      reports

let test_midlog_corruption_localized () =
  let dir, _ = populated_dir () in
  let wal =
    Filename.concat dir
      (match Sys.readdir dir with
      | [| f |] -> f
      | _ -> Alcotest.fail "expected one segment")
  in
  let whole = read_file wal in
  (* Flip a byte inside the *second* record's payload: replay must keep
     the first record, stop there, and verify must name the offset of
     the record whose checksum broke. *)
  let second_offset =
    match Record.read whole 0 with
    | Record.Record { next; _ } -> next
    | _ -> Alcotest.fail "cannot find second record"
  in
  let target = second_offset + Record.header_bytes + 2 in
  let corrupted = Bytes.of_string whole in
  Bytes.set corrupted target (Char.chr (Char.code whole.[target] lxor 0xFF));
  write_file wal (Bytes.to_string corrupted);
  (match Store.read dir with
  | Error m -> Alcotest.failf "recovery raised/failed: %s" m
  | Ok r ->
    Alcotest.(check int) "clean prefix is the first record" 1
      (List.length r.Store.events);
    (match r.Store.damage with
    | [ d ] ->
      Alcotest.(check int) "damage at the record boundary" second_offset
        d.Store.offset
    | ds -> Alcotest.failf "expected one damage report, got %d" (List.length ds)));
  match Store.scan dir with
  | Error m -> Alcotest.fail m
  | Ok [ report ] ->
    (match report.Store.damage with
    | [ d ] ->
      Alcotest.(check int) "verify names the same offset" second_offset
        d.Store.offset
    | ds -> Alcotest.failf "scan: expected one damage report, got %d" (List.length ds))
  | Ok reports -> Alcotest.failf "expected one file report, got %d" (List.length reports)

(* --- Rotation and compaction ---------------------------------------------------- *)

let test_rotation () =
  (* A 256-byte threshold forces a rotation every record or two. *)
  let dir, _ = populated_dir ~segment_bytes:256 () in
  let segments =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> String.length f > 4 && String.sub f 0 4 = "wal-")
  in
  Alcotest.(check bool)
    (Printf.sprintf "several segments (%d)" (List.length segments))
    true
    (List.length segments > 1);
  let service, recovery = recover_service dir in
  Alcotest.(check int) "all files replayed" (List.length segments)
    recovery.Store.files;
  Alcotest.(check bool) "no damage across boundaries" true
    (recovery.Store.damage = [] && recovery.Store.truncated = None);
  ignore service

let test_compaction_equivalence () =
  let dir, _ = populated_dir () in
  let before, recovery = recover_service dir in
  (* Offline squash with ttl 0 (keep every session), written back as a
     snapshot; recovering from the snapshot alone must rebuild the same
     state. *)
  let store, _ = open_ok dir in
  let compactor = Store.Compactor.create () in
  List.iter (Store.Compactor.add compactor) recovery.Store.events;
  let squashed = Store.Compactor.events ~ttl:0. compactor in
  (match Store.compact store ~events:squashed with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "compact: %s" m);
  Store.close store;
  let files = Sys.readdir dir |> Array.to_list |> List.sort compare in
  Alcotest.(check bool) "old segments retired" true
    (List.for_all (fun f -> String.sub f 0 5 = "snap-" || String.sub f 0 4 = "wal-") files
    && List.exists (fun f -> String.sub f 0 5 = "snap-") files);
  let after, recovery' = recover_service dir in
  Alcotest.(check string) "state survives compaction" (state_json before)
    (state_json after);
  Alcotest.(check bool) "snapshot is clean" true
    (recovery'.Store.damage = [] && recovery'.Store.truncated = None);
  (* And the compacted log still honours R2. *)
  match Store.scan dir with
  | Error m -> Alcotest.fail m
  | Ok reports ->
    List.iter
      (fun (r : Store.file_report) ->
        Alcotest.(check bool) (r.Store.file ^ " r2 clean") true (r.Store.r2 = []))
      reports

let test_online_compaction () =
  (* With a tiny segment size and a low auto-compaction threshold, the
     store asks for compaction; feeding it Service.state_events must
     retire segments and keep the state identical. *)
  let dir = temp_dir () in
  let store, _ = open_ok ~segment_bytes:128 ~auto_compact_segments:2 dir in
  let service = make_service () in
  Service.set_sink service (Store.sink store);
  drive service;
  Alcotest.(check bool) "wants compaction" true (Store.wants_compaction store);
  let before = state_json service in
  (match Store.compact store ~events:(Service.state_events service) with
  | Ok removed -> Alcotest.(check bool) "files retired" true (removed > 0)
  | Error m -> Alcotest.failf "compact: %s" m);
  Store.close store;
  let recovered, _ = recover_service dir in
  Alcotest.(check string) "state survives online compaction" before
    (state_json recovered)


let test_compactor_tombstones () =
  (* The offline compactor applies the consent lifecycle at the log's
     own clock: revoked and expired sessions vanish, their grants
     squash to tombstones (id slot only, no form), and the lifecycle
     events themselves survive so recovery still refuses double
     revocations and re-arms horizons. *)
  let digest = "d1" in
  let grant i sid =
    Persist.Grant
      {
        digest;
        grant_id = i;
        form = "0_1";
        benefits = [ "b1" ];
        session = Some sid;
        tenant = None;
        revoked = false;
      }
  in
  let stream =
    [
      Persist.Rules { digest; text = "benefits b1 grants when p1" };
      Persist.Session_created { id = "s0"; digest; tenant = None; at = 1. };
      Persist.Session_created { id = "s1"; digest; tenant = None; at = 2. };
      Persist.Session_created { id = "s2"; digest; tenant = None; at = 3. };
      grant 0 "s0";
      Persist.Session_submitted { id = "s0"; grant_id = 0; at = 4. };
      grant 1 "s1";
      Persist.Session_submitted { id = "s1"; grant_id = 1; at = 5. };
      grant 2 "s2";
      Persist.Session_submitted { id = "s2"; grant_id = 2; at = 6. };
      Persist.Session_revoked { id = "s0"; at = 7. };
      (* A horizon the stream's own clock has already passed. *)
      Persist.Session_expiry { id = "s1"; horizon = 9.; at = 8. };
      Persist.Session_created { id = "s3"; digest; tenant = None; at = 20. };
    ]
  in
  let compactor = Store.Compactor.create () in
  List.iter (Store.Compactor.add compactor) stream;
  let squashed = Store.Compactor.events ~ttl:0. compactor in
  let grants =
    List.filter_map
      (function
        | Persist.Grant { grant_id; form; revoked; _ } ->
          Some (grant_id, form, revoked)
        | _ -> None)
      squashed
  in
  Alcotest.(check (list (triple int string bool)))
    "revoked and expired grants squash to tombstones"
    [ (0, "", true); (1, "", true); (2, "0_1", false) ]
    (List.sort compare grants);
  let session_ids =
    List.filter_map
      (function
        | Persist.Session_created { id; _ } -> Some id
        | _ -> None)
      squashed
  in
  Alcotest.(check (list string))
    "revoked and expired sessions dropped" [ "s2"; "s3" ]
    (List.sort compare session_ids);
  Alcotest.(check bool) "revocation event survives" true
    (List.exists
       (function Persist.Session_revoked { id; _ } -> id = "s0" | _ -> false)
       squashed);
  (* The expiry already applied at the log clock is also kept: replay
     re-arms it, which is idempotent against the tombstone. *)
  Alcotest.(check bool) "expiry event survives" true
    (List.exists
       (function Persist.Session_expiry { id; _ } -> id = "s1" | _ -> false)
       squashed)

let () =
  Alcotest.run "pet_store"
    [
      ( "record",
        [
          Alcotest.test_case "crc32 vector" `Quick test_crc32_vector;
          Alcotest.test_case "roundtrip" `Quick test_record_roundtrip;
          Alcotest.test_case "bitflip detected" `Quick test_record_bitflip;
        ] );
      ( "crash",
        [
          Alcotest.test_case "truncate everywhere" `Quick
            test_truncate_everywhere;
          Alcotest.test_case "torn tail truncated, then appendable" `Quick
            test_torn_tail_truncated_and_appendable;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "deterministic" `Quick test_recovery_deterministic;
          Alcotest.test_case "grant ids continue" `Quick test_grant_ids_continue;
          Alcotest.test_case "r2 on disk" `Quick test_r2_on_disk;
          Alcotest.test_case "corruption localized" `Quick
            test_midlog_corruption_localized;
        ] );
      ( "segments",
        [
          Alcotest.test_case "rotation" `Quick test_rotation;
          Alcotest.test_case "compaction equivalence" `Quick
            test_compaction_equivalence;
          Alcotest.test_case "online compaction" `Quick test_online_compaction;
          Alcotest.test_case "compaction tombstones revoked grants" `Quick
            test_compactor_tombstones;
        ] );
    ]
