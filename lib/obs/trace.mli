(** Request-scoped tracing: per-request span trees with typed
    annotations, kept in fixed-size rings and exportable as a readable
    tree or Chrome [trace_event] JSON.

    {!Metrics} and {!Span} answer "what does the process do overall";
    a trace answers "what did {e this request} do": which spans ran, in
    what order, how long each took, and a handful of typed annotations
    (wire method, rule-set digest, backend, session id). Annotations are
    the {e only} free-form data a trace carries, and call sites only
    annotate identifiers — a raw valuation is never representable as a
    span name and never passed as an annotation, so captures are
    valuation-free by construction (DESIGN.md §12; a test greps captures
    for bit-vectors after a full workflow).

    Completed traces land in two rings: every trace in the [recent]
    ring, and those at least {!slow_threshold} seconds long also in the
    [slow] ring, so a burst of fast requests cannot flush the one slow
    request an operator is hunting. Both rings evict oldest-first and
    count their evictions.

    Captures are domain-local (each worker domain traces the request it
    is handling; one capture open per domain) while the id sequence and
    both rings are shared — ids are atomic and the rings mutex-guarded,
    so a trace finished on any domain is visible to [trace] queries
    answered by every other. The module is clock-agnostic (it reads
    {!Metrics.now}, two reads per traced request). Tracing has its own
    switch on top of the global one:
    {!run} is a single branch when disabled, and span capture
    piggybacks on the timestamps {!Span.enter} already reads. *)

(** {1 Switch and configuration} *)

val enabled : unit -> bool

val enable : unit -> unit
(** Turn tracing on. Spans are only captured while {!Metrics.enabled}
    is also true — the span instrumentation itself is behind the global
    switch. *)

val disable : unit -> unit

val set_slow_threshold : float -> unit
(** Traces lasting at least this many seconds are also kept in the slow
    ring (default [infinity]: nothing is classified slow). [0.] keeps
    every trace — useful for deterministic transcripts. *)

val slow_threshold : unit -> float

val configure : ?recent:int -> ?slow:int -> unit -> unit
(** Resize the rings (default 64 recent, 32 slow), dropping current
    contents and zeroing the eviction counters. Capacities must be
    positive. *)

(** {1 Capturing} *)

val generate_id : unit -> string
(** Sequential ids ["t0"], ["t1"], … — deterministic by design, like
    session ids: they correlate a transcript, they are not secrets. *)

val run : id:string -> (unit -> 'a) -> 'a
(** [run ~id f] runs [f] capturing one trace: every {!Span.enter} under
    it becomes a node of the trace's own tree (exact per-entry timings,
    not aggregates), and {!annotate} attaches fields to it. The capture
    is completed — classified, ring-buffered — even if [f] raises.
    When tracing is disabled this is one branch and a tail call of [f];
    a nested [run] joins the enclosing capture instead of starting a
    second one. *)

type value = String of string | Int of int | Bool of bool | Float of float
(** The closed annotation type: call sites cannot smuggle structures
    (or valuations) into a capture, only tagged scalars. *)

val annotate : string -> value -> unit
(** Attach a field to the active trace; a no-op when no trace is
    running. Annotation order is preserved. *)

val current : unit -> string option
(** The active trace id, if any — {!Log} stamps it on every line logged
    while a request is being traced. *)

(** {1 Completed traces} *)

type span = {
  name : string;
  start : float;  (** seconds since the trace started *)
  dur : float;
  children : span list;  (** in entry order *)
}

type t = {
  id : string;
  started : float;  (** clock reading at capture start *)
  duration : float;
  slow : bool;  (** duration reached {!slow_threshold} at capture time *)
  annotations : (string * value) list;
  spans : span list;  (** top-level spans, in entry order *)
}

val recent : unit -> t list
(** Ring contents, newest first. *)

val slow : unit -> t list
(** Slow-ring contents, newest first. *)

val find : string -> t option
(** Look a trace up by id in either ring. *)

val evictions : unit -> int * int
(** Traces evicted so far from (recent, slow) — how much history the
    rings have already forgotten. *)

val reset : unit -> unit
(** Empty both rings, zero the eviction counters and restart the id
    sequence. Does not change {!enabled}, the threshold or capacities. *)

(** {1 Export} *)

val render : t -> string
(** Readable multi-line form: an id/duration/annotations header, then
    the span tree with [%.6f] durations — byte-stable under a logical
    clock. *)

val chrome : t -> string
(** The trace as Chrome [trace_event] JSON (one complete — ["ph":"X"] —
    event per span plus one for the whole request, microsecond
    timestamps relative to the trace start), loadable in
    [chrome://tracing] and Perfetto. Self-contained JSON text; this
    module has no JSON library and needs none. *)

val json_escape : string -> string
(** JSON string-body escaping (quotes, backslashes, control characters)
    shared with {!Log} so captures and log lines render identically. *)
