(** Algorithm 2 of the paper: the equilibrium strategy-selection
    procedure.

    Each player with a single MAS plays it. Then, repeatedly: any player
    one of whose moves {e strictly dominates} their alternatives — with
    payoffs evaluated against the players already committed, plus
    themselves — commits to it and every payoff is re-evaluated ("assume
    all players play their best move in succession, and each time
    recompute the values of the privacy payoff function; wait until the
    payoff of best move dominates all other to play it"). When no player
    has a strictly dominating move, the deadlock is broken as in lines
    11-16 of the paper: the player/move pair with the globally highest
    payoff commits, ties resolved by the lexicographic order on moves and
    then on players.

    Theorem 4.6: for [PO_blank] and [PO_SM] the resulting profile is a
    Nash equilibrium; {!Equilibrium.is_nash} verifies this on the case
    studies and on random instances in the tests. *)

val compute : ?payoff:Payoff.kind -> Pet_minimize.Atlas.t -> Profile.t
(** [payoff] defaults to [Blank]. *)

val best_move_of_player :
  ?payoff:Payoff.kind -> Profile.t -> int -> int * float
(** Under a final profile: the given player's best response (MAS index and
    payoff) with crowds as in the profile — used to explain the
    recommendation to a user. *)
