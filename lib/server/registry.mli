(** The compiled-engine cache.

    Building a provider ({!Pet_pet.Workflow.provider}) means compiling
    the rules into an engine, enumerating the MAS atlas and solving the
    equilibrium — seconds of work for real forms. The service therefore
    compiles each distinct rule set once and shares the result across
    every session that uses it, keyed by {!digest} of the canonical rule
    text. The cache is LRU-bounded and instrumented: hit/miss/eviction
    counters feed the [stats] endpoint. *)

type 'a t

type stats = {
  size : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
}

val digest : string -> string
(** Content digest of a rule-spec text (32 hex chars). Callers digest the
    {e canonical} rendering ({!Pet_rules.Spec.to_string} of the parsed
    problem) so that formatting or rule-order differences map to the same
    key. *)

val create : ?capacity:int -> unit -> 'a t
(** Default capacity 16. @raise Invalid_argument when [capacity < 1]. *)

val find : 'a t -> string -> 'a option
(** Counting lookup: updates the hit/miss counters and the LRU clock. *)

val peek : 'a t -> string -> 'a option
(** Non-counting lookup for internal re-reads (a [get_report] fetching
    the engine its session already resolved); still refreshes the LRU
    clock, which makes a {e recently used} entry safe from the next
    eviction. That is weaker than a pin: an idle session's engine can
    still be evicted by enough later inserts — e.g. a burst of tenant
    version swaps — and the service then recompiles it from the
    retained rule text (durable store, shard-shared texts, or the
    tenant registry, all of which outlive the cache) rather than
    failing the session. Only when no text was retained anywhere does
    the session's next request fail, with the offending digest in the
    [unknown_rules] message. *)

val add : 'a t -> string -> 'a -> unit
(** Insert (replacing any previous binding), evicting the least recently
    used entry when the cache is full. *)

val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a * bool
(** Counting lookup-or-build; the boolean is [true] on a hit. *)

val stats : 'a t -> stats
