lib/pet/ledger.mli: Json Workflow
