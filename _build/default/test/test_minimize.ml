(* Tests for Algorithm 1, the atlas, the baseline and the figure
   machinery, against the paper's running example (Sections 3.1-3.3,
   Figures 1 and 2). *)

module F = Pet_logic.Formula
module Parse = Pet_logic.Parse
module Universe = Pet_valuation.Universe
module Total = Pet_valuation.Total
module Partial = Pet_valuation.Partial
module Rule = Pet_rules.Rule
module Exposure = Pet_rules.Exposure
module Engine = Pet_rules.Engine
module A1 = Pet_minimize.Algorithm1
module Atlas = Pet_minimize.Atlas
module Baseline = Pet_minimize.Baseline
module Lattice = Pet_minimize.Lattice
module Dot = Pet_minimize.Dot
module Running = Pet_casestudies.Running
module Hcov = Pet_casestudies.Hcov

let running_engine () = Engine.create ~backend:Engine.Bdd (Running.exposure ())

let mas_strings engine ?mode v =
  List.map
    (fun (c : A1.choice) -> Partial.to_string c.A1.mas)
    (A1.mas_of ?mode engine v)

let total s =
  Total.of_string (Universe.of_names [ "p1"; "p2"; "p3" ]) s

(* --- Algorithm 1 on the running example --------------------------------- *)

let test_mas_running_example () =
  let engine = running_engine () in
  (* Figure 1: MAS of each eligible valuation. *)
  Alcotest.(check (list string)) "111" [ "_11"; "1__" ]
    (mas_strings engine (total "111"));
  Alcotest.(check (list string)) "011" [ "_11" ] (mas_strings engine (total "011"));
  Alcotest.(check (list string)) "110" [ "1_0" ] (mas_strings engine (total "110"));
  Alcotest.(check (list string)) "101" [ "10_" ] (mas_strings engine (total "101"));
  Alcotest.(check (list string)) "100" [ "100" ] (mas_strings engine (total "100"));
  (* Applicants with no benefit send nothing. *)
  Alcotest.(check (list string)) "000" [ "___" ] (mas_strings engine (total "000"))

let test_mas_benefit_sets () =
  let engine = running_engine () in
  let choices = A1.mas_of engine (total "110") in
  Alcotest.(check (list (list string))) "benefits recorded" [ [ "b1"; "b3" ] ]
    (List.map (fun (c : A1.choice) -> c.A1.benefits) choices)

let test_exact_mode_agrees_without_constraints () =
  let engine = running_engine () in
  List.iter
    (fun s ->
      Alcotest.(check (list string))
        ("exact = chain for " ^ s)
        (mas_strings engine (total s))
        (mas_strings engine ~mode:A1.Exact (total s)))
    [ "111"; "011"; "110"; "101"; "100" ]

let test_is_accurate () =
  let engine = running_engine () in
  let w s = Partial.of_string (Universe.of_names [ "p1"; "p2"; "p3" ]) s in
  (* Figure 1: 11_ is accurate for 111 but not minimal. *)
  Alcotest.(check bool) "11_ accurate for 111" true
    (A1.is_accurate engine (total "111") (w "11_"));
  Alcotest.(check bool) "_11 accurate for 111" true
    (A1.is_accurate engine (total "111") (w "_11"));
  Alcotest.(check bool) "_1_ not accurate for 111" false
    (A1.is_accurate engine (total "111") (w "_1_"));
  Alcotest.(check bool) "11_ not accurate for 110" false
    (A1.is_accurate engine (total "110") (w "11_"));
  Alcotest.(check bool) "not a subvaluation" false
    (A1.is_accurate engine (total "110") (w "_11"))

let test_unrealistic_rejected () =
  let engine = Engine.create ~backend:Engine.Bdd (Hcov.exposure ()) in
  let xp = Exposure.xp (Hcov.exposure ()) in
  (* p1 (under 16) and p5 (adult below 25) together violate R_ADD. *)
  let v = Total.of_string xp "100010000000" in
  Alcotest.(check bool) "rejected" true
    (match A1.mas_of engine v with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_potential_players () =
  let engine = running_engine () in
  let xp = Universe.of_names [ "p1"; "p2"; "p3" ] in
  let players s =
    List.map Total.to_string
      (A1.potential_players engine (Partial.of_string xp s))
  in
  (* Figure 2: _11 can be played by 011 and 111; 1__ only by 111. *)
  Alcotest.(check (list string)) "_11" [ "011"; "111" ] (players "_11");
  Alcotest.(check (list string)) "1__" [ "111" ] (players "1__");
  Alcotest.(check (list string)) "1_0" [ "110" ] (players "1_0")

(* --- Chain closure -------------------------------------------------------- *)

let test_chain_close () =
  let e = Hcov.exposure () in
  let xp = Exposure.xp e in
  let close assoc =
    Partial.to_string (A1.chain_close e (Partial.of_assoc xp assoc))
  in
  (* p12 -> !p1. *)
  Alcotest.(check string) "p12 chains !p1" "0__________1"
    (close [ ("p12", true) ]);
  (* p3 -> !p1 & !p5, but no contrapositive chaining: p10 stays blank. *)
  Alcotest.(check string) "p3 p4 chain" "0_110_______"
    (close [ ("p3", true); ("p4", true) ]);
  (* p10 -> !p1 & !p3 (the calibration rule). *)
  Alcotest.(check string) "p10 chains" "0_0______1__"
    (close [ ("p10", true) ])

let test_chain_close_idempotent_monotone () =
  let e = Hcov.exposure () in
  let xp = Exposure.xp e in
  (* Idempotence and monotonicity over a sweep of consistent partials. *)
  List.iter
    (fun assoc ->
      let w = Partial.of_assoc xp assoc in
      let c = A1.chain_close e w in
      Alcotest.(check bool) "extensive" true (Partial.subvaluation w c);
      Alcotest.(check bool) "idempotent" true
        (Partial.equal c (A1.chain_close e c)))
    [
      [];
      [ ("p12", true) ];
      [ ("p3", true); ("p4", true) ];
      [ ("p10", true); ("p6", true) ];
      [ ("p2", false) ];
    ];
  (* Contradictory chaining is reported. *)
  Alcotest.(check bool) "contradiction detected" true
    (match
       A1.chain_close e (Partial.of_assoc xp [ ("p12", true); ("p1", true) ])
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Atlas ------------------------------------------------------------------ *)

let test_atlas_running () =
  let atlas = Atlas.build (running_engine ()) in
  Alcotest.(check int) "5 MAS" 5 (Atlas.mas_count atlas);
  Alcotest.(check int) "5 valuations" 5 (Atlas.player_count atlas);
  Alcotest.(check (list (pair int int))) "choice distribution"
    [ (1, 4); (2, 1) ]
    (Atlas.choice_distribution atlas);
  Alcotest.(check (pair int int)) "domain range" (1, 3)
    (Atlas.domain_size_range atlas);
  (* Lexicographic order of the MAS set. *)
  Alcotest.(check (list string)) "mas order"
    [ "_11"; "1__"; "1_0"; "10_"; "100" ]
    (List.map
       (fun (c : A1.choice) -> Partial.to_string c.A1.mas)
       (Atlas.mas_list atlas));
  (* The forced players of _11 are exactly 011. *)
  let m11 =
    Option.get
      (Atlas.find_mas atlas
         (Partial.of_string (Universe.of_names [ "p1"; "p2"; "p3" ]) "_11"))
  in
  Alcotest.(check (list string)) "forced of _11" [ "011" ]
    (List.map
       (fun i -> Total.to_string (Atlas.player atlas i))
       (Atlas.forced_players_of_mas atlas m11))

(* --- Random-problem properties ----------------------------------------------- *)

let gen_problem =
  QCheck2.Gen.(
    let gen_lit =
      let* v = int_range 1 4 in
      let* sign = bool in
      return
        (if sign then F.var (Printf.sprintf "p%d" v)
         else F.neg (F.var (Printf.sprintf "p%d" v)))
    in
    let gen_conj =
      let* lits = list_size (int_range 1 3) gen_lit in
      return (F.conj lits)
    in
    let gen_dnf =
      let* conjs = list_size (int_range 1 3) gen_conj in
      return (F.disj conjs)
    in
    let* f1 = gen_dnf in
    let* f2 = gen_dnf in
    return (f1, f2))

let make_problem (f1, f2) =
  let xp = Universe.of_names [ "p1"; "p2"; "p3"; "p4" ] in
  let xb = Universe.of_names [ "b1"; "b2" ] in
  Exposure.create ~xp ~xb
    ~rules:
      [ Rule.of_formula ~benefit:"b1" f1; Rule.of_formula ~benefit:"b2" f2 ]
    ()

let print_problem (f1, f2) = Fmt.str "b1:=%a b2:=%a" F.pp f1 F.pp f2

let prop_mas_are_accurate =
  QCheck2.Test.make ~count:150 ~name:"every MAS is accurate" ~print:print_problem
    gen_problem (fun fs ->
      let e = make_problem fs in
      let engine = Engine.create ~backend:Engine.Bdd e in
      List.for_all
        (fun v ->
          List.for_all
            (fun (c : A1.choice) -> A1.is_accurate engine v c.A1.mas)
            (A1.mas_of engine v))
        (Exposure.eligible e))

let prop_mas_incomparable =
  QCheck2.Test.make ~count:150 ~name:"MAS of a player are incomparable"
    ~print:print_problem gen_problem (fun fs ->
      let e = make_problem fs in
      let engine = Engine.create ~backend:Engine.Bdd e in
      List.for_all
        (fun v ->
          let mas = List.map (fun c -> c.A1.mas) (A1.mas_of engine v) in
          List.for_all
            (fun a ->
              List.for_all
                (fun b ->
                  Partial.equal a b || not (Partial.subvaluation a b))
                mas)
            mas)
        (Exposure.eligible e))

let prop_exact_minimal =
  QCheck2.Test.make ~count:100
    ~name:"Exact mode output is minimal among accurate subvaluations"
    ~print:print_problem gen_problem (fun fs ->
      let e = make_problem fs in
      let engine = Engine.create ~backend:Engine.Bdd e in
      List.for_all
        (fun v ->
          let exact = A1.mas_of ~mode:A1.Exact engine v in
          List.for_all
            (fun (c : A1.choice) ->
              (* no strict accurate subvaluation *)
              let doms = Partial.domain c.A1.mas in
              List.for_all
                (fun removed ->
                  let w' =
                    Partial.restrict c.A1.mas
                      (List.filter (( <> ) removed) doms)
                  in
                  not (A1.is_accurate engine v w'))
                doms)
            exact)
        (Exposure.eligible e))

(* Theorem 3.17, property (1) in Exact mode: every accurate subvaluation
   extends some MAS. *)
let prop_every_accurate_covers_a_mas =
  QCheck2.Test.make ~count:80
    ~name:"every accurate subvaluation extends an Exact-mode MAS"
    ~print:print_problem gen_problem (fun fs ->
      let e = make_problem fs in
      let xp = Exposure.xp e in
      let engine = Engine.create ~backend:Engine.Bdd e in
      List.for_all
        (fun v ->
          let exact =
            List.map (fun c -> c.A1.mas) (A1.mas_of ~mode:A1.Exact engine v)
          in
          let bits = Total.bits v in
          List.for_all
            (fun dom ->
              let w = Partial.of_masks xp ~dom ~bits:(bits land dom) in
              (not (A1.is_accurate engine v w))
              || List.exists (fun m -> Partial.subvaluation m w) exact)
            (List.init 16 Fun.id))
        (Exposure.eligible e))

let prop_baseline_proves_benefits =
  QCheck2.Test.make ~count:150
    ~name:"baseline disclosure grants at least the due benefits"
    ~print:print_problem gen_problem (fun fs ->
      let e = make_problem fs in
      let engine = Engine.create ~backend:Engine.Bdd e in
      List.for_all
        (fun v ->
          let r = Baseline.minimize engine v in
          let granted = Engine.benefits_of_total engine v in
          List.for_all
            (fun b -> List.mem b (Engine.benefits engine r.Baseline.disclosed))
            granted)
        (Exposure.eligible e))

let prop_chain_mas_no_bigger_than_baseline_plus_closure =
  QCheck2.Test.make ~count:150
    ~name:"algorithm 1 discloses no more than the baseline plus deductions"
    ~print:print_problem gen_problem (fun fs ->
      let e = make_problem fs in
      let engine = Engine.create ~backend:Engine.Bdd e in
      List.for_all
        (fun v ->
          let best_mas =
            List.fold_left
              (fun acc (c : A1.choice) ->
                min acc (Partial.domain_size c.A1.mas))
              max_int (A1.mas_of engine v)
          in
          let b = Baseline.minimize engine v in
          (* The baseline picks one conjunction per benefit without the
             closure, so the smallest MAS is at most the baseline
             disclosure plus its chained consequences. *)
          best_mas
          <= Partial.domain_size (A1.chain_close e b.Baseline.disclosed))
        (Exposure.eligible e))

(* --- Baseline on H-cov ---------------------------------------------------------- *)

let test_baseline_hcov_overestimates () =
  let e = Hcov.exposure () in
  let engine = Engine.create ~backend:Engine.Bdd e in
  let bob = Hcov.bob () in
  let r = Baseline.minimize engine bob in
  (* The baseline reveals the young-adult conjunction without the closure
     literals... *)
  Alcotest.(check string) "baseline discloses" "____1110____"
    (Partial.to_string r.Baseline.disclosed);
  Alcotest.(check int) "claims 8 blanks" 8 r.Baseline.claimed_blanks;
  (* ...but p1 and p3 are deducible from the rules, so two of the claimed
     blanks are not protected at all. *)
  Alcotest.(check int) "2 blanks leak" 2
    (Baseline.rule_level_leak engine r.Baseline.disclosed)

(* --- Symbolic atlas -------------------------------------------------------------- *)

module Symbolic = Pet_minimize.Symbolic

(* The symbolic statistics equal the enumerated atlas on the case
   studies, row by row. *)
let symbolic_agrees exposure =
  let atlas = Atlas.build (Engine.create ~backend:Engine.Bdd exposure) in
  let sym = Symbolic.build exposure in
  Alcotest.(check int) "mas count" (Atlas.mas_count atlas)
    (Symbolic.mas_count sym);
  Alcotest.(check int) "valuations" (Atlas.player_count atlas)
    (Symbolic.valuation_count sym);
  Alcotest.(check (pair int int)) "domains" (Atlas.domain_size_range atlas)
    (Symbolic.domain_size_range sym);
  Alcotest.(check (list (pair int int)))
    "choice distribution"
    (Atlas.choice_distribution atlas)
    (Symbolic.choice_distribution sym);
  List.iteri
    (fun i (s : Symbolic.mas_stats) ->
      let c = Atlas.mas atlas i in
      Alcotest.(check string)
        (Fmt.str "mas %d" i)
        (Partial.to_string c.A1.mas)
        (Partial.to_string s.Symbolic.mas);
      Alcotest.(check (list string)) "benefits" c.A1.benefits
        s.Symbolic.benefits;
      Alcotest.(check int) "potential"
        (List.length (Atlas.players_of_mas atlas i))
        s.Symbolic.potential;
      let forced = Atlas.forced_players_of_mas atlas i in
      Alcotest.(check int) "forced" (List.length forced) s.Symbolic.forced;
      let po crowd =
        int_of_float
          (Pet_game.Payoff.value atlas Pet_game.Payoff.Blank ~mas:i ~crowd)
      in
      Alcotest.(check int) "po forced" (po forced) s.Symbolic.po_blank_forced;
      Alcotest.(check int) "po potential"
        (po (Atlas.players_of_mas atlas i))
        s.Symbolic.po_blank_potential)
    (Symbolic.stats sym)

let test_symbolic_casestudies () =
  symbolic_agrees (Running.exposure ());
  symbolic_agrees (Hcov.exposure ());
  symbolic_agrees (Pet_casestudies.Loan.exposure ())

let test_symbolic_modes () =
  (* Entail mode agrees with the enumerated Entail atlas on H-cov. *)
  let exposure = Hcov.exposure () in
  let atlas =
    Atlas.build ~mode:A1.Entail (Engine.create ~backend:Engine.Bdd exposure)
  in
  let sym = Symbolic.build ~mode:A1.Entail exposure in
  Alcotest.(check int) "entail mas count" (Atlas.mas_count atlas)
    (Symbolic.mas_count sym);
  Alcotest.(check int) "entail valuations" (Atlas.player_count atlas)
    (Symbolic.valuation_count sym);
  Alcotest.(check bool) "exact rejected" true
    (match Symbolic.build ~mode:A1.Exact exposure with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_atlas_size_guard () =
  let exposure =
    Pet_rules.Generate.exposure
      ~config:
        { Pet_rules.Generate.default with Pet_rules.Generate.predicates = 25 }
      ~seed:1 ()
  in
  Alcotest.(check bool) "enumeration refused" true
    (match Atlas.build (Engine.create ~backend:Engine.Bdd exposure) with
    | exception Invalid_argument m ->
      String.length m > 0
      && String.sub m 0 11 = "Atlas.build"
    | _ -> false);
  (* The symbolic path handles the same form. *)
  Alcotest.(check bool) "symbolic handles it" true
    (Symbolic.mas_count (Symbolic.build exposure) >= 0)

let test_symbolic_equilibrium () =
  (* The bloc variant reproduces the explicit Algorithm 2 crowds on the
     case studies where dominance drives every commitment... *)
  List.iter
    (fun exposure ->
      let atlas = Atlas.build (Engine.create ~backend:Engine.Bdd exposure) in
      let profile =
        Pet_game.Strategy.compute ~payoff:Pet_game.Payoff.Sm atlas
      in
      let explicit =
        List.init (Atlas.mas_count atlas) (fun m ->
            Pet_game.Profile.crowd_size profile m)
      in
      let eq = Symbolic.equilibrium (Symbolic.build exposure) in
      Alcotest.(check (list int)) "crowds" explicit eq.Symbolic.crowds;
      Alcotest.(check bool) "nash" true eq.Symbolic.nash)
    [ Running.exposure (); Hcov.exposure (); Pet_casestudies.Loan.exposure () ];
  (* ...and on RSA it may settle on a different — but still Nash —
     equilibrium; total play is conserved either way. *)
  let sym = Symbolic.build (Pet_casestudies.Rsa.exposure ()) in
  let eq = Symbolic.equilibrium sym in
  Alcotest.(check bool) "rsa nash" true eq.Symbolic.nash;
  Alcotest.(check int) "rsa conservation" (Symbolic.valuation_count sym)
    (List.fold_left ( + ) 0 eq.Symbolic.crowds)

let test_symbolic_scales () =
  (* A 32-predicate random problem: far beyond enumeration. *)
  let exposure =
    Pet_rules.Generate.exposure
      ~config:
        { Pet_rules.Generate.default with
          Pet_rules.Generate.predicates = 32;
          benefits = 3;
        }
      ~seed:42 ()
  in
  let sym = Symbolic.build exposure in
  Alcotest.(check bool) "has MAS" true (Symbolic.mas_count sym > 0);
  Alcotest.(check bool) "beyond enumeration" true
    (Symbolic.valuation_count sym > 1_000_000);
  (* The equilibrium is computable at this scale too, and play is
     conserved. *)
  let eq = Symbolic.equilibrium sym in
  Alcotest.(check int) "conservation" (Symbolic.valuation_count sym)
    (List.fold_left ( + ) 0 eq.Symbolic.crowds)

let prop_symbolic_matches_atlas =
  QCheck2.Test.make ~count:100
    ~name:"symbolic statistics equal the enumerated atlas"
    ~print:print_problem gen_problem (fun fs ->
      let e = make_problem fs in
      let atlas = Atlas.build (Engine.create ~backend:Engine.Bdd e) in
      let sym = Symbolic.build e in
      Atlas.mas_count atlas = Symbolic.mas_count sym
      && Atlas.player_count atlas = Symbolic.valuation_count sym
      && Atlas.choice_distribution atlas = Symbolic.choice_distribution sym
      && List.for_all2
           (fun i (s : Symbolic.mas_stats) ->
             let c = Atlas.mas atlas i in
             Partial.equal c.A1.mas s.Symbolic.mas
             && List.length (Atlas.players_of_mas atlas i) = s.Symbolic.potential
             && List.length (Atlas.forced_players_of_mas atlas i)
                = s.Symbolic.forced)
           (List.init (Atlas.mas_count atlas) Fun.id)
           (Symbolic.stats sym))

(* --- Lattice & DOT (Figure 1 / Figure 2) -------------------------------------- *)

let test_lattice_matches_figure1 () =
  let atlas = Atlas.build (running_engine ()) in
  let lattice = Lattice.build atlas in
  let nodes =
    List.sort String.compare
      (List.map
         (fun (n : Lattice.node) -> Partial.to_string n.Lattice.w)
         lattice.Lattice.nodes)
  in
  (* Exactly the eleven nodes drawn in Figure 1. *)
  Alcotest.(check (list string)) "figure 1 nodes"
    (List.sort String.compare
       [
         "111"; "011"; "110"; "101"; "100"; "_11"; "1__"; "11_"; "1_1"; "1_0";
         "10_";
       ])
    nodes;
  let kind s =
    match
      Lattice.node_of lattice
        (Partial.of_string (Universe.of_names [ "p1"; "p2"; "p3" ]) s)
    with
    | Some n -> n.Lattice.kind
    | None -> Alcotest.fail ("missing node " ^ s)
  in
  Alcotest.(check bool) "_11 is MAS" true (kind "_11" = Lattice.Mas);
  Alcotest.(check bool) "11_ is gray" true (kind "11_" = Lattice.Accurate);
  Alcotest.(check bool) "111 is valuation" true
    (kind "111" = Lattice.Valuation);
  Alcotest.(check bool) "100 is MAS" true (kind "100" = Lattice.Mas);
  (* Edge spot checks from Figure 1. *)
  let edge a b =
    List.exists
      (fun (x, y) ->
        Partial.to_string x = a && Partial.to_string y = b)
      lattice.Lattice.edges
  in
  Alcotest.(check bool) "1__ -> 11_" true (edge "1__" "11_");
  Alcotest.(check bool) "11_ -> 111" true (edge "11_" "111");
  Alcotest.(check bool) "_11 -> 011" true (edge "_11" "011");
  Alcotest.(check bool) "_11 -> 111" true (edge "_11" "111");
  Alcotest.(check bool) "1_0 -> 110" true (edge "1_0" "110");
  Alcotest.(check bool) "10_ -> 101" true (edge "10_" "101");
  (* "100 has no accurate subvaluations other than itself". *)
  Alcotest.(check bool) "nothing -> 100" false
    (List.exists
       (fun (_, y) -> Partial.to_string y = "100")
       lattice.Lattice.edges)

let test_figure2_component () =
  let atlas = Atlas.build (running_engine ()) in
  let players, mas = Dot.component atlas (total "111") in
  Alcotest.(check (list string)) "component players" [ "011"; "111" ]
    (List.map (fun i -> Total.to_string (Atlas.player atlas i)) players);
  Alcotest.(check (list string)) "component mas" [ "_11"; "1__" ]
    (List.map
       (fun i -> Partial.to_string (Atlas.mas atlas i).A1.mas)
       mas)

let test_dot_outputs () =
  let atlas = Atlas.build (running_engine ()) in
  let contains haystack needle =
    let nh = String.length haystack and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
    in
    go 0
  in
  let dot1 = Dot.lattice (Lattice.build atlas) in
  Alcotest.(check bool) "digraph" true (contains dot1 "digraph");
  Alcotest.(check bool) "MAS styled bold" true
    (contains dot1 "\"_11\" [label=\"_11\\n{b1}\", style=bold]");
  let dot2 = Dot.choices atlas (total "111") in
  Alcotest.(check bool) "edge _11 -> 111" true
    (contains dot2 "\"_11\" -> \"111\"");
  Alcotest.(check bool) "edge _11 -> 011" true
    (contains dot2 "\"_11\" -> \"011\"");
  Alcotest.(check bool) "not a player" true
    (match Dot.choices atlas (total "000") with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests) in
  Alcotest.run "pet_minimize"
    [
      ( "algorithm1",
        [
          Alcotest.test_case "running example MAS" `Quick
            test_mas_running_example;
          Alcotest.test_case "benefit sets" `Quick test_mas_benefit_sets;
          Alcotest.test_case "exact mode agrees" `Quick
            test_exact_mode_agrees_without_constraints;
          Alcotest.test_case "is_accurate" `Quick test_is_accurate;
          Alcotest.test_case "unrealistic rejected" `Quick
            test_unrealistic_rejected;
          Alcotest.test_case "potential players" `Quick test_potential_players;
          Alcotest.test_case "chain closure" `Quick test_chain_close;
          Alcotest.test_case "closure laws" `Quick
            test_chain_close_idempotent_monotone;
        ] );
      ("atlas", [ Alcotest.test_case "running example" `Quick test_atlas_running ]);
      ( "baseline",
        [
          Alcotest.test_case "hcov overestimate" `Quick
            test_baseline_hcov_overestimates;
        ] );
      ( "symbolic",
        [
          Alcotest.test_case "case studies agree" `Quick
            test_symbolic_casestudies;
          Alcotest.test_case "modes" `Quick test_symbolic_modes;
          Alcotest.test_case "equilibrium" `Quick test_symbolic_equilibrium;
          Alcotest.test_case "atlas size guard" `Quick test_atlas_size_guard;
          Alcotest.test_case "scales to 32 predicates" `Quick
            test_symbolic_scales;
        ] );
      ( "figures",
        [
          Alcotest.test_case "figure 1 lattice" `Quick
            test_lattice_matches_figure1;
          Alcotest.test_case "figure 2 component" `Quick test_figure2_component;
          Alcotest.test_case "dot outputs" `Quick test_dot_outputs;
        ] );
      qsuite "properties"
        [
          prop_mas_are_accurate;
          prop_mas_incomparable;
          prop_exact_minimal;
          prop_every_accurate_covers_a_mas;
          prop_baseline_proves_benefits;
          prop_chain_mas_no_bigger_than_baseline_plus_closure;
          prop_symbolic_matches_atlas;
        ];
    ]
