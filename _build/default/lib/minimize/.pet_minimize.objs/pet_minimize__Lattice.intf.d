lib/minimize/lattice.mli: Atlas Fmt Pet_valuation
