test/test_game.ml: Alcotest Fmt Fun List Option Pet_casestudies Pet_game Pet_logic Pet_minimize Pet_rules Pet_valuation Printf QCheck2 QCheck_alcotest
