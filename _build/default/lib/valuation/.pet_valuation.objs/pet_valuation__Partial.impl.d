lib/valuation/partial.ml: Bool Fmt Int List Pet_logic String Total Universe
