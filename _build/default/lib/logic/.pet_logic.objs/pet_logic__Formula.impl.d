lib/logic/formula.ml: Array Bool Fmt List Set Stdlib String Sys
