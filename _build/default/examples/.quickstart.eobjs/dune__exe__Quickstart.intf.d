examples/quickstart.mli:
