examples/quickstart.ml: Fmt Pet_pet Pet_rules Pet_valuation
