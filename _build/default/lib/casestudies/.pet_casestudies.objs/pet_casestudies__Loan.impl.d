lib/casestudies/loan.ml: Lazy List Pet_pet Pet_rules Pet_valuation
