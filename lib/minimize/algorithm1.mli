(** Algorithm 1 of the paper: informed data minimization.

    For a user's fully filled form [v], compute the minimal accurate
    subvaluations (MAS, Definition 3.13) and the data the bipartite
    valuation/MAS graph is built from.

    Candidate construction follows the paper: one satisfied conjunction
    per benefit obtained by [v] (Cartesian product across benefits),
    closed under the consistency rules [R_ADD]. Candidates proving a
    different benefit set than [v] are discarded, then non-minimal
    candidates are filtered out.

    Three closure modes are offered; they only differ in how much of
    [R_ADD] is folded into the published MAS (an attacker derives the
    same information in all three cases, so they are privacy-equivalent):

    - {!Chain} (the paper's prototype): forward-chain the directed
      implications of [R_ADD] — the H-cov MAS of Table 3 such as
      [0_110_______] carry exactly the forward consequences of their
      conjunction, not the contrapositive ones;
    - {!Entail}: full logical closure — every form literal entailed by
      the candidate and [R];
    - {!Exact}: no closure at all; instead enumerate the subvaluations
      that are set-inclusion minimal among {e all} accurate
      subvaluations (Definition 3.13 verbatim). Exponential; only for
      small universes. *)

type mode = Chain | Entail | Exact

type choice = {
  mas : Pet_valuation.Partial.t;
  benefits : string list;
      (** benefits proven by the MAS, in benefit-universe order *)
}

val mas_of :
  ?mode:mode -> Pet_rules.Engine.t -> Pet_valuation.Total.t -> choice list
(** The MAS of [v], sorted in the paper's lexicographic order. [mode]
    defaults to {!Chain}. For a valuation granting no benefit the result
    is a single empty-domain choice (nothing needs to be sent).
    @raise Invalid_argument when [v] violates the problem's constraints
    (the form of an applicant is assumed realistic), or in {!Exact} mode
    on universes above 16 predicates. *)

val is_accurate :
  Pet_rules.Engine.t ->
  Pet_valuation.Total.t ->
  Pet_valuation.Partial.t ->
  bool
(** Definition 3.13: [w <= v] and [w] proves exactly the benefits [v]
    triggers. Used by tests and by the best-minimizer checks. *)

val is_minimal :
  ?mode:mode ->
  Pet_rules.Engine.t ->
  Pet_valuation.Partial.t ->
  benefits:string list ->
  bool
(** Definition-level ≤-minimality recheck, used by the correctness
    harness: no single binding of [w] can be dropped while still proving
    exactly [benefits]. In {!Chain} ({!Entail}) mode the shrunken
    candidate is first re-closed, because a dropped literal that the
    closure rederives does not make the {e published} MAS smaller —
    closure literals are derivable by any attacker and carry no extra
    information — and proofs are judged by {e direct} conjunction
    satisfaction, the proof notion the algorithm's candidates are built
    from (a constraint can make a strictly smaller subvaluation entail
    the same benefits without directly proving them, and such
    subvaluations are not candidates). In {!Exact} mode proofs are full
    entailment, matching the exhaustive enumeration; accuracy is
    interval-closed, so the 1-step check decides Definition 3.13
    minimality exactly. [mode] defaults to {!Chain}. *)

val chain_close :
  Pet_rules.Exposure.t -> Pet_valuation.Partial.t -> Pet_valuation.Partial.t
(** Forward-chain the directed implications of [R_ADD] from the fixed
    literals of [w] until fixpoint.
    @raise Invalid_argument when chaining derives a contradiction with
    [w] (cannot happen for subvaluations of realistic valuations). *)

val potential_players :
  Pet_rules.Engine.t -> Pet_valuation.Partial.t -> Pet_valuation.Total.t list
(** Lines 18-23 of Algorithm 1: the candidate valuations of a MAS [m] —
    every total extension of [m] whose benefit set equals the set [m]
    proves. These are the players that {e can} play [m] (the paper counts
    them without re-filtering by [R_ADD]; see DESIGN.md). *)
