(** Negation normal form. *)

val of_formula : Formula.t -> Formula.t
(** Semantically equivalent formula using only [And], [Or] and literals
    (plus the constants). Implications and equivalences are expanded. *)

val is_nnf : Formula.t -> bool
