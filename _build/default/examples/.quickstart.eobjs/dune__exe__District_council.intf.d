examples/district_council.mli:
