lib/minimize/lattice.ml: Algorithm1 Atlas Fmt Fun List Pet_rules Pet_valuation String
