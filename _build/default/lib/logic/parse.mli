(** Parser for the concrete formula syntax used by rule files and the CLI.

    Grammar (loosest to tightest): [<->], [->] (right associative), [|],
    [&], [!], atoms. Atoms are [true], [false], identifiers
    (letters, digits, underscores), or parenthesised formulas. *)

exception Error of { position : int; message : string }
(** [position] is a 0-based character offset into the input. *)

val formula : string -> Formula.t
(** @raise Error on syntax errors. *)

val formula_result : string -> (Formula.t, string) result
(** Like {!formula} but with the error rendered as a human-readable
    message including the offending position. *)
