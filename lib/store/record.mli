(** Record framing for log segments.

    Every record is length-prefixed and checksummed:

    {v
    +----------------+----------------+=================+
    | length (LE32)  | CRC-32 (LE32)  | payload bytes   |
    +----------------+----------------+=================+
          4 bytes          4 bytes       [length] bytes
    v}

    The CRC covers the payload only; the length field is validated by
    plausibility (a bound) and, transitively, by the CRC of whatever it
    delimits. Scanning classifies every anomaly as either {e torn} (the
    record runs past the end of the buffer — the signature of a crash
    mid-append, recoverable by truncating to the last whole record) or
    {e corrupt} (the bytes are all there but wrong — bit rot or
    tampering, reported with its offset, never silently skipped). *)

val header_bytes : int
(** 8. *)

val max_payload_bytes : int
(** 16 MiB — a corrupted length field must not become an allocation. *)

val frame : string -> string
(** [frame payload] is the encoded record (header + payload).
    @raise Invalid_argument past {!max_payload_bytes}. *)

type scan =
  | Record of { payload : string; next : int }
      (** a whole, checksummed record; the next record starts at [next] *)
  | End  (** clean end of buffer, exactly at a record boundary *)
  | Torn of { offset : int; reason : string }
      (** the buffer ends inside the record starting at [offset] *)
  | Corrupt of { offset : int; reason : string }
      (** checksum mismatch or implausible length at [offset] *)

val read : string -> int -> scan
(** [read buf offset] scans the record starting at [offset]. *)
