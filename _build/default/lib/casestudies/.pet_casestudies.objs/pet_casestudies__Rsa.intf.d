lib/casestudies/rsa.mli: Pet_pet Pet_rules Pet_valuation
