type t = { var : string; sign : bool }

let pos var = { var; sign = true }
let neg var = { var; sign = false }
let negate l = { l with sign = not l.sign }
let equal a b = String.equal a.var b.var && Bool.equal a.sign b.sign

let compare a b =
  let c = String.compare a.var b.var in
  if c <> 0 then c else Bool.compare a.sign b.sign

let to_formula l = if l.sign then Formula.Var l.var else Formula.Not (Var l.var)

let of_formula = function
  | Formula.Var x -> Some (pos x)
  | Formula.Not (Formula.Var x) -> Some (neg x)
  | _ -> None

let holds rho l = Bool.equal (rho l.var) l.sign
let pp ppf l = if l.sign then Fmt.string ppf l.var else Fmt.pf ppf "!%s" l.var
