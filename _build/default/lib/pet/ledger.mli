(** The service provider's archive: the minimized records kept "possibly
    for several years, as legal proof of the process and/or transaction,
    or simply to be used for internal audit" (Section 2.1, step 4).

    Only the minimized form and the granted benefits are stored — this
    is where the storage-limitation payoff of the PET materializes. The
    archive is append-only; re-auditing never mutates it. *)

type t
type entry = { id : int; grant : Workflow.grant }

val create : unit -> t
val record : t -> Workflow.grant -> int
(** Append a grant; returns its archive id (sequential from 0). *)

val find : t -> int -> Workflow.grant option
val size : t -> int
val entries : t -> entry list
(** In insertion order. *)

val stored_values : t -> int
(** Total number of predicate values held — the provider's storage
    footprint, to compare against [size * form width] for the legacy
    full-form process. *)

val audit : t -> Workflow.t -> int list
(** Re-verify every archived record against the rules
    ({!Workflow.audit}); returns the ids of the failing records
    (tampered or recorded under different rules), ascending. *)

val to_json : t -> Json.t
