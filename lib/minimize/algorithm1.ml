module Dnf = Pet_logic.Dnf
module Universe = Pet_valuation.Universe
module Total = Pet_valuation.Total
module Partial = Pet_valuation.Partial
module Engine = Pet_rules.Engine
module Exposure = Pet_rules.Exposure
module Rule = Pet_rules.Rule

type mode = Chain | Entail | Exact

type choice = { mas : Partial.t; benefits : string list }

let is_accurate engine v w =
  let v' = Partial.of_total v in
  Partial.subvaluation w v'
  && List.equal String.equal (Engine.benefits engine v') (Engine.benefits engine w)

(* The candidate subvaluations of Algorithm 1, lines 5-13: the Cartesian
   product, across the benefits granted to [v], of the conjunctions of each
   benefit's DNF that [v] satisfies — each candidate being [v] restricted
   to the predicates of the chosen conjunctions. *)
let raw_candidates exposure v granted =
  let xp = Exposure.xp exposure in
  let rho = Total.rho v in
  let conjunction_restriction c =
    (* v satisfies c, so restricting v to c's variables is c itself. *)
    Partial.of_assoc xp
      (List.map (fun (l : Pet_logic.Literal.t) -> (l.var, l.sign)) c)
  in
  let satisfied_restrictions b =
    Rule.conjunctions (Exposure.rule_for exposure b)
    |> List.filter (Dnf.conjunction_holds rho)
    |> List.map conjunction_restriction
  in
  let combine acc restrictions =
    List.concat_map
      (fun w ->
        List.map
          (fun r ->
            match Partial.merge w r with
            | Some m -> m
            | None -> assert false (* both below v *))
          restrictions)
      acc
  in
  List.fold_left combine
    [ Partial.empty xp ]
    (List.map satisfied_restrictions granted)
  |> List.sort_uniq Partial.compare

let chain_close exposure w =
  let implications = Exposure.implications exposure in
  let holds w (l : Pet_logic.Literal.t) = Partial.value w l.var = Some l.sign in
  let step w =
    List.fold_left
      (fun w (premises, consequences) ->
        if List.for_all (holds w) premises then
          List.fold_left
            (fun w (l : Pet_logic.Literal.t) ->
              try Partial.set w l.var l.sign
              with Invalid_argument _ ->
                invalid_arg "Algorithm1.chain_close: contradictory chaining")
            w consequences
        else w)
      w implications
  in
  let rec fixpoint w =
    let w' = step w in
    if Partial.equal w w' then w else fixpoint w'
  in
  fixpoint w

let entail_close engine w =
  List.fold_left
    (fun acc (p, value) -> Partial.set acc p value)
    w
    (Engine.deduced_literals engine w)

let keep_minimal candidates =
  let candidates = List.sort_uniq Partial.compare candidates in
  List.filter
    (fun w ->
      not (List.exists (fun w' -> Partial.strict_subvaluation w' w) candidates))
    candidates

(* Exhaustive enumeration of Definition 3.13 for [Exact] mode: all subsets
   of v's domain, keeping accurate subvaluations none of whose strict
   subvaluations is accurate. *)
let exhaustive_minimal engine v granted =
  let exposure = Engine.exposure engine in
  let xp = Exposure.xp exposure in
  let n = Universe.size xp in
  if n > 16 then invalid_arg "Algorithm1.mas_of ~mode:Exact: universe too large";
  let bits = Total.bits v in
  let accurate = Hashtbl.create 256 in
  for dom = 0 to (1 lsl n) - 1 do
    let w = Partial.of_masks xp ~dom ~bits:(bits land dom) in
    if List.equal String.equal (Engine.benefits engine w) granted then
      Hashtbl.add accurate dom w
  done;
  let is_accurate_dom d = Hashtbl.mem accurate d in
  Hashtbl.fold
    (fun dom w acc ->
      let has_smaller =
        (* strict sub-domains of dom *)
        let rec go sub =
          sub <> dom && (is_accurate_dom sub || go ((sub - 1) land dom))
        in
        go ((dom - 1) land dom)
      in
      if has_smaller then acc else w :: acc)
    accurate []

let obs_runs = Pet_obs.Metrics.counter "pet_algorithm1_runs_total"
let obs_mas = Pet_obs.Metrics.counter "pet_algorithm1_mas_total"

let mas_of ?(mode = Chain) engine v =
  Pet_obs.Span.enter "algorithm1" @@ fun () ->
  Pet_obs.Metrics.incr obs_runs;
  let exposure = Engine.exposure engine in
  if not (Exposure.satisfies_constraints exposure v) then
    invalid_arg "Algorithm1.mas_of: valuation violates the constraints";
  let granted = Engine.benefits_of_total engine v in
  let xp = Exposure.xp exposure in
  let selected =
    if granted = [] then [ Partial.empty xp ]
    else
      match mode with
      | Exact -> exhaustive_minimal engine v granted
      | Chain | Entail ->
        let close =
          match mode with
          | Chain -> chain_close exposure
          | Entail | Exact -> entail_close engine
        in
        raw_candidates exposure v granted
        |> List.map close
        |> List.filter (fun w ->
               List.equal String.equal (Engine.benefits engine w) granted)
        |> keep_minimal
  in
  Pet_obs.Metrics.add obs_mas (List.length selected);
  selected
  |> List.sort Partial.compare_lex
  |> List.map (fun mas -> { mas; benefits = granted })

(* Benefits proven by direct conjunction satisfaction: some conjunction of
   the benefit's DNF has all its literals bound with the right sign. This
   is the proof notion under which Algorithm 1's Chain/Entail modes are
   minimal: their candidates are products of directly satisfied
   conjunctions, so minimality must be judged against direct proofs, not
   against full entailment (a constraint can make a strictly smaller
   subvaluation entail the same benefits without directly proving them). *)
let directly_proven exposure w =
  let holds (l : Pet_logic.Literal.t) = Partial.value w l.var = Some l.sign in
  List.filter_map
    (fun (r : Rule.t) ->
      if List.exists (List.for_all holds) (Rule.conjunctions r) then
        Some r.benefit
      else None)
    (Exposure.rules exposure)

let same_benefits a b =
  List.equal String.equal
    (List.sort String.compare a)
    (List.sort String.compare b)

let is_minimal ?(mode = Chain) engine w ~benefits =
  let exposure = Engine.exposure engine in
  match mode with
  | Exact ->
    (* Accuracy is interval-closed (benefits grow monotonically with the
       subvaluation), so 1-minimality equals Definition 3.13 minimality. *)
    List.for_all
      (fun p ->
        not
          (same_benefits (Engine.benefits engine (Partial.unset w p)) benefits))
      (Partial.domain w)
  | Chain | Entail ->
    let close =
      match mode with
      | Chain -> chain_close exposure
      | Entail | Exact -> entail_close engine
    in
    List.for_all
      (fun p ->
        let smaller = close (Partial.unset w p) in
        (* A dropped literal the closure rederives does not yield a
           strictly smaller published MAS. *)
        Partial.equal smaller w
        || not (same_benefits (directly_proven exposure smaller) benefits))
      (Partial.domain w)

let potential_players engine m =
  let proves = Engine.benefits engine m in
  List.filter
    (fun v ->
      List.equal String.equal (Engine.benefits_of_total engine v) proves)
    (Partial.extensions m)
