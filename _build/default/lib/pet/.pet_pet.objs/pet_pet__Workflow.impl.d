lib/pet/workflow.ml: List Pet_game Pet_minimize Pet_rules Pet_valuation Report String
