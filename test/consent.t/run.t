Consent lifecycle and the compliance audit: `revoke` tombstones a
respondent's archived grant, `expire` arms a durable expiry horizon,
and `pet audit` replays the WAL offline to prove the archive honours
every withdrawal. Every protocol example in docs/consent-lifecycle.md
runs here against the current binary, so the document cannot drift.

Revoking consent (docs/consent-lifecycle.md, "Revoking consent"): the
grant is tombstoned, a second revoke is a structured error, and the
ledger audit separates evidence (records) from retained data
(stored_values):

  $ ../../bin/pet.exe serve --deterministic <<'REQUESTS'
  > {"pet":1,"id":1,"method":"publish_rules","params":{"source":"running"}}
  > {"pet":1,"id":2,"method":"new_session","params":{"source":"running"}}
  > {"pet":1,"id":3,"method":"get_report","params":{"session":"s0","valuation":"011"}}
  > {"pet":1,"id":4,"method":"choose_option","params":{"session":"s0","option":0}}
  > {"pet":1,"id":5,"method":"submit_form","params":{"session":"s0"}}
  > {"pet":1,"id":6,"method":"audit","params":{"source":"running"}}
  > {"pet":1,"id":7,"method":"revoke","params":{"session":"s0"}}
  > {"pet":1,"id":8,"method":"revoke","params":{"session":"s0"}}
  > {"pet":1,"id":9,"method":"audit","params":{"source":"running"}}
  > {"pet":1,"id":10,"method":"stats"}
  > REQUESTS
  {"pet":1,"id":1,"trace":"t0","ok":{"digest":"4e572ccd978d507d92c1b8a548038954","cached":false,"predicates":3,"benefits":3,"mas":5,"eligible":5}}
  {"pet":1,"id":2,"trace":"t1","ok":{"session":"s0","digest":"4e572ccd978d507d92c1b8a548038954","cached":true}}
  {"pet":1,"id":3,"trace":"t2","ok":{"valuation":"011","granted":["b1"],"options":[{"mas":"_11","benefits":["b1"],"po_blank":1,"po_sm":1,"po_weighted":null,"published":[{"p2":true},{"p3":true}],"deduced":[],"protected":["p1"],"crowd":2,"recommended":true}],"minimization_ratio":0.33333333333333331}}
  {"pet":1,"id":4,"trace":"t3","ok":{"mas":"_11","benefits":["b1"]}}
  {"pet":1,"id":5,"trace":"t4","ok":{"grant":0,"form":"_11","benefits":["b1"]}}
  {"pet":1,"id":6,"trace":"t5","ok":{"digest":"4e572ccd978d507d92c1b8a548038954","records":1,"stored_values":2,"failures":[]}}
  {"pet":1,"id":7,"trace":"t6","ok":{"session":"s0","revoked":true,"grant":0}}
  {"pet":1,"id":8,"trace":"t7","error":{"code":"bad_state","message":"cannot revoke session \"s0\": consent was already revoked"}}
  {"pet":1,"id":9,"trace":"t8","ok":{"digest":"4e572ccd978d507d92c1b8a548038954","records":1,"stored_values":0,"revoked":1,"failures":[]}}
  {"pet":1,"id":10,"trace":"t9","ok":{"requests":{"total":10,"by_method":{"audit":{"count":2,"errors":0,"latency_s":{"total":2,"max":1}},"choose_option":{"count":1,"errors":0,"latency_s":{"total":1,"max":1}},"get_report":{"count":1,"errors":0,"latency_s":{"total":1,"max":1}},"new_session":{"count":1,"errors":0,"latency_s":{"total":1,"max":1}},"publish_rules":{"count":1,"errors":0,"latency_s":{"total":1,"max":1}},"revoke":{"count":2,"errors":1,"latency_s":{"total":2,"max":1}},"submit_form":{"count":1,"errors":0,"latency_s":{"total":1,"max":1}}}},"registry":{"size":1,"capacity":16,"hits":3,"misses":1,"evictions":0},"sessions":{"active":0,"created":1,"expired":0,"submitted":1},"ledger":{"rule_sets":1,"records":1,"stored_values":0},"consent":{"revoked":1,"expired":0,"pending":0}}}

Expiring consent (docs/consent-lifecycle.md, "Expiring consent"): the
horizon is armed and durable at request 6; between requests 7 and 8
the logical clock crosses it and the piggybacked sweep tombstones the
grant, after which lifecycle methods treat the entry as terminal:

  $ ../../bin/pet.exe serve --deterministic <<'REQUESTS'
  > {"pet":1,"id":1,"method":"publish_rules","params":{"source":"running"}}
  > {"pet":1,"id":2,"method":"new_session","params":{"source":"running"}}
  > {"pet":1,"id":3,"method":"get_report","params":{"session":"s0","valuation":"011"}}
  > {"pet":1,"id":4,"method":"choose_option","params":{"session":"s0","option":0}}
  > {"pet":1,"id":5,"method":"submit_form","params":{"session":"s0"}}
  > {"pet":1,"id":6,"method":"expire","params":{"session":"s0","after":2}}
  > {"pet":1,"id":7,"method":"audit","params":{"source":"running"}}
  > {"pet":1,"id":8,"method":"audit","params":{"source":"running"}}
  > {"pet":1,"id":9,"method":"revoke","params":{"session":"s0"}}
  > REQUESTS
  {"pet":1,"id":1,"trace":"t0","ok":{"digest":"4e572ccd978d507d92c1b8a548038954","cached":false,"predicates":3,"benefits":3,"mas":5,"eligible":5}}
  {"pet":1,"id":2,"trace":"t1","ok":{"session":"s0","digest":"4e572ccd978d507d92c1b8a548038954","cached":true}}
  {"pet":1,"id":3,"trace":"t2","ok":{"valuation":"011","granted":["b1"],"options":[{"mas":"_11","benefits":["b1"],"po_blank":1,"po_sm":1,"po_weighted":null,"published":[{"p2":true},{"p3":true}],"deduced":[],"protected":["p1"],"crowd":2,"recommended":true}],"minimization_ratio":0.33333333333333331}}
  {"pet":1,"id":4,"trace":"t3","ok":{"mas":"_11","benefits":["b1"]}}
  {"pet":1,"id":5,"trace":"t4","ok":{"grant":0,"form":"_11","benefits":["b1"]}}
  {"pet":1,"id":6,"trace":"t5","ok":{"session":"s0","expires_at":13}}
  {"pet":1,"id":7,"trace":"t6","ok":{"digest":"4e572ccd978d507d92c1b8a548038954","records":1,"stored_values":2,"failures":[]}}
  {"pet":1,"id":8,"trace":"t7","ok":{"digest":"4e572ccd978d507d92c1b8a548038954","records":1,"stored_values":0,"revoked":1,"failures":[]}}
  {"pet":1,"id":9,"trace":"t8","error":{"code":"bad_state","message":"cannot revoke session \"s0\": its grant already expired"}}

The horizon guard (docs/consent-lifecycle.md, "The horizon guard"): a
passed horizon is honoured before the sweep reaches the entry — no
request can establish data past it:

  $ ../../bin/pet.exe serve --deterministic <<'REQUESTS'
  > {"pet":1,"id":1,"method":"publish_rules","params":{"source":"running"}}
  > {"pet":1,"id":2,"method":"new_session","params":{"source":"running"}}
  > {"pet":1,"id":3,"method":"get_report","params":{"session":"s0","valuation":"011"}}
  > {"pet":1,"id":4,"method":"expire","params":{"session":"s0","after":1}}
  > {"pet":1,"id":5,"method":"choose_option","params":{"session":"s0","option":0}}
  > REQUESTS
  {"pet":1,"id":1,"trace":"t0","ok":{"digest":"4e572ccd978d507d92c1b8a548038954","cached":false,"predicates":3,"benefits":3,"mas":5,"eligible":5}}
  {"pet":1,"id":2,"trace":"t1","ok":{"session":"s0","digest":"4e572ccd978d507d92c1b8a548038954","cached":true}}
  {"pet":1,"id":3,"trace":"t2","ok":{"valuation":"011","granted":["b1"],"options":[{"mas":"_11","benefits":["b1"],"po_blank":1,"po_sm":1,"po_weighted":null,"published":[{"p2":true},{"p3":true}],"deduced":[],"protected":["p1"],"crowd":2,"recommended":true}],"minimization_ratio":0.33333333333333331}}
  {"pet":1,"id":4,"trace":"t3","ok":{"session":"s0","expires_at":8}}
  {"pet":1,"id":5,"trace":"t4","error":{"code":"session_expired","message":"session \"s0\" has expired"}}

The offline compliance audit (docs/consent-lifecycle.md, "Runbook"):
the revocation example above, run durably. The WAL ends with six
records — rules, session_created, session_chosen, session_submitted,
grant, session_revoked — and all six audit properties hold:

  $ ../../bin/pet.exe serve --deterministic --data-dir data 2>server.log <<'REQUESTS'
  > {"pet":1,"id":1,"method":"publish_rules","params":{"source":"running"}}
  > {"pet":1,"id":2,"method":"new_session","params":{"source":"running"}}
  > {"pet":1,"id":3,"method":"get_report","params":{"session":"s0","valuation":"011"}}
  > {"pet":1,"id":4,"method":"choose_option","params":{"session":"s0","option":0}}
  > {"pet":1,"id":5,"method":"submit_form","params":{"session":"s0"}}
  > {"pet":1,"id":6,"method":"revoke","params":{"session":"s0"}}
  > REQUESTS
  {"pet":1,"id":1,"trace":"t0","ok":{"digest":"4e572ccd978d507d92c1b8a548038954","cached":false,"predicates":3,"benefits":3,"mas":5,"eligible":5}}
  {"pet":1,"id":2,"trace":"t1","ok":{"session":"s0","digest":"4e572ccd978d507d92c1b8a548038954","cached":true}}
  {"pet":1,"id":3,"trace":"t2","ok":{"valuation":"011","granted":["b1"],"options":[{"mas":"_11","benefits":["b1"],"po_blank":1,"po_sm":1,"po_weighted":null,"published":[{"p2":true},{"p3":true}],"deduced":[],"protected":["p1"],"crowd":2,"recommended":true}],"minimization_ratio":0.33333333333333331}}
  {"pet":1,"id":4,"trace":"t3","ok":{"mas":"_11","benefits":["b1"]}}
  {"pet":1,"id":5,"trace":"t4","ok":{"grant":0,"form":"_11","benefits":["b1"]}}
  {"pet":1,"id":6,"trace":"t5","ok":{"session":"s0","revoked":true,"grant":0}}

  $ ../../bin/pet.exe audit data
  audit data: 1 file, 6 records
    integrity   PASS (6 checked)
    r2          PASS (6 checked)
    minimality  PASS (2 checked)
    revocation  PASS (4 checked)
    expiry      PASS (4 checked)
    replay      PASS (4 checked)
  result: PASS

  $ ../../bin/pet.exe audit --json data
  {"dir":"data","files":1,"records":6,"pass":true,"properties":[{"name":"integrity","checked":6,"violations":[]},{"name":"r2","checked":6,"violations":[]},{"name":"minimality","checked":2,"violations":[]},{"name":"revocation","checked":4,"violations":[]},{"name":"expiry","checked":4,"violations":[]},{"name":"replay","checked":4,"violations":[]}]}

A forged grant appended after the respondent's revocation — a
correctly framed, CRC-valid record that a byte-level verifier accepts
— is flagged by the revocation property with its file and byte
offset, and the exit code is 124:

  $ python3 - <<'EOF'
  > import struct, zlib
  > payload = b'{"ev":"grant","digest":"4e572ccd978d507d92c1b8a548038954","grant":1,"form":"_11","benefits":["b1"],"session":"s0"}'
  > frame = struct.pack('<II', len(payload), zlib.crc32(payload)) + payload
  > open('data/wal-000001.log', 'wb').write(frame)
  > EOF

  $ ../../bin/pet.exe store verify data
  ok: 7 record(s) in 2 file(s); every checksum holds and no decoded event carries a raw valuation (R2 on disk)

  $ ../../bin/pet.exe audit data
  audit data: 2 files, 7 records
    integrity   PASS (7 checked)
    r2          PASS (7 checked)
    minimality  PASS (3 checked)
    revocation  FAIL (5 checked, 1 violation)
      wal-000001.log @ byte 0: grant 1 re-establishes session "s0" after its revocation
    expiry      PASS (5 checked)
    replay      PASS (5 checked)
  result: FAIL
  pet: compliance audit failed
  [124]

Recovery never resurrects a tombstone: a fresh durable run in data2,
killed without a clean shutdown right after the revoke, restarts with
the tombstone intact — the grant stays revoked, the lifecycle answers
bad_state, and the audit still passes (the torn tail left by the kill
is a note, not a violation):

  $ ../../bin/pet.exe serve --deterministic --data-dir data2 2>server2.log <<'REQUESTS'
  > {"pet":1,"id":1,"method":"publish_rules","params":{"source":"running"}}
  > {"pet":1,"id":2,"method":"new_session","params":{"source":"running"}}
  > {"pet":1,"id":3,"method":"get_report","params":{"session":"s0","valuation":"011"}}
  > {"pet":1,"id":4,"method":"choose_option","params":{"session":"s0","option":0}}
  > {"pet":1,"id":5,"method":"submit_form","params":{"session":"s0"}}
  > {"pet":1,"id":6,"method":"revoke","params":{"session":"s0"}}
  > REQUESTS
  {"pet":1,"id":1,"trace":"t0","ok":{"digest":"4e572ccd978d507d92c1b8a548038954","cached":false,"predicates":3,"benefits":3,"mas":5,"eligible":5}}
  {"pet":1,"id":2,"trace":"t1","ok":{"session":"s0","digest":"4e572ccd978d507d92c1b8a548038954","cached":true}}
  {"pet":1,"id":3,"trace":"t2","ok":{"valuation":"011","granted":["b1"],"options":[{"mas":"_11","benefits":["b1"],"po_blank":1,"po_sm":1,"po_weighted":null,"published":[{"p2":true},{"p3":true}],"deduced":[],"protected":["p1"],"crowd":2,"recommended":true}],"minimization_ratio":0.33333333333333331}}
  {"pet":1,"id":4,"trace":"t3","ok":{"mas":"_11","benefits":["b1"]}}
  {"pet":1,"id":5,"trace":"t4","ok":{"grant":0,"form":"_11","benefits":["b1"]}}
  {"pet":1,"id":6,"trace":"t5","ok":{"session":"s0","revoked":true,"grant":0}}

Simulate the kill -9: tear the last record mid-append (keep its
header, drop the payload tail), exactly what a crash between write
and fsync leaves behind:

  $ python3 - <<'EOF'
  > import pathlib
  > path = sorted(pathlib.Path('data2').glob('wal-*.log'))[-1]
  > b = path.read_bytes()
  > path.write_bytes(b[:len(b) - 10])
  > EOF

  $ ../../bin/pet.exe audit data2
  audit data2: 1 file, 5 records
  note: torn tail in wal-000000.log at byte 531 (truncated payload (32 of 42 bytes)): crash damage; recovery truncates it
    integrity   PASS (5 checked)
    r2          PASS (5 checked)
    minimality  PASS (2 checked)
    revocation  PASS (4 checked)
    expiry      PASS (4 checked)
    replay      PASS (4 checked)
  result: PASS

The torn record was the revoke itself in this drill — so after
recovery the grant is live again, which is correct: the revoke's
reply was never sent (durable-before-reply), so the respondent never
saw it acknowledged. Re-issue it and the tombstone sticks across
another restart:

  $ ../../bin/pet.exe serve --deterministic --data-dir data2 2>recover.log <<'REQUESTS'
  > {"pet":1,"id":1,"method":"revoke","params":{"session":"s0"}}
  > REQUESTS
  {"pet":1,"id":1,"trace":"t0","ok":{"session":"s0","revoked":true,"grant":0}}

  $ ../../bin/pet.exe serve --deterministic --data-dir data2 2>recover2.log <<'REQUESTS'
  > {"pet":1,"id":1,"method":"revoke","params":{"session":"s0"}}
  > {"pet":1,"id":2,"method":"audit","params":{"source":"running"}}
  > REQUESTS
  {"pet":1,"id":1,"trace":"t0","error":{"code":"bad_state","message":"cannot revoke session \"s0\": consent was already revoked"}}
  {"pet":1,"id":2,"trace":"t1","ok":{"digest":"4e572ccd978d507d92c1b8a548038954","records":1,"stored_values":0,"revoked":1,"failures":[]}}

  $ ../../bin/pet.exe audit data2
  audit data2: 2 files, 6 records
    integrity   PASS (6 checked)
    r2          PASS (6 checked)
    minimality  PASS (2 checked)
    revocation  PASS (4 checked)
    expiry      PASS (4 checked)
    replay      PASS (4 checked)
  result: PASS
