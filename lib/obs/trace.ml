type value = String of string | Int of int | Bool of bool | Float of float

type span = {
  name : string;
  start : float;
  dur : float;
  children : span list;
}

type t = {
  id : string;
  started : float;
  duration : float;
  slow : bool;
  annotations : (string * value) list;
  spans : span list;
}

(* --- Switch and configuration ------------------------------------------------ *)

let on = ref false
let enabled () = !on
let enable () = on := true
let disable () = on := false

let threshold = ref infinity
let set_slow_threshold s = threshold := s
let slow_threshold () = !threshold

(* --- Rings ------------------------------------------------------------------- *)

(* A fixed-size overwrite-oldest ring. [next] is the slot the next add
   writes; once [filled] the slot being overwritten is an eviction. *)
type ring = {
  mutable buf : t option array;
  mutable next : int;
  mutable filled : bool;
  mutable evicted : int;
}

let ring_make cap =
  if cap <= 0 then invalid_arg "Trace: ring capacity must be positive";
  { buf = Array.make cap None; next = 0; filled = false; evicted = 0 }

let ring_add r x =
  if r.filled then r.evicted <- r.evicted + 1;
  r.buf.(r.next) <- Some x;
  r.next <- r.next + 1;
  if r.next = Array.length r.buf then begin
    r.next <- 0;
    r.filled <- true
  end

(* Newest first: walk backwards from the slot before [next]. *)
let ring_list r =
  let cap = Array.length r.buf in
  let n = if r.filled then cap else r.next in
  List.filter_map
    (fun i -> r.buf.((r.next - 1 - i + (2 * cap)) mod cap))
    (List.init n Fun.id)

(* The rings are shared by every domain — a capture finishing on any
   shard lands in the same recent/slow history — so all ring access goes
   through one mutex. *)
let ring_m = Mutex.create ()

let ring_locked f =
  Mutex.lock ring_m;
  Fun.protect ~finally:(fun () -> Mutex.unlock ring_m) f

let recent_ring = ref (ring_make 64)
let slow_ring = ref (ring_make 32)

let configure ?(recent = 64) ?(slow = 32) () =
  ring_locked @@ fun () ->
  recent_ring := ring_make recent;
  slow_ring := ring_make slow

(* --- Capture ----------------------------------------------------------------- *)

(* The tree under construction: one mutable frame per open or closed
   span. Unlike {!Span}'s aggregate frames, repeated entries of the same
   name become distinct nodes — a trace shows what happened, in order,
   not a rollup. *)
type bframe = {
  bname : string;
  bstart : float;
  mutable bdur : float;
  mutable bkids_rev : bframe list;
}

type active = {
  aid : string;
  astart : float;
  mutable aroots_rev : bframe list;
  mutable astack : bframe list;
  mutable anns_rev : (string * value) list;
}

(* One capture can be open per domain (each shard traces the request it
   is handling); the id sequence is global so ids stay unique across
   domains and deterministic under a single sequential client. *)
let active_key : active option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let active () = Domain.DLS.get active_key

let ids = Atomic.make 0
let generate_id () = Printf.sprintf "t%d" (Atomic.fetch_and_add ids 1)

let annotate key v =
  match !(active ()) with
  | None -> ()
  | Some a -> a.anns_rev <- (key, v) :: a.anns_rev

let current () =
  match !(active ()) with None -> None | Some a -> Some a.aid

let on_enter a name t0 =
  let frame = { bname = name; bstart = t0; bdur = 0.; bkids_rev = [] } in
  (match a.astack with
  | parent :: _ -> parent.bkids_rev <- frame :: parent.bkids_rev
  | [] -> a.aroots_rev <- frame :: a.aroots_rev);
  a.astack <- frame :: a.astack

let on_exit a t1 =
  match a.astack with
  | frame :: rest ->
    frame.bdur <- t1 -. frame.bstart;
    a.astack <- rest
  | [] -> ()
(* an exit whose enter predates the recorder: ignore *)

let rec node_of frame =
  {
    name = frame.bname;
    start = frame.bstart;
    dur = frame.bdur;
    children = List.rev_map node_of frame.bkids_rev;
  }

let run ~id f =
  if not !on then f ()
  else
    let active = active () in
    match !active with
    | Some _ -> f () (* nested capture joins the enclosing trace *)
    | None ->
      let a =
        {
          aid = id;
          astart = Metrics.now ();
          aroots_rev = [];
          astack = [];
          anns_rev = [];
        }
      in
      active := Some a;
      Span.set_recorder
        (Some { Span.r_enter = on_enter a; r_exit = on_exit a });
      Fun.protect
        ~finally:(fun () ->
          Span.set_recorder None;
          active := None;
          let finish = Metrics.now () in
          (* Frames an exception left open close at the capture end —
             the span's own protect already ran, so this only fires if
             the recorder was torn down mid-span. *)
          List.iter (fun fr -> fr.bdur <- finish -. fr.bstart) a.astack;
          let duration = finish -. a.astart in
          let slow = duration >= !threshold in
          let trace =
            {
              id = a.aid;
              started = a.astart;
              duration;
              slow;
              annotations = List.rev a.anns_rev;
              spans = List.rev_map node_of a.aroots_rev;
            }
          in
          ring_locked (fun () ->
              ring_add !recent_ring trace;
              if slow then ring_add !slow_ring trace))
        f

(* --- Completed traces --------------------------------------------------------- *)

let recent () = ring_locked (fun () -> ring_list !recent_ring)
let slow () = ring_locked (fun () -> ring_list !slow_ring)

let find id =
  ring_locked @@ fun () ->
  let by_id t = t.id = id in
  match List.find_opt by_id (ring_list !recent_ring) with
  | Some _ as found -> found
  | None -> List.find_opt by_id (ring_list !slow_ring)

let evictions () =
  ring_locked (fun () -> (!recent_ring.evicted, !slow_ring.evicted))

let reset () =
  (ring_locked @@ fun () ->
   let reset_ring r =
     Array.fill r.buf 0 (Array.length r.buf) None;
     r.next <- 0;
     r.filled <- false;
     r.evicted <- 0
   in
   reset_ring !recent_ring;
   reset_ring !slow_ring);
  Atomic.set ids 0

(* --- Export -------------------------------------------------------------------- *)

let value_str = function
  | String s -> Printf.sprintf "%S" s
  | Int i -> string_of_int i
  | Bool b -> string_of_bool b
  | Float f -> Printf.sprintf "%.6f" f

let render t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "trace %s%s duration=%.6fs\n" t.id
       (if t.slow then " (slow)" else "")
       t.duration);
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf (Printf.sprintf "  %s=%s\n" k (value_str v)))
    t.annotations;
  let rec go prefix is_last s =
    let branch, extend =
      ( (prefix ^ if is_last then "`-- " else "|-- "),
        (prefix ^ if is_last then "    " else "|   ") )
    in
    Buffer.add_string buf
      (Printf.sprintf "%s%-*s +%.6fs dur=%.6fs\n" branch
         (max 1 (32 - String.length branch))
         s.name
         (s.start -. t.started)
         s.dur);
    let rec kids = function
      | [] -> ()
      | [ last ] -> go extend true last
      | k :: rest ->
        go extend false k;
        kids rest
    in
    kids s.children
  in
  let rec tops = function
    | [] -> ()
    | [ last ] -> go "" true last
    | s :: rest ->
      go "" false s;
      tops rest
  in
  tops t.spans;
  Buffer.contents buf

(* Minimal JSON string escaping — enough for span names and annotation
   values (which are identifiers and digests, but a hostile rule-set
   name must not break the export). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Timestamps relative to the trace start, in microseconds — what the
   trace_event format expects. %.3f keeps sub-microsecond precision and
   byte-stability under a logical clock. *)
let us t0 t = Printf.sprintf "%.3f" ((t -. t0) *. 1e6)

let chrome t =
  let buf = Buffer.create 1024 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let sep = ref "" in
  let event ~name ~ts ~dur ~args =
    addf
      {|%s{"name":"%s","cat":"pet","ph":"X","pid":1,"tid":1,"ts":%s,"dur":%s%s}|}
      !sep (json_escape name) ts dur
      (match args with "" -> "" | a -> Printf.sprintf {|,"args":{%s}|} a);
    sep := ","
  in
  Buffer.add_string buf {|{"displayTimeUnit":"ms","traceEvents":[|};
  let args =
    String.concat ","
      (Printf.sprintf {|"trace_id":"%s"|} (json_escape t.id)
      :: List.map
           (fun (k, v) ->
             Printf.sprintf {|"%s":%s|} (json_escape k)
               (match v with
               | String s -> Printf.sprintf {|"%s"|} (json_escape s)
               | Int i -> string_of_int i
               | Bool b -> string_of_bool b
               | Float f -> Printf.sprintf "%.6f" f))
           t.annotations)
  in
  event ~name:"request" ~ts:"0.000"
    ~dur:(Printf.sprintf "%.3f" (t.duration *. 1e6))
    ~args;
  let rec walk s =
    event ~name:s.name ~ts:(us t.started s.start)
      ~dur:(Printf.sprintf "%.3f" (s.dur *. 1e6))
      ~args:"";
    List.iter walk s.children
  in
  List.iter walk t.spans;
  Buffer.add_string buf "]}";
  Buffer.contents buf
