(** A CDCL SAT solver built from scratch (conflict-driven clause learning,
    two-watched-literal propagation, 1UIP conflict analysis with
    self-subsumption clause minimization, VSIDS-style variable activities
    with phase saving, Luby restarts, learnt-clause database reduction,
    and incremental solving under assumptions).

    This is the substrate the paper's prototype delegates to a SAT solver
    for: deciding the proof relation [w, R |= x] reduces to unsatisfiability
    of [R /\ w /\ ~x]. The solver is cross-validated against brute-force
    enumeration in the test suite. *)

type t

type result = Sat | Unsat

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  learnt_literals : int;
}

val create : ?max_learnt_factor:int -> unit -> t
(** [max_learnt_factor] bounds the learnt-clause database at
    [max_learnt_factor * max 1 (number of problem clauses)] before a
    reduction pass (default 3). *)

val new_var : t -> int
(** Allocate a fresh variable; returns its 0-based index. *)

val nvars : t -> int

val ensure_nvars : t -> int -> unit
(** Allocate variables until at least the given count exist. *)

val add_clause : t -> Lit.t list -> unit
(** Add a problem clause. May only be called between [solve]s (the solver
    backtracks to decision level 0 automatically). Adding the empty clause,
    or a clause falsified at level 0, makes the solver permanently
    unsatisfiable. *)

val okay : t -> bool
(** [false] once the clause set is known unsatisfiable regardless of
    assumptions. *)

val solve : ?assumptions:Lit.t list -> t -> result
(** Solve the current clause set under the given assumption literals.
    The solver remains usable afterwards: more clauses and variables can be
    added and [solve] called again. *)

val value : t -> int -> bool
(** Model value of a variable after a [Sat] answer.
    @raise Invalid_argument if the last [solve] did not return [Sat]. *)

val model : t -> bool array
(** Copy of the full model after a [Sat] answer. *)

val unsat_core : t -> Lit.t list
(** After an [Unsat] answer to a [solve] with assumptions: a subset of the
    assumptions that is already unsatisfiable with the clause set. Empty
    when the clause set is unsatisfiable on its own. *)

val stats : t -> stats

val iter_models : ?vars:int list -> t -> (bool array -> unit) -> int
(** [iter_models ~vars t f] enumerates assignments to [vars] (default: all
    variables) extendable to models, calling [f] with the full model found
    for each, and returns their number. Enumeration works by adding
    blocking clauses, so it permanently constrains [t]; use a dedicated
    solver instance when the instance must stay reusable. *)
