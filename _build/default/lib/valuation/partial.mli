(** Partial [Omega]-valuations (Definition 3.3): partial functions from a
    universe to [{0, 1}]. These encode partially filled forms; the unset
    positions are the paper's "blank attribute values" (Definition 3.15).

    Bit-packed as a domain mask plus a value mask (values only meaningful
    on domain bits, kept at 0 elsewhere). *)

type t

val universe : t -> Universe.t
val domain_mask : t -> int
val bits : t -> int

val empty : Universe.t -> t
val of_masks : Universe.t -> dom:int -> bits:int -> t
(** @raise Invalid_argument when masks exceed the universe or value bits
    escape the domain. *)

val of_assoc : Universe.t -> (string * bool) list -> t
(** @raise Invalid_argument on contradictory bindings; duplicates with the
    same value are allowed. @raise Not_found on unknown names. *)

val of_total : Total.t -> t
val of_string : Universe.t -> string -> t
(** Parse e.g. ["0_1"] ([_] = blank).
    @raise Invalid_argument on malformed input. *)

val to_total : t -> Total.t option
(** [Some] exactly when the valuation is total. *)

val value : t -> string -> bool option
val value_at : t -> int -> bool option
val defines : t -> string -> bool

val domain : t -> string list
(** Names on which the valuation is defined, in universe order. *)

val domain_size : t -> int
val blanks : t -> string list
val blank_count : t -> int
val is_total : t -> bool

val set : t -> string -> bool -> t
(** @raise Invalid_argument when the name is already set to the other
    value. Setting to the same value is the identity. *)

val unset : t -> string -> t
val restrict : t -> string list -> t
(** Keep only the given names (unknown or blank names are ignored). *)

val bindings : t -> (string * bool) list

val merge : t -> t -> t option
(** Union of two compatible partial valuations; [None] on conflict. *)

val subvaluation : t -> t -> bool
(** [subvaluation w v] is the paper's [w <= v] (Definition 3.5): [w]'s
    domain is included in [v]'s and they agree on it. *)

val strict_subvaluation : t -> t -> bool
val extends_total : t -> Total.t -> bool
(** [extends_total w v] iff [w <= v] seen as partial valuations. *)

val extensions : t -> Total.t list
(** All total valuations [v] with [w <= v], in increasing bit order. *)

val count_extensions : t -> int

val to_formula : t -> Pet_logic.Formula.t
(** The conjunction of the literals fixed by the valuation. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** An arbitrary total order (for sets and maps). *)

val compare_lex : t -> t -> int
(** The paper's canonical order: valuations read as words over the ordered
    alphabet [_ < 0 < 1], first variable most significant. *)

val to_string : t -> string
(** E.g. ["0_1"], first variable leftmost. *)

val pp : t Fmt.t
