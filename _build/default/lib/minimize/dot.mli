(** Graphviz (DOT) export of the paper's two figures: the
    accurate-subvaluation digraph (Figure 1) and the "choices of a user"
    bipartite component (Figure 2). *)

val lattice : Lattice.t -> string
(** Figure 1: MAS in bold boxes, total valuations in italics, non-minimal
    accurate subvaluations in gray; edges follow the accurate-subvaluation
    relation. *)

val choices : Atlas.t -> Pet_valuation.Total.t -> string
(** Figure 2: the connected component of the given valuation in the
    bipartite valuation/MAS graph.
    @raise Invalid_argument when the valuation is not a player. *)

val component :
  Atlas.t -> Pet_valuation.Total.t -> int list * int list
(** The player and MAS indices of that connected component (ascending). *)
