lib/logic/parse.mli: Formula
