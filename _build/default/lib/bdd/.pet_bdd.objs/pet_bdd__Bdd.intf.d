lib/bdd/bdd.mli:
