Every rule-DSL example in docs/rule-format.md, executed against the
current parser so the documentation cannot drift. If one of these
blocks fails, fix docs/rule-format.md together with the code.

The "Syntax" section's example file parses, and `check` echoes the
canonical form plus statistics:

  $ cat > doc-example.rules <<'EOF'
  > form p1 p2 p3              # the predicates applicants can assert
  > benefits b1 b2             # the benefits the provider can grant
  > rule b1 := p1 | (p2 & p3)  # eligibility, any CPL formula over the form
  > rule b2 := p1 & !p2
  > constraint p1 -> !p2       # consistency knowledge (R_ADD)
  > EOF

  $ ../../bin/pet.exe check doc-example.rules
  form p1 p2 p3
  benefits b1 b2
  rule b1 := p1 | p2 & p3
  rule b2 := p1 & !p2
  constraint p1 -> !p2
  
  # 3 predicates, 2 benefits, 2 rules, 1 constraints
  # 6 realistic valuations, 3 eligible


The alternative operator spellings the "Syntax" section lists (`~ not`,
`&& and`, `|| or`, `<->`, `true`, `false`) all parse to the same rules:

  $ cat > doc-spellings.rules <<'EOF'
  > form p1 p2 p3
  > benefits b1 b2
  > rule b1 := p1 or (p2 and p3)
  > rule b2 := p1 && not p2
  > constraint true -> (p1 -> ~p2) <-> true
  > EOF

  $ ../../bin/pet.exe check doc-spellings.rules | head -5
  form p1 p2 p3
  benefits b1 b2
  rule b1 := p1 | p2 & p3
  rule b2 := p1 & !p2
  constraint true -> p1 -> !p2 <-> true

`check` warns about predicates collected but never used by any rule
(the claim of the "Checking a file" section):

  $ cat > doc-unused.rules <<'EOF'
  > form p1 p2
  > benefits b1
  > rule b1 := p1
  > EOF

  $ ../../bin/pet.exe check doc-unused.rules | grep warning
  # warning: predicate p2 is collected but never used

`audit` goes further and reports per-predicate need across all
minimized proofs:

  $ ../../bin/pet.exe audit doc-example.rules
  2 MAS over 4 valuations
  
  predicate                  in MAS players needing it
  p1                              1                  2
  p2                              2                  4
  p3                              1                  2
  
  every predicate is needed by some minimized proof



The "Directed constraints" section: with only `p1 -> !p2` declared,
the applicant 011's MAS keeps p1 blank (contraposition from p2 = 1 is
not chained) ...

  $ ../../bin/pet.exe minimize doc-example.rules -v 011
  _11  proves {b1}

... and listing the reverse direction explicitly, as the section
recommends, folds p1 = 0 into the published MAS:

  $ cat > doc-directed.rules <<'EOF'
  > form p1 p2 p3
  > benefits b1 b2
  > rule b1 := p1 | (p2 & p3)
  > rule b2 := p1 & !p2
  > constraint p1 -> !p2
  > constraint p2 -> !p1
  > EOF

  $ ../../bin/pet.exe minimize doc-directed.rules -v 011
  011  proves {b1}

The section's H-cov witness: `0_110_______` carries p1 = 0 and p5 = 0
(`p3 -> !p1 & !p5` fires forward) but position 10 stays blank because
`p10 = 0` only follows by contraposition:

  $ ../../bin/pet.exe atlas hcov | grep '0_110'
  0_110_______               256      128      128         7

Malformed declarations fail with the line number, as a rule file is
authored by hand:

  $ cat > doc-bad.rules <<'EOF'
  > form p1 p2
  > benefits b1
  > rule b1 : p1
  > EOF

  $ ../../bin/pet.exe check doc-bad.rules
  pet: line 3: expected 'rule <benefit> := <formula>'
  [124]
