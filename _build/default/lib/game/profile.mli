(** Strategy profiles: one move (MAS index) per player of an atlas.
    The game of Section 4 is one-shot and simultaneous; a profile records
    what every player publishes. *)

type t

val make : Pet_minimize.Atlas.t -> (int -> int) -> t
(** [make atlas f] assigns MAS [f i] to player [i].
    @raise Invalid_argument when some [f i] is not among player [i]'s
    choices. *)

val atlas : t -> Pet_minimize.Atlas.t
val move_of : t -> int -> int
(** The MAS index played by a player index. *)

val crowd : t -> int -> int list
(** Player indices committed to a MAS index, ascending. *)

val crowd_size : t -> int -> int

val move_of_valuation : t -> Pet_valuation.Total.t -> Pet_minimize.Algorithm1.choice
(** Convenience lookup by valuation.
    @raise Not_found when the valuation is not a player. *)

val equal : t -> t -> bool
