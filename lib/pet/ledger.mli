(** The service provider's archive: the minimized records kept "possibly
    for several years, as legal proof of the process and/or transaction,
    or simply to be used for internal audit" (Section 2.1, step 4).

    Only the minimized form and the granted benefits are stored — this
    is where the storage-limitation payoff of the PET materializes. The
    archive is append-only in its {e ids}: re-auditing never mutates it,
    and the only mutation consent law forces on it is {!revoke}, which
    erases a record's subvaluation in place (a tombstone) while keeping
    its id slot, so every later grant id and the audit ordering stay
    valid. *)

type t

type entry = { id : int; mutable grant : Workflow.grant option }
(** [grant = None] is a tombstone: the record's minimized form was
    erased after the respondent revoked consent (or the grant passed its
    expiry horizon); only the id remains, as proof a record existed and
    was purged. *)

val create : unit -> t

val record : t -> Workflow.grant -> int
(** Append a grant; returns its archive id (sequential from 0). *)

val record_tombstone : t -> int
(** Append an already-tombstoned entry — snapshot replay recreating a
    revoked record without ever materializing its form. *)

val revoke : t -> int -> [ `Revoked | `Already | `Unknown ]
(** Erase the record's subvaluation in place. [`Already] if the record
    is already a tombstone, [`Unknown] if the id was never recorded. *)

val find : t -> int -> Workflow.grant option
(** [None] for unknown ids {e and} for tombstoned records. *)

val size : t -> int

val tombstones : t -> int
(** How many records are tombstones. *)

val entries : t -> entry list
(** In insertion order. *)

val stored_values : t -> int
(** Total number of predicate values held — the provider's storage
    footprint, to compare against [size * form width] for the legacy
    full-form process. Tombstoned records hold zero. *)

val audit : t -> Workflow.t -> int list
(** Re-verify every archived record against the rules
    ({!Workflow.audit}); returns the ids of the failing records
    (tampered or recorded under different rules), ascending. Tombstones
    store nothing and are skipped. *)

val to_json : t -> Json.t
