(* Tests for the flight-recorder stack: the delta encoder, the on-disk
   segment family (rotation, retention, torn tails, mid-journal
   damage), the SLO window/burn math, and the metrics registry under
   concurrent multi-domain registration and observation. *)

module Metrics = Pet_obs.Metrics
module Flight = Pet_obs.Flight
module Slo = Pet_obs.Slo
module Flight_log = Pet_store.Flight_log

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

let fresh () =
  Metrics.reset ();
  Metrics.enable ();
  let t = ref 0. in
  Metrics.set_clock (fun () ->
      t := !t +. 1.0;
      !t)

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "pet_test_flight_%d_%d" (Unix.getpid ()) !counter)
    in
    let rec remove path =
      if Sys.is_directory path then begin
        Array.iter
          (fun entry -> remove (Filename.concat path entry))
          (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
    in
    if Sys.file_exists dir then remove dir;
    Unix.mkdir dir 0o755;
    dir

(* --- Encoder -------------------------------------------------------------------- *)

let test_encoder_deltas () =
  fresh ();
  let c = Metrics.counter "flight_test_total" in
  let g = Metrics.gauge "flight_test_depth" in
  let h = Metrics.histogram "flight_test_seconds" in
  Metrics.add c 5;
  Metrics.set_gauge g 2.;
  Metrics.observe h 0.001;
  Metrics.observe h 0.001;
  let enc = Flight.create () in
  let r1 = Flight.snap enc ~now:1. (Metrics.snapshot ()) in
  Alcotest.(check bool) "first snap is a full dump" true
    (contains r1 {|"flight_test_total":5|});
  Alcotest.(check bool) "first snap carries the gauge" true
    (contains r1 {|"flight_test_depth":2|});
  Alcotest.(check bool) "first snap carries hist n" true
    (contains r1 {|"n":2|});
  Alcotest.(check bool) "seq starts at 1" true (contains r1 {|"seq":1|});
  (* Nothing changed: the next snap carries no instrument sections. *)
  let r2 = Flight.snap enc ~now:2. (Metrics.snapshot ()) in
  Alcotest.(check bool) "quiet snap has no counters" false
    (contains r2 "counters");
  Alcotest.(check bool) "quiet snap has no gauges" false (contains r2 "gauges");
  Alcotest.(check bool) "quiet snap has no hist" false (contains r2 "hist");
  Alcotest.(check bool) "seq is gap-free" true (contains r2 {|"seq":2|});
  (* Only the increments appear, not the cumulative values. *)
  Metrics.add c 3;
  Metrics.observe h 0.001;
  let r3 = Flight.snap enc ~now:3. (Metrics.snapshot ()) in
  Alcotest.(check bool) "counter delta" true
    (contains r3 {|"flight_test_total":3|});
  Alcotest.(check bool) "not the cumulative value" false
    (contains r3 {|"flight_test_total":8|});
  Alcotest.(check bool) "hist delta n" true (contains r3 {|"n":1|});
  Alcotest.(check bool) "unchanged gauge omitted" false
    (contains r3 "flight_test_depth");
  (* The WAL frontier stamp is verbatim. *)
  let r4 =
    Flight.snap enc ~wal:("wal-000007.log", 4242) ~now:4.
      (Metrics.snapshot ())
  in
  Alcotest.(check bool) "wal stamp" true
    (contains r4 {|"wal":{"file":"wal-000007.log","off":4242}|})

let test_encoder_traces_and_meta () =
  fresh ();
  let enc = Flight.create () in
  let tr =
    {
      Pet_obs.Trace.id = "t-1";
      started = 0.;
      duration = 0.25;
      slow = true;
      annotations = [ ("method", Pet_obs.Trace.String "get_report") ];
      spans = [];
    }
  in
  let rs = Flight.slow_traces enc ~now:1. [ tr ] in
  Alcotest.(check int) "one record" 1 (List.length rs);
  Alcotest.(check bool) "trace id" true (contains (List.hd rs) {|"id":"t-1"|});
  let rs' = Flight.slow_traces enc ~now:2. [ tr ] in
  Alcotest.(check int) "each trace journaled once" 0 (List.length rs');
  let m = Flight.meta enc ~now:3. ~event:"exit" [ ("mode", "test") ] in
  Alcotest.(check bool) "meta event" true (contains m {|"event":"exit"|});
  Alcotest.(check bool) "meta fields" true (contains m {|"mode":"test"|})

(* --- Segments ------------------------------------------------------------------- *)

let write_records dir ?segment_bytes ?keep records =
  match Flight_log.open_dir ?segment_bytes ?keep dir with
  | Error m -> Alcotest.failf "open_dir: %s" m
  | Ok fl ->
    List.iter (Flight_log.append fl) records;
    Flight_log.close fl

let read_all dir =
  match
    Flight_log.fold dir ~init:[] (fun acc r ->
        r.Flight_log.payload :: acc)
  with
  | Error m -> Alcotest.failf "fold: %s" m
  | Ok (acc, damage) -> (List.rev acc, damage)

(* Segment sizes clamp at 4 KiB, so rotation tests need fat records. *)
let fat_record i =
  Printf.sprintf "{\"flight\":1,\"seq\":%d,\"pad\":\"%s\"}" i
    (String.make 64 'x')

let test_segment_roundtrip () =
  let dir = temp_dir () in
  let records = List.init 200 fat_record in
  write_records dir ~segment_bytes:4096 ~keep:100 records;
  let got, damage = read_all dir in
  Alcotest.(check (list string)) "all records back in order" records got;
  Alcotest.(check int) "no damage" 0 (List.length damage);
  (* Rotation happened: more than one segment on disk. *)
  let segments =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Flight_log.parse_name f <> None)
  in
  Alcotest.(check bool) "rotated" true (List.length segments > 1)

let test_segment_retention () =
  let dir = temp_dir () in
  let records = List.init 400 fat_record in
  write_records dir ~segment_bytes:4096 ~keep:2 records;
  let segments =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Flight_log.parse_name f <> None)
  in
  (* keep sealed segments plus the live one. *)
  Alcotest.(check bool) "retention bounds the family"
    true
    (List.length segments <= 3);
  (* The tail of the stream survives pruning. *)
  let got, _ = read_all dir in
  Alcotest.(check bool) "latest records survive" true
    (List.mem (fat_record 399) got)

let test_torn_tail_is_silent () =
  let dir = temp_dir () in
  let records = List.init 5 (Printf.sprintf "{\"flight\":1,\"seq\":%d}") in
  write_records dir records;
  (* Chop bytes off the last (only) segment, mid-record: the kill -9
     signature. Readers must truncate silently. *)
  let file = Filename.concat dir (Flight_log.name 0) in
  let size = (Unix.stat file).Unix.st_size in
  let fd = Unix.openfile file [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd (size - 3);
  Unix.close fd;
  let got, damage = read_all dir in
  Alcotest.(check int) "torn tail reported nowhere" 0 (List.length damage);
  Alcotest.(check (list string))
    "every whole record survives"
    (List.filteri (fun i _ -> i < 4) records)
    got

let test_mid_journal_damage_is_reported () =
  let dir = temp_dir () in
  let records = List.init 200 fat_record in
  write_records dir ~segment_bytes:4096 ~keep:100 records;
  (* Flip a payload byte inside the first (sealed) segment: the CRC
     catches it, the damage is reported, and scanning continues with
     the next segment. *)
  let file = Filename.concat dir (Flight_log.name 0) in
  let fd = Unix.openfile file [ Unix.O_WRONLY ] 0o644 in
  ignore (Unix.lseek fd 20 Unix.SEEK_SET);
  ignore (Unix.write_substring fd "~" 0 1);
  Unix.close fd;
  let got, damage = read_all dir in
  Alcotest.(check bool) "damage reported" true (List.length damage >= 1);
  let d = List.hd damage in
  Alcotest.(check string) "damage names the segment" (Flight_log.name 0)
    d.Flight_log.dfile;
  Alcotest.(check bool) "later segments still read" true
    (List.mem (fat_record 199) got)

(* --- SLO ------------------------------------------------------------------------- *)

let test_slo_window_and_burn () =
  fresh ();
  let slo = Slo.create () in
  (* 100 requests at 1ms, 2 errors: under the 50ms p99 target, over the
     1% error budget. *)
  for i = 1 to 100 do
    Slo.record slo "get_report" ~now:(float_of_int i /. 10.)
      ~latency:0.001 ~error:(i <= 2)
  done;
  let r = Option.get (Slo.report slo "get_report" ~now:10.) in
  Alcotest.(check int) "windowed requests" 100 r.Slo.requests;
  Alcotest.(check int) "windowed errors" 2 r.Slo.errors;
  Alcotest.(check (float 1e-9)) "error ratio" 0.02 r.Slo.error_ratio;
  Alcotest.(check bool) "p99 under target" true (r.Slo.p99_s <= 0.05);
  Alcotest.(check int) "none over target" 0 r.Slo.over_target;
  Alcotest.(check (float 1e-9)) "latency burn" 0. r.Slo.latency_burn;
  (* 2% errors against a 1% objective burns at 2x. *)
  Alcotest.(check (float 1e-9)) "error burn" 2. r.Slo.error_burn;
  Alcotest.(check bool) "breached" true r.Slo.breached;
  (* The same series evaluated after the window passed is empty: slices
     age out by alignment alone. *)
  let r' = Option.get (Slo.report slo "get_report" ~now:1000.) in
  Alcotest.(check int) "aged out" 0 r'.Slo.requests;
  Alcotest.(check bool) "no longer breached" false r'.Slo.breached

let test_slo_latency_burn () =
  fresh ();
  let slo = Slo.create () in
  (* 5 of 100 requests over the 50ms target: 5% consumption against a
     1% budget burns at 5x. *)
  for i = 1 to 100 do
    Slo.record slo "submit_form" ~now:(float_of_int i /. 10.)
      ~latency:(if i mod 20 = 0 then 0.5 else 0.001)
      ~error:false
  done;
  let r = Option.get (Slo.report slo "submit_form" ~now:10.) in
  Alcotest.(check int) "over target" 5 r.Slo.over_target;
  Alcotest.(check (float 1e-9)) "latency burn" 5. r.Slo.latency_burn;
  Alcotest.(check bool) "p99 over target" true (r.Slo.p99_s > 0.05);
  Alcotest.(check bool) "breached" true r.Slo.breached;
  Alcotest.(check (float 1e-9)) "error burn" 0. r.Slo.error_burn

let test_slo_sync_gauges () =
  fresh ();
  let slo = Slo.create () in
  Slo.record slo "stats" ~now:1. ~latency:0.001 ~error:false;
  Slo.sync slo ~now:1.;
  let s = Metrics.snapshot () in
  let gauge name =
    List.assoc (Printf.sprintf "%s{slo=\"stats\"}" name) s.Metrics.gauges
  in
  Alcotest.(check (float 0.)) "window requests gauge" 1.
    (gauge "pet_slo_window_requests");
  Alcotest.(check (float 0.)) "breached gauge" 0. (gauge "pet_slo_breached")

(* --- Concurrency ----------------------------------------------------------------- *)

(* Registration and observation from several domains at once: the
   registry must neither lose instruments nor drop observations. Each
   domain registers the same shared instruments (by name) plus one
   private labeled counter, then hammers them. *)
let test_multi_domain_observation () =
  fresh ();
  let domains = 4 and iters = 5_000 in
  let worker d () =
    let c = Metrics.counter "flight_mt_total" in
    let mine =
      Metrics.counter ~labels:[ ("domain", string_of_int d) ]
        "flight_mt_domain_total"
    in
    let h = Metrics.histogram "flight_mt_seconds" in
    for i = 1 to iters do
      Metrics.incr c;
      Metrics.incr mine;
      Metrics.observe h (float_of_int (i mod 7) /. 1000.)
    done
  in
  let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;
  let s = Metrics.snapshot () in
  let counter name = List.assoc name s.Metrics.counters in
  Alcotest.(check int) "shared counter conserved" (domains * iters)
    (counter "flight_mt_total");
  for d = 0 to domains - 1 do
    Alcotest.(check int)
      (Printf.sprintf "domain %d counter" d)
      iters
      (counter (Printf.sprintf "flight_mt_domain_total{domain=\"%d\"}" d))
  done;
  let h = List.assoc "flight_mt_seconds" s.Metrics.histograms in
  Alcotest.(check int) "histogram count conserved" (domains * iters)
    h.Metrics.count

(* Snapshots taken while another domain records must stay well-formed
   and monotone: deltas never go negative across a snap sequence. *)
let test_snap_under_concurrent_writes () =
  fresh ();
  let stop = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        let c = Metrics.counter "flight_mt_live_total" in
        while not (Atomic.get stop) do
          Metrics.incr c
        done)
  in
  let enc = Flight.create () in
  let records =
    List.init 50 (fun i ->
        Flight.snap enc ~now:(float_of_int i) (Metrics.snapshot ()))
  in
  Atomic.set stop true;
  Domain.join writer;
  List.iter
    (fun r ->
      Alcotest.(check bool) "no negative counter delta" false
        (contains r {|"flight_mt_live_total":-|}))
    records

let () =
  Alcotest.run "flight"
    [
      ( "encoder",
        [
          Alcotest.test_case "delta encoding" `Quick test_encoder_deltas;
          Alcotest.test_case "traces and meta" `Quick
            test_encoder_traces_and_meta;
        ] );
      ( "segments",
        [
          Alcotest.test_case "roundtrip and rotation" `Quick
            test_segment_roundtrip;
          Alcotest.test_case "retention" `Quick test_segment_retention;
          Alcotest.test_case "torn tail truncates silently" `Quick
            test_torn_tail_is_silent;
          Alcotest.test_case "mid-journal damage is reported" `Quick
            test_mid_journal_damage_is_reported;
        ] );
      ( "slo",
        [
          Alcotest.test_case "window and error burn" `Quick
            test_slo_window_and_burn;
          Alcotest.test_case "latency burn" `Quick test_slo_latency_burn;
          Alcotest.test_case "sync to gauges" `Quick test_slo_sync_gauges;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "multi-domain observation" `Quick
            test_multi_domain_observation;
          Alcotest.test_case "snapshots under writes" `Quick
            test_snap_under_concurrent_writes;
        ] );
    ]
