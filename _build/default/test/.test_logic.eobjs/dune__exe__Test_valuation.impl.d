test/test_valuation.ml: Alcotest Bool List Pet_logic Pet_valuation QCheck2 QCheck_alcotest String
