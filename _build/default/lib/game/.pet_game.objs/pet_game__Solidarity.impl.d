lib/game/solidarity.ml: Fmt Fun List Payoff Pet_minimize Profile
