module F = Pet_logic.Formula
module Literal = Pet_logic.Literal
module Universe = Pet_valuation.Universe
module Total = Pet_valuation.Total
module Partial = Pet_valuation.Partial
module Exposure = Pet_rules.Exposure
module Rule = Pet_rules.Rule
module Engine = Pet_rules.Engine
module A1 = Pet_minimize.Algorithm1
module Atlas = Pet_minimize.Atlas
module Profile = Pet_game.Profile
module Payoff = Pet_game.Payoff
module Strategy = Pet_game.Strategy
module Equilibrium = Pet_game.Equilibrium

type transformed = {
  name : string;
  exposure : Exposure.t;
  back_pred : string -> string;
  back_benefit : string -> string;
  exact : bool;
}

(* --- The transformations --------------------------------------------------------- *)

let prefix = "mm_"

let strip name =
  if String.length name > 3 && String.sub name 0 3 = prefix then
    String.sub name 3 (String.length name - 3)
  else name

(* Bijectively rename every predicate and benefit, keeping universe
   positions. Everything — atlas, payoffs, Algorithm 2 tie-breaking
   (which orders moves positionally, not by name) — must be invariant. *)
let renamed e =
  let ren n = prefix ^ n in
  let ren_formula f = F.map_vars (fun v -> F.var (ren v)) f in
  let xp = Universe.of_names (List.map ren (Universe.names (Exposure.xp e))) in
  let xb = Universe.of_names (List.map ren (Universe.names (Exposure.xb e))) in
  let rules =
    List.map
      (fun (r : Rule.t) ->
        Rule.of_formula ~benefit:(ren r.benefit)
          (ren_formula (Pet_logic.Dnf.to_formula r.dnf)))
      (Exposure.rules e)
  in
  let constraints = List.map ren_formula (Exposure.constraints e) in
  {
    name = "rename";
    exposure = Exposure.create ~xp ~xb ~rules ~constraints ();
    back_pred = strip;
    back_benefit = strip;
    exact = true;
  }

let identity_maps name exposure ~exact =
  { name; exposure; back_pred = Fun.id; back_benefit = Fun.id; exact }

(* Rule and constraint declaration order is not part of the semantics. *)
let rules_permuted e =
  identity_maps "rule-permutation"
    (Exposure.create ~xp:(Exposure.xp e) ~xb:(Exposure.xb e)
       ~rules:(List.rev (Exposure.rules e))
       ~constraints:(List.rev (Exposure.constraints e))
       ())
    ~exact:true

(* Rebuild every DNF from a formula with its disjuncts and literals
   reversed: the normalization pipeline must produce the same rule. *)
let literals_shuffled e =
  let rules =
    List.map
      (fun (r : Rule.t) ->
        let formula =
          F.disj
            (List.rev_map
               (fun c -> F.conj (List.rev_map Literal.to_formula c))
               (Rule.conjunctions r))
        in
        Rule.of_formula ~benefit:r.benefit formula)
      (Exposure.rules e)
  in
  identity_maps "literal-reorder"
    (Exposure.create ~xp:(Exposure.xp e) ~xb:(Exposure.xb e) ~rules
       ~constraints:(Exposure.constraints e) ())
    ~exact:true

(* Duplicate the first conjunction of the first rule, bypassing the
   normalizing constructors: a disjunction with a repeated disjunct is
   semantically the same rule, whatever the backends make of it. *)
let conjunction_duplicated e =
  let rules =
    match Exposure.rules e with
    | [] -> []
    | (r : Rule.t) :: rest -> (
      match Rule.conjunctions r with
      | [] -> r :: rest
      | c :: _ as conjs -> Rule.make ~benefit:r.benefit (conjs @ [ c ]) :: rest)
  in
  identity_maps "duplicate-rule"
    (Exposure.create ~xp:(Exposure.xp e) ~xb:(Exposure.xb e) ~rules
       ~constraints:(Exposure.constraints e) ())
    ~exact:true

(* Reverse the form-universe order. The atlas must be the same set of
   (bindings, benefits) pairs; Algorithm 2's lexicographic tie-breaking
   legitimately depends on the order, so only atlas-level invariance and
   Nash-ness of the resulting profile are required. *)
let universe_permuted e =
  let xp = Universe.of_names (List.rev (Universe.names (Exposure.xp e))) in
  identity_maps "universe-permutation"
    (Exposure.create ~xp ~xb:(Exposure.xb e) ~rules:(Exposure.rules e)
       ~constraints:(Exposure.constraints e) ())
    ~exact:false

let transforms e =
  [
    renamed e;
    rules_permuted e;
    literals_shuffled e;
    conjunction_duplicated e;
    universe_permuted e;
  ]

(* --- The invariants ---------------------------------------------------------------- *)

(* Everything compared through the inverse renaming, as canonical sorted
   structures, so the relation is "equal up to the transformation". *)
let canon_bindings back w =
  List.sort compare (List.map (fun (n, v) -> (back n, v)) (Partial.bindings w))

let canon_atlas ~back_pred ~back_benefit atlas =
  List.mapi
    (fun i (c : A1.choice) ->
      ( canon_bindings back_pred c.mas,
        List.sort String.compare (List.map back_benefit c.benefits),
        List.length (Atlas.players_of_mas atlas i),
        List.length (Atlas.forced_players_of_mas atlas i) ))
    (Atlas.mas_list atlas)
  |> List.sort compare

let canon_players ~back_pred atlas =
  List.init (Atlas.player_count atlas) (fun i ->
      canon_bindings back_pred (Partial.of_total (Atlas.player atlas i)))
  |> List.sort compare

let canon_equilibrium ~back_pred atlas payoff =
  let profile = Strategy.compute ~payoff atlas in
  List.init (Atlas.player_count atlas) (fun i ->
      ( canon_bindings back_pred (Partial.of_total (Atlas.player atlas i)),
        canon_bindings back_pred
          (Atlas.mas atlas (Profile.move_of profile i)).A1.mas,
        Payoff.of_profile profile payoff ~player:i ))
  |> List.sort compare

(* Default backend [Compiled]: the metamorphic transformations then
   exercise the serving fast path (bitmask tables on small forms, BDD
   fallback above the threshold) rather than re-testing the BDD twice —
   the differential stages already pin every backend against brute. *)
let check ?(payoff = Payoff.Blank) ?(backend = Engine.Compiled) e =
  let tally = Finding.tally () in
  let base_atlas = Atlas.build (Engine.create ~backend e) in
  let base_canon =
    canon_atlas ~back_pred:Fun.id ~back_benefit:Fun.id base_atlas
  in
  let base_players = canon_players ~back_pred:Fun.id base_atlas in
  let base_equilibrium = canon_equilibrium ~back_pred:Fun.id base_atlas payoff in
  List.iter
    (fun t ->
      let stage = "metamorphic/" ^ t.name in
      match Atlas.build (Engine.create ~backend t.exposure) with
      | exception exn ->
        Finding.fail tally ~stage
          (Fmt.str "transformed problem crashed the pipeline: %s"
             (Printexc.to_string exn))
      | atlas ->
        Finding.check tally ~stage
          (canon_players ~back_pred:t.back_pred atlas = base_players)
          (fun () ->
            Fmt.str "player set not invariant (%d players vs %d)"
              (Atlas.player_count atlas)
              (List.length base_players));
        Finding.check tally ~stage
          (canon_atlas ~back_pred:t.back_pred ~back_benefit:t.back_benefit
             atlas
          = base_canon)
          (fun () ->
            Fmt.str "MAS atlas not invariant (%d MAS vs %d)"
              (Atlas.mas_count atlas) (List.length base_canon));
        if t.exact then
          Finding.check tally ~stage
            (canon_equilibrium ~back_pred:t.back_pred atlas payoff
            = base_equilibrium)
            (fun () -> "Algorithm 2 equilibrium not invariant")
        else begin
          (* Tie-breaking may legitimately pick another equilibrium; it
             must still be an equilibrium. *)
          let profile = Strategy.compute ~payoff atlas in
          let refined, converged = Equilibrium.refine profile payoff in
          Finding.check tally ~stage
            (converged && Equilibrium.is_nash refined payoff)
            (fun () -> "transformed problem's profile does not refine to Nash")
        end)
    (transforms e);
  Finding.report tally
