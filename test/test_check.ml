(* Tests for the correctness harness itself: fixed-seed differential
   runs (including the paper's case studies), metamorphic and oracle
   passes on known-good problems, oracles rejecting injected faults, the
   shrinker reducing a failing problem to a tiny DSL reproducer, and a
   protocol fuzz smoke run. *)

module Partial = Pet_valuation.Partial
module Exposure = Pet_rules.Exposure
module Engine = Pet_rules.Engine
module Rule = Pet_rules.Rule
module Spec = Pet_rules.Spec
module Generate = Pet_rules.Generate
module A1 = Pet_minimize.Algorithm1
module Finding = Pet_check.Finding
module Diff = Pet_check.Diff
module Metamorphic = Pet_check.Metamorphic
module Oracle = Pet_check.Oracle
module Shrink = Pet_check.Shrink
module Harness = Pet_check.Harness
module Fuzz = Pet_check.Fuzz

let check_ok label (r : Finding.report) =
  Alcotest.(check bool) "ran some checks" true (r.checks > 0);
  if not (Finding.ok r) then
    Alcotest.failf "%s: %d findings, first: %s" label (List.length r.findings)
      (Fmt.to_to_string Finding.pp (List.hd r.findings))

(* --- Findings -------------------------------------------------------------- *)

let test_finding_reports () =
  let t = Finding.tally () in
  Finding.check t ~stage:"a" true (fun () -> "unused");
  Finding.check t ~stage:"b" false (fun () -> "broken");
  Finding.check t ~stage:"b" false (fun () -> "broken again");
  Finding.fail t ~stage:"c" "also broken";
  let r = Finding.report t in
  Alcotest.(check int) "checks" 4 r.Finding.checks;
  Alcotest.(check bool) "not ok" false (Finding.ok r);
  Alcotest.(check (list string)) "stages, distinct and sorted" [ "b"; "c" ]
    (Finding.stages r);
  let merged = Finding.merge_all [ Finding.empty; r; r ] in
  Alcotest.(check int) "merged checks" 8 merged.Finding.checks;
  Alcotest.(check (list string)) "merged stages" [ "b"; "c" ]
    (Finding.stages merged)

(* --- Fixed-seed differential & harness runs -------------------------------- *)

let test_harness_seeds () =
  List.iter
    (fun (seed, (r : Finding.report)) ->
      check_ok (Printf.sprintf "seed %d" seed) r)
    (Harness.run [ 1; 2; 3; 4; 5 ])

let test_diff_hcov () =
  check_ok "hcov" (Diff.check (Pet_casestudies.Hcov.exposure ()))

let test_diff_rsa () =
  check_ok "rsa" (Diff.check (Pet_casestudies.Rsa.exposure ()))

let test_metamorphic_casestudies () =
  check_ok "running" (Metamorphic.check (Pet_casestudies.Running.exposure ()));
  check_ok "loan" (Metamorphic.check (Pet_casestudies.Loan.exposure ()))

let test_oracle_casestudies () =
  check_ok "running" (Oracle.check (Pet_casestudies.Running.exposure ()));
  check_ok "loan" (Oracle.check (Pet_casestudies.Loan.exposure ()))

let test_oracle_hcov () =
  check_ok "hcov" (Oracle.check (Pet_casestudies.Hcov.exposure ()))

(* --- Oracles reject injected faults ---------------------------------------- *)

(* Bloat a published MAS with one extra binding taken from a player: the
   minimality oracle must notice, on every seed tried. *)
let test_minimality_rejects_bloat () =
  let tried = ref 0 in
  List.iter
    (fun seed ->
      let e = Generate.exposure ~seed () in
      let brute = Engine.create ~backend:Engine.Brute e in
      List.iter
        (fun v ->
          match A1.mas_of brute v with
          | [] -> ()
          | c :: _ ->
            let extra =
              List.filter
                (fun p -> not (List.mem p (Partial.domain c.A1.mas)))
                (Pet_valuation.Universe.names (Exposure.xp e))
            in
            (match extra with
            | [] -> ()
            | p :: _ ->
              incr tried;
              let bloated =
                Partial.set c.A1.mas p
                  (Option.get (Partial.value (Partial.of_total v) p))
              in
              Alcotest.(check bool) "published MAS is minimal" true
                (A1.is_minimal brute c.A1.mas ~benefits:c.A1.benefits);
              Alcotest.(check bool) "bloated MAS is flagged" false
                (A1.is_minimal brute bloated ~benefits:c.A1.benefits)))
        (Exposure.eligible e))
    [ 1; 2; 3 ];
  Alcotest.(check bool) "exercised some bloated MAS" true (!tried > 10)

let test_reproduce_healthy () =
  Alcotest.(check bool) "healthy problem has no reproducer" true
    (Harness.reproduce (Pet_casestudies.Running.exposure ()) = None)

(* --- Shrinking ------------------------------------------------------------- *)

(* An injected fault: pretend any problem where some player has at least
   two MAS choices trips a bug. The shrinker must cut the seed-42 problem
   (8 predicates, rules of 3 conjunctions) down to a <= 5 rule DSL
   reproducer that still exhibits the property. *)
let test_shrink_injected_fault () =
  let has_choice_ambiguity e =
    let engine = Engine.create ~backend:Engine.Bdd e in
    List.exists
      (fun v -> List.length (A1.mas_of engine v) >= 2)
      (Exposure.eligible e)
  in
  let e = Generate.exposure ~seed:42 () in
  Alcotest.(check bool) "fault fires on the original" true
    (has_choice_ambiguity e);
  let shrunk = Shrink.shrink ~still_fails:has_choice_ambiguity e in
  let dsl = Shrink.to_dsl shrunk in
  Alcotest.(check bool) "reproducer has at most 5 rules" true
    (List.length (Exposure.rules shrunk) <= 5);
  Alcotest.(check bool) "reproducer is smaller" true
    (String.length dsl < String.length (Shrink.to_dsl e));
  (* The DSL text is a faithful reproducer: parsing it back yields a
     problem that still exhibits the fault. *)
  match Spec.parse dsl with
  | Error m -> Alcotest.failf "reproducer does not parse: %s" m
  | Ok e' ->
    Alcotest.(check bool) "parsed reproducer still fails" true
      (has_choice_ambiguity e');
    (* 1-minimality: no single further reduction still fails. *)
    Alcotest.(check bool) "reproducer is 1-minimal" true
      (not (List.exists has_choice_ambiguity (Shrink.candidates shrunk)))

let test_seeds_of_string () =
  let ok spec expected =
    match Harness.seeds_of_string spec with
    | Ok seeds -> Alcotest.(check (list int)) spec expected seeds
    | Error m -> Alcotest.failf "%s: unexpected error %s" spec m
  in
  ok "7" [ 7 ];
  ok "1-4" [ 1; 2; 3; 4 ];
  ok "3,7,20-22" [ 3; 7; 20; 21; 22 ];
  List.iter
    (fun spec ->
      match Harness.seeds_of_string spec with
      | Ok _ -> Alcotest.failf "%s: expected an error" spec
      | Error _ -> ())
    [ ""; "x"; "5-2"; "1,,3" ]

(* --- Protocol fuzz smoke --------------------------------------------------- *)

let test_fuzz_smoke () =
  let s = Fuzz.run ~seed:7 ~count:2000 () in
  Alcotest.(check int) "all requests answered" 2000 s.Fuzz.requests;
  Alcotest.(check (list (pair string string))) "no crashes" [] s.Fuzz.crashes;
  Alcotest.(check int) "no malformed responses" 0 s.Fuzz.invalid_responses;
  Alcotest.(check bool) "some requests succeed" true (s.Fuzz.ok > 0);
  Alcotest.(check bool) "some structured errors" true (s.Fuzz.errors > 1000);
  Alcotest.(check bool) "several error codes seen" true
    (List.length s.Fuzz.by_code >= 3);
  (* Determinism: the same seed replays the same run. *)
  let s' = Fuzz.run ~seed:7 ~count:2000 () in
  Alcotest.(check int) "deterministic" s.Fuzz.ok s'.Fuzz.ok

let () =
  Alcotest.run "pet_check"
    [
      ( "finding",
        [ Alcotest.test_case "reports" `Quick test_finding_reports ] );
      ( "harness",
        [
          Alcotest.test_case "seeds 1-5" `Quick test_harness_seeds;
          Alcotest.test_case "seed specs" `Quick test_seeds_of_string;
          Alcotest.test_case "healthy problems need no reproducer" `Quick
            test_reproduce_healthy;
        ] );
      ( "differential",
        [
          Alcotest.test_case "hcov" `Slow test_diff_hcov;
          Alcotest.test_case "rsa" `Slow test_diff_rsa;
        ] );
      ( "metamorphic",
        [
          Alcotest.test_case "case studies" `Quick test_metamorphic_casestudies;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "case studies" `Quick test_oracle_casestudies;
          Alcotest.test_case "hcov" `Slow test_oracle_hcov;
          Alcotest.test_case "rejects bloated MAS" `Quick
            test_minimality_rejects_bloat;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "injected fault to <= 5 rules" `Quick
            test_shrink_injected_fault;
        ] );
      ("fuzz", [ Alcotest.test_case "smoke" `Quick test_fuzz_smoke ]);
    ]
