(* Rolling-window service-level objectives.

   A tracker keeps, per key ("get_report", "tenant:acme", ...), a ring
   of time-aligned slices — each slice a small latency histogram (the
   same log-spaced buckets as Metrics) plus request/error counts.
   Recording touches exactly one slice; reporting sums the slices still
   inside the window, so the window slides with slice granularity
   (window_s / slices) and stale slices age out without a sweeper.

   Burn rates follow the error-budget convention: a p99 objective
   grants a 1% budget of requests over the target, an error-ratio
   objective grants max_error_ratio — burn = consumption / budget, so
   burn > 1 means the budget is being spent faster than it accrues. *)

type objective = { p99_s : float; max_error_ratio : float; window_s : float }

let default_objective = { p99_s = 0.05; max_error_ratio = 0.01; window_s = 60. }

(* Latency budget fraction behind a p99 objective: 1% of requests may
   exceed the target before the budget is spent. *)
let latency_budget = 0.01

(* Burn rates are capped so a zero budget (or an empty window) cannot
   produce infinities in gauges or JSON. *)
let burn_cap = 1e6

let slices = 12

type slice = {
  mutable t0 : float; (* aligned slice start; nan when never used *)
  mutable n : int;
  mutable errors : int;
  counts : int array;
  mutable sum : float;
  mutable smax : float;
}

type series = { mutable objective : objective; ring : slice array }

type t = {
  m : Mutex.t;
  table : (string, series) Hashtbl.t;
  mutable default : objective;
}

let create ?(objective = default_objective) () =
  { m = Mutex.create (); table = Hashtbl.create 16; default = objective }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let n_buckets = Array.length Metrics.bucket_bounds

let fresh_slice () =
  {
    t0 = nan;
    n = 0;
    errors = 0;
    counts = Array.make n_buckets 0;
    sum = 0.;
    smax = 0.;
  }

let series_of t key =
  match Hashtbl.find_opt t.table key with
  | Some s -> s
  | None ->
    let s =
      { objective = t.default; ring = Array.init slices (fun _ -> fresh_slice ()) }
    in
    Hashtbl.add t.table key s;
    s

let set_objective t key objective =
  locked t @@ fun () -> (series_of t key).objective <- objective

let objective t key =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table key with
  | Some s -> s.objective
  | None -> t.default

let keys t =
  locked t @@ fun () ->
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.table [])

(* The slice a timestamp lands in, resetting it if it still holds data
   from a previous revolution of the ring. *)
let slice_for series ~width ~now =
  let turn = floor (now /. width) in
  let idx =
    let i = int_of_float turn mod slices in
    if i < 0 then i + slices else i
  in
  let t0 = turn *. width in
  let s = series.ring.(idx) in
  if s.t0 <> t0 then begin
    s.t0 <- t0;
    s.n <- 0;
    s.errors <- 0;
    Array.fill s.counts 0 n_buckets 0;
    s.sum <- 0.;
    s.smax <- 0.
  end;
  s

let record t key ~now ~latency ~error =
  let latency = if latency < 0. then 0. else latency in
  locked t @@ fun () ->
  let series = series_of t key in
  let width = series.objective.window_s /. float_of_int slices in
  let s = slice_for series ~width ~now in
  s.n <- s.n + 1;
  if error then s.errors <- s.errors + 1;
  let b = Metrics.bucket_of latency in
  s.counts.(b) <- s.counts.(b) + 1;
  s.sum <- s.sum +. latency;
  if latency > s.smax then s.smax <- latency

type report = {
  key : string;
  window_s : float;
  requests : int;
  errors : int;
  error_ratio : float;
  p99_s : float;
  p99_target_s : float;
  over_target : int;
  latency_burn : float;
  error_burn : float;
  breached : bool;
}

let cap b = if b > burn_cap then burn_cap else b

let report_series key (series : series) ~now =
  let o = series.objective in
  let counts = Array.make n_buckets 0 in
  let requests = ref 0 and errors = ref 0 and smax = ref 0. in
  Array.iter
    (fun s ->
      (* A slice belongs to the window if it started within window_s of
         now; untouched slices keep a stale t0 and age out here. *)
      if (not (Float.is_nan s.t0)) && s.t0 > now -. o.window_s then begin
        requests := !requests + s.n;
        errors := !errors + s.errors;
        for i = 0 to n_buckets - 1 do
          counts.(i) <- counts.(i) + s.counts.(i)
        done;
        if s.smax > !smax then smax := s.smax
      end)
    series.ring;
  let requests = !requests and errors = !errors in
  if requests = 0 then
    {
      key;
      window_s = o.window_s;
      requests = 0;
      errors = 0;
      error_ratio = 0.;
      p99_s = 0.;
      p99_target_s = o.p99_s;
      over_target = 0;
      latency_burn = 0.;
      error_burn = 0.;
      breached = false;
    }
  else begin
    let p99 =
      let rank =
        let r = int_of_float (ceil (0.99 *. float_of_int requests)) in
        if r < 1 then 1 else if r > requests then requests else r
      in
      let rec go seen i =
        if i >= n_buckets then !smax
        else if seen + counts.(i) >= rank then
          Float.min Metrics.bucket_bounds.(i) !smax
        else go (seen + counts.(i)) (i + 1)
      in
      go 0 0
    in
    (* Observations over the latency target, at bucket granularity: the
       bucket containing the target counts as within it (optimistic by
       at most one bucket width — buckets double, so the estimate is
       within 2x; the same bucketing the p99 itself uses). *)
    let over_target =
      let tb = Metrics.bucket_of o.p99_s in
      let over = ref 0 in
      for i = tb + 1 to n_buckets - 1 do
        over := !over + counts.(i)
      done;
      !over
    in
    let error_ratio = float_of_int errors /. float_of_int requests in
    let latency_burn =
      cap
        (float_of_int over_target
        /. float_of_int requests /. latency_budget)
    in
    let error_burn =
      if o.max_error_ratio > 0. then cap (error_ratio /. o.max_error_ratio)
      else if errors > 0 then burn_cap
      else 0.
    in
    {
      key;
      window_s = o.window_s;
      requests;
      errors;
      error_ratio;
      p99_s = p99;
      p99_target_s = o.p99_s;
      over_target;
      latency_burn;
      error_burn;
      breached = latency_burn >= 1. || error_burn >= 1.;
    }
  end

let report t key ~now =
  locked t @@ fun () ->
  Option.map
    (fun series -> report_series key series ~now)
    (Hashtbl.find_opt t.table key)

let reports t ~now =
  locked t @@ fun () ->
  Hashtbl.fold (fun key series acc -> (key, series) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.map (fun (key, series) -> report_series key series ~now)

(* Mirror the windowed view into gauges so the metrics method,
   Prometheus export, watch frames and the flight journal all pick the
   SLO state up without knowing this module exists. *)
let sync t ~now =
  List.iter
    (fun (r : report) ->
      let g name help =
        Metrics.gauge ~labels:[ ("slo", r.key) ] ~help name
      in
      Metrics.set_gauge
        (g "pet_slo_window_requests"
           "Requests in the SLO rolling window, per objective key.")
        (float_of_int r.requests);
      Metrics.set_gauge
        (g "pet_slo_error_ratio"
           "Windowed error ratio, per objective key.")
        r.error_ratio;
      Metrics.set_gauge
        (g "pet_slo_p99_seconds"
           "Windowed p99 latency in seconds, per objective key.")
        r.p99_s;
      Metrics.set_gauge
        (g "pet_slo_error_burn"
           "Error-budget burn rate (>1 burns faster than the budget).")
        r.error_burn;
      Metrics.set_gauge
        (g "pet_slo_latency_burn"
           "Latency-budget burn rate (>1 burns faster than the budget).")
        r.latency_burn;
      Metrics.set_gauge
        (g "pet_slo_breached" "1 when either burn rate is >= 1.")
        (if r.breached then 1. else 0.))
    (reports t ~now)

let reset t = locked t @@ fun () -> Hashtbl.reset t.table
