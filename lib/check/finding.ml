type t = { stage : string; detail : string }

type report = { checks : int; findings : t list }

let empty = { checks = 0; findings = [] }

let merge a b =
  { checks = a.checks + b.checks; findings = a.findings @ b.findings }

let merge_all reports = List.fold_left merge empty reports
let ok report = report.findings = []

type tally = { mutable checks : int; mutable rev_findings : t list }

let tally () = { checks = 0; rev_findings = [] }

let report t = { checks = t.checks; findings = List.rev t.rev_findings }

let check t ~stage cond detail =
  t.checks <- t.checks + 1;
  if not cond then
    t.rev_findings <- { stage; detail = detail () } :: t.rev_findings

let fail t ~stage detail =
  t.checks <- t.checks + 1;
  t.rev_findings <- { stage; detail } :: t.rev_findings

let stages report =
  List.sort_uniq String.compare (List.map (fun f -> f.stage) report.findings)

let pp ppf f = Fmt.pf ppf "[%s] %s" f.stage f.detail
