(** Flight-recorder record encoder.

    Renders the observability state — metric snapshots, log lines, slow
    traces, lifecycle events — as single-line JSON records suitable for
    a durable telemetry journal ({!Pet_store.Flight_log}) or a [watch]
    stream frame. Snapshots are delta-encoded against the encoder's
    previous snapshot, so the steady-state journal only carries what
    changed; a fresh encoder's first snapshot is therefore a full dump.

    Identifier-only by construction: inputs are metric names, numbers,
    rendered {!Log} lines and {!Trace.value} scalars — valuations and
    rule texts cannot reach this module (grep-gated in CI like the
    trace layer).

    Every record carries [{"flight":1,"seq":N,"kind":K,"t":T}] plus
    kind-specific fields; [seq] is per-encoder and gap-free, so replay
    can detect lost records. The encoder is mutex-guarded: the log tee
    may call {!log_event} from any domain while a ticker snapshots. *)

type t

val create : unit -> t

val snap : t -> ?wal:string * int -> now:float -> Metrics.snapshot -> string
(** One [kind:"snap"] record: counter increments since the previous
    snapshot, gauges whose value changed (absolute), histogram bucket
    increments with [n]/[sum] deltas ([max] stays cumulative).
    Unchanged instruments are omitted entirely. [?wal] stamps the
    current write-ahead-log frontier [(file, offset)] so the record can
    be correlated with [pet audit] byte offsets. *)

val log_event : t -> now:float -> string -> string
(** Wrap an already-rendered log line as a [kind:"log"] record. *)

val slow_traces : t -> now:float -> Trace.t list -> string list
(** [kind:"trace"] records (id, duration, annotations) for the traces
    not yet journaled by this encoder — each trace id is dumped at most
    once, so periodic calls with the whole slow ring are cheap. *)

val meta : t -> now:float -> event:string -> (string * string) list -> string
(** A [kind:"meta"] lifecycle record ([event] is ["start"], ["exit"],
    ["fatal"], …) with string fields. *)
