(* Tests for the ROBDD engine: unit behaviour plus qcheck cross-validation
   against truth-table semantics of random formulas. *)

module F = Pet_logic.Formula
module Bdd = Pet_bdd.Bdd

let nvars = 5
let var_names = [| "p1"; "p2"; "p3"; "p4"; "p5" |]

let index_of name =
  let rec go i = if var_names.(i) = name then i else go (i + 1) in
  go 0

(* Compile a formula to a BDD over the fixed variable order. *)
let rec compile m = function
  | F.True -> Bdd.one
  | F.False -> Bdd.zero
  | F.Var x -> Bdd.var m (index_of x)
  | F.Not f -> Bdd.neg m (compile m f)
  | F.And (a, b) -> Bdd.conj m (compile m a) (compile m b)
  | F.Or (a, b) -> Bdd.disj m (compile m a) (compile m b)
  | F.Implies (a, b) -> Bdd.imp m (compile m a) (compile m b)
  | F.Iff (a, b) -> Bdd.iff m (compile m a) (compile m b)

let gen_formula =
  QCheck2.Gen.(
    sized_size (int_range 0 6) @@ fix (fun self n ->
        if n = 0 then
          oneof
            [
              return F.True;
              return F.False;
              map F.var (oneofl (Array.to_list var_names));
            ]
        else
          let sub = self (n / 2) in
          oneof
            [
              map F.var (oneofl (Array.to_list var_names));
              map (fun f -> F.Not f) sub;
              map2 (fun a b -> F.And (a, b)) sub sub;
              map2 (fun a b -> F.Or (a, b)) sub sub;
              map2 (fun a b -> F.Implies (a, b)) sub sub;
              map2 (fun a b -> F.Iff (a, b)) sub sub;
            ]))

let rho_of_bits bits name = (bits lsr index_of name) land 1 = 1
let int_rho_of_bits bits i = (bits lsr i) land 1 = 1

(* --- Unit tests ------------------------------------------------------------ *)

let test_terminals () =
  Alcotest.(check bool) "taut one" true (Bdd.is_tautology Bdd.one);
  Alcotest.(check bool) "unsat zero" true (Bdd.is_unsat Bdd.zero);
  let m = Bdd.man () in
  Alcotest.(check int) "neg one" Bdd.zero (Bdd.neg m Bdd.one);
  Alcotest.(check int) "x & !x" Bdd.zero
    (Bdd.conj m (Bdd.var m 0) (Bdd.nvar m 0));
  Alcotest.(check int) "x | !x" Bdd.one
    (Bdd.disj m (Bdd.var m 0) (Bdd.nvar m 0))

let test_hash_consing () =
  let m = Bdd.man () in
  let a = Bdd.conj m (Bdd.var m 0) (Bdd.var m 1) in
  let b = Bdd.conj m (Bdd.var m 1) (Bdd.var m 0) in
  Alcotest.(check int) "commutative ands share the node" a b;
  let c = Bdd.neg m (Bdd.disj m (Bdd.nvar m 0) (Bdd.nvar m 1)) in
  Alcotest.(check int) "de morgan shares the node" a c

let test_restrict () =
  let m = Bdd.man () in
  let f = Bdd.disj m (Bdd.var m 0) (Bdd.var m 1) in
  Alcotest.(check int) "f[x:=1] = 1" Bdd.one (Bdd.restrict m f 0 true);
  Alcotest.(check int) "f[x:=0] = y" (Bdd.var m 1) (Bdd.restrict m f 0 false)

let test_exists () =
  let m = Bdd.man () in
  let f = Bdd.conj m (Bdd.var m 0) (Bdd.var m 1) in
  Alcotest.(check int) "Ex. x&y = y" (Bdd.var m 1) (Bdd.exists m [ 0 ] f);
  Alcotest.(check int) "Exy. x&y = 1" Bdd.one (Bdd.exists m [ 0; 1 ] f)

let test_support () =
  let m = Bdd.man () in
  let f = Bdd.conj m (Bdd.var m 2) (Bdd.disj m (Bdd.var m 0) Bdd.one) in
  Alcotest.(check (list int)) "support collapses" [ 2 ] (Bdd.support m f)

let test_count_models () =
  let m = Bdd.man () in
  let f = Bdd.disj m (Bdd.var m 0) (Bdd.var m 1) in
  Alcotest.(check int) "x|y over 2 vars" 3 (Bdd.count_models m ~nvars:2 f);
  Alcotest.(check int) "x|y over 4 vars" 12 (Bdd.count_models m ~nvars:4 f);
  Alcotest.(check int) "true over 4 vars" 16
    (Bdd.count_models m ~nvars:4 Bdd.one);
  Alcotest.(check int) "false" 0 (Bdd.count_models m ~nvars:4 Bdd.zero)

let test_count_models_bad_nvars () =
  let m = Bdd.man () in
  let f = Bdd.var m 3 in
  Alcotest.(check bool) "support check" true
    (match Bdd.count_models m ~nvars:2 f with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_any_model () =
  let m = Bdd.man () in
  let f = Bdd.conj m (Bdd.var m 0) (Bdd.nvar m 2) in
  (match Bdd.any_model m ~nvars:3 f with
  | None -> Alcotest.fail "expected a model"
  | Some a ->
    Alcotest.(check bool) "x" true a.(0);
    Alcotest.(check bool) "!z" false a.(2));
  Alcotest.(check bool) "unsat has no model" true
    (Bdd.any_model m ~nvars:3 Bdd.zero = None)

(* --- Properties ------------------------------------------------------------- *)

let prop_semantics =
  QCheck2.Test.make ~count:500 ~name:"BDD agrees with truth table"
    ~print:F.to_string gen_formula (fun f ->
      let m = Bdd.man () in
      let b = compile m f in
      List.for_all
        (fun bits ->
          Bool.equal
            (F.eval (rho_of_bits bits) f)
            (Bdd.eval m b (int_rho_of_bits bits)))
        (List.init (1 lsl nvars) Fun.id))

let prop_count =
  QCheck2.Test.make ~count:300 ~name:"count_models agrees with truth table"
    ~print:F.to_string gen_formula (fun f ->
      let m = Bdd.man () in
      let b = compile m f in
      let expected =
        List.length
          (List.filter
             (fun bits -> F.eval (rho_of_bits bits) f)
             (List.init (1 lsl nvars) Fun.id))
      in
      Bdd.count_models m ~nvars b = expected)

let prop_iter_matches_count =
  QCheck2.Test.make ~count:300 ~name:"iter_models yields count_models models"
    ~print:F.to_string gen_formula (fun f ->
      let m = Bdd.man () in
      let b = compile m f in
      let seen = ref [] in
      Bdd.iter_models m ~nvars b (fun a -> seen := Array.copy a :: !seen);
      List.length !seen = Bdd.count_models m ~nvars b
      && List.for_all
           (fun a -> Bdd.eval m b (fun i -> a.(i)))
           !seen
      && List.length (List.sort_uniq Stdlib.compare !seen) = List.length !seen)

let prop_canonicity =
  QCheck2.Test.make ~count:300 ~name:"equivalent formulas share one node"
    ~print:(fun (a, b) -> F.to_string a ^ " vs " ^ F.to_string b)
    QCheck2.Gen.(tup2 gen_formula gen_formula)
    (fun (f, g) ->
      let m = Bdd.man () in
      let bf = compile m f and bg = compile m g in
      Bool.equal (bf = bg) (F.equivalent f g))

let prop_exists_is_disjunction_of_cofactors =
  QCheck2.Test.make ~count:300
    ~name:"exists v. f = f[v:=0] | f[v:=1]" ~print:F.to_string gen_formula
    (fun f ->
      let m = Bdd.man () in
      let b = compile m f in
      List.for_all
        (fun v ->
          Bdd.exists m [ v ] b
          = Bdd.disj m (Bdd.restrict m b v false) (Bdd.restrict m b v true))
        (List.init nvars Fun.id))

let prop_support_is_exact =
  QCheck2.Test.make ~count:300
    ~name:"support contains exactly the variables that matter"
    ~print:F.to_string gen_formula (fun f ->
      let m = Bdd.man () in
      let b = compile m f in
      let support = Bdd.support m b in
      List.for_all
        (fun v ->
          let matters =
            Bdd.restrict m b v false <> Bdd.restrict m b v true
          in
          Bool.equal matters (List.mem v support))
        (List.init nvars Fun.id))

let prop_negation_involutive =
  QCheck2.Test.make ~count:300 ~name:"neg (neg f) = f" ~print:F.to_string
    gen_formula (fun f ->
      let m = Bdd.man () in
      let b = compile m f in
      Bdd.neg m (Bdd.neg m b) = b
      && Bdd.xor m b b = Bdd.zero
      && Bdd.iff m b b = Bdd.one)

let prop_tautology =
  QCheck2.Test.make ~count:300 ~name:"is_tautology agrees with enumeration"
    ~print:F.to_string gen_formula (fun f ->
      let m = Bdd.man () in
      Bool.equal (Bdd.is_tautology (compile m f)) (F.tautology f))

let () =
  let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests) in
  Alcotest.run "pet_bdd"
    [
      ( "bdd-unit",
        [
          Alcotest.test_case "terminals" `Quick test_terminals;
          Alcotest.test_case "hash consing" `Quick test_hash_consing;
          Alcotest.test_case "restrict" `Quick test_restrict;
          Alcotest.test_case "exists" `Quick test_exists;
          Alcotest.test_case "support" `Quick test_support;
          Alcotest.test_case "count models" `Quick test_count_models;
          Alcotest.test_case "count models bad nvars" `Quick
            test_count_models_bad_nvars;
          Alcotest.test_case "any model" `Quick test_any_model;
        ] );
      qsuite "bdd-properties"
        [
          prop_semantics;
          prop_count;
          prop_iter_matches_count;
          prop_canonicity;
          prop_tautology;
          prop_exists_is_disjunction_of_cofactors;
          prop_support_is_exact;
          prop_negation_involutive;
        ];
    ]
