(** A finite, ordered set of propositional variables — the set [Omega]
    over which valuations are defined (Definition 3.3). The order of the
    names is significant: it fixes bit positions, the rendering of
    valuations as strings like ["0_1"], and the lexicographic order on
    moves that Algorithm 2 uses for tie-breaking. *)

type t

val of_names : string list -> t
(** @raise Invalid_argument on duplicate names, an empty list, or more
    than 60 names (valuations are bit-packed into an [int]). *)

val size : t -> int
val names : t -> string list
val name : t -> int -> string
val index : t -> string -> int
(** @raise Not_found for unknown names. *)

val index_opt : t -> string -> int option
val mem : t -> string -> bool
val equal : t -> t -> bool
val union : t -> t -> t
(** Names of the first followed by names of the second.
    @raise Invalid_argument if they share a name. *)

val pp : t Fmt.t
