(* The flight recorder's on-disk segment family: flight-NNNNNN.log
   files holding CRC-32 framed telemetry records (Record framing, same
   as the WAL) in the same data directory as the store.

   Telemetry is not the source of truth, so the durability contract is
   deliberately weaker than the WAL's: appends flush to the OS but
   never fsync (a crash may lose the last buffered records; the WAL
   loses nothing), the tail of the last segment may be torn (readers
   truncate, like the WAL), and mid-file corruption in an older segment
   skips to the next segment instead of refusing service — degraded
   telemetry must never block an investigation that needs the rest.

   Sealed segments rotate out under a retention knob: on every seal the
   oldest segments beyond [keep] are deleted, bounding disk usage for
   long-lived servers.

   Appends are mutex-guarded: the Group_commit writer domain journals
   snapshots while the log tee appends events from arbitrary domains. *)

let prefix = "flight-"
let name n = Printf.sprintf "flight-%06d.log" n

let parse_name file =
  let plen = String.length prefix in
  if
    String.length file = plen + 6 + 4
    && String.sub file 0 plen = prefix
    && Filename.check_suffix file ".log"
  then int_of_string_opt (String.sub file plen 6)
  else None

let listing dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun f ->
         Option.map (fun n -> (n, f)) (parse_name f))
  |> List.sort compare

type t = {
  dir : string;
  segment_bytes : int;
  keep : int;
  m : Mutex.t;
  mutable seg : int;
  mutable chan : out_channel option;
  mutable written : int;
  mutable records : int;
  mutable bytes : int;
}

let default_segment_bytes = 1 lsl 20
let default_keep = 8

let open_dir ?(segment_bytes = default_segment_bytes) ?(keep = default_keep)
    dir =
  if not (Sys.file_exists dir) then Error (dir ^ ": no such directory")
  else if not (Sys.is_directory dir) then Error (dir ^ ": not a directory")
  else begin
    let seg =
      match List.rev (listing dir) with (n, _) :: _ -> n + 1 | [] -> 0
    in
    Ok
      {
        dir;
        segment_bytes = max segment_bytes 4096;
        keep = max keep 1;
        m = Mutex.create ();
        seg;
        chan = None;
        written = 0;
        records = 0;
        bytes = 0;
      }
  end

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let chan t =
  match t.chan with
  | Some c -> c
  | None ->
    let c =
      open_out_gen
        [ Open_wronly; Open_creat; Open_append; Open_binary ]
        0o644
        (Filename.concat t.dir (name t.seg))
    in
    t.chan <- Some c;
    c

(* Retention: called with the lock held after sealing — delete the
   oldest sealed segments beyond [keep] (the open segment never
   counts). *)
let prune t =
  let sealed =
    List.filter (fun (n, _) -> n < t.seg) (listing t.dir)
  in
  let excess = List.length sealed - t.keep in
  if excess > 0 then
    List.iteri
      (fun i (_, f) ->
        if i < excess then
          try Sys.remove (Filename.concat t.dir f) with Sys_error _ -> ())
      sealed

let seal t =
  (match t.chan with
  | Some c ->
    close_out_noerr c;
    t.chan <- None
  | None -> ());
  t.seg <- t.seg + 1;
  t.written <- 0;
  prune t

let append_locked t payload =
  let framed = Record.frame payload in
  output_string (chan t) framed;
  t.written <- t.written + String.length framed;
  t.records <- t.records + 1;
  t.bytes <- t.bytes + String.length framed;
  if t.written >= t.segment_bytes then seal t

let append t payload =
  locked t @@ fun () ->
  append_locked t payload;
  match t.chan with Some c -> flush c | None -> ()

let append_batch t payloads =
  locked t @@ fun () ->
  List.iter (append_locked t) payloads;
  match t.chan with Some c -> flush c | None -> ()

let close t =
  locked t @@ fun () ->
  match t.chan with
  | Some c ->
    close_out_noerr c;
    t.chan <- None
  | None -> ()

let stats t = locked t @@ fun () -> (t.records, t.bytes)

(* --- Reading ---------------------------------------------------------- *)

type record = { file : string; offset : int; payload : string }
type damage = { dfile : string; doffset : int; dreason : string }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

let fold dir ~init f =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error (dir ^ ": no such directory")
  else begin
    let files = listing dir in
    let n_files = List.length files in
    let damage = ref [] in
    let acc = ref init in
    List.iteri
      (fun i (_, file) ->
        let buf = read_file (Filename.concat dir file) in
        let len = String.length buf in
        let rec go offset =
          if offset < len then
            match Record.read buf offset with
            | Record.Record { payload; next } ->
              acc := f !acc { file; offset; payload };
              go next
            | Record.End -> ()
            | Record.Torn { offset; reason } ->
              (* Torn tails are the expected crash signature on the
                 last segment; anywhere else they are damage (but we
                 still keep the prefix we read). *)
              if i <> n_files - 1 then
                damage := { dfile = file; doffset = offset; dreason = reason }
                          :: !damage
            | Record.Corrupt { offset; reason } ->
              damage := { dfile = file; doffset = offset; dreason = reason }
                        :: !damage
        in
        go 0)
      files;
    Ok (!acc, List.rev !damage)
  end
