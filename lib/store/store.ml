module Persist = Pet_server.Persist
module Json = Pet_pet.Json

type damage = { file : string; offset : int; reason : string }

type recovery = {
  events : Persist.event list;
  files : int;
  records : int;
  truncated : damage option;
  damage : damage list;
}

type t = {
  dir : string;
  segment_bytes : int;
  auto_compact_segments : int;
  fsync : bool;
  mutable seg : int;
  mutable channel : (Unix.file_descr * out_channel) option;
  mutable written : int;
  mutable sealed : int;  (* full segments since the last snapshot *)
}

(* --- Directory layout ------------------------------------------------------- *)

let wal_name n = Printf.sprintf "wal-%06d.log" n
let snap_name n = Printf.sprintf "snap-%06d.log" n

let parse_name name =
  let numbered prefix =
    let pl = String.length prefix and nl = String.length name in
    if nl = pl + 10 && String.sub name 0 pl = prefix
       && String.sub name (nl - 4) 4 = ".log"
    then int_of_string_opt (String.sub name pl 6)
    else None
  in
  match numbered "wal-" with
  | Some n -> Some (`Wal n)
  | None -> (
    match numbered "snap-" with Some n -> Some (`Snap n) | None -> None)

let rec mkdir_p dir =
  if dir <> "" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let listing dir =
  Array.to_list (Sys.readdir dir)
  |> List.filter_map (fun name ->
         match parse_name name with
         | Some kind -> Some (kind, name)
         | None -> None)

(* Replay order: the newest snapshot, then every segment after it. Stale
   files (segments at or below the snapshot, older snapshots) are
   leftovers of an interrupted compaction — already folded into the
   snapshot, so skipped for replay though [scan] still checks them. *)
let replay_files files =
  let snap =
    List.fold_left
      (fun acc (kind, _) ->
        match kind with `Snap n -> max acc n | `Wal _ -> acc)
      (-1) files
  in
  let wals =
    List.filter_map
      (fun (kind, name) ->
        match kind with
        | `Wal n when n > snap -> Some (n, name)
        | _ -> None)
      files
    |> List.sort compare |> List.map snd
  in
  let chain =
    if snap >= 0 then snap_name snap :: wals else wals
  in
  (snap, chain)

let next_segment files =
  List.fold_left
    (fun acc (kind, _) ->
      match kind with `Wal n | `Snap n -> max acc (n + 1))
    0 files

(* --- Event codec -------------------------------------------------------------- *)

let encode event = Json.to_string (Persist.to_json event)

let decode payload =
  match Json.parse payload with
  | Error m -> Error ("invalid JSON: " ^ m)
  | Ok json -> Persist.of_json json

(* --- Recovery ------------------------------------------------------------------- *)

let read_file path =
  In_channel.with_open_bin path In_channel.input_all

(* Replay the file chain into the longest clean prefix of events. A torn
   tail is legitimate only on the last file (the one being appended when
   the process died); torn bytes anywhere else, checksum failures and
   undecodable events are damage: replay stops there so the recovered
   state never builds on bytes after a hole. *)
let recover_chain dir chain =
  let events = ref [] and records = ref 0 in
  let truncated = ref None and damage = ref [] in
  let rec through_files = function
    | [] -> ()
    | file :: rest ->
      let buf = read_file (Filename.concat dir file) in
      let last = rest = [] in
      let rec through_records offset =
        match Record.read buf offset with
        | Record.End -> `Continue
        | Record.Record { payload; next } -> (
          match decode payload with
          | Ok event ->
            events := event :: !events;
            incr records;
            through_records next
          | Error reason ->
            `Stop { file; offset; reason = "undecodable event: " ^ reason })
        | Record.Torn { offset; reason } ->
          if last then begin
            truncated := Some { file; offset; reason };
            `Continue
          end
          else `Stop { file; offset; reason = "torn mid-log: " ^ reason }
        | Record.Corrupt { offset; reason } -> `Stop { file; offset; reason }
      in
      (match through_records 0 with
      | `Continue -> through_files rest
      | `Stop d -> damage := [ d ])
  in
  through_files chain;
  {
    events = List.rev !events;
    files = List.length chain;
    records = !records;
    truncated = !truncated;
    damage = !damage;
  }

let guard f = match f () with v -> Ok v | exception Sys_error m -> Error m

let read dir =
  guard (fun () ->
      let _, chain = replay_files (listing dir) in
      recover_chain dir chain)

let replay_chain dir =
  guard (fun () -> snd (replay_files (listing dir)))

let obs_recovery_h = Pet_obs.Metrics.histogram "pet_store_recovery_seconds"
let obs_recovered = Pet_obs.Metrics.gauge "pet_store_recovered_records"

let open_dir ?(segment_bytes = 1 lsl 20) ?(auto_compact_segments = 8)
    ?(fsync = true) dir =
  guard (fun () ->
      mkdir_p dir;
      let files = listing dir in
      let snap, chain = replay_files files in
      let recovery =
        Pet_obs.Span.enter "store.recover" (fun () ->
            Pet_obs.Metrics.time obs_recovery_h (fun () ->
                recover_chain dir chain))
      in
      Pet_obs.Metrics.set_gauge obs_recovered
        (float_of_int recovery.records);
      (* Cut the torn tail so the damage cannot be misread twice; new
         appends go to a fresh segment either way. *)
      Option.iter
        (fun d -> Unix.truncate (Filename.concat dir d.file) d.offset)
        recovery.truncated;
      let sealed =
        List.length
          (List.filter
             (fun (kind, _) ->
               match kind with `Wal n -> n > snap | `Snap _ -> false)
             files)
      in
      let t =
        {
          dir;
          segment_bytes;
          auto_compact_segments;
          fsync;
          seg = next_segment files;
          channel = None;
          written = 0;
          sealed;
        }
      in
      (t, recovery))

(* --- Appending -------------------------------------------------------------------- *)

let channel t =
  match t.channel with
  | Some (fd, oc) -> (fd, oc)
  | None ->
    let path = Filename.concat t.dir (wal_name t.seg) in
    let fd = Unix.openfile path [ O_WRONLY; O_CREAT; O_APPEND ] 0o644 in
    let oc = Unix.out_channel_of_descr fd in
    t.channel <- Some (fd, oc);
    (fd, oc)

let seal t =
  match t.channel with
  | None -> ()
  | Some (_, oc) ->
    close_out oc;
    t.channel <- None;
    t.seg <- t.seg + 1;
    t.written <- 0;
    t.sealed <- t.sealed + 1;
    Pet_obs.Log.debug "store.segment_sealed"
      ~fields:
        [
          ("next_segment", Pet_obs.Trace.Int t.seg);
          ("sealed", Pet_obs.Trace.Int t.sealed);
        ]

let position t = (wal_name t.seg, t.written)

let obs_appends = Pet_obs.Metrics.counter "pet_store_appends_total"
let obs_append_bytes = Pet_obs.Metrics.counter "pet_store_append_bytes_total"
let obs_append_h = Pet_obs.Metrics.histogram "pet_store_append_seconds"
let obs_fsync_h = Pet_obs.Metrics.histogram "pet_store_fsync_seconds"
let obs_segments = Pet_obs.Metrics.gauge "pet_store_segments"

let append t event =
  Pet_obs.Metrics.time obs_append_h @@ fun () ->
  let record = Record.frame (encode event) in
  let fd, oc = channel t in
  output_string oc record;
  flush oc;
  if t.fsync then Pet_obs.Metrics.time obs_fsync_h (fun () -> Unix.fsync fd);
  t.written <- t.written + String.length record;
  if t.written >= t.segment_bytes then seal t;
  if Pet_obs.Metrics.enabled () then begin
    Pet_obs.Metrics.incr obs_appends;
    Pet_obs.Metrics.add obs_append_bytes (String.length record);
    (* sealed segments plus the active one *)
    Pet_obs.Metrics.set_gauge obs_segments (float_of_int (t.sealed + 1))
  end

let append_batch t events =
  match events with
  | [] -> ()
  | events ->
    Pet_obs.Metrics.time obs_append_h @@ fun () ->
    let fd, oc = channel t in
    let bytes =
      List.fold_left
        (fun bytes event ->
          let record = Record.frame (encode event) in
          output_string oc record;
          bytes + String.length record)
        0 events
    in
    flush oc;
    if t.fsync then Pet_obs.Metrics.time obs_fsync_h (fun () -> Unix.fsync fd);
    t.written <- t.written + bytes;
    if t.written >= t.segment_bytes then seal t;
    if Pet_obs.Metrics.enabled () then begin
      Pet_obs.Metrics.add obs_appends (List.length events);
      Pet_obs.Metrics.add obs_append_bytes bytes;
      Pet_obs.Metrics.set_gauge obs_segments (float_of_int (t.sealed + 1))
    end

let sink t = { Persist.emit = (fun event -> append t event) }

let wants_compaction t =
  t.auto_compact_segments > 0 && t.sealed >= t.auto_compact_segments

let close t =
  match t.channel with
  | None -> ()
  | Some (_, oc) ->
    close_out oc;
    t.channel <- None

(* --- Compaction --------------------------------------------------------------------- *)

let fsync_dir dir =
  match Unix.openfile dir [ O_RDONLY ] 0 with
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd
  | exception Unix.Unix_error _ -> ()

let compact t ~events =
  guard (fun () ->
      (* The snapshot covers everything below the next segment number,
         including the active segment being abandoned. *)
      close t;
      let cover = t.seg in
      let tmp = Filename.concat t.dir "snap.tmp" in
      let fd = Unix.openfile tmp [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
      let oc = Unix.out_channel_of_descr fd in
      List.iter (fun event -> output_string oc (Record.frame (encode event))) events;
      flush oc;
      Unix.fsync fd;
      close_out oc;
      Sys.rename tmp (Filename.concat t.dir (snap_name cover));
      fsync_dir t.dir;
      let removed =
        List.fold_left
          (fun removed (kind, name) ->
            let stale =
              match kind with `Wal n -> n <= cover | `Snap n -> n < cover
            in
            if stale then begin
              Sys.remove (Filename.concat t.dir name);
              removed + 1
            end
            else removed)
          0 (listing t.dir)
      in
      t.seg <- cover + 1;
      t.written <- 0;
      t.sealed <- 0;
      Pet_obs.Log.debug "store.compacted"
        ~fields:
          [
            ("snapshot", Pet_obs.Trace.Int cover);
            ("removed_files", Pet_obs.Trace.Int removed);
          ];
      removed)

(* --- Offline inspection ---------------------------------------------------------------- *)

type file_report = {
  file : string;
  bytes : int;
  records : int;
  kinds : (string * int) list;
  damage : damage list;
  r2 : damage list;
}

let rec has_key name = function
  | Json.Obj fields ->
    List.exists (fun (k, v) -> k = name || has_key name v) fields
  | Json.List items -> List.exists (has_key name) items
  | _ -> false

let scan_file dir file =
  let buf = read_file (Filename.concat dir file) in
  let records = ref 0 and kinds = Hashtbl.create 8 in
  let damage = ref [] and r2 = ref [] in
  let tally kind =
    Hashtbl.replace kinds kind
      (1 + Option.value ~default:0 (Hashtbl.find_opt kinds kind))
  in
  let rec go offset =
    match Record.read buf offset with
    | Record.End -> ()
    | Record.Record { payload; next } ->
      incr records;
      (match Json.parse payload with
      | Error m ->
        damage :=
          { file; offset; reason = "record holds invalid JSON: " ^ m }
          :: !damage
      | Ok json -> (
        if has_key "valuation" json then
          r2 :=
            {
              file;
              offset;
              reason = "decoded event carries a \"valuation\" field";
            }
            :: !r2;
        match Persist.of_json json with
        | Ok event -> tally (Persist.kind event)
        | Error m ->
          damage :=
            { file; offset; reason = "not a known event: " ^ m } :: !damage));
      go next
    | Record.Torn { offset; reason } ->
      damage := { file; offset; reason = "torn: " ^ reason } :: !damage
    | Record.Corrupt { offset; reason } ->
      damage := { file; offset; reason } :: !damage
  in
  go 0;
  {
    file;
    bytes = String.length buf;
    records = !records;
    kinds =
      Hashtbl.fold (fun k n acc -> (k, n) :: acc) kinds []
      |> List.sort compare;
    damage = List.rev !damage;
    r2 = List.rev !r2;
  }

let scan dir =
  guard (fun () ->
      let files = listing dir in
      let order (kind, name) =
        match kind with `Snap n -> (0, n, name) | `Wal n -> (1, n, name)
      in
      List.sort (fun a b -> compare (order a) (order b)) files
      |> List.map (fun (_, name) -> scan_file dir name))

(* --- Offline compaction ------------------------------------------------------------------ *)

module Compactor = struct
  type sess = {
    digest : string;
    tenant : string option;
    created_at : float;
    mutable chosen : (string * string list * float) option;
    mutable submitted : (int * float) option;
    mutable last : float;
  }

  type state = {
    rules : (string, string) Hashtbl.t;
    tenants : (string, (int * string * string * int option * float) list ref) Hashtbl.t;
        (* tenant -> (version, digest, text, quota, at), every version
           kept: recovery needs them all so pinned sessions can resolve
           pre-swap digests *)
    grants :
      ( string * string option,
        (int * string * string list * string option * bool) list ref )
      Hashtbl.t;
        (* (digest, tenant) -> (grant_id, form, benefits, session,
           revoked): ledgers are namespaced per tenant, mirroring the
           service *)
    sessions : (string, sess) Hashtbl.t;
    revoked : (string, float) Hashtbl.t;  (* session -> revocation time *)
    horizons : (string, float * float) Hashtbl.t;
        (* session -> (horizon, set_at), latest wins *)
    links : (string, (string * string option) * int) Hashtbl.t;
        (* session -> (ledger key, grant id) — where its grant lives *)
    mutable clock : float;  (* newest timestamp seen *)
  }

  let create () =
    {
      rules = Hashtbl.create 8;
      tenants = Hashtbl.create 8;
      grants = Hashtbl.create 8;
      sessions = Hashtbl.create 64;
      revoked = Hashtbl.create 8;
      horizons = Hashtbl.create 8;
      links = Hashtbl.create 8;
      clock = 0.;
    }

  let tick state at = if at > state.clock then state.clock <- at

  let add state = function
    | Persist.Rules { digest; text } ->
      if not (Hashtbl.mem state.rules digest) then
        Hashtbl.replace state.rules digest text
    | Persist.Tenant_published { tenant; version; digest; text; quota; at } ->
      tick state at;
      let cell =
        match Hashtbl.find_opt state.tenants tenant with
        | Some cell -> cell
        | None ->
          let cell = ref [] in
          Hashtbl.add state.tenants tenant cell;
          cell
      in
      (* replaying the same version twice (snapshot + tail) keeps the
         newest record *)
      cell :=
        (version, digest, text, quota, at)
        :: List.filter (fun (v, _, _, _, _) -> v <> version) !cell
    | Persist.Session_created { id; digest; tenant; at } ->
      tick state at;
      Hashtbl.replace state.sessions id
        {
          digest;
          tenant;
          created_at = at;
          chosen = None;
          submitted = None;
          last = at;
        }
    | Persist.Session_chosen { id; mas; benefits; at } ->
      tick state at;
      Option.iter
        (fun sess ->
          sess.chosen <- Some (mas, benefits, at);
          sess.last <- at)
        (Hashtbl.find_opt state.sessions id)
    | Persist.Session_submitted { id; grant_id; at } ->
      tick state at;
      Option.iter
        (fun sess ->
          sess.submitted <- Some (grant_id, at);
          sess.last <- at)
        (Hashtbl.find_opt state.sessions id)
    | Persist.Grant { digest; grant_id; form; benefits; session; tenant; revoked }
      ->
      let key = (digest, tenant) in
      let cell =
        match Hashtbl.find_opt state.grants key with
        | Some cell -> cell
        | None ->
          let cell = ref [] in
          Hashtbl.add state.grants key cell;
          cell
      in
      cell := (grant_id, form, benefits, session, revoked) :: !cell;
      Option.iter
        (fun session -> Hashtbl.replace state.links session (key, grant_id))
        session
    | Persist.Session_revoked { id; at } ->
      tick state at;
      (* Compaction must never resurrect revoked data: the session
         disappears now, and {!events} tombstones its grant. The
         revocation itself is kept so recovery still refuses a second
         revoke. *)
      Hashtbl.replace state.revoked id at;
      Hashtbl.remove state.sessions id
    | Persist.Session_expiry { id; horizon; at } ->
      tick state at;
      Hashtbl.replace state.horizons id (horizon, at)

  let sorted_bindings table =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let events ?(ttl = 3600.) state =
    let rules =
      List.map
        (fun (digest, text) -> Persist.Rules { digest; text })
        (sorted_bindings state.rules)
    in
    let tenants =
      List.concat_map
        (fun (tenant, cell) ->
          List.sort (fun (a, _, _, _, _) (b, _, _, _, _) -> compare a b) !cell
          |> List.map (fun (version, digest, text, quota, at) ->
                 Persist.Tenant_published
                   { tenant; version; digest; text; quota; at }))
        (sorted_bindings state.tenants)
    in
    (* A grant is erased — emitted as a tombstone, its form dropped —
       when its own record says so, or its session revoked consent, or
       its session's expiry horizon has passed by the log's own clock. *)
    let erased session already =
      already
      ||
      match session with
      | None -> false
      | Some id ->
        Hashtbl.mem state.revoked id
        || (match Hashtbl.find_opt state.horizons id with
           | Some (horizon, _) -> horizon <= state.clock
           | None -> false)
    in
    let grants =
      List.concat_map
        (fun ((digest, tenant), cell) ->
          List.rev !cell
          |> List.sort (fun (a, _, _, _, _) (b, _, _, _, _) -> compare a b)
          |> List.map (fun (grant_id, form, benefits, session, revoked) ->
                 if erased session revoked then
                   Persist.Grant
                     {
                       digest;
                       grant_id;
                       form = "";
                       benefits = [];
                       session;
                       tenant;
                       revoked = true;
                     }
                 else
                   Persist.Grant
                     { digest; grant_id; form; benefits; session; tenant;
                       revoked = false }))
        (sorted_bindings state.grants)
    in
    let live id (sess : sess) =
      (ttl <= 0. || state.clock -. sess.last <= ttl)
      && not (erased (Some id) false)
    in
    let sessions =
      sorted_bindings state.sessions
      |> List.sort (fun ((a, _) : string * sess) (b, _) ->
             compare (String.length a, a) (String.length b, b))
      |> List.concat_map (fun (id, sess) ->
             if not (live id sess) then []
             else
               Persist.Session_created
                 {
                   id;
                   digest = sess.digest;
                   tenant = sess.tenant;
                   at = sess.created_at;
                 }
               :: (match sess.chosen with
                  | Some (mas, benefits, at) ->
                    [ Persist.Session_chosen { id; mas; benefits; at } ]
                  | None -> [])
               @
               match sess.submitted with
               | Some (grant_id, at) ->
                 [ Persist.Session_submitted { id; grant_id; at } ]
               | None -> [])
    in
    (* Lifecycle events last (the order {!Service.state_events} uses):
       revocations survive compaction so a second revoke still errors,
       and horizons re-arm so recovery re-applies any that passed. *)
    let by_id l = List.sort (fun (a, _) (b, _) ->
        compare (String.length a, a) (String.length b, b)) l
    in
    let lifecycle =
      List.map
        (fun (id, at) -> Persist.Session_revoked { id; at })
        (by_id (Hashtbl.fold (fun id at acc -> (id, at) :: acc) state.revoked []))
      @ List.filter_map
          (fun (id, (horizon, at)) ->
            if Hashtbl.mem state.revoked id then None
            else Some (Persist.Session_expiry { id; horizon; at }))
          (by_id
             (Hashtbl.fold (fun id h acc -> (id, h) :: acc) state.horizons []))
    in
    rules @ tenants @ grants @ sessions @ lifecycle
end
