(** A seeded generator of realistic form/rule mixes.

    Grounded in the field taxonomy of "Understanding Privacy Norms
    through Web Forms" (PAPERS.md): forms draw predicates from four
    families — contact, demographic, financial, health — at sizes
    {!min_size}–{!max_size}, group bracket fields (income bands,
    employment status) under mutual-exclusion constraints, and spread
    traffic across tenants with a Zipf popularity curve.

    Everything is a pure function of the seed: the same
    [(seed, index, revision)] triple yields byte-identical rule text,
    so corpus-driven benches, fuzz runs and CI smoke jobs reproduce
    from one integer. The module emits rule-DSL {e text} (the
    [publish_rules] / [update_rules] wire payload), never parsed
    values — the server's parser stays the single authority. *)

type form = {
  name : string;  (** tenant name, e.g. ["t017-loan_application"] *)
  index : int;
  revision : int;  (** 1-based; bumped by {!update} *)
  size : int;  (** number of predicates *)
  predicates : string list;
  benefits : string list;
  brackets : string list list;
      (** mutually exclusive predicate groups (at most one holds) *)
  text : string;  (** the rule-DSL source *)
}

val min_size : int
(** 8 — the small end of the corpus size band. *)

val max_size : int
(** 40 — the large end. Forms beyond the atlas enumeration bound
    (24 predicates) publish fine but fail their background build;
    the corpus includes them on purpose to exercise that path. *)

val size_of : ?lo:int -> ?hi:int -> seed:int -> int -> int
(** Deterministic size for tenant [index] in [\[lo, hi\]] (defaults
    {!min_size}, {!max_size}), skewed toward small forms. *)

val form : ?seed:int -> ?size:int -> ?revision:int -> int -> form
(** The [index]-th tenant's form. The predicate set depends only on
    [(seed, index)]; [revision] re-rolls the rule bodies over the same
    form, which is what a real rule update does. *)

val update : ?seed:int -> form -> form
(** The next revision of the same tenant: same predicates and
    benefits, new rule bodies (hence a new digest). *)

val valuation : ?seed:int -> form -> int -> string
(** A random respondent's answers as a valuation bitstring (first
    predicate leftmost), respecting the form's exclusion brackets.
    Constructed directly — never enumerates, so size 40 is as cheap as
    size 8. The result may still be ineligible under the form's rules;
    callers drive the protocol and accept [ineligible] answers. *)

val weights : ?exponent:float -> int -> float array
(** Normalized Zipf weights over [count] tenants (exponent 1.0 by
    default): tenant [i] receives [1/(i+1)^exponent] of the traffic. *)

val pick : Random.State.t -> float array -> int
(** Sample an index from a {!weights} distribution. *)

type scenario = { seed : int; forms : form array; popularity : float array }

val scenario : ?seed:int -> ?lo:int -> ?hi:int -> count:int -> unit -> scenario
(** [count] tenants with sizes in [\[lo, hi\]] and Zipf popularity. *)
