(* Tests for the CDCL solver: hand-written scenarios, classic hard
   instances, and qcheck cross-validation against brute-force SAT. *)

module Lit = Pet_sat.Lit
module Solver = Pet_sat.Solver
module Dimacs = Pet_sat.Dimacs

let lit v sign = Lit.make v sign

(* --- Brute-force reference --------------------------------------------- *)

let clause_holds assignment clause =
  List.exists
    (fun l ->
      let v = Lit.var l in
      Bool.equal ((assignment lsr v) land 1 = 1) (Lit.sign l))
    clause

let cnf_holds assignment clauses = List.for_all (clause_holds assignment) clauses

let brute_sat nvars clauses =
  let rec go a = a < 1 lsl nvars && (cnf_holds a clauses || go (a + 1)) in
  go 0

let brute_count nvars clauses =
  let count = ref 0 in
  for a = 0 to (1 lsl nvars) - 1 do
    if cnf_holds a clauses then incr count
  done;
  !count

let solver_of ?(max_learnt_factor = 3) nvars clauses =
  let s = Solver.create ~max_learnt_factor () in
  Solver.ensure_nvars s nvars;
  List.iter (Solver.add_clause s) clauses;
  s

(* --- Generators --------------------------------------------------------- *)

let gen_cnf =
  QCheck2.Gen.(
    let* nvars = int_range 1 7 in
    let gen_lit =
      let* v = int_range 0 (nvars - 1) in
      let* sign = bool in
      return (lit v sign)
    in
    let gen_clause = list_size (int_range 1 4) gen_lit in
    let* clauses = list_size (int_range 0 20) gen_clause in
    return (nvars, clauses))

let print_cnf (nvars, clauses) =
  Printf.sprintf "nvars=%d cnf=%s" nvars
    (String.concat " & "
       (List.map
          (fun c ->
            "("
            ^ String.concat "|" (List.map (fun l -> string_of_int (Lit.to_dimacs l)) c)
            ^ ")")
          clauses))

(* --- Unit tests ---------------------------------------------------------- *)

let test_empty () =
  let s = Solver.create () in
  Alcotest.(check bool) "empty problem is sat" true (Solver.solve s = Sat)

let test_unit_conflict () =
  let s = solver_of 1 [ [ lit 0 true ]; [ lit 0 false ] ] in
  Alcotest.(check bool) "x & ~x unsat" true (Solver.solve s = Unsat);
  Alcotest.(check bool) "okay is false" false (Solver.okay s)

let test_simple_implication () =
  (* (~x | y) & x  forces y *)
  let s = solver_of 2 [ [ lit 0 false; lit 1 true ]; [ lit 0 true ] ] in
  Alcotest.(check bool) "sat" true (Solver.solve s = Sat);
  Alcotest.(check bool) "x true" true (Solver.value s 0);
  Alcotest.(check bool) "y true" true (Solver.value s 1)

let test_empty_clause () =
  let s = Solver.create () in
  Solver.add_clause s [];
  Alcotest.(check bool) "unsat" true (Solver.solve s = Unsat)

let test_tautological_clause_ignored () =
  let s = solver_of 1 [ [ lit 0 true; lit 0 false ] ] in
  Alcotest.(check bool) "sat" true (Solver.solve s = Sat)

let test_assumptions_basic () =
  (* x | y, assume ~x: y must hold. *)
  let s = solver_of 2 [ [ lit 0 true; lit 1 true ] ] in
  Alcotest.(check bool) "sat under ~x" true
    (Solver.solve ~assumptions:[ lit 0 false ] s = Sat);
  Alcotest.(check bool) "y forced" true (Solver.value s 1);
  (* Solver stays reusable and the assumption is not permanent. *)
  Alcotest.(check bool) "sat under x" true
    (Solver.solve ~assumptions:[ lit 0 true ] s = Sat);
  Alcotest.(check bool) "still sat without assumptions" true
    (Solver.solve s = Sat)

let test_assumptions_unsat_core () =
  (* x -> y, y -> z; assume x, ~z, w: the core must not include w. *)
  let s =
    solver_of 4 [ [ lit 0 false; lit 1 true ]; [ lit 1 false; lit 2 true ] ]
  in
  let assumptions = [ lit 3 true; lit 0 true; lit 2 false ] in
  Alcotest.(check bool) "unsat" true (Solver.solve ~assumptions s = Unsat);
  let core = Solver.unsat_core s in
  Alcotest.(check bool) "core subset of assumptions" true
    (List.for_all (fun l -> List.mem l assumptions) core);
  Alcotest.(check bool) "w not in core" true (not (List.mem (lit 3 true) core));
  (* The core really is unsatisfiable together with the clauses. *)
  let s' =
    solver_of 4 [ [ lit 0 false; lit 1 true ]; [ lit 1 false; lit 2 true ] ]
  in
  List.iter (fun l -> Solver.add_clause s' [ l ]) core;
  Alcotest.(check bool) "core unsat" true (Solver.solve s' = Unsat)

let test_contradictory_assumptions () =
  let s = solver_of 1 [] in
  Alcotest.(check bool) "x & ~x assumptions unsat" true
    (Solver.solve ~assumptions:[ lit 0 true; lit 0 false ] s = Unsat);
  let core = Solver.unsat_core s in
  Alcotest.(check int) "core has both" 2 (List.length core)

(* Pigeonhole: n+1 pigeons in n holes, classic unsat family that requires
   real conflict analysis. *)
let pigeonhole n =
  let var p h = (p * n) + h in
  let nvars = (n + 1) * n in
  let at_least =
    List.init (n + 1) (fun p -> List.init n (fun h -> lit (var p h) true))
  in
  let at_most =
    List.concat_map
      (fun h ->
        List.concat_map
          (fun p ->
            List.filter_map
              (fun q ->
                if q > p then Some [ lit (var p h) false; lit (var q h) false ]
                else None)
              (List.init (n + 1) Fun.id))
          (List.init (n + 1) Fun.id))
      (List.init n Fun.id)
  in
  nvars, at_least @ at_most

let test_pigeonhole () =
  List.iter
    (fun n ->
      let nvars, clauses = pigeonhole n in
      let s = solver_of nvars clauses in
      Alcotest.(check bool)
        (Printf.sprintf "php(%d) unsat" n)
        true
        (Solver.solve s = Unsat))
    [ 2; 3; 4; 5 ]

let test_pigeonhole_sat () =
  (* n pigeons in n holes is satisfiable. *)
  let n = 4 in
  let var p h = (p * n) + h in
  let nvars = n * n in
  let at_least =
    List.init n (fun p -> List.init n (fun h -> lit (var p h) true))
  in
  let at_most =
    List.concat_map
      (fun h ->
        List.concat_map
          (fun p ->
            List.filter_map
              (fun q ->
                if q > p then Some [ lit (var p h) false; lit (var q h) false ]
                else None)
              (List.init n Fun.id))
          (List.init n Fun.id))
      (List.init n Fun.id)
  in
  let s = solver_of nvars (at_least @ at_most) in
  Alcotest.(check bool) "php-sat" true (Solver.solve s = Sat)

(* XOR (parity) chains: x1 (+) x2 (+) ... (+) xn = b as CNF. With an odd
   constraint on both ends they are unsatisfiable and immune to pure
   branching luck. *)
let parity_chain n parity =
  (* variables 0..n-1 plus chain accumulators n..2n-2 *)
  let clauses = ref [] in
  let xor a b c =
    (* c = a xor b *)
    clauses :=
      [ lit a false; lit b false; lit c false ]
      :: [ lit a true; lit b true; lit c false ]
      :: [ lit a true; lit b false; lit c true ]
      :: [ lit a false; lit b true; lit c true ]
      :: !clauses
  in
  let acc = ref 0 in
  let next = ref n in
  for i = 1 to n - 1 do
    xor !acc i !next;
    acc := !next;
    incr next
  done;
  (!next, [ lit !acc parity ] :: !clauses)

let test_parity_chains () =
  let n = 12 in
  (* Sum of all variables even AND odd at once: unsat. *)
  let nv1, c1 = parity_chain n true in
  let nv2, c2 =
    (* re-encode the same chain shifted to fresh accumulators *)
    let shift = nv1 in
    let _, c = parity_chain n false in
    ( nv1 + shift,
      List.map
        (List.map (fun l ->
             let v = Lit.var l in
             if v >= n then Lit.make (v + shift) (Lit.sign l) else l))
        c )
  in
  let s = solver_of (max nv1 nv2) (c1 @ c2) in
  Alcotest.(check bool) "contradictory parities unsat" true
    (Solver.solve s = Unsat);
  (* A single parity constraint is satisfiable and the model has the
     right parity. *)
  let nv, c = parity_chain n true in
  let s = solver_of nv c in
  Alcotest.(check bool) "single parity sat" true (Solver.solve s = Sat);
  let m = Solver.model s in
  let parity = ref false in
  for i = 0 to n - 1 do
    if m.(i) then parity := not !parity
  done;
  Alcotest.(check bool) "model parity odd" true !parity

let test_solver_deterministic () =
  let nvars, clauses = pigeonhole 4 in
  let run () =
    let s = solver_of nvars clauses in
    let r = Solver.solve s in
    (r, (Solver.stats s).conflicts)
  in
  Alcotest.(check bool) "same result and stats" true (run () = run ())

let test_reduce_db_exercised () =
  (* A tight learnt budget forces database reductions on a hard instance;
     the answer must stay correct. *)
  let nvars, clauses = pigeonhole 5 in
  let s = solver_of ~max_learnt_factor:0 nvars clauses in
  Alcotest.(check bool) "php(5) unsat with reductions" true
    (Solver.solve s = Unsat)

let test_incremental () =
  let s = Solver.create () in
  Solver.ensure_nvars s 3;
  Solver.add_clause s [ lit 0 true; lit 1 true ];
  Alcotest.(check bool) "sat 1" true (Solver.solve s = Sat);
  Solver.add_clause s [ lit 0 false ];
  Alcotest.(check bool) "sat 2" true (Solver.solve s = Sat);
  Alcotest.(check bool) "y forced" true (Solver.value s 1);
  Solver.add_clause s [ lit 1 false ];
  Alcotest.(check bool) "unsat 3" true (Solver.solve s = Unsat)

let test_iter_models_projection () =
  (* x | y over 3 vars, projected on {x, y}: 3 assignments. *)
  let s = solver_of 3 [ [ lit 0 true; lit 1 true ] ] in
  let seen = ref [] in
  let n =
    Solver.iter_models ~vars:[ 0; 1 ] s (fun m ->
        seen := (m.(0), m.(1)) :: !seen)
  in
  Alcotest.(check int) "3 projections" 3 n;
  Alcotest.(check int) "3 distinct" 3
    (List.length (List.sort_uniq Stdlib.compare !seen))

let test_stats_move () =
  let nvars, clauses = pigeonhole 4 in
  let s = solver_of nvars clauses in
  ignore (Solver.solve s);
  let st = Solver.stats s in
  Alcotest.(check bool) "conflicts happened" true (st.conflicts > 0);
  Alcotest.(check bool) "decisions happened" true (st.decisions > 0)

let test_new_var_after_solve () =
  let s = solver_of 1 [ [ lit 0 true ] ] in
  Alcotest.(check bool) "sat" true (Solver.solve s = Sat);
  let v = Solver.new_var s in
  Solver.add_clause s [ lit v false ];
  Alcotest.(check bool) "still sat" true (Solver.solve s = Sat);
  Alcotest.(check bool) "new var false" false (Solver.value s v)

let test_unknown_literal_rejected () =
  let s = Solver.create () in
  Alcotest.check_raises "unknown var"
    (Invalid_argument "Solver: literal 1 refers to unknown variable")
    (fun () -> Solver.add_clause s [ lit 0 true ])

(* --- Vec ------------------------------------------------------------------ *)

module Vec = Pet_sat.Vec

let test_vec_basics () =
  let v = Vec.create ~dummy:0 () in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "size" 100 (Vec.size v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Vec.set v 42 (-1);
  Alcotest.(check int) "set" (-1) (Vec.get v 42);
  Alcotest.(check int) "last" 99 (Vec.last v);
  Alcotest.(check int) "pop" 99 (Vec.pop v);
  Alcotest.(check int) "size after pop" 99 (Vec.size v);
  Vec.shrink v 10;
  Alcotest.(check int) "shrink" 10 (Vec.size v);
  Vec.clear v;
  Alcotest.(check bool) "clear" true (Vec.is_empty v)

let test_vec_bounds () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3 ] in
  let fails f = match f () with exception Invalid_argument _ -> true | _ -> false in
  Alcotest.(check bool) "get oob" true (fails (fun () -> Vec.get v 3));
  Alcotest.(check bool) "get negative" true (fails (fun () -> Vec.get v (-1)));
  Alcotest.(check bool) "set oob" true (fails (fun () -> Vec.set v 5 0));
  Alcotest.(check bool) "shrink oob" true (fails (fun () -> Vec.shrink v 4));
  Vec.clear v;
  Alcotest.(check bool) "pop empty" true (fails (fun () -> Vec.pop v));
  Alcotest.(check bool) "last empty" true (fails (fun () -> Vec.last v))

let test_vec_iteration () =
  let v = Vec.of_list ~dummy:0 [ 5; 1; 4; 2; 3 ] in
  Alcotest.(check (list int)) "to_list" [ 5; 1; 4; 2; 3 ] (Vec.to_list v);
  Alcotest.(check int) "fold sum" 15 (Vec.fold ( + ) 0 v);
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 4) v);
  Alcotest.(check bool) "not exists" false (Vec.exists (fun x -> x = 9) v);
  let seen = ref [] in
  Vec.iter (fun x -> seen := x :: !seen) v;
  Alcotest.(check (list int)) "iter order" [ 3; 2; 4; 1; 5 ] !seen;
  Vec.filter_in_place (fun x -> x mod 2 = 1) v;
  Alcotest.(check (list int)) "filter" [ 5; 1; 3 ] (Vec.to_list v)

let prop_vec_mirrors_list =
  QCheck2.Test.make ~count:300 ~name:"Vec mirrors list push/pop semantics"
    ~print:(fun ops -> String.concat ";" (List.map string_of_int ops))
    QCheck2.Gen.(list_size (int_range 0 40) (int_range (-5) 100))
    (fun ops ->
      (* positive = push n; negative = pop (when non-empty) *)
      let v = Vec.create ~dummy:0 () in
      let model = ref [] in
      List.iter
        (fun op ->
          if op >= 0 then begin
            Vec.push v op;
            model := op :: !model
          end
          else
            match !model with
            | [] -> ()
            | x :: rest ->
              model := rest;
              if Vec.pop v <> x then failwith "pop mismatch")
        ops;
      Vec.to_list v = List.rev !model)

(* --- DIMACS -------------------------------------------------------------- *)

let test_dimacs_parse () =
  let input = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n" in
  match Dimacs.parse input with
  | Error e -> Alcotest.fail e
  | Ok p ->
    Alcotest.(check int) "nvars" 3 p.nvars;
    Alcotest.(check int) "nclauses" 2 (List.length p.clauses);
    let s = Solver.create () in
    Dimacs.load_into s p;
    Alcotest.(check bool) "sat" true (Solver.solve s = Sat)

let test_dimacs_roundtrip () =
  let p = { Dimacs.nvars = 4; clauses = [ [ lit 0 true; lit 3 false ]; [] ] } in
  let printed = Fmt.str "%a" Dimacs.print p in
  match Dimacs.parse printed with
  | Error e -> Alcotest.fail e
  | Ok p' ->
    Alcotest.(check int) "nvars" p.nvars p'.nvars;
    Alcotest.(check bool) "clauses equal" true (p.clauses = p'.clauses)

let test_dimacs_errors () =
  let is_error s = match Dimacs.parse s with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "no header" true (is_error "1 2 0\n");
  Alcotest.(check bool) "bad count" true (is_error "p cnf 2 5\n1 0\n");
  Alcotest.(check bool) "out of range" true (is_error "p cnf 1 1\n2 0\n");
  Alcotest.(check bool) "unterminated" true (is_error "p cnf 2 1\n1 2\n");
  Alcotest.(check bool) "garbage literal" true (is_error "p cnf 2 1\n1 x 0\n")

(* --- Properties ----------------------------------------------------------- *)

let prop_matches_brute_force =
  QCheck2.Test.make ~count:500 ~name:"solver agrees with brute force"
    ~print:print_cnf gen_cnf (fun (nvars, clauses) ->
      let s = solver_of nvars clauses in
      let expected = brute_sat nvars clauses in
      (Solver.solve s = Sat) = expected)

let prop_model_satisfies =
  QCheck2.Test.make ~count:500 ~name:"returned model satisfies the CNF"
    ~print:print_cnf gen_cnf (fun (nvars, clauses) ->
      let s = solver_of nvars clauses in
      match Solver.solve s with
      | Unsat -> true
      | Sat ->
        let m = Solver.model s in
        List.for_all
          (fun c ->
            List.exists (fun l -> Bool.equal m.(Lit.var l) (Lit.sign l)) c)
          clauses)

let prop_assumptions_equal_units =
  QCheck2.Test.make ~count:300
    ~name:"solving under assumptions = solving with unit clauses"
    ~print:(fun (cnf, a) ->
      print_cnf cnf ^ " assuming " ^ String.concat ","
        (List.map (fun l -> string_of_int (Lit.to_dimacs l)) a))
    QCheck2.Gen.(
      let* (nvars, clauses) = gen_cnf in
      let* assumptions =
        list_size (int_range 0 3)
          (let* v = int_range 0 (nvars - 1) in
           let* sign = bool in
           return (lit v sign))
      in
      return ((nvars, clauses), assumptions))
    (fun ((nvars, clauses), assumptions) ->
      let s = solver_of nvars clauses in
      let with_assumptions = Solver.solve ~assumptions s in
      let s' = solver_of nvars (clauses @ List.map (fun l -> [ l ]) assumptions) in
      let with_units = Solver.solve s' in
      with_assumptions = with_units)

let prop_unsat_core_is_unsat =
  QCheck2.Test.make ~count:300 ~name:"unsat cores are unsatisfiable subsets"
    ~print:(fun (cnf, a) ->
      print_cnf cnf ^ " assuming " ^ String.concat ","
        (List.map (fun l -> string_of_int (Lit.to_dimacs l)) a))
    QCheck2.Gen.(
      let* (nvars, clauses) = gen_cnf in
      let* assumptions =
        list_size (int_range 1 4)
          (let* v = int_range 0 (nvars - 1) in
           let* sign = bool in
           return (lit v sign))
      in
      return ((nvars, clauses), assumptions))
    (fun ((nvars, clauses), assumptions) ->
      let s = solver_of nvars clauses in
      match Solver.solve ~assumptions s with
      | Sat -> true
      | Unsat ->
        let core = Solver.unsat_core s in
        List.for_all (fun l -> List.mem l assumptions) core
        &&
        let s' =
          solver_of nvars (clauses @ List.map (fun l -> [ l ]) core)
        in
        Solver.solve s' = Unsat)

let prop_model_count =
  QCheck2.Test.make ~count:200 ~name:"iter_models counts all models"
    ~print:print_cnf gen_cnf (fun (nvars, clauses) ->
      let s = solver_of nvars clauses in
      let n = Solver.iter_models ~vars:(List.init nvars Fun.id) s (fun _ -> ()) in
      n = brute_count nvars clauses)

let prop_incremental_consistency =
  QCheck2.Test.make ~count:200
    ~name:"incremental solving matches from-scratch solving" ~print:print_cnf
    gen_cnf (fun (nvars, clauses) ->
      let s = Solver.create () in
      Solver.ensure_nvars s nvars;
      List.for_all
        (fun i ->
          let prefix = List.filteri (fun j _ -> j < i) clauses in
          (if i >= 1 then
             match List.nth_opt clauses (i - 1) with
             | Some c -> Solver.add_clause s c
             | None -> ());
          let expected = brute_sat nvars prefix in
          (Solver.solve s = Sat) = expected)
        (List.init (List.length clauses + 1) Fun.id))

let () =
  let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests) in
  Alcotest.run "pet_sat"
    [
      ( "solver-unit",
        [
          Alcotest.test_case "empty problem" `Quick test_empty;
          Alcotest.test_case "unit conflict" `Quick test_unit_conflict;
          Alcotest.test_case "implication" `Quick test_simple_implication;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
          Alcotest.test_case "tautology ignored" `Quick
            test_tautological_clause_ignored;
          Alcotest.test_case "assumptions basic" `Quick test_assumptions_basic;
          Alcotest.test_case "assumption core" `Quick
            test_assumptions_unsat_core;
          Alcotest.test_case "contradictory assumptions" `Quick
            test_contradictory_assumptions;
          Alcotest.test_case "pigeonhole unsat" `Slow test_pigeonhole;
          Alcotest.test_case "pigeonhole sat" `Quick test_pigeonhole_sat;
          Alcotest.test_case "parity chains" `Quick test_parity_chains;
          Alcotest.test_case "deterministic" `Quick test_solver_deterministic;
          Alcotest.test_case "db reduction" `Slow test_reduce_db_exercised;
          Alcotest.test_case "incremental" `Quick test_incremental;
          Alcotest.test_case "model projection" `Quick
            test_iter_models_projection;
          Alcotest.test_case "stats move" `Quick test_stats_move;
          Alcotest.test_case "new var after solve" `Quick
            test_new_var_after_solve;
          Alcotest.test_case "unknown literal" `Quick
            test_unknown_literal_rejected;
        ] );
      ( "vec",
        [
          Alcotest.test_case "basics" `Quick test_vec_basics;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "iteration" `Quick test_vec_iteration;
          QCheck_alcotest.to_alcotest prop_vec_mirrors_list;
        ] );
      ( "dimacs",
        [
          Alcotest.test_case "parse" `Quick test_dimacs_parse;
          Alcotest.test_case "roundtrip" `Quick test_dimacs_roundtrip;
          Alcotest.test_case "errors" `Quick test_dimacs_errors;
        ] );
      qsuite "solver-properties"
        [
          prop_matches_brute_force;
          prop_model_satisfies;
          prop_assumptions_equal_units;
          prop_unsat_core_is_unsat;
          prop_model_count;
          prop_incremental_consistency;
        ];
    ]
