(* Tests for universes and (partial) valuations: Definitions 3.3-3.7. *)

module F = Pet_logic.Formula
module Universe = Pet_valuation.Universe
module Total = Pet_valuation.Total
module Partial = Pet_valuation.Partial

let u3 = Universe.of_names [ "p1"; "p2"; "p3" ]

let total = Alcotest.testable Total.pp Total.equal
let partial = Alcotest.testable Partial.pp Partial.equal

(* --- Universe --------------------------------------------------------------- *)

let test_universe_basics () =
  Alcotest.(check int) "size" 3 (Universe.size u3);
  Alcotest.(check string) "name 1" "p2" (Universe.name u3 1);
  Alcotest.(check int) "index p3" 2 (Universe.index u3 "p3");
  Alcotest.(check bool) "mem" true (Universe.mem u3 "p1");
  Alcotest.(check bool) "not mem" false (Universe.mem u3 "q");
  Alcotest.(check bool) "index_opt none" true
    (Universe.index_opt u3 "q" = None);
  Alcotest.(check bool) "equal" true
    (Universe.equal u3 (Universe.of_names [ "p1"; "p2"; "p3" ]));
  Alcotest.(check bool) "not equal" false
    (Universe.equal u3 (Universe.of_names [ "p1"; "p3"; "p2" ]))

let test_universe_invalid () =
  let fails f = match f () with exception Invalid_argument _ -> true | _ -> false in
  Alcotest.(check bool) "duplicate" true
    (fails (fun () -> Universe.of_names [ "a"; "a" ]));
  Alcotest.(check bool) "empty" true (fails (fun () -> Universe.of_names []));
  Alcotest.(check bool) "too many" true
    (fails (fun () ->
         Universe.of_names (List.init 61 (fun i -> "x" ^ string_of_int i))))

let test_universe_union () =
  let v = Universe.union u3 (Universe.of_names [ "b1"; "b2" ]) in
  Alcotest.(check (list string)) "union order"
    [ "p1"; "p2"; "p3"; "b1"; "b2" ] (Universe.names v);
  Alcotest.(check bool) "union clash" true
    (match Universe.union u3 u3 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Total ------------------------------------------------------------------- *)

let test_total_roundtrip () =
  let v = Total.of_string u3 "011" in
  Alcotest.(check bool) "p1" false (Total.value v "p1");
  Alcotest.(check bool) "p2" true (Total.value v "p2");
  Alcotest.(check bool) "p3" true (Total.value v "p3");
  Alcotest.(check string) "to_string" "011" (Total.to_string v);
  Alcotest.check total "of_bits" v (Total.of_bits u3 0b110);
  Alcotest.check total "make" v
    (Total.make u3 (fun n -> n = "p2" || n = "p3"))

let test_total_all () =
  let all = Total.all u3 in
  Alcotest.(check int) "8 valuations" 8 (List.length all);
  Alcotest.(check int) "distinct" 8
    (List.length (List.sort_uniq Total.compare all))

let test_total_invalid () =
  let fails f = match f () with exception Invalid_argument _ -> true | _ -> false in
  Alcotest.(check bool) "bad bits" true
    (fails (fun () -> Total.of_bits u3 0b1000));
  Alcotest.(check bool) "bad string" true
    (fails (fun () -> Total.of_string u3 "01"));
  Alcotest.(check bool) "bad char" true
    (fails (fun () -> Total.of_string u3 "01x"))

(* --- Partial ------------------------------------------------------------------ *)

let test_partial_strings () =
  let w = Partial.of_string u3 "_11" in
  Alcotest.(check string) "roundtrip" "_11" (Partial.to_string w);
  Alcotest.(check bool) "p1 blank" true (Partial.value w "p1" = None);
  Alcotest.(check bool) "p2 set" true (Partial.value w "p2" = Some true);
  Alcotest.(check (list string)) "domain" [ "p2"; "p3" ] (Partial.domain w);
  Alcotest.(check (list string)) "blanks" [ "p1" ] (Partial.blanks w);
  Alcotest.(check int) "domain size" 2 (Partial.domain_size w);
  Alcotest.(check int) "blank count" 1 (Partial.blank_count w)

let test_partial_of_assoc () =
  let w = Partial.of_assoc u3 [ ("p2", true); ("p3", true); ("p2", true) ] in
  Alcotest.check partial "assoc" (Partial.of_string u3 "_11") w;
  Alcotest.(check bool) "contradiction" true
    (match Partial.of_assoc u3 [ ("p2", true); ("p2", false) ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_subvaluation () =
  (* The paper's running example: w1 = _11 <= v1 = 011 (Section 3.1). *)
  let v1 = Partial.of_total (Total.of_string u3 "011") in
  let w1 = Partial.of_string u3 "_11" in
  let w2 = Partial.of_string u3 "_1_" in
  Alcotest.(check bool) "w1 <= v1" true (Partial.subvaluation w1 v1);
  Alcotest.(check bool) "w2 <= w1" true (Partial.subvaluation w2 w1);
  Alcotest.(check bool) "w2 <= v1" true (Partial.subvaluation w2 v1);
  Alcotest.(check bool) "v1 not <= w1" false (Partial.subvaluation v1 w1);
  Alcotest.(check bool) "reflexive" true (Partial.subvaluation w1 w1);
  Alcotest.(check bool) "strict" true (Partial.strict_subvaluation w2 w1);
  Alcotest.(check bool) "not strict" false (Partial.strict_subvaluation w1 w1);
  (* Disagreeing values are not subvaluations. *)
  let w3 = Partial.of_string u3 "_10" in
  Alcotest.(check bool) "conflict" false (Partial.subvaluation w3 v1)

let test_extensions () =
  let w = Partial.of_string u3 "_1_" in
  let exts = Partial.extensions w in
  Alcotest.(check int) "4 extensions" 4 (List.length exts);
  Alcotest.(check int) "count_extensions" 4 (Partial.count_extensions w);
  List.iter
    (fun v ->
      Alcotest.(check bool) "extends" true (Partial.extends_total w v);
      Alcotest.(check bool) "p2 true" true (Total.value v "p2"))
    exts;
  (* A total valuation has itself as only extension. *)
  let v = Partial.of_total (Total.of_string u3 "101") in
  Alcotest.(check int) "total" 1 (List.length (Partial.extensions v))

let test_merge () =
  let a = Partial.of_string u3 "0__" and b = Partial.of_string u3 "_1_" in
  (match Partial.merge a b with
  | None -> Alcotest.fail "expected merge"
  | Some m -> Alcotest.check partial "merge" (Partial.of_string u3 "01_") m);
  let c = Partial.of_string u3 "1__" in
  Alcotest.(check bool) "conflicting merge" true (Partial.merge a c = None)

let test_set_unset_restrict () =
  let w = Partial.of_string u3 "0__" in
  let w' = Partial.set w "p3" true in
  Alcotest.check partial "set" (Partial.of_string u3 "0_1") w';
  Alcotest.check partial "set same" w' (Partial.set w' "p3" true);
  Alcotest.(check bool) "set conflict" true
    (match Partial.set w' "p3" false with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.check partial "unset" w (Partial.unset w' "p3");
  Alcotest.check partial "restrict"
    (Partial.of_string u3 "0__")
    (Partial.restrict w' [ "p1"; "p2"; "unknown" ])

let test_to_total () =
  Alcotest.(check bool) "partial" true
    (Partial.to_total (Partial.of_string u3 "0_1") = None);
  match Partial.to_total (Partial.of_string u3 "001") with
  | None -> Alcotest.fail "expected total"
  | Some v -> Alcotest.check total "total" (Total.of_string u3 "001") v

let test_compare_lex () =
  (* _ < 0 < 1 per position, first variable most significant. *)
  let w s = Partial.of_string u3 s in
  Alcotest.(check bool) "_11 < 011" true
    (Partial.compare_lex (w "_11") (w "011") < 0);
  Alcotest.(check bool) "011 < 1__" true
    (Partial.compare_lex (w "011") (w "1__") < 0);
  Alcotest.(check bool) "1_0 < 1_1" true
    (Partial.compare_lex (w "1_0") (w "1_1") < 0);
  Alcotest.(check bool) "10_ < 100" true
    (Partial.compare_lex (w "10_") (w "100") < 0);
  Alcotest.(check int) "equal" 0 (Partial.compare_lex (w "01_") (w "01_"))

let test_to_formula () =
  let w = Partial.of_string u3 "0_1" in
  let f = Partial.to_formula w in
  Alcotest.(check bool) "equivalent to !p1 & p3" true
    (F.equivalent f (Pet_logic.Parse.formula "!p1 & p3"));
  Alcotest.(check bool) "empty gives true" true
    (F.equal (Partial.to_formula (Partial.empty u3)) F.True)

(* --- Properties ------------------------------------------------------------------ *)

let gen_partial =
  QCheck2.Gen.(
    let* dom = int_range 0 7 in
    let* bits = int_range 0 7 in
    return (Partial.of_masks u3 ~dom ~bits:(bits land dom)))

let print_partial w = Partial.to_string w

let prop_string_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"of_string (to_string w) = w"
    ~print:print_partial gen_partial (fun w ->
      Partial.equal w (Partial.of_string u3 (Partial.to_string w)))

let prop_subvaluation_partial_order =
  QCheck2.Test.make ~count:200 ~name:"subvaluation is a partial order"
    ~print:(fun (a, b, c) ->
      String.concat " " (List.map print_partial [ a; b; c ]))
    QCheck2.Gen.(tup3 gen_partial gen_partial gen_partial)
    (fun (a, b, c) ->
      Partial.subvaluation a a
      && ((not (Partial.subvaluation a b && Partial.subvaluation b a))
         || Partial.equal a b)
      && ((not (Partial.subvaluation a b && Partial.subvaluation b c))
         || Partial.subvaluation a c))

let prop_extensions_are_extensions =
  QCheck2.Test.make ~count:200 ~name:"extensions extend and are complete"
    ~print:print_partial gen_partial (fun w ->
      let exts = Partial.extensions w in
      List.length exts = Partial.count_extensions w
      && List.for_all (Partial.extends_total w) exts
      && List.for_all
           (fun v ->
             Bool.equal
               (Partial.extends_total w v)
               (List.exists (Total.equal v) exts))
           (Total.all u3))

let prop_merge_is_lub =
  QCheck2.Test.make ~count:200 ~name:"merge is the least upper bound"
    ~print:(fun (a, b) -> print_partial a ^ " " ^ print_partial b)
    QCheck2.Gen.(tup2 gen_partial gen_partial)
    (fun (a, b) ->
      match Partial.merge a b with
      | Some m ->
        Partial.subvaluation a m && Partial.subvaluation b m
        && Partial.domain_size m
           = Partial.domain_size a + Partial.domain_size b
             - List.length
                 (List.filter (Partial.defines b) (Partial.domain a))
      | None ->
        (* A conflict means no common extension at all. *)
        not
          (List.exists
             (fun v -> Partial.extends_total a v && Partial.extends_total b v)
             (Total.all u3)))

let prop_lex_total_order =
  QCheck2.Test.make ~count:200 ~name:"compare_lex is a total order"
    ~print:(fun (a, b, c) ->
      String.concat " " (List.map print_partial [ a; b; c ]))
    QCheck2.Gen.(tup3 gen_partial gen_partial gen_partial)
    (fun (a, b, c) ->
      let ( <=? ) x y = Partial.compare_lex x y <= 0 in
      (* antisymmetry up to equality, totality, transitivity *)
      ((not (a <=? b && b <=? a)) || Partial.equal a b)
      && (a <=? b || b <=? a)
      && ((not (a <=? b && b <=? c)) || a <=? c))

let prop_restrict_shrinks =
  QCheck2.Test.make ~count:200 ~name:"restrict keeps a subvaluation"
    ~print:print_partial gen_partial (fun w ->
      List.for_all
        (fun names ->
          let r = Partial.restrict w names in
          Partial.subvaluation r w
          && List.for_all
               (fun p -> List.mem p names || not (Partial.defines r p))
               (Partial.domain w))
        [ []; [ "p1" ]; [ "p1"; "p3" ]; [ "p1"; "p2"; "p3" ] ])

let prop_set_unset_inverse =
  QCheck2.Test.make ~count:200 ~name:"unset after set restores the valuation"
    ~print:print_partial gen_partial (fun w ->
      List.for_all
        (fun name ->
          Partial.defines w name
          || List.for_all
               (fun value ->
                 Partial.equal w (Partial.unset (Partial.set w name value) name))
               [ true; false ])
        [ "p1"; "p2"; "p3" ])

let prop_to_formula_extensions =
  QCheck2.Test.make ~count:200
    ~name:"to_formula models = extensions" ~print:print_partial gen_partial
    (fun w ->
      let f = Partial.to_formula w in
      List.for_all
        (fun v ->
          Bool.equal (F.eval (Total.rho v) f) (Partial.extends_total w v))
        (Total.all u3))

let () =
  let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests) in
  Alcotest.run "pet_valuation"
    [
      ( "universe",
        [
          Alcotest.test_case "basics" `Quick test_universe_basics;
          Alcotest.test_case "invalid" `Quick test_universe_invalid;
          Alcotest.test_case "union" `Quick test_universe_union;
        ] );
      ( "total",
        [
          Alcotest.test_case "roundtrip" `Quick test_total_roundtrip;
          Alcotest.test_case "all" `Quick test_total_all;
          Alcotest.test_case "invalid" `Quick test_total_invalid;
        ] );
      ( "partial",
        [
          Alcotest.test_case "strings" `Quick test_partial_strings;
          Alcotest.test_case "of_assoc" `Quick test_partial_of_assoc;
          Alcotest.test_case "subvaluation" `Quick test_subvaluation;
          Alcotest.test_case "extensions" `Quick test_extensions;
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "set/unset/restrict" `Quick
            test_set_unset_restrict;
          Alcotest.test_case "to_total" `Quick test_to_total;
          Alcotest.test_case "lexicographic order" `Quick test_compare_lex;
          Alcotest.test_case "to_formula" `Quick test_to_formula;
        ] );
      qsuite "partial-properties"
        [
          prop_string_roundtrip;
          prop_subvaluation_partial_order;
          prop_extensions_are_extensions;
          prop_merge_is_lub;
          prop_to_formula_extensions;
          prop_lex_total_order;
          prop_restrict_shrinks;
          prop_set_unset_inverse;
        ];
    ]
