type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.0f" f)
    else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf (String k);
        Buffer.add_char buf ':';
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  emit buf j;
  Buffer.contents buf

let pp ppf j = Fmt.string ppf (to_string j)

(* --- Parsing --------------------------------------------------------------- *)

(* A hand-rolled recursive-descent parser (RFC 8259). Errors carry the
   1-based line and column of the offending byte so protocol clients get
   actionable diagnostics; the depth guard keeps hostile inputs from
   overflowing the stack. *)

exception Error of int * string (* offset, message *)

let max_depth = 512

type parser_state = { input : string; mutable pos : int }

let fail st message = raise (Error (st.pos, message))

let peek st =
  if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while
    st.pos < String.length st.input
    &&
    match st.input.[st.pos] with
    | ' ' | '\t' | '\n' | '\r' -> true
    | _ -> false
  do
    advance st
  done

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> fail st (Printf.sprintf "expected '%c' but found '%c'" c d)
  | None -> fail st (Printf.sprintf "expected '%c' but found end of input" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.input
    && String.sub st.input st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

(* Encode a Unicode scalar value as UTF-8 into [buf]. *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let hex4 st =
  let digit () =
    match peek st with
    | Some ('0' .. '9' as c) -> advance st; Char.code c - Char.code '0'
    | Some ('a' .. 'f' as c) -> advance st; Char.code c - Char.code 'a' + 10
    | Some ('A' .. 'F' as c) -> advance st; Char.code c - Char.code 'A' + 10
    | _ -> fail st "expected four hex digits after \\u"
  in
  let a = digit () in
  let b = digit () in
  let c = digit () in
  let d = digit () in
  (a lsl 12) lor (b lsl 8) lor (c lsl 4) lor d

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st; Buffer.contents buf
    | Some '\\' -> (
      advance st;
      match peek st with
      | Some '"' -> advance st; Buffer.add_char buf '"'; go ()
      | Some '\\' -> advance st; Buffer.add_char buf '\\'; go ()
      | Some '/' -> advance st; Buffer.add_char buf '/'; go ()
      | Some 'b' -> advance st; Buffer.add_char buf '\b'; go ()
      | Some 'f' -> advance st; Buffer.add_char buf '\012'; go ()
      | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
      | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
      | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
      | Some 'u' ->
        advance st;
        let u = hex4 st in
        let u =
          if u >= 0xD800 && u <= 0xDBFF then begin
            (* High surrogate: require the paired low surrogate. *)
            expect st '\\';
            expect st 'u';
            let lo = hex4 st in
            if lo < 0xDC00 || lo > 0xDFFF then
              fail st "invalid low surrogate in \\u escape pair"
            else 0x10000 + (((u - 0xD800) lsl 10) lor (lo - 0xDC00))
          end
          else if u >= 0xDC00 && u <= 0xDFFF then
            fail st "unpaired low surrogate in \\u escape"
          else u
        in
        add_utf8 buf u;
        go ()
      | Some c -> fail st (Printf.sprintf "invalid escape '\\%c'" c)
      | None -> fail st "unterminated string")
    | Some c when Char.code c < 0x20 ->
      fail st "unescaped control character in string"
    | Some c -> advance st; Buffer.add_char buf c; go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let digits () =
    let d0 = st.pos in
    while
      st.pos < String.length st.input
      && match st.input.[st.pos] with '0' .. '9' -> true | _ -> false
    do
      advance st
    done;
    if st.pos = d0 then fail st "expected a digit"
  in
  if peek st = Some '-' then advance st;
  digits ();
  let is_float = ref false in
  if peek st = Some '.' then begin
    is_float := true;
    advance st;
    digits ()
  end;
  (match peek st with
  | Some ('e' | 'E') ->
    is_float := true;
    advance st;
    (match peek st with Some ('+' | '-') -> advance st | _ -> ());
    digits ()
  | _ -> ());
  let text = String.sub st.input start (st.pos - start) in
  if !is_float then Float (float_of_string text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> Float (float_of_string text) (* out of native int range *)

let rec parse_value st depth =
  if depth > max_depth then fail st "value is nested too deeply";
  skip_ws st;
  match peek st with
  | None -> fail st "expected a value but found end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> String (parse_string st)
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else
      let rec items acc =
        let item = parse_value st (depth + 1) in
        skip_ws st;
        match peek st with
        | Some ',' -> advance st; items (item :: acc)
        | Some ']' -> advance st; List (List.rev (item :: acc))
        | _ -> fail st "expected ',' or ']' in array"
      in
      items []
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else
      let field () =
        skip_ws st;
        if peek st <> Some '"' then fail st "expected a string object key";
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let value = parse_value st (depth + 1) in
        (key, value)
      in
      let rec fields acc =
        let f = field () in
        skip_ws st;
        match peek st with
        | Some ',' -> advance st; fields (f :: acc)
        | Some '}' -> advance st; Obj (List.rev (f :: acc))
        | _ -> fail st "expected ',' or '}' in object"
      in
      fields []
  | Some c -> fail st (Printf.sprintf "unexpected character '%c'" c)

let position_of_offset input offset =
  let line = ref 1 and col = ref 1 in
  for i = 0 to min offset (String.length input) - 1 do
    if input.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  (!line, !col)

let parse input =
  let st = { input; pos = 0 } in
  match
    let v = parse_value st 0 in
    skip_ws st;
    (match peek st with
    | Some _ -> fail st "trailing garbage after value"
    | None -> ());
    v
  with
  | v -> Ok v
  | exception Error (offset, message) ->
    let line, col = position_of_offset input offset in
    Error
      (Printf.sprintf "line %d, column %d (offset %d): %s" line col offset
         message)

let parse_exn input =
  match parse input with Ok v -> v | Error m -> invalid_arg m

(* --- Accessors -------------------------------------------------------------- *)

let member name = function Obj fields -> List.assoc_opt name fields | _ -> None
let string_opt = function String s -> Some s | _ -> None
let int_opt = function Int i -> Some i | _ -> None

(* --- Pull cursor ------------------------------------------------------------ *)

(* A pull-style scanner over one request line for callers that know the
   shape they expect and refuse everything else. Every primitive either
   consumes exactly what {!parse} would have consumed for the same
   production, or fails — it never accepts a spelling the recursive
   parser rejects, and the subset it does accept (escape-free strings,
   plain short integers) decodes to the identical value. That invariant
   is what lets [Proto.decode_fast] skip the AST on the hot protocol
   methods and still be byte-for-byte interchangeable with the full
   decoder; the fuzzer checks it on every generated line. *)
module Cursor = struct
  type cursor = { input : string; mutable pos : int }

  let of_string input = { input; pos = 0 }
  let pos c = c.pos

  let skip_ws c =
    while
      c.pos < String.length c.input
      &&
      match c.input.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      c.pos <- c.pos + 1
    done

  let at_end c = c.pos >= String.length c.input

  (* ['\000'] as the out-of-input sentinel: it is a control byte, so no
     grammar position treats it as valid input. *)
  let peek c = if at_end c then '\000' else c.input.[c.pos]

  let accept c ch =
    if (not (at_end c)) && c.input.[c.pos] = ch then begin
      c.pos <- c.pos + 1;
      true
    end
    else false

  (* A string literal containing no backslash and no control byte: the
     span between the quotes IS the decoded value. Anything else —
     escapes, control bytes, a missing closing quote — is left to the
     full parser. *)
  let simple_string c =
    if not (accept c '"') then None
    else begin
      let start = c.pos in
      let len = String.length c.input in
      let rec scan i =
        if i >= len then None
        else
          match c.input.[i] with
          | '"' ->
            c.pos <- i + 1;
            Some (String.sub c.input start (i - start))
          | '\\' -> None
          | ch when Char.code ch < 0x20 -> None
          | _ -> scan (i + 1)
      in
      scan start
    end

  (* At most 18 digits keeps the value inside the native [int] range on
     64-bit, so the decoded value matches [int_of_string] exactly;
     longer runs, fractions and exponents fall back. Leading zeros are
     accepted because the full parser accepts them ("007" is [Int 7]). *)
  let max_int_digits = 18

  let int c =
    let len = String.length c.input in
    let negative = accept c '-' in
    let start = c.pos in
    let rec digits i =
      if i < len && match c.input.[i] with '0' .. '9' -> true | _ -> false
      then digits (i + 1)
      else i
    in
    let stop = digits start in
    if stop = start || stop - start > max_int_digits then None
    else
      match if stop < len then c.input.[stop] else '\000' with
      | '.' | 'e' | 'E' -> None (* a float literal; not ours to decode *)
      | _ ->
        let v = ref 0 in
        for i = start to stop - 1 do
          v := (!v * 10) + (Char.code c.input.[i] - Char.code '0')
        done;
        c.pos <- stop;
        Some (if negative then - !v else !v)
  end
