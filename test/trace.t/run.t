Request-scoped tracing through the collection service. Under
--deterministic both clocks are logical (the service clock for request
latencies, the obs clock for captures), so the transcript is
byte-stable. Tracing is always on under `pet serve`: every response
carries a trace id — generated t0, t1, … when the request has none,
echoed verbatim when the client supplies "trace":ID (ok and error
responses alike). With --trace-slow 0 every capture also lands in the
slow ring.

  $ ../../bin/pet.exe serve --deterministic --trace-slow 0 <<'REQUESTS'
  > {"pet":1,"id":1,"method":"publish_rules","params":{"source":"running"}}
  > {"pet":1,"id":2,"trace":"alice-1","method":"new_session","params":{"digest":"4e572ccd978d507d92c1b8a548038954"}}
  > {"pet":1,"id":3,"trace":"alice-err","method":"submit_form","params":{"session":"s9"}}
  > {"pet":1,"id":4,"method":"trace","params":{"which":"get","id":"alice-1"}}
  > {"pet":1,"id":5,"method":"trace","params":{"which":"slow"}}
  > REQUESTS
  {"pet":1,"id":1,"trace":"t0","ok":{"digest":"4e572ccd978d507d92c1b8a548038954","cached":false,"predicates":3,"benefits":3,"mas":5,"eligible":5}}
  {"pet":1,"id":2,"trace":"alice-1","ok":{"session":"s0","digest":"4e572ccd978d507d92c1b8a548038954","cached":true}}
  {"pet":1,"id":3,"trace":"alice-err","error":{"code":"unknown_session","message":"unknown session \"s9\""}}
  {"pet":1,"id":4,"trace":"t1","ok":{"id":"alice-1","duration_s":1,"slow":true,"annotations":{"method":"new_session","backend":"compiled","digest":"4e572ccd978d507d92c1b8a548038954"},"tree":"trace alice-1 (slow) duration=1.000000s\n  method=\"new_session\"\n  backend=\"compiled\"\n  digest=\"4e572ccd978d507d92c1b8a548038954\"\n"}}
  {"pet":1,"id":5,"trace":"t2","ok":{"slow":[{"id":"t1","duration_s":1,"annotations":{"method":"trace","backend":"compiled"}},{"id":"alice-err","duration_s":1,"annotations":{"method":"submit_form","backend":"compiled","session":"s9","error":"unknown_session"}},{"id":"alice-1","duration_s":1,"annotations":{"method":"new_session","backend":"compiled","digest":"4e572ccd978d507d92c1b8a548038954"}},{"id":"t0","duration_s":19,"annotations":{"method":"publish_rules","backend":"compiled","source":"running","provider.backend":"compiled","provider.players":5}}],"evictions":{"recent":0,"slow":0}}}

The publish capture (t0) carries the compiled span tree — which phases
ran, in entry order, with exact per-entry timings (the aggregate view
is `pet profile`). Reading it back as a tree:

  $ ../../bin/pet.exe serve --deterministic --trace-slow 0 <<'REQUESTS' | python3 -c 'import json,sys; [print(json.loads(l)["ok"]["tree"], end="") for l in sys.stdin if "tree" in json.loads(l).get("ok",{})]'
  > {"pet":1,"id":1,"method":"publish_rules","params":{"source":"running"}}
  > {"pet":1,"id":2,"method":"trace","params":{"which":"get","id":"t0"}}
  > REQUESTS
  trace t0 (slow) duration=19.000000s
    method="publish_rules"
    backend="compiled"
    source="running"
    provider.backend="compiled"
    provider.players=5
  `-- provider.create              +1.000000s dur=17.000000s
      |-- engine.compile.compiled  +2.000000s dur=1.000000s
      |-- atlas.build              +4.000000s dur=11.000000s
      |   |-- algorithm1           +5.000000s dur=1.000000s
      |   |-- algorithm1           +7.000000s dur=1.000000s
      |   |-- algorithm1           +9.000000s dur=1.000000s
      |   |-- algorithm1           +11.000000s dur=1.000000s
      |   `-- algorithm1           +13.000000s dur=1.000000s
      `-- algorithm2               +16.000000s dur=1.000000s

The Chrome trace_event export is valid JSON with one complete event per
span plus one for the request:

  $ ../../bin/pet.exe serve --deterministic --trace-slow 0 <<'REQUESTS' | python3 -c 'import json,sys; chrome=[json.loads(l)["ok"]["chrome"] for l in sys.stdin if "chrome" in json.loads(l).get("ok","")]; doc=json.loads(chrome[0]); print(len(doc["traceEvents"]), "events, phases", sorted({e["ph"] for e in doc["traceEvents"]}))'
  > {"pet":1,"id":1,"method":"publish_rules","params":{"source":"running"}}
  > {"pet":1,"id":2,"method":"trace","params":{"which":"get","id":"t0","format":"chrome"}}
  > REQUESTS
  10 events, phases ['X']

The one-shot `pet trace` command captures a full workflow run (compile,
atlas, one consent report) without standing a server up:

  $ ../../bin/pet.exe trace running --deterministic
  trace t0 duration=19.000000s
    source="running"
    backend="bdd"
    provider.backend="bdd"
    provider.players=5
  `-- provider.create              +1.000000s dur=17.000000s
      |-- engine.compile.bdd       +2.000000s dur=1.000000s
      |-- atlas.build              +4.000000s dur=11.000000s
      |   |-- algorithm1           +5.000000s dur=1.000000s
      |   |-- algorithm1           +7.000000s dur=1.000000s
      |   |-- algorithm1           +9.000000s dur=1.000000s
      |   |-- algorithm1           +11.000000s dur=1.000000s
      |   `-- algorithm1           +13.000000s dur=1.000000s
      `-- algorithm2               +16.000000s dur=1.000000s
