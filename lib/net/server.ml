module Json = Pet_pet.Json
module Proto = Pet_server.Proto
module Service = Pet_server.Service
module Session = Pet_server.Session
module Shared = Pet_server.Shared
module Persist = Pet_server.Persist
module Store = Pet_store.Store
module Obs = Pet_obs.Metrics
module Log = Pet_obs.Log
module Trace = Pet_obs.Trace

(* --- Wiring -------------------------------------------------------------------

   Threads and domains:
   - the main domain runs the acceptor thread plus one thread per
     connection (blocking line I/O releases the runtime lock, so they
     interleave freely);
   - each shard is a domain running a plain queue-drain loop over its
     own [Service.t] — sessions never leave their shard, so the service
     needs no locking;
   - one writer domain ([Group_commit]) owns every WAL append.

   A request travels: connection thread → (queue) shard domain →
   (submit) writer domain → back to the shard, which writes the
   response line to the socket itself, after the commit. The reading
   and writing halves of a connection are decoupled on purpose: the
   reader can queue further requests (up to [max_outstanding]) while
   earlier ones commit, which is what keeps every shard loaded and the
   writer's batches full. A client that pipelines must correlate
   responses by their echoed "id" — responses to requests that landed
   on different shards may interleave; a lockstep client (one request
   in flight, like `pet ping`) always sees strict request order. *)

(* One live connection. The reader thread owns the descriptor's
   lifetime; shards share the write side under [wm]. [outstanding]
   counts requests queued but not yet answered: the reader blocks at
   [max_outstanding] (backpressure), and close waits for it to drain to
   zero so no shard can ever write to a recycled descriptor. *)
type conn = {
  oc : out_channel;
  wm : Mutex.t;
  cm : Mutex.t;
  cc : Condition.t;
  mutable outstanding : int;
  mutable closed : bool;
      (* reader saw EOF: watch streamers must stop producing frames so
         the outstanding budget can drain and the descriptor close *)
}

let max_outstanding = 64

type job = Request of { line : string; conn : conn } | Tick | Flight
(* [Flight] asks shard 0 to assemble one flight-recorder snapshot (its
   own service's gauges are safe to sync there) and hand it to the
   writer domain. *)

type shard = {
  index : int;
  service : Service.t;
  q : job Queue.t;
  qm : Mutex.t;
  qc : Condition.t;
  pending : Persist.event list ref;
      (* events the request being handled emitted, newest first; the
         shard flushes them to the writer before replying *)
  obs_requests : Obs.counter;
  obs_active : Obs.gauge;
  obs_queue : Obs.gauge;
  mutable stopped : bool;
  mutable domain : unit Domain.t option;
}

type t = {
  shards : shard array;
  shared : Shared.t;
  tenants : Service.compiled Pet_tenant.Tenant.t;
      (* process-wide tenant registry, shared by every shard like
         [shared]; the server owns its builder domain's lifecycle *)
  writer : Group_commit.t option;
  flight : Pet_store.Flight_log.t option;
  fenc : Pet_obs.Flight.t;
  store_h : Store.t option;  (* for WAL-frontier stamps on snapshots *)
  nowf : unit -> float;
  listen : Unix.file_descr;
  port : int;
  rr : int Atomic.t;  (* round-robin for sessionless requests *)
  conns : int Atomic.t;
  stop_flag : bool Atomic.t;
  failure : string option ref;
  fm : Mutex.t;
  fc : Condition.t;
  mutable acceptor : Thread.t option;
  mutable ticker : Thread.t option;
}

let obs_accepted = Obs.counter "pet_net_accepted_total"
let obs_conns = Obs.gauge "pet_net_connections"

(* --- Routing ------------------------------------------------------------------- *)

(* Cheap scan for a top-level ["session":"<id>"] pair without parsing
   the JSON on the connection thread — the shard parses for real. A
   false positive (the pattern inside some string value) can only route
   the request to a shard that does not know the session, which answers
   [unknown_session] exactly as a wrong id would; it cannot crash or
   cross state between shards. *)
let session_hint line =
  let key = {|"session"|} in
  let len = String.length line and klen = String.length key in
  let is_ws c = c = ' ' || c = '\t' in
  let rec skip_ws i = if i < len && is_ws line.[i] then skip_ws (i + 1) else i in
  let rec search from =
    if from + klen > len then None
    else if String.sub line from klen <> key then search (from + 1)
    else
      let i = skip_ws (from + klen) in
      if i >= len || line.[i] <> ':' then search (from + 1)
      else
        let i = skip_ws (i + 1) in
        if i >= len || line.[i] <> '"' then search (from + 1)
        else
          match String.index_from_opt line (i + 1) '"' with
          | Some j when j > i + 1 -> Some (String.sub line (i + 1) (j - i - 1))
          | _ -> search (from + 1)
  in
  search 0

let route t line =
  let shards = Array.length t.shards in
  if shards = 1 then 0
  else
    match session_hint line with
    | Some id -> Shard_map.owner ~shards id
    | None -> Atomic.fetch_and_add t.rr 1 mod shards

(* --- Failure ------------------------------------------------------------------- *)

(* A WAL failure is fatal: the shard answers the one affected client
   with an [internal] error (its state change is in memory but was never
   durable) and flags the server; [wait] returns so the driver can shut
   down. Matches the stdio server, where the same [Sys_error] kills the
   serving loop. *)
let fail t reason =
  Mutex.lock t.fm;
  let first = !(t.failure) = None in
  if first then t.failure := Some reason;
  Condition.broadcast t.fc;
  Mutex.unlock t.fm;
  (* Fatal-path flight record, written directly (the writer domain may
     be the thing that failed): the journal's last words say why. *)
  if first then
    match t.flight with
    | Some fl -> (
      try
        Pet_store.Flight_log.append fl
          (Pet_obs.Flight.meta t.fenc ~now:(t.nowf ()) ~event:"fatal"
             [ ("reason", reason) ])
      with Sys_error _ -> ())
    | None -> ()

let wait t =
  Mutex.lock t.fm;
  while !(t.failure) = None && not (Atomic.get t.stop_flag) do
    Condition.wait t.fc t.fm
  done;
  let result = match !(t.failure) with Some m -> Error m | None -> Ok () in
  Mutex.unlock t.fm;
  result

(* --- Shard domains -------------------------------------------------------------- *)

let enqueue shard job =
  Mutex.lock shard.qm;
  Queue.add job shard.q;
  Obs.set_gauge shard.obs_queue (float_of_int (Queue.length shard.q));
  Condition.signal shard.qc;
  Mutex.unlock shard.qm

let sync_active shard =
  Obs.set_gauge shard.obs_active
    (float_of_int (Service.session_counters shard.service).Session.active)

(* Assemble one flight snapshot on a shard domain (syncing that shard's
   service gauges is safe there) and queue it behind the WAL batches.
   Slow traces ride along; the encoder dedups ids, so a trace is
   journaled once no matter how many ticks see it. *)
let emit_flight t shard =
  match t.writer with
  | Some writer when t.flight <> None && Obs.enabled () ->
    let nowv = t.nowf () in
    Service.sync_gauges shard.service;
    Pet_obs.Slo.sync Service.slo ~now:nowv;
    let wal = Option.map Store.position t.store_h in
    let record = Pet_obs.Flight.snap t.fenc ?wal ~now:nowv (Obs.snapshot ()) in
    let traces = Pet_obs.Flight.slow_traces t.fenc ~now:nowv (Trace.slow ()) in
    List.iter (Group_commit.submit_flight writer) (record :: traces)
  | _ -> ()

(* Deliver a response line on the connection's write side, then release
   one slot of its outstanding budget. A write failure means the client
   went away; its remaining responses are dropped but the accounting
   still runs, so the reader can drain and close. *)
let respond conn response =
  Mutex.lock conn.wm;
  (try
     output_string conn.oc response;
     output_char conn.oc '\n';
     flush conn.oc
   with Sys_error _ -> ());
  Mutex.unlock conn.wm;
  Mutex.lock conn.cm;
  conn.outstanding <- conn.outstanding - 1;
  Condition.broadcast conn.cc;
  Mutex.unlock conn.cm

let handle_request t shard line conn =
  Obs.incr shard.obs_requests;
  let response =
    let response = Service.handle_line shard.service line in
    match t.writer with
    | None -> response
    | Some writer -> (
      match List.rev !(shard.pending) with
      | [] -> response
      | events -> (
        shard.pending := [];
        match Group_commit.submit writer events with
        | () -> response
        | exception Sys_error m ->
          let reason = "write-ahead log failure: " ^ m in
          Log.error "net.wal_failed" ~fields:[ ("reason", Trace.String m) ];
          fail t reason;
          Proto.error_response ~id:Json.Null (Proto.error Proto.Internal reason)
        ))
  in
  sync_active shard;
  respond conn response

let rec shard_loop t shard =
  Mutex.lock shard.qm;
  while Queue.is_empty shard.q && not shard.stopped do
    Condition.wait shard.qc shard.qm
  done;
  if Queue.is_empty shard.q then Mutex.unlock shard.qm (* stopped, drained *)
  else begin
    let job = Queue.pop shard.q in
    Obs.set_gauge shard.obs_queue (float_of_int (Queue.length shard.q));
    Mutex.unlock shard.qm;
    (match job with
    | Tick ->
      ignore (Service.sweep_tick ~budget:256 shard.service);
      sync_active shard
    | Flight -> emit_flight t shard
    | Request { line; conn } -> handle_request t shard line conn);
    shard_loop t shard
  end

(* --- Connection threads ----------------------------------------------------------- *)

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let contains_sub line sub =
  let n = String.length line and m = String.length sub in
  let rec go i =
    i + m <= n && (String.sub line i m = sub || go (i + 1))
  in
  go 0

(* Recognize a well-formed [watch] request without parsing anything on
   the non-watch path: a cheap substring scan gates the full decode, so
   lines that merely mention "watch" in a value decode once and take the
   normal path, and every other line is byte-for-byte untouched.
   Malformed watch requests also return [None] — the shard produces the
   same error response it always did. *)
let watch_params line =
  if not (contains_sub line "\"watch\"") then None
  else
    match Proto.decode line with
    | Ok { Proto.request = Proto.Watch { interval; frames }; _ } ->
      Some (interval, frames)
    | Ok _ | Error _ -> None

(* Stream a watch subscription: a dedicated thread re-enqueues the same
   request line every [interval], so each frame travels the ordinary
   request path (same queues, same outstanding budget, one ok-response
   per frame echoing the id). Stops after [frames] frames, when the
   reader sees EOF ([conn.closed]) or at server stop — the [closed]
   check is what lets the close path drain [outstanding] to zero. *)
let start_watch t conn line ~interval ~frames =
  let shard = t.shards.(route t line) in
  ignore
    (Thread.create
       (fun () ->
         let rec go sent =
           if not (Atomic.get t.stop_flag) then begin
             Mutex.lock conn.cm;
             while conn.outstanding >= max_outstanding && not conn.closed do
               Condition.wait conn.cc conn.cm
             done;
             let stop = conn.closed in
             if not stop then conn.outstanding <- conn.outstanding + 1;
             Mutex.unlock conn.cm;
             if not stop then begin
               enqueue shard (Request { line; conn });
               let sent = sent + 1 in
               if frames = 0 || sent < frames then begin
                 if interval > 0. then Thread.delay interval;
                 go sent
               end
             end
           end
         in
         go 0)
       ())

let conn_loop t ic conn =
  let rec go () =
    match In_channel.input_line ic with
    | None -> ()
    | Some line ->
      let line = strip_cr line in
      let trimmed = String.trim line in
      if trimmed = "" then go ()
      else if trimmed = "quit" then ()
      else if Atomic.get t.stop_flag then ()
      else begin
        (match watch_params line with
        | Some (interval, frames) ->
          start_watch t conn line ~interval ~frames
        | None ->
          let shard = t.shards.(route t line) in
          Mutex.lock conn.cm;
          while conn.outstanding >= max_outstanding do
            Condition.wait conn.cc conn.cm
          done;
          conn.outstanding <- conn.outstanding + 1;
          Mutex.unlock conn.cm;
          enqueue shard (Request { line; conn }));
        go ()
      end
  in
  go ()

let handle_conn t fd =
  Atomic.incr t.conns;
  Obs.set_gauge obs_conns (float_of_int (Atomic.get t.conns));
  let ic = Unix.in_channel_of_descr fd in
  let conn =
    {
      oc = Unix.out_channel_of_descr fd;
      wm = Mutex.create ();
      cm = Mutex.create ();
      cc = Condition.create ();
      outstanding = 0;
      closed = false;
    }
  in
  Fun.protect
    ~finally:(fun () ->
      (* Wait for every queued request's response before closing: a
         shard must never write to a descriptor that may have been
         recycled by a newer accept. Raising [closed] first stops any
         watch streamer from producing further frames, so the budget
         can actually reach zero. *)
      Mutex.lock conn.cm;
      conn.closed <- true;
      Condition.broadcast conn.cc;
      while conn.outstanding > 0 do
        Condition.wait conn.cc conn.cm
      done;
      Mutex.unlock conn.cm;
      Atomic.decr t.conns;
      Obs.set_gauge obs_conns (float_of_int (Atomic.get t.conns));
      (* Exactly one close: channels and [conn.fd] share the
         descriptor, and the reader thread is its sole owner. *)
      close_out_noerr conn.oc)
    (fun () ->
      try conn_loop t ic conn with Sys_error _ | End_of_file -> ())

let acceptor_loop t =
  let rec go () =
    match Unix.accept ~cloexec:true t.listen with
    | fd, _ ->
      Obs.incr obs_accepted;
      ignore (Thread.create (fun () -> handle_conn t fd) ());
      go ()
    | exception Unix.Unix_error (EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ ->
      (* [stop] shuts the listener down to wake this thread; anything
         else on a closed/shut socket also means we are done. *)
      ()
  in
  go ()

let ticker_loop t interval =
  while not (Atomic.get t.stop_flag) do
    Thread.delay interval;
    if not (Atomic.get t.stop_flag) then begin
      Array.iter (fun shard -> enqueue shard Tick) t.shards;
      (* One flight snapshot per sweep, assembled on shard 0. *)
      if t.flight <> None then enqueue t.shards.(0) Flight
    end
  done

(* --- Lifecycle -------------------------------------------------------------------- *)

let start ?backend ?compiled ?payoff ?capacity ?ttl ?(tenant_quota = 0)
    ?resolve ?store ?(recovery = []) ?(sweep_interval = 1.) ?flight ~domains
    ~port ~now () =
  let domains = max 1 domains in
  let shared = Shared.create () in
  let tenants = Pet_tenant.Tenant.create ~quota:tenant_quota () in
  let durable = store <> None in
  let shards =
    Array.init domains (fun index ->
        let owns id = Shard_map.owner ~shards:domains id = index in
        let labels = [ ("domain", string_of_int index) ] in
        {
          index;
          service =
            Service.create ?backend ?compiled ?payoff ?capacity ?ttl ?resolve
              ~owns ~shared ~tenants ~durable ~now ();
          q = Queue.create ();
          qm = Mutex.create ();
          qc = Condition.create ();
          pending = ref [];
          obs_requests = Obs.counter ~labels "pet_net_shard_requests_total";
          obs_active = Obs.gauge ~labels "pet_net_shard_sessions_active";
          obs_queue = Obs.gauge ~labels "pet_net_shard_queue_depth";
          stopped = false;
          domain = None;
        })
  in
  (* Replay routes each event to the shard that will serve it — the id
     hash is stable across runs — before any domain is spawned, so no
     locking is needed. Rule sets and grants go to shard 0: texts and
     ledgers land in the shared state either way, and any other shard
     recompiles lazily from the shared text on first touch. *)
  List.iter
    (fun event ->
      let target =
        match event with
        | Persist.Rules _ | Persist.Tenant_published _ | Persist.Grant _ -> 0
        | Persist.Session_created { id; _ }
        | Persist.Session_chosen { id; _ }
        | Persist.Session_submitted { id; _ }
        | Persist.Session_revoked { id; _ }
        | Persist.Session_expiry { id; _ } ->
          Shard_map.owner ~shards:domains id
      in
      match Service.apply_event shards.(target).service event with
      | Ok () -> ()
      | Error reason ->
        Log.error "store.replay_error"
          ~fields:[ ("reason", Trace.String reason) ])
    recovery;
  (* Horizons that passed while the process was down take effect before
     the first request. The consent store is shared, so one pass from
     any shard covers them all. *)
  ignore (Service.apply_horizons shards.(0).service);
  (match store with
  | None -> ()
  | Some _ ->
    Array.iter
      (fun shard ->
        Service.set_sink shard.service
          {
            Persist.emit =
              (fun event -> shard.pending := event :: !(shard.pending));
          })
      shards);
  match
    let fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
    Unix.setsockopt fd SO_REUSEADDR true;
    Unix.bind fd (ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen fd 128;
    fd
  with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "cannot listen on port %d: %s" port
             (Unix.error_message e))
  | listen ->
    let port =
      match Unix.getsockname listen with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    let t =
      {
        shards;
        shared;
        tenants;
        writer =
          Option.map (Group_commit.start ~batch_target:domains ?flight) store;
        flight;
        fenc = Pet_obs.Flight.create ();
        store_h = store;
        nowf = now;
        listen;
        port;
        rr = Atomic.make 0;
        conns = Atomic.make 0;
        stop_flag = Atomic.make false;
        failure = ref None;
        fm = Mutex.create ();
        fc = Condition.create ();
        acceptor = None;
        ticker = None;
      }
    in
    Array.iter
      (fun shard ->
        shard.domain <- Some (Domain.spawn (fun () -> shard_loop t shard)))
      t.shards;
    t.acceptor <- Some (Thread.create (fun () -> acceptor_loop t) ());
    if sweep_interval > 0. then
      t.ticker <- Some (Thread.create (fun () -> ticker_loop t sweep_interval) ());
    Obs.set_gauge
      (Obs.gauge ~help:"Shard domains serving this process." "pet_net_domains")
      (float_of_int domains);
    Log.info "net.listening"
      ~fields:
        [ ("port", Trace.Int port); ("domains", Trace.Int domains) ];
    (match flight with
    | Some fl -> (
      try
        Pet_store.Flight_log.append fl
          (Pet_obs.Flight.meta t.fenc ~now:(now ()) ~event:"start"
             [
               ("transport", "tcp");
               ("domains", string_of_int domains);
               ("port", string_of_int port);
             ])
      with Sys_error _ -> ())
    | None -> ());
    Ok t

let port t = t.port

let stop t =
  if not (Atomic.exchange t.stop_flag true) then begin
    Mutex.lock t.fm;
    Condition.broadcast t.fc;
    Mutex.unlock t.fm;
    (* Shutting the listener down (not just closing it) wakes the
       acceptor blocked in [accept]. *)
    (try Unix.shutdown t.listen Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    Option.iter Thread.join t.acceptor;
    t.acceptor <- None;
    (try Unix.close t.listen with Unix.Unix_error _ -> ());
    Array.iter
      (fun shard ->
        Mutex.lock shard.qm;
        shard.stopped <- true;
        Condition.broadcast shard.qc;
        Mutex.unlock shard.qm)
      t.shards;
    Array.iter
      (fun shard ->
        Option.iter Domain.join shard.domain;
        shard.domain <- None)
      t.shards;
    Option.iter Group_commit.stop t.writer;
    Pet_tenant.Tenant.stop t.tenants;
    Option.iter Thread.join t.ticker;
    t.ticker <- None
  end

(* The at-exit dump: lifecycle record, any slow traces the periodic
   ticks missed, and a final delta snapshot. Meant to run after {!stop}
   (domains joined, so syncing shard 0's gauges is race-free); the
   fatal-path record is written by [fail] at the moment of failure. *)
let flight_dump t ~event =
  match t.flight with
  | None -> ()
  | Some fl -> (
    try
      let nowv = t.nowf () in
      if Atomic.get t.stop_flag then Service.sync_gauges t.shards.(0).service;
      let records =
        Pet_obs.Flight.meta t.fenc ~now:nowv ~event []
        :: Pet_obs.Flight.slow_traces t.fenc ~now:nowv (Trace.slow ())
        @
        if Obs.enabled () then
          [
            Pet_obs.Flight.snap t.fenc
              ?wal:(Option.map Store.position t.store_h)
              ~now:nowv (Obs.snapshot ());
          ]
        else []
      in
      Pet_store.Flight_log.append_batch fl records
    with Sys_error _ -> ())

let batch_stats t = Option.map Group_commit.stats t.writer

let session_totals t =
  Array.fold_left
    (fun (active, created, expired) shard ->
      let c = Service.session_counters shard.service in
      ( active + c.Session.active,
        created + c.Session.created,
        expired + c.Session.expired ))
    (0, 0, 0) t.shards

let shard_services t = Array.map (fun shard -> shard.service) t.shards
