module B = Pet_bdd.Bdd
module F = Pet_logic.Formula
module Universe = Pet_valuation.Universe
module Partial = Pet_valuation.Partial
module Exposure = Pet_rules.Exposure
module Engine = Pet_rules.Engine
module Rule = Pet_rules.Rule

type mas_stats = {
  mas : Partial.t;
  benefits : string list;
  potential : int;
  forced : int;
  po_blank_forced : int;
  po_blank_potential : int;
}

type t = {
  stats : mas_stats list;
  valuation_count : int;
  choice_distribution : (int * int) list;
  regions : (int * int list) list;
      (* player count and ascending MAS indices of each region with an
         identical, non-empty choice set *)
}

let max_combos = 4096

(* A candidate MAS together with the pre-closure conjunction unions that
   generate it (several combos can close to the same valuation). *)
type candidate = { w : Partial.t; pre : Partial.t list }

let conjunction_restriction xp c =
  Partial.of_assoc xp
    (List.map (fun (l : Pet_logic.Literal.t) -> (l.var, l.sign)) c)

(* All merged conjunction products for the benefit set; conflicting
   combos are dropped (no valuation can satisfy them jointly). *)
let combos exposure benefit_names =
  let xp = Exposure.xp exposure in
  let per_benefit =
    List.map
      (fun b ->
        List.map (conjunction_restriction xp)
          (Rule.conjunctions (Exposure.rule_for exposure b)))
      benefit_names
  in
  let total =
    List.fold_left (fun acc l -> acc * List.length l) 1 per_benefit
  in
  if total > max_combos then
    invalid_arg "Symbolic.build: conjunction product too large";
  List.fold_left
    (fun acc restrictions ->
      List.concat_map
        (fun w ->
          List.filter_map (fun r -> Partial.merge w r) restrictions)
        acc)
    [ Partial.empty xp ] per_benefit
  |> List.sort_uniq Partial.compare

let build ?(mode = Algorithm1.Chain) exposure =
  let close =
    match mode with
    | Algorithm1.Chain -> fun engine w ->
        ignore engine;
        Algorithm1.chain_close exposure w
    | Algorithm1.Entail ->
      fun engine w ->
        List.fold_left
          (fun acc (p, value) -> Partial.set acc p value)
          w
          (Engine.deduced_literals engine w)
    | Algorithm1.Exact ->
      invalid_arg "Symbolic.build: Exact mode is not supported"
  in
  let xp = Exposure.xp exposure in
  let xb = Exposure.xb exposure in
  let np = Universe.size xp in
  let nb = Universe.size xb in
  if nb > 16 then invalid_arg "Symbolic.build: too many benefits";
  let engine = Engine.create ~backend:Engine.Bdd exposure in
  let man = B.man () in
  let rec compile = function
    | F.True -> B.one
    | F.False -> B.zero
    | F.Var x -> B.var man (Universe.index xp x)
    | F.Not f -> B.neg man (compile f)
    | F.And (a, b) -> B.conj man (compile a) (compile b)
    | F.Or (a, b) -> B.disj man (compile a) (compile b)
    | F.Implies (a, b) -> B.imp man (compile a) (compile b)
    | F.Iff (a, b) -> B.iff man (compile a) (compile b)
  in
  let realistic = compile (Exposure.constraints_formula exposure) in
  let triggers =
    List.map
      (fun (r : Rule.t) -> compile (Pet_logic.Dnf.to_formula r.dnf))
      (Exposure.rules exposure)
  in
  let cube w =
    List.fold_left
      (fun acc (name, value) ->
        let v = Universe.index xp name in
        B.conj man acc (if value then B.var man v else B.nvar man v))
      B.one (Partial.bindings w)
  in
  let pattern fbits =
    List.fold_left
      (fun acc (i, trigger) ->
        if (fbits lsr i) land 1 = 1 then B.conj man acc trigger
        else B.conj man acc (B.neg man trigger))
      B.one
      (List.mapi (fun i trigger -> (i, trigger)) triggers)
  in
  let benefit_names fbits =
    List.filteri (fun i _ -> (fbits lsr i) land 1 = 1) (Universe.names xb)
  in
  (* Global MAS discovery per benefit set. *)
  let collect_for fbits =
    let names = benefit_names fbits in
    let candidates =
      List.filter_map
        (fun w0 ->
          match close engine w0 with
          | w
            when List.equal String.equal (Engine.benefits engine w) names ->
            Some (w0, w)
          | _ -> None
          | exception Invalid_argument _ -> None)
        (combos exposure names)
    in
    (* Group pre-closure combos by their closed candidate. *)
    let grouped =
      List.fold_left
        (fun acc (w0, w) ->
          match List.partition (fun c -> Partial.equal c.w w) acc with
          | [ c ], rest -> { c with pre = w0 :: c.pre } :: rest
          | _, rest -> { w; pre = [ w0 ] } :: rest)
        [] candidates
    in
    let usable c =
      List.fold_left (fun acc w0 -> B.disj man acc (cube w0)) B.zero c.pre
    in
    let pat = pattern fbits in
    List.filter_map
      (fun c ->
        (* Some realistic valuation with exactly these benefits must use
           this candidate while no strictly smaller candidate of the same
           benefit set is available to it. *)
        let excluded =
          List.fold_left
            (fun acc c' ->
              if Partial.strict_subvaluation c'.w c.w then
                B.disj man acc (usable c')
              else acc)
            B.zero grouped
        in
        let survives =
          B.conj man realistic
            (B.conj man pat (B.conj man (usable c) (B.neg man excluded)))
        in
        if B.is_unsat survives then None
        else Some (c.w, names, B.conj man (cube c.w) pat))
      grouped
  in
  let all_mas =
    List.concat_map
      (fun fbits -> collect_for fbits)
      (List.filter (( <> ) 0) (List.init (1 lsl nb) Fun.id))
    |> List.sort (fun (a, _, _) (b, _, _) -> Partial.compare_lex a b)
  in
  (* Forced sets via prefix/suffix unions of the player sets. *)
  let players = Array.of_list (List.map (fun (_, _, p) -> p) all_mas) in
  let m = Array.length players in
  let prefix = Array.make (m + 1) B.zero in
  let suffix = Array.make (m + 1) B.zero in
  for i = 0 to m - 1 do
    prefix.(i + 1) <- B.disj man prefix.(i) players.(i)
  done;
  for i = m - 1 downto 0 do
    suffix.(i) <- B.disj man suffix.(i + 1) players.(i)
  done;
  let count set = B.count_models man ~nvars:np set in
  (* PO_blank of a player set: blanks of the MAS on which the set is not
     constant — both cofactors non-empty. *)
  let po_blank w set =
    if B.is_unsat set then 0
    else
      List.fold_left
        (fun acc name ->
          let v = Universe.index xp name in
          if
            (not (B.is_unsat (B.restrict man set v true)))
            && not (B.is_unsat (B.restrict man set v false))
          then acc + 1
          else acc)
        0 (Partial.blanks w)
  in
  let stats =
    List.mapi
      (fun i (w, names, player_set) ->
        let others = B.disj man prefix.(i) suffix.(i + 1) in
        let forced_set = B.conj man player_set (B.neg man others) in
        {
          mas = w;
          benefits = names;
          potential = count player_set;
          forced = count forced_set;
          po_blank_forced = po_blank w forced_set;
          po_blank_potential = po_blank w player_set;
        })
      all_mas
  in
  (* Choice distribution by region splitting: fold the player sets over
     an initially undivided space, keeping only non-empty regions; the
     number of regions is bounded by the number of distinct choice sets,
     not by 2^|MAS|. *)
  let split_regions =
    snd
      (Array.fold_left
         (fun (i, regions) v_m ->
           ( i + 1,
             List.concat_map
               (fun (set, choices) ->
                 let inside = B.conj man set v_m in
                 let outside = B.conj man set (B.neg man v_m) in
                 List.filter
                   (fun (r, _) -> not (B.is_unsat r))
                   [ (inside, i :: choices); (outside, choices) ])
               regions ))
         (0, [ (B.one, []) ])
         players)
  in
  let regions =
    List.filter_map
      (fun (set, choices) ->
        match choices with
        | [] -> None
        | _ -> Some (count set, List.rev choices))
      split_regions
  in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (n, choices) ->
      let k = List.length choices in
      Hashtbl.replace tbl k (n + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    regions;
  let choice_distribution =
    Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  { stats; valuation_count = count suffix.(0); choice_distribution; regions }

let mas_count t = List.length t.stats
let choice_distribution t = t.choice_distribution
let stats t = t.stats
let valuation_count t = t.valuation_count

let domain_size_range t =
  List.fold_left
    (fun (lo, hi) s ->
      let d = Partial.domain_size s.mas in
      (min lo d, max hi d))
    (max_int, 0) t.stats

type equilibrium = { crowds : int list; nash : bool }

(* Bloc Algorithm 2 under PO_SM: a region's members are payoff-symmetric
   (the payoff of joining a move depends only on its committed count), so
   whole regions commit together: forced regions play outright, then any
   region with a strictly dominant move commits and every count is
   re-evaluated; deadlocks resolve towards the globally best score with
   the lexicographically smallest move. *)
let equilibrium t =
  let nm = List.length t.stats in
  let committed = Array.make nm 0 in
  let moves = ref [] in
  let commit n choices m =
    committed.(m) <- committed.(m) + n;
    moves := (choices, m) :: !moves
  in
  let pending = ref [] in
  List.iter
    (fun (n, choices) ->
      match choices with
      | [ m ] -> commit n choices m
      | _ -> pending := (n, choices) :: !pending)
    t.regions;
  pending := List.rev !pending;
  (* A region's best move: highest committed count, ties to the
     lexicographically first MAS; dominant when strict. *)
  let best choices =
    let rec go best dominant = function
      | [] -> (best, dominant)
      | m :: rest ->
        let bm, bs = best in
        if committed.(m) > bs then go (m, committed.(m)) true rest
        else if committed.(m) = bs && m <> bm then go best false rest
        else go best dominant rest
    in
    match choices with
    | [] -> assert false
    | m :: rest -> go (m, committed.(m)) true rest
  in
  while !pending <> [] do
    let ((n, choices) as region), m =
      match
        List.find_opt (fun (_, choices) -> snd (best choices)) !pending
      with
      | Some ((_, choices) as r) -> (r, fst (fst (best choices)))
      | None ->
        let take acc ((_, choices) as r) =
          let (m, s), _ = best choices in
          match acc with
          | Some (_, m', s') when s' > s || (s' = s && m' <= m) -> acc
          | _ -> Some (r, m, s)
        in
        let r, m, _ = Option.get (List.fold_left take None !pending) in
        (r, m)
    in
    commit n choices m;
    pending := List.filter (fun r -> r != region) !pending
  done;
  (* Individual-deviation Nash check under PO_SM: a member of a region
     committed to [m] gets committed(m) - 1 and would get committed(m')
     by unilaterally moving. *)
  let nash =
    List.for_all
      (fun (choices, m) ->
        List.for_all
          (fun m' -> m' = m || committed.(m') <= committed.(m) - 1)
          choices)
      !moves
  in
  { crowds = Array.to_list committed; nash }

let pp_summary ppf t =
  let lo, hi = domain_size_range t in
  Fmt.pf ppf "@[<v>Number of MAS: %d@,Number of valuations: %d@,"
    (mas_count t) (valuation_count t);
  Fmt.pf ppf "Number of predicates per MAS: %d to %d@," lo hi;
  List.iter
    (fun (k, n) ->
      Fmt.pf ppf "Number of valuations with %d MAS: %d@," k n)
    t.choice_distribution;
  List.iter
    (fun s ->
      Fmt.pf ppf "%s: potential %d, forced %d, PO_blank %d (%d)@,"
        (Partial.to_string s.mas) s.potential s.forced s.po_blank_forced
        s.po_blank_potential)
    t.stats;
  Fmt.pf ppf "@]"
