lib/casestudies/hcov.mli: Pet_pet Pet_rules Pet_valuation
