lib/casestudies/loan.mli: Pet_pet Pet_rules Pet_valuation
