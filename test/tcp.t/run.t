The TCP transport: `pet serve --tcp` serves the same line protocol as
--stdio over localhost, with sessions sharded across worker domains by
id hash and every WAL append group-committed through a single writer
domain. `pet ping` is the matching smoke client: it forwards stdin
lines and prints response lines; a bare `quit` closes the connection.
Under --deterministic the shards share one logical clock and a
sequential client sees stable ids and trace ids.

  $ ../../bin/pet.exe serve --tcp 0 --domains 4 --deterministic --data-dir data --port-file port 2>server.log & SRV=$!
  $ for i in $(seq 1 100); do [ -s port ] && break; sleep 0.1; done

A full respondent flow over one connection — publish, enroll, report,
choose, submit, audit. The session id is minted by whichever shard the
round-robin router picked; every later request routes to that shard by
the id embedded in the line:

  $ ../../bin/pet.exe ping 127.0.0.1:$(cat port) <<'REQUESTS'
  > {"pet":1,"id":1,"method":"publish_rules","params":{"source":"running"}}
  > {"pet":1,"id":2,"method":"new_session","params":{"source":"running"}}
  > {"pet":1,"id":3,"method":"get_report","params":{"session":"s1","valuation":"101"}}
  > {"pet":1,"id":4,"method":"choose_option","params":{"session":"s1","option":0}}
  > {"pet":1,"id":5,"method":"submit_form","params":{"session":"s1"}}
  > {"pet":1,"id":6,"method":"audit","params":{"digest":"4e572ccd978d507d92c1b8a548038954"}}
  > quit
  > REQUESTS
  {"pet":1,"id":1,"trace":"t0","ok":{"digest":"4e572ccd978d507d92c1b8a548038954","cached":false,"predicates":3,"benefits":3,"mas":5,"eligible":5}}
  {"pet":1,"id":2,"trace":"t1","ok":{"session":"s1","digest":"4e572ccd978d507d92c1b8a548038954","cached":false}}
  {"pet":1,"id":3,"trace":"t2","ok":{"valuation":"101","granted":["b1","b2"],"options":[{"mas":"10_","benefits":["b1","b2"],"po_blank":0,"po_sm":0,"po_weighted":null,"published":[{"p1":true},{"p2":false}],"deduced":[{"p3":true}],"protected":[],"crowd":1,"recommended":true}],"minimization_ratio":0.33333333333333331}}
  {"pet":1,"id":4,"trace":"t3","ok":{"mas":"10_","benefits":["b1","b2"]}}
  {"pet":1,"id":5,"trace":"t4","ok":{"grant":0,"form":"10_","benefits":["b1","b2"]}}
  {"pet":1,"id":6,"trace":"t5","ok":{"digest":"4e572ccd978d507d92c1b8a548038954","records":1,"stored_values":2,"failures":[]}}

Consent revocation rides the same wire: the line routes to the shard
owning s1, the tombstone is group-committed through the writer domain
like every other append, and the reply only leaves after the fsync:

  $ ../../bin/pet.exe ping 127.0.0.1:$(cat port) <<'REQUESTS'
  > {"pet":1,"id":7,"method":"revoke","params":{"session":"s1"}}
  > quit
  > REQUESTS
  {"pet":1,"id":7,"trace":"t6","ok":{"session":"s1","revoked":true,"grant":0}}

The replies above were only sent after their events were fsynced, so
kill -9 loses nothing acknowledged:

  $ kill -9 $SRV
  $ wait $SRV 2>/dev/null
  [137]
  $ ../../bin/pet.exe store verify data
  ok: 6 record(s) in 1 file(s); every checksum holds and no decoded event carries a raw valuation (R2 on disk)

The offline compliance audit replays the same bytes and proves the
tombstone: every property holds, including that nothing in the log
re-establishes s1's data after its revocation:

  $ ../../bin/pet.exe audit data
  audit data: 1 file, 6 records
    integrity   PASS (6 checked)
    r2          PASS (6 checked)
    minimality  PASS (2 checked)
    revocation  PASS (4 checked)
    expiry      PASS (4 checked)
    replay      PASS (4 checked)
  result: PASS

A restart recovers the archive and the tombstone onto the shard that
owns them — the revoked session is gone, not resurrected — and new
ids continue past the recovered ones:

  $ rm -f port
  $ ../../bin/pet.exe serve --tcp 0 --domains 4 --deterministic --data-dir data --port-file port 2>server2.log & SRV=$!
  $ for i in $(seq 1 100); do [ -s port ] && break; sleep 0.1; done
  $ ../../bin/pet.exe ping localhost:$(cat port) <<'REQUESTS'
  > {"pet":1,"id":1,"method":"audit","params":{"digest":"4e572ccd978d507d92c1b8a548038954"}}
  > {"pet":1,"id":2,"method":"revoke","params":{"session":"s1"}}
  > {"pet":1,"id":3,"method":"new_session","params":{"source":"running"}}
  > quit
  > REQUESTS
  {"pet":1,"id":1,"trace":"t0","ok":{"digest":"4e572ccd978d507d92c1b8a548038954","records":1,"stored_values":0,"revoked":1,"failures":[]}}
  {"pet":1,"id":2,"trace":"t1","error":{"code":"bad_state","message":"cannot revoke session \"s1\": consent was already revoked"}}
  {"pet":1,"id":3,"trace":"t2","ok":{"session":"s5","digest":"4e572ccd978d507d92c1b8a548038954","cached":true}}
  $ kill -9 $SRV
  $ wait $SRV 2>/dev/null
  [137]
  $ grep -c "net.listening" server2.log
  1
