lib/casestudies/hcov.ml: Lazy List Pet_pet Pet_rules Pet_valuation String
