module Universe = Pet_valuation.Universe
module Total = Pet_valuation.Total

let predicates =
  [
    ("p1", "aged 25 or over");
    ("p2", "aged 18 to 24");
    ("p3", "worked two of the last three years");
    ("p4", "single parent");
    ("p5", "pregnant");
    ("p6", "French resident");
    ("p7", "stable residency (9 months a year)");
    ("p8", "means below the RSA ceiling");
    ("p9", "student");
    ("p10", "on sabbatical or parental leave");
    ("p11", "early retirement pension");
    ("p12", "salaried activity income this quarter");
    ("p13", "self-employed activity income this quarter");
    ("p14", "no declared partner");
    ("p15", "housed free of charge");
    ("p16", "receives housing aid");
    ("p17", "dependent children");
  ]

let benefits =
  [
    ("b1", "RSA base income");
    ("b2", "lone-parent increase");
    ("b3", "activity bonus");
    ("b4", "housing supplement");
  ]

let spec =
  {|form p1 p2 p3 p4 p5 p6 p7 p8 p9 p10 p11 p12 p13 p14 p15 p16 p17
benefits b1 b2 b3 b4
# Base RSA: an entry path (25+ not a student / young worker not a
# student / single parent / pregnant) plus residency, means test and no
# excluding status.
rule b1 := ((p1 & !p9) | (p2 & p3 & !p9) | p4 | p5) & p6 & p7 & p8 & !p10 & !p11
# Lone-parent increase: single parents, or mothers-to-be without a
# declared partner, passing the same residency and means conditions.
rule b2 := (p4 | (p5 & p14)) & p6 & p7 & p8 & !p10 & !p11
# Activity bonus: a base path plus salaried or self-employed activity
# income.
rule b3 := ((p1 & !p9) | (p2 & p3 & !p9) | p4 | p5) & (p12 | p13) & p6 & p7 & p8 & !p10 & !p11
# Housing supplement: a base path, for renters without housing aid or for
# families with dependent children not already on housing aid.
rule b4 := ((p1 & !p9) | (p2 & p3 & !p9) | p4 | p5) & ((!p15 & !p16) | (p17 & !p16)) & p6 & p7 & p8 & !p10 & !p11
# Consistency (both directions are listed so that forward chaining, the
# paper's deduction mode, sees each).
constraint p1 -> !p2
constraint p2 -> !p1
constraint p4 -> p17 & p14
constraint p5 -> !p10
constraint p15 -> !p16
constraint p16 -> !p15
constraint p11 -> !p12 & !p13
constraint p12 -> !p11
constraint p13 -> !p11
|}

let exposure () = Pet_rules.Spec.parse_exn spec

let universe = lazy (Universe.of_names (List.map fst predicates))

(* Single working mother, 30, salaried plus self-employed income, renting
   without housing aid. *)
let sample_applicant () =
  Total.of_string (Lazy.force universe) "10010111000111001"

module Form = Pet_pet.Form

let form () =
  let int_answer get key =
    match get key with
    | Form.Aint n -> n
    | Form.Abool _ | Form.Achoice _ -> assert false
  in
  let bool_answer get key =
    match get key with
    | Form.Abool b -> b
    | Form.Aint _ | Form.Achoice _ -> assert false
  in
  let yes_no key text = { Form.key; text; kind = Form.Kbool } in
  let ask_int key text = { Form.key; text; kind = Form.Kint } in
  let direct name key description =
    { Form.name; description; compute = (fun get -> bool_answer get key) }
  in
  Form.create ~exposure:(exposure ())
    ~questions:
      [
        ask_int "age" "How old are you?";
        yes_no "worked" "Have you worked two of the last three years?";
        yes_no "single_parent" "Are you raising your children alone?";
        yes_no "pregnant" "Are you pregnant?";
        yes_no "resident" "Do you reside in France?";
        ask_int "months_residence" "How many months a year do you live here?";
        ask_int "means" "Household resources last quarter (euros)?";
        yes_no "student" "Are you a student?";
        yes_no "sabbatical" "Are you on sabbatical or parental leave?";
        yes_no "early_retirement" "Do you draw an early-retirement pension?";
        ask_int "salaried_income" "Salaried income this quarter (euros)?";
        ask_int "self_employed_income"
          "Self-employed income this quarter (euros)?";
        yes_no "partner" "Do you declare a partner?";
        yes_no "free_housing" "Are you housed free of charge?";
        yes_no "housing_aid" "Do you receive housing aid?";
        ask_int "children" "Number of dependent children?";
      ]
    ~predicates:
      [
        {
          Form.name = "p1";
          description = "aged 25 or over";
          compute = (fun get -> int_answer get "age" >= 25);
        };
        {
          Form.name = "p2";
          description = "aged 18 to 24";
          compute =
            (fun get ->
              let a = int_answer get "age" in
              a >= 18 && a < 25);
        };
        direct "p3" "worked" "worked two of the last three years";
        direct "p4" "single_parent" "single parent";
        direct "p5" "pregnant" "pregnant";
        direct "p6" "resident" "French resident";
        {
          Form.name = "p7";
          description = "stable residency";
          compute = (fun get -> int_answer get "months_residence" >= 9);
        };
        {
          Form.name = "p8";
          description = "means below the RSA ceiling";
          compute = (fun get -> int_answer get "means" <= 1971);
        };
        direct "p9" "student" "student";
        direct "p10" "sabbatical" "on sabbatical or parental leave";
        direct "p11" "early_retirement" "early retirement pension";
        {
          Form.name = "p12";
          description = "salaried activity income";
          compute = (fun get -> int_answer get "salaried_income" > 0);
        };
        {
          Form.name = "p13";
          description = "self-employed activity income";
          compute = (fun get -> int_answer get "self_employed_income" > 0);
        };
        {
          Form.name = "p14";
          description = "no declared partner";
          compute = (fun get -> not (bool_answer get "partner"));
        };
        direct "p15" "free_housing" "housed free of charge";
        direct "p16" "housing_aid" "receives housing aid";
        {
          Form.name = "p17";
          description = "dependent children";
          compute = (fun get -> int_answer get "children" > 0);
        };
      ]
