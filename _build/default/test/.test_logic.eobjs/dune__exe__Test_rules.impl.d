test/test_rules.ml: Alcotest Fmt List Option Pet_casestudies Pet_logic Pet_rules Pet_valuation Printf QCheck2 QCheck_alcotest String
