lib/logic/cnf.ml: Fmt Formula List Literal Nnf Stdlib
