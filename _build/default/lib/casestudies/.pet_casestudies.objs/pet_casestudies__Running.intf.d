lib/casestudies/running.mli: Pet_pet Pet_rules Pet_valuation
