(** Total [Omega]-valuations (Definition 3.3): functions from a universe
    to [{0, 1}], bit-packed. Bit [i] holds the value of the universe's
    [i]-th variable. *)

type t

val universe : t -> Universe.t
val bits : t -> int

val of_bits : Universe.t -> int -> t
(** @raise Invalid_argument when bits outside the universe are set. *)

val make : Universe.t -> (string -> bool) -> t
val of_string : Universe.t -> string -> t
(** Parse e.g. ["011"]; the string length must equal the universe size.
    @raise Invalid_argument on malformed input. *)

val value : t -> string -> bool
(** @raise Not_found on unknown names. *)

val value_at : t -> int -> bool
val rho : t -> string -> bool
(** The valuation as an assignment function usable by {!Pet_logic.Formula.eval}. *)

val all : Universe.t -> t list
(** All [2^n] valuations, in increasing bit order. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Total order: by bit pattern. Only valuations over equal universes may
    be compared (unchecked for speed; callers keep universes consistent). *)

val to_string : t -> string
(** E.g. ["011"], first variable leftmost. *)

val pp : t Fmt.t
