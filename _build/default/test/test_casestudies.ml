(* Paper-oracle tests: every concrete number and example of Section 5 —
   Tables 1-3 for H-cov, the Alice & Bob walkthrough, the minimization
   ratios, the solidarity claim of Section 7 — plus regression pins for
   the synthetic RSA scenario (see EXPERIMENTS.md for its calibration
   against Tables 2 and 4). *)

module Universe = Pet_valuation.Universe
module Total = Pet_valuation.Total
module Partial = Pet_valuation.Partial
module Exposure = Pet_rules.Exposure
module Engine = Pet_rules.Engine
module A1 = Pet_minimize.Algorithm1
module Atlas = Pet_minimize.Atlas
module Profile = Pet_game.Profile
module Payoff = Pet_game.Payoff
module Strategy = Pet_game.Strategy
module Equilibrium = Pet_game.Equilibrium
module Deduction = Pet_game.Deduction
module Solidarity = Pet_game.Solidarity
module Hcov = Pet_casestudies.Hcov
module Rsa = Pet_casestudies.Rsa

let hcov_atlas =
  lazy (Atlas.build (Engine.create ~backend:Engine.Bdd (Hcov.exposure ())))

let rsa_atlas =
  lazy (Atlas.build (Engine.create ~backend:Engine.Bdd (Rsa.exposure ())))


(* --- H-cov: Table 2 ---------------------------------------------------------- *)

let test_hcov_table2 () =
  let atlas = Lazy.force hcov_atlas in
  Alcotest.(check int) "6 MAS" 6 (Atlas.mas_count atlas);
  Alcotest.(check int) "1560 valuations" 1560 (Atlas.player_count atlas);
  Alcotest.(check (pair int int)) "2 to 6 predicates per MAS" (2, 6)
    (Atlas.domain_size_range atlas);
  Alcotest.(check (list (pair int int))) "choice distribution"
    [ (1, 1272); (2, 280); (3, 8) ]
    (Atlas.choice_distribution atlas)

let test_hcov_mas_strings () =
  let atlas = Lazy.force hcov_atlas in
  let mine =
    List.sort String.compare
      (List.map
         (fun (c : A1.choice) -> Partial.to_string c.A1.mas)
         (Atlas.mas_list atlas))
  in
  Alcotest.(check (list string)) "table 3 MAS"
    (List.sort String.compare Hcov.table3_mas)
    mine

(* --- H-cov: Table 3 ---------------------------------------------------------- *)

(* Expected rows: MAS, potential players, forced players, equilibrium
   crowd, final PO_blank, (forced, max) PO_blank. The PO_SM column of the
   paper's table reports crowd sizes (k); Definition 4.5's payoff is
   k - 1, checked separately. *)
let table3 =
  [
    ("0__________1", 1024, 744, 1024, 10., (10., 10.));
    ("0_0__1___11_", 128, 56, 64, 6., (6., 7.));
    ("0_0_10__1___", 128, 64, 64, 6., (6., 7.));
    ("0_0_1110____", 64, 24, 24, 5., (5., 6.));
    ("0_110_______", 256, 128, 128, 7., (7., 8.));
    ("110_0_______", 256, 256, 256, 8., (8., 8.));
  ]

let test_hcov_table3 () =
  let atlas = Lazy.force hcov_atlas in
  List.iter
    (fun payoff ->
      let profile = Strategy.compute ~payoff atlas in
      Alcotest.(check bool)
        (Fmt.str "nash under %a" Payoff.pp_kind payoff)
        true
        (Equilibrium.is_nash profile payoff);
      List.iter
        (fun (s, potential, forced, crowd, blank, (blank_forced, blank_max)) ->
          let m =
            Option.get
              (Atlas.find_mas atlas
                 (Partial.of_string (Exposure.xp (Hcov.exposure ())) s))
          in
          Alcotest.(check int) (s ^ " potential") potential
            (List.length (Atlas.players_of_mas atlas m));
          Alcotest.(check int) (s ^ " forced") forced
            (List.length (Atlas.forced_players_of_mas atlas m));
          Alcotest.(check int) (s ^ " crowd") crowd
            (Profile.crowd_size profile m);
          let po crowd' = Payoff.value atlas Payoff.Blank ~mas:m ~crowd:crowd' in
          Alcotest.(check (float 0.)) (s ^ " PO_blank") blank
            (po (Profile.crowd profile m));
          Alcotest.(check (float 0.)) (s ^ " PO_blank forced") blank_forced
            (po (Atlas.forced_players_of_mas atlas m));
          Alcotest.(check (float 0.)) (s ^ " PO_blank max") blank_max
            (po (Atlas.players_of_mas atlas m));
          (* PO_SM = k - 1 with k the crowd size (Definition 4.5). *)
          Alcotest.(check (float 0.)) (s ^ " PO_SM")
            (float_of_int (crowd - 1))
            (Payoff.value atlas Payoff.Sm ~mas:m
               ~crowd:(Profile.crowd profile m)))
        table3)
    [ Payoff.Sm; Payoff.Blank ]

(* The equilibrium crowds are identical under both payoff functions. *)
let test_hcov_same_equilibrium () =
  let atlas = Lazy.force hcov_atlas in
  let p1 = Strategy.compute ~payoff:Payoff.Blank atlas in
  let p2 = Strategy.compute ~payoff:Payoff.Sm atlas in
  Alcotest.(check bool) "same profile" true (Profile.equal p1 p2)

(* --- H-cov: the printed R_ADD alone does not reproduce Table 3
   (EXPERIMENTS.md calibration evidence) ---------------------------------------- *)

let test_hcov_printed_radd_differs () =
  let e = Hcov.exposure_printed () in
  let atlas = Atlas.build (Engine.create ~backend:Engine.Bdd e) in
  (* Without p10 -> !p1 & !p3 the student MAS keeps only 3 predicates and
     the graph no longer matches the paper's counts. *)
  Alcotest.(check bool) "student MAS differs" true
    (Atlas.find_mas atlas (Partial.of_string (Exposure.xp e) "0_0__1___11_")
    = None);
  Alcotest.(check bool) "student MAS is the unclosed one" true
    (Atlas.find_mas atlas (Partial.of_string (Exposure.xp e) "_____1___11_")
    <> None);
  Alcotest.(check bool) "valuation count differs from 1560" true
    (Atlas.player_count atlas <> 1560)

(* --- H-cov: Alice ------------------------------------------------------------- *)

let test_alice () =
  let atlas = Lazy.force hcov_atlas in
  let alice = Hcov.alice () in
  Alcotest.(check string) "alice's valuation" "000011100111"
    (Total.to_string alice);
  let engine = Atlas.engine atlas in
  let choices = A1.mas_of engine alice in
  (* "Algorithm 1 offers her 3 choices". *)
  Alcotest.(check (list string)) "her three choices"
    [ "0__________1"; "0_0__1___11_"; "0_0_1110____" ]
    (List.map (fun (c : A1.choice) -> Partial.to_string c.A1.mas) choices);
  (* "Algorithm 2 suggests making the first choice, ... preserves her
     privacy concerning the 10 other predicates." *)
  let profile = Strategy.compute atlas in
  let played = Profile.move_of_valuation profile alice in
  Alcotest.(check string) "recommended" "0__________1"
    (Partial.to_string played.A1.mas);
  let m = Option.get (Atlas.find_mas atlas played.A1.mas) in
  Alcotest.(check (float 0.)) "10 predicates protected" 10.
    (Payoff.value atlas Payoff.Blank ~mas:m ~crowd:(Profile.crowd profile m))

(* --- H-cov: Bob ----------------------------------------------------------------- *)

let test_bob () =
  let atlas = Lazy.force hcov_atlas in
  let bob = Hcov.bob () in
  Alcotest.(check string) "bob's valuation" "000011100000"
    (Total.to_string bob);
  let engine = Atlas.engine atlas in
  (* "Algorithm 1 offers only one solution to Bob: 0_0_1110____." *)
  Alcotest.(check (list string)) "his single choice" [ "0_0_1110____" ]
    (List.map
       (fun (c : A1.choice) -> Partial.to_string c.A1.mas)
       (A1.mas_of engine bob));
  (* "the GUI informs Bob that predicate p12, not included in his
     response, is nevertheless disclosed". *)
  let profile = Strategy.compute atlas in
  let player = Option.get (Atlas.find_player atlas bob) in
  let d = Deduction.for_player profile ~player in
  Alcotest.(check bool) "p12 = 0 disclosed" true
    (List.mem ("p12", false) d.Deduction.deduced)

(* --- H-cov: the weighted PO_blank extension (Section 4.2) ------------------------- *)

let test_weighted_flips_alice () =
  let atlas = Lazy.force hcov_atlas in
  let alice = Hcov.alice () in
  (* Uniform weights recommend publishing "separated" (10 blanks hidden);
     weighting p12 five-fold makes the student path (which keeps p12
     deniable, 6 + 5 = 11) win. *)
  let recommendation payoff =
    let profile, converged =
      Equilibrium.refine (Strategy.compute ~payoff atlas) payoff
    in
    Alcotest.(check bool) "refinement converges" true converged;
    Partial.to_string (Profile.move_of_valuation profile alice).A1.mas
  in
  Alcotest.(check string) "uniform" "0__________1"
    (recommendation Payoff.Blank);
  let weight name = if name = "p12" then 5.0 else 1.0 in
  Alcotest.(check string) "p12 weighted" "0_0__1___11_"
    (recommendation (Payoff.Weighted weight))

(* --- H-cov: minimization ratio (Section 5, R2 conclusion) ------------------------ *)

let average_blank_ratio atlas profile =
  let n = Atlas.player_count atlas in
  let xp_size =
    Universe.size (Partial.universe (Atlas.mas atlas 0).A1.mas)
  in
  let total_blanks =
    List.fold_left
      (fun acc i ->
        let m = Profile.move_of profile i in
        acc + Partial.blank_count (Atlas.mas atlas m).A1.mas)
      0
      (List.init n Fun.id)
  in
  float_of_int total_blanks /. float_of_int (n * xp_size)

let test_hcov_minimization_ratio () =
  let atlas = Lazy.force hcov_atlas in
  let profile = Strategy.compute atlas in
  let ratio = average_blank_ratio atlas profile in
  (* "over 70% for H-cov ... of the predicates are removed". *)
  Alcotest.(check bool) "over 70%" true (ratio > 0.70);
  (* Pin the exact value: 14352 blanks over 1560 x 12 slots. *)
  Alcotest.(check (float 1e-9)) "exact ratio"
    (14352. /. float_of_int (1560 * 12))
    ratio

(* --- H-cov: solidarity (Section 7) ------------------------------------------------ *)

let test_solidarity_claim () =
  let atlas = Lazy.force hcov_atlas in
  let profile = Strategy.compute atlas in
  let m =
    Option.get
      (Atlas.find_mas atlas
         (Partial.of_string (Exposure.xp (Hcov.exposure ())) "0_0_1110____"))
  in
  (* "24 players are forced to make the least favorable choice ... with
     the lowest privacy payoff (PO_blank = 5). Only one more player is
     needed to increase the gain to 6 for these 24 players." *)
  match Solidarity.improve ~max_recruits:1 profile ~mas:m with
  | None -> Alcotest.fail "expected an improvement"
  | Some r ->
    Alcotest.(check int) "24 beneficiaries" 24 r.Solidarity.beneficiaries;
    Alcotest.(check (float 0.)) "PO_blank before" 5. r.Solidarity.payoff_before;
    Alcotest.(check (float 0.)) "PO_blank after" 6. r.Solidarity.payoff_after;
    Alcotest.(check int) "one recruit" 1 (List.length r.Solidarity.recruits)

let test_solidarity_plan () =
  let atlas = Lazy.force hcov_atlas in
  let profile = Strategy.compute atlas in
  let plan = Solidarity.plan ~budget:4 profile in
  (* The H-cov floor is the forced MAS 0_0_1110____ at PO_blank 5; the
     plan must raise it. *)
  Alcotest.(check (float 0.)) "floor before" 5. plan.Solidarity.floor_before;
  Alcotest.(check bool) "floor raised" true
    (plan.Solidarity.floor_after > plan.Solidarity.floor_before);
  Alcotest.(check bool) "within budget" true (plan.Solidarity.recruited <= 4);
  Alcotest.(check bool) "has steps" true (plan.Solidarity.steps <> []);
  (* The final profile is still a valid full assignment preserving
     accuracy: every player still plays one of their own MAS (enforced by
     Profile.make) — just re-read a crowd to make sure it is intact. *)
  let n = Atlas.player_count atlas in
  let total =
    List.init (Atlas.mas_count atlas) (fun m ->
        List.length (Profile.crowd plan.Solidarity.final m))
    |> List.fold_left ( + ) 0
  in
  Alcotest.(check int) "everyone still plays" n total

(* --- RSA: shape regression pins (synthetic encoding) ------------------------------ *)

let test_rsa_shape () =
  let atlas = Lazy.force rsa_atlas in
  Alcotest.(check int) "42 MAS" 42 (Atlas.mas_count atlas);
  Alcotest.(check int) "1984 valuations" 1984 (Atlas.player_count atlas);
  Alcotest.(check (pair int int)) "6 to 12 predicates per MAS" (6, 12)
    (Atlas.domain_size_range atlas);
  (* Choices follow the paper's even-product pattern 1,2,3,4,6,8,... *)
  Alcotest.(check (list int)) "choice keys" [ 1; 2; 3; 4; 6; 8 ]
    (List.map fst (Atlas.choice_distribution atlas))

let test_rsa_equilibrium () =
  let atlas = Lazy.force rsa_atlas in
  List.iter
    (fun payoff ->
      let profile = Strategy.compute ~payoff atlas in
      (* Unlike H-cov, the denser RSA graph exercises the coupling that
         Theorem 4.6's sketch glosses over: Algorithm 2 alone can leave a
         profitable deviation under PO_blank. Best-response refinement
         reaches a genuine equilibrium (see EXPERIMENTS.md). *)
      let refined, converged = Equilibrium.refine profile payoff in
      Alcotest.(check bool)
        (Fmt.str "refinement converges under %a" Payoff.pp_kind payoff)
        true converged;
      Alcotest.(check bool)
        (Fmt.str "nash under %a" Payoff.pp_kind payoff)
        true
        (Equilibrium.is_nash refined payoff))
    [ Payoff.Blank; Payoff.Sm ]

let test_rsa_minimization_ratio () =
  let atlas = Lazy.force rsa_atlas in
  let profile = Strategy.compute atlas in
  let ratio = average_blank_ratio atlas profile in
  (* The paper reports ~30% of the 17 predicates omitted; the synthetic
     encoding minimizes at least that much. *)
  Alcotest.(check bool) "at least 30%" true (ratio > 0.30)

let test_rsa_sample_applicant () =
  let atlas = Lazy.force rsa_atlas in
  let v = Rsa.sample_applicant () in
  let engine = Atlas.engine atlas in
  Alcotest.(check (list string)) "all four benefits"
    [ "b1"; "b2"; "b3"; "b4" ]
    (Engine.benefits_of_total engine v);
  Alcotest.(check bool) "several choices" true
    (List.length (A1.mas_of engine v) >= 2)

(* --- Loan (commercial scenario, not from the paper): regression pins ----------- *)

let loan_atlas =
  lazy
    (Atlas.build
       (Engine.create ~backend:Engine.Bdd (Pet_casestudies.Loan.exposure ())))

let test_loan_shape () =
  let atlas = Lazy.force loan_atlas in
  Alcotest.(check int) "18 MAS" 18 (Atlas.mas_count atlas);
  Alcotest.(check int) "40 valuations" 40 (Atlas.player_count atlas);
  Alcotest.(check (pair int int)) "6 to 8 predicates" (6, 8)
    (Atlas.domain_size_range atlas)

let test_loan_applicants () =
  let atlas = Lazy.force loan_atlas in
  let engine = Atlas.engine atlas in
  let profile = Strategy.compute atlas in
  (* The freelancer has a single proof; the consent report warns that
     omitting p7 (customer seniority) still reveals it. *)
  let freelancer = Pet_casestudies.Loan.freelancer () in
  Alcotest.(check int) "freelancer: one choice" 1
    (List.length (A1.mas_of engine freelancer));
  let player = Option.get (Atlas.find_player atlas freelancer) in
  let d = Deduction.for_player profile ~player in
  Alcotest.(check bool) "p7 = 0 disclosed" true
    (List.mem ("p7", false) d.Deduction.deduced);
  Alcotest.(check (list string)) "both income benefits"
    [ "b1"; "b3" ]
    (Engine.benefits_of_total engine freelancer);
  (* The homeowner can prove income by payslips or tax returns. *)
  let homeowner = Pet_casestudies.Loan.homeowner () in
  let choices = A1.mas_of engine homeowner in
  Alcotest.(check bool) "homeowner has a choice" true
    (List.length choices >= 2);
  Alcotest.(check (list string)) "all three products"
    [ "b1"; "b2"; "b3" ]
    (Engine.benefits_of_total engine homeowner)

(* --- Typed questionnaires: answers compile to the documented valuations --- *)

let test_forms_compile () =
  let module Form = Pet_pet.Form in
  let check_form name form answers expected =
    match Form.valuation form answers with
    | Error m -> Alcotest.fail (name ^ ": " ^ m)
    | Ok v -> Alcotest.(check string) name expected (Total.to_string v)
  in
  (* Alice's answers yield her paper valuation. *)
  check_form "hcov/alice" (Hcov.form ())
    [
      ("age", Form.Aint 24); ("child_welfare", Form.Abool false);
      ("broken_ties", Form.Abool false); ("same_roof", Form.Abool false);
      ("separate_tax", Form.Abool true); ("alimony", Form.Abool false);
      ("has_child", Form.Abool false); ("student", Form.Abool true);
      ("emergency_aid", Form.Abool true); ("separated", Form.Abool true);
    ]
    (Total.to_string (Hcov.alice ()));
  (* A 15-year-old in child welfare hits the p1 band only. *)
  check_form "hcov/minor" (Hcov.form ())
    [
      ("age", Form.Aint 15); ("child_welfare", Form.Abool true);
      ("broken_ties", Form.Abool false); ("same_roof", Form.Abool true);
      ("separate_tax", Form.Abool false); ("alimony", Form.Abool false);
      ("has_child", Form.Abool false); ("student", Form.Abool false);
      ("emergency_aid", Form.Abool false); ("separated", Form.Abool false);
    ]
    "110000000000";
  (* The freelancer's loan answers yield the documented valuation. *)
  check_form "loan/freelancer" (Pet_casestudies.Loan.form ())
    [
      ("status", Form.Achoice "self-employed 3y+");
      ("income_payslips", Form.Aint 0); ("income_tax", Form.Aint 3100);
      ("debt_ratio", Form.Aint 20); ("incidents", Form.Abool false);
      ("customer_years", Form.Aint 1); ("homeowner", Form.Abool false);
      ("cosigner", Form.Abool true); ("age", Form.Aint 40);
      ("term", Form.Aint 10);
    ]
    (Total.to_string (Pet_casestudies.Loan.freelancer ()));
  (* The RSA sample applicant. *)
  check_form "rsa/sample" (Rsa.form ())
    [
      ("age", Form.Aint 30); ("worked", Form.Abool false);
      ("single_parent", Form.Abool true); ("pregnant", Form.Abool false);
      ("resident", Form.Abool true); ("months_residence", Form.Aint 12);
      ("means", Form.Aint 1500); ("student", Form.Abool false);
      ("sabbatical", Form.Abool false); ("early_retirement", Form.Abool false);
      ("salaried_income", Form.Aint 600);
      ("self_employed_income", Form.Aint 200);
      ("partner", Form.Abool false); ("free_housing", Form.Abool false);
      ("housing_aid", Form.Abool false); ("children", Form.Aint 2);
    ]
    (Total.to_string (Rsa.sample_applicant ()))

let test_loan_equilibrium () =
  let atlas = Lazy.force loan_atlas in
  List.iter
    (fun payoff ->
      let refined, converged =
        Equilibrium.refine (Strategy.compute ~payoff atlas) payoff
      in
      Alcotest.(check bool)
        (Fmt.str "nash under %a" Payoff.pp_kind payoff)
        true
        (converged && Equilibrium.is_nash refined payoff))
    [ Payoff.Blank; Payoff.Sm ]

let () =
  Alcotest.run "pet_casestudies"
    [
      ( "hcov",
        [
          Alcotest.test_case "table 2" `Quick test_hcov_table2;
          Alcotest.test_case "table 3 MAS strings" `Quick
            test_hcov_mas_strings;
          Alcotest.test_case "table 3 payoffs" `Quick test_hcov_table3;
          Alcotest.test_case "same equilibrium" `Quick
            test_hcov_same_equilibrium;
          Alcotest.test_case "printed R_ADD differs" `Quick
            test_hcov_printed_radd_differs;
          Alcotest.test_case "alice" `Quick test_alice;
          Alcotest.test_case "bob" `Quick test_bob;
          Alcotest.test_case "weighted flips alice" `Quick
            test_weighted_flips_alice;
          Alcotest.test_case "minimization ratio" `Quick
            test_hcov_minimization_ratio;
          Alcotest.test_case "solidarity" `Quick test_solidarity_claim;
          Alcotest.test_case "solidarity plan" `Quick test_solidarity_plan;
        ] );
      ( "rsa",
        [
          Alcotest.test_case "shape" `Quick test_rsa_shape;
          Alcotest.test_case "equilibrium" `Quick test_rsa_equilibrium;
          Alcotest.test_case "minimization ratio" `Quick
            test_rsa_minimization_ratio;
          Alcotest.test_case "sample applicant" `Quick
            test_rsa_sample_applicant;
        ] );
      ( "loan",
        [
          Alcotest.test_case "shape" `Quick test_loan_shape;
          Alcotest.test_case "applicants" `Quick test_loan_applicants;
          Alcotest.test_case "typed forms compile" `Quick test_forms_compile;
          Alcotest.test_case "equilibrium" `Quick test_loan_equilibrium;
        ] );
    ]
