(* Tests for the observability core: disabled-by-default no-ops,
   histogram bucket boundaries and quantile estimates, span
   nesting/reentrancy, exporter output, and snapshot determinism under
   a logical clock. *)

module Metrics = Pet_obs.Metrics
module Span = Pet_obs.Span
module Export = Pet_obs.Export

(* Every test runs against the same process-global registry, so each
   starts from a clean, enabled slate with a fresh logical clock. *)
let fresh () =
  Metrics.reset ();
  Span.reset ();
  Metrics.enable ();
  let t = ref 0. in
  Metrics.set_clock (fun () ->
      t := !t +. 1.0;
      !t)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

(* --- Enabled switch ------------------------------------------------------------ *)

let test_disabled_noop () =
  fresh ();
  Metrics.disable ();
  let c = Metrics.counter "obs_test_off_total" in
  let g = Metrics.gauge "obs_test_off_gauge" in
  let h = Metrics.histogram "obs_test_off_seconds" in
  Metrics.incr c;
  Metrics.add c 41;
  Metrics.set_gauge g 3.5;
  Metrics.observe h 0.25;
  let r = Metrics.time h (fun () -> 42) in
  Alcotest.(check int) "thunk result" 42 r;
  Alcotest.(check int) "counter untouched" 0 (Metrics.counter_value c);
  Alcotest.(check (float 0.)) "gauge untouched" 0. (Metrics.gauge_value g);
  let s = Metrics.snapshot () in
  let hs = List.assoc "obs_test_off_seconds" s.histograms in
  Alcotest.(check int) "histogram untouched" 0 hs.count;
  (* Spans are equally inert: the thunk runs, nothing is recorded. *)
  let r = Span.enter "off" (fun () -> 7) in
  Alcotest.(check int) "span thunk result" 7 r;
  Alcotest.(check int) "no roots" 0 (List.length (Span.roots ()));
  Metrics.enable ()

let test_disabled_skips_clock () =
  fresh ();
  Metrics.disable ();
  let reads = ref 0 in
  Metrics.set_clock (fun () ->
      Stdlib.incr reads;
      float_of_int !reads);
  let h = Metrics.histogram "obs_test_clock_seconds" in
  ignore (Metrics.time h (fun () -> ()));
  Span.enter "off" (fun () -> ());
  Alcotest.(check int) "clock never read when disabled" 0 !reads;
  Metrics.enable ()

(* --- Counters / gauges --------------------------------------------------------- *)

let test_counter_gauge () =
  fresh ();
  let c = Metrics.counter "obs_test_total" in
  Metrics.incr c;
  Metrics.add c 9;
  Metrics.add c (-5);
  Alcotest.(check int) "negative add ignored" 10 (Metrics.counter_value c);
  let c' = Metrics.counter "obs_test_total" in
  Metrics.incr c';
  Alcotest.(check int) "registration is idempotent" 11
    (Metrics.counter_value c);
  let g = Metrics.gauge ~labels:[ ("kind", "x") ] "obs_test_gauge" in
  Metrics.set_gauge g 2.5;
  Alcotest.(check (float 0.)) "gauge set" 2.5 (Metrics.gauge_value g);
  let s = Metrics.snapshot () in
  Alcotest.(check bool) "labelled name rendered" true
    (List.mem_assoc {|obs_test_gauge{kind="x"}|} s.gauges)

(* --- Histogram buckets --------------------------------------------------------- *)

let test_bucket_bounds () =
  let b = Metrics.bucket_bounds in
  Alcotest.(check int) "40 buckets" 40 (Array.length b);
  Alcotest.(check (float 0.)) "first bound is 1us" 1e-6 b.(0);
  Alcotest.(check (float 0.)) "doubling" (2. *. b.(10)) b.(11);
  Alcotest.(check bool) "last is +inf" true (b.(39) = infinity);
  (* A value exactly on a bound lands in that bucket; just above goes
     to the next. *)
  fresh ();
  let h = Metrics.histogram "obs_test_bounds_seconds" in
  Metrics.observe h 1e-6;
  Metrics.observe h 1.0000001e-6;
  Metrics.observe h (-3.);
  (* clamps to 0, first bucket *)
  Metrics.observe h 1e9;
  (* beyond the finite bounds: overflow bucket *)
  let s = Metrics.snapshot () in
  let hs = List.assoc "obs_test_bounds_seconds" s.histograms in
  Alcotest.(check int) "count" 4 hs.count;
  Alcotest.(check (float 0.)) "max" 1e9 hs.max;
  let count_at bound =
    match List.assoc_opt bound hs.buckets with Some n -> n | None -> 0
  in
  Alcotest.(check int) "on-bound + clamp in bucket 0" 2 (count_at 1e-6);
  Alcotest.(check int) "just-above in bucket 1" 1 (count_at 2e-6);
  Alcotest.(check int) "overflow bucket" 1 (count_at infinity)

let test_quantiles () =
  fresh ();
  let h = Metrics.histogram "obs_test_q_seconds" in
  (* 100 observations of 1.0s: every quantile is the bucket upper bound
     containing 1.0 (2^20us = 1.048576s), capped at the observed max. *)
  for _ = 1 to 100 do
    Metrics.observe h 1.0
  done;
  let s = Metrics.snapshot () in
  let hs = List.assoc "obs_test_q_seconds" s.histograms in
  Alcotest.(check (float 0.)) "p50 capped at max" 1.0
    (Metrics.quantile hs 0.5);
  Alcotest.(check (float 0.)) "p99 capped at max" 1.0
    (Metrics.quantile hs 0.99);
  (* A spread: 90 fast (1ms) + 10 slow (2s). p50/p90 sit in the fast
     bucket, p99 in the slow one. *)
  Metrics.reset ();
  for _ = 1 to 90 do
    Metrics.observe h 0.001
  done;
  for _ = 1 to 10 do
    Metrics.observe h 2.0
  done;
  let s = Metrics.snapshot () in
  let hs = List.assoc "obs_test_q_seconds" s.histograms in
  let fast_ub = 1e-6 *. float_of_int (1 lsl 10) (* 1.024ms *) in
  Alcotest.(check (float 1e-12)) "p50 in fast bucket" fast_ub
    (Metrics.quantile hs 0.5);
  Alcotest.(check (float 1e-12)) "p90 in fast bucket" fast_ub
    (Metrics.quantile hs 0.9);
  Alcotest.(check (float 0.)) "p99 capped at slow max" 2.0
    (Metrics.quantile hs 0.99);
  let empty =
    { Metrics.count = 0; buckets = []; sum = 0.; max = 0. }
  in
  Alcotest.(check (float 0.)) "empty histogram" 0.
    (Metrics.quantile empty 0.99)

let test_time_and_sum () =
  fresh ();
  (* Logical clock ticks +1 per read: [time] reads twice, so every
     sample is exactly 1.0s. *)
  let h = Metrics.histogram "obs_test_time_seconds" in
  for _ = 1 to 3 do
    ignore (Metrics.time h (fun () -> ()))
  done;
  let s = Metrics.snapshot () in
  let hs = List.assoc "obs_test_time_seconds" s.histograms in
  Alcotest.(check int) "count" 3 hs.count;
  Alcotest.(check (float 0.)) "sum" 3.0 hs.sum;
  (* An exception still records the sample, then propagates. *)
  (try Metrics.time h (fun () -> failwith "boom") with Failure _ -> ());
  let hs = List.assoc "obs_test_time_seconds" (Metrics.snapshot ()).histograms in
  Alcotest.(check int) "exception observed" 4 hs.count

(* --- Spans --------------------------------------------------------------------- *)

let test_span_nesting () =
  fresh ();
  (* Logical clock: every [enter] reads the clock twice (start/end), so
     with children the timings are deterministic small integers. *)
  Span.enter "outer" (fun () ->
      Span.enter "inner" (fun () -> ());
      Span.enter "inner" (fun () -> ()));
  let roots = Span.roots () in
  Alcotest.(check int) "one root" 1 (List.length roots);
  let outer = List.hd roots in
  Alcotest.(check string) "root name" "outer" outer.Span.name;
  Alcotest.(check int) "root count" 1 outer.Span.count;
  Alcotest.(check int) "children aggregated by name" 1
    (List.length outer.Span.children);
  let inner = List.hd outer.Span.children in
  Alcotest.(check int) "inner count" 2 inner.Span.count;
  (* outer spans reads 1..6: start=1 end=6 → total 5; inner entries are
     (2,3) and (4,5) → total 2; self = 3. *)
  Alcotest.(check (float 0.)) "outer total" 5. outer.Span.total;
  Alcotest.(check (float 0.)) "inner total" 2. inner.Span.total;
  Alcotest.(check (float 0.)) "outer self" 3. outer.Span.self;
  Alcotest.(check (float 0.)) "grand total" 5. (Span.total ())

let test_span_reentrancy () =
  fresh ();
  (* Direct recursion nests one level deeper each time rather than
     crashing or merging into the same frame. *)
  let rec go n = if n > 0 then Span.enter "rec" (fun () -> go (n - 1)) in
  go 3;
  let rec depth (n : Span.node) =
    match n.Span.children with [] -> 1 | c :: _ -> 1 + depth c
  in
  let roots = Span.roots () in
  Alcotest.(check int) "one root" 1 (List.length roots);
  Alcotest.(check int) "nested three deep" 3 (depth (List.hd roots));
  (* Exceptions close the span. *)
  Span.reset ();
  (try Span.enter "explode" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "span closed on exception" 1
    (List.length (Span.roots ()));
  Span.enter "after" (fun () -> ());
  Alcotest.(check int) "stack balanced after exception" 2
    (List.length (Span.roots ()))

let test_span_render () =
  fresh ();
  Span.enter "a" (fun () -> Span.enter "b" (fun () -> ()));
  Span.enter "c" (fun () -> ());
  let r = Span.render () in
  Alcotest.(check bool) "renders a" true (contains r "a");
  Alcotest.(check bool) "renders branch for b" true (contains r "`-- b");
  Alcotest.(check bool) "renders count" true (contains r "count=1");
  Alcotest.(check bool) "renders percent" true (contains r "%")

(* --- Exporters ----------------------------------------------------------------- *)

let test_prometheus_export () =
  fresh ();
  let c = Metrics.counter "pet_obs_test_reqs_total" in
  Metrics.add c 5;
  let g = Metrics.gauge "pet_obs_test_depth" in
  Metrics.set_gauge g 2.;
  let h =
    Metrics.histogram ~labels:[ ("method", "stats") ]
      "pet_obs_test_latency_seconds"
  in
  Metrics.observe h 1.0;
  Metrics.observe h 1.0;
  let text = Export.prometheus (Metrics.snapshot ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("prometheus contains " ^ needle) true
        (contains text needle))
    [
      "# TYPE pet_obs_test_reqs_total counter";
      "pet_obs_test_reqs_total 5";
      "# TYPE pet_obs_test_depth gauge";
      "pet_obs_test_depth 2";
      "# TYPE pet_obs_test_latency_seconds histogram";
      {|pet_obs_test_latency_seconds_bucket{method="stats",le="1.048576"} 2|};
      {|pet_obs_test_latency_seconds_bucket{method="stats",le="+Inf"} 2|};
      {|pet_obs_test_latency_seconds_sum{method="stats"} 2|};
      {|pet_obs_test_latency_seconds_count{method="stats"} 2|};
    ]

let test_line_export () =
  fresh ();
  let c = Metrics.counter "reqs_total" in
  Metrics.incr c;
  let h = Metrics.histogram "lat_seconds" in
  Metrics.observe h 1.0;
  let l = Export.line (Metrics.snapshot ()) in
  Alcotest.(check bool) "counter in line" true (contains l "reqs_total=1");
  Alcotest.(check bool) "histogram count in line" true
    (contains l "lat_seconds.count=1");
  Alcotest.(check bool) "p50 in line" true (contains l "lat_seconds.p50=");
  Alcotest.(check bool) "single line" false (contains l "\n")

(* --- Snapshot determinism ------------------------------------------------------ *)

let test_snapshot_determinism () =
  (* Two identical recorded histories — in different registration
     orders — export byte-identically under the logical clock. *)
  let record () =
    fresh ();
    let names = [ "z_total"; "a_total"; "m_total" ] in
    List.iter (fun n -> Metrics.add (Metrics.counter n) 3) names;
    let h = Metrics.histogram "w_seconds" in
    ignore (Metrics.time h (fun () -> ()));
    Export.prometheus (Metrics.snapshot ())
  in
  let record_rev () =
    fresh ();
    let names = [ "m_total"; "a_total"; "z_total" ] in
    List.iter (fun n -> Metrics.add (Metrics.counter n) 3) names;
    let h = Metrics.histogram "w_seconds" in
    ignore (Metrics.time h (fun () -> ()));
    Export.prometheus (Metrics.snapshot ())
  in
  Alcotest.(check string) "byte-identical exports" (record ()) (record_rev ())

let () =
  Alcotest.run "obs"
    [
      ( "switch",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
          Alcotest.test_case "disabled never reads the clock" `Quick
            test_disabled_skips_clock;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick test_counter_gauge;
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_bounds;
          Alcotest.test_case "quantiles" `Quick test_quantiles;
          Alcotest.test_case "time and sum" `Quick test_time_and_sum;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and aggregation" `Quick test_span_nesting;
          Alcotest.test_case "reentrancy and exceptions" `Quick
            test_span_reentrancy;
          Alcotest.test_case "render" `Quick test_span_render;
        ] );
      ( "export",
        [
          Alcotest.test_case "prometheus text" `Quick test_prometheus_export;
          Alcotest.test_case "stderr line" `Quick test_line_export;
          Alcotest.test_case "snapshot determinism" `Quick
            test_snapshot_determinism;
        ] );
    ]
