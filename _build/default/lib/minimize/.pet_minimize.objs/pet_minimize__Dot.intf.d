lib/minimize/dot.mli: Atlas Lattice Pet_valuation
