lib/valuation/partial.mli: Fmt Pet_logic Total Universe
