(** Protocol fuzzing of {!Pet_server.Service}: feed seeded random,
    mutated and malformed request lines into a live service instance and
    assert the router's contract — {e every} line gets exactly one
    response line that parses as a protocol envelope carrying ["ok"] or a
    structured ["error"], and nothing ever raises.

    The generator mixes well-formed requests over a pool of small
    generated rule sets (so real sessions, engine compilations and LRU
    evictions happen) with byte-level mutations: truncations, bit flips,
    junk insertions, doubled lines, wrong envelope versions, 600-deep
    nesting (the JSON parser caps at 512) and oversized lines (the
    {!Pet_server.Proto.max_line_bytes} guard). Fully deterministic for a
    given [seed] and [count].

    Two compiled-fast-path checks ride along. Every generated line also
    exercises {!Pet_server.Proto.decode_fast}: whenever the one-pass
    cursor scanner accepts a line, its envelope must be structurally
    identical to the full decoder's — any disagreement (including lines
    the full decoder rejects) is a soundness violation. And a
    fallback-boundary phase generates forms on both sides of
    {!Pet_compile.Code.max_tabulated_predicates} — including >20
    predicates, beyond every enumeration-based helper — and differences
    the compiled backend against the SAT backend on random partial
    valuations. *)

type stats = {
  requests : int;
  ok : int;
  errors : int;  (** structured protocol errors — expected outcomes *)
  invalid_responses : int;
      (** responses that are not valid envelopes — contract violations *)
  crashes : (string * string) list;
      (** (offending line, exception) — contract violations *)
  by_code : (string * int) list;  (** error-code histogram, sorted *)
  cursor_checked : int;  (** lines offered to {!Pet_server.Proto.decode_fast} *)
  cursor_fast : int;  (** lines the cursor scanner accepted *)
  cursor_mismatches : (string * string) list;
      (** (offending line, disagreement) — soundness violations *)
  boundary_checks : int;
      (** partial valuations compared across the tabulation boundary *)
  boundary_failures : (string * string) list;
      (** (form, divergence) — compiled-vs-SAT violations *)
}

val run : ?seed:int -> count:int -> unit -> stats

val pp : stats Fmt.t
(** One summary line, plus one line per crash. *)

(** {1 Corpus fuzzing}

    Tenant-lifecycle fuzzing over the realistic form corpus
    ({!Pet_corpus.Corpus}): publish a seeded multi-tenant scenario
    (including one deliberately oversized form whose background build
    must fail), then drive a Zipf-weighted mix of session opens,
    reports, choices, submissions, hot rule updates and hostile tenant
    traffic through a live service. Beyond the envelope contract
    (every line answered, nothing raises), it checks the hot-swap
    invariant: after each [update_rules] settles, replaying a pinned
    session's exact report line must return byte-identical bytes —
    in-flight sessions never observe a version swap. The engine cache
    is kept deliberately small so pinned sessions also survive LRU
    eviction and the tenant-text recompile fallback. Fully
    deterministic for a given [seed] and [count]. *)

type corpus_stats = {
  corpus_requests : int;
  corpus_ok : int;
  corpus_errors : int;  (** structured protocol errors — expected outcomes *)
  corpus_invalid : int;
      (** responses that are not valid envelopes — contract violations *)
  corpus_crashes : (string * string) list;
      (** (offending line, exception) — contract violations *)
  corpus_tenants : int;  (** tenants published, incl. the oversized one *)
  corpus_build_failures : int;
      (** failed background builds observed (≥ 1, from the oversized form) *)
  corpus_updates : int;  (** hot rule migrations driven *)
  swap_checks : int;  (** pinned-session replays compared across swaps *)
  swap_mismatches : (string * string) list;
      (** (report line, divergence) — hot-swap violations *)
}

val run_corpus : ?seed:int -> count:int -> unit -> corpus_stats

val pp_corpus : corpus_stats Fmt.t
(** Two summary lines, plus one line per crash or swap mismatch. *)

(** {1 Store fuzzing}

    Corruption fuzzing of the durable store ({!Pet_store.Store}):
    generate event logs, then bit-flip, truncate, zero and splice their
    bytes, and assert the recovery contract — recovery {e never} raises,
    in-place damage yields a clean {e prefix} of what was written, any
    loss is localized by [scan] with an in-bounds byte offset (never
    silent), the surviving stream replays into a service without
    raising, and the directory remains appendable afterwards. Fully
    deterministic for a given [seed] and [count]. *)

type store_stats = {
  logs : int;  (** mutated log directories exercised *)
  mutations : (string * int) list;  (** mutation-kind histogram, sorted *)
  recovered_events : int;
  damage_reports : int;
  torn_tails : int;
  replay_errors : int;
      (** structured [apply_event] errors (possible for spliced logs) *)
  store_violations : (string * string) list;
      (** (invariant, detail) — contract violations; must be empty *)
}

val run_store : ?seed:int -> count:int -> unit -> store_stats

val pp_store : store_stats Fmt.t
(** One summary line, plus one line per violation. *)

(** {1 Consent-lifecycle fuzzing}

    End-to-end fuzzing of the consent lifecycle against the offline
    compliance audit: drive a durable service through full lifecycles,
    revoke and expire a random subset, kill it without shutdown (a torn
    active segment), and assert that {!Pet_audit.Audit} passes the
    healthy log (torn tail included), that recovery resurrects no
    tombstone and applies every passed horizon, and that a {e forged}
    grant re-establishing a revoked session — appended straight to the
    log, bypassing the service — is caught by the audit with a
    revocation violation. Deterministic for a given [seed] and
    [count]. *)

type consent_stats = {
  rounds : int;  (** lifecycle + crash + audit rounds *)
  consent_requests : int;
  revokes : int;
  expiries : int;
  crash_recoveries : int;
  audits_passed : int;  (** healthy audits (pre- and post-tear) *)
  injections_caught : int;  (** forged grants the audit flagged *)
  consent_violations : (string * string) list;
      (** (invariant, detail) — must be empty *)
}

val run_consent : ?seed:int -> count:int -> unit -> consent_stats

val pp_consent : consent_stats Fmt.t
(** One summary line, plus one line per violation. *)
