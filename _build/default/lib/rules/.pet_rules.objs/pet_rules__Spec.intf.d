lib/rules/spec.mli: Exposure Fmt
