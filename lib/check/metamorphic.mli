(** Metamorphic testing: semantics-preserving transformations of an
    exposure problem under which the published artifacts must be
    invariant (up to the transformation's own renaming).

    Five transformations are applied:
    - [rename] — bijective renaming of predicates and benefits (universe
      positions kept): the atlas, payoffs and the Algorithm 2 equilibrium
      must match through the inverse renaming;
    - [rule-permutation] — reversed rule/constraint declaration order;
    - [literal-reorder] — every DNF rebuilt from a formula with its
      disjuncts and literals reversed (exercises normalization);
    - [duplicate-rule] — a repeated conjunction inserted past the
      normalizing constructors (a disjunction with a duplicate disjunct
      is the same rule);
    - [universe-permutation] — reversed form-universe order: the MAS set
      (as bindings), benefits and crowd sizes must be invariant, while
      Algorithm 2 may tie-break differently and is only required to
      yield a profile that refines to Nash. *)

type transformed = {
  name : string;
  exposure : Pet_rules.Exposure.t;
  back_pred : string -> string;  (** transformed name -> original name *)
  back_benefit : string -> string;
  exact : bool;
      (** positions preserved: the equilibrium must match move-for-move *)
}

val transforms : Pet_rules.Exposure.t -> transformed list

val check :
  ?payoff:Pet_game.Payoff.kind ->
  ?backend:Pet_rules.Engine.backend ->
  Pet_rules.Exposure.t ->
  Finding.report
(** Stages: ["metamorphic/<transform name>"]. [backend] defaults to
    [Compiled] (the serving fast path, with its own BDD fallback above
    the tabulation threshold); backend equivalence itself is {!Diff}'s
    job. *)
