(* Process-level gauges: uptime, GC statistics and domain counts.

   Uptime is wall-clock by design, independent of the metrics clock —
   under [--deterministic] the logical clock measures request work, but
   an operator watching a dashboard still wants real elapsed time.

   GC numbers come from [Gc.quick_stat] (no heap traversal, safe on a
   hot path); under OCaml 5 they reflect the calling domain's view plus
   what terminated domains merged in, which is the standard caveat for
   multicore GC telemetry. *)

let started = Unix.gettimeofday ()

let sync () =
  if Metrics.enabled () then begin
    let set name help v = Metrics.set_gauge (Metrics.gauge ~help name) v in
    set "pet_process_uptime_seconds"
      "Wall-clock seconds since process start."
      (Unix.gettimeofday () -. started);
    set "pet_process_recommended_domains"
      "Domain.recommended_domain_count for this machine."
      (float_of_int (Domain.recommended_domain_count ()));
    let st = Gc.quick_stat () in
    set "pet_gc_minor_collections" "Minor GC collections (Gc.quick_stat)."
      (float_of_int st.Gc.minor_collections);
    set "pet_gc_major_collections" "Major GC cycles (Gc.quick_stat)."
      (float_of_int st.Gc.major_collections);
    set "pet_gc_compactions" "Heap compactions (Gc.quick_stat)."
      (float_of_int st.Gc.compactions);
    set "pet_gc_heap_words" "Major heap size in words (Gc.quick_stat)."
      (float_of_int st.Gc.heap_words);
    set "pet_gc_minor_words" "Words allocated in the minor heap."
      st.Gc.minor_words;
    set "pet_gc_major_words" "Words allocated in the major heap."
      st.Gc.major_words
  end
