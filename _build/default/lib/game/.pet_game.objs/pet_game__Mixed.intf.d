lib/game/mixed.mli: Payoff Pet_minimize Profile
