lib/pet/workflow.mli: Pet_game Pet_minimize Pet_rules Pet_valuation Report
