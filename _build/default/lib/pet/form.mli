(** Typed application forms.

    Users answer concrete questions (an age, a yes/no, a choice); the
    form compiles the answers into the truth values of the exposure
    problem's predicates, after which the raw answers can be discarded —
    "if a user gives the value age = 18, this will mean p1 = true. The
    exact value of age can thus be deleted" (Section 3.1). *)

type answer = Abool of bool | Aint of int | Achoice of string

type kind = Kbool | Kint | Kchoice of string list

type question = { key : string; text : string; kind : kind }

type predicate = {
  name : string;  (** a predicate of the exposure problem's form universe *)
  description : string;
  compute : (string -> answer) -> bool;
      (** evaluates the predicate from the answers; looks up question keys *)
}

type t

val create :
  exposure:Pet_rules.Exposure.t ->
  questions:question list ->
  predicates:predicate list ->
  t
(** @raise Invalid_argument when question keys collide, a predicate name
    is not in the form universe, or a form-universe predicate has no
    definition. *)

val exposure : t -> Pet_rules.Exposure.t
val questions : t -> question list

val valuation :
  t -> (string * answer) list -> (Pet_valuation.Total.t, string) result
(** Compile raw answers to the predicate valuation. Errors on missing or
    ill-typed answers, out-of-range choices, and unknown keys; the raw
    answers never leave this function. *)
