(* Tests for the observability core: disabled-by-default no-ops,
   histogram bucket boundaries and quantile estimates, span
   nesting/reentrancy, exporter output, and snapshot determinism under
   a logical clock. *)

module Metrics = Pet_obs.Metrics
module Span = Pet_obs.Span
module Export = Pet_obs.Export
module Trace = Pet_obs.Trace
module Log = Pet_obs.Log

(* Every test runs against the same process-global registry, so each
   starts from a clean, enabled slate with a fresh logical clock. *)
let fresh () =
  Metrics.reset ();
  Span.reset ();
  Metrics.enable ();
  let t = ref 0. in
  Metrics.set_clock (fun () ->
      t := !t +. 1.0;
      !t)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

(* --- Enabled switch ------------------------------------------------------------ *)

let test_disabled_noop () =
  fresh ();
  Metrics.disable ();
  let c = Metrics.counter "obs_test_off_total" in
  let g = Metrics.gauge "obs_test_off_gauge" in
  let h = Metrics.histogram "obs_test_off_seconds" in
  Metrics.incr c;
  Metrics.add c 41;
  Metrics.set_gauge g 3.5;
  Metrics.observe h 0.25;
  let r = Metrics.time h (fun () -> 42) in
  Alcotest.(check int) "thunk result" 42 r;
  Alcotest.(check int) "counter untouched" 0 (Metrics.counter_value c);
  Alcotest.(check (float 0.)) "gauge untouched" 0. (Metrics.gauge_value g);
  let s = Metrics.snapshot () in
  let hs = List.assoc "obs_test_off_seconds" s.histograms in
  Alcotest.(check int) "histogram untouched" 0 hs.count;
  (* Spans are equally inert: the thunk runs, nothing is recorded. *)
  let r = Span.enter "off" (fun () -> 7) in
  Alcotest.(check int) "span thunk result" 7 r;
  Alcotest.(check int) "no roots" 0 (List.length (Span.roots ()));
  Metrics.enable ()

let test_disabled_skips_clock () =
  fresh ();
  Metrics.disable ();
  let reads = ref 0 in
  Metrics.set_clock (fun () ->
      Stdlib.incr reads;
      float_of_int !reads);
  let h = Metrics.histogram "obs_test_clock_seconds" in
  ignore (Metrics.time h (fun () -> ()));
  Span.enter "off" (fun () -> ());
  Alcotest.(check int) "clock never read when disabled" 0 !reads;
  Metrics.enable ()

(* --- Counters / gauges --------------------------------------------------------- *)

let test_counter_gauge () =
  fresh ();
  let c = Metrics.counter "obs_test_total" in
  Metrics.incr c;
  Metrics.add c 9;
  Metrics.add c (-5);
  Alcotest.(check int) "negative add ignored" 10 (Metrics.counter_value c);
  let c' = Metrics.counter "obs_test_total" in
  Metrics.incr c';
  Alcotest.(check int) "registration is idempotent" 11
    (Metrics.counter_value c);
  let g = Metrics.gauge ~labels:[ ("kind", "x") ] "obs_test_gauge" in
  Metrics.set_gauge g 2.5;
  Alcotest.(check (float 0.)) "gauge set" 2.5 (Metrics.gauge_value g);
  let s = Metrics.snapshot () in
  Alcotest.(check bool) "labelled name rendered" true
    (List.mem_assoc {|obs_test_gauge{kind="x"}|} s.gauges)

(* --- Histogram buckets --------------------------------------------------------- *)

let test_bucket_bounds () =
  let b = Metrics.bucket_bounds in
  Alcotest.(check int) "40 buckets" 40 (Array.length b);
  Alcotest.(check (float 0.)) "first bound is 1us" 1e-6 b.(0);
  Alcotest.(check (float 0.)) "doubling" (2. *. b.(10)) b.(11);
  Alcotest.(check bool) "last is +inf" true (b.(39) = infinity);
  (* A value exactly on a bound lands in that bucket; just above goes
     to the next. *)
  fresh ();
  let h = Metrics.histogram "obs_test_bounds_seconds" in
  Metrics.observe h 1e-6;
  Metrics.observe h 1.0000001e-6;
  Metrics.observe h (-3.);
  (* clamps to 0, first bucket *)
  Metrics.observe h 1e9;
  (* beyond the finite bounds: overflow bucket *)
  let s = Metrics.snapshot () in
  let hs = List.assoc "obs_test_bounds_seconds" s.histograms in
  Alcotest.(check int) "count" 4 hs.count;
  Alcotest.(check (float 0.)) "max" 1e9 hs.max;
  let count_at bound =
    match List.assoc_opt bound hs.buckets with Some n -> n | None -> 0
  in
  Alcotest.(check int) "on-bound + clamp in bucket 0" 2 (count_at 1e-6);
  Alcotest.(check int) "just-above in bucket 1" 1 (count_at 2e-6);
  Alcotest.(check int) "overflow bucket" 1 (count_at infinity)

let test_quantiles () =
  fresh ();
  let h = Metrics.histogram "obs_test_q_seconds" in
  (* 100 observations of 1.0s: every quantile is the bucket upper bound
     containing 1.0 (2^20us = 1.048576s), capped at the observed max. *)
  for _ = 1 to 100 do
    Metrics.observe h 1.0
  done;
  let s = Metrics.snapshot () in
  let hs = List.assoc "obs_test_q_seconds" s.histograms in
  Alcotest.(check (float 0.)) "p50 capped at max" 1.0
    (Metrics.quantile hs 0.5);
  Alcotest.(check (float 0.)) "p99 capped at max" 1.0
    (Metrics.quantile hs 0.99);
  (* A spread: 90 fast (1ms) + 10 slow (2s). p50/p90 sit in the fast
     bucket, p99 in the slow one. *)
  Metrics.reset ();
  for _ = 1 to 90 do
    Metrics.observe h 0.001
  done;
  for _ = 1 to 10 do
    Metrics.observe h 2.0
  done;
  let s = Metrics.snapshot () in
  let hs = List.assoc "obs_test_q_seconds" s.histograms in
  let fast_ub = 1e-6 *. float_of_int (1 lsl 10) (* 1.024ms *) in
  Alcotest.(check (float 1e-12)) "p50 in fast bucket" fast_ub
    (Metrics.quantile hs 0.5);
  Alcotest.(check (float 1e-12)) "p90 in fast bucket" fast_ub
    (Metrics.quantile hs 0.9);
  Alcotest.(check (float 0.)) "p99 capped at slow max" 2.0
    (Metrics.quantile hs 0.99);
  let empty =
    { Metrics.count = 0; buckets = []; sum = 0.; max = 0. }
  in
  Alcotest.(check (float 0.)) "empty histogram" 0.
    (Metrics.quantile empty 0.99)

let test_time_and_sum () =
  fresh ();
  (* Logical clock ticks +1 per read: [time] reads twice, so every
     sample is exactly 1.0s. *)
  let h = Metrics.histogram "obs_test_time_seconds" in
  for _ = 1 to 3 do
    ignore (Metrics.time h (fun () -> ()))
  done;
  let s = Metrics.snapshot () in
  let hs = List.assoc "obs_test_time_seconds" s.histograms in
  Alcotest.(check int) "count" 3 hs.count;
  Alcotest.(check (float 0.)) "sum" 3.0 hs.sum;
  (* An exception still records the sample, then propagates. *)
  (try Metrics.time h (fun () -> failwith "boom") with Failure _ -> ());
  let hs = List.assoc "obs_test_time_seconds" (Metrics.snapshot ()).histograms in
  Alcotest.(check int) "exception observed" 4 hs.count

(* --- Spans --------------------------------------------------------------------- *)

let test_span_nesting () =
  fresh ();
  (* Logical clock: every [enter] reads the clock twice (start/end), so
     with children the timings are deterministic small integers. *)
  Span.enter "outer" (fun () ->
      Span.enter "inner" (fun () -> ());
      Span.enter "inner" (fun () -> ()));
  let roots = Span.roots () in
  Alcotest.(check int) "one root" 1 (List.length roots);
  let outer = List.hd roots in
  Alcotest.(check string) "root name" "outer" outer.Span.name;
  Alcotest.(check int) "root count" 1 outer.Span.count;
  Alcotest.(check int) "children aggregated by name" 1
    (List.length outer.Span.children);
  let inner = List.hd outer.Span.children in
  Alcotest.(check int) "inner count" 2 inner.Span.count;
  (* outer spans reads 1..6: start=1 end=6 → total 5; inner entries are
     (2,3) and (4,5) → total 2; self = 3. *)
  Alcotest.(check (float 0.)) "outer total" 5. outer.Span.total;
  Alcotest.(check (float 0.)) "inner total" 2. inner.Span.total;
  Alcotest.(check (float 0.)) "outer self" 3. outer.Span.self;
  Alcotest.(check (float 0.)) "grand total" 5. (Span.total ())

let test_span_reentrancy () =
  fresh ();
  (* Direct recursion nests one level deeper each time rather than
     crashing or merging into the same frame. *)
  let rec go n = if n > 0 then Span.enter "rec" (fun () -> go (n - 1)) in
  go 3;
  let rec depth (n : Span.node) =
    match n.Span.children with [] -> 1 | c :: _ -> 1 + depth c
  in
  let roots = Span.roots () in
  Alcotest.(check int) "one root" 1 (List.length roots);
  Alcotest.(check int) "nested three deep" 3 (depth (List.hd roots));
  (* Exceptions close the span. *)
  Span.reset ();
  (try Span.enter "explode" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "span closed on exception" 1
    (List.length (Span.roots ()));
  Span.enter "after" (fun () -> ());
  Alcotest.(check int) "stack balanced after exception" 2
    (List.length (Span.roots ()))

let test_span_render () =
  fresh ();
  Span.enter "a" (fun () -> Span.enter "b" (fun () -> ()));
  Span.enter "c" (fun () -> ());
  let r = Span.render () in
  Alcotest.(check bool) "renders a" true (contains r "a");
  Alcotest.(check bool) "renders branch for b" true (contains r "`-- b");
  Alcotest.(check bool) "renders count" true (contains r "count=1");
  Alcotest.(check bool) "renders percent" true (contains r "%")

(* --- Exporters ----------------------------------------------------------------- *)

let test_prometheus_export () =
  fresh ();
  let c = Metrics.counter "pet_obs_test_reqs_total" in
  Metrics.add c 5;
  let g = Metrics.gauge "pet_obs_test_depth" in
  Metrics.set_gauge g 2.;
  let h =
    Metrics.histogram ~labels:[ ("method", "stats") ]
      "pet_obs_test_latency_seconds"
  in
  Metrics.observe h 1.0;
  Metrics.observe h 1.0;
  let text = Export.prometheus (Metrics.snapshot ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("prometheus contains " ^ needle) true
        (contains text needle))
    [
      "# TYPE pet_obs_test_reqs_total counter";
      "pet_obs_test_reqs_total 5";
      "# TYPE pet_obs_test_depth gauge";
      "pet_obs_test_depth 2";
      "# TYPE pet_obs_test_latency_seconds histogram";
      {|pet_obs_test_latency_seconds_bucket{method="stats",le="1.048576"} 2|};
      {|pet_obs_test_latency_seconds_bucket{method="stats",le="+Inf"} 2|};
      {|pet_obs_test_latency_seconds_sum{method="stats"} 2|};
      {|pet_obs_test_latency_seconds_count{method="stats"} 2|};
    ]

let test_line_export () =
  fresh ();
  let c = Metrics.counter "reqs_total" in
  Metrics.incr c;
  let h = Metrics.histogram "lat_seconds" in
  Metrics.observe h 1.0;
  let l = Export.line (Metrics.snapshot ()) in
  Alcotest.(check bool) "counter in line" true (contains l "reqs_total=1");
  Alcotest.(check bool) "histogram count in line" true
    (contains l "lat_seconds.count=1");
  Alcotest.(check bool) "p50 in line" true (contains l "lat_seconds.p50=");
  Alcotest.(check bool) "single line" false (contains l "\n")

(* --- Traces -------------------------------------------------------------------- *)

(* Trace state is process-global like the registry: start each test from
   empty default-capacity rings with tracing on, and leave tracing off. *)
let fresh_trace () =
  fresh ();
  Trace.configure ();
  Trace.reset ();
  Trace.set_slow_threshold infinity;
  Trace.enable ()

let teardown_trace () =
  Trace.disable ();
  Trace.set_slow_threshold infinity

let test_trace_capture () =
  fresh_trace ();
  Alcotest.(check (option string)) "no active trace" None (Trace.current ());
  let r =
    Trace.run ~id:"t-cap" (fun () ->
        Alcotest.(check (option string))
          "current inside run" (Some "t-cap") (Trace.current ());
        Trace.annotate "method" (Trace.String "stats");
        Span.enter "outer" (fun () ->
            Span.enter "inner" (fun () -> ());
            Span.enter "inner" (fun () -> ()));
        17)
  in
  Alcotest.(check int) "run returns the thunk's result" 17 r;
  Alcotest.(check (option string)) "no active trace after" None
    (Trace.current ());
  match Trace.recent () with
  | [ tr ] ->
    Alcotest.(check string) "id" "t-cap" tr.Trace.id;
    Alcotest.(check bool) "found by id" true (Trace.find "t-cap" = Some tr);
    Alcotest.(check bool) "not slow under infinity" false tr.Trace.slow;
    (match tr.Trace.annotations with
    | [ ("method", Trace.String "stats") ] -> ()
    | _ -> Alcotest.fail "wrong annotations");
    (* Unlike Span's aggregate, repeated entries stay distinct nodes. *)
    (match tr.Trace.spans with
    | [ ({ Trace.name = "outer"; children = [ i1; i2 ]; _ } as outer) ] ->
      Alcotest.(check string) "first child" "inner" i1.Trace.name;
      Alcotest.(check string) "second child" "inner" i2.Trace.name;
      (* Clock reads: run start=1, outer=(2,7), inners (3,4) and (5,6),
         run finish=8. *)
      Alcotest.(check (float 0.)) "outer dur" 5. outer.Trace.dur;
      Alcotest.(check (float 0.)) "inner1 start" 3. i1.Trace.start;
      Alcotest.(check (float 0.)) "inner1 dur" 1. i1.Trace.dur;
      Alcotest.(check (float 0.)) "trace duration" 7. tr.Trace.duration
    | _ -> Alcotest.fail "wrong span tree");
    teardown_trace ()
  | l -> Alcotest.failf "expected one capture, got %d" (List.length l)

let test_trace_disabled_passthrough () =
  fresh_trace ();
  Trace.disable ();
  let r = Trace.run ~id:"t-off" (fun () -> Span.enter "s" (fun () -> 3)) in
  Alcotest.(check int) "thunk result" 3 r;
  Alcotest.(check int) "nothing captured" 0 (List.length (Trace.recent ()));
  teardown_trace ()

let test_trace_ring_eviction () =
  fresh_trace ();
  Trace.configure ~recent:3 ~slow:2 ();
  for i = 1 to 5 do
    Trace.run ~id:(Printf.sprintf "t%d" i) (fun () -> ())
  done;
  (* Oldest evicted first; listing is newest first. *)
  Alcotest.(check (list string)) "newest first, oldest evicted"
    [ "t5"; "t4"; "t3" ]
    (List.map (fun tr -> tr.Trace.id) (Trace.recent ()));
  Alcotest.(check (pair int int)) "two recent evictions, slow empty" (2, 0)
    (Trace.evictions ());
  Alcotest.(check bool) "evicted id unfindable" true (Trace.find "t1" = None);
  teardown_trace ()

let test_trace_slow_classification () =
  fresh_trace ();
  (* Every trace costs 2 clock reads (1s each) plus 2 per span: a
     spanless request lasts 1s, one with two spans 5s. *)
  Trace.set_slow_threshold 3.;
  Trace.run ~id:"fast" (fun () -> ());
  Trace.run ~id:"slow" (fun () ->
      Span.enter "a" (fun () -> ());
      Span.enter "b" (fun () -> ()));
  Alcotest.(check (list string)) "only the slow one" [ "slow" ]
    (List.map (fun tr -> tr.Trace.id) (Trace.slow ()));
  Alcotest.(check int) "both in recent" 2 (List.length (Trace.recent ()));
  Alcotest.(check bool) "slow flag set" true
    (match Trace.find "slow" with Some tr -> tr.Trace.slow | None -> false);
  (* Threshold 0 (pet serve --trace-slow 0) classifies everything. *)
  Trace.set_slow_threshold 0.;
  Trace.run ~id:"any" (fun () -> ());
  Alcotest.(check bool) "threshold 0 catches all" true
    (match Trace.find "any" with Some tr -> tr.Trace.slow | None -> false);
  teardown_trace ()

let test_trace_nested_run_joins () =
  fresh_trace ();
  Trace.run ~id:"outer" (fun () ->
      Trace.run ~id:"inner" (fun () ->
          Alcotest.(check (option string))
            "inner run joins outer" (Some "outer") (Trace.current ())));
  Alcotest.(check int) "one capture" 1 (List.length (Trace.recent ()));
  teardown_trace ()

let test_trace_render_and_chrome () =
  fresh_trace ();
  Trace.run ~id:"t-render" (fun () ->
      Trace.annotate "source" (Trace.String "running");
      Trace.annotate "players" (Trace.Int 5);
      Span.enter "compile" (fun () -> Span.enter "atlas" (fun () -> ())));
  let tr = Option.get (Trace.find "t-render") in
  let tree = Trace.render tr in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("render contains " ^ needle) true
        (contains tree needle))
    [ "trace t-render"; {|source="running"|}; "players=5"; "compile";
      "`-- atlas"; "dur=" ];
  (* The Chrome export must be valid JSON with one complete event per
     span plus the request itself. *)
  let chrome = Trace.chrome tr in
  (match Pet_pet.Json.parse chrome with
  | Error m -> Alcotest.failf "chrome export is not valid JSON: %s" m
  | Ok json -> (
    match Pet_pet.Json.member "traceEvents" json with
    | Some (Pet_pet.Json.List events) ->
      Alcotest.(check int) "request + 2 spans" 3 (List.length events);
      List.iter
        (fun e ->
          match Pet_pet.Json.member "ph" e with
          | Some (Pet_pet.Json.String "X") -> ()
          | _ -> Alcotest.fail "expected complete events")
        events
    | _ -> Alcotest.fail "missing traceEvents"));
  (* A hostile span name cannot break the JSON. *)
  Trace.run ~id:{|t-"quote"|} (fun () ->
      Trace.annotate "note" (Trace.String "line\nbreak\"quote\\"));
  let tr = Option.get (Trace.find {|t-"quote"|}) in
  (match Pet_pet.Json.parse (Trace.chrome tr) with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "escaping broken: %s" m);
  teardown_trace ()

(* --- Span.reset precondition ---------------------------------------------------- *)

let test_span_reset_precondition () =
  fresh ();
  Span.enter "open" (fun () ->
      match Span.reset () with
      | () -> Alcotest.fail "reset inside an open span must raise"
      | exception Invalid_argument m ->
        Alcotest.(check bool) "message names the span" true
          (contains m "open"));
  (* Between spans it is legal, including right after the exception. *)
  Span.reset ();
  Alcotest.(check int) "reset cleared" 0 (List.length (Span.roots ()))

(* --- Logging -------------------------------------------------------------------- *)

let with_log_capture f =
  let lines = ref [] in
  Log.set_sink (fun l -> lines := l :: !lines);
  Fun.protect
    ~finally:(fun () ->
      Log.set_sink prerr_endline;
      Log.set_level Log.Info;
      Log.set_json false)
    (fun () ->
      f ();
      List.rev !lines)

let test_log_levels () =
  fresh ();
  let lines =
    with_log_capture (fun () ->
        Log.set_level Log.Warn;
        Log.debug "hidden.debug";
        Log.info "hidden.info";
        Log.warn "shown.warn" ~fields:[ ("n", Trace.Int 2) ];
        Log.error "shown.error")
  in
  Alcotest.(check int) "only warn and error emitted" 2 (List.length lines);
  Alcotest.(check bool) "human shape" true
    (contains (List.nth lines 0) "[warn] shown.warn n=2");
  Alcotest.(check (option Alcotest.string)) "level round-trip"
    (Some "warn")
    (Option.map Log.level_name (Log.level_of_string "WARNING"))

let test_log_json_shape () =
  fresh ();
  let lines =
    with_log_capture (fun () ->
        Log.set_json true;
        Log.info "store.recovered"
          ~fields:
            [
              ("events", Trace.Int 9);
              ("file", Trace.String "wal-000001.log");
              ("ok", Trace.Bool true);
            ])
  in
  match lines with
  | [ line ] -> (
    match Pet_pet.Json.parse line with
    | Error m -> Alcotest.failf "log line is not valid JSON: %s" m
    | Ok json ->
      let str k =
        match Pet_pet.Json.member k json with
        | Some (Pet_pet.Json.String s) -> s
        | _ -> Alcotest.failf "missing %s" k
      in
      Alcotest.(check string) "level" "info" (str "level");
      Alcotest.(check string) "event" "store.recovered" (str "event");
      Alcotest.(check string) "string field" "wal-000001.log" (str "file");
      Alcotest.(check bool) "ts present" true
        (Pet_pet.Json.member "ts" json <> None);
      Alcotest.(check bool) "int field" true
        (Pet_pet.Json.member "events" json = Some (Pet_pet.Json.Int 9)))
  | l -> Alcotest.failf "expected one line, got %d" (List.length l)

let test_log_carries_trace_id () =
  fresh_trace ();
  let lines =
    with_log_capture (fun () ->
        Trace.run ~id:"t-log" (fun () -> Log.info "inside");
        Log.info "outside")
  in
  teardown_trace ();
  match lines with
  | [ inside; outside ] ->
    Alcotest.(check bool) "trace id attached" true
      (contains inside "trace=t-log");
    Alcotest.(check bool) "no trace id outside a capture" false
      (contains outside "trace=")
  | l -> Alcotest.failf "expected two lines, got %d" (List.length l)

(* --- Snapshot determinism ------------------------------------------------------ *)

let test_snapshot_determinism () =
  (* Two identical recorded histories — in different registration
     orders — export byte-identically under the logical clock. *)
  let record () =
    fresh ();
    let names = [ "z_total"; "a_total"; "m_total" ] in
    List.iter (fun n -> Metrics.add (Metrics.counter n) 3) names;
    let h = Metrics.histogram "w_seconds" in
    ignore (Metrics.time h (fun () -> ()));
    Export.prometheus (Metrics.snapshot ())
  in
  let record_rev () =
    fresh ();
    let names = [ "m_total"; "a_total"; "z_total" ] in
    List.iter (fun n -> Metrics.add (Metrics.counter n) 3) names;
    let h = Metrics.histogram "w_seconds" in
    ignore (Metrics.time h (fun () -> ()));
    Export.prometheus (Metrics.snapshot ())
  in
  Alcotest.(check string) "byte-identical exports" (record ()) (record_rev ())

(* --- Prometheus grammar --------------------------------------------------------- *)

(* A promtool-style line validator for the exposition format: every
   line must be a # HELP/# TYPE header or a well-formed sample, names
   must match the metric-name grammar, label values must use only the
   three legal escapes, every family's samples must follow its own
   header pair. Run against a registry loaded with hostile label
   values and help text. *)

let valid_name n =
  let first c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
  in
  let rest c = first c || (c >= '0' && c <= '9') in
  n <> ""
  && first n.[0]
  && String.for_all rest (String.sub n 1 (String.length n - 1))

(* Validate a sample line "name{k="v",...} value"; returns the metric
   name, or fails the test with the reason. *)
let check_sample line =
  let n = String.length line in
  let fail reason = Alcotest.failf "%s: %s" reason line in
  let i = ref 0 in
  while !i < n && line.[!i] <> '{' && line.[!i] <> ' ' do incr i done;
  let name = String.sub line 0 !i in
  if not (valid_name name) then fail "bad metric name";
  if !i < n && line.[!i] = '{' then begin
    incr i;
    let fin = ref false in
    while not !fin do
      let k0 = !i in
      while !i < n && line.[!i] <> '=' do incr i done;
      if !i >= n || not (valid_name (String.sub line k0 (!i - k0))) then
        fail "bad label key";
      incr i;
      if !i >= n || line.[!i] <> '"' then fail "label value not quoted";
      incr i;
      while !i < n && line.[!i] <> '"' do
        if line.[!i] = '\\' then begin
          (if
             !i + 1 >= n
             || not
                  (match line.[!i + 1] with
                  | '\\' | '"' | 'n' -> true
                  | _ -> false)
           then fail "illegal escape");
          i := !i + 2
        end
        else incr i
      done;
      if !i >= n then fail "unterminated label value";
      incr i;
      if !i < n && line.[!i] = ',' then incr i
      else if !i < n && line.[!i] = '}' then begin
        incr i;
        fin := true
      end
      else fail "expected , or } after label value"
    done
  end;
  if !i >= n || line.[!i] <> ' ' then fail "expected space before value";
  let value = String.sub line (!i + 1) (n - !i - 1) in
  if float_of_string_opt value = None then fail "unparsable sample value";
  name

let test_prometheus_grammar () =
  fresh ();
  let hostile = "a\"b\\c\nd" in
  let c =
    Metrics.counter
      ~labels:[ ("path", hostile) ]
      ~help:"Total with \"hostile\" labels\nand a newline." "pet_obs_hostile_total"
  in
  Metrics.add c 3;
  let g = Metrics.gauge ~help:"Depth of something." "pet_obs_hostile_depth" in
  Metrics.set_gauge g 1.5;
  let h =
    Metrics.histogram
      ~labels:[ ("method", "sta\\ts") ]
      "pet_obs_hostile_seconds"
  in
  Metrics.observe h 0.002;
  let text = Export.prometheus (Metrics.snapshot ()) in
  (* Escaping on the wire: quote and backslash become backslash
     escapes, the newline becomes a literal backslash-n. *)
  Alcotest.(check bool) "label value escaped" true
    (contains text {|path="a\"b\\c\nd"|});
  Alcotest.(check bool) "help newline escaped" true
    (contains text {|# HELP pet_obs_hostile_total Total with "hostile" labels\nand a newline.|});
  Alcotest.(check bool) "default help fallback" true
    (contains text "# HELP pet_obs_hostile_seconds Metric pet_obs_hostile_seconds.");
  (* Line-by-line grammar check, tracking header placement. *)
  let seen_type : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let last_help = ref None in
  let lines = String.split_on_char '\n' text in
  List.iter
    (fun line ->
      if line = "" then ()
      else if String.length line >= 7 && String.sub line 0 7 = "# HELP " then begin
        let rest = String.sub line 7 (String.length line - 7) in
        let sp =
          match String.index_opt rest ' ' with
          | Some i -> i
          | None -> Alcotest.failf "HELP without text: %s" line
        in
        let family = String.sub rest 0 sp in
        if not (valid_name family) then
          Alcotest.failf "bad HELP family: %s" line;
        let text = String.sub rest (sp + 1) (String.length rest - sp - 1) in
        if String.exists (fun ch -> ch = '\n') text then
          Alcotest.failf "unescaped newline in HELP: %s" line;
        last_help := Some family
      end
      else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
        let rest = String.sub line 7 (String.length line - 7) in
        match String.split_on_char ' ' rest with
        | [ family; kind ] ->
          if not (List.mem kind [ "counter"; "gauge"; "histogram" ]) then
            Alcotest.failf "unknown TYPE kind: %s" line;
          (* promtool insists HELP immediately precedes TYPE. *)
          Alcotest.(check (option string))
            ("HELP precedes TYPE for " ^ family)
            (Some family) !last_help;
          if Hashtbl.mem seen_type family then
            Alcotest.failf "duplicate TYPE for %s" family;
          Hashtbl.add seen_type family kind
        | _ -> Alcotest.failf "malformed TYPE line: %s" line
      end
      else begin
        let name = check_sample line in
        (* Histogram samples hang off their family's TYPE via the
           _bucket/_sum/_count suffixes; everything else must carry
           its own header. *)
        let strip suffix =
          let ns = String.length name and nx = String.length suffix in
          if ns > nx && String.sub name (ns - nx) nx = suffix then
            Some (String.sub name 0 (ns - nx))
          else None
        in
        let family =
          match
            List.find_map strip [ "_bucket"; "_sum"; "_count" ]
            |> Option.map (fun f ->
                   if Hashtbl.find_opt seen_type f = Some "histogram" then
                     Some f
                   else None)
          with
          | Some (Some f) -> f
          | _ -> name
        in
        if not (Hashtbl.mem seen_type family) then
          Alcotest.failf "sample before its TYPE header: %s" line
      end)
    lines

let test_escape_label () =
  Alcotest.(check string)
    "plain values pass through" "get_report"
    (Metrics.escape_label "get_report");
  Alcotest.(check string)
    "quote, backslash, newline" {|a\"b\\c\nd|}
    (Metrics.escape_label "a\"b\\c\nd")

let test_help_first_writer_wins () =
  fresh ();
  ignore (Metrics.counter ~help:"First." "pet_obs_help_total");
  ignore (Metrics.counter ~help:"Second." "pet_obs_help_total");
  Alcotest.(check (option string))
    "first writer wins" (Some "First.")
    (Metrics.help "pet_obs_help_total")

let () =
  Alcotest.run "obs"
    [
      ( "switch",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
          Alcotest.test_case "disabled never reads the clock" `Quick
            test_disabled_skips_clock;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick test_counter_gauge;
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_bounds;
          Alcotest.test_case "quantiles" `Quick test_quantiles;
          Alcotest.test_case "time and sum" `Quick test_time_and_sum;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and aggregation" `Quick test_span_nesting;
          Alcotest.test_case "reentrancy and exceptions" `Quick
            test_span_reentrancy;
          Alcotest.test_case "render" `Quick test_span_render;
          Alcotest.test_case "reset precondition" `Quick
            test_span_reset_precondition;
        ] );
      ( "traces",
        [
          Alcotest.test_case "capture" `Quick test_trace_capture;
          Alcotest.test_case "disabled pass-through" `Quick
            test_trace_disabled_passthrough;
          Alcotest.test_case "ring eviction order" `Quick
            test_trace_ring_eviction;
          Alcotest.test_case "slow classification" `Quick
            test_trace_slow_classification;
          Alcotest.test_case "nested run joins" `Quick
            test_trace_nested_run_joins;
          Alcotest.test_case "render and chrome export" `Quick
            test_trace_render_and_chrome;
        ] );
      ( "log",
        [
          Alcotest.test_case "levels and human shape" `Quick test_log_levels;
          Alcotest.test_case "json shape" `Quick test_log_json_shape;
          Alcotest.test_case "trace correlation" `Quick
            test_log_carries_trace_id;
        ] );
      ( "export",
        [
          Alcotest.test_case "prometheus text" `Quick test_prometheus_export;
          Alcotest.test_case "prometheus grammar (promtool-style)" `Quick
            test_prometheus_grammar;
          Alcotest.test_case "label escaping" `Quick test_escape_label;
          Alcotest.test_case "help is first-writer-wins" `Quick
            test_help_first_writer_wins;
          Alcotest.test_case "stderr line" `Quick test_line_export;
          Alcotest.test_case "snapshot determinism" `Quick
            test_snapshot_determinism;
        ] );
    ]
