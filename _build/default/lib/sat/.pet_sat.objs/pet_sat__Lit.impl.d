lib/sat/lit.ml: Fmt
