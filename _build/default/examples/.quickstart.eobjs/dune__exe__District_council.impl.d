examples/district_council.ml: Fmt Pet_casestudies Pet_pet
