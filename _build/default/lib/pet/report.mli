(** The consent report: everything requirement R3 obliges the PET to show
    an applicant before they pick which minimized form to send — their
    options (MAS), each option's privacy payoffs, what each option
    publishes, what an attacker deduces anyway, and the recommended
    choice (Algorithm 2). This is the information content of the GUI in
    the paper's Figure 3. *)

type option_report = {
  mas : Pet_valuation.Partial.t;
  benefits : string list;
  po_blank : float;
  po_sm : float;
  po_weighted : float option;
      (** the weighted PO_blank of Section 4.2, present when the provider
          evaluates a weighted payoff *)
  disclosure : Pet_game.Deduction.disclosure;
      (** published literals, attacker-deduced blanks, protected blanks —
          evaluated as if the applicant picked this option *)
  recommended : bool;
}

type t = {
  valuation : Pet_valuation.Total.t;
  granted : string list;
      (** every benefit due — full accuracy (R1) is preserved by all
          options *)
  options : option_report list;  (** lexicographic order; never empty *)
  minimization_ratio : float;
      (** blanks of the recommended option / form size (R2) *)
}

val build :
  ?weights:(string -> float) ->
  Pet_minimize.Atlas.t ->
  Pet_game.Profile.t ->
  Pet_valuation.Total.t ->
  t
(** @raise Invalid_argument when the valuation is not a player of the
    atlas (i.e. triggers no benefit or is not realistic). *)

val recommended : t -> option_report

val pp : t Fmt.t
(** Human-readable rendering (the "GUI" of the case study). *)

val to_json : t -> Json.t
