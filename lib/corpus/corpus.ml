(* A seeded generator of realistic form/rule mixes, grounded in the
   field taxonomy of "Understanding Privacy Norms through Web Forms"
   (PAPERS.md): real-world forms draw from a small number of predicate
   families — contact, demographic, financial, health — combine them at
   sizes roughly 8–40, and their popularity across a hosting service is
   heavily skewed (a few tenants take most of the traffic).

   Everything here is a pure function of the seed: the same
   [(seed, index, revision)] triple always yields byte-identical rule
   text, so corpus-driven benches, fuzz runs and CI smoke jobs are
   reproducible from a single integer. The module deliberately emits
   rule-DSL *text* rather than [Exposure.t] values — the corpus feeds
   the protocol surface (publish_rules / update_rules lines), and the
   server's own parser stays the single authority on meaning. *)

(* --- Predicate families ------------------------------------------------------ *)

(* Within a family, some fields are grouped into mutually exclusive
   brackets (income bands, employment status): the generator turns
   those into [constraint a -> !b] pairs, and [valuation] respects them
   so sampled respondents are always realistic. *)
type family = {
  family : string;
  fields : string array;
  brackets : string array array;  (* each: at most one may hold *)
}

let contact =
  {
    family = "contact";
    fields =
      [|
        "has_email"; "has_phone"; "has_address"; "has_city"; "has_zip";
        "has_country"; "has_company"; "has_website"; "has_fax";
        "newsletter_optin";
      |];
    brackets = [||];
  }

let demographic =
  {
    family = "demographic";
    fields =
      [|
        "age_over_18"; "age_over_65"; "is_student"; "is_employed";
        "is_retired"; "is_married"; "has_children"; "is_veteran";
        "lives_in_region"; "is_citizen";
      |];
    brackets = [| [| "is_student"; "is_employed"; "is_retired" |] |];
  }

let financial =
  {
    family = "financial";
    fields =
      [|
        "income_low"; "income_mid"; "income_high"; "is_homeowner";
        "has_loan"; "has_savings"; "had_bankruptcy"; "is_self_employed";
        "has_credit_card"; "owns_vehicle";
      |];
    brackets = [| [| "income_low"; "income_mid"; "income_high" |] |];
  }

let health =
  {
    family = "health";
    fields =
      [|
        "has_disability"; "chronic_condition"; "is_smoker"; "is_insured";
        "recent_hospital_stay"; "is_pregnant"; "is_caregiver";
        "needs_assistance"; "has_allergies"; "regular_checkups";
      |];
    brackets = [||];
  }

let families = [| contact; demographic; financial; health |]

(* Benefit names by rough domain, cycled as a form needs more. *)
let benefit_names =
  [|
    "newsletter"; "discount"; "support_plan"; "fee_waiver";
    "priority_access"; "subsidy"; "consultation"; "premium_reduction";
  |]

let profiles =
  [| "signup"; "survey"; "loan_application"; "aid_request"; "screening" |]

(* Family mix per profile: how many predicates to draw from each family
   (weights, normalized against the requested size). *)
let profile_mix = function
  | "signup" -> [| 3; 1; 0; 0 |]
  | "survey" -> [| 1; 2; 1; 1 |]
  | "loan_application" -> [| 1; 1; 3; 0 |]
  | "aid_request" -> [| 1; 1; 1; 2 |]
  | _ (* screening *) -> [| 0; 1; 1; 2 |]

(* --- Forms ------------------------------------------------------------------- *)

type form = {
  name : string;
  index : int;
  revision : int;
  size : int;
  predicates : string list;
  benefits : string list;
  brackets : string list list;
  text : string;
}

let min_size = 8
let max_size = 40

let rng_of ~seed parts = Random.State.make (Array.of_list (seed :: parts))

(* Sizes follow the corpus shape: mostly small forms, a long tail up to
   [hi]. Drawing the minimum of two uniforms skews low without ever
   starving the tail. *)
let size_of ?(lo = min_size) ?(hi = max_size) ~seed index =
  if lo < 2 then invalid_arg "Corpus.size_of: lo must be >= 2";
  if hi < lo then invalid_arg "Corpus.size_of: hi must be >= lo";
  let rng = rng_of ~seed [ index; 7 ] in
  let span = hi - lo + 1 in
  let a = Random.State.int rng span and b = Random.State.int rng span in
  lo + min a b

(* Draw [size] distinct predicate names according to the profile's
   family mix, suffixing repeats past a family's vocabulary. *)
let draw_predicates rng profile size =
  let mix = profile_mix profile in
  let total = Array.fold_left ( + ) 0 mix in
  let counts =
    Array.mapi (fun i w -> (i, w * size / total)) mix |> Array.to_list
  in
  let counts =
    (* distribute the rounding remainder over the weighted families *)
    let assigned = List.fold_left (fun acc (_, c) -> acc + c) 0 counts in
    let rec top_up counts missing =
      if missing = 0 then counts
      else
        match counts with
        | (i, c) :: rest when mix.(i) > 0 ->
          (i, c + 1) :: top_up rest (missing - 1)
        | pair :: rest -> pair :: top_up rest missing
        | [] -> []
    in
    top_up counts (size - assigned)
  in
  let picked = ref [] in
  List.iter
    (fun (fi, wanted) ->
      let fam = families.(fi) in
      let n = Array.length fam.fields in
      for k = 0 to wanted - 1 do
        let base = fam.fields.(k mod n) in
        let name =
          if k < n then base else Printf.sprintf "%s_%d" base (k / n + 1)
        in
        picked := name :: !picked
      done)
    counts;
  let names = Array.of_list (List.rev !picked) in
  (* Shuffle so the form order interleaves families like real forms do. *)
  for i = Array.length names - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = names.(i) in
    names.(i) <- names.(j);
    names.(j) <- tmp
  done;
  Array.to_list names

let brackets_of predicates =
  let present = List.filter (fun p -> List.mem p predicates) in
  Array.to_list families
  |> List.concat_map (fun (fam : family) ->
         Array.to_list fam.brackets
         |> List.filter_map (fun group ->
                match present (Array.to_list group) with
                | _ :: _ :: _ as g -> Some g
                | _ -> None))

(* One DNF rule body: 1–3 conjunctions of 1–3 literals. Predicates from
   the same exclusion bracket never appear positively together in one
   conjunction, so every rule stays satisfiable under the constraints. *)
let rule_body rng predicates brackets =
  let preds = Array.of_list predicates in
  let bracket_of p =
    List.find_opt (fun group -> List.mem p group) brackets
  in
  let conjunction () =
    let width = 1 + Random.State.int rng 3 in
    let rec pick acc blocked n =
      if n = 0 then acc
      else
        let p = preds.(Random.State.int rng (Array.length preds)) in
        if List.mem_assoc p acc then pick acc blocked n
        else
          let positive = Random.State.int rng 4 < 3 in
          if positive && List.mem p blocked then pick acc blocked n
          else
            let blocked =
              if positive then
                match bracket_of p with
                | Some group -> List.filter (( <> ) p) group @ blocked
                | None -> blocked
              else blocked
            in
            pick ((p, positive) :: acc) blocked (n - 1)
    in
    pick [] [] width |> List.rev
    |> List.map (fun (p, positive) -> if positive then p else "!" ^ p)
    |> String.concat " & "
  in
  let conjunctions = 1 + Random.State.int rng 3 in
  List.init conjunctions (fun _ -> conjunction ())
  |> List.sort_uniq compare
  |> String.concat " | "

let render ~predicates ~benefits ~rules ~brackets =
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("form " ^ String.concat " " predicates ^ "\n");
  Buffer.add_string buf ("benefits " ^ String.concat " " benefits ^ "\n");
  List.iter
    (fun (b, body) ->
      Buffer.add_string buf (Printf.sprintf "rule %s := %s\n" b body))
    rules;
  List.iter
    (fun group ->
      let rec pairs = function
        | a :: (b :: _ as rest) ->
          Buffer.add_string buf (Printf.sprintf "constraint %s -> !%s\n" a b);
          pairs rest
        | _ -> ()
      in
      pairs group)
    brackets;
  Buffer.contents buf

let form ?(seed = 0) ?size ?(revision = 1) index =
  if index < 0 then invalid_arg "Corpus.form: index must be >= 0";
  if revision < 1 then invalid_arg "Corpus.form: revision must be >= 1";
  let rng = rng_of ~seed [ index; 1 ] in
  let profile = profiles.(Random.State.int rng (Array.length profiles)) in
  let size = match size with Some s -> s | None -> size_of ~seed index in
  if size < 2 then invalid_arg "Corpus.form: size must be >= 2";
  (* The predicate set is a function of (seed, index) only: a revision
     re-rolls the rules over the *same* form, which is what a real rule
     update does — respondents' answers stay valid across versions. *)
  let predicates = draw_predicates rng profile size in
  let benefit_count = 2 + Random.State.int rng 3 in
  let benefits =
    List.init benefit_count (fun i ->
        let base = benefit_names.(i mod Array.length benefit_names) in
        if i < Array.length benefit_names then base
        else Printf.sprintf "%s_%d" base (i / Array.length benefit_names + 1))
  in
  let brackets = brackets_of predicates in
  let rule_rng = rng_of ~seed [ index; 2; revision ] in
  let rules =
    List.map (fun b -> (b, rule_body rule_rng predicates brackets)) benefits
  in
  let name = Printf.sprintf "t%03d-%s" index profile in
  {
    name;
    index;
    revision;
    size;
    predicates;
    benefits;
    brackets;
    text = render ~predicates ~benefits ~rules ~brackets;
  }

(* --- Respondents ------------------------------------------------------------- *)

(* A random valuation (bitstring, first predicate leftmost) respecting
   the form's exclusion brackets: flip fair coins, then keep at most one
   member of each bracket. Never enumerates the valuation space, so it
   works at size 40 as readily as at 8. *)
let valuation ?(seed = 0) form respondent =
  let rng = rng_of ~seed [ form.index; 3; respondent ] in
  let bits =
    List.map (fun p -> (p, Random.State.bool rng)) form.predicates
  in
  let bits =
    List.fold_left
      (fun bits group ->
        let holders = List.filter (fun p -> List.assoc p bits) group in
        match holders with
        | [] | [ _ ] -> bits
        | _ ->
          let keep = List.nth holders (Random.State.int rng (List.length holders)) in
          List.map
            (fun (p, v) ->
              if List.mem p group && p <> keep then (p, false) else (p, v))
            bits)
      bits form.brackets
  in
  String.concat "" (List.map (fun (_, v) -> if v then "1" else "0") bits)

(* --- Popularity -------------------------------------------------------------- *)

(* Zipf weights: tenant [i] gets 1/(i+1)^exponent of the traffic. The
   empirical web-form mix is roughly Zipfian with exponent ~1. *)
let weights ?(exponent = 1.0) count =
  if count < 1 then invalid_arg "Corpus.weights: count must be >= 1";
  let w = Array.init count (fun i -> 1. /. Float.pow (float_of_int (i + 1)) exponent) in
  let total = Array.fold_left ( +. ) 0. w in
  Array.map (fun x -> x /. total) w

let pick rng weights =
  let u = Random.State.float rng 1.0 in
  let n = Array.length weights in
  let rec go i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. weights.(i) in
      if u < acc then i else go (i + 1) acc
  in
  go 0 0.

(* --- Scenarios --------------------------------------------------------------- *)

type scenario = { seed : int; forms : form array; popularity : float array }

let scenario ?(seed = 0) ?lo ?hi ~count () =
  if count < 1 then invalid_arg "Corpus.scenario: count must be >= 1";
  {
    seed;
    forms =
      Array.init count (fun i ->
          form ~seed ~size:(size_of ?lo ?hi ~seed i) i);
    popularity = weights count;
  }

(* Re-roll a form's rules in place: the next revision of the same
   tenant (same predicates and benefits, new rule bodies). *)
let update ?(seed = 0) f =
  form ~seed ~size:f.size ~revision:(f.revision + 1) f.index
