(** Offline compliance audit: replay a data directory's write-ahead log
    and prove, record by record, that what the provider persisted is
    what the PET allows it to persist — without a running service and
    without trusting the code that wrote the log.

    [pet audit <data-dir>] walks the exact files recovery would replay
    ({!Pet_store.Store.replay_chain}), re-reads every checksummed record
    ({!Pet_store.Record}), and checks six properties:

    - {b integrity} — every record is whole, checksummed and decodes to
      a known event. A torn tail on the {e last} segment is the
      signature of a crash mid-append (recovery truncates it) and is
      reported as a note, not a violation; torn or corrupt bytes
      anywhere else are violations.
    - {b r2} — no record carries a ["valuation"] field: the raw form
      must never reach disk (requirement R2), only minimized forms.
    - {b minimality} — every persisted form (a grant's archived record,
      a session's chosen option) still proves {e exactly} the benefits
      recorded next to it ({!Pet_pet.Workflow.audit}) and is
      ≤-minimal for them ({!Pet_minimize.Algorithm1.is_minimal}),
      re-deriving both from the rule text the log itself retains.
    - {b revocation} — once a [session_revoked] record appears, no later
      record re-establishes that session's data: no grant, no chosen
      form, no session transition. Tombstones never resurrect.
    - {b expiry} — once the log's own clock (the largest timestamp
      replayed so far, including the record under scrutiny) passes a
      session's [session_expiry] horizon, no later record establishes
      data for it. The latest horizon for a session wins, matching the
      service.
    - {b replay} — the log is self-consistent under replay: grant ids
      are sequential per (tenant, digest) ledger, sessions transition
      only after they are created, and no session is created twice.

    Every violation is anchored at the byte offset of the offending
    record in its file, so an operator can inspect (or excise) the exact
    bytes. The checks are {e establishment-time}: the append-only log
    legitimately retains the bytes of a grant that was later revoked —
    replay tombstones it — so a healthy log always passes, while any
    record that (re)establishes data past its revocation or horizon is
    flagged. *)

type violation = {
  file : string;  (** base name of the snapshot or segment *)
  offset : int;  (** byte offset of the record's frame header *)
  detail : string;
}

type property = {
  name : string;
      (** ["integrity"], ["r2"], ["minimality"], ["revocation"],
          ["expiry"] or ["replay"] *)
  checked : int;  (** records this property examined *)
  violations : violation list;  (** log order *)
}

type report = {
  dir : string;
  files : int;  (** snapshot + segments walked *)
  records : int;  (** whole records read *)
  note : string option;
      (** a torn tail on the last segment: legitimate crash damage,
          reported but not a violation *)
  properties : property list;  (** the six properties, fixed order *)
}

val run :
  ?mode:Pet_minimize.Algorithm1.mode ->
  ?backend:Pet_rules.Engine.backend ->
  string ->
  (report, string) result
(** Audit a data directory. Nothing on disk is touched. [Error] only
    when the directory itself is unreadable — a damaged log is a
    {e report} with violations, not an error. [mode] (default [Chain])
    and [backend] (default [Bdd]) select the minimality recheck, as in
    the online auditor. *)

val pass : report -> bool
(** No property has a violation. A note (torn tail) does not fail. *)

val to_json : report -> Pet_pet.Json.t
(** Machine-readable rendering: [{"dir", "files", "records", "pass",
    "note"?, "properties": [{"name", "checked", "violations":
    [{"file", "offset", "detail"}]}]}]. *)

val pp : Format.formatter -> report -> unit
(** Human rendering: one PASS/FAIL line per property, violations with
    [file @ byte offset], and a final verdict line. *)
