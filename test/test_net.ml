(* Tests for the TCP transport layer: shard-map stability and
   distribution, collision-free sharded id generation, group-commit
   batching under concurrent submitters, durable-before-reply over a
   real socket, batched-append crash prefixes, sweep fairness across
   shards, and cross-shard rule sharing. *)

module Spec = Pet_rules.Spec
module Persist = Pet_server.Persist
module Service = Pet_server.Service
module Session = Pet_server.Session
module Shared = Pet_server.Shared
module Store = Pet_store.Store
module Shard_map = Pet_net.Shard_map
module Group_commit = Pet_net.Group_commit
module Server = Pet_net.Server
module Running = Pet_casestudies.Running

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "pet_net_test_%d_%d" (Unix.getpid ()) !counter)
    in
    let rec remove path =
      if Sys.is_directory path then begin
        Array.iter
          (fun entry -> remove (Filename.concat path entry))
          (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
    in
    if Sys.file_exists dir then remove dir;
    dir

let resolve = function
  | "running" -> Some (Spec.to_string (Running.exposure ()))
  | _ -> None

let read_dir_contents dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.map (fun file ->
         In_channel.with_open_bin (Filename.concat dir file)
           In_channel.input_all)
  |> String.concat ""

(* --- Shard map ------------------------------------------------------------------ *)

let test_shard_map_stable () =
  (* The mapping is part of the on-disk contract: recovery must route a
     replayed session to the same shard that created it, in a different
     process. Pin concrete values so an accidental hash change fails
     loudly. *)
  Alcotest.(check int) "s0" (Shard_map.hash "s0") (Shard_map.hash "s0");
  List.iter
    (fun id ->
      let h = Shard_map.hash id in
      Alcotest.(check bool) (id ^ " non-negative") true (h >= 0);
      Alcotest.(check int)
        (id ^ " owner consistent") (h mod 4)
        (Shard_map.owner ~shards:4 id))
    [ "s0"; "s1"; "s17"; "s123456"; "" ];
  Alcotest.(check int) "single shard" 0 (Shard_map.owner ~shards:1 "s99")

let test_shard_map_distribution () =
  let shards = 4 in
  let per_shard = Array.make shards 0 in
  for i = 0 to 999 do
    let owner = Shard_map.owner ~shards (Printf.sprintf "s%d" i) in
    per_shard.(owner) <- per_shard.(owner) + 1
  done;
  Array.iteri
    (fun i n ->
      if n < 100 then
        Alcotest.failf "shard %d got only %d of 1000 sequential ids" i n)
    per_shard

let test_sharded_ids_disjoint () =
  (* Each shard filters the same id sequence by ownership, so the union
     of ids minted by independent shards has no collisions. *)
  let shards = 4 in
  let stores =
    Array.init shards (fun index ->
        Session.create_store
          ~owns:(fun id -> Shard_map.owner ~shards id = index)
          ())
  in
  let seen = Hashtbl.create 256 in
  Array.iteri
    (fun index store ->
      for _ = 1 to 50 do
        let session = Session.create store ~digest:"d" ~now:0. () in
        let id = session.Session.id in
        Alcotest.(check int) (id ^ " owned by its shard") index
          (Shard_map.owner ~shards id);
        if Hashtbl.mem seen id then Alcotest.failf "id %s minted twice" id;
        Hashtbl.add seen id ()
      done)
    stores;
  Alcotest.(check int) "200 distinct ids" 200 (Hashtbl.length seen)

(* --- Group commit ---------------------------------------------------------------- *)

let test_group_commit_batches () =
  let dir = temp_dir () in
  (match Store.open_dir ~fsync:false dir with
  | Error m -> Alcotest.failf "open_dir: %s" m
  | Ok (store, _) ->
    let writer = Group_commit.start store in
    let submitters = 8 and each = 5 in
    let threads =
      List.init submitters (fun t ->
          Thread.create
            (fun () ->
              for i = 1 to each do
                Group_commit.submit writer
                  [
                    Persist.Session_created
                      {
                        id = Printf.sprintf "s%d_%d" t i;
                        digest = "d";
                        tenant = None;
                        at = 0.;
                      };
                  ]
              done)
            ())
    in
    List.iter Thread.join threads;
    Group_commit.stop writer;
    Store.close store;
    let stats = Group_commit.stats writer in
    Alcotest.(check int) "events" (submitters * each) stats.Group_commit.events;
    Alcotest.(check bool) "batched at least once" true
      (stats.Group_commit.batches <= stats.Group_commit.events
      && stats.Group_commit.batches > 0);
    Alcotest.(check bool) "max batch sane" true
      (stats.Group_commit.max_batch >= 1
      && stats.Group_commit.max_batch <= stats.Group_commit.events));
  (* Every submitted event survives, whatever the batching was. *)
  match Store.open_dir ~fsync:false dir with
  | Error m -> Alcotest.failf "reopen: %s" m
  | Ok (store, recovery) ->
    Store.close store;
    Alcotest.(check int) "all events recovered" 40
      (List.length recovery.Store.events)

let test_submit_after_stop_raises () =
  let dir = temp_dir () in
  match Store.open_dir ~fsync:false dir with
  | Error m -> Alcotest.failf "open_dir: %s" m
  | Ok (store, _) ->
    let writer = Group_commit.start store in
    Group_commit.stop writer;
    (match
       Group_commit.submit writer
         [
           Persist.Session_created
             { id = "s0"; digest = "d"; tenant = None; at = 0. };
         ]
     with
    | () -> Alcotest.fail "submit after stop did not raise"
    | exception Sys_error _ -> ());
    Store.close store

let test_append_batch_crash_prefix () =
  (* A batch torn mid-record by a crash recovers to a prefix of the
     batch — never a suffix, never a hole. *)
  let dir = temp_dir () in
  (match Store.open_dir ~fsync:false dir with
  | Error m -> Alcotest.failf "open_dir: %s" m
  | Ok (store, _) ->
    Store.append_batch store
      (List.init 5 (fun i ->
           Persist.Session_created
             {
               id = Printf.sprintf "s%d" i;
               digest = "d";
               tenant = None;
               at = 0.;
             }));
    Store.close store);
  let file =
    match Sys.readdir dir |> Array.to_list |> List.sort compare with
    | f :: _ -> Filename.concat dir f
    | [] -> Alcotest.fail "no wal file"
  in
  let size = (Unix.stat file).Unix.st_size in
  Unix.truncate file (size - 7);
  match Store.open_dir ~fsync:false dir with
  | Error m -> Alcotest.failf "reopen: %s" m
  | Ok (store, recovery) ->
    Store.close store;
    let ids =
      List.map
        (function
          | Persist.Session_created { id; _ } -> id
          | _ -> Alcotest.fail "unexpected event kind")
        recovery.Store.events
    in
    Alcotest.(check (list string)) "prefix of the batch"
      [ "s0"; "s1"; "s2"; "s3" ] ids;
    Alcotest.(check bool) "tear reported" true
      (recovery.Store.truncated <> None)

(* --- TCP server ------------------------------------------------------------------- *)

let connect port =
  let fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
  Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port));
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let request oc ic line =
  output_string oc line;
  output_char oc '\n';
  flush oc;
  match In_channel.input_line ic with
  | Some response -> response
  | None -> Alcotest.fail "server closed the connection"

let with_server ?store ?(domains = 4) f =
  match
    Server.start ~resolve ?store ~sweep_interval:0. ~domains ~port:0
      ~now:Unix.gettimeofday ()
  with
  | Error m -> Alcotest.failf "server start: %s" m
  | Ok server ->
    Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f server)

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* pull "session":"sN" out of a response line *)
let session_of response =
  let key = {|"session":"|} in
  let rec find i =
    if i + String.length key >= String.length response then
      Alcotest.failf "no session in %s" response
    else if String.sub response i (String.length key) = key then begin
      let start = i + String.length key in
      let stop = String.index_from response start '"' in
      String.sub response start (stop - start)
    end
    else find (i + 1)
  in
  find 0

let test_durable_before_reply () =
  let dir = temp_dir () in
  match Store.open_dir ~fsync:true dir with
  | Error m -> Alcotest.failf "open_dir: %s" m
  | Ok (store, _) ->
    Fun.protect
      ~finally:(fun () -> Store.close store)
      (fun () ->
        with_server ~store (fun server ->
            let fd, ic, oc = connect (Server.port server) in
            Fun.protect
              ~finally:(fun () -> Unix.close fd)
              (fun () ->
                let r1 =
                  request oc ic
                    {|{"pet":1,"id":1,"method":"publish_rules","params":{"source":"running"}}|}
                in
                Alcotest.(check bool) "publish ok" true (contains r1 {|"ok"|});
                (* The reply for publish is in hand: its Rules event must
                   already be on disk, before any later append. *)
                Alcotest.(check bool) "rules durable before reply" true
                  (contains (read_dir_contents dir) {|"ev":"rules"|});
                let r2 =
                  request oc ic
                    {|{"pet":1,"id":2,"method":"new_session","params":{"source":"running"}}|}
                in
                let sid = session_of r2 in
                Alcotest.(check bool) "session durable before reply" true
                  (contains (read_dir_contents dir)
                     (Printf.sprintf {|"id":"%s"|} sid));
                (* And the whole flow commits through the single writer. *)
                let r3 =
                  request oc ic
                    (Printf.sprintf
                       {|{"pet":1,"id":3,"method":"get_report","params":{"session":"%s","valuation":"101"}}|}
                       sid)
                in
                Alcotest.(check bool) "report ok" true (contains r3 {|"ok"|});
                let r4 =
                  request oc ic
                    (Printf.sprintf
                       {|{"pet":1,"id":4,"method":"choose_option","params":{"session":"%s","option":0}}|}
                       sid)
                in
                Alcotest.(check bool) "choose ok" true (contains r4 {|"ok"|});
                let r5 =
                  request oc ic
                    (Printf.sprintf
                       {|{"pet":1,"id":5,"method":"submit_form","params":{"session":"%s"}}|}
                       sid)
                in
                Alcotest.(check bool) "submit ok" true (contains r5 {|"ok"|});
                Alcotest.(check bool) "grant durable before reply" true
                  (contains (read_dir_contents dir) {|"ev":"grant"|}));
            match Server.batch_stats server with
            | None -> Alcotest.fail "no batch stats with a store"
            | Some stats ->
              (* publish + create + choose + submit + grant = 5 events *)
              Alcotest.(check int) "all events committed" 5
                stats.Group_commit.events))

let test_cross_shard_rules () =
  (* One client publishes once; sessions land on whichever shard owns
     their id and every shard can serve them — the canonical text is
     shared even though each shard compiles its own engine. *)
  with_server (fun server ->
      let fd, ic, oc = connect (Server.port server) in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let r =
            request oc ic
              {|{"pet":1,"id":0,"method":"publish_rules","params":{"source":"running"}}|}
          in
          Alcotest.(check bool) "publish ok" true (contains r {|"ok"|});
          let shards_hit = Hashtbl.create 4 in
          for i = 1 to 12 do
            let r =
              request oc ic
                (Printf.sprintf
                   {|{"pet":1,"id":%d,"method":"new_session","params":{"source":"running"}}|}
                   i)
            in
            let sid = session_of r in
            Hashtbl.replace shards_hit (Shard_map.owner ~shards:4 sid) ();
            let report =
              request oc ic
                (Printf.sprintf
                   {|{"pet":1,"id":%d,"method":"get_report","params":{"session":"%s","valuation":"101"}}|}
                   (100 + i) sid)
            in
            Alcotest.(check bool)
              (sid ^ " served by its shard")
              true
              (contains report {|"ok"|})
          done;
          (* Round-robin over 12 sessionless creates on 4 shards touches
             every shard. *)
          Alcotest.(check int) "all shards minted sessions" 4
            (Hashtbl.length shards_hit)))

(* --- Sweep fairness ---------------------------------------------------------------- *)

let test_sweep_fairness () =
  (* A hot shard with many expired sessions cannot starve another
     shard's TTL expiry: each shard sweeps its own sessions on its own
     tick, and each tick's work is bounded by the budget. *)
  let clock = ref 0. in
  let now () = !clock in
  let shards = 2 in
  let shared = Shared.create () in
  let service index =
    Service.create ~resolve
      ~owns:(fun id -> Shard_map.owner ~shards id = index)
      ~shared ~ttl:10. ~now ()
  in
  let hot = service 0 and cold = service 1 in
  let create service n =
    for _ = 1 to n do
      ignore
        (Service.handle_line service
           {|{"pet":1,"id":1,"method":"new_session","params":{"source":"running"}}|})
    done
  in
  ignore
    (Service.handle_line hot
       {|{"pet":1,"id":0,"method":"publish_rules","params":{"source":"running"}}|});
  create hot 100;
  create cold 3;
  clock := 1000.;
  (* the cold shard expires everything in one bounded tick, regardless
     of the hot shard's backlog *)
  let swept_cold = Service.sweep_tick ~budget:8 cold in
  Alcotest.(check int) "cold shard fully swept" 3 swept_cold;
  Alcotest.(check int) "cold shard empty"
    0 (Service.session_counters cold).Session.active;
  (* the hot shard needs several bounded ticks — each one makes
     progress and none exceeds its budget *)
  let rec drain ticks total =
    let swept = Service.sweep_tick ~budget:8 hot in
    if swept > 8 then Alcotest.failf "tick swept %d > budget" swept;
    if (Service.session_counters hot).Session.active = 0 then
      (ticks + 1, total + swept)
    else if ticks > 100 then Alcotest.fail "hot shard never drained"
    else drain (ticks + 1) (total + swept)
  in
  let ticks, total = drain 0 0 in
  Alcotest.(check int) "hot shard fully swept" 100 total;
  Alcotest.(check bool) "took multiple bounded ticks" true (ticks > 1);
  (* counters stay coherent when summed across shards *)
  let sum f =
    f (Service.session_counters hot) + f (Service.session_counters cold)
  in
  Alcotest.(check int) "created summed" 103 (sum (fun c -> c.Session.created));
  Alcotest.(check int) "expired summed" 103 (sum (fun c -> c.Session.expired));
  Alcotest.(check int) "active summed" 0 (sum (fun c -> c.Session.active))

let () =
  Alcotest.run "pet_net"
    [
      ( "shard_map",
        [
          Alcotest.test_case "stable" `Quick test_shard_map_stable;
          Alcotest.test_case "distribution" `Quick test_shard_map_distribution;
          Alcotest.test_case "ids disjoint" `Quick test_sharded_ids_disjoint;
        ] );
      ( "group_commit",
        [
          Alcotest.test_case "concurrent batching" `Quick
            test_group_commit_batches;
          Alcotest.test_case "submit after stop" `Quick
            test_submit_after_stop_raises;
          Alcotest.test_case "crash prefix" `Quick
            test_append_batch_crash_prefix;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "durable before reply" `Quick
            test_durable_before_reply;
          Alcotest.test_case "cross-shard rules" `Quick test_cross_shard_rules;
        ] );
      ( "sweep",
        [ Alcotest.test_case "fairness" `Quick test_sweep_fairness ] );
    ]
