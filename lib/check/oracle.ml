module Universe = Pet_valuation.Universe
module Total = Pet_valuation.Total
module Partial = Pet_valuation.Partial
module Exposure = Pet_rules.Exposure
module Engine = Pet_rules.Engine
module A1 = Pet_minimize.Algorithm1
module Atlas = Pet_minimize.Atlas
module Payoff = Pet_game.Payoff
module Strategy = Pet_game.Strategy
module Equilibrium = Pet_game.Equilibrium

let default_player_samples = 8

let strings = Fmt.(list ~sep:(any ", ") string)

(* Keep a deterministic spread of a MAS's potential players rather than
   its first few (which share a bit prefix). *)
let spread k l =
  let n = List.length l in
  if n <= k then l
  else List.filteri (fun i _ -> i mod (n / k) = 0) l |> List.filteri (fun i _ -> i < k)

let check ?(mode = A1.Chain) ?(payoff = Payoff.Blank)
    ?(player_samples = default_player_samples) e =
  let tally = Finding.tally () in
  let brute = Engine.create ~backend:Engine.Brute e in
  let atlas = Atlas.build ~mode (Engine.create ~backend:Engine.Bdd e) in
  List.iteri
    (fun i (c : A1.choice) ->
      (* Accuracy, definition-level: the published MAS proves exactly the
         benefits it claims, per the brute-force reference semantics. *)
      Finding.check tally ~stage:"oracle/accurate"
        (List.equal String.equal (Engine.benefits brute c.mas) c.benefits)
        (fun () ->
          Fmt.str "MAS %a claims {%a} but brute-force proves {%a}" Partial.pp
            c.mas strings c.benefits strings
            (Engine.benefits brute c.mas));
      (* ... and for each sampled player: exactly the player's own due
         benefits (Definition 3.13's accuracy, per valuation). Potential
         players include constraint-violating extensions (the attacker's
         candidate set); accuracy is only defined for real applicants, so
         sample the constraint-satisfying ones. *)
      let applicants =
        List.filter
          (fun pi ->
            Exposure.satisfies_constraints e (Atlas.player atlas pi))
          (Atlas.players_of_mas atlas i)
      in
      List.iter
        (fun pi ->
          let v = Atlas.player atlas pi in
          Finding.check tally ~stage:"oracle/accurate"
            (A1.is_accurate brute v c.mas)
            (fun () ->
              Fmt.str "MAS %a is not accurate for player %a" Partial.pp c.mas
                Total.pp v))
        (spread player_samples applicants);
      (* Minimality: no single binding can be dropped (modulo closure)
         while proving the same benefits. *)
      Finding.check tally ~stage:"oracle/minimal"
        (A1.is_minimal ~mode brute c.mas ~benefits:c.benefits)
        (fun () ->
          Fmt.str "MAS %a is not ≤-minimal: a binding can be dropped while \
                   still proving {%a}"
            Partial.pp c.mas strings c.benefits))
    (Atlas.mas_list atlas);
  (* Algorithm 2: the committed profile must refine (in zero or more
     best-response steps) to a verified Nash equilibrium, and under the
     equilibrium every move is a best response. *)
  if Atlas.player_count atlas > 0 then begin
    let profile = Strategy.compute ~payoff atlas in
    let refined, converged = Equilibrium.refine profile payoff in
    Finding.check tally ~stage:"oracle/nash" converged (fun () ->
        "best-response dynamics did not converge");
    Finding.check tally ~stage:"oracle/nash"
      (Equilibrium.is_nash refined payoff)
      (fun () ->
        Fmt.str "refined profile is not Nash: %a"
          Fmt.(list ~sep:(any "; ") Equilibrium.pp_deviation)
          (spread 4 (Equilibrium.deviations refined payoff)))
  end;
  Finding.report tally
