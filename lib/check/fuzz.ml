module Json = Pet_pet.Json
module Spec = Pet_rules.Spec
module Exposure = Pet_rules.Exposure
module Total = Pet_valuation.Total
module Generate = Pet_rules.Generate
module Service = Pet_server.Service
module Registry = Pet_server.Registry
module Proto = Pet_server.Proto

type stats = {
  requests : int;
  ok : int;
  errors : int;
  invalid_responses : int;
  crashes : (string * string) list;
  by_code : (string * int) list;
}

(* Small generated rule sets so compiled providers are cheap and the
   registry sees several distinct digests (exercising LRU eviction). *)
let spec_config =
  {
    Generate.predicates = 5;
    benefits = 2;
    conjunctions = 2;
    width = 2;
    implications = 1;
  }

let truncate_for_display line =
  if String.length line <= 120 then line else String.sub line 0 120 ^ "…"

let printable = "abcdefghijklmnopqrstuvwxyz0123456789_:{}[]\",\\ &|!()=->\n"

let run ?(seed = 0) ~count () =
  let rng = Random.State.make [| 0xf022; seed; count |] in
  let tick = ref 0. in
  let service =
    Service.create ~capacity:4 ~ttl:500.
      ~resolve:(fun _ -> None)
      ~now:(fun () -> tick := !tick +. 1.; !tick)
      ()
  in
  let corpora =
    List.map
      (fun i ->
        let e = Generate.exposure ~config:spec_config ~seed:(seed + i) () in
        let text = Spec.to_string e in
        (text, Registry.digest text, Array.of_list (Exposure.eligible e)))
      [ 0; 1; 2; 3; 4; 5 ]
  in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let pick_corpus () = pick corpora in
  let junk n =
    String.init
      (Random.State.int rng (max 1 n))
      (fun _ ->
        if Random.State.bool rng then
          printable.[Random.State.int rng (String.length printable)]
        else Char.chr (Random.State.int rng 256))
  in
  let session () = Printf.sprintf "s%d" (Random.State.int rng 24) in
  let valuation () =
    match Random.State.int rng 3 with
    | 0 ->
      (* The right length for the generated universes. *)
      String.init spec_config.Generate.predicates (fun _ ->
          if Random.State.bool rng then '1' else '0')
    | 1 -> junk 8
    | _ ->
      let _, _, eligible = pick_corpus () in
      if Array.length eligible = 0 then junk 5
      else Total.to_string eligible.(Random.State.int rng (Array.length eligible))
  in
  let envelope method_ params =
    Json.to_string
      (Json.Obj
         [
           ("pet", Json.Int Proto.version);
           ("id", Json.Int (Random.State.int rng 1000));
           ("method", Json.String method_);
           ("params", Json.Obj params);
         ])
  in
  let rules_params () =
    match Random.State.int rng 4 with
    | 0 ->
      let text, _, _ = pick_corpus () in
      [ ("rules", Json.String text) ]
    | 1 ->
      let _, digest, _ = pick_corpus () in
      [ ("digest", Json.String digest) ]
    | 2 -> [ ("source", Json.String (junk 6)) ]
    | _ -> [ ("rules", Json.String (junk 60)) ]
  in
  let base_line () =
    match Random.State.int rng 10 with
    | 0 -> envelope "publish_rules" (rules_params ())
    | 1 -> envelope "new_session" (rules_params ())
    | 2 ->
      envelope "get_report"
        [
          ("session", Json.String (session ()));
          ("valuation", Json.String (valuation ()));
        ]
    | 3 ->
      envelope "choose_option"
        (("session", Json.String (session ()))
        ::
        (if Random.State.bool rng then
           [ ("option", Json.Int (Random.State.int rng 12 - 3)) ]
         else [ ("mas", Json.String (junk 6)) ]))
    | 4 -> envelope "submit_form" [ ("session", Json.String (session ())) ]
    | 5 -> envelope "audit" (rules_params ())
    | 6 -> envelope "stats" []
    | 7 -> envelope (junk 10) [ (junk 4, Json.String (junk 4)) ]
    | 8 ->
      (* Wrong or missing envelope versions and shapes. *)
      (match Random.State.int rng 4 with
      | 0 -> {|{"pet":99,"method":"stats"}|}
      | 1 -> {|{"method":"stats"}|}
      | 2 -> {|[1,2,3]|}
      | _ -> {|{"pet":"one","method":"stats","params":7}|})
    | _ -> junk 80
  in
  (* Expensive lines built once and replayed. *)
  let oversized = String.make (Proto.max_line_bytes + 1) 'x' in
  let deep = String.concat "" (List.init 600 (fun _ -> "[")) in
  let mutate line =
    match Random.State.int rng 12 with
    | 0 when String.length line > 1 ->
      String.sub line 0 (Random.State.int rng (String.length line))
    | 1 ->
      String.mapi
        (fun _ c ->
          if Random.State.int rng 20 = 0 then Char.chr (Random.State.int rng 256)
          else c)
        line
    | 2 ->
      let i = Random.State.int rng (String.length line + 1) in
      String.sub line 0 i ^ junk 12
      ^ String.sub line i (String.length line - i)
    | 3 -> line ^ line
    | 4 -> deep
    | 5 when Random.State.int rng 50 = 0 -> oversized
    | _ -> line
  in
  let requests = ref 0
  and ok = ref 0
  and errors = ref 0
  and invalid = ref 0
  and crashes = ref []
  and codes = Hashtbl.create 16 in
  let feed line =
    incr requests;
    match Service.handle_line service line with
    | exception exn ->
      crashes := (truncate_for_display line, Printexc.to_string exn) :: !crashes
    | response -> (
      match Json.parse response with
      | Ok (Json.Obj _ as o) -> (
        match (Json.member "ok" o, Json.member "error" o) with
        | Some _, None -> incr ok
        | None, Some e ->
          incr errors;
          let code =
            match Option.bind (Json.member "code" e) Json.string_opt with
            | Some c -> c
            | None -> "<uncoded>"
          in
          Hashtbl.replace codes code
            (1 + Option.value ~default:0 (Hashtbl.find_opt codes code))
        | _ -> incr invalid)
      | Ok _ | Error _ -> incr invalid)
  in
  (* Seed real state so mutated requests land on live sessions too. *)
  let text, digest, eligible = pick_corpus () in
  feed (envelope "publish_rules" [ ("rules", Json.String text) ]);
  feed (envelope "new_session" [ ("digest", Json.String digest) ]);
  if Array.length eligible > 0 then
    feed
      (envelope "get_report"
         [
           ("session", Json.String "s0");
           ("valuation", Json.String (Total.to_string eligible.(0)));
         ]);
  while !requests < count do
    feed (mutate (base_line ()))
  done;
  {
    requests = !requests;
    ok = !ok;
    errors = !errors;
    invalid_responses = !invalid;
    crashes = List.rev !crashes;
    by_code =
      Hashtbl.fold (fun c n acc -> (c, n) :: acc) codes []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
  }

let pp ppf s =
  Fmt.pf ppf
    "fuzz: %d requests, %d ok, %d structured errors, %d invalid responses, \
     %d crashes"
    s.requests s.ok s.errors s.invalid_responses (List.length s.crashes);
  List.iter
    (fun (line, exn) -> Fmt.pf ppf "@.crash: %s@.  on: %s" exn line)
    s.crashes
