type node = int

let zero = 0
let one = 1

(* The terminals sit at indices 0 and 1 with a pseudo-variable larger than
   any real variable so that ordering logic treats them as deepest. *)
let terminal_var = max_int

type man = {
  mutable vars : int array; (* variable of each node *)
  mutable lows : int array;
  mutable highs : int array;
  mutable next : int; (* next free node index *)
  unique : (int * int * int, int) Hashtbl.t;
  ite_cache : (int * int * int, int) Hashtbl.t;
  mutable n_ite : int; (* memoized [ite] entries (cheap cases excluded) *)
  mutable n_ite_hits : int; (* of which answered from [ite_cache] *)
}

let man () =
  let cap = 1024 in
  let m =
    {
      vars = Array.make cap terminal_var;
      lows = Array.make cap (-1);
      highs = Array.make cap (-1);
      next = 2;
      unique = Hashtbl.create 1024;
      ite_cache = Hashtbl.create 1024;
      n_ite = 0;
      n_ite_hits = 0;
    }
  in
  m.vars.(0) <- terminal_var;
  m.vars.(1) <- terminal_var;
  m

let var_of m n = m.vars.(n)
let low_of m n = m.lows.(n)
let high_of m n = m.highs.(n)

let grow m =
  let cap = Array.length m.vars in
  let cap' = 2 * cap in
  let extend a fill =
    let a' = Array.make cap' fill in
    Array.blit a 0 a' 0 cap;
    a'
  in
  m.vars <- extend m.vars terminal_var;
  m.lows <- extend m.lows (-1);
  m.highs <- extend m.highs (-1)

(* Hash-consing constructor; maintains reduction (no redundant node) and
   uniqueness invariants. *)
let mk m v low high =
  if low = high then low
  else
    let key = (v, low, high) in
    match Hashtbl.find_opt m.unique key with
    | Some n -> n
    | None ->
      if m.next >= Array.length m.vars then grow m;
      let n = m.next in
      m.next <- n + 1;
      m.vars.(n) <- v;
      m.lows.(n) <- low;
      m.highs.(n) <- high;
      Hashtbl.add m.unique key n;
      n

let var m i =
  if i < 0 then invalid_arg "Bdd.var: negative variable";
  mk m i zero one

let nvar m i =
  if i < 0 then invalid_arg "Bdd.nvar: negative variable";
  mk m i one zero

let cofactors m n v =
  if var_of m n = v then (low_of m n, high_of m n) else (n, n)

let rec ite m f g h =
  if f = one then g
  else if f = zero then h
  else if g = h then g
  else if g = one && h = zero then f
  else begin
    m.n_ite <- m.n_ite + 1;
    let key = (f, g, h) in
    match Hashtbl.find_opt m.ite_cache key with
    | Some r ->
      m.n_ite_hits <- m.n_ite_hits + 1;
      r
    | None ->
      let v = min (var_of m f) (min (var_of m g) (var_of m h)) in
      let f0, f1 = cofactors m f v in
      let g0, g1 = cofactors m g v in
      let h0, h1 = cofactors m h v in
      let r0 = ite m f0 g0 h0 in
      let r1 = ite m f1 g1 h1 in
      let r = mk m v r0 r1 in
      Hashtbl.add m.ite_cache key r;
      r
  end

let neg m f = ite m f zero one
let conj m a b = ite m a b zero
let disj m a b = ite m a one b
let xor m a b = ite m a (neg m b) b
let imp m a b = ite m a b one
let iff m a b = ite m a b (neg m b)

let conj_list m = List.fold_left (conj m) one
let disj_list m = List.fold_left (disj m) zero

let rec restrict m n v value =
  if n < 2 then n
  else
    let nv = var_of m n in
    if nv > v then n
    else if nv = v then if value then high_of m n else low_of m n
    else
      mk m nv (restrict m (low_of m n) v value) (restrict m (high_of m n) v value)

let exists m vs f =
  let exists_one f v =
    disj m (restrict m f v false) (restrict m f v true)
  in
  List.fold_left exists_one f vs

let support m n =
  let seen = Hashtbl.create 16 in
  let vars = Hashtbl.create 16 in
  let rec go n =
    if n >= 2 && not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      Hashtbl.replace vars (var_of m n) ();
      go (low_of m n);
      go (high_of m n)
    end
  in
  go n;
  List.sort Stdlib.compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

let rec eval m n rho =
  if n = zero then false
  else if n = one then true
  else if rho (var_of m n) then eval m (high_of m n) rho
  else eval m (low_of m n) rho

let is_tautology n = n = one
let is_unsat n = n = zero

let pow2 k =
  if k >= Sys.int_size - 1 then invalid_arg "Bdd.count_models: overflow";
  1 lsl k

let count_models m ~nvars n =
  List.iter
    (fun v ->
      if v >= nvars then
        invalid_arg "Bdd.count_models: support exceeds nvars")
    (support m n);
  let memo = Hashtbl.create 64 in
  (* [weight n] counts models over the variables strictly below the
     terminals, scaled for the gap between a node and its children. *)
  let level n = if n < 2 then nvars else var_of m n in
  let rec weight n =
    if n = zero then 0
    else if n = one then 1
    else
      match Hashtbl.find_opt memo n with
      | Some w -> w
      | None ->
        let v = var_of m n in
        let l = low_of m n and h = high_of m n in
        let wl = weight l * pow2 (level l - v - 1) in
        let wh = weight h * pow2 (level h - v - 1) in
        let w = wl + wh in
        Hashtbl.add memo n w;
        w
  in
  weight n * pow2 (level n)

let iter_models m ~nvars n f =
  List.iter
    (fun v ->
      if v >= nvars then invalid_arg "Bdd.iter_models: support exceeds nvars")
    (support m n);
  let a = Array.make nvars false in
  (* Expand every variable, including those absent from the BDD path. *)
  let rec go v n =
    if v = nvars then begin
      if n = one then f a else assert (n = one)
    end
    else if n < 2 then begin
      if n = one then begin
        a.(v) <- false;
        go (v + 1) n;
        a.(v) <- true;
        go (v + 1) n
      end
    end
    else if var_of m n > v then begin
      a.(v) <- false;
      go (v + 1) n;
      a.(v) <- true;
      go (v + 1) n
    end
    else begin
      a.(v) <- false;
      if low_of m n <> zero then go (v + 1) (low_of m n);
      a.(v) <- true;
      if high_of m n <> zero then go (v + 1) (high_of m n)
    end
  in
  if n <> zero then go 0 n

let any_model m ~nvars n =
  let result = ref None in
  (try
     iter_models m ~nvars n (fun a ->
         result := Some (Array.copy a);
         raise Exit)
   with Exit -> ());
  !result

let size m n =
  let seen = Hashtbl.create 16 in
  let rec go n =
    if n >= 2 && not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      go (low_of m n);
      go (high_of m n)
    end
  in
  go n;
  Hashtbl.length seen

let node_count m = m.next

type stats = {
  nodes : int;
  ite_calls : int;
  ite_cache_hits : int;
}

let stats m =
  { nodes = m.next; ite_calls = m.n_ite; ite_cache_hits = m.n_ite_hits }
