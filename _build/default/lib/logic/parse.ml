exception Error of { position : int; message : string }

type token =
  | Tident of string
  | Ttrue
  | Tfalse
  | Tnot
  | Tand
  | Tor
  | Timp
  | Tiff
  | Tlpar
  | Trpar
  | Teof

let token_name = function
  | Tident x -> Printf.sprintf "identifier %S" x
  | Ttrue -> "'true'"
  | Tfalse -> "'false'"
  | Tnot -> "'!'"
  | Tand -> "'&'"
  | Tor -> "'|'"
  | Timp -> "'->'"
  | Tiff -> "'<->'"
  | Tlpar -> "'('"
  | Trpar -> "')'"
  | Teof -> "end of input"

let error position message = raise (Error { position; message })

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''

(* Lex the whole input to a list of positioned tokens. *)
let lex input =
  let n = String.length input in
  let rec go i acc =
    if i >= n then List.rev ((Teof, i) :: acc)
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '(' -> go (i + 1) ((Tlpar, i) :: acc)
      | ')' -> go (i + 1) ((Trpar, i) :: acc)
      | '!' | '~' -> go (i + 1) ((Tnot, i) :: acc)
      | '&' ->
        let j = if i + 1 < n && input.[i + 1] = '&' then i + 2 else i + 1 in
        go j ((Tand, i) :: acc)
      | '|' ->
        let j = if i + 1 < n && input.[i + 1] = '|' then i + 2 else i + 1 in
        go j ((Tor, i) :: acc)
      | '-' ->
        if i + 1 < n && input.[i + 1] = '>' then go (i + 2) ((Timp, i) :: acc)
        else error i "expected '->'"
      | '<' ->
        if i + 2 < n && input.[i + 1] = '-' && input.[i + 2] = '>' then
          go (i + 3) ((Tiff, i) :: acc)
        else error i "expected '<->'"
      | c when is_ident_start c ->
        let j = ref (i + 1) in
        while !j < n && is_ident_char input.[!j] do
          incr j
        done;
        let word = String.sub input i (!j - i) in
        let tok =
          match word with
          | "true" -> Ttrue
          | "false" -> Tfalse
          | "not" -> Tnot
          | "and" -> Tand
          | "or" -> Tor
          | _ -> Tident word
        in
        go !j ((tok, i) :: acc)
      | c -> error i (Printf.sprintf "unexpected character %C" c)
  in
  go 0 []

type state = { mutable tokens : (token * int) list }

let peek st =
  match st.tokens with
  | tok :: _ -> tok
  | [] -> assert false (* Teof is a sentinel *)

let advance st =
  match st.tokens with
  | _ :: rest when rest <> [] -> st.tokens <- rest
  | _ -> ()

let expect st tok =
  let got, pos = peek st in
  if got = tok then advance st
  else
    error pos
      (Printf.sprintf "expected %s but found %s" (token_name tok)
         (token_name got))

let rec parse_iff st =
  let lhs = parse_imp st in
  match peek st with
  | Tiff, _ ->
    advance st;
    let rhs = parse_imp st in
    parse_iff_rest st (Formula.Iff (lhs, rhs))
  | _ -> lhs

and parse_iff_rest st acc =
  match peek st with
  | Tiff, _ ->
    advance st;
    let rhs = parse_imp st in
    parse_iff_rest st (Formula.Iff (acc, rhs))
  | _ -> acc

and parse_imp st =
  let lhs = parse_or st in
  match peek st with
  | Timp, _ ->
    advance st;
    let rhs = parse_imp st in
    Formula.Implies (lhs, rhs)
  | _ -> lhs

and parse_or st =
  let lhs = parse_and st in
  let rec rest acc =
    match peek st with
    | Tor, _ ->
      advance st;
      let rhs = parse_and st in
      rest (Formula.Or (acc, rhs))
    | _ -> acc
  in
  rest lhs

and parse_and st =
  let lhs = parse_unary st in
  let rec rest acc =
    match peek st with
    | Tand, _ ->
      advance st;
      let rhs = parse_unary st in
      rest (Formula.And (acc, rhs))
    | _ -> acc
  in
  rest lhs

and parse_unary st =
  match peek st with
  | Tnot, _ ->
    advance st;
    Formula.Not (parse_unary st)
  | _ -> parse_atom st

and parse_atom st =
  match peek st with
  | Ttrue, _ ->
    advance st;
    Formula.True
  | Tfalse, _ ->
    advance st;
    Formula.False
  | Tident x, _ ->
    advance st;
    Formula.Var x
  | Tlpar, _ ->
    advance st;
    let f = parse_iff st in
    expect st Trpar;
    f
  | tok, pos ->
    error pos (Printf.sprintf "expected a formula but found %s" (token_name tok))

let formula input =
  let st = { tokens = lex input } in
  let f = parse_iff st in
  (match peek st with
  | Teof, _ -> ()
  | tok, pos ->
    error pos (Printf.sprintf "trailing input: found %s" (token_name tok)));
  f

let formula_result input =
  match formula input with
  | f -> Ok f
  | exception Error { position; message } ->
    Error (Printf.sprintf "parse error at offset %d: %s" position message)
