module Universe = Pet_valuation.Universe
module Total = Pet_valuation.Total
module Partial = Pet_valuation.Partial
module Exposure = Pet_rules.Exposure
module Engine = Pet_rules.Engine
module A1 = Pet_minimize.Algorithm1
module Atlas = Pet_minimize.Atlas
module Profile = Pet_game.Profile
module Payoff = Pet_game.Payoff
module Strategy = Pet_game.Strategy

let default_samples = 32
let default_brute_blank_cap = 12
let default_brute_atlas_cap = 10

(* --- Sampling ------------------------------------------------------------------ *)

(* Partial valuations to probe the proof relation on: half are random
   words over {_, 0, 1} (often inconsistent with R_ADD, exercising the
   vacuous-entailment path), half are realistic totals with a few
   positions blanked (the shapes Algorithm 1 actually asks about). *)
let sample_partials e ~seed ~count =
  let xp = Exposure.xp e in
  let n = Universe.size xp in
  let rng = Random.State.make [| 0x5e3d; seed; n; count |] in
  let realistic = Array.of_list (Exposure.realistic e) in
  let random_partial () =
    List.fold_left
      (fun w i ->
        match Random.State.int rng 3 with
        | 0 -> w
        | b -> Partial.set w (Universe.name xp i) (b = 2))
      (Partial.empty xp) (List.init n Fun.id)
  in
  let blanked_total () =
    if Array.length realistic = 0 then random_partial ()
    else begin
      let v = realistic.(Random.State.int rng (Array.length realistic)) in
      let blanks = Random.State.int rng (min n default_brute_blank_cap + 1) in
      let w = ref (Partial.of_total v) in
      for _ = 1 to blanks do
        w := Partial.unset !w (Universe.name xp (Random.State.int rng n))
      done;
      !w
    end
  in
  Partial.empty xp
  :: List.init count (fun i ->
         if i mod 2 = 0 then blanked_total () else random_partial ())

(* --- Proof-relation differential ----------------------------------------------- *)

let bools = Fmt.(list ~sep:(any ", ") (pair ~sep:(any "=") string bool))
let strings = Fmt.(list ~sep:(any ", ") string)

let check_entailment tally engines ~brute_blank_cap w =
  let participating =
    List.filter
      (fun engine ->
        Engine.backend engine <> Engine.Brute
        || Partial.blank_count w <= brute_blank_cap)
      engines
  in
  match participating with
  | [] | [ _ ] -> ()
  | reference :: others ->
    let ref_name = Engine.backend_name (Engine.backend reference) in
    let disagree stage render compute =
      let expected = compute reference in
      List.iter
        (fun engine ->
          let got = compute engine in
          Finding.check tally ~stage (got = expected) (fun () ->
              Fmt.str "%s on %a: %s says %s, %s says %s"
                stage Partial.pp w ref_name (render expected)
                (Engine.backend_name (Engine.backend engine))
                (render got)))
        others
    in
    disagree "diff/consistent" string_of_bool (fun e -> Engine.consistent e w);
    disagree "diff/benefits"
      (Fmt.str "{%a}" strings)
      (fun e -> Engine.benefits e w);
    disagree "diff/deduced"
      (Fmt.str "{%a}" bools)
      (fun e -> Engine.deduced_literals e w)

(* --- Atlas differential --------------------------------------------------------- *)

(* The canonical rendering compared across backends: every MAS in the
   paper's lexicographic order with its proven benefits and its
   potential/forced crowd sizes. Identical atlases imply identical
   downstream games, so this is the strongest cheap equivalence. *)
let canonical_atlas atlas =
  List.mapi
    (fun i (c : A1.choice) ->
      ( Partial.to_string c.mas,
        c.benefits,
        List.length (Atlas.players_of_mas atlas i),
        List.length (Atlas.forced_players_of_mas atlas i) ))
    (Atlas.mas_list atlas)

let render_canonical canon =
  Fmt.str "%a"
    Fmt.(
      list ~sep:(any "; ")
        (fun ppf (mas, benefits, potential, forced) ->
          Fmt.pf ppf "%s{%a}(%d/%d)" mas strings benefits potential forced))
    canon

let check_atlases tally pairs =
  match pairs with
  | [] | [ _ ] -> ()
  | (ref_engine, ref_atlas) :: others ->
    let expected = canonical_atlas ref_atlas in
    let ref_name = Engine.backend_name (Engine.backend ref_engine) in
    List.iter
      (fun (engine, atlas) ->
        let got = canonical_atlas atlas in
        Finding.check tally ~stage:"diff/atlas" (got = expected) (fun () ->
            Fmt.str "MAS atlas differs: %s has [%s], %s has [%s]" ref_name
              (render_canonical expected)
              (Engine.backend_name (Engine.backend engine))
              (render_canonical got)))
      others

(* --- Equilibrium differential ---------------------------------------------------- *)

(* With identical atlases, Algorithm 2 is deterministic, so the full
   move assignment and payoff vector must coincide backend by backend. *)
let canonical_equilibrium atlas profile payoff =
  List.init (Atlas.player_count atlas) (fun i ->
      ( Total.to_string (Atlas.player atlas i),
        Partial.to_string (Atlas.mas atlas (Profile.move_of profile i)).A1.mas,
        Payoff.of_profile profile payoff ~player:i ))

let check_equilibria tally payoff pairs =
  match pairs with
  | [] | [ _ ] -> ()
  | (ref_engine, ref_atlas) :: others ->
    let ref_name = Engine.backend_name (Engine.backend ref_engine) in
    let expected =
      canonical_equilibrium ref_atlas (Strategy.compute ~payoff ref_atlas) payoff
    in
    List.iter
      (fun (engine, atlas) ->
        let got =
          canonical_equilibrium atlas (Strategy.compute ~payoff atlas) payoff
        in
        let name = Engine.backend_name (Engine.backend engine) in
        Finding.check tally ~stage:"diff/equilibrium"
          (List.length got = List.length expected)
          (fun () ->
            Fmt.str "equilibrium population differs: %s has %d players, %s \
                     has %d"
              ref_name (List.length expected) name (List.length got));
        List.iter2
          (fun (v, move, value) (v', move', value') ->
            Finding.check tally ~stage:"diff/equilibrium"
              (v = v' && move = move' && value = value')
              (fun () ->
                Fmt.str "player %s: %s plays %s (payoff %g), %s plays %s \
                         (payoff %g)"
                  v ref_name move value name move' value'))
          (if List.length got = List.length expected then expected else [])
          (if List.length got = List.length expected then got else []))
      others

(* --- Entry point ------------------------------------------------------------------ *)

let check ?(payoff = Payoff.Blank) ?(samples = default_samples) ?(seed = 0)
    ?(brute_blank_cap = default_brute_blank_cap)
    ?(brute_atlas_cap = default_brute_atlas_cap) e =
  let tally = Finding.tally () in
  let engines =
    List.map (fun backend -> Engine.create ~backend e) Engine.all_backends
  in
  (* 1. The proof relation, pointwise on sampled partial valuations. *)
  List.iter
    (check_entailment tally engines ~brute_blank_cap)
    (sample_partials e ~seed ~count:samples);
  (* 2. The full MAS atlas, as a canonicalized set. The brute backend
     joins only on universes small enough to enumerate against. *)
  let n = Universe.size (Exposure.xp e) in
  let atlas_engines =
    List.filter
      (fun engine ->
        Engine.backend engine <> Engine.Brute || n <= brute_atlas_cap)
      engines
  in
  let pairs =
    List.map (fun engine -> (engine, Atlas.build engine)) atlas_engines
  in
  check_atlases tally pairs;
  (* 3. The Algorithm 2 equilibrium computed on each backend's atlas. *)
  check_equilibria tally payoff pairs;
  (* Probe the proof relation on the MAS themselves: the exact partial
     valuations the service publishes. *)
  (match pairs with
  | (_, atlas) :: _ ->
    List.iter
      (fun (c : A1.choice) ->
        check_entailment tally engines ~brute_blank_cap c.A1.mas)
      (Atlas.mas_list atlas)
  | [] -> ());
  Finding.report tally
