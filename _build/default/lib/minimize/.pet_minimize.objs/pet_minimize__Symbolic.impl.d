lib/minimize/symbolic.ml: Algorithm1 Array Fmt Fun Hashtbl Int List Option Pet_bdd Pet_logic Pet_rules Pet_valuation String
