(* The paper's Section 5 walkthrough on the real complementary-health-
   coverage (H-cov) eligibility rules: Alice, who can choose among three
   minimized forms, and Bob, whose single choice silently discloses one
   extra predicate — exactly the situations requirement R3 (informed
   consent) is about.

   Run with: dune exec examples/hcov_alice_bob.exe *)

module Total = Pet_valuation.Total
module Partial = Pet_valuation.Partial
module Hcov = Pet_casestudies.Hcov
module Report = Pet_pet.Report
module Workflow = Pet_pet.Workflow

let describe valuation =
  List.filter_map
    (fun (name, description) ->
      if Total.value valuation name then Some description else None)
    Hcov.predicates

let consent name v =
  Fmt.pr "=== %s ===@." name;
  Fmt.pr "true predicates: %a@."
    Fmt.(list ~sep:(any "; ") string)
    (describe v);
  let provider = Workflow.provider (Hcov.exposure ()) in
  match Workflow.report_for provider v with
  | Error m -> Fmt.pr "%s@." m
  | Ok report ->
    Fmt.pr "%a@.@." Report.pp report

let () =
  (* Alice is 24, lives separated from her spouse and parents, files a
     separate tax return, has resumed her studies and receives the
     annual emergency aid. Algorithm 1 offers her three choices;
     Algorithm 2 recommends 0__________1 — she reveals only that she is
     separated (and, through the consistency rules, that she is not
     under 16), keeping the other ten predicates private. *)
  consent "Alice (000011100111)" (Hcov.alice ());
  (* Bob is a 20-year-old father living with his daughter and her
     mother. He has a single choice, 0_0_1110____, and the consent
     report warns him that not sending p12 still reveals p12 = 0: had he
     been separated, he would have sent the shorter form instead. *)
  consent "Bob (000011100000)" (Hcov.bob ())
