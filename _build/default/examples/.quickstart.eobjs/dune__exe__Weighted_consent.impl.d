examples/weighted_consent.ml: Fmt List Pet_casestudies Pet_game Pet_minimize Pet_rules Pet_valuation
