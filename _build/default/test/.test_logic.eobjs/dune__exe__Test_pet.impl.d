test/test_pet.ml: Alcotest Fmt List Pet_casestudies Pet_game Pet_minimize Pet_pet Pet_rules Pet_valuation String
