lib/valuation/total.ml: Fmt Int List String Universe
