lib/rules/rule.mli: Fmt Pet_logic
