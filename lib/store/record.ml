let header_bytes = 8
let max_payload_bytes = 16 * 1024 * 1024

let put_le32 bytes pos v =
  Bytes.set_int32_le bytes pos (Int32.of_int (v land 0xFFFFFFFF))

let get_le32 s pos =
  Int32.to_int (String.get_int32_le s pos) land 0xFFFFFFFF

let frame payload =
  let len = String.length payload in
  if len > max_payload_bytes then invalid_arg "Record.frame: payload too large";
  let record = Bytes.create (header_bytes + len) in
  put_le32 record 0 len;
  put_le32 record 4 (Crc32.string payload);
  Bytes.blit_string payload 0 record header_bytes len;
  Bytes.unsafe_to_string record

type scan =
  | Record of { payload : string; next : int }
  | End
  | Torn of { offset : int; reason : string }
  | Corrupt of { offset : int; reason : string }

let read buf offset =
  let total = String.length buf in
  if offset = total then End
  else if total - offset < header_bytes then
    Torn
      {
        offset;
        reason =
          Printf.sprintf "truncated header (%d of %d bytes)" (total - offset)
            header_bytes;
      }
  else
    let len = get_le32 buf offset in
    let crc = get_le32 buf (offset + 4) in
    if len > max_payload_bytes then
      Corrupt
        { offset; reason = Printf.sprintf "implausible record length %d" len }
    else if offset + header_bytes + len > total then
      Torn
        {
          offset;
          reason =
            Printf.sprintf "truncated payload (%d of %d bytes)"
              (total - offset - header_bytes)
              len;
        }
    else
      let actual = Crc32.sub buf (offset + header_bytes) len in
      if actual <> crc then
        Corrupt
          {
            offset;
            reason =
              Printf.sprintf "checksum mismatch (stored %08x, computed %08x)"
                crc actual;
          }
      else
        Record
          {
            payload = String.sub buf (offset + header_bytes) len;
            next = offset + header_bytes + len;
          }
