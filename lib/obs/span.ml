type frame = {
  fname : string;
  mutable fcount : int;
  mutable ftotal : float;
  mutable kids_rev : frame list;
  kid_index : (string, frame) Hashtbl.t;
}

let make_frame name =
  {
    fname = name;
    fcount = 0;
    ftotal = 0.;
    kids_rev = [];
    kid_index = Hashtbl.create 4;
  }

(* A secondary recorder (installed by {!Trace} while a request-scoped
   capture is active) sees every span entry and exit with the timestamps
   this module already read — attaching a trace costs no extra clock
   reads on the span path. *)
type recorder = {
  r_enter : string -> float -> unit;  (** name, start time *)
  r_exit : float -> unit;  (** end time of the innermost open span *)
}

(* Sentinel root: its children are the top-level spans. The stack always
   has the root at the bottom, so the innermost running span is the
   head. A frame can never be on the stack twice (each stack entry is a
   distinct child of the one below), so accumulating [ftotal] at exit
   never double-counts, even under recursion.

   All of this state is domain-local: each domain profiles its own work
   and installs its own recorder, so spans never contend across domains
   and a frame tree never mixes two domains' timings. *)
type state = {
  s_root : frame;
  mutable s_stack : frame list;
  mutable s_recorder : recorder option;
}

let state_key =
  Domain.DLS.new_key (fun () ->
      let root = make_frame "<root>" in
      { s_root = root; s_stack = [ root ]; s_recorder = None })

let state () = Domain.DLS.get state_key
let set_recorder r = (state ()).s_recorder <- r

let child_of parent name =
  match Hashtbl.find_opt parent.kid_index name with
  | Some f -> f
  | None ->
    let f = make_frame name in
    Hashtbl.add parent.kid_index name f;
    parent.kids_rev <- f :: parent.kids_rev;
    f

let enter name f =
  if not (Metrics.enabled ()) then f ()
  else begin
    let st = state () in
    let parent = match st.s_stack with p :: _ -> p | [] -> st.s_root in
    let frame = child_of parent name in
    frame.fcount <- frame.fcount + 1;
    st.s_stack <- frame :: st.s_stack;
    let t0 = Metrics.now () in
    (match st.s_recorder with Some r -> r.r_enter name t0 | None -> ());
    Fun.protect
      ~finally:(fun () ->
        let t1 = Metrics.now () in
        frame.ftotal <- frame.ftotal +. (t1 -. t0);
        (match st.s_recorder with Some r -> r.r_exit t1 | None -> ());
        match st.s_stack with _ :: rest -> st.s_stack <- rest | [] -> ())
      f
  end

type node = {
  name : string;
  count : int;
  total : float;
  self : float;
  children : node list;
}

let rec node_of frame =
  let children = List.rev_map node_of frame.kids_rev in
  let kids_total = List.fold_left (fun acc n -> acc +. n.total) 0. children in
  {
    name = frame.fname;
    count = frame.fcount;
    total = frame.ftotal;
    self = Float.max 0. (frame.ftotal -. kids_total);
    children;
  }

let roots () = List.rev_map node_of (state ()).s_root.kids_rev

let total () = List.fold_left (fun acc n -> acc +. n.total) 0. (roots ())

let reset () =
  let st = state () in
  (match st.s_stack with
  | [] | [ _ ] -> ()
  | stack ->
    invalid_arg
      (Printf.sprintf
         "Span.reset: %d span(s) still open (innermost %S) — reset may only \
          run between spans"
         (List.length stack - 1)
         (match stack with f :: _ -> f.fname | [] -> "?")));
  st.s_root.kids_rev <- [];
  Hashtbl.reset st.s_root.kid_index;
  st.s_stack <- [ st.s_root ]

let render ?out_total () =
  let nodes = roots () in
  let out_total =
    match out_total with Some t -> t | None -> total ()
  in
  let buf = Buffer.create 256 in
  let pct t =
    if out_total > 0. then Printf.sprintf "%5.1f%%" (100. *. t /. out_total)
    else "    -%"
  in
  let rec go prefix is_last n =
    let branch, extend =
      match prefix with
      | None -> ("", "")
      | Some p -> ((p ^ if is_last then "`-- " else "|-- "),
                   (p ^ if is_last then "    " else "|   "))
    in
    Buffer.add_string buf
      (Printf.sprintf "%s%-*s %s total=%.6fs self=%.6fs count=%d\n" branch
         (max 1 (32 - String.length branch))
         n.name (pct n.total) n.total n.self n.count);
    let rec kids = function
      | [] -> ()
      | [ last ] -> go (Some extend) true last
      | k :: rest ->
        go (Some extend) false k;
        kids rest
    in
    kids n.children
  in
  let rec tops = function
    | [] -> ()
    | [ last ] -> go None true last
    | n :: rest ->
      go None false n;
      tops rest
  in
  tops nodes;
  Buffer.contents buf
