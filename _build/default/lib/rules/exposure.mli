(** Exposure problems (Definition 3.11): the triple [E = (R, Xp, Xb)] of a
    rule-and-constraint set, a form universe and a benefit universe.

    [R = R_DP u R_ADD] where [R_DP] holds exactly one decision rule per
    benefit (Definition 3.9) and [R_ADD] is a set of consistency
    constraints over the form predicates (e.g. "age below 16" implies
    "not an adult below 25"). *)

type t

val create :
  xp:Pet_valuation.Universe.t ->
  xb:Pet_valuation.Universe.t ->
  rules:Rule.t list ->
  ?constraints:Pet_logic.Formula.t list ->
  unit ->
  t
(** @raise Invalid_argument when: a form and benefit name collide; a rule
    targets an unknown benefit or two rules target the same benefit; a
    benefit has no rule; a rule's left-hand side or a constraint mentions
    a variable outside [Xp]. *)

val xp : t -> Pet_valuation.Universe.t
val xb : t -> Pet_valuation.Universe.t
val rules : t -> Rule.t list
val rule_for : t -> string -> Rule.t
(** @raise Not_found for unknown benefits. *)

val constraints : t -> Pet_logic.Formula.t list

val implications :
  t -> (Pet_logic.Literal.t list * Pet_logic.Literal.t list) list
(** The constraints of the directed form
    [l1 & ... & ln -> l1' & ... & lm'] as (premises, consequences) pairs;
    bare literal-conjunction constraints appear with empty premises.
    Algorithm 1 forward-chains over these when closing MAS candidates, the
    way the paper's prototype does (see DESIGN.md). Constraints of any
    other shape are not chained but still constrain the semantics. *)

val constraints_formula : t -> Pet_logic.Formula.t
(** The conjunction of [R_ADD]. *)

val to_formula : t -> Pet_logic.Formula.t
(** The conjunction of all of [R]: every decision-rule equivalence plus
    every constraint, over [Xp u Xb]. *)

val benefits_of_assignment : t -> (string -> bool) -> string list
(** Benefits triggered by a total assignment of the form predicates, in
    benefit-universe order. This is the service provider's decision
    function; it ignores whether the assignment satisfies [R_ADD]. *)

val satisfies_constraints : t -> Pet_valuation.Total.t -> bool

val realistic : t -> Pet_valuation.Total.t list
(** All total form valuations satisfying [R_ADD] — the "realistic"
    players of Section 4.1 — in increasing bit order. *)

val eligible : t -> Pet_valuation.Total.t list
(** Realistic valuations triggering at least one benefit. *)

val pp : t Fmt.t
