(** Multi-tenant form registry with versioned publishes and hot rule
    migration.

    Tenants are named forms. Each publish or rule update appends a
    {e version} (monotonic number + canonical-text digest) whose
    artifact — engine, MAS atlas, compiled answer table — is built on a
    single background builder domain, so publishing returns
    immediately. A version becomes the tenant's {e active} version (the
    one new sessions resolve) atomically when its build completes;
    sessions pin the digest they started on, so a hot swap never
    changes an in-flight respondent's answers.

    The registry is generic in the artifact type ['a]: the server
    instantiates it with its compiled-engine record and supplies build
    closures, so this module depends on nothing above the stdlib.

    Thread-safety: every operation is safe from any domain; one mutex
    guards all state, and builds run outside it. *)

type build_state = Building | Ready | Failed of string

val state_name : build_state -> string
(** ["building"], ["ready"] or ["failed"]. *)

type 'a t

val create : ?quota:int -> unit -> 'a t
(** [quota] is the default per-tenant cap on concurrently active
    sessions (0, the default, means unlimited). The builder domain is
    spawned lazily on the first publish. *)

val stop : 'a t -> unit
(** Drain the build queue and join the builder domain. Terminal. *)

(** {1 Publishing} *)

val publish :
  'a t ->
  name:string ->
  digest:string ->
  text:string ->
  ?quota:int ->
  now:float ->
  build:(unit -> ('a, string) result) ->
  unit ->
  [ `Created | `Existing of int * build_state | `Conflict of int ]
(** Create tenant [name] at version 1 and enqueue its build ([`Created]
    — the caller's response reports ["building"]: the build has
    provably not run on the request path). If the tenant exists:
    [`Existing] when [digest] already is its newest version (idempotent
    republish), [`Conflict] otherwise — rule changes must go through
    {!update}. [quota], when given, (re)sets the tenant quota. *)

val update :
  'a t ->
  name:string ->
  digest:string ->
  text:string ->
  ?quota:int ->
  now:float ->
  build:(unit -> ('a, string) result) ->
  unit ->
  [ `Queued of int | `Unchanged of int * build_state | `Unknown ]
(** Append a new version to an existing tenant and enqueue its build.
    The previously active version keeps serving new sessions until the
    build lands, at which point the registry atomically swaps.
    [`Unchanged] when [digest] already is the newest version,
    [`Unknown] when the tenant was never published. *)

val restore :
  'a t ->
  name:string ->
  version:int ->
  digest:string ->
  text:string ->
  ?quota:int ->
  now:float ->
  unit ->
  unit
(** Recovery: re-register a version recorded in the WAL as [Ready]
    with no artifact — it recompiles lazily from [text] on first
    resolution, so replaying a thousand tenants costs table inserts,
    not builds. The active version is the highest restored number. *)

(** {1 Resolution} *)

type 'a resolved = {
  res_version : int;
  res_digest : string;
  res_text : string;
  res_artifact : 'a option;
      (** the background-built artifact, handed over exactly once; the
          first resolver installs it in its own engine cache, later
          resolvers (other shards) recompile from [res_text] *)
}

val resolve :
  'a t -> string -> [ `Ready of 'a resolved | `Failed of int * string | `Unknown ]
(** The active version for a new session. Blocks while that version is
    still building — only a tenant's first version can be active and
    unbuilt, so this is the publish/new_session handshake, not a
    steady-state stall. *)

val await : 'a t -> string -> unit
(** Block until the tenant's newest version settles (ready or failed);
    no-op for unknown tenants. The wire method
    [tenant {"name":N,"wait":true}] — a deploy script's barrier. *)

val text_of_digest : 'a t -> string -> string option
(** Canonical rule text for any version ever published, keyed by
    digest — the fallback that lets a pinned session's engine be
    recompiled after an LRU eviction, independent of durable mode. *)

(** {1 Quotas and per-tenant counters} *)

val try_admit : 'a t -> string -> [ `Ok | `Over of int ]
(** Admit one new session, or refuse with the quota when the tenant is
    at its cap of concurrently active sessions. *)

val note_restored : 'a t -> string -> unit
(** Count a replayed session (bypasses the quota: it was admitted when
    first created). *)

val release : 'a t -> string -> unit
(** A session of this tenant expired; frees one quota slot. *)

val note_submitted : 'a t -> string -> unit

(** {1 Introspection} *)

type info = {
  info_name : string;
  versions : int;
  active : int;  (** active version number *)
  digest : string;  (** of the active version *)
  state : build_state;
      (** of the newest version — [Ready] means fully settled *)
  quota : int;
  sessions_active : int;
  sessions_created : int;
  submitted : int;
}

val info : 'a t -> string -> info option
val count : 'a t -> int
val names : 'a t -> string list  (** sorted *)

val infos : 'a t -> info list  (** sorted by name *)

type totals = {
  tenants : int;
  builds : int;  (** completed successfully *)
  build_failures : int;
  building : int;  (** queued or in flight *)
}

val totals : 'a t -> totals

val dump : 'a t -> (string * int * (int * string * string * float) list) list
(** [(name, quota, versions)] with tenants sorted by name and versions
    ascending as [(number, digest, text, published_at)] — the snapshot
    order; replaying through {!restore} reproduces the registry. *)
