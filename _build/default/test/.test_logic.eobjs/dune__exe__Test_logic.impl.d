test/test_logic.ml: Alcotest Bool List Pet_logic Printf QCheck2 QCheck_alcotest Stdlib String
