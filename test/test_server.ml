(* Tests for the collection-service core: protocol decode/encode,
   registry cache behaviour, session lifecycle and expiry, and the
   request router end to end. *)

module Json = Pet_pet.Json
module Spec = Pet_rules.Spec
module Proto = Pet_server.Proto
module Registry = Pet_server.Registry
module Session = Pet_server.Session
module Service = Pet_server.Service
module Running = Pet_casestudies.Running

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

(* --- Protocol ------------------------------------------------------------------ *)

let decode_ok line =
  match Proto.decode line with
  | Ok envelope -> envelope
  | Error (_, _, e) ->
    Alcotest.failf "unexpected decode error %s: %s" (Proto.code_name e.code)
      e.message

let decode_err line =
  match Proto.decode line with
  | Ok _ -> Alcotest.fail "expected a decode error"
  | Error (id, _, e) -> (id, e)

let test_proto_decode () =
  (match
     (decode_ok
        {|{"pet":1,"id":7,"method":"publish_rules","params":{"rules":"form a\nbenefits b\nrule b := a"}}|})
       .request
   with
  | Proto.Publish_rules { rules = Proto.Text text; tenant = None; quota = None }
    ->
    Alcotest.(check bool) "rules text" true (contains text "benefits b")
  | _ -> Alcotest.fail "wrong request");
  (match
     (decode_ok {|{"pet":1,"method":"new_session","params":{"digest":"abc"}}|})
       .request
   with
  | Proto.New_session (Proto.Digest "abc") -> ()
  | _ -> Alcotest.fail "wrong request");
  (match
     (decode_ok
        {|{"pet":1,"method":"get_report","params":{"session":"s0","valuation":"011"}}|})
       .request
   with
  | Proto.Get_report { session = "s0"; valuation = "011" } -> ()
  | _ -> Alcotest.fail "wrong request");
  (match
     (decode_ok
        {|{"pet":1,"method":"choose_option","params":{"session":"s0","mas":"_11"}}|})
       .request
   with
  | Proto.Choose_option { choice = Proto.Mas "_11"; _ } -> ()
  | _ -> Alcotest.fail "wrong request");
  (match (decode_ok {|{"pet":1,"method":"stats"}|}).request with
  | Proto.Stats -> ()
  | _ -> Alcotest.fail "wrong request");
  (* The id is carried through for correlation. *)
  let envelope = decode_ok {|{"pet":1,"id":"abc","method":"stats"}|} in
  Alcotest.(check string) "string id" "\"abc\"" (Json.to_string envelope.id)

let test_proto_decode_errors () =
  let code line =
    let _, e = decode_err line in
    Proto.code_name e.Proto.code
  in
  Alcotest.(check string) "malformed json" "parse_error" (code "{oops");
  Alcotest.(check string) "not an object" "invalid_request" (code "[1,2]");
  Alcotest.(check string) "missing version" "invalid_request"
    (code {|{"method":"stats"}|});
  Alcotest.(check string) "wrong version" "invalid_request"
    (code {|{"pet":99,"method":"stats"}|});
  Alcotest.(check string) "missing method" "invalid_request"
    (code {|{"pet":1}|});
  Alcotest.(check string) "unknown method" "unknown_method"
    (code {|{"pet":1,"method":"frobnicate"}|});
  Alcotest.(check string) "missing session" "invalid_params"
    (code {|{"pet":1,"method":"submit_form"}|});
  Alcotest.(check string) "digest not allowed for publish" "invalid_params"
    (code {|{"pet":1,"method":"publish_rules","params":{"digest":"d"}}|});
  Alcotest.(check string) "two rule refs" "invalid_params"
    (code
       {|{"pet":1,"method":"new_session","params":{"rules":"x","source":"y"}}|});
  Alcotest.(check string) "option and mas" "invalid_params"
    (code
       {|{"pet":1,"method":"choose_option","params":{"session":"s0","option":1,"mas":"_1"}}|});
  (* Parse errors report the position. *)
  let _, e = decode_err "{\"pet\":1," in
  Alcotest.(check bool) "position in message" true
    (contains e.Proto.message "column");
  (* The id survives a bad request when it is parseable. *)
  let id, _ = decode_err {|{"pet":1,"id":42,"method":"frobnicate"}|} in
  Alcotest.(check string) "id kept" "42" (Json.to_string id)

let test_proto_encode () =
  Alcotest.(check string) "ok envelope"
    {|{"pet":1,"id":3,"ok":{"x":true}}|}
    (Proto.ok_response ~id:(Json.Int 3) (Json.Obj [ ("x", Json.Bool true) ]));
  let line =
    Proto.error_response ~id:Json.Null
      (Proto.error Proto.Bad_state "wrong state")
  in
  Alcotest.(check string) "error envelope"
    {|{"pet":1,"id":null,"error":{"code":"bad_state","message":"wrong state"}}|}
    line;
  (* Responses are themselves valid protocol JSON. *)
  match Json.parse line with
  | Ok j ->
    Alcotest.(check bool) "error member" true (Json.member "error" j <> None)
  | Error m -> Alcotest.fail m

(* --- Registry ------------------------------------------------------------------- *)

let test_registry_counters () =
  let r = Registry.create ~capacity:4 () in
  Alcotest.(check bool) "miss on empty" true (Registry.find r "a" = None);
  Registry.add r "a" 1;
  Alcotest.(check bool) "hit" true (Registry.find r "a" = Some 1);
  let v, hit = Registry.find_or_add r "b" (fun () -> 2) in
  Alcotest.(check bool) "built" true (v = 2 && not hit);
  let v, hit = Registry.find_or_add r "b" (fun () -> 99) in
  Alcotest.(check bool) "cached" true (v = 2 && hit);
  (* peek does not count. *)
  Alcotest.(check bool) "peek" true (Registry.peek r "a" = Some 1);
  let s = Registry.stats r in
  Alcotest.(check int) "hits" 2 s.Registry.hits;
  Alcotest.(check int) "misses" 2 s.Registry.misses;
  Alcotest.(check int) "size" 2 s.Registry.size

let test_registry_lru () =
  let r = Registry.create ~capacity:2 () in
  Registry.add r "a" 1;
  Registry.add r "b" 2;
  (* Touch "a" so "b" is the least recently used. *)
  ignore (Registry.find r "a");
  Registry.add r "c" 3;
  Alcotest.(check bool) "b evicted" true (Registry.peek r "b" = None);
  Alcotest.(check bool) "a kept" true (Registry.peek r "a" = Some 1);
  Alcotest.(check bool) "c kept" true (Registry.peek r "c" = Some 3);
  let s = Registry.stats r in
  Alcotest.(check int) "one eviction" 1 s.Registry.evictions;
  Alcotest.(check int) "bounded" 2 s.Registry.size;
  (* Re-adding an existing key replaces without evicting. *)
  Registry.add r "c" 30;
  Alcotest.(check bool) "replaced" true (Registry.peek r "c" = Some 30);
  Alcotest.(check int) "still bounded" 2 (Registry.stats r).Registry.size;
  Alcotest.(check int) "no extra eviction" 1 (Registry.stats r).Registry.evictions

let test_registry_digest () =
  let d = Registry.digest "form a\nbenefits b\nrule b := a" in
  Alcotest.(check int) "hex length" 32 (String.length d);
  Alcotest.(check string) "stable" d
    (Registry.digest "form a\nbenefits b\nrule b := a");
  Alcotest.(check bool) "content-sensitive" true
    (d <> Registry.digest "form a\nbenefits b\nrule b := !a")

(* --- Sessions --------------------------------------------------------------------- *)

let test_session_lifecycle () =
  let store = Session.create_store ~ttl:10. () in
  let s0 = Session.create store ~digest:"d" ~now:0. () in
  let s1 = Session.create store ~digest:"d" ~now:0. () in
  Alcotest.(check string) "sequential ids s0" "s0" s0.Session.id;
  Alcotest.(check string) "sequential ids s1" "s1" s1.Session.id;
  Alcotest.(check bool) "starts created" true (s0.Session.state = Session.Created);
  (match Session.find store "s0" ~now:5. with
  | Ok s -> Alcotest.(check string) "found" "s0" s.Session.id
  | Error _ -> Alcotest.fail "expected to find s0");
  Alcotest.(check bool) "unknown" true
    (Session.find store "zz" ~now:0. = Error `Unknown)

let test_session_expiry () =
  let store = Session.create_store ~ttl:10. () in
  let s0 = Session.create store ~digest:"d" ~now:0. () in
  let _s1 = Session.create store ~digest:"d" ~now:8. () in
  (* Touching resets the idle clock. *)
  Session.touch s0 ~now:9.;
  Alcotest.(check int) "nothing stale yet" 0 (Session.sweep store ~now:15.);
  Alcotest.(check bool) "s0 alive at 15" true
    (Result.is_ok (Session.find store "s0" ~now:15.));
  (* At t=25 both are idle beyond the ttl. *)
  Alcotest.(check bool) "expired on lookup" true
    (Session.find store "s1" ~now:25. = Error `Expired);
  Alcotest.(check int) "sweep removes the rest" 1 (Session.sweep store ~now:25.);
  let c = Session.counters store in
  Alcotest.(check int) "none active" 0 c.Session.active;
  Alcotest.(check int) "created" 2 c.Session.created;
  Alcotest.(check int) "expired" 2 c.Session.expired;
  (* ttl 0 disables expiry. *)
  let eternal = Session.create_store ~ttl:0. () in
  let _ = Session.create eternal ~digest:"d" ~now:0. () in
  Alcotest.(check bool) "no expiry" true
    (Result.is_ok (Session.find eternal "s0" ~now:1e12))

let test_session_sweep_step () =
  let store = Session.create_store ~ttl:0.01 () in
  for _ = 1 to 100 do
    ignore (Session.create store ~digest:"d" ~now:0. ())
  done;
  (* Each step examines at most [budget] sessions; a bounded number of
     steps reclaims everything even though nothing looks the sessions
     up again. *)
  let steps = ref 0 in
  while (Session.counters store).Session.active > 0 && !steps < 25 do
    incr steps;
    let swept = Session.sweep_step ~budget:10 store ~now:1. in
    Alcotest.(check bool) "bounded work per step" true (swept <= 10)
  done;
  let c = Session.counters store in
  Alcotest.(check int) "all reclaimed" 0 c.Session.active;
  Alcotest.(check int) "counted as expired" 100 c.Session.expired;
  Alcotest.(check bool)
    (Printf.sprintf "needed about 100/budget steps, took %d" !steps)
    true
    (!steps <= 12);
  (* ttl 0 disables the incremental sweep as well. *)
  let eternal = Session.create_store ~ttl:0. () in
  ignore (Session.create eternal ~digest:"d" ~now:0. ());
  Alcotest.(check int) "no sweeping without a ttl" 0
    (Session.sweep_step eternal ~now:1e12);
  Alcotest.(check int) "still active" 1
    (Session.counters eternal).Session.active

(* --- Service ----------------------------------------------------------------------- *)

(* A service over a logical clock advancing 1s per read (two reads per
   request), with the running example available as a source. *)
let make_service ?capacity ?ttl () =
  let tick = ref 0 in
  let now () =
    incr tick;
    float_of_int !tick
  in
  let resolve = function
    | "running" -> Some (Spec.to_string (Running.exposure ()))
    | _ -> None
  in
  Service.create ?capacity ?ttl ~resolve ~now ()

let request service ?(id = 1) method_ params =
  let line =
    Json.to_string
      (Json.Obj
         [
           ("pet", Json.Int Proto.version);
           ("id", Json.Int id);
           ("method", Json.String method_);
           ("params", Json.Obj params);
         ])
  in
  match Json.parse (Service.handle_line service line) with
  | Ok response -> response
  | Error m -> Alcotest.failf "response is not JSON: %s" m

let ok_of response =
  match Json.member "ok" response with
  | Some payload -> payload
  | None -> Alcotest.failf "expected ok, got %s" (Json.to_string response)

let error_code response =
  match Json.member "error" response with
  | Some e -> (
    match Option.bind (Json.member "code" e) Json.string_opt with
    | Some c -> c
    | None -> Alcotest.fail "error without code")
  | None -> Alcotest.failf "expected error, got %s" (Json.to_string response)

let str field payload =
  match Option.bind (Json.member field payload) Json.string_opt with
  | Some s -> s
  | None -> Alcotest.failf "missing string field %S" field

let test_service_lifecycle () =
  let service = make_service () in
  let published =
    ok_of (request service "publish_rules" [ ("source", Json.String "running") ])
  in
  let digest = str "digest" published in
  Alcotest.(check bool) "first publish compiles" true
    (Json.member "cached" published = Some (Json.Bool false));
  (* Session against the published digest: a cache hit. *)
  let opened =
    ok_of
      (request service "new_session" [ ("digest", Json.String digest) ])
  in
  Alcotest.(check bool) "new_session hits the cache" true
    (Json.member "cached" opened = Some (Json.Bool true));
  let sid = str "session" opened in
  let report =
    ok_of
      (request service "get_report"
         [ ("session", Json.String sid); ("valuation", Json.String "011") ])
  in
  Alcotest.(check string) "report echoes the valuation" "011"
    (str "valuation" report);
  let chosen =
    ok_of
      (request service "choose_option"
         [ ("session", Json.String sid); ("option", Json.Int 0) ])
  in
  Alcotest.(check string) "minimized form" "_11" (str "mas" chosen);
  (* Once chosen, the raw valuation is gone: re-reporting is refused. *)
  Alcotest.(check string) "valuation erased after choice" "bad_state"
    (error_code
       (request service "get_report"
          [ ("session", Json.String sid); ("valuation", Json.String "011") ]));
  let grant =
    ok_of (request service "submit_form" [ ("session", Json.String sid) ])
  in
  Alcotest.(check string) "archived form is minimized" "_11" (str "form" grant);
  Alcotest.(check string) "double submit" "bad_state"
    (error_code (request service "submit_form" [ ("session", Json.String sid) ]));
  (* The audit sees one clean record. *)
  let audit =
    ok_of (request service "audit" [ ("digest", Json.String digest) ])
  in
  Alcotest.(check bool) "one record" true
    (Json.member "records" audit = Some (Json.Int 1));
  Alcotest.(check bool) "no failures" true
    (Json.member "failures" audit = Some (Json.List []));
  (* Stats reflect all of it. *)
  let stats = ok_of (request service "stats" []) in
  let registry = Option.get (Json.member "registry" stats) in
  (* new_session and audit each resolved the digest from the cache. *)
  Alcotest.(check bool) "stats: two hits" true
    (Json.member "hits" registry = Some (Json.Int 2));
  Alcotest.(check bool) "stats: a miss" true
    (Json.member "misses" registry = Some (Json.Int 1));
  let sessions = Option.get (Json.member "sessions" stats) in
  Alcotest.(check bool) "stats: submitted" true
    (Json.member "submitted" sessions = Some (Json.Int 1))

let test_service_errors () =
  let service = make_service () in
  Alcotest.(check string) "unknown source" "unknown_source"
    (error_code
       (request service "new_session" [ ("source", Json.String "nope") ]));
  Alcotest.(check string) "unknown digest" "unknown_rules"
    (error_code
       (request service "new_session" [ ("digest", Json.String "beef") ]));
  Alcotest.(check string) "bad rules text" "invalid_params"
    (error_code
       (request service "publish_rules" [ ("rules", Json.String "form a\noops") ]));
  Alcotest.(check string) "unknown session" "unknown_session"
    (error_code
       (request service "submit_form" [ ("session", Json.String "s9") ]));
  let opened =
    ok_of (request service "new_session" [ ("source", Json.String "running") ])
  in
  let sid = str "session" opened in
  Alcotest.(check string) "submit before report" "bad_state"
    (error_code (request service "submit_form" [ ("session", Json.String sid) ]));
  Alcotest.(check string) "malformed valuation" "invalid_params"
    (error_code
       (request service "get_report"
          [ ("session", Json.String sid); ("valuation", Json.String "01") ]));
  Alcotest.(check string) "ineligible valuation" "ineligible"
    (error_code
       (request service "get_report"
          [ ("session", Json.String sid); ("valuation", Json.String "000") ]));
  ignore
    (ok_of
       (request service "get_report"
          [ ("session", Json.String sid); ("valuation", Json.String "011") ]));
  Alcotest.(check string) "choice out of range" "invalid_params"
    (error_code
       (request service "choose_option"
          [ ("session", Json.String sid); ("option", Json.Int 5) ]));
  Alcotest.(check string) "choice not offered" "invalid_params"
    (error_code
       (request service "choose_option"
          [ ("session", Json.String sid); ("mas", Json.String "1__") ]))

let test_service_expiry () =
  (* Each request advances the logical clock by 2s; a 5s ttl expires a
     session after two unrelated requests. *)
  let service = make_service ~ttl:5. () in
  let opened =
    ok_of (request service "new_session" [ ("source", Json.String "running") ])
  in
  let sid = str "session" opened in
  for _ = 1 to 2 do
    ignore (request service "stats" [])
  done;
  Alcotest.(check string) "expired" "session_expired"
    (error_code
       (request service "get_report"
          [ ("session", Json.String sid); ("valuation", Json.String "011") ]));
  let stats = ok_of (request service "stats" []) in
  let sessions = Option.get (Json.member "sessions" stats) in
  Alcotest.(check bool) "counted as expired" true
    (Json.member "expired" sessions = Some (Json.Int 1))

(* Regression: abandoned sessions must not accumulate. Every request
   runs an incremental sweep, so a client opening sessions and never
   touching them again keeps [counters.active] bounded — before, an
   abandoned session survived until something looked up its id. *)
let test_service_abandoned_sessions_swept () =
  let service = make_service ~ttl:0.01 () in
  for i = 1 to 200 do
    ignore
      (ok_of
         (request service ~id:i "new_session"
            [ ("source", Json.String "running") ]))
  done;
  let stats = ok_of (request service "stats" []) in
  let sessions = Option.get (Json.member "sessions" stats) in
  let field name =
    match Json.member name sessions with
    | Some (Json.Int n) -> n
    | _ -> Alcotest.failf "missing sessions.%s" name
  in
  Alcotest.(check int) "all were created" 200 (field "created");
  Alcotest.(check bool)
    (Printf.sprintf "active stays bounded (%d)" (field "active"))
    true
    (field "active" <= 2);
  Alcotest.(check int) "every abandoned session is accounted for" 200
    (field "active" + field "expired")

let test_service_eviction () =
  (* A capacity-1 registry: publishing a second rule set evicts the
     first; sessions on the evicted engine fail with unknown_rules. *)
  let service = make_service ~capacity:1 () in
  let first =
    ok_of (request service "publish_rules" [ ("source", Json.String "running") ])
  in
  let digest = str "digest" first in
  let opened =
    ok_of (request service "new_session" [ ("digest", Json.String digest) ])
  in
  let sid = str "session" opened in
  ignore
    (ok_of
       (request service "publish_rules"
         [
           ( "rules",
             Json.String "form a b\nbenefits z\nrule z := a & b" );
         ]));
  Alcotest.(check string) "digest evicted" "unknown_rules"
    (error_code
       (request service "new_session" [ ("digest", Json.String digest) ]));
  Alcotest.(check string) "session engine evicted" "unknown_rules"
    (error_code
       (request service "get_report"
          [ ("session", Json.String sid); ("valuation", Json.String "011") ]))

let error_message response =
  match Json.member "error" response with
  | Some e -> (
    match Option.bind (Json.member "message" e) Json.string_opt with
    | Some m -> m
    | None -> Alcotest.fail "error without message")
  | None -> Alcotest.failf "expected error, got %s" (Json.to_string response)

let test_service_unknown_rules_names_digest () =
  (* An operator debugging a 404 needs to know *which* digest was
     asked for: both unknown_rules paths — a new session against an
     evicted digest and a live session whose engine was evicted —
     name the offending digest in the error message. *)
  let service = make_service ~capacity:1 () in
  let first =
    ok_of (request service "publish_rules" [ ("source", Json.String "running") ])
  in
  let digest = str "digest" first in
  let sid =
    str "session"
      (ok_of (request service "new_session" [ ("digest", Json.String digest) ]))
  in
  ignore
    (ok_of
       (request service "publish_rules"
          [ ("rules", Json.String "form a b\nbenefits z\nrule z := a & b") ]));
  let by_digest =
    request service "new_session" [ ("digest", Json.String digest) ]
  in
  Alcotest.(check string) "code" "unknown_rules" (error_code by_digest);
  Alcotest.(check bool) "digest in new_session error" true
    (contains (error_message by_digest) digest);
  let by_session =
    request service "get_report"
      [ ("session", Json.String sid); ("valuation", Json.String "011") ]
  in
  Alcotest.(check string) "code" "unknown_rules" (error_code by_session);
  Alcotest.(check bool) "digest in session error" true
    (contains (error_message by_session) digest)

let test_service_out_of_order () =
  (* Requests in every wrong order get structured bad_state errors and
     leave the session usable for the correct flow afterwards. *)
  let service = make_service () in
  let opened =
    ok_of (request service "new_session" [ ("source", Json.String "running") ])
  in
  let sid = str "session" opened in
  (* choose_option before get_report: there are no options yet. *)
  Alcotest.(check string) "choose before report" "bad_state"
    (error_code
       (request service "choose_option"
          [ ("session", Json.String sid); ("option", Json.Int 0) ]));
  Alcotest.(check string) "submit before report" "bad_state"
    (error_code (request service "submit_form" [ ("session", Json.String sid) ]));
  ignore
    (ok_of
       (request service "get_report"
          [ ("session", Json.String sid); ("valuation", Json.String "011") ]));
  (* Negative option index: a structured error, not an exception. *)
  Alcotest.(check string) "negative option" "invalid_params"
    (error_code
       (request service "choose_option"
          [ ("session", Json.String sid); ("option", Json.Int (-3)) ]));
  ignore
    (ok_of
       (request service "choose_option"
          [ ("session", Json.String sid); ("option", Json.Int 0) ]));
  (* choose_option twice: the options died with the raw valuation. *)
  Alcotest.(check string) "choose twice" "bad_state"
    (error_code
       (request service "choose_option"
          [ ("session", Json.String sid); ("option", Json.Int 0) ]));
  ignore (ok_of (request service "submit_form" [ ("session", Json.String sid) ]))

let test_service_ledger_survives_eviction () =
  (* Consent records are keyed by rule digest, not by the compiled
     engine: evicting and recompiling the engine must not lose them. *)
  let service = make_service ~capacity:1 () in
  let published =
    ok_of (request service "publish_rules" [ ("source", Json.String "running") ])
  in
  let digest = str "digest" published in
  let sid =
    str "session"
      (ok_of (request service "new_session" [ ("digest", Json.String digest) ]))
  in
  ignore
    (ok_of
       (request service "get_report"
          [ ("session", Json.String sid); ("valuation", Json.String "011") ]));
  ignore
    (ok_of
       (request service "choose_option"
          [ ("session", Json.String sid); ("option", Json.Int 0) ]));
  ignore (ok_of (request service "submit_form" [ ("session", Json.String sid) ]));
  (* Evict the running engine from the capacity-1 registry... *)
  ignore
    (ok_of
       (request service "publish_rules"
          [ ("rules", Json.String "form a b\nbenefits z\nrule z := a & b") ]));
  Alcotest.(check string) "engine gone" "unknown_rules"
    (error_code (request service "audit" [ ("digest", Json.String digest) ]));
  (* ... republish the same rules (same canonical digest, recompiled): the
     grant recorded before the eviction is still audited. *)
  let republished =
    ok_of (request service "publish_rules" [ ("source", Json.String "running") ])
  in
  Alcotest.(check string) "same digest" digest (str "digest" republished);
  Alcotest.(check bool) "recompiled, not cached" true
    (Json.member "cached" republished = Some (Json.Bool false));
  let audit =
    ok_of (request service "audit" [ ("digest", Json.String digest) ])
  in
  Alcotest.(check bool) "record survived the eviction" true
    (Json.member "records" audit = Some (Json.Int 1));
  Alcotest.(check bool) "still clean" true
    (Json.member "failures" audit = Some (Json.List []))

let test_registry_randomized_counters () =
  (* Randomized finds/adds against a naive model: contents, hit/miss and
     eviction counters must all agree. *)
  let capacity = 4 in
  let r = Registry.create ~capacity () in
  let rng = Random.State.make [| 0xc0de |] in
  let keys = [| "a"; "b"; "c"; "d"; "e"; "f"; "g" |] in
  (* Model: association list in most-recently-used-first order. *)
  let model = ref [] in
  let hits = ref 0 and misses = ref 0 and evictions = ref 0 in
  let model_find k =
    match List.assoc_opt k !model with
    | Some v ->
      incr hits;
      model := (k, v) :: List.remove_assoc k !model;
      Some v
    | None ->
      incr misses;
      None
  in
  let model_add k v =
    let without = List.remove_assoc k !model in
    if List.mem_assoc k !model then model := (k, v) :: without
    else begin
      if List.length without >= capacity then begin
        incr evictions;
        model :=
          (k, v) :: List.filteri (fun i _ -> i < capacity - 1) without
      end
      else model := (k, v) :: without
    end
  in
  for i = 1 to 500 do
    let k = keys.(Random.State.int rng (Array.length keys)) in
    if Random.State.bool rng then begin
      let got = Registry.find r k in
      Alcotest.(check bool)
        (Printf.sprintf "step %d: find %s agrees" i k)
        true
        (got = model_find k)
    end
    else begin
      Registry.add r k i;
      model_add k i
    end
  done;
  let s = Registry.stats r in
  Alcotest.(check int) "hits" !hits s.Registry.hits;
  Alcotest.(check int) "misses" !misses s.Registry.misses;
  Alcotest.(check int) "evictions" !evictions s.Registry.evictions;
  Alcotest.(check int) "size" (List.length !model) s.Registry.size;
  List.iter
    (fun (k, v) ->
      Alcotest.(check bool)
        (Printf.sprintf "final content %s" k)
        true
        (Registry.peek r k = Some v))
    !model

let test_service_canonical_digest () =
  (* Formatting-only differences in the rule text map to the same digest:
     the second publish is a cache hit. *)
  let service = make_service () in
  let a =
    ok_of
      (request service "publish_rules"
         [ ("rules", Json.String "form a b\nbenefits z\nrule z := a & b") ])
  in
  let b =
    ok_of
      (request service "publish_rules"
         [
           ( "rules",
             Json.String "form  a   b\nbenefits z\n# comment\nrule z := b & a"
           );
         ])
  in
  Alcotest.(check string) "same digest" (str "digest" a) (str "digest" b);
  Alcotest.(check bool) "second is cached" true
    (Json.member "cached" b = Some (Json.Bool true))

let test_service_metrics () =
  (* Requests are counted on arrival, so a metrics response includes the
     very request that asked for it. *)
  let module Obs = Pet_obs.Metrics in
  Obs.reset ();
  Obs.enable ();
  let obs_tick = ref 0 in
  Obs.set_clock (fun () ->
      incr obs_tick;
      float_of_int !obs_tick);
  Fun.protect ~finally:(fun () -> Obs.disable ()) @@ fun () ->
  let service = make_service () in
  let _ =
    ok_of (request service "publish_rules" [ ("source", Json.String "running") ])
  in
  let counter_of payload name =
    match Option.bind (Json.member "counters" payload) (Json.member name) with
    | Some (Json.Int n) -> n
    | _ -> Alcotest.failf "metrics payload lacks counter %s" name
  in
  let m1 = ok_of (request service "metrics" []) in
  Alcotest.(check int) "metrics counts its own request" 2
    (counter_of m1 "pet_server_requests_total");
  (* A second snapshot moves: one more request arrived. *)
  let m2 = ok_of (request service "metrics" []) in
  Alcotest.(check int) "next snapshot includes the next request" 3
    (counter_of m2 "pet_server_requests_total");
  (* The per-method latency histogram saw the earlier metrics call
     (logical obs clock: every request lasts exactly 1s). *)
  (match
     Option.bind
       (Json.member "histograms" m2)
       (Json.member "pet_server_request_seconds{method=\"metrics\"}")
   with
  | Some h ->
    Alcotest.(check bool) "latency histogram counted the metrics call" true
      (Json.member "count" h = Some (Json.Int 1))
  | None -> Alcotest.fail "no latency histogram for the metrics method");
  (* The prometheus rendering carries the same counter. *)
  match ok_of (request service "metrics" [ ("format", Json.String "prometheus") ])
  with
  | Json.String text ->
    Alcotest.(check bool) "prometheus sample present" true
      (let sub = "pet_server_requests_total 4" in
       let rec contains i =
         i + String.length sub <= String.length text
         && (String.sub text i (String.length sub) = sub || contains (i + 1))
       in
       contains 0)
  | other ->
    Alcotest.failf "prometheus format is not a string: %s" (Json.to_string other)

(* --- Tracing through the service --------------------------------------------------- *)

module Trace = Pet_obs.Trace

(* The trace layer is process-global state, like the metrics registry:
   run each test against a clean enabled slate and always disable on the
   way out. *)
let with_tracing f =
  let module Obs = Pet_obs.Metrics in
  Obs.reset ();
  Obs.enable ();
  let obs_tick = ref 0 in
  Obs.set_clock (fun () ->
      incr obs_tick;
      float_of_int !obs_tick);
  Trace.configure ();
  Trace.reset ();
  Trace.set_slow_threshold 0.;
  Trace.enable ();
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Trace.set_slow_threshold infinity;
      Obs.disable ())
    f

let raw_request service ?(id = 1) ?trace method_ params =
  let line =
    Json.to_string
      (Json.Obj
         (("pet", Json.Int Proto.version) :: ("id", Json.Int id)
         :: (match trace with
            | Some t -> [ ("trace", Json.String t) ]
            | None -> [])
         @ [ ("method", Json.String method_); ("params", Json.Obj params) ]))
  in
  Service.handle_line service line

let trace_of response =
  match Json.parse response with
  | Ok obj -> Option.bind (Json.member "trace" obj) Json.string_opt
  | Error m -> Alcotest.failf "response is not JSON: %s" m

let test_proto_trace_roundtrip () =
  (* The trace field is carried through decode... *)
  let envelope = decode_ok {|{"pet":1,"id":1,"trace":"abc","method":"stats"}|} in
  Alcotest.(check (option string)) "trace decoded" (Some "abc") envelope.trace;
  let envelope = decode_ok {|{"pet":1,"id":1,"method":"stats"}|} in
  Alcotest.(check (option string)) "absent trace" None envelope.trace;
  (* ...survives a failed decode, best-effort like the id... *)
  (match Proto.decode {|{"pet":1,"trace":"abc","method":"frobnicate"}|} with
  | Error (_, trace, _) ->
    Alcotest.(check (option string)) "trace kept on error" (Some "abc") trace
  | Ok _ -> Alcotest.fail "expected a decode error");
  (* ...and is emitted exactly when given. *)
  Alcotest.(check string) "ok with trace"
    {|{"pet":1,"id":3,"trace":"t9","ok":{}}|}
    (Proto.ok_response ~id:(Json.Int 3) ~trace:"t9" (Json.Obj []));
  Alcotest.(check string) "error with trace"
    {|{"pet":1,"id":3,"trace":"t9","error":{"code":"bad_state","message":"m"}}|}
    (Proto.error_response ~id:(Json.Int 3) ~trace:"t9"
       (Proto.error Proto.Bad_state "m"));
  (* The trace method's own parameters decode. *)
  (match
     (decode_ok
        {|{"pet":1,"method":"trace","params":{"which":"get","id":"t4","format":"chrome"}}|})
       .request
   with
  | Proto.Trace_req { query = Proto.Tget "t4"; format = Proto.Tchrome } -> ()
  | _ -> Alcotest.fail "wrong trace request");
  match (decode_ok {|{"pet":1,"method":"trace"}|}).request with
  | Proto.Trace_req { query = Proto.Tlast; format = Proto.Ttree } -> ()
  | _ -> Alcotest.fail "wrong trace defaults"

let test_service_trace_echo () =
  with_tracing @@ fun () ->
  let service = make_service () in
  (* Generated ids are sequential and echoed on ok responses... *)
  Alcotest.(check (option string)) "generated id echoed" (Some "t0")
    (trace_of (raw_request service "stats" []));
  (* ...and on error responses, including undecodable requests. *)
  Alcotest.(check (option string)) "echoed on error" (Some "t1")
    (trace_of (raw_request service "frobnicate" []));
  Alcotest.(check (option string)) "client id echoed" (Some "cli-1")
    (trace_of (raw_request service ~trace:"cli-1" "stats" []));
  Alcotest.(check (option string)) "client id echoed on error" (Some "cli-2")
    (trace_of
       (raw_request service ~trace:"cli-2" "submit_form"
          [ ("session", Json.String "s9") ]));
  (* The capture exists under the echoed id and names the method. *)
  (match Trace.find "cli-1" with
  | Some tr ->
    Alcotest.(check bool) "method annotated" true
      (List.mem ("method", Trace.String "stats") tr.Trace.annotations)
  | None -> Alcotest.fail "no capture for cli-1");
  (* With tracing off no id is generated, but a client id still echoes. *)
  Trace.disable ();
  Alcotest.(check (option string)) "no generated id when off" None
    (trace_of (raw_request service "stats" []));
  Alcotest.(check (option string)) "client id still echoed when off"
    (Some "cli-3")
    (trace_of (raw_request service ~trace:"cli-3" "stats" []))

let test_service_trace_method () =
  with_tracing @@ fun () ->
  let service = make_service () in
  let _ =
    ok_of (request service "publish_rules" [ ("source", Json.String "running") ])
  in
  (* "last" returns the most recently *completed* capture — the publish,
     not the trace call itself — with the span tree rendered. *)
  let last = ok_of (request service "trace" []) in
  Alcotest.(check string) "last is the publish" "t0" (str "id" last);
  let tree = str "tree" last in
  Alcotest.(check bool) "tree shows the compile" true
    (contains tree "provider.create");
  let anns = Option.get (Json.member "annotations" last) in
  Alcotest.(check bool) "method annotation" true
    (Json.member "method" anns = Some (Json.String "publish_rules"));
  Alcotest.(check bool) "backend annotation" true
    (Json.member "backend" anns = Some (Json.String "compiled"));
  (* "get" by the echoed id; "slow" lists both (threshold 0). *)
  let got =
    ok_of (request service "trace" [ ("id", Json.String "t0") ])
  in
  Alcotest.(check string) "get by id" "t0" (str "id" got);
  let slow = ok_of (request service "trace" [ ("which", Json.String "slow") ]) in
  (match Json.member "slow" slow with
  | Some (Json.List (_ :: _)) -> ()
  | _ -> Alcotest.fail "slow listing empty");
  Alcotest.(check bool) "evictions reported" true
    (Json.member "evictions" slow <> None);
  (* Chrome format is valid JSON shipped as one string. *)
  (match
     ok_of
       (request service "trace"
          [ ("id", Json.String "t0"); ("format", Json.String "chrome") ])
   with
  | payload -> (
    match Json.member "chrome" payload with
    | Some (Json.String chrome) -> (
      match Json.parse chrome with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "chrome payload not JSON: %s" m)
    | _ -> Alcotest.fail "no chrome string"));
  Alcotest.(check string) "unknown id" "invalid_params"
    (error_code (request service "trace" [ ("id", Json.String "t999") ]));
  (* Disabled tracing refuses cleanly. *)
  Trace.disable ();
  Alcotest.(check string) "disabled" "bad_state"
    (error_code (request service "trace" []))

let test_trace_privacy () =
  (* R2 for observability: run the full workflow — the raw valuation
     crosses get_report — then grep every capture in both rings, in both
     export formats, for the bit-vector. It must never appear: span
     names are static and annotations are identifiers only. *)
  with_tracing @@ fun () ->
  let service = make_service () in
  let published =
    ok_of (request service "publish_rules" [ ("source", Json.String "running") ])
  in
  let digest = str "digest" published in
  let opened =
    ok_of (request service "new_session" [ ("digest", Json.String digest) ])
  in
  let sid = str "session" opened in
  let valuation = "011" in
  let _ =
    ok_of
      (request service "get_report"
         [ ("session", Json.String sid); ("valuation", Json.String valuation) ])
  in
  let _ =
    ok_of
      (request service "choose_option"
         [ ("session", Json.String sid); ("option", Json.Int 0) ])
  in
  let _ =
    ok_of (request service "submit_form" [ ("session", Json.String sid) ])
  in
  let captures = Trace.recent () @ Trace.slow () in
  Alcotest.(check bool) "captures exist" true (captures <> []);
  List.iter
    (fun tr ->
      let rendered = Trace.render tr and chrome = Trace.chrome tr in
      Alcotest.(check bool)
        ("no raw valuation in tree of " ^ tr.Trace.id)
        false
        (contains rendered valuation);
      Alcotest.(check bool)
        ("no raw valuation in chrome of " ^ tr.Trace.id)
        false (contains chrome valuation);
      (* The session id, by contrast, is expected — identifiers are the
         point of a capture. *)
      List.iter
        (fun (_, v) ->
          match v with
          | Trace.String s ->
            Alcotest.(check bool) "no valuation annotation" false
              (s = valuation)
          | _ -> ())
        tr.Trace.annotations)
    captures


(* --- Consent lifecycle ------------------------------------------------------------- *)

(* Run the running example to a submitted grant and return its id. *)
let submitted_session service =
  let opened =
    ok_of (request service "new_session" [ ("source", Json.String "running") ])
  in
  let sid = str "session" opened in
  ignore
    (ok_of
       (request service "get_report"
          [ ("session", Json.String sid); ("valuation", Json.String "011") ]));
  ignore
    (ok_of
       (request service "choose_option"
          [ ("session", Json.String sid); ("option", Json.Int 0) ]));
  ignore (ok_of (request service "submit_form" [ ("session", Json.String sid) ]));
  sid

let int_field field payload =
  match Json.member field payload with
  | Some (Json.Int i) -> i
  | _ -> Alcotest.failf "missing int field %S" field

let test_consent_revoke () =
  let service = make_service () in
  let digest =
    str "digest"
      (ok_of (request service "publish_rules" [ ("source", Json.String "running") ]))
  in
  let sid = submitted_session service in
  let revoked =
    ok_of (request service "revoke" [ ("session", Json.String sid) ])
  in
  Alcotest.(check int) "tombstoned grant" 0 (int_field "grant" revoked);
  (* The session died with the consent; the archive keeps only the id slot. *)
  Alcotest.(check string) "session purged" "unknown_session"
    (error_code
       (request service "get_report"
          [ ("session", Json.String sid); ("valuation", Json.String "011") ]));
  let audit =
    ok_of (request service "audit" [ ("digest", Json.String digest) ])
  in
  Alcotest.(check int) "id slot kept" 1 (int_field "records" audit);
  Alcotest.(check int) "values erased" 0 (int_field "stored_values" audit);
  Alcotest.(check int) "tombstone counted" 1 (int_field "revoked" audit);
  (* Idempotence: consent cannot be withdrawn twice. *)
  Alcotest.(check string) "double revoke" "bad_state"
    (error_code (request service "revoke" [ ("session", Json.String sid) ]));
  let stats = ok_of (request service "stats" []) in
  let consent = Option.get (Json.member "consent" stats) in
  Alcotest.(check int) "stats: revoked" 1 (int_field "revoked" consent)

let test_consent_revoke_after_sweep () =
  (* The consent entry outlives the session TTL: revocation reaches the
     archived grant long after the session itself was swept. *)
  let service = make_service ~ttl:5. () in
  let sid = submitted_session service in
  for _ = 1 to 4 do
    ignore (request service "stats" [])
  done;
  Alcotest.(check string) "session long gone" "unknown_session"
    (error_code
       (request service "submit_form" [ ("session", Json.String sid) ]));
  let revoked =
    ok_of (request service "revoke" [ ("session", Json.String sid) ])
  in
  Alcotest.(check int) "grant still reachable" 0 (int_field "grant" revoked)

let test_consent_expire () =
  let service = make_service () in
  let sid = submitted_session service in
  ignore
    (ok_of
       (request service "expire"
          [ ("session", Json.String sid); ("after", Json.Int 4) ]));
  (* Each request advances the clock 2s; two sweeps later the horizon
     has passed and the grant is tombstoned. *)
  for _ = 1 to 3 do
    ignore (request service "stats" [])
  done;
  Alcotest.(check string) "revoke after expiry" "bad_state"
    (error_code (request service "revoke" [ ("session", Json.String sid) ]));
  let stats = ok_of (request service "stats" []) in
  let consent = Option.get (Json.member "consent" stats) in
  Alcotest.(check int) "stats: expired" 1 (int_field "expired" consent);
  Alcotest.(check int) "stats: nothing pending" 0 (int_field "pending" consent)

let test_consent_horizon_guard () =
  (* A passed horizon is applied on the session's own next request, not
     only at the sweep: nothing may establish data past the horizon. *)
  let service = make_service () in
  let opened =
    ok_of (request service "new_session" [ ("source", Json.String "running") ])
  in
  let sid = str "session" opened in
  ignore
    (ok_of
       (request service "get_report"
          [ ("session", Json.String sid); ("valuation", Json.String "011") ]));
  ignore
    (ok_of
       (request service "expire"
          [ ("session", Json.String sid); ("after", Json.Int 1) ]));
  Alcotest.(check string) "choose refused past the horizon" "session_expired"
    (error_code
       (request service "choose_option"
          [ ("session", Json.String sid); ("option", Json.Int 0) ]))

let test_consent_sweep_budget () =
  (* Many horizons passing at once drain incrementally — every tombstone
     lands within [entries / budget] sweeps, none is skipped, and the
     active-session counter never double-frees. *)
  let service = make_service () in
  let sids =
    List.init 10 (fun _ -> submitted_session service)
  in
  List.iter
    (fun sid ->
      ignore
        (ok_of
           (request service "expire"
              [ ("session", Json.String sid); ("after", Json.Int 1) ])))
    sids;
  let applied = ref 0 in
  for _ = 1 to 5 do
    ignore (Service.sweep_tick ~budget:3 service)
  done;
  let stats = ok_of (request service "stats" []) in
  let consent = Option.get (Json.member "consent" stats) in
  applied := int_field "expired" consent;
  Alcotest.(check int) "every horizon applied" 10 !applied;
  Alcotest.(check int) "none pending" 0 (int_field "pending" consent);
  let sessions = Option.get (Json.member "sessions" stats) in
  Alcotest.(check int) "no active sessions leak" 0 (int_field "active" sessions)

(* [state_events] only includes rule sets a durable service retained. *)
let make_durable_service () =
  let tick = ref 0 in
  let now () =
    incr tick;
    float_of_int !tick
  in
  let resolve = function
    | "running" -> Some (Spec.to_string (Running.exposure ()))
    | _ -> None
  in
  Service.create ~durable:true ~resolve ~now ()

let test_consent_snapshot_replay () =
  (* Tombstones and armed horizons survive snapshot + replay: recovery
     never resurrects revoked consent. *)
  let service = make_durable_service () in
  let digest =
    str "digest"
      (ok_of (request service "publish_rules" [ ("source", Json.String "running") ]))
  in
  let s1 = submitted_session service in
  let s2 = submitted_session service in
  ignore (ok_of (request service "revoke" [ ("session", Json.String s1) ]));
  ignore
    (ok_of
       (request service "expire"
          [ ("session", Json.String s2); ("after", Json.Int 10_000) ]));
  let events = Service.state_events service in
  let recovered = make_durable_service () in
  List.iter
    (fun event ->
      match Service.apply_event recovered event with
      | Ok () -> ()
      | Error m -> Alcotest.failf "replay error: %s" m)
    events;
  Alcotest.(check string) "tombstone not resurrected" "bad_state"
    (error_code (request recovered "revoke" [ ("session", Json.String s1) ]));
  let audit =
    ok_of (request recovered "audit" [ ("digest", Json.String digest) ])
  in
  Alcotest.(check int) "both id slots kept" 2 (int_field "records" audit);
  Alcotest.(check int) "one tombstone" 1 (int_field "revoked" audit);
  (* The re-armed horizon still fires in the recovered service. *)
  ignore (Service.apply_horizons recovered);
  ignore
    (ok_of (request recovered "revoke" [ ("session", Json.String s2) ]));
  Alcotest.(check string) "horizon re-armed, then withdrawn once" "bad_state"
    (error_code (request recovered "revoke" [ ("session", Json.String s2) ]))

let test_ledger_tenant_namespacing () =
  (* Two tenants publishing byte-identical rules must not share a grant
     archive: ids restart per tenant and each audit sees only its own
     records. Before ledgers were keyed by (tenant, digest), the second
     tenant's first grant got id 1 and both audits saw both records. *)
  Alcotest.(check string) "bare key" "d1" (Service.ledger_key ~digest:"d1" ~tenant:None);
  Alcotest.(check string) "namespaced key" "d1@alpha"
    (Service.ledger_key ~digest:"d1" ~tenant:(Some "alpha"));
  let service = make_service () in
  let text = Spec.to_string (Running.exposure ()) in
  let submit_for tenant =
    ignore
      (ok_of
         (request service "publish_rules"
            [ ("rules", Json.String text); ("tenant", Json.String tenant) ]));
    let sid =
      str "session"
        (ok_of (request service "new_session" [ ("tenant", Json.String tenant) ]))
    in
    ignore
      (ok_of
         (request service "get_report"
            [ ("session", Json.String sid); ("valuation", Json.String "011") ]));
    ignore
      (ok_of
         (request service "choose_option"
            [ ("session", Json.String sid); ("option", Json.Int 0) ]));
    int_field "grant"
      (ok_of (request service "submit_form" [ ("session", Json.String sid) ]))
  in
  Alcotest.(check int) "alpha's first grant" 0 (submit_for "alpha");
  Alcotest.(check int) "beta's ids are its own" 0 (submit_for "beta");
  let records tenant =
    int_field "records"
      (ok_of (request service "audit" [ ("tenant", Json.String tenant) ]))
  in
  Alcotest.(check int) "alpha sees one record" 1 (records "alpha");
  Alcotest.(check int) "beta sees one record" 1 (records "beta")

let () =
  Alcotest.run "pet_server"
    [
      ( "proto",
        [
          Alcotest.test_case "decode" `Quick test_proto_decode;
          Alcotest.test_case "decode errors" `Quick test_proto_decode_errors;
          Alcotest.test_case "encode" `Quick test_proto_encode;
        ] );
      ( "registry",
        [
          Alcotest.test_case "counters" `Quick test_registry_counters;
          Alcotest.test_case "lru" `Quick test_registry_lru;
          Alcotest.test_case "randomized counters" `Quick
            test_registry_randomized_counters;
          Alcotest.test_case "digest" `Quick test_registry_digest;
        ] );
      ( "session",
        [
          Alcotest.test_case "lifecycle" `Quick test_session_lifecycle;
          Alcotest.test_case "expiry" `Quick test_session_expiry;
          Alcotest.test_case "incremental sweep" `Quick test_session_sweep_step;
        ] );
      ( "service",
        [
          Alcotest.test_case "lifecycle" `Quick test_service_lifecycle;
          Alcotest.test_case "errors" `Quick test_service_errors;
          Alcotest.test_case "expiry" `Quick test_service_expiry;
          Alcotest.test_case "abandoned sessions swept" `Quick
            test_service_abandoned_sessions_swept;
          Alcotest.test_case "out of order" `Quick test_service_out_of_order;
          Alcotest.test_case "eviction" `Quick test_service_eviction;
          Alcotest.test_case "unknown_rules names the digest" `Quick
            test_service_unknown_rules_names_digest;
          Alcotest.test_case "ledger survives eviction" `Quick
            test_service_ledger_survives_eviction;
          Alcotest.test_case "canonical digest" `Quick
            test_service_canonical_digest;
          Alcotest.test_case "metrics endpoint" `Quick test_service_metrics;
        ] );
      ( "consent",
        [
          Alcotest.test_case "revoke tombstones the grant" `Quick
            test_consent_revoke;
          Alcotest.test_case "revoke outlives the TTL sweep" `Quick
            test_consent_revoke_after_sweep;
          Alcotest.test_case "expiry horizon" `Quick test_consent_expire;
          Alcotest.test_case "horizon guard on the request path" `Quick
            test_consent_horizon_guard;
          Alcotest.test_case "budgeted sweep applies every horizon" `Quick
            test_consent_sweep_budget;
          Alcotest.test_case "snapshot and replay keep tombstones" `Quick
            test_consent_snapshot_replay;
          Alcotest.test_case "ledgers are namespaced per tenant" `Quick
            test_ledger_tenant_namespacing;
        ] );
      ( "trace",
        [
          Alcotest.test_case "envelope round-trip" `Quick
            test_proto_trace_roundtrip;
          Alcotest.test_case "id echo" `Quick test_service_trace_echo;
          Alcotest.test_case "trace method" `Quick test_service_trace_method;
          Alcotest.test_case "captures are valuation-free" `Quick
            test_trace_privacy;
        ] );
    ]
