(** Durable events and the sink interface between the service and any
    persistence backend ({!Pet_store} in this repo, a no-op by default).

    Every state change the service must survive a restart is expressed
    as one of these events; the service emits them to its sink as the
    change commits, and recovery replays them through
    {!Service.apply_event}. The events are the durability boundary of
    requirement R2: a full valuation is {e representable in no event} —
    only rule texts, minimized forms ([mas]/[form] partial-valuation
    strings, possibly with blanks) and grants appear, so nothing a crash
    leaves on disk can contain more than the provider was ever allowed
    to keep. The [Reported] session state (the only state holding a raw
    valuation) is deliberately not persisted: such a session recovers as
    [Created] and the respondent re-requests the report. *)

module Json = Pet_pet.Json

type event =
  | Rules of { digest : string; text : string }
      (** A rule set entered service: [text] is the canonical rendering
          whose {!Registry.digest} is [digest]. Logged once per digest. *)
  | Tenant_published of {
      tenant : string;
      version : int;  (** monotonic per tenant, from 1 *)
      digest : string;
      text : string;  (** canonical rendering, as in {!Rules} *)
      quota : int option;
      at : float;
    }
      (** Tenant [tenant] accepted [version]: logged on the request path
          at publish/update time — before the background build runs — so
          the latest durable version is the latest {e accepted} one and
          recovery re-registers every tenant at its recorded version
          (rebuilding engines lazily). Subsumes {!Rules} for tenant
          texts. *)
  | Session_created of {
      id : string;
      digest : string;
      tenant : string option;
          (** set for sessions opened by tenant name; the field is
              omitted from the JSON when absent, so single-tenant logs
              keep their pre-tenancy bytes *)
      at : float;
    }
  | Session_chosen of {
      id : string;
      mas : string;  (** the minimized form, e.g. ["0_1_"] *)
      benefits : string list;
      at : float;
    }
  | Session_submitted of { id : string; grant_id : int; at : float }
  | Grant of {
      digest : string;
      grant_id : int;  (** sequential per digest, from 0 *)
      form : string;  (** the archived minimized record *)
      benefits : string list;
    }

val kind : event -> string
(** The wire tag: ["rules"], ["tenant_published"], ["session_created"],
    ["session_chosen"], ["session_submitted"] or ["grant"]. *)

val to_json : event -> Json.t
val of_json : Json.t -> (event, string) result
(** Inverse of {!to_json}; [Error] explains the first malformed field. *)

type sink = { emit : event -> unit }
(** Called synchronously after the state change it describes has been
    applied in memory and before the response is sent — a durable sink
    must have the event on stable storage when [emit] returns. *)

val null : sink
(** The no-op sink: today's pure in-memory service. *)
