module Universe = Pet_valuation.Universe
module Total = Pet_valuation.Total

let predicates =
  [
    ("p1", "salaried on a permanent contract");
    ("p2", "self-employed for over three years");
    ("p3", "net income above 2500/month (payslips)");
    ("p4", "net income above 2500/month (tax returns)");
    ("p5", "debt ratio below 35%");
    ("p6", "no payment incident on record");
    ("p7", "existing customer for over two years");
    ("p8", "homeowner");
    ("p9", "co-signer available");
    ("p10", "age below 65 at maturity");
  ]

let benefits =
  [
    ("b1", "loan approved");
    ("b2", "preferential rate");
    ("b3", "no collateral required");
  ]

(* Income can be evidenced by payslips or tax returns; stability by
   employment status; security by ownership or a co-signer. Overlapping
   evidence gives applicants genuine minimization choices. *)
let spec =
  {|form p1 p2 p3 p4 p5 p6 p7 p8 p9 p10
benefits b1 b2 b3
rule b1 := (p1 | p2) & (p3 | p4) & p5 & p6 & p10
rule b2 := (p1 | p2) & (p3 | p4) & p5 & p6 & p10 & p7
rule b3 := (p1 | p2) & (p3 | p4) & p5 & p6 & p10 & (p8 | p9)
# Consistency: permanent employees are not (also) registered as
# long-term self-employed in this bank's model, and payslip evidence
# implies salaried status.
constraint p1 -> !p2
constraint p2 -> !p1
constraint p3 -> p1
|}

let exposure () = Pet_rules.Spec.parse_exn spec

let universe = lazy (Universe.of_names (List.map fst predicates))

(* Self-employed, tax-return income, clean record, co-signer. *)
let freelancer () = Total.of_string (Lazy.force universe) "0101110011"

(* Salaried with both income evidences, long-time customer, homeowner. *)
let homeowner () = Total.of_string (Lazy.force universe) "1011111101"

module Form = Pet_pet.Form

let form () =
  let int_answer get key =
    match get key with
    | Form.Aint n -> n
    | Form.Abool _ | Form.Achoice _ -> assert false
  in
  let bool_answer get key =
    match get key with
    | Form.Abool b -> b
    | Form.Aint _ | Form.Achoice _ -> assert false
  in
  let status get =
    match get "status" with
    | Form.Achoice c -> c
    | Form.Aint _ | Form.Abool _ -> assert false
  in
  Form.create ~exposure:(exposure ())
    ~questions:
      [
        {
          Form.key = "status";
          text = "Employment status?";
          kind =
            Form.Kchoice [ "permanent contract"; "self-employed 3y+"; "other" ];
        };
        {
          Form.key = "income_payslips";
          text = "Monthly net income per payslips (0 if none)?";
          kind = Form.Kint;
        };
        {
          Form.key = "income_tax";
          text = "Monthly net income per tax returns (0 if none)?";
          kind = Form.Kint;
        };
        {
          Form.key = "debt_ratio";
          text = "Current debt ratio (%)?";
          kind = Form.Kint;
        };
        {
          Form.key = "incidents";
          text = "Any payment incident on record?";
          kind = Form.Kbool;
        };
        {
          Form.key = "customer_years";
          text = "Years as a customer of this bank?";
          kind = Form.Kint;
        };
        { Form.key = "homeowner"; text = "Homeowner?"; kind = Form.Kbool };
        {
          Form.key = "cosigner";
          text = "Co-signer available?";
          kind = Form.Kbool;
        };
        { Form.key = "age"; text = "Your age?"; kind = Form.Kint };
        {
          Form.key = "term";
          text = "Requested loan term (years)?";
          kind = Form.Kint;
        };
      ]
    ~predicates:
      [
        {
          Form.name = "p1";
          description = "salaried on a permanent contract";
          compute = (fun get -> status get = "permanent contract");
        };
        {
          Form.name = "p2";
          description = "self-employed for over three years";
          compute = (fun get -> status get = "self-employed 3y+");
        };
        {
          Form.name = "p3";
          description = "income above 2500/month (payslips)";
          compute =
            (fun get ->
              status get = "permanent contract"
              && int_answer get "income_payslips" >= 2500);
        };
        {
          Form.name = "p4";
          description = "income above 2500/month (tax returns)";
          compute = (fun get -> int_answer get "income_tax" >= 2500);
        };
        {
          Form.name = "p5";
          description = "debt ratio below 35%";
          compute = (fun get -> int_answer get "debt_ratio" < 35);
        };
        {
          Form.name = "p6";
          description = "no payment incident";
          compute = (fun get -> not (bool_answer get "incidents"));
        };
        {
          Form.name = "p7";
          description = "customer for over two years";
          compute = (fun get -> int_answer get "customer_years" >= 2);
        };
        {
          Form.name = "p8";
          description = "homeowner";
          compute = (fun get -> bool_answer get "homeowner");
        };
        {
          Form.name = "p9";
          description = "co-signer available";
          compute = (fun get -> bool_answer get "cosigner");
        };
        {
          Form.name = "p10";
          description = "below 65 at maturity";
          compute =
            (fun get -> int_answer get "age" + int_answer get "term" <= 65);
        };
      ]
